// bench_gate — compare a fresh bench_campaign_throughput report against the
// committed baseline and fail on a throughput regression.
//
//   bench_gate --baseline BENCH_campaign.json --fresh fresh.json
//              [--min-ratio X] [--report-only] [--summary FILE]
//
// Runs are matched by (circuit, threads, cache_factorization, lowrank,
// batched) — labels embed the hardware thread count and are not stable
// across machines.  A report predating the low-rank solve path carries no
// "lowrank" field, and one predating batched SMW solves no "batched" field;
// absent flags are read as false (the narrower solve path).  A
// run regresses when fresh solves_per_s falls below min-ratio times the
// baseline value; the default 0.6 tolerates the noise of shared CI boxes
// while still catching a real 2x slowdown.  Baseline runs with no fresh
// counterpart are reported but do not fail the gate (thread counts vary
// with the machine).
//
// --report-only suppresses only *ratio* failures (noisy shared runners);
// a malformed or missing report is always an error: a gate that cannot
// read its baseline must say so loudly, not report success.
//
// --summary FILE additionally writes the ratio table as GitHub-flavored
// markdown — CI appends it to $GITHUB_STEP_SUMMARY.
//
// Exit codes: 0 = pass, 1 = regression detected, 2 = bad input/usage
// (including malformed/missing baseline or fresh report, even with
// --report-only).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using mcdft::util::json::Value;

struct RunKey {
  std::string circuit;
  std::size_t threads = 0;
  bool cache = false;
  bool lowrank = false;
  bool batched = false;
};

/// A boolean run flag that may predate its introduction ("lowrank",
/// "batched"); absent reads false — the narrower solve path.
bool RunFlag(const Value& run, std::string_view field) {
  const Value* v = run.Find(field);
  return v != nullptr && v->AsBool();
}

/// A numeric run field that may predate its introduction; absent reads 0
/// (reports from before the resilience counters carry no "retries" /
/// "quarantined_cells").
std::size_t RunCount(const Value& run, std::string_view field) {
  const Value* v = run.Find(field);
  return v == nullptr ? 0 : static_cast<std::size_t>(v->AsDouble());
}

struct SummaryRow {
  RunKey key;
  double base_rate = 0.0;
  double fresh_rate = 0.0;
  double ratio = 0.0;
  bool ok = false;
  bool missing = false;
  std::size_t retries = 0;      // fresh run's retry-ladder escalations
  std::size_t quarantined = 0;  // fresh run's quarantined cells
};

const Value* FindRun(const Value& doc, const RunKey& key) {
  for (const Value& circuit : doc.Get("circuits").Items()) {
    if (circuit.Get("name").AsString() != key.circuit) continue;
    for (const Value& run : circuit.Get("runs").Items()) {
      if (static_cast<std::size_t>(run.Get("threads").AsDouble()) ==
              key.threads &&
          run.Get("cache_factorization").AsBool() == key.cache &&
          RunFlag(run, "lowrank") == key.lowrank &&
          RunFlag(run, "batched") == key.batched) {
        return &run;
      }
    }
  }
  return nullptr;
}

bool WriteSummary(const std::string& path, const std::vector<SummaryRow>& rows,
                  double min_ratio, std::size_t regressed, bool report_only) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_gate: cannot write summary file %s\n",
                 path.c_str());
    return false;
  }
  out << "### Campaign throughput gate (min ratio " << min_ratio << ")\n\n";
  out << "| status | circuit | threads | cache | lowrank | batched | "
         "baseline solves/s | fresh solves/s | ratio | retries | "
         "quarantined |\n";
  out << "|---|---|---|---|---|---|---|---|---|---|---|\n";
  char buf[256];
  for (const SummaryRow& r : rows) {
    if (r.missing) {
      std::snprintf(buf, sizeof buf,
                    "| :grey_question: missing | %s | %zu | %d | %d | %d "
                    "| %.0f | — | — | — | — |\n",
                    r.key.circuit.c_str(), r.key.threads, r.key.cache ? 1 : 0,
                    r.key.lowrank ? 1 : 0, r.key.batched ? 1 : 0, r.base_rate);
    } else {
      std::snprintf(buf, sizeof buf,
                    "| %s | %s | %zu | %d | %d | %d | %.0f | %.0f | x%.2f "
                    "| %zu | %zu |\n",
                    r.ok ? ":white_check_mark: ok" : ":x: FAIL",
                    r.key.circuit.c_str(), r.key.threads, r.key.cache ? 1 : 0,
                    r.key.lowrank ? 1 : 0, r.key.batched ? 1 : 0, r.base_rate,
                    r.fresh_rate, r.ratio, r.retries, r.quarantined);
    }
    out << buf;
  }
  out << "\n";
  if (regressed > 0) {
    out << (report_only
                ? "**Regressions detected (report-only: not failing the job).**\n"
                : "**Regressions detected.**\n");
  } else {
    out << "No regressions.\n";
  }
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  mcdft::util::CliArgs args(argc, argv);
  const std::string baseline_path =
      args.GetString("baseline", "BENCH_campaign.json");
  const std::string fresh_path = args.GetString("fresh", "");
  const std::string summary_path = args.GetString("summary", "");
  const double min_ratio = args.GetDouble("min-ratio", 0.6);
  const bool report_only = args.Has("report-only");
  if (fresh_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_gate --fresh FILE [--baseline FILE]\n"
                 "                  [--min-ratio X] [--report-only]\n"
                 "                  [--summary FILE]\n");
    return 2;
  }

  // Input validation happens before --report-only is considered: the flag
  // softens regression verdicts, never unreadable reports.
  Value baseline, fresh;
  try {
    baseline = mcdft::util::json::ParseFile(baseline_path);
    fresh = mcdft::util::json::ParseFile(fresh_path);
  } catch (const mcdft::util::Error& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }

  std::vector<SummaryRow> rows;
  std::size_t compared = 0, regressed = 0, missing = 0;
  try {
    if (baseline.Get("bench").AsString() != fresh.Get("bench").AsString()) {
      std::fprintf(stderr, "bench_gate: bench kind mismatch (%s vs %s)\n",
                   baseline.Get("bench").AsString().c_str(),
                   fresh.Get("bench").AsString().c_str());
      return 2;
    }
    std::printf("bench_gate: %s vs baseline %s (min ratio %.2f)\n",
                fresh_path.c_str(), baseline_path.c_str(), min_ratio);
    for (const Value& circuit : baseline.Get("circuits").Items()) {
      const std::string& name = circuit.Get("name").AsString();
      for (const Value& run : circuit.Get("runs").Items()) {
        RunKey key{name,
                   static_cast<std::size_t>(run.Get("threads").AsDouble()),
                   run.Get("cache_factorization").AsBool(),
                   RunFlag(run, "lowrank"), RunFlag(run, "batched")};
        const double base_rate = run.Get("solves_per_s").AsDouble();
        const Value* match = FindRun(fresh, key);
        if (match == nullptr) {
          ++missing;
          rows.push_back(SummaryRow{key, base_rate, 0.0, 0.0, false, true});
          std::printf(
              "  MISSING %-10s threads=%zu cache=%d lowrank=%d batched=%d "
              "(no fresh run)\n",
              name.c_str(), key.threads, key.cache ? 1 : 0,
              key.lowrank ? 1 : 0, key.batched ? 1 : 0);
          continue;
        }
        const double fresh_rate = match->Get("solves_per_s").AsDouble();
        const double ratio = base_rate > 0.0 ? fresh_rate / base_rate : 1.0;
        const bool ok = ratio >= min_ratio;
        ++compared;
        if (!ok) ++regressed;
        rows.push_back(SummaryRow{key, base_rate, fresh_rate, ratio, ok, false,
                                  RunCount(*match, "retries"),
                                  RunCount(*match, "quarantined_cells")});
        std::printf(
            "  %-4s %-10s threads=%zu cache=%d lowrank=%d batched=%d  "
            "%10.0f -> %10.0f solves/s (x%.2f) retries=%zu quarantined=%zu\n",
            ok ? "ok" : "FAIL", name.c_str(), key.threads, key.cache ? 1 : 0,
            key.lowrank ? 1 : 0, key.batched ? 1 : 0, base_rate, fresh_rate,
            ratio, rows.back().retries, rows.back().quarantined);
      }
    }
  } catch (const mcdft::util::Error& e) {
    std::fprintf(stderr, "bench_gate: malformed report: %s\n", e.what());
    return 2;
  }

  std::printf("bench_gate: %zu compared, %zu regressed, %zu missing\n",
              compared, regressed, missing);
  if (compared == 0) {
    std::fprintf(stderr, "bench_gate: nothing to compare\n");
    return 2;
  }
  if (!summary_path.empty() &&
      !WriteSummary(summary_path, rows, min_ratio, regressed, report_only)) {
    return 2;
  }
  if (regressed > 0) {
    if (report_only) {
      std::printf("bench_gate: regressions ignored (--report-only)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
