// bench_gate — compare a fresh bench_campaign_throughput report against the
// committed baseline and fail on a throughput regression.
//
//   bench_gate --baseline BENCH_campaign.json --fresh fresh.json
//              [--min-ratio X] [--report-only]
//
// Runs are matched by (circuit, threads, cache_factorization) — labels
// embed the hardware thread count and are not stable across machines.  A
// run regresses when fresh solves_per_s falls below min-ratio times the
// baseline value; the default 0.6 tolerates the noise of shared CI boxes
// while still catching a real 2x slowdown.  Baseline runs with no fresh
// counterpart are reported but do not fail the gate (thread counts vary
// with the machine).
//
// Exit codes: 0 = pass, 1 = regression detected, 2 = bad input/usage.
#include <cstdio>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using mcdft::util::json::Value;

struct RunKey {
  std::string circuit;
  std::size_t threads = 0;
  bool cache = false;
};

const Value* FindRun(const Value& doc, const RunKey& key) {
  for (const Value& circuit : doc.Get("circuits").Items()) {
    if (circuit.Get("name").AsString() != key.circuit) continue;
    for (const Value& run : circuit.Get("runs").Items()) {
      if (static_cast<std::size_t>(run.Get("threads").AsDouble()) ==
              key.threads &&
          run.Get("cache_factorization").AsBool() == key.cache) {
        return &run;
      }
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  mcdft::util::CliArgs args(argc, argv);
  const std::string baseline_path =
      args.GetString("baseline", "BENCH_campaign.json");
  const std::string fresh_path = args.GetString("fresh", "");
  const double min_ratio = args.GetDouble("min-ratio", 0.6);
  const bool report_only = args.Has("report-only");
  if (fresh_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_gate --fresh FILE [--baseline FILE]\n"
                 "                  [--min-ratio X] [--report-only]\n");
    return 2;
  }

  Value baseline, fresh;
  try {
    baseline = mcdft::util::json::ParseFile(baseline_path);
    fresh = mcdft::util::json::ParseFile(fresh_path);
  } catch (const mcdft::util::Error& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }

  std::size_t compared = 0, regressed = 0, missing = 0;
  try {
    if (baseline.Get("bench").AsString() != fresh.Get("bench").AsString()) {
      std::fprintf(stderr, "bench_gate: bench kind mismatch (%s vs %s)\n",
                   baseline.Get("bench").AsString().c_str(),
                   fresh.Get("bench").AsString().c_str());
      return 2;
    }
    std::printf("bench_gate: %s vs baseline %s (min ratio %.2f)\n",
                fresh_path.c_str(), baseline_path.c_str(), min_ratio);
    for (const Value& circuit : baseline.Get("circuits").Items()) {
      const std::string& name = circuit.Get("name").AsString();
      for (const Value& run : circuit.Get("runs").Items()) {
        RunKey key{name,
                   static_cast<std::size_t>(run.Get("threads").AsDouble()),
                   run.Get("cache_factorization").AsBool()};
        const Value* match = FindRun(fresh, key);
        if (match == nullptr) {
          ++missing;
          std::printf("  MISSING %-10s threads=%zu cache=%d (no fresh run)\n",
                      name.c_str(), key.threads, key.cache ? 1 : 0);
          continue;
        }
        const double base_rate = run.Get("solves_per_s").AsDouble();
        const double fresh_rate = match->Get("solves_per_s").AsDouble();
        const double ratio = base_rate > 0.0 ? fresh_rate / base_rate : 1.0;
        const bool ok = ratio >= min_ratio;
        ++compared;
        if (!ok) ++regressed;
        std::printf(
            "  %-4s %-10s threads=%zu cache=%d  %10.0f -> %10.0f "
            "solves/s (x%.2f)\n",
            ok ? "ok" : "FAIL", name.c_str(), key.threads, key.cache ? 1 : 0,
            base_rate, fresh_rate, ratio);
      }
    }
  } catch (const mcdft::util::Error& e) {
    std::fprintf(stderr, "bench_gate: malformed report: %s\n", e.what());
    return 2;
  }

  std::printf("bench_gate: %zu compared, %zu regressed, %zu missing\n",
              compared, regressed, missing);
  if (compared == 0) {
    std::fprintf(stderr, "bench_gate: nothing to compare\n");
    return 2;
  }
  if (regressed > 0) {
    if (report_only) {
      std::printf("bench_gate: regressions ignored (--report-only)\n");
      return 0;
    }
    return 1;
  }
  return 0;
}
