// mcdft — the command-line front end to the multi-configuration DFT flow.
//
// Subcommands:
//   list                       circuits bundled in the zoo
//   analyze                    campaign: detectability matrix + w-det table
//   merge                      merge shard checkpoints into a full campaign
//   optimize                   Sec. 4 flow: xi, config-count opt, partial DFT
//   plan                       compile a multi-frequency test plan
//   diagnose                   fault diagnosis by configuration signature
//   opamp-test                 transparent-configuration opamp screen
//   bode                       nominal frequency response of the circuit
//
// Circuit selection (all subcommands):
//   --circuit NAME             a zoo circuit (default: biquad), or
//   --deck FILE                a SPICE deck (needs >=1 opamp, a V source,
//                              and a .probe card)
//
// Campaign knobs:
//   --eps X                    tester accuracy (default 0.08)
//   --tol X                    process tolerance (default 0.03; 0 = off)
//   --samples N                Monte-Carlo samples (default 48)
//   --ppd N                    sweep points per decade (default 50)
//   --max-followers K          structural config pre-selection
//   --preselect                run the sensitivity screen first
//   --no-lowrank               disable the frequency-major low-rank (SMW)
//                              fault solves; classic fault-major sweeps
//                              (MCDFT_LOWRANK=0 does the same globally)
//   --no-batch                 disable batched (multi-RHS SIMD) SMW fault
//                              solves, keeping per-fault low-rank updates
//                              (MCDFT_BATCH=0 does the same globally)
//   --report FILE              write a JSON run report (timings, solver
//                              statistics, per-config coverage)
//
// Sharding & checkpointing (analyze / merge):
//   --shard i/N                run only shard i of an N-way static split of
//                              the (configuration x fault) work matrix
//   --checkpoint DIR           write/resume shard-<i>of<N>.json checkpoints
//                              in DIR (atomic rename + fsync per unit)
//
// Exit codes:
//   0  success
//   1  runtime error (solver, parse, checkpoint manifest mismatch, ...)
//   2  usage error
//   3  campaign completed but quarantined >=1 (fault, omega) cell after
//      exhausting the retry ladder (results degraded, see DESIGN.md
//      "Resilience & failure semantics")
//
// Examples:
//   mcdft analyze --circuit leapfrog --max-followers 2
//   mcdft analyze --circuit biquad --shard 1/3 --checkpoint ckpt/
//   mcdft merge --checkpoint ckpt/ --report merged.json
//   mcdft optimize --circuit biquad
//   mcdft plan --circuit biquad --sopt
//   mcdft diagnose --deck myfilter.cir --levels 4

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "circuits/zoo.hpp"
#include "core/checkpoint.hpp"
#include "core/diagnosis.hpp"
#include "core/optimizer.hpp"
#include "core/preselection.hpp"
#include "core/report.hpp"
#include "core/run_report.hpp"
#include "core/shard.hpp"
#include "core/test_plan.hpp"
#include "spice/parser.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace mcdft;

/// Everything a subcommand needs, built from the common flags.
struct Session {
  core::DftCircuit circuit;
  std::vector<faults::Fault> fault_list;
  std::vector<core::ConfigVector> configs;
  core::CampaignOptions options;
  std::string circuit_name;
  std::string report_path;     // --report FILE; empty = no run report
  std::string checkpoint_dir;  // --checkpoint DIR; empty = no checkpoints
  core::ShardSpec shard;       // --shard i/N; default 0/1 (everything)

  core::CampaignResult RunCampaignNow() const {
    if (report_path.empty()) {
      return core::RunCampaign(circuit, fault_list, configs, options);
    }
    core::CampaignRunRecorder recorder;
    auto campaign = core::RunCampaign(circuit, fault_list, configs, options);
    core::RunReportOptions report_options;
    report_options.circuit = circuit_name;
    report_options.threads = options.threads;
    core::WriteRunReport(recorder.Finish(campaign, report_options),
                         report_path);
    std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
    return campaign;
  }
};

core::AnalogBlock LoadBlock(const util::CliArgs& args) {
  if (args.Has("deck")) {
    return core::MakeBlockFromDeck(
        spice::ParseDeckFile(args.GetString("deck", "")));
  }
  return circuits::FindInZoo(args.GetString("circuit", "biquad")).build();
}

Session MakeSession(const util::CliArgs& args) {
  auto block = LoadBlock(args);
  core::DftCircuit circuit = core::DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());

  auto options = core::MakePaperCampaignOptions();
  options.criteria.epsilon = args.GetDouble("eps", 0.08);
  options.points_per_decade =
      static_cast<std::size_t>(args.GetInt("ppd", 50));
  const double tol = args.GetDouble("tol", 0.03);
  if (tol <= 0.0) {
    options.tolerance.reset();
  } else {
    options.tolerance->component_tolerance = tol;
    options.tolerance->samples =
        static_cast<std::size_t>(args.GetInt("samples", 48));
  }
  if (args.Has("no-lowrank")) options.mna.lowrank_fault_updates = false;
  if (args.Has("no-batch")) options.mna.fault_batch = 0;

  auto space = circuit.Space();
  const std::size_t default_k = space.OpampCount() > 5 ? 2 : space.OpampCount();
  const std::size_t k = static_cast<std::size_t>(
      args.GetInt("max-followers", static_cast<int>(default_k)));
  std::vector<core::ConfigVector> configs = space.UpToKFollowers(k);
  std::erase_if(configs, [](const core::ConfigVector& cv) {
    return cv.IsTransparent();
  });

  if (args.Has("preselect")) {
    auto pre = core::PreselectConfigurations(circuit, fault_list, configs);
    std::printf("pre-selection kept %zu of %zu configurations:",
                pre.selected.size(), configs.size());
    for (const auto& cv : pre.selected) std::printf(" %s", cv.Name().c_str());
    std::printf("\n\n");
    configs = pre.selected;
  }

  std::string circuit_name = args.Has("deck") ? args.GetString("deck", "")
                                              : args.GetString("circuit",
                                                               "biquad");
  core::ShardSpec shard;  // 0 of 1
  if (args.Has("shard")) {
    shard = core::ParseShardSpec(args.GetString("shard", ""));
  }
  return Session{std::move(circuit),
                 std::move(fault_list),
                 std::move(configs),
                 std::move(options),
                 std::move(circuit_name),
                 args.GetString("report", ""),
                 args.GetString("checkpoint", ""),
                 shard};
}

int CmdList() {
  std::printf("Bundled circuits:\n");
  for (const auto& entry : circuits::Zoo()) {
    auto block = entry.build();
    std::printf("  %-10s %-55s (%zu opamps)\n", entry.name.c_str(),
                entry.description.c_str(), block.opamps.size());
  }
  return 0;
}

int CmdBode(const util::CliArgs& args) {
  auto block = LoadBlock(args);
  spice::AcAnalyzer analyzer(block.netlist);
  spice::Probe probe{block.netlist.FindNode(block.output_node), spice::kGround,
                     "v(" + block.output_node + ")"};
  auto sweep = spice::SweepSpec::Decade(args.GetDouble("fstart", 10.0),
                                        args.GetDouble("fstop", 1e5),
                                        static_cast<std::size_t>(
                                            args.GetInt("ppd", 10)));
  auto r = analyzer.Run(sweep, probe);
  std::printf("%s of %s:\n", probe.label.c_str(), block.name.c_str());
  for (std::size_t i = 0; i < r.PointCount(); ++i) {
    const double db = r.MagnitudeDbAt(i);
    const double frac = std::clamp((db + 80.0) / 80.0, 0.0, 1.0);
    std::printf("  %s\n",
                util::BarLine(util::FormatEngineering(r.freqs_hz[i], 3) + "Hz",
                              frac,
                              util::FormatTrimmed(db, 1) + " dB  " +
                                  util::FormatTrimmed(r.PhaseDegAt(i), 0) +
                                  "deg",
                              30, 10)
                    .c_str());
  }
  return 0;
}

/// Exit code for campaigns that completed with quarantined cells: the
/// results are usable but degraded (quarantined (fault, omega) points
/// count as undetected), and scripted callers must be able to tell that
/// apart from both success (0) and failure (1/2).
constexpr int kExitQuarantine = 3;

int QuarantineExit(const core::CampaignResult& campaign) {
  const std::size_t q = campaign.QuarantinedCellCount();
  if (q == 0) return 0;
  std::fprintf(stderr,
               "warning: %zu (fault, omega) cell(s) quarantined after the "
               "retry ladder; they count as undetected (exit code %d)\n", q,
               kExitQuarantine);
  return kExitQuarantine;
}

/// Per-shard resilience notes (salvaged checkpoints, tolerated write
/// failures) go to stderr so scripted stdout parsing stays stable.
void PrintShardResilienceNotes(const core::ShardRunResult& run) {
  for (const auto& d : run.salvage_diagnostics) {
    std::fprintf(stderr, "checkpoint salvage: %s\n", d.c_str());
  }
  if (run.checkpoint_write_failures > 0) {
    std::fprintf(stderr,
                 "warning: %zu checkpoint write(s) failed (last: %s); the "
                 "previous checkpoint is intact, resume will recompute the "
                 "difference\n",
                 run.checkpoint_write_failures, run.last_write_error.c_str());
  }
}

/// The analyze output body, shared between `analyze` (monolithic or
/// single-shard checkpointed runs) and `merge` so CI can diff the two.
void PrintCampaignAnalysis(const core::CampaignResult& campaign) {
  std::printf("%s\n", core::RenderDetectabilityMatrix(campaign).c_str());
  std::printf("%s\n", core::RenderOmegaTable(campaign).c_str());
  const std::size_t c0 = campaign.RowOf(
      core::ConfigVector(campaign.PerConfig().front().config.BitCount()));
  std::printf("functional configuration: coverage %s%%, <w-det> %s%%\n",
              util::FormatTrimmed(100.0 * campaign.Coverage({c0}), 1).c_str(),
              util::FormatTrimmed(100.0 * campaign.AverageOmegaDet({c0}), 1)
                  .c_str());
  std::printf("all configurations:       coverage %s%%, <w-det> %s%%\n",
              util::FormatTrimmed(100.0 * campaign.Coverage(), 1).c_str(),
              util::FormatTrimmed(100.0 * campaign.AverageOmegaDet(), 1)
                  .c_str());
}

int CmdAnalyze(const util::CliArgs& args) {
  Session session = MakeSession(args);
  if (args.Has("shard") && session.checkpoint_dir.empty()) {
    std::fprintf(stderr, "error: --shard requires --checkpoint DIR\n");
    return 2;
  }

  if (session.checkpoint_dir.empty()) {
    const core::CampaignResult campaign = session.RunCampaignNow();
    PrintCampaignAnalysis(campaign);
    return QuarantineExit(campaign);
  }

  // Checkpointed run: execute this shard's units (resuming from any
  // existing checkpoint), then — when this one shard is the whole
  // campaign — merge its file and print the usual analysis.
  core::ShardRunOptions shard_options;
  shard_options.shard = session.shard;
  shard_options.checkpoint_dir = session.checkpoint_dir;
  const core::ShardRunResult run = core::RunCampaignShard(
      session.circuit, session.fault_list, session.configs, session.options,
      shard_options);
  std::fprintf(stderr,
               "shard %s: %zu units (%zu resumed, %zu run) -> %s\n",
               session.shard.Name().c_str(), run.units_total,
               run.units_resumed, run.units_run, run.shard_path.c_str());
  PrintShardResilienceNotes(run);
  if (session.shard.count > 1) {
    if (!session.report_path.empty()) {
      std::fprintf(stderr,
                   "note: --report applies to 'mcdft merge', not to "
                   "individual shards\n");
    }
    std::printf("shard %s complete; merge all %zu shards with: "
                "mcdft merge --checkpoint %s\n",
                session.shard.Name().c_str(), session.shard.count,
                session.checkpoint_dir.c_str());
    if (run.quarantined_cells > 0) {
      std::fprintf(stderr,
                   "warning: %zu (fault, omega) cell(s) quarantined in this "
                   "shard (exit code %d)\n",
                   run.quarantined_cells, kExitQuarantine);
      return kExitQuarantine;
    }
    return 0;
  }

  core::CampaignRunRecorder recorder;
  core::MergedCampaign merged = core::MergeShards({run.shard_path});
  if (!session.report_path.empty()) {
    core::RunReportOptions report_options;
    report_options.circuit = session.circuit_name;
    report_options.threads = session.options.threads;
    core::WriteRunReport(recorder.Finish(merged.campaign, report_options),
                         session.report_path);
    std::fprintf(stderr, "run report written to %s\n",
                 session.report_path.c_str());
  }
  PrintCampaignAnalysis(merged.campaign);
  return QuarantineExit(merged.campaign);
}

int CmdMerge(const util::CliArgs& args) {
  const std::string dir = args.GetString("checkpoint", "");
  if (dir.empty()) {
    std::fprintf(stderr, "usage: mcdft merge --checkpoint DIR "
                         "[--report FILE]\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: cannot read checkpoint directory %s: %s\n",
                 dir.c_str(), ec.message().c_str());
    return 2;
  }
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (entry.is_regular_file() && name.starts_with("shard-") &&
        name.ends_with(".json")) {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "error: no shard-*.json checkpoints in %s\n",
                 dir.c_str());
    return 2;
  }

  core::CampaignRunRecorder recorder;
  core::MergedCampaign merged = core::MergeShards(paths);
  std::fprintf(stderr, "merged %zu shard file(s) from %s (circuit %s)\n",
               merged.shard_files, dir.c_str(), merged.circuit.c_str());
  const std::string report_path = args.GetString("report", "");
  if (!report_path.empty()) {
    core::RunReportOptions report_options;
    report_options.tool = "mcdft merge";
    report_options.circuit = merged.circuit;
    core::WriteRunReport(recorder.Finish(merged.campaign, report_options),
                         report_path);
    std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
  }
  PrintCampaignAnalysis(merged.campaign);
  return QuarantineExit(merged.campaign);
}

int CmdOptimize(const util::CliArgs& args) {
  Session session = MakeSession(args);
  auto campaign = session.RunCampaignNow();
  core::DftOptimizer optimizer(session.circuit, campaign);
  auto fundamental = optimizer.SolveFundamental();
  std::printf("%s\n", core::RenderFundamental(fundamental, campaign).c_str());
  auto sel = optimizer.OptimizeConfigurationCount();
  std::printf("%s\n", core::RenderSelection(sel, campaign).c_str());
  auto part = optimizer.OptimizePartialDft();
  std::printf("%s\n",
              core::RenderPartialDft(part, campaign, session.circuit).c_str());
  return 0;
}

int CmdPlan(const util::CliArgs& args) {
  Session session = MakeSession(args);
  auto campaign = session.RunCampaignNow();
  core::TestPlanOptions plan_options;
  if (args.Has("magnitude-only")) {
    plan_options.mode = core::MeasurementMode::kMagnitude;
  }
  plan_options.exact = args.Has("exact");
  if (args.Has("sopt")) {
    core::DftOptimizer optimizer(session.circuit, campaign);
    auto sel = optimizer.OptimizeConfigurationCount();
    plan_options.rows = sel.selected.rows.Variables();
    std::printf("restricting the plan to S_opt = %s\n\n",
                core::RowSetName(campaign, sel.selected.rows).c_str());
  }
  auto plan = core::GenerateTestPlan(campaign, plan_options);
  std::printf("%s\n", core::RenderTestPlan(plan, campaign).c_str());
  return 0;
}

int CmdDiagnose(const util::CliArgs& args) {
  Session session = MakeSession(args);
  auto campaign = session.RunCampaignNow();
  core::DiagnosisOptions diag;
  diag.levels = static_cast<std::size_t>(args.GetInt("levels", 1));
  auto report = core::Diagnose(campaign, diag);
  std::printf("%s\n", core::RenderDiagnosis(report, campaign).c_str());
  return 0;
}

int CmdOpampTest(const util::CliArgs& args) {
  auto block = LoadBlock(args);
  core::DftCircuit circuit = core::DftCircuit::Transform(block);
  auto result = core::RunOpampTransparentTest(circuit);
  std::printf("transparent-configuration opamp screen:\n");
  for (const auto& v : result.screen) {
    std::printf("  %-20s %sdetected (w-det %s%%)\n", v.fault.Label().c_str(),
                v.detectable ? "" : "NOT ",
                util::FormatTrimmed(100.0 * v.omega_detectability, 1).c_str());
  }
  std::printf("screen coverage: %s%%\n\n",
              util::FormatTrimmed(100.0 * result.screen_coverage, 1).c_str());
  std::printf("%s\n",
              core::RenderDiagnosis(result.diagnosis, result.localization)
                  .c_str());
  return 0;
}

void PrintUsage() {
  std::printf(
      "usage: mcdft "
      "<list|bode|analyze|merge|optimize|plan|diagnose|opamp-test>\n"
      "             [--circuit NAME | --deck FILE] [--eps X] [--tol X]\n"
      "             [--samples N] [--ppd N] [--max-followers K] [--preselect]\n"
      "             [--no-lowrank] [--no-batch] [--report FILE]\n"
      "             [analyze: --shard i/N --checkpoint DIR]\n"
      "             [merge: --checkpoint DIR]\n"
      "             [plan: --sopt --magnitude-only --exact]\n"
      "             [diagnose: --levels N]\n"
      "Run 'mcdft list' for the bundled circuits.\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  if (args.Positional().empty()) {
    PrintUsage();
    return 2;
  }
  const std::string& cmd = args.Positional()[0];
  try {
    if (cmd == "list") return CmdList();
    if (cmd == "bode") return CmdBode(args);
    if (cmd == "analyze") return CmdAnalyze(args);
    if (cmd == "merge") return CmdMerge(args);
    if (cmd == "optimize") return CmdOptimize(args);
    if (cmd == "plan") return CmdPlan(args);
    if (cmd == "diagnose") return CmdDiagnose(args);
    if (cmd == "opamp-test") return CmdOpampTest(args);
    std::fprintf(stderr, "unknown subcommand '%s'\n\n", cmd.c_str());
    PrintUsage();
    return 2;
  } catch (const util::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
