#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the parallel
# campaign paths.  Run from the repository root:
#
#   tools/check.sh           # full: tier-1 build+ctest, then TSan subset
#   tools/check.sh --tier1   # tier-1 only
#   tools/check.sh --tsan    # TSan subset only
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_tsan=1
case "${1:-}" in
  --tier1) run_tsan=0 ;;
  --tsan) run_tier1=0 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--tier1|--tsan]" >&2; exit 2 ;;
esac

if [[ "$run_tier1" == 1 ]]; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== TSan: parallel campaign / envelope / pool tests ==="
  cmake -B build-tsan -S . -DMCDFT_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target mcdft_tests
  # TSAN_OPTIONS makes any report fail the run even where a test would pass.
  TSAN_OPTIONS="halt_on_error=1" MCDFT_THREADS=4 \
    ./build-tsan/tests/mcdft_tests \
    --gtest_filter='Campaign.*:ToleranceEnvelope.*:Parallel.*:SolverReuse.*'
fi

echo "check.sh: OK"
