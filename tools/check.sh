#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the parallel campaign and
# observability paths.  Run from the repository root:
#
#   tools/check.sh           # full: tier-1 build+ctest, fault-injection
#                            # ctest, TSan, then ASan+UBSan
#   tools/check.sh --tier1   # tier-1 only
#   tools/check.sh --faults  # tier-1 ctest with MCDFT_FAULTPOINTS armed
#   tools/check.sh --tsan    # TSan subset only
#   tools/check.sh --asan    # ASan+UBSan subset only
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=1
run_faults=1
run_tsan=1
run_asan=1
case "${1:-}" in
  --tier1) run_faults=0; run_tsan=0; run_asan=0 ;;
  --faults) run_tier1=0; run_tsan=0; run_asan=0 ;;
  --tsan) run_tier1=0; run_faults=0; run_asan=0 ;;
  --asan) run_tier1=0; run_faults=0; run_tsan=0 ;;
  "") ;;
  *) echo "usage: tools/check.sh [--tier1|--faults|--tsan|--asan]" >&2; exit 2 ;;
esac

# The armed-suite spec for fault-injection runs: rare short checkpoint
# writes plus rare SMW solve failures.  Byte-pinning tests opt out via
# util::faultpoint::DisarmAll(); everything else must absorb the faults
# (retry ladder, checkpoint salvage) and still pass.  Both firing modes
# are deterministic per seed, so this run is reproducible.
FAULT_SPEC='checkpoint.write.short:0.05:1234,smw.solve:0.01:99'

# Concurrency-sensitive subset: parallel campaigns, the Monte-Carlo
# envelope, the pool, solver reuse, the frequency-major low-rank fault
# solves (including the batched multi-RHS path and its shard merges), and
# the metrics/trace/run-report layer (striped counters are updated from
# every pool worker).
PARALLEL_FILTER='Campaign*:ToleranceEnvelope*:Parallel*:SolverReuse*:LowRank*:*Batch*:Metrics*:Trace*:RunReport*'

if [[ "$run_tier1" == 1 ]]; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$run_faults" == 1 ]]; then
  echo "=== fault injection: tier-1 ctest with MCDFT_FAULTPOINTS armed ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j
  (cd build && MCDFT_FAULTPOINTS="$FAULT_SPEC" \
    ctest --output-on-failure -j "$(nproc)")
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== TSan: parallel campaign / envelope / pool / metrics tests ==="
  cmake -B build-tsan -S . -DMCDFT_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j --target mcdft_tests
  # TSAN_OPTIONS makes any report fail the run even where a test would pass.
  # MCDFT_METRICS=1 turns the striped counters on so TSan sees their writes.
  TSAN_OPTIONS="halt_on_error=1" MCDFT_THREADS=4 MCDFT_METRICS=1 \
    ./build-tsan/tests/mcdft_tests \
    --gtest_filter="$PARALLEL_FILTER"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== ASan+UBSan: full test suite with metrics enabled ==="
  cmake -B build-asan -S . -DMCDFT_SANITIZE=address >/dev/null
  cmake --build build-asan -j --target mcdft_tests
  ASAN_OPTIONS="halt_on_error=1" UBSAN_OPTIONS="halt_on_error=1" \
    MCDFT_THREADS=4 MCDFT_METRICS=1 \
    ./build-asan/tests/mcdft_tests
fi

echo "check.sh: OK"
