file(REMOVE_RECURSE
  "libmcdft_linalg.a"
)
