# Empty compiler generated dependencies file for mcdft_linalg.
# This may be replaced when dependencies are built.
