file(REMOVE_RECURSE
  "CMakeFiles/mcdft_linalg.dir/linalg/dense.cpp.o"
  "CMakeFiles/mcdft_linalg.dir/linalg/dense.cpp.o.d"
  "CMakeFiles/mcdft_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/mcdft_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/mcdft_linalg.dir/linalg/sparse.cpp.o"
  "CMakeFiles/mcdft_linalg.dir/linalg/sparse.cpp.o.d"
  "CMakeFiles/mcdft_linalg.dir/linalg/sparse_lu.cpp.o"
  "CMakeFiles/mcdft_linalg.dir/linalg/sparse_lu.cpp.o.d"
  "libmcdft_linalg.a"
  "libmcdft_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
