
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac_analysis.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/ac_analysis.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/ac_analysis.cpp.o.d"
  "/root/repo/src/spice/dc_analysis.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/dc_analysis.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/dc_analysis.cpp.o.d"
  "/root/repo/src/spice/elements.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/elements.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/elements.cpp.o.d"
  "/root/repo/src/spice/mna.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/mna.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/mna.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/netlist.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/netlist.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/parser.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/parser.cpp.o.d"
  "/root/repo/src/spice/transfer_function.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/transfer_function.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/transfer_function.cpp.o.d"
  "/root/repo/src/spice/writer.cpp" "src/CMakeFiles/mcdft_spice.dir/spice/writer.cpp.o" "gcc" "src/CMakeFiles/mcdft_spice.dir/spice/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
