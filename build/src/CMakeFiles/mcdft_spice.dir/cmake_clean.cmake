file(REMOVE_RECURSE
  "CMakeFiles/mcdft_spice.dir/spice/ac_analysis.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/ac_analysis.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/dc_analysis.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/dc_analysis.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/elements.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/elements.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/mna.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/mna.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/netlist.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/netlist.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/parser.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/parser.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/transfer_function.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/transfer_function.cpp.o.d"
  "CMakeFiles/mcdft_spice.dir/spice/writer.cpp.o"
  "CMakeFiles/mcdft_spice.dir/spice/writer.cpp.o.d"
  "libmcdft_spice.a"
  "libmcdft_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
