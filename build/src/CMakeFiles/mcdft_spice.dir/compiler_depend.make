# Empty compiler generated dependencies file for mcdft_spice.
# This may be replaced when dependencies are built.
