file(REMOVE_RECURSE
  "libmcdft_spice.a"
)
