file(REMOVE_RECURSE
  "libmcdft_util.a"
)
