file(REMOVE_RECURSE
  "CMakeFiles/mcdft_util.dir/util/cli.cpp.o"
  "CMakeFiles/mcdft_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/mcdft_util.dir/util/strings.cpp.o"
  "CMakeFiles/mcdft_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/mcdft_util.dir/util/table.cpp.o"
  "CMakeFiles/mcdft_util.dir/util/table.cpp.o.d"
  "libmcdft_util.a"
  "libmcdft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
