# Empty dependencies file for mcdft_util.
# This may be replaced when dependencies are built.
