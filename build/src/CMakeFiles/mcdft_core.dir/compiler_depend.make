# Empty compiler generated dependencies file for mcdft_core.
# This may be replaced when dependencies are built.
