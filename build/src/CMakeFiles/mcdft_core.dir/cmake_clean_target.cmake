file(REMOVE_RECURSE
  "libmcdft_core.a"
)
