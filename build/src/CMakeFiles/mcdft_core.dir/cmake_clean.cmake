file(REMOVE_RECURSE
  "CMakeFiles/mcdft_core.dir/core/bist.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/bist.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/campaign.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/campaign.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/configuration.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/configuration.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/cost_functions.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/cost_functions.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/dft_transform.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/dft_transform.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/diagnosis.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/diagnosis.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/optimizer.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/optimizer.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/preselection.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/preselection.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/report.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/report.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/test_plan.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/test_plan.cpp.o.d"
  "CMakeFiles/mcdft_core.dir/core/test_quality.cpp.o"
  "CMakeFiles/mcdft_core.dir/core/test_quality.cpp.o.d"
  "libmcdft_core.a"
  "libmcdft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
