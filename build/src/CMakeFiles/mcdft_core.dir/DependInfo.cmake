
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bist.cpp" "src/CMakeFiles/mcdft_core.dir/core/bist.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/bist.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/mcdft_core.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/configuration.cpp" "src/CMakeFiles/mcdft_core.dir/core/configuration.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/configuration.cpp.o.d"
  "/root/repo/src/core/cost_functions.cpp" "src/CMakeFiles/mcdft_core.dir/core/cost_functions.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/cost_functions.cpp.o.d"
  "/root/repo/src/core/dft_transform.cpp" "src/CMakeFiles/mcdft_core.dir/core/dft_transform.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/dft_transform.cpp.o.d"
  "/root/repo/src/core/diagnosis.cpp" "src/CMakeFiles/mcdft_core.dir/core/diagnosis.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/diagnosis.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/CMakeFiles/mcdft_core.dir/core/optimizer.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/optimizer.cpp.o.d"
  "/root/repo/src/core/preselection.cpp" "src/CMakeFiles/mcdft_core.dir/core/preselection.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/preselection.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/mcdft_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/test_plan.cpp" "src/CMakeFiles/mcdft_core.dir/core/test_plan.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/test_plan.cpp.o.d"
  "/root/repo/src/core/test_quality.cpp" "src/CMakeFiles/mcdft_core.dir/core/test_quality.cpp.o" "gcc" "src/CMakeFiles/mcdft_core.dir/core/test_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_boolcov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
