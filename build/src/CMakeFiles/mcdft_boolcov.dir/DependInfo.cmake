
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolcov/cube.cpp" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/cube.cpp.o" "gcc" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/cube.cpp.o.d"
  "/root/repo/src/boolcov/petrick.cpp" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/petrick.cpp.o" "gcc" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/petrick.cpp.o.d"
  "/root/repo/src/boolcov/pos.cpp" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/pos.cpp.o" "gcc" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/pos.cpp.o.d"
  "/root/repo/src/boolcov/setcover.cpp" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/setcover.cpp.o" "gcc" "src/CMakeFiles/mcdft_boolcov.dir/boolcov/setcover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
