file(REMOVE_RECURSE
  "CMakeFiles/mcdft_boolcov.dir/boolcov/cube.cpp.o"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/cube.cpp.o.d"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/petrick.cpp.o"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/petrick.cpp.o.d"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/pos.cpp.o"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/pos.cpp.o.d"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/setcover.cpp.o"
  "CMakeFiles/mcdft_boolcov.dir/boolcov/setcover.cpp.o.d"
  "libmcdft_boolcov.a"
  "libmcdft_boolcov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_boolcov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
