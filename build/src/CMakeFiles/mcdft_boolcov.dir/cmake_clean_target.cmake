file(REMOVE_RECURSE
  "libmcdft_boolcov.a"
)
