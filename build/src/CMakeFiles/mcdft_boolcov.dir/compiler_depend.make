# Empty compiler generated dependencies file for mcdft_boolcov.
# This may be replaced when dependencies are built.
