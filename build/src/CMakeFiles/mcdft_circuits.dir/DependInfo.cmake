
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/ackerberg.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/ackerberg.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/ackerberg.cpp.o.d"
  "/root/repo/src/circuits/biquad.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/biquad.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/biquad.cpp.o.d"
  "/root/repo/src/circuits/cascade.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/cascade.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/cascade.cpp.o.d"
  "/root/repo/src/circuits/instrumentation.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/instrumentation.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/instrumentation.cpp.o.d"
  "/root/repo/src/circuits/khn.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/khn.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/khn.cpp.o.d"
  "/root/repo/src/circuits/leapfrog.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/leapfrog.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/leapfrog.cpp.o.d"
  "/root/repo/src/circuits/notch.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/notch.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/notch.cpp.o.d"
  "/root/repo/src/circuits/sallen_key.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/sallen_key.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/sallen_key.cpp.o.d"
  "/root/repo/src/circuits/zoo.cpp" "src/CMakeFiles/mcdft_circuits.dir/circuits/zoo.cpp.o" "gcc" "src/CMakeFiles/mcdft_circuits.dir/circuits/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_boolcov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
