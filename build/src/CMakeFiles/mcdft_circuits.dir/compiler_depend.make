# Empty compiler generated dependencies file for mcdft_circuits.
# This may be replaced when dependencies are built.
