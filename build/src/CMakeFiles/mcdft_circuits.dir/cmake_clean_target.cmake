file(REMOVE_RECURSE
  "libmcdft_circuits.a"
)
