file(REMOVE_RECURSE
  "CMakeFiles/mcdft_circuits.dir/circuits/ackerberg.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/ackerberg.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/biquad.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/biquad.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/cascade.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/cascade.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/instrumentation.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/instrumentation.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/khn.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/khn.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/leapfrog.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/leapfrog.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/notch.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/notch.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/sallen_key.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/sallen_key.cpp.o.d"
  "CMakeFiles/mcdft_circuits.dir/circuits/zoo.cpp.o"
  "CMakeFiles/mcdft_circuits.dir/circuits/zoo.cpp.o.d"
  "libmcdft_circuits.a"
  "libmcdft_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
