file(REMOVE_RECURSE
  "libmcdft_testability.a"
)
