# Empty compiler generated dependencies file for mcdft_testability.
# This may be replaced when dependencies are built.
