file(REMOVE_RECURSE
  "CMakeFiles/mcdft_testability.dir/testability/detectability.cpp.o"
  "CMakeFiles/mcdft_testability.dir/testability/detectability.cpp.o.d"
  "CMakeFiles/mcdft_testability.dir/testability/metrics.cpp.o"
  "CMakeFiles/mcdft_testability.dir/testability/metrics.cpp.o.d"
  "CMakeFiles/mcdft_testability.dir/testability/reference_band.cpp.o"
  "CMakeFiles/mcdft_testability.dir/testability/reference_band.cpp.o.d"
  "CMakeFiles/mcdft_testability.dir/testability/sensitivity.cpp.o"
  "CMakeFiles/mcdft_testability.dir/testability/sensitivity.cpp.o.d"
  "CMakeFiles/mcdft_testability.dir/testability/tolerance.cpp.o"
  "CMakeFiles/mcdft_testability.dir/testability/tolerance.cpp.o.d"
  "libmcdft_testability.a"
  "libmcdft_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
