
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testability/detectability.cpp" "src/CMakeFiles/mcdft_testability.dir/testability/detectability.cpp.o" "gcc" "src/CMakeFiles/mcdft_testability.dir/testability/detectability.cpp.o.d"
  "/root/repo/src/testability/metrics.cpp" "src/CMakeFiles/mcdft_testability.dir/testability/metrics.cpp.o" "gcc" "src/CMakeFiles/mcdft_testability.dir/testability/metrics.cpp.o.d"
  "/root/repo/src/testability/reference_band.cpp" "src/CMakeFiles/mcdft_testability.dir/testability/reference_band.cpp.o" "gcc" "src/CMakeFiles/mcdft_testability.dir/testability/reference_band.cpp.o.d"
  "/root/repo/src/testability/sensitivity.cpp" "src/CMakeFiles/mcdft_testability.dir/testability/sensitivity.cpp.o" "gcc" "src/CMakeFiles/mcdft_testability.dir/testability/sensitivity.cpp.o.d"
  "/root/repo/src/testability/tolerance.cpp" "src/CMakeFiles/mcdft_testability.dir/testability/tolerance.cpp.o" "gcc" "src/CMakeFiles/mcdft_testability.dir/testability/tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
