file(REMOVE_RECURSE
  "CMakeFiles/mcdft_faults.dir/faults/fault.cpp.o"
  "CMakeFiles/mcdft_faults.dir/faults/fault.cpp.o.d"
  "CMakeFiles/mcdft_faults.dir/faults/fault_list.cpp.o"
  "CMakeFiles/mcdft_faults.dir/faults/fault_list.cpp.o.d"
  "CMakeFiles/mcdft_faults.dir/faults/injector.cpp.o"
  "CMakeFiles/mcdft_faults.dir/faults/injector.cpp.o.d"
  "CMakeFiles/mcdft_faults.dir/faults/simulator.cpp.o"
  "CMakeFiles/mcdft_faults.dir/faults/simulator.cpp.o.d"
  "libmcdft_faults.a"
  "libmcdft_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
