
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/fault.cpp" "src/CMakeFiles/mcdft_faults.dir/faults/fault.cpp.o" "gcc" "src/CMakeFiles/mcdft_faults.dir/faults/fault.cpp.o.d"
  "/root/repo/src/faults/fault_list.cpp" "src/CMakeFiles/mcdft_faults.dir/faults/fault_list.cpp.o" "gcc" "src/CMakeFiles/mcdft_faults.dir/faults/fault_list.cpp.o.d"
  "/root/repo/src/faults/injector.cpp" "src/CMakeFiles/mcdft_faults.dir/faults/injector.cpp.o" "gcc" "src/CMakeFiles/mcdft_faults.dir/faults/injector.cpp.o.d"
  "/root/repo/src/faults/simulator.cpp" "src/CMakeFiles/mcdft_faults.dir/faults/simulator.cpp.o" "gcc" "src/CMakeFiles/mcdft_faults.dir/faults/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
