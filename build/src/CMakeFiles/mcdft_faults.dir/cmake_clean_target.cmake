file(REMOVE_RECURSE
  "libmcdft_faults.a"
)
