# Empty dependencies file for mcdft_faults.
# This may be replaced when dependencies are built.
