
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/boolcov_cube_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/boolcov_cube_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/boolcov_cube_test.cpp.o.d"
  "/root/repo/tests/boolcov_petrick_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/boolcov_petrick_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/boolcov_petrick_test.cpp.o.d"
  "/root/repo/tests/boolcov_pos_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/boolcov_pos_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/boolcov_pos_test.cpp.o.d"
  "/root/repo/tests/boolcov_setcover_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/boolcov_setcover_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/boolcov_setcover_test.cpp.o.d"
  "/root/repo/tests/circuits_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/circuits_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/circuits_test.cpp.o.d"
  "/root/repo/tests/core_bist_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_bist_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_bist_test.cpp.o.d"
  "/root/repo/tests/core_block_from_deck_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_block_from_deck_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_block_from_deck_test.cpp.o.d"
  "/root/repo/tests/core_campaign_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_campaign_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_campaign_test.cpp.o.d"
  "/root/repo/tests/core_configuration_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_configuration_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_configuration_test.cpp.o.d"
  "/root/repo/tests/core_cost_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_cost_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_cost_test.cpp.o.d"
  "/root/repo/tests/core_dft_transform_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_dft_transform_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_dft_transform_test.cpp.o.d"
  "/root/repo/tests/core_diagnosis_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_diagnosis_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_diagnosis_test.cpp.o.d"
  "/root/repo/tests/core_optimizer_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_optimizer_test.cpp.o.d"
  "/root/repo/tests/core_preselection_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_preselection_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_preselection_test.cpp.o.d"
  "/root/repo/tests/core_report_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_report_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_report_test.cpp.o.d"
  "/root/repo/tests/core_test_plan_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_test_plan_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_test_plan_test.cpp.o.d"
  "/root/repo/tests/core_test_quality_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/core_test_quality_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/core_test_quality_test.cpp.o.d"
  "/root/repo/tests/faults_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/faults_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/faults_test.cpp.o.d"
  "/root/repo/tests/integration_paper_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/integration_paper_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/integration_paper_test.cpp.o.d"
  "/root/repo/tests/linalg_dense_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/linalg_dense_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/linalg_dense_test.cpp.o.d"
  "/root/repo/tests/linalg_lu_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/linalg_lu_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/linalg_lu_test.cpp.o.d"
  "/root/repo/tests/linalg_sparse_lu_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/linalg_sparse_lu_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/linalg_sparse_lu_test.cpp.o.d"
  "/root/repo/tests/linalg_sparse_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/linalg_sparse_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/linalg_sparse_test.cpp.o.d"
  "/root/repo/tests/sensitivity_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/sensitivity_test.cpp.o.d"
  "/root/repo/tests/spice_ac_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_ac_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_ac_test.cpp.o.d"
  "/root/repo/tests/spice_dc_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_dc_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_dc_test.cpp.o.d"
  "/root/repo/tests/spice_mna_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_mna_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_mna_test.cpp.o.d"
  "/root/repo/tests/spice_netlist_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_netlist_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_netlist_test.cpp.o.d"
  "/root/repo/tests/spice_parser_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_parser_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_parser_test.cpp.o.d"
  "/root/repo/tests/spice_roundtrip_fuzz_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_roundtrip_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_roundtrip_fuzz_test.cpp.o.d"
  "/root/repo/tests/spice_subckt_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/spice_subckt_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/spice_subckt_test.cpp.o.d"
  "/root/repo/tests/testability_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/testability_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/testability_test.cpp.o.d"
  "/root/repo/tests/tolerance_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/tolerance_test.cpp.o.d"
  "/root/repo/tests/util_cli_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/util_cli_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/util_cli_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_table_test.cpp" "tests/CMakeFiles/mcdft_tests.dir/util_table_test.cpp.o" "gcc" "tests/CMakeFiles/mcdft_tests.dir/util_table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_boolcov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
