# Empty dependencies file for mcdft_tests.
# This may be replaced when dependencies are built.
