# Empty compiler generated dependencies file for biquad_dft_flow.
# This may be replaced when dependencies are built.
