file(REMOVE_RECURSE
  "CMakeFiles/biquad_dft_flow.dir/biquad_dft_flow.cpp.o"
  "CMakeFiles/biquad_dft_flow.dir/biquad_dft_flow.cpp.o.d"
  "biquad_dft_flow"
  "biquad_dft_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biquad_dft_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
