# Empty compiler generated dependencies file for partial_dft_explorer.
# This may be replaced when dependencies are built.
