file(REMOVE_RECURSE
  "CMakeFiles/partial_dft_explorer.dir/partial_dft_explorer.cpp.o"
  "CMakeFiles/partial_dft_explorer.dir/partial_dft_explorer.cpp.o.d"
  "partial_dft_explorer"
  "partial_dft_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_dft_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
