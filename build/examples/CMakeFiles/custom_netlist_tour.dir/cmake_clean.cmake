file(REMOVE_RECURSE
  "CMakeFiles/custom_netlist_tour.dir/custom_netlist_tour.cpp.o"
  "CMakeFiles/custom_netlist_tour.dir/custom_netlist_tour.cpp.o.d"
  "custom_netlist_tour"
  "custom_netlist_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_netlist_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
