# Empty compiler generated dependencies file for custom_netlist_tour.
# This may be replaced when dependencies are built.
