file(REMOVE_RECURSE
  "CMakeFiles/mcdft_cli.dir/mcdft_cli.cpp.o"
  "CMakeFiles/mcdft_cli.dir/mcdft_cli.cpp.o.d"
  "mcdft"
  "mcdft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdft_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
