# Empty dependencies file for mcdft_cli.
# This may be replaced when dependencies are built.
