file(REMOVE_RECURSE
  "CMakeFiles/exp_graph1_initial_testability.dir/exp_graph1_initial_testability.cpp.o"
  "CMakeFiles/exp_graph1_initial_testability.dir/exp_graph1_initial_testability.cpp.o.d"
  "exp_graph1_initial_testability"
  "exp_graph1_initial_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_graph1_initial_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
