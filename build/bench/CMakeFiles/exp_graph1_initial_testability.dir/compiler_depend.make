# Empty compiler generated dependencies file for exp_graph1_initial_testability.
# This may be replaced when dependencies are built.
