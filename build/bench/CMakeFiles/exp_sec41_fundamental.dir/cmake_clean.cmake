file(REMOVE_RECURSE
  "CMakeFiles/exp_sec41_fundamental.dir/exp_sec41_fundamental.cpp.o"
  "CMakeFiles/exp_sec41_fundamental.dir/exp_sec41_fundamental.cpp.o.d"
  "exp_sec41_fundamental"
  "exp_sec41_fundamental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sec41_fundamental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
