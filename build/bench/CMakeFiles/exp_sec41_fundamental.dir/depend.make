# Empty dependencies file for exp_sec41_fundamental.
# This may be replaced when dependencies are built.
