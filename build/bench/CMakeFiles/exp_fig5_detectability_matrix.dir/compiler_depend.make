# Empty compiler generated dependencies file for exp_fig5_detectability_matrix.
# This may be replaced when dependencies are built.
