file(REMOVE_RECURSE
  "CMakeFiles/exp_fig5_detectability_matrix.dir/exp_fig5_detectability_matrix.cpp.o"
  "CMakeFiles/exp_fig5_detectability_matrix.dir/exp_fig5_detectability_matrix.cpp.o.d"
  "exp_fig5_detectability_matrix"
  "exp_fig5_detectability_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig5_detectability_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
