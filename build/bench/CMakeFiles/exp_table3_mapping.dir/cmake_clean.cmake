file(REMOVE_RECURSE
  "CMakeFiles/exp_table3_mapping.dir/exp_table3_mapping.cpp.o"
  "CMakeFiles/exp_table3_mapping.dir/exp_table3_mapping.cpp.o.d"
  "exp_table3_mapping"
  "exp_table3_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table3_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
