# Empty dependencies file for exp_table3_mapping.
# This may be replaced when dependencies are built.
