# Empty dependencies file for ablation_covering.
# This may be replaced when dependencies are built.
