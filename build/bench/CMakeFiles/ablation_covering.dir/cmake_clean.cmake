file(REMOVE_RECURSE
  "CMakeFiles/ablation_covering.dir/ablation_covering.cpp.o"
  "CMakeFiles/ablation_covering.dir/ablation_covering.cpp.o.d"
  "ablation_covering"
  "ablation_covering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_covering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
