file(REMOVE_RECURSE
  "CMakeFiles/exp_graph2_dft_improvement.dir/exp_graph2_dft_improvement.cpp.o"
  "CMakeFiles/exp_graph2_dft_improvement.dir/exp_graph2_dft_improvement.cpp.o.d"
  "exp_graph2_dft_improvement"
  "exp_graph2_dft_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_graph2_dft_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
