# Empty compiler generated dependencies file for exp_graph2_dft_improvement.
# This may be replaced when dependencies are built.
