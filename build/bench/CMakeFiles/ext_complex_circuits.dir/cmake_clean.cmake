file(REMOVE_RECURSE
  "CMakeFiles/ext_complex_circuits.dir/ext_complex_circuits.cpp.o"
  "CMakeFiles/ext_complex_circuits.dir/ext_complex_circuits.cpp.o.d"
  "ext_complex_circuits"
  "ext_complex_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_complex_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
