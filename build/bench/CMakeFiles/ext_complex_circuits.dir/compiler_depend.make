# Empty compiler generated dependencies file for ext_complex_circuits.
# This may be replaced when dependencies are built.
