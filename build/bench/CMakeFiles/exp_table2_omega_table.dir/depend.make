# Empty dependencies file for exp_table2_omega_table.
# This may be replaced when dependencies are built.
