file(REMOVE_RECURSE
  "CMakeFiles/exp_table2_omega_table.dir/exp_table2_omega_table.cpp.o"
  "CMakeFiles/exp_table2_omega_table.dir/exp_table2_omega_table.cpp.o.d"
  "exp_table2_omega_table"
  "exp_table2_omega_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table2_omega_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
