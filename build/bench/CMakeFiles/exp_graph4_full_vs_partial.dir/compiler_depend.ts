# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_graph4_full_vs_partial.
