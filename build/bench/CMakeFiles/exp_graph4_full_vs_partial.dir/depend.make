# Empty dependencies file for exp_graph4_full_vs_partial.
# This may be replaced when dependencies are built.
