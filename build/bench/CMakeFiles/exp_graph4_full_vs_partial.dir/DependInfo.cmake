
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_graph4_full_vs_partial.cpp" "bench/CMakeFiles/exp_graph4_full_vs_partial.dir/exp_graph4_full_vs_partial.cpp.o" "gcc" "bench/CMakeFiles/exp_graph4_full_vs_partial.dir/exp_graph4_full_vs_partial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mcdft_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_boolcov.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mcdft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
