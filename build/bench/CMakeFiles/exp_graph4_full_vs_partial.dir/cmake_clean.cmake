file(REMOVE_RECURSE
  "CMakeFiles/exp_graph4_full_vs_partial.dir/exp_graph4_full_vs_partial.cpp.o"
  "CMakeFiles/exp_graph4_full_vs_partial.dir/exp_graph4_full_vs_partial.cpp.o.d"
  "exp_graph4_full_vs_partial"
  "exp_graph4_full_vs_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_graph4_full_vs_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
