file(REMOVE_RECURSE
  "CMakeFiles/ext_test_plan.dir/ext_test_plan.cpp.o"
  "CMakeFiles/ext_test_plan.dir/ext_test_plan.cpp.o.d"
  "ext_test_plan"
  "ext_test_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_test_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
