# Empty dependencies file for ext_test_plan.
# This may be replaced when dependencies are built.
