# Empty compiler generated dependencies file for exp_table4_partial_dft.
# This may be replaced when dependencies are built.
