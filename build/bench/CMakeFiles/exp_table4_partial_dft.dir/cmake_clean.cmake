file(REMOVE_RECURSE
  "CMakeFiles/exp_table4_partial_dft.dir/exp_table4_partial_dft.cpp.o"
  "CMakeFiles/exp_table4_partial_dft.dir/exp_table4_partial_dft.cpp.o.d"
  "exp_table4_partial_dft"
  "exp_table4_partial_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table4_partial_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
