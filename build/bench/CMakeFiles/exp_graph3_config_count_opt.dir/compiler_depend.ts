# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_graph3_config_count_opt.
