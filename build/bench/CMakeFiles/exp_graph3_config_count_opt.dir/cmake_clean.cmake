file(REMOVE_RECURSE
  "CMakeFiles/exp_graph3_config_count_opt.dir/exp_graph3_config_count_opt.cpp.o"
  "CMakeFiles/exp_graph3_config_count_opt.dir/exp_graph3_config_count_opt.cpp.o.d"
  "exp_graph3_config_count_opt"
  "exp_graph3_config_count_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_graph3_config_count_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
