# Empty compiler generated dependencies file for exp_graph3_config_count_opt.
# This may be replaced when dependencies are built.
