# Empty dependencies file for ext_opamp_transparent_test.
# This may be replaced when dependencies are built.
