file(REMOVE_RECURSE
  "CMakeFiles/ext_opamp_transparent_test.dir/ext_opamp_transparent_test.cpp.o"
  "CMakeFiles/ext_opamp_transparent_test.dir/ext_opamp_transparent_test.cpp.o.d"
  "ext_opamp_transparent_test"
  "ext_opamp_transparent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_opamp_transparent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
