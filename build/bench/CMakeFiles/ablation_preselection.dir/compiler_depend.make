# Empty compiler generated dependencies file for ablation_preselection.
# This may be replaced when dependencies are built.
