file(REMOVE_RECURSE
  "CMakeFiles/ablation_preselection.dir/ablation_preselection.cpp.o"
  "CMakeFiles/ablation_preselection.dir/ablation_preselection.cpp.o.d"
  "ablation_preselection"
  "ablation_preselection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preselection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
