file(REMOVE_RECURSE
  "CMakeFiles/exp_table1_configurations.dir/exp_table1_configurations.cpp.o"
  "CMakeFiles/exp_table1_configurations.dir/exp_table1_configurations.cpp.o.d"
  "exp_table1_configurations"
  "exp_table1_configurations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table1_configurations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
