# Empty dependencies file for exp_table1_configurations.
# This may be replaced when dependencies are built.
