// Interactive cost/benefit exploration of the DFT optimization on any
// circuit of the zoo, with user-defined cost models.
//
// Usage:
//   ./build/examples/partial_dft_explorer --circuit leapfrog
//   ./build/examples/partial_dft_explorer --circuit biquad --eps 0.1 \
//        --tol 0.05 --sec-per-point 0.01 --reconfig-sec 2 \
//        --area-per-opamp 120 --area-per-line 15
//
// Options:
//   --circuit NAME      circuit from the zoo (default: biquad); --list shows all
//   --eps X             tester accuracy epsilon (default 0.08)
//   --tol X             component tolerance for the envelope (default 0.03)
//   --samples N         Monte-Carlo samples (default 48; 0 disables envelope)
//   --max-followers K   structural config pre-selection for big circuits
//   --sec-per-point X   test-time model: seconds per AC point (default 5m)
//   --reconfig-sec X    test-time model: reconfiguration time (default 1)
//   --area-per-opamp X  area model: units per configurable opamp (default 100)
//   --area-per-line X   area model: units per selection line (default 10)

#include <cstdio>

#include "circuits/zoo.hpp"
#include "core/bist.hpp"
#include "core/report.hpp"
#include "core/test_plan.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace mcdft;
  util::CliArgs args(argc, argv);

  if (args.Has("list")) {
    std::printf("Available circuits:\n");
    for (const auto& entry : circuits::Zoo()) {
      std::printf("  %-10s %s\n", entry.name.c_str(),
                  entry.description.c_str());
    }
    return 0;
  }

  const auto& entry = circuits::FindInZoo(args.GetString("circuit", "biquad"));
  auto block = entry.build();
  core::DftCircuit circuit = core::DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());

  auto options = core::MakePaperCampaignOptions();
  options.criteria.epsilon = args.GetDouble("eps", 0.08);
  const int samples = args.GetInt("samples", 48);
  if (samples <= 0) {
    options.tolerance.reset();
  } else {
    options.tolerance->samples = static_cast<std::size_t>(samples);
    options.tolerance->component_tolerance = args.GetDouble("tol", 0.03);
  }

  auto space = circuit.Space();
  const std::size_t default_k = space.OpampCount() > 5 ? 2 : space.OpampCount();
  const std::size_t max_followers = static_cast<std::size_t>(
      args.GetInt("max-followers", static_cast<int>(default_k)));
  auto configs = space.UpToKFollowers(max_followers);
  std::erase_if(configs, [](const core::ConfigVector& cv) {
    return cv.IsTransparent();
  });

  std::printf("Circuit: %s  (%zu opamps, %zu faults, %zu configurations)\n\n",
              entry.description.c_str(), space.OpampCount(), fault_list.size(),
              configs.size());
  auto campaign = core::RunCampaign(circuit, fault_list, configs, options);
  std::printf("%s\n", core::RenderOmegaTable(campaign).c_str());

  core::DftOptimizer optimizer(circuit, campaign);
  auto fundamental = optimizer.SolveFundamental();
  std::printf("%s\n", core::RenderFundamental(fundamental, campaign).c_str());

  // --- 2nd-order requirement: three cost models side by side -----------
  core::ConfigCountCost config_cost;
  core::TestTimeCost time_cost(args.GetDouble("sec-per-point", 5e-3),
                               args.GetDouble("reconfig-sec", 1.0));
  core::SiliconAreaCost area_cost(args.GetDouble("area-per-opamp", 100.0),
                                  args.GetDouble("area-per-line", 10.0));
  for (const core::CostFunction* cost :
       {static_cast<const core::CostFunction*>(&config_cost),
        static_cast<const core::CostFunction*>(&time_cost),
        static_cast<const core::CostFunction*>(&area_cost)}) {
    try {
      auto sel = optimizer.Optimize(*cost);
      std::printf("%s\n", core::RenderSelection(sel, campaign).c_str());
    } catch (const util::Error& e) {
      std::printf("cost '%s': %s\n\n", cost->Name().c_str(), e.what());
    }
  }

  // --- Partial DFT -------------------------------------------------------
  try {
    auto part = optimizer.OptimizePartialDft();
    std::printf("%s\n",
                core::RenderPartialDft(part, campaign, circuit).c_str());
  } catch (const util::Error& e) {
    std::printf("partial DFT: %s\n", e.what());
  }

  // --- Compile the tester program for the config-count optimum ----------
  try {
    auto sel = optimizer.OptimizeConfigurationCount();
    core::TestPlanOptions plan_options;
    plan_options.rows = sel.selected.rows.Variables();
    auto plan = core::GenerateTestPlan(campaign, plan_options);
    std::printf("%s\n", core::RenderTestPlan(plan, campaign).c_str());

    auto schedule = core::ScheduleConfigurations(sel.selected.configs);
    std::printf("BIST schedule:");
    for (const auto& cv : schedule.order) {
      std::printf(" %s", cv.Name().c_str());
    }
    std::printf("  (%zu selection-line toggles; index order: %zu)\n",
                schedule.toggles, schedule.naive_toggles);
  } catch (const util::Error& e) {
    std::printf("test plan: %s\n", e.what());
  }
  return 0;
}
