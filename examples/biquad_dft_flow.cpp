// A guided, step-by-step walk through the paper on the biquadratic filter:
//
//   Step 1  Build the functional circuit and look at its Bode response.
//   Step 2  Evaluate its testability (Definitions 1 and 2).
//   Step 3  Insert the multi-configuration DFT and look at what each
//           configuration does to the transfer function.
//   Step 4  Run the full campaign (Fig. 5 + Table 2).
//   Step 5  Optimize: Sec. 4.1 fundamental requirement, Sec. 4.2
//           configuration count, Sec. 4.3 partial DFT.
//
// Build & run:  ./build/examples/biquad_dft_flow

#include <cstdio>

#include "circuits/biquad.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"

namespace {

using namespace mcdft;

void PrintBode(const spice::FrequencyResponse& r, const std::string& title) {
  std::printf("%s\n", title.c_str());
  for (std::size_t i = 0; i < r.PointCount(); i += 10) {
    const double db = r.MagnitudeDbAt(i);
    const double frac = std::clamp((db + 60.0) / 60.0, 0.0, 1.0);
    std::printf("  %s\n",
                util::BarLine(util::FormatEngineering(r.freqs_hz[i], 3) + "Hz",
                              frac, util::FormatTrimmed(db, 1) + " dB", 30, 10)
                    .c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // ---- Step 1: the functional filter --------------------------------
  circuits::BiquadParams params;
  auto block = circuits::BuildBiquad(params);
  std::printf("Step 1: %s\n", block.name.c_str());
  std::printf("  f0 = %.0f Hz, Q = %.2f, DC gain = %.2f\n\n", params.F0(),
              params.Q(), params.r6 / params.r1);

  spice::AcAnalyzer analyzer(block.netlist);
  spice::Probe probe{block.netlist.FindNode(block.output_node), spice::kGround,
                     "v(out3)"};
  auto sweep = spice::SweepSpec::Decade(10.0, 1e5, 25);
  PrintBode(analyzer.Run(sweep, probe), "  |T| of the functional filter:");

  // ---- Step 2: testability of the initial filter --------------------
  std::printf("Step 2: initial testability (epsilon + tolerance envelope)\n");
  core::DftCircuit circuit = circuits::BuildDftBiquad();
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  auto options = core::MakePaperCampaignOptions();
  auto initial = core::AnalyzeFunctionalOnly(circuit, fault_list, options);
  for (const auto& d : initial.PerConfig()[0].faults) {
    std::printf("  %-12s %sdetectable   w-det = %5.1f%%", d.fault.Label().c_str(),
                d.detectable ? "" : "NOT ", 100.0 * d.omega_detectability);
    if (d.detectable) {
      std::printf("   (peak dev %.0f%% at %s)", 100.0 * d.peak_deviation,
                  util::FormatEngineering(d.peak_frequency_hz, 3).c_str());
    }
    std::printf("\n");
  }
  std::printf("  coverage = %.1f%%, <w-det> = %.1f%%\n\n",
              100.0 * initial.Coverage(), 100.0 * initial.AverageOmegaDet());

  // ---- Step 3: what reconfiguration does to the response ------------
  std::printf("Step 3: emulated configurations change the functionality\n");
  for (std::size_t idx : {std::size_t{0}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}}) {
    core::ConfigVector cv = core::ConfigVector::FromIndex(idx, 3);
    core::ScopedConfiguration sc(circuit, cv);
    spice::AcAnalyzer an(circuit.Circuit());
    auto r = an.Run(sweep, {circuit.Circuit().FindNode("out3"),
                            spice::kGround, "v"});
    std::printf("  %s (%s)%s: |T(100 Hz)| = %.3f, |T(1 kHz)| = %.3f, "
                "|T(10 kHz)| = %.3f\n",
                cv.Name().c_str(), cv.BitString().c_str(),
                cv.IsTransparent() ? " transparent" : "",
                std::abs(r.values[25]), std::abs(r.values[50]),
                std::abs(r.values[75]));
  }
  std::printf("\n");

  // ---- Step 4: the campaign ------------------------------------------
  std::printf("Step 4: multi-configuration fault-simulation campaign\n\n");
  auto campaign = core::RunCampaign(circuit, fault_list,
                                    circuit.Space().AllNonTransparent(),
                                    options);
  std::printf("%s\n", core::RenderDetectabilityMatrix(campaign).c_str());
  std::printf("%s\n", core::RenderOmegaTable(campaign).c_str());

  // ---- Step 5: the ordered-requirement optimization ------------------
  std::printf("Step 5: optimization\n\n");
  core::DftOptimizer optimizer(circuit, campaign);
  auto fundamental = optimizer.SolveFundamental();
  std::printf("%s\n", core::RenderFundamental(fundamental, campaign).c_str());
  auto selection = optimizer.OptimizeConfigurationCount();
  std::printf("%s\n", core::RenderSelection(selection, campaign).c_str());
  auto partial = optimizer.OptimizePartialDft();
  std::printf("%s\n",
              core::RenderPartialDft(partial, campaign, circuit).c_str());

  std::printf("Done: brute-force <w-det> = %.1f%%, optimized set %s = %.1f%%, "
              "partial DFT (%zu opamps) = %.1f%%\n",
              100.0 * campaign.AverageOmegaDet(),
              core::RowSetName(campaign, selection.selected.rows).c_str(),
              100.0 * selection.selected.avg_omega_det, partial.opamps.size(),
              100.0 * partial.usage_all.avg_omega_det);
  return 0;
}
