// Using the library on *your own* circuit: parse a SPICE-subset deck,
// run AC analysis, inject faults, evaluate testability, and write the
// DFT-modified deck back out.
//
// Usage:
//   ./build/examples/custom_netlist_tour             # built-in demo deck
//   ./build/examples/custom_netlist_tour my.cir      # your own deck
//
// A deck needs: one AC source, passive components, opamp cards
// ("Oname in+ in- out [A0=...]"), optionally ".ac dec N f1 f2" and
// ".probe v(node)".

#include <cstdio>

#include "core/report.hpp"
#include "spice/parser.hpp"
#include "spice/writer.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

// A two-stage active low-pass the parser digests out of the box.
constexpr const char* kDemoDeck = R"(two-stage active RC low-pass
V1 in 0 DC 0 AC 1
R1 in a 10k
C1 a 0 15.9n
O1 a amid aout A0=1meg
R2 amid 0 10k
R3 amid aout 10k
R4 aout b 10k
C2 b 0 15.9n
O2 b bmid out A0=1meg
R5 bmid 0 10k
R6 bmid out 10k
.ac dec 25 10 100k
.probe v(out)
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mcdft;
  util::CliArgs args(argc, argv);

  // ---- Parse -----------------------------------------------------------
  spice::ParsedDeck deck;
  if (!args.Positional().empty()) {
    std::printf("Parsing %s ...\n", args.Positional()[0].c_str());
    deck = spice::ParseDeckFile(args.Positional()[0]);
  } else {
    std::printf("Parsing the built-in demo deck ...\n");
    deck = spice::ParseDeck(kDemoDeck);
  }
  spice::Netlist& nl = deck.netlist;
  nl.ValidateOrThrow();
  std::printf("  '%s': %zu elements, %zu nodes\n\n", nl.Title().c_str(),
              nl.ElementCount(), nl.NodeCount());

  const spice::SweepSpec sweep =
      deck.sweep ? *deck.sweep : spice::SweepSpec::Decade(10.0, 1e5, 25);
  if (deck.probes.empty()) {
    std::fprintf(stderr, "deck has no .probe card\n");
    return 1;
  }
  const spice::Probe probe = deck.probes.front();

  // ---- Nominal AC analysis ---------------------------------------------
  spice::AcAnalyzer analyzer(nl);
  auto nominal = analyzer.Run(sweep, probe);
  std::printf("Nominal %s: |T| at band edges and centre:\n",
              probe.label.c_str());
  const std::size_t mid = nominal.PointCount() / 2;
  std::printf("  %8sHz: %7.2f dB\n  %8sHz: %7.2f dB\n  %8sHz: %7.2f dB\n\n",
              util::FormatEngineering(nominal.freqs_hz.front(), 3).c_str(),
              nominal.MagnitudeDbAt(0),
              util::FormatEngineering(nominal.freqs_hz[mid], 3).c_str(),
              nominal.MagnitudeDbAt(mid),
              util::FormatEngineering(nominal.freqs_hz.back(), 3).c_str(),
              nominal.MagnitudeDbAt(nominal.PointCount() - 1));

  // ---- Fault injection demo --------------------------------------------
  auto fault_list = faults::MakeDeviationFaults(nl);
  std::printf("Fault universe (+20%% on every R and C): %zu faults\n",
              fault_list.size());
  faults::FaultSimulator simulator(nl, sweep, probe);
  testability::DetectionCriteria criteria;
  criteria.epsilon = 0.10;
  criteria.relative_floor = 0.25;
  auto verdicts = testability::AnalyzeFaultList(simulator, fault_list, criteria);
  for (const auto& v : verdicts) {
    std::printf("  %-12s %sdetectable, w-det = %5.1f%%\n",
                v.fault.Label().c_str(), v.detectable ? "" : "NOT ",
                100.0 * v.omega_detectability);
  }
  std::printf("  coverage = %.1f%%, <w-det> = %.1f%%\n\n",
              100.0 * testability::FaultCoverage(verdicts),
              100.0 * testability::AverageOmegaDetectability(verdicts));

  // ---- DFT transform and write-back ------------------------------------
  // Collect the opamps in card order as the chain.
  core::AnalogBlock block;
  block.netlist = nl.Clone();
  block.name = nl.Title();
  for (const auto& e : nl.Elements()) {
    if (e->Kind() == spice::ElementKind::kOpamp) {
      block.opamps.push_back(e->Name());
    }
  }
  if (block.opamps.empty()) {
    std::printf("No opamps in this deck: nothing to make configurable.\n");
    return 0;
  }
  // Primary input: positive node of the first AC source; output: the probe.
  for (const auto& e : nl.Elements()) {
    if (e->Kind() == spice::ElementKind::kVoltageSource) {
      block.input_node = nl.NodeName(e->Nodes()[0]);
      break;
    }
  }
  block.output_node = nl.NodeName(probe.plus);

  core::DftCircuit dft = core::DftCircuit::Transform(block);
  std::printf("DFT-modified deck (%zu configurable opamps, %zu configs):\n\n%s\n",
              dft.ConfigurableOpamps().size(),
              dft.Space().ConfigurationCount(),
              spice::WriteDeck(dft.Circuit()).c_str());
  return 0;
}
