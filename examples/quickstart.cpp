// Quickstart: the complete multi-configuration DFT flow on the paper's
// biquadratic filter, in ~60 lines of user code.
//
//   1. Build the circuit and apply the DFT transform.
//   2. Generate the fault list (20% deviations on R and C).
//   3. Run the multi-configuration fault-simulation campaign.
//   4. Optimize: fundamental requirement -> minimal configuration sets ->
//      3rd-order omega-detectability tie-break.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "circuits/biquad.hpp"
#include "core/report.hpp"

int main() {
  using namespace mcdft;

  // 1. The paper's biquad with every opamp replaced by a configurable one.
  core::DftCircuit circuit = circuits::BuildDftBiquad();
  std::cout << "Circuit: " << circuit.Name() << "\n"
            << "Configurable opamps: " << circuit.ConfigurableOpamps().size()
            << " -> " << circuit.Space().ConfigurationCount()
            << " configurations\n\n";

  // 2. One +20% deviation fault per passive component (fR1 ... fC2).
  const auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  std::cout << "Fault list (" << fault_list.size() << "):";
  for (const auto& f : fault_list) std::cout << " " << f.Label();
  std::cout << "\n\n";

  // 3. Fault-simulate every non-transparent configuration at the paper
  //    operating point (8% tester accuracy + a Monte-Carlo process-
  //    tolerance envelope standing in for the paper's epsilon).
  const core::CampaignOptions options = core::MakePaperCampaignOptions();
  const core::CampaignResult campaign = core::RunCampaign(
      circuit, fault_list, circuit.Space().AllNonTransparent(), options);

  std::cout << core::RenderDetectabilityMatrix(campaign) << "\n";
  std::cout << core::RenderOmegaTable(campaign) << "\n";

  // 4. Ordered-requirement optimization (Sec. 4.1 + 4.2 + 3rd order).
  core::DftOptimizer optimizer(circuit, campaign);
  const auto fundamental = optimizer.SolveFundamental();
  std::cout << core::RenderFundamental(fundamental, campaign) << "\n";

  const auto selection = optimizer.OptimizeConfigurationCount();
  std::cout << core::RenderSelection(selection, campaign) << "\n";

  // And the partial-DFT alternative (Sec. 4.3).
  const auto partial = optimizer.OptimizePartialDft();
  std::cout << core::RenderPartialDft(partial, campaign, circuit);

  std::cout << "\nSummary: functional-only coverage = "
            << 100.0 * campaign.Coverage({campaign.RowOf(
                   core::ConfigVector(circuit.ConfigurableOpamps().size()))})
            << "%, multi-configuration coverage = "
            << 100.0 * campaign.Coverage() << "%\n";
  return 0;
}
