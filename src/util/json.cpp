#include "util/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/faultpoint.hpp"

namespace mcdft::util::json {

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

namespace {

[[noreturn]] void TypeMismatch(const char* wanted) {
  throw JsonError(std::string("value is not ") + wanted);
}

}  // namespace

bool Value::AsBool() const {
  if (!IsBool()) TypeMismatch("a bool");
  return bool_;
}

double Value::AsDouble() const {
  if (!IsNumber()) TypeMismatch("a number");
  return num_;
}

const std::string& Value::AsString() const {
  if (!IsString()) TypeMismatch("a string");
  return str_;
}

std::size_t Value::Size() const {
  if (IsArray()) return items_.size();
  if (IsObject()) return members_.size();
  TypeMismatch("an array or object");
}

Value& Value::PushBack(Value v) {
  if (!IsArray()) TypeMismatch("an array");
  items_.push_back(std::move(v));
  return items_.back();
}

const Value& Value::At(std::size_t i) const {
  if (!IsArray()) TypeMismatch("an array");
  if (i >= items_.size()) {
    throw JsonError("array index " + std::to_string(i) + " out of range");
  }
  return items_[i];
}

const std::vector<Value>& Value::Items() const {
  if (!IsArray()) TypeMismatch("an array");
  return items_;
}

Value& Value::Set(std::string key, Value v) {
  if (!IsObject()) TypeMismatch("an object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return members_.back().second;
}

const Value* Value::Find(std::string_view key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::Get(std::string_view key) const {
  const Value* v = Find(key);
  if (v == nullptr) throw JsonError("missing member '" + std::string(key) + "'");
  return *v;
}

const std::vector<std::pair<std::string, Value>>& Value::Members() const {
  if (!IsObject()) TypeMismatch("an object");
  return members_;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN; null is the least-surprising stand-in
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) {
      out += shorter;
      return;
    }
  }
  out += buf;
}

void SerializeTo(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent > 0;
  const std::string pad = pretty ? std::string(indent * (depth + 1), ' ') : "";
  const std::string close_pad = pretty ? std::string(indent * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (v.GetType()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.AsBool() ? "true" : "false"; break;
    case Value::Type::kNumber: AppendNumber(out, v.AsDouble()); break;
    case Value::Type::kString: AppendEscaped(out, v.AsString()); break;
    case Value::Type::kArray: {
      if (v.Items().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < v.Items().size(); ++i) {
        out += pad;
        SerializeTo(v.Items()[i], out, indent, depth + 1);
        if (i + 1 < v.Items().size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      if (v.Members().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < v.Members().size(); ++i) {
        out += pad;
        AppendEscaped(out, v.Members()[i].first);
        out += pretty ? ": " : ":";
        SerializeTo(v.Members()[i].second, out, indent, depth + 1);
        if (i + 1 < v.Members().size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

/// Recursive-descent parser over a string_view with offset diagnostics.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw JsonError(what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Value ParseValue() {
    SkipWhitespace();
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Value::Str(ParseString());
      case 't':
        if (Consume("true")) return Value::Bool(true);
        Fail("invalid literal");
      case 'f':
        if (Consume("false")) return Value::Bool(false);
        Fail("invalid literal");
      case 'n':
        if (Consume("null")) return Value::Null();
        Fail("invalid literal");
      default: return ParseNumber();
    }
  }

  Value ParseObject() {
    Expect('{');
    Value obj = Value::Object();
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      obj.Set(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return obj;
    }
  }

  Value ParseArray() {
    Expect('[');
    Value arr = Value::Array();
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.PushBack(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return arr;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("invalid \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are passed
          // through as two separate 3-byte sequences; good enough for the
          // ASCII-dominated documents this library handles).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: Fail("invalid escape character");
      }
    }
  }

  Value ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || end != text_.data() + pos_) {
      Fail("malformed number");
    }
    return Value::Number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::Serialize(int indent) const {
  std::string out;
  SerializeTo(*this, out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

Value Parse(std::string_view text) { return Parser(text).ParseDocument(); }

Value ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JsonError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str());
}

namespace {

/// Owns the tmp file across the write: closes the fd and unlinks the file
/// on *every* exit path (including the injected ones) unless the rename
/// succeeded and `Commit()` was called.
class TmpFileGuard {
 public:
  explicit TmpFileGuard(std::string path) : path_(std::move(path)) {}
  TmpFileGuard(const TmpFileGuard&) = delete;
  TmpFileGuard& operator=(const TmpFileGuard&) = delete;
  ~TmpFileGuard() {
    if (fd_ >= 0) ::close(fd_);
    if (!committed_) ::unlink(path_.c_str());
  }

  void SetFd(int fd) { fd_ = fd; }
  void CloseFd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  void Commit() { committed_ = true; }

 private:
  std::string path_;
  int fd_ = -1;
  bool committed_ = false;
};

}  // namespace

void WriteTextFileAtomic(const std::string& text, const std::string& path) {
  const std::string tmp = path + ".tmp";
  TmpFileGuard guard(tmp);

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw JsonError("cannot open '" + tmp + "' for writing");
  guard.SetFd(fd);

  // Injected short write: persist a truncated prefix, skip the fsync and
  // rename, and fail exactly like a crash mid-write would.
  std::size_t limit = text.size();
  if (faultpoint::ShouldFail("checkpoint.write.short")) {
    limit = text.size() / 2;
    std::size_t done = 0;
    while (done < limit) {
      const ssize_t n = ::write(fd, text.data() + done, limit - done);
      if (n < 0) break;
      done += static_cast<std::size_t>(n);
    }
    throw JsonError("injected short write on '" + tmp + "'");
  }

  std::size_t written = 0;
  while (written < limit) {
    const ssize_t n = ::write(fd, text.data() + written, limit - written);
    if (n < 0) throw JsonError("failed writing '" + tmp + "'");
    written += static_cast<std::size_t>(n);
  }
  if (faultpoint::ShouldFail("checkpoint.write.fsync") || ::fsync(fd) != 0) {
    throw JsonError("fsync failed on '" + tmp + "'");
  }
  guard.CloseFd();

  if (faultpoint::ShouldFail("checkpoint.write.rename") ||
      ::rename(tmp.c_str(), path.c_str()) != 0) {
    throw JsonError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  guard.Commit();

  // Persist the rename itself: fsync the containing directory.
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // best effort; the data itself is already durable
    ::close(dfd);
  }
}

void WriteFileAtomic(const Value& value, const std::string& path, int indent) {
  WriteTextFileAtomic(value.Serialize(indent) + "\n", path);
}

}  // namespace mcdft::util::json
