// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` variant) for
// checkpoint unit integrity.  Table-driven, no dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcdft::util {

/// CRC-32 of `data` (IEEE polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF).
std::uint32_t Crc32(std::string_view data);

/// Continue a running CRC: `Crc32Update(Crc32(a), b) == Crc32(a + b)`.
std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data);

/// Lower-case 8-hex-digit rendering, zero padded ("0042ab9f").
std::string Crc32Hex(std::uint32_t crc);

}  // namespace mcdft::util
