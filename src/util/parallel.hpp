// Fixed-size thread pool and deterministic parallel-for helpers.
//
// The fault-simulation campaign is embarrassingly parallel ((config, fault)
// pairs, Monte-Carlo tolerance samples, zoo circuits), so a small static
// pool with index-range partitioning covers every hot loop.  Determinism
// contract: ParallelFor partitions the index space into contiguous static
// ranges, every task writes only its own output slot, and callers perform
// any reduction in index order after the join — results are therefore
// bit-identical for any thread count, including 1.
//
// Thread-count resolution: an explicit request wins; 0 means the
// MCDFT_THREADS environment variable when set, else
// std::thread::hardware_concurrency().
#pragma once

#include <cstddef>
#include <functional>

namespace mcdft::util {

/// Number of hardware threads (>= 1).
std::size_t HardwareThreadCount();

/// Default worker count: MCDFT_THREADS when set to a positive integer,
/// else HardwareThreadCount().
std::size_t DefaultThreadCount();

/// Resolve a requested thread count: 0 -> DefaultThreadCount(), else the
/// request itself (>= 1).
std::size_t ResolveThreadCount(std::size_t requested);

/// True when the calling thread is a pool worker.  Nested ParallelFor
/// calls from inside a worker run serially in the caller (the outer loop
/// already owns the pool), which keeps the pool deadlock-free.
bool InsideParallelWorker();

/// Run `fn(begin, end)` over a static partition of [0, count) into at most
/// `threads` contiguous ranges (0 = auto, see ResolveThreadCount).  The
/// calling thread executes the first range; pool workers execute the rest.
/// Blocks until every range is done.  The first exception (by range order)
/// is rethrown in the caller.
void ParallelForRange(std::size_t threads, std::size_t count,
                      const std::function<void(std::size_t, std::size_t)>& fn);

/// Run `fn(i)` for every i in [0, count); same partitioning, determinism
/// and exception rules as ParallelForRange.
void ParallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& fn);

}  // namespace mcdft::util
