// Small string utilities shared across the library: trimming, splitting,
// case folding, and engineering-notation formatting/parsing used by the
// SPICE-subset netlist reader and by the report generators.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mcdft::util {

/// Remove leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Split `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitFields(std::string_view s,
                                     std::string_view delims = " \t");

/// Split `s` on every occurrence of the single character `delim`,
/// keeping empty pieces (CSV-style).
std::vector<std::string> SplitKeepEmpty(std::string_view s, char delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// True if `s` starts with `prefix` ignoring ASCII case.
bool StartsWithNoCase(std::string_view s, std::string_view prefix);

/// Case-insensitive equality.
bool EqualsNoCase(std::string_view a, std::string_view b);

/// Parse a SPICE-style value with optional engineering suffix:
///   "1k" -> 1e3, "2.2n" -> 2.2e-9, "10meg" -> 1e7, "1e-6" -> 1e-6.
/// Recognized suffixes (case-insensitive): t g meg k m u n p f.
/// Trailing unit letters after the suffix are ignored ("10kohm" -> 1e4).
/// Throws ParseError-free: returns false on failure instead (callers attach
/// line context).
bool ParseEngineering(std::string_view s, double& out);

/// Format a value using engineering notation with the standard SPICE
/// suffixes, e.g. 4700.0 -> "4.7k", 2.2e-9 -> "2.2n".  `digits` is the
/// number of significant digits.
std::string FormatEngineering(double value, int digits = 4);

/// printf-style double with fixed precision, trimming trailing zeros
/// ("12.50" -> "12.5", "3.00" -> "3").
std::string FormatTrimmed(double value, int precision = 2);

/// Join the pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace mcdft::util
