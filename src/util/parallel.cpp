#include "util/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace mcdft::util {

namespace {

thread_local bool g_inside_worker = false;

/// Lazily grown pool of detachable workers sharing one task queue.  The
/// process keeps a single instance alive for its whole lifetime (workers
/// are joined at static destruction).
class ThreadPool {
 public:
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  /// Make sure at least `n` workers exist (bounded; workers are cheap but
  /// unbounded growth from repeated oversubscribed requests is not).
  void EnsureWorkers(std::size_t n) {
    constexpr std::size_t kMaxWorkers = 256;
    std::lock_guard<std::mutex> lock(m_);
    while (workers_.size() < n && workers_.size() < kMaxWorkers) {
      workers_.emplace_back([this] { WorkerLoop(); });
      metrics::GetCounter("util.parallel.workers_spawned").Add();
    }
    metrics::GetGauge("util.parallel.workers").Set(
        static_cast<std::int64_t>(workers_.size()));
  }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(m_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void WorkerLoop() {
    static metrics::Counter& idle_ns =
        metrics::GetCounter("util.parallel.worker_idle_ns");
    static metrics::Counter& tasks_run =
        metrics::GetCounter("util.parallel.tasks_run");
    g_inside_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        // Idle time = waiting on the queue cv.  Clock reads only when the
        // metrics layer is on, so the disabled path stays untouched.
        const std::uint64_t t0 =
            metrics::Enabled() ? trace::internal::NowWallNs() : 0;
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (t0 != 0) idle_ns.Add(trace::internal::NowWallNs() - t0);
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      tasks_run.Add();
      task();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

ThreadPool& GlobalPool() {
  static ThreadPool pool;
  return pool;
}

/// Join-state of one ParallelForRange call.
struct ForJoin {
  std::mutex m;
  std::condition_variable cv;
  std::size_t pending = 0;
};

}  // namespace

std::size_t HardwareThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t DefaultThreadCount() {
  static const std::size_t resolved = [] {
    if (const char* env = std::getenv("MCDFT_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        return static_cast<std::size_t>(v);
      }
    }
    return HardwareThreadCount();
  }();
  return resolved;
}

std::size_t ResolveThreadCount(std::size_t requested) {
  return requested == 0 ? DefaultThreadCount() : requested;
}

bool InsideParallelWorker() { return g_inside_worker; }

void ParallelForRange(
    std::size_t threads, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  std::size_t ways = ResolveThreadCount(threads);
  if (ways > count) ways = count;
  // Serial fast path; also taken from inside a pool worker so nested
  // parallel sections never wait on the queue they are blocking.
  if (ways <= 1 || g_inside_worker) {
    static metrics::Counter& serial_sections =
        metrics::GetCounter("util.parallel.serial_sections");
    serial_sections.Add();
    fn(0, count);
    return;
  }

  static metrics::Counter& parallel_sections =
      metrics::GetCounter("util.parallel.sections");
  static metrics::Counter& tasks_submitted =
      metrics::GetCounter("util.parallel.tasks_submitted");
  static metrics::Counter& join_wait_ns =
      metrics::GetCounter("util.parallel.join_wait_ns");
  parallel_sections.Add();
  tasks_submitted.Add(ways - 1);

  GlobalPool().EnsureWorkers(ways - 1);
  std::vector<std::exception_ptr> errors(ways);
  ForJoin join;
  join.pending = ways - 1;

  const auto range_begin = [count, ways](std::size_t w) {
    return w * count / ways;
  };
  for (std::size_t w = 1; w < ways; ++w) {
    GlobalPool().Submit([&, w] {
      try {
        fn(range_begin(w), range_begin(w + 1));
      } catch (...) {
        errors[w] = std::current_exception();
      }
      {
        // Notify while still holding the lock: the moment the waiter can
        // observe pending == 0 it may return and destroy `join`, so the
        // cv must not be touched after the mutex is released.
        std::lock_guard<std::mutex> lock(join.m);
        --join.pending;
        join.cv.notify_one();
      }
    });
  }
  try {
    fn(range_begin(0), range_begin(1));
  } catch (...) {
    errors[0] = std::current_exception();
  }
  {
    // Caller-side load-imbalance signal: time spent waiting for the slowest
    // worker range after the caller finished its own.
    const std::uint64_t t0 =
        metrics::Enabled() ? trace::internal::NowWallNs() : 0;
    std::unique_lock<std::mutex> lock(join.m);
    join.cv.wait(lock, [&join] { return join.pending == 0; });
    if (t0 != 0) join_wait_ns.Add(trace::internal::NowWallNs() - t0);
  }
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ParallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  ParallelForRange(threads, count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace mcdft::util
