// Deterministic fault-injection harness.
//
// Named injection points are compiled into the production code paths
// (factorization, SMW solve, checkpoint I/O) and are no-ops until armed.
// Arming happens programmatically (tests) or through the environment:
//
//   MCDFT_FAULTPOINTS=checkpoint.write.short:0.25:7,smw.solve:0.01:42
//
// i.e. a comma-separated list of `name:rate:seed` triples, parsed on first
// use.  A disarmed process pays one relaxed atomic load per evaluation.
//
// Two firing modes keep injection deterministic:
//
//  * Ordinal (`ShouldFail(name)`): the point counts its evaluations and
//    fires when splitmix64(seed ^ ordinal) falls below rate * 2^64.  The
//    decision sequence is a pure function of (seed, call order) — use this
//    only on serial paths (checkpoint write/read), where call order is
//    itself deterministic.
//
//  * Hashed (`ShouldFail(name, digest)`): the decision is a pure function
//    of (seed, digest) with no internal state, so a point evaluated from a
//    thread pool fires for exactly the same inputs at any thread or shard
//    count.  Use this on solver paths; derive the digest from the solve's
//    inputs (matrix values, fault id, frequency).
//
// The caller decides what "fail" means — typically throwing
// `core::McdftError(ErrorCategory::kInjected, ...)` or returning a short
// write.  Fired points bump the `util.faultpoint.fired` metrics counter.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mcdft::util::faultpoint {

/// True when at least one point is armed (one relaxed atomic load).  The
/// first call (and the first call of any function below) parses
/// `MCDFT_FAULTPOINTS` from the environment.
bool AnyArmed();

/// Arm `name` to fire with probability `rate` (clamped to [0, 1]; 1 means
/// every evaluation) under the given deterministic seed.  Re-arming an
/// armed point resets its ordinal and fired counters.
void Arm(std::string_view name, double rate, std::uint64_t seed);

/// Parse and apply a `name:rate:seed,...` spec (the MCDFT_FAULTPOINTS
/// format).  Throws util::Error on malformed input.
void ArmFromSpec(std::string_view spec);

/// Disarm one point / every point.  Counters of disarmed points are kept
/// until re-armed, so tests can assert on them after the fact.  Any
/// pending MCDFT_FAULTPOINTS spec is applied (and then disarmed) first,
/// so an explicit disarm always beats the lazy env arming — this is what
/// lets byte-pinning tests opt out of an armed-suite run.
void Disarm(std::string_view name);
void DisarmAll();

/// Ordinal-mode evaluation (serial paths only — see file comment).
bool ShouldFail(std::string_view name);

/// Hashed-mode evaluation: decision depends only on (seed, digest).
bool ShouldFail(std::string_view name, std::uint64_t digest);

struct Stats {
  std::uint64_t evaluations = 0;
  std::uint64_t fired = 0;
};

/// Evaluation/fire counts for `name`; zeros when never armed.
Stats StatsOf(std::string_view name);

/// FNV-1a 64 over raw bytes — the building block for hashed-mode digests.
std::uint64_t DigestBytes(const void* data, std::size_t size);

/// Fold `value` into a running digest (order-sensitive).
std::uint64_t DigestCombine(std::uint64_t digest, std::uint64_t value);

}  // namespace mcdft::util::faultpoint
