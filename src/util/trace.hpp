// RAII timing spans aggregated by name: the per-phase wall/CPU breakdown of
// a campaign run ("campaign.simulate", "campaign.prepare", ...).
//
// A Span measures wall time (steady_clock) and process CPU time (clock())
// between construction and destruction/End() and folds both into a named
// accumulator.  Aggregation, not event logging: each name keeps a call
// count, total/max wall ns and total CPU ns, cheap enough to wrap around
// every sweep of a fault campaign.  Spans share the metrics on/off switch
// (util::metrics::Enabled()); a disabled Span does no clock reads.
//
// Span names nest lexically with '.'-separated components; the run report
// renders them as a flat table sorted by name, which reads as a hierarchy
// ("campaign.prepare", "campaign.prepare.envelope", ...).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.hpp"

namespace mcdft::util::trace {

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_wall_ns = 0;
  std::uint64_t max_wall_ns = 0;
  std::uint64_t total_cpu_ns = 0;
};

namespace internal {
struct Accumulator;
Accumulator& GetAccumulator(std::string_view name);
void Record(Accumulator& acc, std::uint64_t wall_ns, std::uint64_t cpu_ns);
std::uint64_t NowWallNs();
std::uint64_t NowCpuNs();
}  // namespace internal

/// RAII span.  Cheap to construct when metrics are disabled (one relaxed
/// load).  Not copyable/movable: bind to a scope.
class Span {
 public:
  explicit Span(std::string_view name) {
    if (metrics::Enabled()) Begin(name);
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Stop the span early (idempotent; the destructor becomes a no-op).
  void End();

 private:
  void Begin(std::string_view name);

  internal::Accumulator* acc_ = nullptr;  // null = inactive
  std::uint64_t wall_start_ = 0;
  std::uint64_t cpu_start_ = 0;
};

/// Aggregated stats of every span name seen so far, sorted by name.
std::vector<SpanStats> Capture();

/// Per-interval view (counts and totals subtract; max keeps `after`).
std::vector<SpanStats> Delta(const std::vector<SpanStats>& before,
                             const std::vector<SpanStats>& after);

/// Zero all span accumulators.
void ResetAll();

}  // namespace mcdft::util::trace
