#include "util/faultpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <shared_mutex>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace mcdft::util::faultpoint {

namespace {

struct PointState {
  bool armed = false;
  std::uint64_t threshold = 0;  // fire iff mix < threshold; ~0 means always
  bool always = false;          // rate >= 1: fire unconditionally
  std::uint64_t seed = 0;
  std::atomic<std::uint64_t> ordinal{0};
  std::atomic<std::uint64_t> evaluations{0};
  std::atomic<std::uint64_t> fired{0};
};

struct Registry {
  std::shared_mutex mutex;
  // std::map: stable node addresses let evaluations hold a PointState*
  // outside the lock while DisarmAll() only flips `armed`.
  std::map<std::string, PointState, std::less<>> points;
};

std::atomic<bool> g_any_armed{false};
std::once_flag g_env_once;

Registry& TheRegistry() {
  static Registry* registry = new Registry();  // leaked: safe at exit
  return *registry;
}

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void RecountArmed() {
  bool any = false;
  for (const auto& [name, state] : TheRegistry().points) {
    if (state.armed) any = true;
  }
  g_any_armed.store(any, std::memory_order_relaxed);
}

void ArmLocked(std::string_view name, double rate, std::uint64_t seed) {
  PointState& state = TheRegistry().points[std::string(name)];
  if (rate < 0.0) rate = 0.0;
  state.always = rate >= 1.0;
  state.threshold =
      state.always ? ~0ull
                   : static_cast<std::uint64_t>(rate * 18446744073709551616.0);
  state.seed = seed;
  state.ordinal.store(0, std::memory_order_relaxed);
  state.evaluations.store(0, std::memory_order_relaxed);
  state.fired.store(0, std::memory_order_relaxed);
  state.armed = true;
}

void ParseEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("MCDFT_FAULTPOINTS");
    if (spec != nullptr && *spec != '\0') ArmFromSpec(spec);
  });
}

/// Decide + account for a firing.  `mix` is the per-evaluation hash.
bool Decide(PointState& state, std::uint64_t mix) {
  state.evaluations.fetch_add(1, std::memory_order_relaxed);
  const bool fire = state.always || mix < state.threshold;
  if (fire) {
    state.fired.fetch_add(1, std::memory_order_relaxed);
    metrics::GetCounter("util.faultpoint.fired").Add(1);
  }
  return fire;
}

PointState* FindArmed(std::string_view name) {
  Registry& registry = TheRegistry();
  std::shared_lock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it == registry.points.end() || !it->second.armed) return nullptr;
  return &it->second;
}

}  // namespace

bool AnyArmed() {
  ParseEnvOnce();
  return g_any_armed.load(std::memory_order_relaxed);
}

void Arm(std::string_view name, double rate, std::uint64_t seed) {
  ParseEnvOnce();
  Registry& registry = TheRegistry();
  std::unique_lock lock(registry.mutex);
  ArmLocked(name, rate, seed);
  RecountArmed();
}

void ArmFromSpec(std::string_view spec) {
  // `name:rate:seed[,name:rate:seed...]` — whitespace not allowed.
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view triple = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (triple.empty()) continue;

    const std::size_t c1 = triple.find(':');
    const std::size_t c2 =
        c1 == std::string_view::npos ? c1 : triple.find(':', c1 + 1);
    if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
      throw Error("faultpoint: malformed spec entry '" + std::string(triple) +
                  "' (want name:rate:seed)");
    }
    const std::string name(triple.substr(0, c1));
    const std::string rate_text(triple.substr(c1 + 1, c2 - c1 - 1));
    const std::string seed_text(triple.substr(c2 + 1));
    if (name.empty()) {
      throw Error("faultpoint: empty point name in spec");
    }
    double rate = 0.0;
    std::uint64_t seed = 0;
    try {
      std::size_t used = 0;
      rate = std::stod(rate_text, &used);
      if (used != rate_text.size()) throw std::invalid_argument(rate_text);
      used = 0;
      seed = std::stoull(seed_text, &used, 0);
      if (used != seed_text.size()) throw std::invalid_argument(seed_text);
    } catch (const std::exception&) {
      throw Error("faultpoint: bad rate/seed in spec entry '" +
                  std::string(triple) + "'");
    }

    Registry& registry = TheRegistry();
    std::unique_lock lock(registry.mutex);
    ArmLocked(name, rate, seed);
    RecountArmed();
  }
}

void Disarm(std::string_view name) {
  // Apply any pending MCDFT_FAULTPOINTS spec first so an explicit disarm
  // always wins over the lazy env arming — otherwise a test that disarms
  // up front could see the spec re-arm points at its first evaluation.
  ParseEnvOnce();
  Registry& registry = TheRegistry();
  std::unique_lock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it != registry.points.end()) it->second.armed = false;
  RecountArmed();
}

void DisarmAll() {
  ParseEnvOnce();
  Registry& registry = TheRegistry();
  std::unique_lock lock(registry.mutex);
  for (auto& [name, state] : registry.points) state.armed = false;
  RecountArmed();
}

bool ShouldFail(std::string_view name) {
  if (!AnyArmed()) return false;
  PointState* state = FindArmed(name);
  if (state == nullptr) return false;
  const std::uint64_t n =
      state->ordinal.fetch_add(1, std::memory_order_relaxed);
  return Decide(*state, Mix(state->seed ^ Mix(n)));
}

bool ShouldFail(std::string_view name, std::uint64_t digest) {
  if (!AnyArmed()) return false;
  PointState* state = FindArmed(name);
  if (state == nullptr) return false;
  return Decide(*state, Mix(state->seed ^ Mix(digest)));
}

Stats StatsOf(std::string_view name) {
  Registry& registry = TheRegistry();
  std::shared_lock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return {};
  return {it->second.evaluations.load(std::memory_order_relaxed),
          it->second.fired.load(std::memory_order_relaxed)};
}

std::uint64_t DigestBytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t DigestCombine(std::uint64_t digest, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= value & 0xFFull;
    digest *= 0x100000001B3ull;
    value >>= 8;
  }
  return digest;
}

}  // namespace mcdft::util::faultpoint
