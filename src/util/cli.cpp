#include "util/cli.hpp"

#include <cstdlib>

#include "util/strings.hpp"

namespace mcdft::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "";  // boolean flag
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::Has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CliArgs::GetString(const std::string& name,
                               const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double CliArgs::GetDouble(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  double v = 0.0;
  return ParseEngineering(it->second, v) ? v : fallback;
}

int CliArgs::GetInt(const std::string& name, int fallback) const {
  auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::atoi(it->second.c_str());
}

}  // namespace mcdft::util
