#include "util/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace mcdft::util::metrics {

namespace {

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("MCDFT_METRICS");
    return env != nullptr && *env != '\0' && std::string_view(env) != "0";
  }();
  return enabled;
}

/// The registry.  Metrics are never erased, so returned references are
/// stable; the mutex only guards creation and enumeration.
struct Registry {
  std::mutex m;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

template <typename Map>
auto& GetOrCreate(Map& map, std::mutex& m, std::string_view name) {
  std::lock_guard<std::mutex> lock(m);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

/// Lock-free monotone max update.
template <typename T>
void UpdateMax(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

template <typename T>
void UpdateMin(std::atomic<T>& slot, T v) {
  T cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  EnabledFlag().store(on, std::memory_order_relaxed);
}

namespace internal {

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace internal

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

void Gauge::Set(std::int64_t v) {
  if (!Enabled()) return;
  value_.store(v, std::memory_order_relaxed);
  UpdateMax(max_, v);
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(std::uint64_t v) {
  if (!Enabled()) return;
  const std::size_t shard = internal::ThreadShard();
  count_[shard].value.fetch_add(1, std::memory_order_relaxed);
  sum_[shard].value.fetch_add(v, std::memory_order_relaxed);
  UpdateMin(min_, v);
  UpdateMax(max_, v);
  const std::size_t bucket = v <= 1 ? 0 : std::bit_width(v) - 1;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const auto& s : count_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::Sum() const {
  std::uint64_t total = 0;
  for (const auto& s : sum_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::Min() const {
  return Count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::Max() const {
  return max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::Buckets() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& s : count_) s.value.store(0, std::memory_order_relaxed);
  for (auto& s : sum_) s.value.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& GetCounter(std::string_view name) {
  Registry& r = GlobalRegistry();
  return GetOrCreate(r.counters, r.m, name);
}

Gauge& GetGauge(std::string_view name) {
  Registry& r = GlobalRegistry();
  return GetOrCreate(r.gauges, r.m, name);
}

Histogram& GetHistogram(std::string_view name) {
  Registry& r = GlobalRegistry();
  return GetOrCreate(r.histograms, r.m, name);
}

std::uint64_t Snapshot::CounterValue(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

HistogramSample Snapshot::HistogramOf(std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return h;
  }
  return HistogramSample{std::string(name), 0, 0, 0, 0};
}

Snapshot Capture() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.m);
  Snapshot snap;
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    snap.counters.push_back(CounterSample{name, c->Value()});
  }
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.push_back(GaugeSample{name, g->Value(), g->Max()});
  }
  for (const auto& [name, h] : r.histograms) {
    snap.histograms.push_back(
        HistogramSample{name, h->Count(), h->Sum(), h->Min(), h->Max()});
  }
  return snap;  // maps iterate in name order, so samples are sorted
}

Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  Snapshot out;
  for (const auto& c : after.counters) {
    out.counters.push_back(
        CounterSample{c.name, c.value - before.CounterValue(c.name)});
  }
  out.gauges = after.gauges;
  for (const auto& h : after.histograms) {
    const HistogramSample prev = before.HistogramOf(h.name);
    out.histograms.push_back(HistogramSample{h.name, h.count - prev.count,
                                             h.sum - prev.sum, h.min, h.max});
  }
  return out;
}

void ResetAll() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.m);
  for (auto& [name, c] : r.counters) c->Reset();
  for (auto& [name, g] : r.gauges) g->Reset();
  for (auto& [name, h] : r.histograms) h->Reset();
}

}  // namespace mcdft::util::metrics
