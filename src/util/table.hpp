// Plain-text table renderer used by the experiment benches and report
// generator to print the paper's tables/matrices (Figure 5, Table 2, ...).
#pragma once

#include <string>
#include <vector>

namespace mcdft::util {

/// Builds and renders a fixed-column ASCII table.
///
/// Usage:
///   Table t;
///   t.SetHeader({"Conf", "fR1", "fR2"});
///   t.AddRow({"C0", "1", "0"});
///   std::cout << t.Render();
class Table {
 public:
  /// Horizontal alignment of a cell within its column.
  enum class Align { kLeft, kRight, kCenter };

  /// Set the header row.  Fixes the column count; rows with a different
  /// number of cells are padded / truncated to it.
  void SetHeader(std::vector<std::string> header);

  /// Append a data row.
  void AddRow(std::vector<std::string> row);

  /// Append a horizontal separator line at the current position.
  void AddSeparator();

  /// Set the alignment of a column (default: left for column 0, right for
  /// all others, which suits numeric tables).
  void SetAlign(std::size_t column, Align align);

  /// Optional table title printed above the frame.
  void SetTitle(std::string title) { title_ = std::move(title); }

  /// Render the table with box-drawing in plain ASCII (+,-,|).
  std::string Render() const;

  /// Number of data rows added so far.
  std::size_t RowCount() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::size_t ColumnCount() const;
  Align AlignFor(std::size_t col) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> aligns_;
};

/// Render a simple horizontal bar chart line: `label |#####     | value`.
/// Used by benches to approximate the paper's graphs in text form.
/// `fraction` is clamped to [0,1]; `width` is the bar width in characters.
std::string BarLine(const std::string& label, double fraction,
                    const std::string& value_text, int width = 40,
                    int label_width = 14);

}  // namespace mcdft::util
