// Lightweight process-wide metrics: counters, gauges and histograms for the
// hot solver/campaign layers.
//
// Design goals, in order:
//   1. Near-zero overhead when disabled (the default): every update is one
//      relaxed atomic<bool> load and a predictable branch.  No clock reads,
//      no locks, no allocation on the update path.
//   2. Thread-safe and contention-free when enabled: counters are striped
//      across cache-line-padded shards indexed by a per-thread slot, so the
//      pool workers of a parallel campaign never bounce a cache line.
//   3. Stable handles: GetCounter/GetGauge/GetHistogram intern the name and
//      return a reference that stays valid for the process lifetime, so hot
//      call sites can cache it in a function-local static.
//
// Naming convention (see DESIGN.md "Observability"): dotted lower-case
// paths, subsystem first — "spice.mna.refactor_hit",
// "linalg.sparse_lu.full_factor", "util.parallel.tasks".
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mcdft::util::metrics {

/// Global switch.  Starts enabled iff the MCDFT_METRICS environment
/// variable is set to a non-empty value other than "0".
bool Enabled();
void SetEnabled(bool on);

/// RAII enable/disable for report scopes and tests.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnable() { SetEnabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

namespace internal {

/// Number of independent shards per metric.  Each shard owns a cache line;
/// threads hash onto shards via a per-thread slot assigned on first use.
inline constexpr std::size_t kShards = 16;

struct alignas(64) Shard {
  std::atomic<std::uint64_t> value{0};
};

/// Index of the calling thread's shard (stable for the thread's lifetime).
std::size_t ThreadShard();

}  // namespace internal

/// Monotonic counter.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    if (Enabled()) {
      shards_[internal::ThreadShard()].value.fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  std::uint64_t Value() const;
  void Reset();

 private:
  internal::Shard shards_[internal::kShards];
};

/// Last-written value plus a running maximum (e.g. thread counts, queue
/// depths).  Set() races are benign: some thread's value wins, the max is
/// monotone over all Set() calls.
class Gauge {
 public:
  void Set(std::int64_t v);
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Power-of-two-bucket histogram of non-negative integer samples (fill-in
/// counts, span durations in ns, ...).  Bucket b counts samples in
/// [2^(b-1), 2^b), bucket 0 counts zeros and ones.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Observe(std::uint64_t v);

  std::uint64_t Count() const;
  std::uint64_t Sum() const;
  /// Minimum/maximum observed sample (0 when empty).
  std::uint64_t Min() const;
  std::uint64_t Max() const;
  /// Per-bucket counts (size kBuckets).
  std::vector<std::uint64_t> Buckets() const;
  void Reset();

 private:
  internal::Shard count_[internal::kShards];
  internal::Shard sum_[internal::kShards];
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Look up (creating on first use) the metric with this name.  References
/// remain valid for the process lifetime; ResetAll() zeroes values but
/// never invalidates handles.
Counter& GetCounter(std::string_view name);
Gauge& GetGauge(std::string_view name);
Histogram& GetHistogram(std::string_view name);

// --- Snapshots ---------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

/// A consistent-enough point-in-time copy of every registered metric
/// (individual metrics are read atomically; the set is not fenced, which is
/// fine for reporting).  Samples are sorted by name.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by name; 0 when absent.
  std::uint64_t CounterValue(std::string_view name) const;
  /// Histogram sample by name; empty sample when absent.
  HistogramSample HistogramOf(std::string_view name) const;
};

Snapshot Capture();

/// Per-interval view: counters and histogram counts/sums subtract
/// (before-values missing from `before` count as zero); gauges keep the
/// `after` reading.
Snapshot Delta(const Snapshot& before, const Snapshot& after);

/// Zero every registered metric (handles stay valid).
void ResetAll();

}  // namespace mcdft::util::metrics
