#include "util/table.hpp"

#include <algorithm>
#include <cmath>

namespace mcdft::util {

void Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void Table::AddSeparator() { rows_.push_back(Row{{}, /*separator=*/true}); }

void Table::SetAlign(std::size_t column, Align align) {
  if (aligns_.size() <= column) aligns_.resize(column + 1, Align::kLeft);
  aligns_[column] = align;
}

std::size_t Table::ColumnCount() const {
  std::size_t n = header_.size();
  for (const auto& r : rows_) n = std::max(n, r.cells.size());
  return n;
}

Table::Align Table::AlignFor(std::size_t col) const {
  if (col < aligns_.size()) return aligns_[col];
  return col == 0 ? Align::kLeft : Align::kRight;
}

std::string Table::Render() const {
  const std::size_t ncol = ColumnCount();
  if (ncol == 0) return title_.empty() ? std::string() : title_ + "\n";

  std::vector<std::size_t> width(ncol, 0);
  for (std::size_t c = 0; c < ncol; ++c) {
    if (c < header_.size()) width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto pad = [&](const std::string& text, std::size_t c) {
    std::size_t w = width[c];
    std::string cell = text.size() > w ? text.substr(0, w) : text;
    std::size_t space = w - cell.size();
    switch (AlignFor(c)) {
      case Align::kRight: return std::string(space, ' ') + cell;
      case Align::kCenter: {
        std::size_t left = space / 2;
        return std::string(left, ' ') + cell + std::string(space - left, ' ');
      }
      case Align::kLeft:
      default: return cell + std::string(space, ' ');
    }
  };

  std::string rule = "+";
  for (std::size_t c = 0; c < ncol; ++c) rule += std::string(width[c] + 2, '-') + "+";
  rule += "\n";

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule;
  if (!header_.empty()) {
    out += "|";
    for (std::size_t c = 0; c < ncol; ++c) {
      out += " " + pad(c < header_.size() ? header_[c] : "", c) + " |";
    }
    out += "\n" + rule;
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      out += rule;
      continue;
    }
    out += "|";
    for (std::size_t c = 0; c < ncol; ++c) {
      out += " " + pad(c < r.cells.size() ? r.cells[c] : "", c) + " |";
    }
    out += "\n";
  }
  out += rule;
  return out;
}

std::string BarLine(const std::string& label, double fraction,
                    const std::string& value_text, int width, int label_width) {
  double f = std::clamp(fraction, 0.0, 1.0);
  int filled = static_cast<int>(std::lround(f * width));
  std::string lab = label;
  if (static_cast<int>(lab.size()) < label_width) {
    lab += std::string(label_width - lab.size(), ' ');
  }
  return lab + " |" + std::string(filled, '#') +
         std::string(width - filled, ' ') + "| " + value_text;
}

}  // namespace mcdft::util
