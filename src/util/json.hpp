// Minimal JSON document model: enough to write run reports and to read
// them (and the bench baselines) back.  No external dependencies.
//
// Numbers are stored as double; integral values within the exactly-
// representable range serialize without a decimal point.  Object members
// keep insertion order, which keeps reports diff-friendly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace mcdft::util::json {

/// Malformed JSON input.
class JsonError : public Error {
 public:
  explicit JsonError(const std::string& what) : Error("json: " + what) {}
};

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double v);
  static Value Number(std::uint64_t v) { return Number(static_cast<double>(v)); }
  static Value Number(std::int64_t v) { return Number(static_cast<double>(v)); }
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Type GetType() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError on a type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // --- Arrays ---------------------------------------------------------
  std::size_t Size() const;  ///< element / member count (arrays, objects)
  Value& PushBack(Value v);  ///< append; returns the stored element
  const Value& At(std::size_t i) const;
  const std::vector<Value>& Items() const;

  // --- Objects --------------------------------------------------------
  Value& Set(std::string key, Value v);  ///< insert or overwrite
  /// Member lookup; nullptr when absent (or not an object).
  const Value* Find(std::string_view key) const;
  /// Member lookup; throws JsonError when absent.
  const Value& Get(std::string_view key) const;
  const std::vector<std::pair<std::string, Value>>& Members() const;

  /// Render with 2-space indentation (indent <= 0: compact single line).
  std::string Serialize(int indent = 2) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;                            // arrays
  std::vector<std::pair<std::string, Value>> members_;  // objects
};

/// Parse a complete JSON document (rejects trailing garbage).  Throws
/// JsonError with a character offset on malformed input.
Value Parse(std::string_view text);

/// Parse the JSON document in a file.  Throws JsonError when unreadable.
Value ParseFile(const std::string& path);

/// Serialize `value` to `path` atomically: the document is written to a
/// sibling `path.tmp`, flushed with fsync, renamed over `path`, and the
/// containing directory is fsynced.  Readers therefore never observe a
/// partially written document — a crash leaves either the previous file or
/// the complete new one.  Throws JsonError on any I/O failure.
void WriteFileAtomic(const Value& value, const std::string& path,
                     int indent = 2);

/// Same atomic protocol for pre-rendered text (multi-line checkpoint
/// records).  The tmp file is removed on every error path — including the
/// `checkpoint.write.*` faultpoints wired into the write, fsync and rename
/// steps — so a failed write never leaves `path.tmp` behind.
void WriteTextFileAtomic(const std::string& text, const std::string& path);

}  // namespace mcdft::util::json
