// Minimal command-line option parser used by the examples and experiment
// benches.  Supports `--name value`, `--name=value` and boolean `--flag`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mcdft::util {

/// Parses argv into named options and positional arguments.
///
/// Unknown options are collected rather than rejected, so binaries can share
/// a common option set and ignore what they do not use.
class CliArgs {
 public:
  /// Parse from main()'s argc/argv (argv[0] is skipped).
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of `--name`, or `fallback` when absent.
  std::string GetString(const std::string& name, const std::string& fallback) const;

  /// Numeric value of `--name` (engineering suffixes allowed), or `fallback`
  /// when absent or unparsable.
  double GetDouble(const std::string& name, double fallback) const;

  /// Integer value of `--name`, or `fallback`.
  int GetInt(const std::string& name, int fallback) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& Positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace mcdft::util
