#include "util/crc32.hpp"

#include <array>

namespace mcdft::util {

namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32Update(std::uint32_t crc, std::string_view data) {
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = kTable[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Crc32(std::string_view data) { return Crc32Update(0, data); }

std::string Crc32Hex(std::uint32_t crc) {
  static const char* kHex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[crc & 0xFu];
    crc >>= 4;
  }
  return out;
}

}  // namespace mcdft::util
