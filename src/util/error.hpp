// Typed error hierarchy for the mcdft library.
//
// All library-level failures are reported by throwing one of these exception
// types.  Following the C++ Core Guidelines (E.2, E.14), errors that a caller
// cannot reasonably check in advance (singular MNA systems, malformed
// netlists, ...) throw; programming-contract violations use assertions.
#pragma once

#include <stdexcept>
#include <string>

namespace mcdft::util {

/// Root of the mcdft exception hierarchy.  Catch this to handle any library
/// failure uniformly.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A netlist is structurally invalid: unknown node, duplicate device name,
/// dangling required terminal, missing ground reference, ...
class NetlistError : public Error {
 public:
  explicit NetlistError(const std::string& what) : Error("netlist: " + what) {}
};

/// The SPICE-subset parser rejected the input text.  Carries a 1-based line
/// number for diagnostics.
class ParseError : public Error {
 public:
  ParseError(std::size_t line, const std::string& what)
      : Error("parse: line " + std::to_string(line) + ": " + what), line_(line) {}

  /// 1-based line in the netlist source where the error was detected.
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Numerical failure in the linear-algebra layer (singular or numerically
/// rank-deficient matrix, dimension mismatch, ...).
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error("numeric: " + what) {}
};

/// An analysis was asked to do something inconsistent (empty sweep, output
/// node not in the circuit, fault referencing an unknown device, ...).
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error("analysis: " + what) {}
};

/// The optimizer was handed an infeasible problem (e.g. a fault that no
/// configuration detects while full coverage was demanded).
class OptimizationError : public Error {
 public:
  explicit OptimizationError(const std::string& what)
      : Error("optimization: " + what) {}
};

}  // namespace mcdft::util
