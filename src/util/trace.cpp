#include "util/trace.hpp"

#include <chrono>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>

namespace mcdft::util::trace {

namespace internal {

struct Accumulator {
  metrics::internal::Shard count[metrics::internal::kShards];
  metrics::internal::Shard wall_ns[metrics::internal::kShards];
  metrics::internal::Shard cpu_ns[metrics::internal::kShards];
  std::atomic<std::uint64_t> max_wall_ns{0};

  std::uint64_t Sum(const metrics::internal::Shard* shards) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < metrics::internal::kShards; ++i) {
      total += shards[i].value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& s : count) s.value.store(0, std::memory_order_relaxed);
    for (auto& s : wall_ns) s.value.store(0, std::memory_order_relaxed);
    for (auto& s : cpu_ns) s.value.store(0, std::memory_order_relaxed);
    max_wall_ns.store(0, std::memory_order_relaxed);
  }
};

namespace {

struct Registry {
  std::mutex m;
  std::map<std::string, std::unique_ptr<Accumulator>, std::less<>> spans;
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry;  // leaked: usable during static dtors
  return *r;
}

}  // namespace

Accumulator& GetAccumulator(std::string_view name) {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.m);
  auto it = r.spans.find(name);
  if (it == r.spans.end()) {
    it = r.spans.emplace(std::string(name), std::make_unique<Accumulator>())
             .first;
  }
  return *it->second;
}

void Record(Accumulator& acc, std::uint64_t wall_ns, std::uint64_t cpu_ns) {
  const std::size_t shard = metrics::internal::ThreadShard();
  acc.count[shard].value.fetch_add(1, std::memory_order_relaxed);
  acc.wall_ns[shard].value.fetch_add(wall_ns, std::memory_order_relaxed);
  acc.cpu_ns[shard].value.fetch_add(cpu_ns, std::memory_order_relaxed);
  std::uint64_t cur = acc.max_wall_ns.load(std::memory_order_relaxed);
  while (wall_ns > cur && !acc.max_wall_ns.compare_exchange_weak(
                              cur, wall_ns, std::memory_order_relaxed)) {
  }
}

std::uint64_t NowWallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t NowCpuNs() {
  // Process CPU time: for a parallel phase this sums all workers, which is
  // exactly the "how much compute did this phase burn" question the run
  // report answers.  clock() wraps on some platforms but only after ~hours
  // of CPU; campaign runs are seconds.
  return static_cast<std::uint64_t>(
      static_cast<double>(std::clock()) * (1e9 / CLOCKS_PER_SEC));
}

}  // namespace internal

void Span::Begin(std::string_view name) {
  acc_ = &internal::GetAccumulator(name);
  wall_start_ = internal::NowWallNs();
  cpu_start_ = internal::NowCpuNs();
}

void Span::End() {
  if (acc_ == nullptr) return;
  const std::uint64_t wall = internal::NowWallNs() - wall_start_;
  const std::uint64_t cpu_now = internal::NowCpuNs();
  const std::uint64_t cpu = cpu_now > cpu_start_ ? cpu_now - cpu_start_ : 0;
  internal::Record(*acc_, wall, cpu);
  acc_ = nullptr;
}

std::vector<SpanStats> Capture() {
  auto& r = internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.m);
  std::vector<SpanStats> out;
  out.reserve(r.spans.size());
  for (const auto& [name, acc] : r.spans) {
    out.push_back(SpanStats{
        name, acc->Sum(acc->count), acc->Sum(acc->wall_ns),
        acc->max_wall_ns.load(std::memory_order_relaxed),
        acc->Sum(acc->cpu_ns)});
  }
  return out;  // map order = sorted by name
}

std::vector<SpanStats> Delta(const std::vector<SpanStats>& before,
                             const std::vector<SpanStats>& after) {
  auto find = [&before](const std::string& name) -> const SpanStats* {
    for (const auto& s : before) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  std::vector<SpanStats> out;
  out.reserve(after.size());
  for (const auto& a : after) {
    SpanStats d = a;
    if (const SpanStats* b = find(a.name)) {
      d.count -= b->count;
      d.total_wall_ns -= b->total_wall_ns;
      d.total_cpu_ns -= b->total_cpu_ns;
    }
    if (d.count > 0) out.push_back(std::move(d));
  }
  return out;
}

void ResetAll() {
  auto& r = internal::GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.m);
  for (auto& [name, acc] : r.spans) acc->Reset();
}

}  // namespace mcdft::util::trace
