#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mcdft::util {

namespace {

bool IsSpace(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && IsSpace(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitFields(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t start = i;
    while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitKeepEmpty(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), LowerChar);
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

bool StartsWithNoCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return EqualsNoCase(s.substr(0, prefix.size()), prefix);
}

bool EqualsNoCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

bool ParseEngineering(std::string_view s, double& out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  const char* begin = buf.c_str();
  char* end = nullptr;
  double base = std::strtod(begin, &end);
  if (end == begin) return false;  // no leading number at all
  std::string_view rest = Trim(std::string_view(end));
  double mult = 1.0;
  if (!rest.empty()) {
    // "meg" must be tested before "m".
    if (StartsWithNoCase(rest, "meg")) {
      mult = 1e6;
      rest.remove_prefix(3);
    } else {
      switch (LowerChar(rest.front())) {
        case 't': mult = 1e12; rest.remove_prefix(1); break;
        case 'g': mult = 1e9; rest.remove_prefix(1); break;
        case 'k': mult = 1e3; rest.remove_prefix(1); break;
        case 'm': mult = 1e-3; rest.remove_prefix(1); break;
        case 'u': mult = 1e-6; rest.remove_prefix(1); break;
        case 'n': mult = 1e-9; rest.remove_prefix(1); break;
        case 'p': mult = 1e-12; rest.remove_prefix(1); break;
        case 'f': mult = 1e-15; rest.remove_prefix(1); break;
        default: mult = 1.0;
      }
    }
    // Whatever follows must be unit letters ("ohm", "hz", "F"); anything
    // containing a digit means the token was not a plain value.
    for (char c : rest) {
      if (std::isdigit(static_cast<unsigned char>(c))) return false;
    }
  }
  out = base * mult;
  return true;
}

std::string FormatEngineering(double value, int digits) {
  if (value == 0.0) return "0";
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  static constexpr struct {
    double scale;
    const char* suffix;
  } kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "Meg"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  double mag = std::fabs(value);
  for (const auto& sc : kScales) {
    if (mag >= sc.scale * 0.99999999 || sc.scale == 1e-15) {
      double scaled = value / sc.scale;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g", digits, scaled);
      return std::string(buf) + sc.suffix;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatTrimmed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace mcdft::util
