// AVX2 variant of the packed complex kernels: 4 double lanes per vector.
//
// The SoA layout makes the complex product four plain vertical multiplies
// and two vertical add/subtracts — no shuffles — so the per-lane operation
// sequence is exactly the scalar formula.  Compiled with
// -mavx2 -ffp-contract=off (CMake sets both only on x86-64): separate mul
// and add/sub instructions, never FMA, keeping results bit-identical to the
// scalar variant.
#include "linalg/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

namespace mcdft::linalg::simd {

namespace {

void CAxpySubAvx2(std::size_t m, double a_re, double a_im, const double* x_re,
                  const double* x_im, double* y_re, double* y_im) {
  const __m256d ar = _mm256_set1_pd(a_re);
  const __m256d ai = _mm256_set1_pd(a_im);
  std::size_t l = 0;
  for (; l + 4 <= m; l += 4) {
    const __m256d xr = _mm256_loadu_pd(x_re + l);
    const __m256d xi = _mm256_loadu_pd(x_im + l);
    const __m256d pr = _mm256_sub_pd(_mm256_mul_pd(ar, xr),
                                     _mm256_mul_pd(ai, xi));
    const __m256d pi = _mm256_add_pd(_mm256_mul_pd(ar, xi),
                                     _mm256_mul_pd(ai, xr));
    _mm256_storeu_pd(y_re + l, _mm256_sub_pd(_mm256_loadu_pd(y_re + l), pr));
    _mm256_storeu_pd(y_im + l, _mm256_sub_pd(_mm256_loadu_pd(y_im + l), pi));
  }
  for (; l < m; ++l) {
    const double p_re = a_re * x_re[l] - a_im * x_im[l];
    const double p_im = a_re * x_im[l] + a_im * x_re[l];
    y_re[l] -= p_re;
    y_im[l] -= p_im;
  }
}

void CMAddAvx2(std::size_t m, const double* a_re, const double* a_im,
               const double* x_re, const double* x_im, double* y_re,
               double* y_im) {
  std::size_t l = 0;
  for (; l + 4 <= m; l += 4) {
    const __m256d ar = _mm256_loadu_pd(a_re + l);
    const __m256d ai = _mm256_loadu_pd(a_im + l);
    const __m256d xr = _mm256_loadu_pd(x_re + l);
    const __m256d xi = _mm256_loadu_pd(x_im + l);
    const __m256d pr = _mm256_sub_pd(_mm256_mul_pd(ar, xr),
                                     _mm256_mul_pd(ai, xi));
    const __m256d pi = _mm256_add_pd(_mm256_mul_pd(ar, xi),
                                     _mm256_mul_pd(ai, xr));
    _mm256_storeu_pd(y_re + l, _mm256_add_pd(_mm256_loadu_pd(y_re + l), pr));
    _mm256_storeu_pd(y_im + l, _mm256_add_pd(_mm256_loadu_pd(y_im + l), pi));
  }
  for (; l < m; ++l) {
    const double p_re = a_re[l] * x_re[l] - a_im[l] * x_im[l];
    const double p_im = a_re[l] * x_im[l] + a_im[l] * x_re[l];
    y_re[l] += p_re;
    y_im[l] += p_im;
  }
}

}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels k{IsaLevel::kAvx2, "avx2", &CAxpySubAvx2, &CMAddAvx2};
  return k;
}

}  // namespace mcdft::linalg::simd

#else  // non-x86 build or AVX2 flags unavailable: alias the scalar table

namespace mcdft::linalg::simd {
const Kernels& Avx2Kernels() { return ScalarKernels(); }
}  // namespace mcdft::linalg::simd

#endif
