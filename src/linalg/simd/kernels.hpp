// Packed complex SIMD kernels over SoA (split real/imaginary) lanes, with
// scalar / AVX2 / AVX-512 variants selected by runtime CPUID dispatch.
//
// These are the inner loops of the batched SMW fault-solve path: a batch of
// B fault perturbations at one frequency is packed lane-wise (lane l = one
// batch cell) and the multi-RHS triangular solves plus the U*y correction
// accumulation run as elementwise complex multiply-adds over the lanes.
//
// Bit-compatibility contract: every variant computes each lane with the
// textbook complex product
//
//   (a*x).re = a.re*x.re - a.im*x.im,   (a*x).im = a.re*x.im + a.im*x.re
//
// followed by a plain add/subtract — exactly the operation sequence
// libstdc++'s std::complex<double> arithmetic performs for finite values.
// The vector translation units are compiled with -ffp-contract=off so no
// FMA contraction can perturb the scalar results; lane position never
// enters the arithmetic, so a value is bit-identical at any batch size and
// under any variant.  (The lone reachable divergence is the both-parts-NaN
// case, where __muldc3's recovery may turn a NaN into an infinity — either
// way the value is non-finite and takes the same peel-out decision.)
//
// Complex *division* is deliberately absent: quotients (triangular-solve
// pivots, k-by-k back-substitution) stay per-lane std::complex<double> so
// the library's Smith-style scaling is reproduced bit-for-bit.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace mcdft::linalg::simd {

/// Instruction-set level of a kernel variant, in increasing order.
enum class IsaLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Function table of one kernel variant.
struct Kernels {
  IsaLevel level = IsaLevel::kScalar;
  const char* name = "scalar";

  /// y[l] -= a * x[l] for l in [0, m): subtract a broadcast complex scalar
  /// times the lane vector (the multi-RHS triangular-solve update).
  void (*caxpy_sub)(std::size_t m, double a_re, double a_im,
                    const double* x_re, const double* x_im, double* y_re,
                    double* y_im) = nullptr;

  /// y[l] += a[l] * x[l] for l in [0, m): elementwise complex multiply-add
  /// with per-lane coefficients (the blocked U*y correction accumulation).
  void (*cmadd)(std::size_t m, const double* a_re, const double* a_im,
                const double* x_re, const double* x_im, double* y_re,
                double* y_im) = nullptr;
};

/// Highest variant both compiled into this binary and supported by the CPU.
IsaLevel DetectCpuLevel();

/// True when the variant was compiled into this binary (x86-64 build with
/// the matching -m flags); the scalar variant always is.
bool Compiled(IsaLevel level);

/// Parse an MCDFT_SIMD value ("scalar" / "avx2" / "avx512", case-sensitive).
/// Empty or unrecognized strings parse to nullopt (auto-detect).
std::optional<IsaLevel> ParseLevel(std::string_view text);

/// The level that actually runs for a request: the requested level when it
/// is compiled and CPU-supported, otherwise the highest usable level at or
/// below it (a forced "avx512" on an AVX2-only host runs AVX2; "avx2" on a
/// pre-AVX2 host runs scalar).  nullopt requests auto-detection.
IsaLevel ResolveLevel(std::optional<IsaLevel> requested, IsaLevel supported);

/// Kernel table of one specific level; falls back to the highest compiled
/// level at or below `level`.  Used by tests to compare variants.
const Kernels& KernelsFor(IsaLevel level);

/// The process-wide active kernel table: MCDFT_SIMD (read once) resolved
/// against DetectCpuLevel().
const Kernels& Active();

// Per-variant tables, defined in their own translation units so each can
// carry its own target flags.  Unavailable variants alias the scalar table.
const Kernels& ScalarKernels();
const Kernels& Avx2Kernels();
const Kernels& Avx512Kernels();

}  // namespace mcdft::linalg::simd
