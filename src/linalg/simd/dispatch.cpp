// Runtime kernel dispatch: CPUID detection, MCDFT_SIMD forcing, and the
// process-wide active kernel table.
#include "linalg/simd/kernels.hpp"

#include <cstdlib>

namespace mcdft::linalg::simd {

bool Compiled(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kAvx2:
      return Avx2Kernels().level == IsaLevel::kAvx2;
    case IsaLevel::kAvx512:
      return Avx512Kernels().level == IsaLevel::kAvx512;
  }
  return false;
}

IsaLevel DetectCpuLevel() {
#if defined(__x86_64__)
  if (Compiled(IsaLevel::kAvx512) && __builtin_cpu_supports("avx512f")) {
    return IsaLevel::kAvx512;
  }
  if (Compiled(IsaLevel::kAvx2) && __builtin_cpu_supports("avx2")) {
    return IsaLevel::kAvx2;
  }
#endif
  return IsaLevel::kScalar;
}

std::optional<IsaLevel> ParseLevel(std::string_view text) {
  if (text == "scalar") return IsaLevel::kScalar;
  if (text == "avx2") return IsaLevel::kAvx2;
  if (text == "avx512") return IsaLevel::kAvx512;
  return std::nullopt;
}

IsaLevel ResolveLevel(std::optional<IsaLevel> requested, IsaLevel supported) {
  if (!requested) return supported;
  // A forced level above what the host can run degrades gracefully to the
  // best usable level; a forced level below skips available hardware.
  return static_cast<int>(*requested) < static_cast<int>(supported)
             ? *requested
             : supported;
}

const Kernels& KernelsFor(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx512:
      if (Compiled(IsaLevel::kAvx512)) return Avx512Kernels();
      [[fallthrough]];
    case IsaLevel::kAvx2:
      if (Compiled(IsaLevel::kAvx2)) return Avx2Kernels();
      [[fallthrough]];
    case IsaLevel::kScalar:
      break;
  }
  return ScalarKernels();
}

const Kernels& Active() {
  // Environment read once per process: the kernel choice is global state
  // folded into performance only, never into results (all variants are
  // bit-identical), so a stale read can at worst cost speed.
  static const Kernels* const active = [] {
    const char* env = std::getenv("MCDFT_SIMD");
    const std::optional<IsaLevel> forced =
        env != nullptr ? ParseLevel(env) : std::nullopt;
    return &KernelsFor(ResolveLevel(forced, DetectCpuLevel()));
  }();
  return *active;
}

}  // namespace mcdft::linalg::simd
