// AVX-512F variant of the packed complex kernels: 8 double lanes per
// vector, with a masked tail so no lane is ever read or written beyond m.
//
// Compiled with -mavx512f -ffp-contract=off (CMake, x86-64 only).  The
// contract=off flag matters doubly here: AVX-512F implies FMA hardware and
// the compiler's default contraction would otherwise fuse the mul/sub
// pairs, breaking bit-identity with the scalar variant.
#include "linalg/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

namespace mcdft::linalg::simd {

namespace {

void CAxpySubAvx512(std::size_t m, double a_re, double a_im,
                    const double* x_re, const double* x_im, double* y_re,
                    double* y_im) {
  const __m512d ar = _mm512_set1_pd(a_re);
  const __m512d ai = _mm512_set1_pd(a_im);
  std::size_t l = 0;
  for (; l + 8 <= m; l += 8) {
    const __m512d xr = _mm512_loadu_pd(x_re + l);
    const __m512d xi = _mm512_loadu_pd(x_im + l);
    const __m512d pr = _mm512_sub_pd(_mm512_mul_pd(ar, xr),
                                     _mm512_mul_pd(ai, xi));
    const __m512d pi = _mm512_add_pd(_mm512_mul_pd(ar, xi),
                                     _mm512_mul_pd(ai, xr));
    _mm512_storeu_pd(y_re + l, _mm512_sub_pd(_mm512_loadu_pd(y_re + l), pr));
    _mm512_storeu_pd(y_im + l, _mm512_sub_pd(_mm512_loadu_pd(y_im + l), pi));
  }
  if (l < m) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (m - l)) - 1u);
    const __m512d xr = _mm512_maskz_loadu_pd(tail, x_re + l);
    const __m512d xi = _mm512_maskz_loadu_pd(tail, x_im + l);
    const __m512d pr = _mm512_sub_pd(_mm512_mul_pd(ar, xr),
                                     _mm512_mul_pd(ai, xi));
    const __m512d pi = _mm512_add_pd(_mm512_mul_pd(ar, xi),
                                     _mm512_mul_pd(ai, xr));
    const __m512d yr = _mm512_maskz_loadu_pd(tail, y_re + l);
    const __m512d yi = _mm512_maskz_loadu_pd(tail, y_im + l);
    _mm512_mask_storeu_pd(y_re + l, tail, _mm512_sub_pd(yr, pr));
    _mm512_mask_storeu_pd(y_im + l, tail, _mm512_sub_pd(yi, pi));
  }
}

void CMAddAvx512(std::size_t m, const double* a_re, const double* a_im,
                 const double* x_re, const double* x_im, double* y_re,
                 double* y_im) {
  std::size_t l = 0;
  for (; l + 8 <= m; l += 8) {
    const __m512d ar = _mm512_loadu_pd(a_re + l);
    const __m512d ai = _mm512_loadu_pd(a_im + l);
    const __m512d xr = _mm512_loadu_pd(x_re + l);
    const __m512d xi = _mm512_loadu_pd(x_im + l);
    const __m512d pr = _mm512_sub_pd(_mm512_mul_pd(ar, xr),
                                     _mm512_mul_pd(ai, xi));
    const __m512d pi = _mm512_add_pd(_mm512_mul_pd(ar, xi),
                                     _mm512_mul_pd(ai, xr));
    _mm512_storeu_pd(y_re + l, _mm512_add_pd(_mm512_loadu_pd(y_re + l), pr));
    _mm512_storeu_pd(y_im + l, _mm512_add_pd(_mm512_loadu_pd(y_im + l), pi));
  }
  if (l < m) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (m - l)) - 1u);
    const __m512d ar = _mm512_maskz_loadu_pd(tail, a_re + l);
    const __m512d ai = _mm512_maskz_loadu_pd(tail, a_im + l);
    const __m512d xr = _mm512_maskz_loadu_pd(tail, x_re + l);
    const __m512d xi = _mm512_maskz_loadu_pd(tail, x_im + l);
    const __m512d pr = _mm512_sub_pd(_mm512_mul_pd(ar, xr),
                                     _mm512_mul_pd(ai, xi));
    const __m512d pi = _mm512_add_pd(_mm512_mul_pd(ar, xi),
                                     _mm512_mul_pd(ai, xr));
    const __m512d yr = _mm512_maskz_loadu_pd(tail, y_re + l);
    const __m512d yi = _mm512_maskz_loadu_pd(tail, y_im + l);
    _mm512_mask_storeu_pd(y_re + l, tail, _mm512_add_pd(yr, pr));
    _mm512_mask_storeu_pd(y_im + l, tail, _mm512_add_pd(yi, pi));
  }
}

}  // namespace

const Kernels& Avx512Kernels() {
  static const Kernels k{IsaLevel::kAvx512, "avx512", &CAxpySubAvx512,
                         &CMAddAvx512};
  return k;
}

}  // namespace mcdft::linalg::simd

#else  // non-x86 build or AVX-512 flags unavailable: alias the scalar table

namespace mcdft::linalg::simd {
const Kernels& Avx512Kernels() { return ScalarKernels(); }
}  // namespace mcdft::linalg::simd

#endif
