// Scalar reference variant of the packed complex kernels.
//
// This translation unit is the bit-compatibility anchor: the explicit
// real/imaginary formulas below are the operation sequence every vector
// variant must reproduce.  Compiled with -ffp-contract=off (set in CMake)
// so the compiler cannot fuse the multiply-subtract pairs even under
// aggressive flags.
#include "linalg/simd/kernels.hpp"

namespace mcdft::linalg::simd {

namespace {

void CAxpySubScalar(std::size_t m, double a_re, double a_im,
                    const double* x_re, const double* x_im, double* y_re,
                    double* y_im) {
  for (std::size_t l = 0; l < m; ++l) {
    const double p_re = a_re * x_re[l] - a_im * x_im[l];
    const double p_im = a_re * x_im[l] + a_im * x_re[l];
    y_re[l] -= p_re;
    y_im[l] -= p_im;
  }
}

void CMAddScalar(std::size_t m, const double* a_re, const double* a_im,
                 const double* x_re, const double* x_im, double* y_re,
                 double* y_im) {
  for (std::size_t l = 0; l < m; ++l) {
    const double p_re = a_re[l] * x_re[l] - a_im[l] * x_im[l];
    const double p_im = a_re[l] * x_im[l] + a_im[l] * x_re[l];
    y_re[l] += p_re;
    y_im[l] += p_im;
  }
}

}  // namespace

const Kernels& ScalarKernels() {
  static const Kernels k{IsaLevel::kScalar, "scalar", &CAxpySubScalar,
                         &CMAddScalar};
  return k;
}

}  // namespace mcdft::linalg::simd
