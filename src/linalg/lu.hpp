// Dense LU factorization with partial (row) pivoting over complex<double>.
//
// This is the workhorse behind every AC-analysis point: the MNA matrix is
// factorized once per frequency and solved against the excitation vector.
#pragma once

#include "linalg/dense.hpp"

namespace mcdft::linalg {

/// LU factorization PA = LU of a square complex matrix with partial pivoting.
///
/// The factorization is stored compactly in a single matrix (unit-diagonal L
/// below, U on and above the diagonal) plus a permutation.  Throws
/// NumericError if the matrix is singular to working precision.
class LuFactorization {
 public:
  /// Factorize a copy of `a`.  O(n^3).
  explicit LuFactorization(const Matrix& a);

  /// Solve A x = b.  O(n^2).
  Vector Solve(const Vector& b) const;

  /// Solve in place; `x` enters as b and leaves as the solution.
  void SolveInPlace(Vector& x) const;

  /// |det(A)| is the product of |U_ii|; returned as log10 to avoid
  /// overflow/underflow on ill-scaled MNA systems.
  double Log10AbsDeterminant() const;

  /// Cheap condition estimate: ratio max|U_ii| / min|U_ii|.  An upper bound
  /// on how close to singular the pivoting saw the matrix; used by tests and
  /// by the MNA engine to warn about bad node scaling.
  double PivotRatio() const;

  /// Matrix dimension.
  std::size_t Size() const noexcept { return lu_.Rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
Vector SolveDense(const Matrix& a, const Vector& b);

}  // namespace mcdft::linalg
