#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {

namespace {
constexpr double kSingularAbs = 1e-300;

namespace metrics = util::metrics;
}  // namespace

void SparseLu::BuildRows(const CsrMatrix& a, std::vector<SparseRow>& rows) {
  rows.resize(a.Rows());
  for (std::size_t r = 0; r < a.Rows(); ++r) {
    rows[r].clear();
    for (std::size_t k = a.RowPointers()[r]; k < a.RowPointers()[r + 1]; ++k) {
      if (a.Values()[k] != Complex(0.0, 0.0)) {
        rows[r].push_back(Entry{a.ColumnIndices()[k], a.Values()[k]});
      }
    }
  }
}

void SparseLu::EliminateRow(SparseRow& row, const SparseRow& urow,
                            const std::vector<bool>& col_active, Complex m,
                            SparseRow& scratch) {
  SparseRow& merged = scratch;
  merged.clear();
  merged.reserve(row.size() + urow.size());
  std::size_t i = 0, j = 0;
  while (i < row.size() || j < urow.size()) {
    if (j >= urow.size() || (i < row.size() && row[i].col < urow[j].col)) {
      merged.push_back(row[i++]);
    } else if (!col_active[urow[j].col]) {
      ++j;  // pivot column itself (and any frozen column): no update needed
    } else if (i >= row.size() || urow[j].col < row[i].col) {
      merged.push_back(Entry{urow[j].col, -m * urow[j].val});
      ++j;
    } else {
      Complex v = row[i].val - m * urow[j].val;
      if (v != Complex(0.0, 0.0)) merged.push_back(Entry{row[i].col, v});
      ++i;
      ++j;
    }
  }
  row.swap(merged);  // old buffer becomes the next merge's scratch
}

SparseLu::SparseLu(const CsrMatrix& a, SparseLuOptions options) {
  if (a.Rows() != a.Cols()) {
    throw util::NumericError("sparse LU requires a square matrix");
  }
  n_ = a.Rows();
  // Hashed-mode faultpoint: the decision is a pure function of the matrix
  // values, so an armed run fails the same factorizations at any thread or
  // shard count.  The digest is only computed while armed.
  if (util::faultpoint::AnyArmed() &&
      util::faultpoint::ShouldFail(
          "sparse_lu.factor",
          util::faultpoint::DigestBytes(
              a.Values().data(), a.Values().size() * sizeof(Complex)))) {
    throw core::McdftError(core::ErrorCategory::kInjected,
                           "faultpoint sparse_lu.factor");
  }
  lower_.assign(n_, {});
  upper_.assign(n_, {});
  row_perm_.resize(n_);
  col_perm_.resize(n_);
  col_pos_.assign(n_, 0);

  // Working copy: active rows as sorted (col, val) vectors.
  std::vector<SparseRow> rows;
  BuildRows(a, rows);
  SparseRow merge_scratch;
  std::vector<bool> row_active(n_, true);
  std::vector<bool> col_active(n_, true);
  // Multipliers produced at each elimination step: (original row, m).
  std::vector<std::vector<std::pair<std::size_t, Complex>>> step_mult(n_);

  std::vector<std::size_t> col_count(n_);

  for (std::size_t step = 0; step < n_; ++step) {
    // Column occupancy among active rows (recomputed per step; cheap at MNA
    // sizes and keeps the invariant trivially correct under fill-in).
    std::fill(col_count.begin(), col_count.end(), 0);
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      for (const Entry& e : rows[r]) {
        if (col_active[e.col]) ++col_count[e.col];
      }
    }

    // Threshold-relaxed Markowitz pivot search.
    std::size_t best_row = n_, best_col = n_;
    std::size_t best_markowitz = std::numeric_limits<std::size_t>::max();
    double best_mag = 0.0;
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      double row_max = 0.0;
      std::size_t active_in_row = 0;
      for (const Entry& e : rows[r]) {
        if (!col_active[e.col]) continue;
        row_max = std::max(row_max, std::abs(e.val));
        ++active_in_row;
      }
      if (active_in_row == 0 || row_max <= kSingularAbs) continue;
      for (const Entry& e : rows[r]) {
        if (!col_active[e.col]) continue;
        double mag = std::abs(e.val);
        if (mag < options.pivot_threshold * row_max || mag <= kSingularAbs) {
          continue;
        }
        std::size_t mk = (active_in_row - 1) * (col_count[e.col] - 1);
        if (mk < best_markowitz || (mk == best_markowitz && mag > best_mag)) {
          best_markowitz = mk;
          best_mag = mag;
          best_row = r;
          best_col = e.col;
        }
      }
    }
    if (best_row == n_) {
      throw core::McdftError(
          core::ErrorCategory::kSingularSystem,
          "sparse LU found no acceptable pivot at step " +
              std::to_string(step) + " of " + std::to_string(n_));
    }

    row_perm_[step] = best_row;
    col_perm_[step] = best_col;
    col_pos_[best_col] = step;
    row_active[best_row] = false;
    col_active[best_col] = false;

    // Freeze the pivot row into U (keeps already-eliminated columns out).
    SparseRow& prow = rows[best_row];
    Complex piv(0.0, 0.0);
    SparseRow urow;
    urow.reserve(prow.size());
    for (const Entry& e : prow) {
      if (e.col == best_col) piv = e.val;
      if (e.col == best_col || col_active[e.col]) urow.push_back(e);
    }
    upper_[step] = std::move(urow);

    // Eliminate the pivot column from every remaining active row.
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      SparseRow& row = rows[r];
      auto it = std::lower_bound(
          row.begin(), row.end(), best_col,
          [](const Entry& e, std::size_t c) { return e.col < c; });
      if (it == row.end() || it->col != best_col) continue;
      Complex m = it->val / piv;
      row.erase(it);
      if (m == Complex(0.0, 0.0)) continue;
      step_mult[step].emplace_back(r, m);
      EliminateRow(row, upper_[step], col_active, m, merge_scratch);
    }
  }

  // Re-home the multipliers under the producing step for the solve phase.
  for (std::size_t step = 0; step < n_; ++step) {
    lower_[step].clear();
    for (const auto& [r, m] : step_mult[step]) {
      lower_[step].push_back(Entry{r, m});
    }
  }

  static metrics::Counter& factor_count =
      metrics::GetCounter("linalg.sparse_lu.full_factor");
  static metrics::Histogram& fill_hist =
      metrics::GetHistogram("linalg.sparse_lu.fill_nnz");
  factor_count.Add();
  if (metrics::Enabled()) fill_hist.Observe(FactorNonZeroCount());
}

bool SparseLu::Refactor(const CsrMatrix& a) {
  if (a.Rows() != n_ || a.Cols() != n_) {
    throw util::NumericError("sparse LU refactor dimension mismatch");
  }
  static metrics::Counter& refactor_count =
      metrics::GetCounter("linalg.sparse_lu.refactor");
  static metrics::Counter& fallback_count =
      metrics::GetCounter("linalg.sparse_lu.refactor_fallback");
  // All workspace lives in the object: the sparsity pattern (and hence the
  // structure of every intermediate row) repeats across an AC sweep, so
  // after the first call every buffer already has its final capacity and
  // this pass is allocation-free.
  BuildRows(a, work_rows_);
  work_row_active_.assign(n_, true);
  work_col_active_.assign(n_, true);

  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t prow_idx = row_perm_[step];
    const std::size_t pcol = col_perm_[step];
    work_row_active_[prow_idx] = false;
    work_col_active_[pcol] = false;

    // Freeze the pivot row into U using the fixed pivot column.
    SparseRow& prow = work_rows_[prow_idx];
    Complex piv(0.0, 0.0);
    bool have_pivot = false;
    SparseRow& urow = upper_[step];
    urow.clear();
    for (const Entry& e : prow) {
      if (e.col == pcol) {
        piv = e.val;
        have_pivot = true;
      }
      if (e.col == pcol || work_col_active_[e.col]) urow.push_back(e);
    }
    if (!have_pivot || std::abs(piv) <= kSingularAbs) {
      fallback_count.Add();
      return false;
    }

    // Eliminate the fixed pivot column from every remaining active row,
    // recording the multipliers directly under the producing step.
    lower_[step].clear();
    for (std::size_t r = 0; r < n_; ++r) {
      if (!work_row_active_[r]) continue;
      SparseRow& row = work_rows_[r];
      auto it = std::lower_bound(
          row.begin(), row.end(), pcol,
          [](const Entry& e, std::size_t c) { return e.col < c; });
      if (it == row.end() || it->col != pcol) continue;
      Complex m = it->val / piv;
      row.erase(it);
      if (m == Complex(0.0, 0.0)) continue;
      if (std::abs(m) > kRefactorGrowthLimit) {
        fallback_count.Add();
        return false;
      }
      lower_[step].push_back(Entry{r, m});
      EliminateRow(row, urow, work_col_active_, m, work_merge_);
    }
  }
  refactor_count.Add();
  return true;
}

Vector SparseLu::Solve(const Vector& b) {
  if (b.size() != n_) {
    throw util::NumericError("sparse LU solve dimension mismatch");
  }
  // Forward elimination replayed on a scratch copy of b.
  Vector& work = work_b_;
  work.data().assign(b.data().begin(), b.data().end());
  Vector& y = work_y_;
  y.Resize(n_);
  for (std::size_t step = 0; step < n_; ++step) {
    Complex yk = work[row_perm_[step]];
    y[step] = yk;
    for (const Entry& e : lower_[step]) work[e.col] -= e.val * yk;
  }
  // Backward substitution over the permuted upper factor.
  Vector x(n_);
  for (std::size_t s = n_; s-- > 0;) {
    Complex acc = y[s];
    Complex piv(0.0, 0.0);
    for (const Entry& e : upper_[s]) {
      if (e.col == col_perm_[s]) {
        piv = e.val;
      } else {
        acc -= e.val * x[e.col];
      }
    }
    x[col_perm_[s]] = acc / piv;
  }
  return x;
}

std::size_t SparseLu::FactorNonZeroCount() const {
  std::size_t nnz = 0;
  for (const auto& r : lower_) nnz += r.size();
  for (const auto& r : upper_) nnz += r.size();
  return nnz;
}

Vector SolveSparse(const CsrMatrix& a, const Vector& b, SparseLuOptions options) {
  return SparseLu(a, options).Solve(b);
}

}  // namespace mcdft::linalg
