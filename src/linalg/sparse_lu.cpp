#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/error.hpp"
#include "linalg/simd/kernels.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {

namespace {
constexpr double kSingularAbs = 1e-300;

namespace metrics = util::metrics;
}  // namespace

void SparseLu::BuildRows(const CsrMatrix& a, std::vector<SparseRow>& rows) {
  rows.resize(a.Rows());
  for (std::size_t r = 0; r < a.Rows(); ++r) {
    rows[r].clear();
    for (std::size_t k = a.RowPointers()[r]; k < a.RowPointers()[r + 1]; ++k) {
      if (a.Values()[k] != Complex(0.0, 0.0)) {
        rows[r].push_back(Entry{a.ColumnIndices()[k], a.Values()[k]});
      }
    }
  }
}

void SparseLu::EliminateRow(SparseRow& row, const SparseRow& urow,
                            const std::vector<bool>& col_active, Complex m,
                            SparseRow& scratch) {
  SparseRow& merged = scratch;
  merged.clear();
  merged.reserve(row.size() + urow.size());
  std::size_t i = 0, j = 0;
  while (i < row.size() || j < urow.size()) {
    if (j >= urow.size() || (i < row.size() && row[i].col < urow[j].col)) {
      merged.push_back(row[i++]);
    } else if (!col_active[urow[j].col]) {
      ++j;  // pivot column itself (and any frozen column): no update needed
    } else if (i >= row.size() || urow[j].col < row[i].col) {
      merged.push_back(Entry{urow[j].col, -m * urow[j].val});
      ++j;
    } else {
      Complex v = row[i].val - m * urow[j].val;
      if (v != Complex(0.0, 0.0)) merged.push_back(Entry{row[i].col, v});
      ++i;
      ++j;
    }
  }
  row.swap(merged);  // old buffer becomes the next merge's scratch
}

SparseLu::SparseLu(const CsrMatrix& a, SparseLuOptions options) {
  if (a.Rows() != a.Cols()) {
    throw util::NumericError("sparse LU requires a square matrix");
  }
  n_ = a.Rows();
  // Hashed-mode faultpoint: the decision is a pure function of the matrix
  // values, so an armed run fails the same factorizations at any thread or
  // shard count.  The digest is only computed while armed.
  if (util::faultpoint::AnyArmed() &&
      util::faultpoint::ShouldFail(
          "sparse_lu.factor",
          util::faultpoint::DigestBytes(
              a.Values().data(), a.Values().size() * sizeof(Complex)))) {
    throw core::McdftError(core::ErrorCategory::kInjected,
                           "faultpoint sparse_lu.factor");
  }
  lower_.assign(n_, {});
  upper_.assign(n_, {});
  row_perm_.resize(n_);
  col_perm_.resize(n_);
  col_pos_.assign(n_, 0);
  // Remember the pattern for the (lazy) factor-program compilation.
  pat_row_ptr_ = a.RowPointers();
  pat_col_idx_ = a.ColumnIndices();

  // Working copy: active rows as sorted (col, val) vectors.
  std::vector<SparseRow> rows;
  BuildRows(a, rows);
  SparseRow merge_scratch;
  std::vector<bool> row_active(n_, true);
  std::vector<bool> col_active(n_, true);
  // Multipliers produced at each elimination step: (original row, m).
  std::vector<std::vector<std::pair<std::size_t, Complex>>> step_mult(n_);

  std::vector<std::size_t> col_count(n_);

  for (std::size_t step = 0; step < n_; ++step) {
    // Column occupancy among active rows (recomputed per step; cheap at MNA
    // sizes and keeps the invariant trivially correct under fill-in).
    std::fill(col_count.begin(), col_count.end(), 0);
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      for (const Entry& e : rows[r]) {
        if (col_active[e.col]) ++col_count[e.col];
      }
    }

    // Threshold-relaxed Markowitz pivot search.
    std::size_t best_row = n_, best_col = n_;
    std::size_t best_markowitz = std::numeric_limits<std::size_t>::max();
    double best_mag = 0.0;
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      double row_max = 0.0;
      std::size_t active_in_row = 0;
      for (const Entry& e : rows[r]) {
        if (!col_active[e.col]) continue;
        row_max = std::max(row_max, std::abs(e.val));
        ++active_in_row;
      }
      if (active_in_row == 0 || row_max <= kSingularAbs) continue;
      for (const Entry& e : rows[r]) {
        if (!col_active[e.col]) continue;
        double mag = std::abs(e.val);
        if (mag < options.pivot_threshold * row_max || mag <= kSingularAbs) {
          continue;
        }
        std::size_t mk = (active_in_row - 1) * (col_count[e.col] - 1);
        if (mk < best_markowitz || (mk == best_markowitz && mag > best_mag)) {
          best_markowitz = mk;
          best_mag = mag;
          best_row = r;
          best_col = e.col;
        }
      }
    }
    if (best_row == n_) {
      throw core::McdftError(
          core::ErrorCategory::kSingularSystem,
          "sparse LU found no acceptable pivot at step " +
              std::to_string(step) + " of " + std::to_string(n_));
    }

    row_perm_[step] = best_row;
    col_perm_[step] = best_col;
    col_pos_[best_col] = step;
    row_active[best_row] = false;
    col_active[best_col] = false;

    // Freeze the pivot row into U (keeps already-eliminated columns out).
    SparseRow& prow = rows[best_row];
    Complex piv(0.0, 0.0);
    SparseRow urow;
    urow.reserve(prow.size());
    for (const Entry& e : prow) {
      if (e.col == best_col) piv = e.val;
      if (e.col == best_col || col_active[e.col]) urow.push_back(e);
    }
    upper_[step] = std::move(urow);

    // Eliminate the pivot column from every remaining active row.
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      SparseRow& row = rows[r];
      auto it = std::lower_bound(
          row.begin(), row.end(), best_col,
          [](const Entry& e, std::size_t c) { return e.col < c; });
      if (it == row.end() || it->col != best_col) continue;
      Complex m = it->val / piv;
      row.erase(it);
      if (m == Complex(0.0, 0.0)) continue;
      step_mult[step].emplace_back(r, m);
      EliminateRow(row, upper_[step], col_active, m, merge_scratch);
    }
  }

  // Re-home the multipliers under the producing step for the solve phase.
  for (std::size_t step = 0; step < n_; ++step) {
    lower_[step].clear();
    for (const auto& [r, m] : step_mult[step]) {
      lower_[step].push_back(Entry{r, m});
    }
  }

  static metrics::Counter& factor_count =
      metrics::GetCounter("linalg.sparse_lu.full_factor");
  static metrics::Histogram& fill_hist =
      metrics::GetHistogram("linalg.sparse_lu.fill_nnz");
  factor_count.Add();
  if (metrics::Enabled()) fill_hist.Observe(FactorNonZeroCount());
}

// ---- Factor program ------------------------------------------------------
//
// CompileProgram turns the elimination under the fixed (row_perm_,
// col_perm_) pivot sequence into a replayable schedule over a flat value
// array.  The structure is derived *symbolically* from the sparsity
// pattern alone — it is the superset of every structure the value-guided
// elimination can produce for this pattern, because the legacy passes drop
// entries on value conditions (explicit zeros in the CSR input, zero
// multipliers, exact cancellations) that a schedule recorded from one
// value assignment would miss for another.  Replaying the superset with
// any values performs the same arithmetic as the legacy pass on those
// values; the only divergences are sign-of-zero / exact-cancellation
// positions, where results differ at most in the bit pattern of a zero.

void SparseLu::CompileProgram() {
  // Pass 1: symbolic elimination over the pattern.  `cur` is each active
  // row's current column set (sorted); `all` accumulates every position a
  // row ever holds (initial pattern + fill), which becomes its slot range.
  std::vector<std::vector<std::size_t>> cur(n_);
  std::vector<std::vector<std::size_t>> all(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    cur[r].assign(pat_col_idx_.begin() + pat_row_ptr_[r],
                  pat_col_idx_.begin() + pat_row_ptr_[r + 1]);
    std::sort(cur[r].begin(), cur[r].end());
    all[r] = cur[r];
  }
  std::vector<std::vector<std::size_t>> step_ucols(n_);
  std::vector<std::vector<std::size_t>> step_targets(n_);
  std::vector<char> row_active(n_, 1);
  std::vector<std::size_t> merged;
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t pr = row_perm_[step];
    const std::size_t pc = col_perm_[step];
    row_active[pr] = 0;
    // Invariant: an active row never holds an already-eliminated column
    // (targets erase the pivot column below), so the frozen pivot-row
    // structure is {pc} plus still-active columns — exactly the legacy U
    // row superset.
    step_ucols[step] = cur[pr];
    const std::vector<std::size_t>& ucols = step_ucols[step];
    for (std::size_t r = 0; r < n_; ++r) {
      if (!row_active[r]) continue;
      std::vector<std::size_t>& rc = cur[r];
      auto it = std::lower_bound(rc.begin(), rc.end(), pc);
      if (it == rc.end() || *it != pc) continue;
      step_targets[step].push_back(r);
      rc.erase(it);  // the entry becomes the multiplier
      // rc = rc union (ucols minus pc): sorted merge.
      merged.clear();
      merged.reserve(rc.size() + ucols.size());
      std::size_t i = 0, j = 0;
      while (i < rc.size() || j < ucols.size()) {
        if (j < ucols.size() && ucols[j] == pc) {
          ++j;
        } else if (j >= ucols.size() ||
                   (i < rc.size() && rc[i] < ucols[j])) {
          merged.push_back(rc[i++]);
        } else if (i >= rc.size() || ucols[j] < rc[i]) {
          merged.push_back(ucols[j++]);
        } else {
          merged.push_back(rc[i]);
          ++i;
          ++j;
        }
      }
      rc.swap(merged);
      // Fold the (possibly grown) structure into the row's slot set.
      merged.clear();
      std::set_union(all[r].begin(), all[r].end(), rc.begin(), rc.end(),
                     std::back_inserter(merged));
      all[r].swap(merged);
    }
  }

  // Assign slots: rows concatenated, column-sorted within each row.
  row_slot_ptr_.assign(n_ + 1, 0);
  for (std::size_t r = 0; r < n_; ++r) {
    row_slot_ptr_[r + 1] = row_slot_ptr_[r] + all[r].size();
  }
  slot_col_.clear();
  slot_col_.reserve(row_slot_ptr_[n_]);
  for (std::size_t r = 0; r < n_; ++r) {
    slot_col_.insert(slot_col_.end(), all[r].begin(), all[r].end());
  }
  slot_val_.assign(slot_col_.size(), Complex(0.0, 0.0));
  csr_slot_.resize(pat_col_idx_.size());
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = pat_row_ptr_[r]; k < pat_row_ptr_[r + 1]; ++k) {
      csr_slot_[k] = SlotOf(r, pat_col_idx_[k]);
    }
  }

  // Pass 2: resolve the recorded structures into slot indices.
  step_pivot_slot_.assign(n_, kNoSlot);
  step_u_ptr_.assign(n_ + 1, 0);
  step_target_ptr_.assign(n_ + 1, 0);
  u_slot_.clear();
  u_col_.clear();
  target_row_.clear();
  target_mult_slot_.clear();
  target_op_ptr_.clear();
  op_dst_.clear();
  op_src_.clear();
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t pr = row_perm_[step];
    const std::size_t pc = col_perm_[step];
    step_pivot_slot_[step] = SlotOf(pr, pc);
    for (std::size_t c : step_ucols[step]) {
      if (c == pc) continue;
      u_slot_.push_back(SlotOf(pr, c));
      u_col_.push_back(c);
    }
    step_u_ptr_[step + 1] = u_slot_.size();
    for (std::size_t r : step_targets[step]) {
      target_row_.push_back(r);
      target_mult_slot_.push_back(SlotOf(r, pc));
      target_op_ptr_.push_back(op_dst_.size());
      for (std::size_t u = step_u_ptr_[step]; u < step_u_ptr_[step + 1];
           ++u) {
        op_dst_.push_back(SlotOf(r, u_col_[u]));
        op_src_.push_back(u_slot_[u]);
      }
    }
    step_target_ptr_[step + 1] = target_row_.size();
  }
  target_op_ptr_.push_back(op_dst_.size());
  have_program_ = true;
  flat_valid_ = false;
}

std::size_t SparseLu::SlotOf(std::size_t row, std::size_t col) const {
  const auto begin = slot_col_.begin() + row_slot_ptr_[row];
  const auto end = slot_col_.begin() + row_slot_ptr_[row + 1];
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return kNoSlot;
  return static_cast<std::size_t>(it - slot_col_.begin());
}

void SparseLu::LoadLegacyFactor() {
  std::fill(slot_val_.begin(), slot_val_.end(), Complex(0.0, 0.0));
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t pr = row_perm_[step];
    for (const Entry& e : upper_[step]) {
      const std::size_t s = SlotOf(pr, e.col);
      if (s == kNoSlot) {
        throw util::NumericError(
            "sparse LU factor entry outside compiled pattern");
      }
      slot_val_[s] = e.val;
    }
    for (const Entry& e : lower_[step]) {
      // lower_ entries store (target row, multiplier) for pivot column
      // col_perm_[step].
      const std::size_t s = SlotOf(e.col, col_perm_[step]);
      if (s == kNoSlot) {
        throw util::NumericError(
            "sparse LU multiplier outside compiled pattern");
      }
      slot_val_[s] = e.val;
    }
  }
  flat_valid_ = true;
}

void SparseLu::EnsureFlatFactor() {
  if (flat_valid_) return;
  if (!have_program_) CompileProgram();
  LoadLegacyFactor();
}

bool SparseLu::ReplayRefactor(const CsrMatrix& a) {
  static metrics::Counter& refactor_count =
      metrics::GetCounter("linalg.sparse_lu.refactor");
  static metrics::Counter& fallback_count =
      metrics::GetCounter("linalg.sparse_lu.refactor_fallback");
  flat_valid_ = false;
  // Load: zero every slot, then scatter the CSR values through the
  // precomputed slot map (CSR positions are unique, so plain stores).
  std::fill(slot_val_.begin(), slot_val_.end(), Complex(0.0, 0.0));
  const std::vector<Complex>& vals = a.Values();
  for (std::size_t k = 0; k < vals.size(); ++k) {
    slot_val_[csr_slot_[k]] = vals[k];
  }
  // Replay: per step one pivot check, then per target one division plus a
  // run of indexed multiply-subtracts.  The value conditions mirror the
  // legacy pass exactly: an absent entry is a zero-valued slot, so a
  // missing pivot fails the same |piv| test and a missing multiplier takes
  // the same m == 0 skip.
  Complex* const sv = slot_val_.data();
  for (std::size_t step = 0; step < n_; ++step) {
    const std::size_t pslot = step_pivot_slot_[step];
    const Complex piv = pslot == kNoSlot ? Complex(0.0, 0.0) : sv[pslot];
    if (std::abs(piv) <= kSingularAbs) {
      fallback_count.Add();
      return false;
    }
    for (std::size_t t = step_target_ptr_[step];
         t < step_target_ptr_[step + 1]; ++t) {
      const std::size_t mslot = target_mult_slot_[t];
      const Complex m = sv[mslot] / piv;
      sv[mslot] = m;
      if (m == Complex(0.0, 0.0)) continue;
      if (std::abs(m) > kRefactorGrowthLimit) {
        fallback_count.Add();
        return false;
      }
      const std::size_t op_end = target_op_ptr_[t + 1];
      for (std::size_t o = target_op_ptr_[t]; o < op_end; ++o) {
        sv[op_dst_[o]] -= m * sv[op_src_[o]];
      }
    }
  }
  refactor_count.Add();
  flat_valid_ = true;
  return true;
}

bool SparseLu::Refactor(const CsrMatrix& a) {
  if (a.Rows() != n_ || a.Cols() != n_) {
    throw util::NumericError("sparse LU refactor dimension mismatch");
  }
  if (!have_program_ || a.RowPointers() != pat_row_ptr_ ||
      a.ColumnIndices() != pat_col_idx_) {
    pat_row_ptr_ = a.RowPointers();
    pat_col_idx_ = a.ColumnIndices();
    CompileProgram();
  }
  return ReplayRefactor(a);
}

Vector SparseLu::Solve(const Vector& b) {
  if (b.size() != n_) {
    throw util::NumericError("sparse LU solve dimension mismatch");
  }
  // Forward elimination replayed on a scratch copy of b.
  Vector& work = work_b_;
  work.data().assign(b.data().begin(), b.data().end());
  Vector& y = work_y_;
  y.Resize(n_);
  if (flat_valid_) {
    // Program path: same per-entry operation sequence as the legacy rows
    // (targets in ascending row order, U entries in ascending column
    // order), reading values from the flat slot array.
    const Complex* const sv = slot_val_.data();
    for (std::size_t step = 0; step < n_; ++step) {
      const Complex yk = work[row_perm_[step]];
      y[step] = yk;
      for (std::size_t t = step_target_ptr_[step];
           t < step_target_ptr_[step + 1]; ++t) {
        work[target_row_[t]] -= sv[target_mult_slot_[t]] * yk;
      }
    }
    Vector x(n_);
    for (std::size_t s = n_; s-- > 0;) {
      Complex acc = y[s];
      for (std::size_t u = step_u_ptr_[s]; u < step_u_ptr_[s + 1]; ++u) {
        acc -= sv[u_slot_[u]] * x[u_col_[u]];
      }
      const std::size_t pslot = step_pivot_slot_[s];
      const Complex piv = pslot == kNoSlot ? Complex(0.0, 0.0) : sv[pslot];
      x[col_perm_[s]] = acc / piv;
    }
    return x;
  }
  for (std::size_t step = 0; step < n_; ++step) {
    Complex yk = work[row_perm_[step]];
    y[step] = yk;
    for (const Entry& e : lower_[step]) work[e.col] -= e.val * yk;
  }
  // Backward substitution over the permuted upper factor.
  Vector x(n_);
  for (std::size_t s = n_; s-- > 0;) {
    Complex acc = y[s];
    Complex piv(0.0, 0.0);
    for (const Entry& e : upper_[s]) {
      if (e.col == col_perm_[s]) {
        piv = e.val;
      } else {
        acc -= e.val * x[e.col];
      }
    }
    x[col_perm_[s]] = acc / piv;
  }
  return x;
}

void SparseLu::SolveMulti(std::size_t lanes, double* re, double* im) {
  if (lanes == 0) return;
  EnsureFlatFactor();
  const simd::Kernels& kern = simd::Active();
  const Complex* const sv = slot_val_.data();
  multi_y_re_.resize(n_ * lanes);
  multi_y_im_.resize(n_ * lanes);
  // Forward elimination, in place on the caller's lanes: lane l replays
  // exactly the scalar forward pass (y_step = work[row_perm_[step]];
  // work[target] -= m * y_step).
  for (std::size_t step = 0; step < n_; ++step) {
    double* const yr = multi_y_re_.data() + step * lanes;
    double* const yi = multi_y_im_.data() + step * lanes;
    std::memcpy(yr, re + row_perm_[step] * lanes, lanes * sizeof(double));
    std::memcpy(yi, im + row_perm_[step] * lanes, lanes * sizeof(double));
    for (std::size_t t = step_target_ptr_[step];
         t < step_target_ptr_[step + 1]; ++t) {
      const Complex m = sv[target_mult_slot_[t]];
      const std::size_t row = target_row_[t];
      kern.caxpy_sub(lanes, m.real(), m.imag(), yr, yi, re + row * lanes,
                     im + row * lanes);
    }
  }
  // Backward substitution: the accumulator reuses the y rows; per-lane
  // divisions stay scalar std::complex so the pivot quotient is
  // bit-identical to Solve().
  for (std::size_t s = n_; s-- > 0;) {
    double* const ar = multi_y_re_.data() + s * lanes;
    double* const ai = multi_y_im_.data() + s * lanes;
    for (std::size_t u = step_u_ptr_[s]; u < step_u_ptr_[s + 1]; ++u) {
      const Complex uv = sv[u_slot_[u]];
      const std::size_t col = u_col_[u];
      kern.caxpy_sub(lanes, uv.real(), uv.imag(), re + col * lanes,
                     im + col * lanes, ar, ai);
    }
    const std::size_t pslot = step_pivot_slot_[s];
    const Complex piv = pslot == kNoSlot ? Complex(0.0, 0.0) : sv[pslot];
    double* const xr = re + col_perm_[s] * lanes;
    double* const xi = im + col_perm_[s] * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      const Complex q = Complex(ar[l], ai[l]) / piv;
      xr[l] = q.real();
      xi[l] = q.imag();
    }
  }
}

std::size_t SparseLu::FactorNonZeroCount() const {
  if (flat_valid_) {
    std::size_t nnz = 0;
    for (const Complex& v : slot_val_) {
      if (v != Complex(0.0, 0.0)) ++nnz;
    }
    return nnz;
  }
  std::size_t nnz = 0;
  for (const auto& r : lower_) nnz += r.size();
  for (const auto& r : upper_) nnz += r.size();
  return nnz;
}

Vector SolveSparse(const CsrMatrix& a, const Vector& b, SparseLuOptions options) {
  return SparseLu(a, options).Solve(b);
}

}  // namespace mcdft::linalg
