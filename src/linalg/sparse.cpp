#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace mcdft::linalg {

void TripletMatrix::Add(std::size_t r, std::size_t c, Complex v) {
  if (r >= rows_ || c >= cols_) {
    throw util::NumericError("triplet entry (" + std::to_string(r) + "," +
                             std::to_string(c) + ") outside " +
                             std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  entries_.push_back(Triplet{r, c, v});
}

Matrix TripletMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  for (const auto& e : entries_) m.Add(e.row, e.col, e.value);
  return m;
}

CsrMatrix::CsrMatrix(const TripletMatrix& t) : rows_(t.Rows()), cols_(t.Cols()) {
  std::vector<Triplet> sorted = t.Entries();
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    Complex sum(0.0, 0.0);
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    col_idx_.push_back(sorted[i].col);
    values_.push_back(sum);
    ++row_ptr_[sorted[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw util::NumericError("CSR matrix-vector dimension mismatch");
  }
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc(0.0, 0.0);
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Complex CsrMatrix::At(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw util::NumericError("CSR At() out of range");
  }
  auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return Complex(0.0, 0.0);
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.At(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

CsrAssembly::CsrAssembly(const TripletMatrix& t) : csr_(t) {
  const auto& entries = t.Entries();
  entry_rows_.reserve(entries.size());
  entry_cols_.reserve(entries.size());
  slot_.resize(entries.size());
  for (const auto& e : entries) {
    entry_rows_.push_back(e.row);
    entry_cols_.push_back(e.col);
  }
  // Slot of entry i = position of (row, col) in the compressed matrix.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::size_t r = entries[i].row;
    const std::size_t begin = csr_.row_ptr_[r];
    const std::size_t end = csr_.row_ptr_[r + 1];
    const auto first = csr_.col_idx_.begin() + static_cast<std::ptrdiff_t>(begin);
    const auto last = csr_.col_idx_.begin() + static_cast<std::ptrdiff_t>(end);
    const auto it = std::lower_bound(first, last, entries[i].col);
    slot_[i] = static_cast<std::size_t>(it - csr_.col_idx_.begin());
  }
}

bool CsrAssembly::Matches(const TripletMatrix& t) const {
  const auto& entries = t.Entries();
  if (t.Rows() != csr_.rows_ || t.Cols() != csr_.cols_ ||
      entries.size() != slot_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].row != entry_rows_[i] || entries[i].col != entry_cols_[i]) {
      return false;
    }
  }
  return true;
}

void CsrAssembly::Update(const TripletMatrix& t) {
  if (!Matches(t)) {
    throw util::NumericError(
        "CsrAssembly::Update with a structurally different assembly");
  }
  std::fill(csr_.values_.begin(), csr_.values_.end(), Complex(0.0, 0.0));
  const auto& entries = t.Entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    csr_.values_[slot_[i]] += entries[i].value;
  }
}

double CsrMatrix::NormInf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += std::abs(values_[k]);
    }
    best = std::max(best, s);
  }
  return best;
}

}  // namespace mcdft::linalg
