#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace mcdft::linalg {

void TripletMatrix::Add(std::size_t r, std::size_t c, Complex v) {
  if (r >= rows_ || c >= cols_) {
    throw util::NumericError("triplet entry (" + std::to_string(r) + "," +
                             std::to_string(c) + ") outside " +
                             std::to_string(rows_) + "x" + std::to_string(cols_));
  }
  entries_.push_back(Triplet{r, c, v});
}

Matrix TripletMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  for (const auto& e : entries_) m.Add(e.row, e.col, e.value);
  return m;
}

CsrMatrix::CsrMatrix(const TripletMatrix& t) : rows_(t.Rows()), cols_(t.Cols()) {
  std::vector<Triplet> sorted = t.Entries();
  std::sort(sorted.begin(), sorted.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    Complex sum(0.0, 0.0);
    while (j < sorted.size() && sorted[j].row == sorted[i].row &&
           sorted[j].col == sorted[i].col) {
      sum += sorted[j].value;
      ++j;
    }
    col_idx_.push_back(sorted[i].col);
    values_.push_back(sum);
    ++row_ptr_[sorted[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector CsrMatrix::Multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw util::NumericError("CSR matrix-vector dimension mismatch");
  }
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc(0.0, 0.0);
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
  return y;
}

Complex CsrMatrix::At(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw util::NumericError("CSR At() out of range");
  }
  auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return Complex(0.0, 0.0);
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Matrix CsrMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      m.At(r, col_idx_[k]) = values_[k];
    }
  }
  return m;
}

double CsrMatrix::NormInf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += std::abs(values_[k]);
    }
    best = std::max(best, s);
  }
  return best;
}

}  // namespace mcdft::linalg
