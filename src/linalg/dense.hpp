// Dense complex matrix / vector types used by the MNA engine.
//
// The circuits the multi-configuration DFT technique targets are small
// (tens of nodes), so a cache-friendly row-major dense matrix with LU
// factorization is the default backend; `linalg/sparse.hpp` provides a
// compressed-sparse alternative for the larger circuit-zoo netlists.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcdft::linalg {

using Complex = std::complex<double>;

/// Dense complex vector (thin wrapper over std::vector with a few BLAS-1
/// style helpers used by the solvers and tests).
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, Complex fill = Complex(0.0, 0.0))
      : data_(n, fill) {}

  std::size_t size() const noexcept { return data_.size(); }
  Complex& operator[](std::size_t i) { return data_[i]; }
  const Complex& operator[](std::size_t i) const { return data_[i]; }

  /// Resize, zero-filling new entries.
  void Resize(std::size_t n) { data_.resize(n, Complex(0.0, 0.0)); }

  /// Set every entry to zero.
  void SetZero() { std::fill(data_.begin(), data_.end(), Complex(0.0, 0.0)); }

  /// Euclidean norm.
  double Norm2() const;

  /// Max |x_i|.
  double NormInf() const;

  /// this += alpha * other.  Sizes must match.
  void Axpy(Complex alpha, const Vector& other);

  const std::vector<Complex>& data() const { return data_; }
  std::vector<Complex>& data() { return data_; }

 private:
  std::vector<Complex> data_;
};

/// Row-major dense complex matrix.
class Matrix {
 public:
  Matrix() = default;

  /// n-by-m matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0)) {}

  /// Square n-by-n matrix of zeros.
  explicit Matrix(std::size_t n) : Matrix(n, n) {}

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }

  Complex& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Complex& At(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Accumulate: (r,c) += v.  The natural operation for MNA stamping.
  void Add(std::size_t r, std::size_t c, Complex v) { At(r, c) += v; }

  /// Set every entry to zero, keeping the shape.
  void SetZero() { std::fill(data_.begin(), data_.end(), Complex(0.0, 0.0)); }

  /// y = A * x.  Throws NumericError on dimension mismatch.
  Vector Multiply(const Vector& x) const;

  /// Frobenius norm.
  double NormFrobenius() const;

  /// Max row sum of |a_ij| (the induced infinity norm).
  double NormInf() const;

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

  /// Human-readable dump (for debugging / error messages).
  std::string ToString(int precision = 3) const;

  /// Raw row-major storage (used by the LU factorization in-place).
  std::vector<Complex>& data() { return data_; }
  const std::vector<Complex>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

}  // namespace mcdft::linalg
