#include "linalg/lowrank.hpp"

#include <cmath>
#include <cstring>

#include "core/error.hpp"
#include "linalg/simd/kernels.hpp"
#include "util/error.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {

namespace metrics = util::metrics;

namespace {

constexpr std::size_t kMaxRank = LowRankUpdateSolver::kMaxRank;

bool Finite(Complex v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// w^T v over a sparse w (plain transpose, no conjugation: the perturbation
/// is Delta = sum u w^T, not a Hermitian form).
Complex SparseDot(const std::vector<std::pair<std::size_t, Complex>>& w,
                  const Vector& v) {
  Complex acc(0.0, 0.0);
  for (const auto& [idx, val] : w) acc += val * v[idx];
  return acc;
}

/// k-by-k partial-pivot elimination of C h = g, shared verbatim by Solve()
/// and SolveBatch() so a cell's accept/decline verdict and h coefficients
/// cannot depend on which path ran it.  The conditioning guard: a pivot
/// collapsing relative to the matrix scale (`cmax`) means A + Delta is
/// (nearly) singular along the update subspace — SMW would amplify
/// roundoff unboundedly there, so the exact path must decide.  Returns
/// false on a collapsed (or NaN) pivot or a non-finite coefficient;
/// `c` and `g` are clobbered either way.
bool SolveCapacitance(std::size_t k, Complex c[kMaxRank][kMaxRank],
                      Complex g[kMaxRank], double cmax,
                      Complex h[kMaxRank]) {
  std::size_t perm[kMaxRank];
  for (std::size_t i = 0; i < k; ++i) perm[i] = i;
  const double pivot_floor = LowRankUpdateSolver::kPivotFloor * cmax;
  for (std::size_t step = 0; step < k; ++step) {
    std::size_t best = step;
    double best_mag = std::abs(c[perm[step]][step]);
    for (std::size_t r = step + 1; r < k; ++r) {
      const double mag = std::abs(c[perm[r]][step]);
      if (mag > best_mag) {
        best = r;
        best_mag = mag;
      }
    }
    if (!(best_mag > pivot_floor)) {  // also catches NaN pivots
      return false;
    }
    std::swap(perm[step], perm[best]);
    const Complex pivot = c[perm[step]][step];
    for (std::size_t r = step + 1; r < k; ++r) {
      const Complex m = c[perm[r]][step] / pivot;
      if (m == Complex(0.0, 0.0)) continue;
      for (std::size_t col = step + 1; col < k; ++col) {
        c[perm[r]][col] -= m * c[perm[step]][col];
      }
      g[perm[r]] -= m * g[perm[step]];
    }
  }
  for (std::size_t step = k; step-- > 0;) {
    Complex acc = g[perm[step]];
    for (std::size_t col = step + 1; col < k; ++col) {
      acc -= c[perm[step]][col] * h[col];
    }
    h[step] = acc / c[perm[step]][step];
    if (!Finite(h[step])) {
      return false;
    }
  }
  return true;
}

/// Hashed faultpoint digest over the perturbation terms — one shared
/// function so the batched and unbatched paths fail identical cells.
std::uint64_t PerturbationDigest(const LowRankPerturbation& delta) {
  std::uint64_t digest = 0;
  for (const LowRankTerm& term : delta.terms) {
    for (const auto& [idx, val] : term.u) {
      digest = util::faultpoint::DigestCombine(digest, idx);
      digest = util::faultpoint::DigestCombine(
          digest, util::faultpoint::DigestBytes(&val, sizeof(val)));
    }
    for (const auto& [idx, val] : term.w) {
      digest = util::faultpoint::DigestCombine(digest, idx);
      digest = util::faultpoint::DigestCombine(
          digest, util::faultpoint::DigestBytes(&val, sizeof(val)));
    }
  }
  return digest;
}

metrics::Counter& UpdateCounter() {
  static metrics::Counter& c = metrics::GetCounter("linalg.smw.update");
  return c;
}

metrics::Counter& FallbackCounter() {
  static metrics::Counter& c = metrics::GetCounter("linalg.smw.fallback");
  return c;
}

metrics::Counter& KxkCounter() {
  static metrics::Counter& c = metrics::GetCounter("linalg.smw.kxk_solve");
  return c;
}

metrics::Counter& BatchedCounter() {
  static metrics::Counter& c = metrics::GetCounter("linalg.smw.batched");
  return c;
}

}  // namespace

void LowRankUpdateSolver::Bind(SparseLu& nominal, const Vector& b) {
  if (b.size() != nominal.Size()) {
    throw util::NumericError("low-rank solver: rhs size " +
                             std::to_string(b.size()) +
                             " does not match matrix dimension " +
                             std::to_string(nominal.Size()));
  }
  lu_ = &nominal;
  // Pin the factorization onto the factor-program path before the first
  // triangular solve: Solve() and SolveMulti() then replay one operation
  // sequence, which is what makes batched and unbatched fault solves
  // bit-identical even at the sweep's anchor frequency (where the factor
  // comes straight from construction, not from a Refactor).
  nominal.EnsureFactorProgram();
  x0_ = nominal.Solve(b);
}

std::optional<Vector> LowRankUpdateSolver::Solve(
    const LowRankPerturbation& delta) {
  if (lu_ == nullptr) {
    throw util::NumericError("low-rank solver: Solve() before Bind()");
  }
  const std::size_t k = delta.Rank();
  if (k == 0) {
    UpdateCounter().Add();
    return x0_;  // Delta == 0: the perturbed system is the nominal one
  }
  if (k > kMaxRank) {
    FallbackCounter().Add();
    return std::nullopt;
  }
  // Hashed-mode faultpoint over the perturbation terms: armed runs fail
  // the same (fault, frequency) cells at any thread or shard count.
  if (util::faultpoint::AnyArmed() &&
      util::faultpoint::ShouldFail("smw.solve", PerturbationDigest(delta))) {
    throw core::McdftError(core::ErrorCategory::kInjected,
                           "faultpoint smw.solve");
  }
  const std::size_t n = lu_->Size();

  // Z = A^{-1} U, one triangular solve pair per rank-1 term.
  if (z_.size() < k) z_.resize(k);
  dense_u_.Resize(n);
  for (std::size_t j = 0; j < k; ++j) {
    dense_u_.SetZero();
    for (const auto& [idx, val] : delta.terms[j].u) {
      if (idx >= n) {
        throw util::NumericError("low-rank solver: u index out of range");
      }
      dense_u_[idx] += val;
    }
    z_[j] = lu_->Solve(dense_u_);
  }

  // Capacitance matrix C = I_k + W^T Z and projected rhs g = W^T x0.
  Complex c[kMaxRank][kMaxRank];
  Complex g[kMaxRank];
  double cmax = 1.0;  // the identity contributes unit-scale entries
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& entry : delta.terms[i].w) {
      if (entry.first >= n) {
        throw util::NumericError("low-rank solver: w index out of range");
      }
    }
    g[i] = SparseDot(delta.terms[i].w, x0_);
    for (std::size_t j = 0; j < k; ++j) {
      c[i][j] = (i == j ? Complex(1.0, 0.0) : Complex(0.0, 0.0)) +
                SparseDot(delta.terms[i].w, z_[j]);
      cmax = std::max(cmax, std::abs(c[i][j]));
    }
  }

  KxkCounter().Add();
  Complex h[kMaxRank];
  if (!SolveCapacitance(k, c, g, cmax, h)) {
    FallbackCounter().Add();
    return std::nullopt;
  }

  // x = x0 - Z h.
  Vector x = x0_;
  for (std::size_t j = 0; j < k; ++j) x.Axpy(-h[j], z_[j]);
  UpdateCounter().Add();
  return x;
}

void LowRankUpdateSolver::SolveBatch(const LowRankPerturbation* deltas,
                                     std::size_t count, SmwBatch& out) {
  if (lu_ == nullptr) {
    throw util::NumericError("low-rank solver: SolveBatch() before Bind()");
  }
  const std::size_t n = lu_->Size();
  out.statuses_.assign(count, SmwBatchStatus::kDeclined);
  out.lane_of_.assign(count, SmwBatch::kNoLane);
  out.width_ = 0;

  // Classify every cell first (cheap, no lanes yet).  The decisions and
  // counter bumps mirror the prologue of Solve() per cell; a cell that
  // survives is "laned" and joins the packed stages below.
  const bool armed = util::faultpoint::AnyArmed();
  std::size_t group_count[kMaxRank + 1] = {};
  for (std::size_t cell = 0; cell < count; ++cell) {
    const LowRankPerturbation& delta = deltas[cell];
    const std::size_t k = delta.Rank();
    if (k == 0) {
      out.statuses_[cell] = SmwBatchStatus::kNominal;
      UpdateCounter().Add();
      continue;
    }
    if (k > kMaxRank) {
      FallbackCounter().Add();
      continue;  // kDeclined
    }
    if (armed &&
        util::faultpoint::ShouldFail("smw.solve", PerturbationDigest(delta))) {
      out.statuses_[cell] = SmwBatchStatus::kFailed;
      continue;
    }
    // Index validation up front (Solve() throws mid-flight; a batch marks
    // just the offending cell as failed and the caller escalates it).
    bool valid = true;
    for (const LowRankTerm& term : delta.terms) {
      for (const auto& [idx, val] : term.u) {
        (void)val;
        if (idx >= n) valid = false;
      }
      for (const auto& [idx, val] : term.w) {
        (void)val;
        if (idx >= n) valid = false;
      }
    }
    if (!valid) {
      out.statuses_[cell] = SmwBatchStatus::kFailed;
      continue;
    }
    out.statuses_[cell] = SmwBatchStatus::kSolved;  // tentative: laned
    ++group_count[k];
  }

  // Lane layout.  Output lanes: cells grouped by rank, batch order within
  // a group.  Z lanes: within rank group k, plane j of all cells is the
  // contiguous slice [zoff_k + j*gc_k, +gc_k) — so the correction stage's
  // per-plane multiply-add runs over contiguous lanes.
  std::size_t ooff[kMaxRank + 1];
  std::size_t zoff[kMaxRank + 1];
  std::size_t width = 0, zwidth = 0;
  for (std::size_t k = 1; k <= kMaxRank; ++k) {
    ooff[k] = width;
    zoff[k] = zwidth;
    width += group_count[k];
    zwidth += k * group_count[k];
  }
  out.width_ = width;
  if (width == 0) return;  // nothing laned (all nominal/declined/failed)

  out.z_re_.assign(n * zwidth, 0.0);
  out.z_im_.assign(n * zwidth, 0.0);
  std::size_t group_pos[kMaxRank + 1] = {};
  for (std::size_t cell = 0; cell < count; ++cell) {
    if (out.statuses_[cell] != SmwBatchStatus::kSolved) continue;
    const std::size_t k = deltas[cell].Rank();
    const std::size_t pos = group_pos[k]++;
    out.lane_of_[cell] = ooff[k] + pos;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t zlane = zoff[k] + j * group_count[k] + pos;
      for (const auto& [idx, val] : deltas[cell].terms[j].u) {
        out.z_re_[idx * zwidth + zlane] += val.real();
        out.z_im_[idx * zwidth + zlane] += val.imag();
      }
    }
  }

  // Z = A^{-1} U for every plane of every cell in one multi-RHS pass.
  lu_->SolveMulti(zwidth, out.z_re_.data(), out.z_im_.data());

  // Per cell: capacitance matrix, k-by-k solve, correction coefficients.
  out.coef_re_.assign(zwidth, 0.0);
  out.coef_im_.assign(zwidth, 0.0);
  for (std::size_t cell = 0; cell < count; ++cell) {
    if (out.statuses_[cell] != SmwBatchStatus::kSolved) continue;
    const LowRankPerturbation& delta = deltas[cell];
    const std::size_t k = delta.Rank();
    const std::size_t pos = out.lane_of_[cell] - ooff[k];
    Complex c[kMaxRank][kMaxRank];
    Complex g[kMaxRank];
    double cmax = 1.0;
    for (std::size_t i = 0; i < k; ++i) {
      g[i] = SparseDot(delta.terms[i].w, x0_);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t zlane = zoff[k] + j * group_count[k] + pos;
        // Same accumulation sequence as SparseDot over a Z column.
        Complex acc(0.0, 0.0);
        for (const auto& [idx, val] : delta.terms[i].w) {
          acc += val * Complex(out.z_re_[idx * zwidth + zlane],
                               out.z_im_[idx * zwidth + zlane]);
        }
        c[i][j] = (i == j ? Complex(1.0, 0.0) : Complex(0.0, 0.0)) + acc;
        cmax = std::max(cmax, std::abs(c[i][j]));
      }
    }
    KxkCounter().Add();
    Complex h[kMaxRank];
    if (!SolveCapacitance(k, c, g, cmax, h)) {
      FallbackCounter().Add();
      out.statuses_[cell] = SmwBatchStatus::kDeclined;
      continue;  // coefficient lanes stay zero; output lane is never read
    }
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t zlane = zoff[k] + j * group_count[k] + pos;
      const Complex minus_h = -h[j];
      out.coef_re_[zlane] = minus_h.real();
      out.coef_im_[zlane] = minus_h.imag();
    }
    UpdateCounter().Add();
    BatchedCounter().Add();
  }

  // Correction x = x0 - Z h: broadcast x0 across the output lanes, then
  // one packed multiply-add per (rank group, plane) per row — per lane
  // this is exactly the Axpy(-h[j], z_j) sequence of Solve(), j ascending.
  out.out_re_.resize(n * width);
  out.out_im_.resize(n * width);
  const simd::Kernels& kern = simd::Active();
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x0_[i].real();
    const double xi = x0_[i].imag();
    double* const row_re = out.out_re_.data() + i * width;
    double* const row_im = out.out_im_.data() + i * width;
    for (std::size_t l = 0; l < width; ++l) {
      row_re[l] = xr;
      row_im[l] = xi;
    }
    for (std::size_t k = 1; k <= kMaxRank; ++k) {
      const std::size_t gc = group_count[k];
      if (gc == 0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t zlane0 = zoff[k] + j * gc;
        kern.cmadd(gc, out.coef_re_.data() + zlane0,
                   out.coef_im_.data() + zlane0,
                   out.z_re_.data() + i * zwidth + zlane0,
                   out.z_im_.data() + i * zwidth + zlane0, row_re + ooff[k],
                   row_im + ooff[k]);
      }
    }
  }
}

}  // namespace mcdft::linalg
