#include "linalg/lowrank.hpp"

#include <cmath>

#include "core/error.hpp"
#include "util/error.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {

namespace metrics = util::metrics;

namespace {

bool Finite(Complex v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// w^T v over a sparse w (plain transpose, no conjugation: the perturbation
/// is Delta = sum u w^T, not a Hermitian form).
Complex SparseDot(const std::vector<std::pair<std::size_t, Complex>>& w,
                  const Vector& v) {
  Complex acc(0.0, 0.0);
  for (const auto& [idx, val] : w) acc += val * v[idx];
  return acc;
}

}  // namespace

void LowRankUpdateSolver::Bind(SparseLu& nominal, const Vector& b) {
  if (b.size() != nominal.Size()) {
    throw util::NumericError("low-rank solver: rhs size " +
                             std::to_string(b.size()) +
                             " does not match matrix dimension " +
                             std::to_string(nominal.Size()));
  }
  lu_ = &nominal;
  x0_ = nominal.Solve(b);
}

std::optional<Vector> LowRankUpdateSolver::Solve(
    const LowRankPerturbation& delta) {
  static metrics::Counter& update_count = metrics::GetCounter("linalg.smw.update");
  static metrics::Counter& fallback_count =
      metrics::GetCounter("linalg.smw.fallback");
  static metrics::Counter& kxk_count =
      metrics::GetCounter("linalg.smw.kxk_solve");

  if (lu_ == nullptr) {
    throw util::NumericError("low-rank solver: Solve() before Bind()");
  }
  const std::size_t k = delta.Rank();
  if (k == 0) {
    update_count.Add();
    return x0_;  // Delta == 0: the perturbed system is the nominal one
  }
  if (k > kMaxRank) {
    fallback_count.Add();
    return std::nullopt;
  }
  // Hashed-mode faultpoint over the perturbation terms: armed runs fail
  // the same (fault, frequency) cells at any thread or shard count.
  if (util::faultpoint::AnyArmed()) {
    std::uint64_t digest = 0;
    for (std::size_t j = 0; j < k; ++j) {
      for (const auto& [idx, val] : delta.terms[j].u) {
        digest = util::faultpoint::DigestCombine(digest, idx);
        digest = util::faultpoint::DigestCombine(
            digest, util::faultpoint::DigestBytes(&val, sizeof(val)));
      }
      for (const auto& [idx, val] : delta.terms[j].w) {
        digest = util::faultpoint::DigestCombine(digest, idx);
        digest = util::faultpoint::DigestCombine(
            digest, util::faultpoint::DigestBytes(&val, sizeof(val)));
      }
    }
    if (util::faultpoint::ShouldFail("smw.solve", digest)) {
      throw core::McdftError(core::ErrorCategory::kInjected,
                             "faultpoint smw.solve");
    }
  }
  const std::size_t n = lu_->Size();

  // Z = A^{-1} U, one triangular solve pair per rank-1 term.
  if (z_.size() < k) z_.resize(k);
  dense_u_.Resize(n);
  for (std::size_t j = 0; j < k; ++j) {
    dense_u_.SetZero();
    for (const auto& [idx, val] : delta.terms[j].u) {
      if (idx >= n) {
        throw util::NumericError("low-rank solver: u index out of range");
      }
      dense_u_[idx] += val;
    }
    z_[j] = lu_->Solve(dense_u_);
  }

  // Capacitance matrix C = I_k + W^T Z and projected rhs g = W^T x0.
  Complex c[kMaxRank][kMaxRank];
  Complex g[kMaxRank];
  double cmax = 1.0;  // the identity contributes unit-scale entries
  for (std::size_t i = 0; i < k; ++i) {
    for (const auto& entry : delta.terms[i].w) {
      if (entry.first >= n) {
        throw util::NumericError("low-rank solver: w index out of range");
      }
    }
    g[i] = SparseDot(delta.terms[i].w, x0_);
    for (std::size_t j = 0; j < k; ++j) {
      c[i][j] = (i == j ? Complex(1.0, 0.0) : Complex(0.0, 0.0)) +
                SparseDot(delta.terms[i].w, z_[j]);
      cmax = std::max(cmax, std::abs(c[i][j]));
    }
  }

  // k-by-k partial-pivot elimination of C h = g.  The conditioning guard:
  // a pivot collapsing relative to the matrix scale means A + Delta is
  // (nearly) singular along the update subspace — SMW would amplify
  // roundoff unboundedly there, so hand the solve back to the exact path.
  kxk_count.Add();
  std::size_t perm[kMaxRank];
  for (std::size_t i = 0; i < k; ++i) perm[i] = i;
  const double pivot_floor = kPivotFloor * cmax;
  for (std::size_t step = 0; step < k; ++step) {
    std::size_t best = step;
    double best_mag = std::abs(c[perm[step]][step]);
    for (std::size_t r = step + 1; r < k; ++r) {
      const double mag = std::abs(c[perm[r]][step]);
      if (mag > best_mag) {
        best = r;
        best_mag = mag;
      }
    }
    if (!(best_mag > pivot_floor)) {  // also catches NaN pivots
      fallback_count.Add();
      return std::nullopt;
    }
    std::swap(perm[step], perm[best]);
    const Complex pivot = c[perm[step]][step];
    for (std::size_t r = step + 1; r < k; ++r) {
      const Complex m = c[perm[r]][step] / pivot;
      if (m == Complex(0.0, 0.0)) continue;
      for (std::size_t col = step + 1; col < k; ++col) {
        c[perm[r]][col] -= m * c[perm[step]][col];
      }
      g[perm[r]] -= m * g[perm[step]];
    }
  }
  Complex h[kMaxRank];
  for (std::size_t step = k; step-- > 0;) {
    Complex acc = g[perm[step]];
    for (std::size_t col = step + 1; col < k; ++col) {
      acc -= c[perm[step]][col] * h[col];
    }
    h[step] = acc / c[perm[step]][step];
    if (!Finite(h[step])) {
      fallback_count.Add();
      return std::nullopt;
    }
  }

  // x = x0 - Z h.
  Vector x = x0_;
  for (std::size_t j = 0; j < k; ++j) x.Axpy(-h[j], z_[j]);
  update_count.Add();
  return x;
}

}  // namespace mcdft::linalg
