#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>

namespace mcdft::linalg {

namespace {
// Relative threshold below which a pivot is considered exactly zero.
constexpr double kSingularRel = 1e-300;
}  // namespace

LuFactorization::LuFactorization(const Matrix& a) : lu_(a) {
  if (a.Rows() != a.Cols()) {
    throw util::NumericError("LU requires a square matrix, got " +
                             std::to_string(a.Rows()) + "x" +
                             std::to_string(a.Cols()));
  }
  const std::size_t n = lu_.Rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |a_ik| in column k at/below row k.
    std::size_t piv = k;
    double best = std::abs(lu_.At(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      double m = std::abs(lu_.At(i, k));
      if (m > best) {
        best = m;
        piv = i;
      }
    }
    if (best <= kSingularRel) {
      throw util::NumericError(
          "singular matrix in LU factorization at pivot " + std::to_string(k) +
          " (|pivot| = " + std::to_string(best) + ")");
    }
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_.At(k, c), lu_.At(piv, c));
      }
      std::swap(perm_[k], perm_[piv]);
      sign_ = -sign_;
    }
    const Complex pivot = lu_.At(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      Complex m = lu_.At(i, k) / pivot;
      lu_.At(i, k) = m;
      if (m == Complex(0.0, 0.0)) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_.At(i, c) -= m * lu_.At(k, c);
      }
    }
  }
}

void LuFactorization::SolveInPlace(Vector& x) const {
  const std::size_t n = Size();
  if (x.size() != n) {
    throw util::NumericError("LU solve dimension mismatch");
  }
  // Apply permutation: y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x[perm_[i]];
  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) {
    Complex acc = y[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_.At(i, j) * y[j];
    y[i] = acc;
  }
  // Backward substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    Complex acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_.At(ii, j) * y[j];
    y[ii] = acc / lu_.At(ii, ii);
  }
  x = std::move(y);
}

Vector LuFactorization::Solve(const Vector& b) const {
  Vector x = b;
  SolveInPlace(x);
  return x;
}

double LuFactorization::Log10AbsDeterminant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < Size(); ++i) {
    acc += std::log10(std::abs(lu_.At(i, i)));
  }
  return acc;
}

double LuFactorization::PivotRatio() const {
  double mx = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < Size(); ++i) {
    double p = std::abs(lu_.At(i, i));
    mx = std::max(mx, p);
    mn = std::min(mn, p);
  }
  return mn == 0.0 ? std::numeric_limits<double>::infinity() : mx / mn;
}

Vector SolveDense(const Matrix& a, const Vector& b) {
  return LuFactorization(a).Solve(b);
}

}  // namespace mcdft::linalg
