// Sherman-Morrison-Woodbury rank-k update solves against a factored
// nominal matrix.
//
// A fault campaign solves (A + Delta) x = b for many small perturbations
// Delta of one nominal system A.  When Delta = sum_j u_j w_j^T has rank
// k << n (a single element's stamp change has rank <= 2), the Woodbury
// identity gives
//
//   x = x0 - Z (I_k + W^T Z)^{-1} (W^T x0),   Z = A^{-1} U,  x0 = A^{-1} b
//
// so each faulty solve costs k triangular solve pairs plus a k-by-k dense
// solve instead of a full refactorization — and x0 is shared by every
// perturbation at one frequency.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "linalg/sparse_lu.hpp"

namespace mcdft::linalg {

/// One rank-1 term u w^T of a perturbation, with both vectors stored
/// sparsely as (index, value) pairs (distinct indices, any order).
struct LowRankTerm {
  std::vector<std::pair<std::size_t, Complex>> u;
  std::vector<std::pair<std::size_t, Complex>> w;
};

/// An additive perturbation Delta = sum_j u_j w_j^T of rank terms.size().
struct LowRankPerturbation {
  std::vector<LowRankTerm> terms;

  std::size_t Rank() const { return terms.size(); }
};

/// Outcome of one cell of a SolveBatch() call.
enum class SmwBatchStatus : unsigned char {
  kSolved,    ///< the cell's lanes hold the perturbed solution
  kNominal,   ///< rank 0: the solution is the nominal x0
  kDeclined,  ///< guard rejection (rank cap, conditioning, non-finite
              ///< coefficients): the caller's normal exact fallback
  kFailed,    ///< injected faultpoint failure or malformed term indices:
              ///< equivalent to the unbatched path *throwing* — the caller
              ///< escalates (retry ladder) or fails fast
};

/// Result and reusable scratch of one batched SMW solve.  A default
/// constructed object is passed to SolveBatch(); keeping it alive across
/// calls recycles every internal buffer, so a campaign's per-frequency
/// batches allocate only on the first call.
class SmwBatch {
 public:
  /// Number of cells of the last SolveBatch() call.
  std::size_t Count() const { return statuses_.size(); }

  SmwBatchStatus Status(std::size_t cell) const { return statuses_[cell]; }

  /// Solution component `row` of a kSolved cell (other statuses have no
  /// solution lanes: kNominal cells read the solver's NominalSolution()).
  Complex At(std::size_t cell, std::size_t row) const {
    const std::size_t lane = lane_of_[cell];
    return Complex(out_re_[row * width_ + lane],
                   out_im_[row * width_ + lane]);
  }

 private:
  friend class LowRankUpdateSolver;
  static constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);

  std::vector<SmwBatchStatus> statuses_;
  std::vector<std::size_t> lane_of_;  // cell -> output lane (kNoLane: none)
  std::size_t width_ = 0;             // output lanes (= laned cell count)
  // Output block: solution component r of lane l at [r*width_ + l].
  std::vector<double> out_re_;
  std::vector<double> out_im_;
  // Z block: n rows by (sum of cell ranks) lanes, plane-grouped by rank so
  // each (rank, plane) pair is a contiguous lane slice (see the .cpp).
  std::vector<double> z_re_;
  std::vector<double> z_im_;
  // Per-Z-lane correction coefficients (-h_j of the owning cell).
  std::vector<double> coef_re_;
  std::vector<double> coef_im_;
};

/// Solves (A + Delta) x = b via SMW against a factored nominal A.
///
/// Usage: Bind() once per (factorization, rhs) — typically once per sweep
/// frequency — then Solve() once per perturbation.  Solve() returns nullopt
/// when the update is not numerically safe (rank above kMaxRank, a
/// near-singular capacitance matrix I + W^T Z, or non-finite coefficients);
/// the caller must then solve the perturbed system exactly.  Fallbacks bump
/// the `linalg.smw.fallback` counter, successes `linalg.smw.update`.
///
/// SolveBatch() applies many perturbations at once through SoA-packed
/// multi-RHS triangular solves and the linalg/simd kernels; each cell's
/// outcome and (for successes) solution are bit-identical to a Solve()
/// call on the same perturbation, so batching is purely a throughput knob.
class LowRankUpdateSolver {
 public:
  /// Largest accepted perturbation rank.  A two-terminal stamp is rank <= 2;
  /// the slack covers multi-branch elements (opamp models).
  static constexpr std::size_t kMaxRank = 4;

  /// A capacitance-matrix pivot below kPivotFloor * max(1, max|C_ij|) is
  /// treated as singular: the perturbation moved the system onto (or past)
  /// a pole of the update formula and the exact path must decide.
  static constexpr double kPivotFloor = 1e-12;

  /// Bind to a factored nominal system and its right-hand side; computes
  /// and caches x0 = A^{-1} b.  `nominal` must stay alive and unmodified
  /// until the next Bind().
  void Bind(SparseLu& nominal, const Vector& b);

  /// The cached fault-free solution x0 (valid after Bind()).
  const Vector& NominalSolution() const { return x0_; }

  /// Solve (A + delta) x = b for the bound system.  Rank 0 returns x0.
  std::optional<Vector> Solve(const LowRankPerturbation& delta);

  /// Solve `count` perturbations against the bound system in one batched
  /// pass: lanes are grouped by rank, Z = A^{-1} U runs as one multi-RHS
  /// triangular solve, the k-by-k systems solve per cell (scalar, shared
  /// with Solve()), and the x0 - Z h corrections accumulate through the
  /// packed complex kernels.  Per-cell statuses, counters and solutions
  /// match `count` individual Solve() calls bit-for-bit; a guard rejection
  /// or injected failure affects only its own cell (see SmwBatchStatus).
  void SolveBatch(const LowRankPerturbation* deltas, std::size_t count,
                  SmwBatch& out);

 private:
  SparseLu* lu_ = nullptr;
  Vector x0_;
  Vector dense_u_;          // dense expansion of one u_j
  std::vector<Vector> z_;   // Z columns A^{-1} u_j, capacity reused
};

}  // namespace mcdft::linalg
