// Sherman-Morrison-Woodbury rank-k update solves against a factored
// nominal matrix.
//
// A fault campaign solves (A + Delta) x = b for many small perturbations
// Delta of one nominal system A.  When Delta = sum_j u_j w_j^T has rank
// k << n (a single element's stamp change has rank <= 2), the Woodbury
// identity gives
//
//   x = x0 - Z (I_k + W^T Z)^{-1} (W^T x0),   Z = A^{-1} U,  x0 = A^{-1} b
//
// so each faulty solve costs k triangular solve pairs plus a k-by-k dense
// solve instead of a full refactorization — and x0 is shared by every
// perturbation at one frequency.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "linalg/sparse_lu.hpp"

namespace mcdft::linalg {

/// One rank-1 term u w^T of a perturbation, with both vectors stored
/// sparsely as (index, value) pairs (distinct indices, any order).
struct LowRankTerm {
  std::vector<std::pair<std::size_t, Complex>> u;
  std::vector<std::pair<std::size_t, Complex>> w;
};

/// An additive perturbation Delta = sum_j u_j w_j^T of rank terms.size().
struct LowRankPerturbation {
  std::vector<LowRankTerm> terms;

  std::size_t Rank() const { return terms.size(); }
};

/// Solves (A + Delta) x = b via SMW against a factored nominal A.
///
/// Usage: Bind() once per (factorization, rhs) — typically once per sweep
/// frequency — then Solve() once per perturbation.  Solve() returns nullopt
/// when the update is not numerically safe (rank above kMaxRank, a
/// near-singular capacitance matrix I + W^T Z, or non-finite coefficients);
/// the caller must then solve the perturbed system exactly.  Fallbacks bump
/// the `linalg.smw.fallback` counter, successes `linalg.smw.update`.
class LowRankUpdateSolver {
 public:
  /// Largest accepted perturbation rank.  A two-terminal stamp is rank <= 2;
  /// the slack covers multi-branch elements (opamp models).
  static constexpr std::size_t kMaxRank = 4;

  /// A capacitance-matrix pivot below kPivotFloor * max(1, max|C_ij|) is
  /// treated as singular: the perturbation moved the system onto (or past)
  /// a pole of the update formula and the exact path must decide.
  static constexpr double kPivotFloor = 1e-12;

  /// Bind to a factored nominal system and its right-hand side; computes
  /// and caches x0 = A^{-1} b.  `nominal` must stay alive and unmodified
  /// until the next Bind().
  void Bind(SparseLu& nominal, const Vector& b);

  /// The cached fault-free solution x0 (valid after Bind()).
  const Vector& NominalSolution() const { return x0_; }

  /// Solve (A + delta) x = b for the bound system.  Rank 0 returns x0.
  std::optional<Vector> Solve(const LowRankPerturbation& delta);

 private:
  SparseLu* lu_ = nullptr;
  Vector x0_;
  Vector dense_u_;          // dense expansion of one u_j
  std::vector<Vector> z_;   // Z columns A^{-1} u_j, capacity reused
};

}  // namespace mcdft::linalg
