// Sparse complex matrices: a triplet (COO) builder for MNA stamping and a
// compressed-sparse-row (CSR) form for multiplication and factorization.
//
// MNA stamping naturally produces duplicate (row, col) contributions — one
// per device terminal pair — so the triplet builder sums duplicates when
// compressing.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace mcdft::linalg {

/// A single (row, col, value) contribution.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  Complex value{0.0, 0.0};
};

/// Coordinate-format builder.  Append entries in any order (duplicates
/// allowed and summed); compress to CSR when done.
class TripletMatrix {
 public:
  TripletMatrix() = default;
  TripletMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t EntryCount() const noexcept { return entries_.size(); }

  /// Accumulate value at (r, c).  Bounds-checked; throws NumericError.
  void Add(std::size_t r, std::size_t c, Complex v);

  /// Drop all entries, keeping the shape (reuse across frequencies).
  void Clear() { entries_.clear(); }

  /// Set the shape and drop all entries, keeping the allocation (reuse of
  /// one builder across assemblies).
  void Reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    entries_.clear();
  }

  /// Dense copy (small systems, tests).
  Matrix ToDense() const;

  const std::vector<Triplet>& Entries() const { return entries_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Triplet> entries_;
};

/// Compressed-sparse-row matrix with sorted column indices per row and
/// duplicates summed.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress a triplet matrix.  Entries with |v| == 0 are kept (an MNA
  /// structural zero can become nonzero at another frequency only if it is
  /// restamped, so zeros here are genuinely informative).
  explicit CsrMatrix(const TripletMatrix& t);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t NonZeroCount() const noexcept { return values_.size(); }

  /// y = A x.
  Vector Multiply(const Vector& x) const;

  /// Value at (r, c); zero when the position is not stored.  O(log nnz_row).
  Complex At(std::size_t r, std::size_t c) const;

  /// Dense copy.
  Matrix ToDense() const;

  /// Induced infinity norm (max row sum of magnitudes).
  double NormInf() const;

  const std::vector<std::size_t>& RowPointers() const { return row_ptr_; }
  const std::vector<std::size_t>& ColumnIndices() const { return col_idx_; }
  const std::vector<Complex>& Values() const { return values_; }

 private:
  friend class CsrAssembly;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows_+1
  std::vector<std::size_t> col_idx_;  // size nnz, sorted within each row
  std::vector<Complex> values_;       // size nnz
};

/// Caches the CSR sparsity pattern of a triplet sequence so that repeated
/// assemblies with the *same structure* (identical (row, col) Add()
/// sequence — e.g. an MNA restamp at a new frequency or after a parametric
/// fault) compress in O(nnz) without re-sorting.
///
/// The mapping entry-index -> value-slot is built once; Update() only
/// re-accumulates values.  Use Matches() to detect structural drift (a
/// changed stamp sequence) and rebuild.
class CsrAssembly {
 public:
  /// Build the pattern and compress `t`.
  explicit CsrAssembly(const TripletMatrix& t);

  /// True when `t` has exactly the cached (row, col) entry sequence.
  bool Matches(const TripletMatrix& t) const;

  /// Re-accumulate values from `t` into the cached pattern.  Throws
  /// NumericError when the structure does not match (call Matches first
  /// when the structure may legitimately change).
  void Update(const TripletMatrix& t);

  /// The compressed matrix with the most recently updated values.
  const CsrMatrix& Matrix() const { return csr_; }

 private:
  CsrMatrix csr_;
  std::vector<std::size_t> slot_;        // triplet entry index -> value index
  std::vector<std::size_t> entry_rows_;  // cached entry coordinates
  std::vector<std::size_t> entry_cols_;
};

}  // namespace mcdft::linalg
