// Sparse complex matrices: a triplet (COO) builder for MNA stamping and a
// compressed-sparse-row (CSR) form for multiplication and factorization.
//
// MNA stamping naturally produces duplicate (row, col) contributions — one
// per device terminal pair — so the triplet builder sums duplicates when
// compressing.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"

namespace mcdft::linalg {

/// A single (row, col, value) contribution.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  Complex value{0.0, 0.0};
};

/// Coordinate-format builder.  Append entries in any order (duplicates
/// allowed and summed); compress to CSR when done.
class TripletMatrix {
 public:
  TripletMatrix() = default;
  TripletMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t EntryCount() const noexcept { return entries_.size(); }

  /// Accumulate value at (r, c).  Bounds-checked; throws NumericError.
  void Add(std::size_t r, std::size_t c, Complex v);

  /// Drop all entries, keeping the shape (reuse across frequencies).
  void Clear() { entries_.clear(); }

  /// Dense copy (small systems, tests).
  Matrix ToDense() const;

  const std::vector<Triplet>& Entries() const { return entries_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Triplet> entries_;
};

/// Compressed-sparse-row matrix with sorted column indices per row and
/// duplicates summed.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Compress a triplet matrix.  Entries with |v| == 0 are kept (an MNA
  /// structural zero can become nonzero at another frequency only if it is
  /// restamped, so zeros here are genuinely informative).
  explicit CsrMatrix(const TripletMatrix& t);

  std::size_t Rows() const noexcept { return rows_; }
  std::size_t Cols() const noexcept { return cols_; }
  std::size_t NonZeroCount() const noexcept { return values_.size(); }

  /// y = A x.
  Vector Multiply(const Vector& x) const;

  /// Value at (r, c); zero when the position is not stored.  O(log nnz_row).
  Complex At(std::size_t r, std::size_t c) const;

  /// Dense copy.
  Matrix ToDense() const;

  /// Induced infinity norm (max row sum of magnitudes).
  double NormInf() const;

  const std::vector<std::size_t>& RowPointers() const { return row_ptr_; }
  const std::vector<std::size_t>& ColumnIndices() const { return col_idx_; }
  const std::vector<Complex>& Values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;  // size rows_+1
  std::vector<std::size_t> col_idx_;  // size nnz, sorted within each row
  std::vector<Complex> values_;       // size nnz
};

}  // namespace mcdft::linalg
