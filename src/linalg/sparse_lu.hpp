// Sparse LU factorization over complex<double> with threshold-relaxed
// Markowitz pivoting, the classical circuit-simulator ordering (Kundert,
// "Sparse matrix techniques").
//
// Construction performs the full value-guided symbolic+numeric
// factorization with rows held as sorted (column, value) vectors.  Repeated
// numeric-only refactorizations (the AC-sweep fast path) do not re-run that
// machinery: the first Refactor() compiles the elimination into a *factor
// program* — a symbolic-superset schedule of flat value-array indices (see
// CompileProgram) — and every subsequent refactor is a branch-light replay
// of multiplier divisions and indexed multiply-subtracts.  The same flat
// storage backs SolveMulti(), the SoA multi-RHS triangular solve that the
// batched SMW fault path runs through the linalg/simd kernels.
#pragma once

#include "linalg/sparse.hpp"

namespace mcdft::linalg {

/// Options controlling the sparse factorization.
struct SparseLuOptions {
  /// A candidate pivot must satisfy |a| >= threshold * max_col_magnitude.
  /// 1.0 = pure partial pivoting, small values favor sparsity (Markowitz).
  double pivot_threshold = 0.1;
};

/// Sparse LU of a square CSR matrix.  Construction performs the full
/// symbolic+numeric factorization; Solve() is then cheap and reusable.
class SparseLu {
 public:
  /// Factorize.  Throws NumericError on non-square input and
  /// core::McdftError (category kSingularSystem) on singular input.
  explicit SparseLu(const CsrMatrix& a, SparseLuOptions options = {});

  /// Numeric-only refactorization: redo the elimination of `a` (same
  /// dimension, values may differ) reusing the pivot ordering chosen at
  /// construction, skipping the Markowitz analysis.  This is the classic
  /// circuit-simulator fast path: across an AC sweep (and across
  /// parametric faults) the sparsity pattern is invariant and the ordering
  /// stays numerically adequate.
  ///
  /// Returns false when the fixed ordering is no longer safe for these
  /// values (a vanished pivot or an elimination multiplier above
  /// `kRefactorGrowthLimit`); the factor is then invalid and the caller
  /// must construct a fresh SparseLu (full pivot search).
  bool Refactor(const CsrMatrix& a);

  /// Multiplier-magnitude bound beyond which Refactor() refuses the cached
  /// ordering.  A fresh threshold-Markowitz factorization bounds
  /// multipliers by 1/pivot_threshold (= 10 at the default); allowing a
  /// generous excursion keeps the fast path sticky across a 4-decade sweep
  /// while still catching genuine pivot collapse.
  static constexpr double kRefactorGrowthLimit = 1e6;

  /// Solve A x = b.  Non-const: the triangular passes run through member
  /// scratch buffers so repeated solves (one per sweep point) do not
  /// allocate beyond the returned vector.
  Vector Solve(const Vector& b);

  /// Multi-RHS triangular solve, in place, over SoA lanes: `re`/`im` hold
  /// `lanes` right-hand sides with component r of lane l at index
  /// r*lanes + l; on return the same layout holds the solutions.  Each
  /// lane's arithmetic is the exact per-entry operation sequence of
  /// Solve() (the SIMD kernels only change how lanes are grouped, never
  /// what one lane computes), so lane results are bit-identical at any
  /// lane count.  Compiles the factor program on first use.
  void SolveMulti(std::size_t lanes, double* re, double* im);

  /// Matrix dimension.
  std::size_t Size() const noexcept { return n_; }

  /// Number of stored nonzero entries in L + U after elimination (fill-in
  /// metric, exercised by the perf bench and ordering tests).
  std::size_t FactorNonZeroCount() const;

  /// True once the factor program has been compiled (first Refactor or
  /// SolveMulti).  Exposed for tests.
  bool HasFactorProgram() const noexcept { return have_program_; }

  /// Compile the factor program and move the current factor into the flat
  /// storage now (normally lazy).  Solve() then runs the program path, so
  /// callers that mix Solve() and SolveMulti() against one factorization
  /// (the SMW batch path) see a single operation sequence for both.
  void EnsureFactorProgram() { EnsureFlatFactor(); }

 private:
  struct Entry {
    std::size_t col;
    Complex val;
  };
  using SparseRow = std::vector<Entry>;  // sorted by col

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  /// row -= m * (urow restricted to still-active columns); sorted merge
  /// through `scratch` (buffer swapped into `row`, capacities recirculate).
  static void EliminateRow(SparseRow& row, const SparseRow& urow,
                           const std::vector<bool>& col_active, Complex m,
                           SparseRow& scratch);

  /// Rebuild the working rows of `a` into `rows` for an elimination pass,
  /// keeping each row's capacity from the previous pass.
  static void BuildRows(const CsrMatrix& a, std::vector<SparseRow>& rows);

  /// Compile the factor program for the pattern in pat_row_ptr_/
  /// pat_col_idx_ under the fixed pivot sequence (see the .cpp).
  void CompileProgram();

  /// Scatter the construction-time factor (lower_/upper_) into the flat
  /// slot array so Solve/SolveMulti can run the program before any
  /// Refactor happened.
  void LoadLegacyFactor();

  /// Replay the program over the values of `a` (same pattern); the numeric
  /// body of Refactor().
  bool ReplayRefactor(const CsrMatrix& a);

  /// Compile the program and load current factor values if not already
  /// flat (first SolveMulti on a freshly constructed factor).
  void EnsureFlatFactor();

  /// Slot index of position (row, col); kNoSlot when outside the compiled
  /// structure.
  std::size_t SlotOf(std::size_t row, std::size_t col) const;

  std::size_t n_ = 0;
  // Rows of the combined LU factor from construction, in elimination order.
  // Superseded by the flat slot storage once the program is compiled.
  std::vector<SparseRow> lower_;        // multipliers, cols < pivot col order
  std::vector<SparseRow> upper_;        // pivot + trailing entries
  std::vector<std::size_t> row_perm_;   // elimination step k used original row row_perm_[k]
  std::vector<std::size_t> col_perm_;   // step k eliminated original column col_perm_[k]
  std::vector<std::size_t> col_pos_;    // inverse of col_perm_

  // ---- Factor program (compiled by CompileProgram) -----------------------
  // Pattern the program was compiled for (CSR row pointers + column
  // indices); Refactor recompiles when the incoming pattern differs.
  bool have_program_ = false;
  bool flat_valid_ = false;  // slot_val_ holds the current factor
  std::vector<std::size_t> pat_row_ptr_;
  std::vector<std::size_t> pat_col_idx_;
  // Flat storage: one slot per (row, column) position the elimination can
  // ever touch, grouped by original row, column-sorted within a row.
  std::vector<std::size_t> row_slot_ptr_;  // n+1
  std::vector<std::size_t> slot_col_;
  std::vector<Complex> slot_val_;
  std::vector<std::size_t> csr_slot_;      // CSR entry k -> slot
  // Per elimination step: the pivot slot, the frozen U entries of the
  // pivot row excluding the pivot itself (for the backward pass), and the
  // target rows with their multiplier slots.  Each target applies the ops
  // (dst -= m * src) listed per step in op_dst_/op_src_ — targets of one
  // step share the src sequence, so ops are stored target-major with a
  // fixed per-target width of (step_u_ptr_ delta).
  std::vector<std::size_t> step_pivot_slot_;  // n (kNoSlot = missing pivot)
  std::vector<std::size_t> step_u_ptr_;       // n+1 -> u_slot_/u_col_
  std::vector<std::size_t> u_slot_;
  std::vector<std::size_t> u_col_;
  std::vector<std::size_t> step_target_ptr_;  // n+1 -> target_row_/...
  std::vector<std::size_t> target_row_;
  std::vector<std::size_t> target_mult_slot_;
  std::vector<std::size_t> target_op_ptr_;    // per target -> op_dst_/op_src_
  std::vector<std::size_t> op_dst_;
  std::vector<std::size_t> op_src_;

  // Solve() workspace (forward-elimination copy of b and intermediate y).
  Vector work_b_;
  Vector work_y_;
  // SolveMulti() workspace (SoA intermediate y, n*lanes each).
  std::vector<double> multi_y_re_;
  std::vector<double> multi_y_im_;
};

/// One-shot sparse solve.
Vector SolveSparse(const CsrMatrix& a, const Vector& b,
                   SparseLuOptions options = {});

}  // namespace mcdft::linalg
