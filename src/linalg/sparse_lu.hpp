// Sparse LU factorization over complex<double> with threshold-relaxed
// Markowitz pivoting, the classical circuit-simulator ordering (Kundert,
// "Sparse matrix techniques").
//
// Rows are held as sorted (column, value) vectors during elimination, which
// keeps fill-in handling simple and is fast at the matrix sizes produced by
// MNA on the circuit zoo (up to a few hundred unknowns).
#pragma once

#include "linalg/sparse.hpp"

namespace mcdft::linalg {

/// Options controlling the sparse factorization.
struct SparseLuOptions {
  /// A candidate pivot must satisfy |a| >= threshold * max_col_magnitude.
  /// 1.0 = pure partial pivoting, small values favor sparsity (Markowitz).
  double pivot_threshold = 0.1;
};

/// Sparse LU of a square CSR matrix.  Construction performs the full
/// symbolic+numeric factorization; Solve() is then cheap and reusable.
class SparseLu {
 public:
  /// Factorize.  Throws NumericError on non-square input and
  /// core::McdftError (category kSingularSystem) on singular input.
  explicit SparseLu(const CsrMatrix& a, SparseLuOptions options = {});

  /// Numeric-only refactorization: redo the elimination of `a` (same
  /// dimension, values may differ) reusing the pivot ordering chosen at
  /// construction, skipping the Markowitz analysis.  This is the classic
  /// circuit-simulator fast path: across an AC sweep (and across
  /// parametric faults) the sparsity pattern is invariant and the ordering
  /// stays numerically adequate.
  ///
  /// Returns false when the fixed ordering is no longer safe for these
  /// values (a vanished pivot or an elimination multiplier above
  /// `kRefactorGrowthLimit`); the factor is then invalid and the caller
  /// must construct a fresh SparseLu (full pivot search).
  bool Refactor(const CsrMatrix& a);

  /// Multiplier-magnitude bound beyond which Refactor() refuses the cached
  /// ordering.  A fresh threshold-Markowitz factorization bounds
  /// multipliers by 1/pivot_threshold (= 10 at the default); allowing a
  /// generous excursion keeps the fast path sticky across a 4-decade sweep
  /// while still catching genuine pivot collapse.
  static constexpr double kRefactorGrowthLimit = 1e6;

  /// Solve A x = b.  Non-const: the triangular passes run through member
  /// scratch buffers so repeated solves (one per sweep point) do not
  /// allocate beyond the returned vector.
  Vector Solve(const Vector& b);

  /// Matrix dimension.
  std::size_t Size() const noexcept { return n_; }

  /// Number of stored entries in L + U after elimination (fill-in metric,
  /// exercised by the perf bench and ordering tests).
  std::size_t FactorNonZeroCount() const;

 private:
  struct Entry {
    std::size_t col;
    Complex val;
  };
  using SparseRow = std::vector<Entry>;  // sorted by col

  /// row -= m * (urow restricted to still-active columns); sorted merge
  /// through `scratch` (buffer swapped into `row`, capacities recirculate).
  static void EliminateRow(SparseRow& row, const SparseRow& urow,
                           const std::vector<bool>& col_active, Complex m,
                           SparseRow& scratch);

  /// Rebuild the working rows of `a` into `rows` for an elimination pass,
  /// keeping each row's capacity from the previous pass.
  static void BuildRows(const CsrMatrix& a, std::vector<SparseRow>& rows);

  std::size_t n_ = 0;
  // Rows of the combined LU factor, in elimination order.
  std::vector<SparseRow> lower_;        // multipliers, cols < pivot col order
  std::vector<SparseRow> upper_;        // pivot + trailing entries
  std::vector<std::size_t> row_perm_;   // elimination step k used original row row_perm_[k]
  std::vector<std::size_t> col_perm_;   // step k eliminated original column col_perm_[k]
  std::vector<std::size_t> col_pos_;    // inverse of col_perm_

  // Refactor() workspace, retained across calls: after the first refactor
  // every buffer has its steady-state capacity and the numeric-only pass
  // performs no heap allocation (the pattern — and hence every intermediate
  // row structure — is invariant across an AC sweep).
  std::vector<SparseRow> work_rows_;
  std::vector<bool> work_row_active_;
  std::vector<bool> work_col_active_;
  SparseRow work_merge_;

  // Solve() workspace (forward-elimination copy of b and intermediate y).
  Vector work_b_;
  Vector work_y_;
};

/// One-shot sparse solve.
Vector SolveSparse(const CsrMatrix& a, const Vector& b,
                   SparseLuOptions options = {});

}  // namespace mcdft::linalg
