// Sparse LU factorization over complex<double> with threshold-relaxed
// Markowitz pivoting, the classical circuit-simulator ordering (Kundert,
// "Sparse matrix techniques").
//
// Rows are held as sorted (column, value) vectors during elimination, which
// keeps fill-in handling simple and is fast at the matrix sizes produced by
// MNA on the circuit zoo (up to a few hundred unknowns).
#pragma once

#include "linalg/sparse.hpp"

namespace mcdft::linalg {

/// Options controlling the sparse factorization.
struct SparseLuOptions {
  /// A candidate pivot must satisfy |a| >= threshold * max_col_magnitude.
  /// 1.0 = pure partial pivoting, small values favor sparsity (Markowitz).
  double pivot_threshold = 0.1;
};

/// Sparse LU of a square CSR matrix.  Construction performs the full
/// symbolic+numeric factorization; Solve() is then cheap and reusable.
class SparseLu {
 public:
  /// Factorize.  Throws NumericError on non-square or singular input.
  explicit SparseLu(const CsrMatrix& a, SparseLuOptions options = {});

  /// Solve A x = b.
  Vector Solve(const Vector& b) const;

  /// Matrix dimension.
  std::size_t Size() const noexcept { return n_; }

  /// Number of stored entries in L + U after elimination (fill-in metric,
  /// exercised by the perf bench and ordering tests).
  std::size_t FactorNonZeroCount() const;

 private:
  struct Entry {
    std::size_t col;
    Complex val;
  };
  using SparseRow = std::vector<Entry>;  // sorted by col

  std::size_t n_ = 0;
  // Rows of the combined LU factor, in elimination order.
  std::vector<SparseRow> lower_;        // multipliers, cols < pivot col order
  std::vector<SparseRow> upper_;        // pivot + trailing entries
  std::vector<std::size_t> row_perm_;   // elimination step k used original row row_perm_[k]
  std::vector<std::size_t> col_perm_;   // step k eliminated original column col_perm_[k]
  std::vector<std::size_t> col_pos_;    // inverse of col_perm_
};

/// One-shot sparse solve.
Vector SolveSparse(const CsrMatrix& a, const Vector& b,
                   SparseLuOptions options = {});

}  // namespace mcdft::linalg
