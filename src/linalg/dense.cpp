#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mcdft::linalg {

double Vector::Norm2() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

double Vector::NormInf() const {
  double acc = 0.0;
  for (const auto& v : data_) acc = std::max(acc, std::abs(v));
  return acc;
}

void Vector::Axpy(Complex alpha, const Vector& other) {
  if (other.size() != size()) {
    throw util::NumericError("Axpy size mismatch: " + std::to_string(size()) +
                             " vs " + std::to_string(other.size()));
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other[i];
}

Vector Matrix::Multiply(const Vector& x) const {
  if (x.size() != cols_) {
    throw util::NumericError("matrix-vector dimension mismatch: " +
                             std::to_string(cols_) + " vs " +
                             std::to_string(x.size()));
  }
  Vector y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Complex acc(0.0, 0.0);
    const Complex* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::NormFrobenius() const {
  double acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

double Matrix::NormInf() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::abs(At(r, c));
    best = std::max(best, s);
  }
  return best;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = Complex(1.0, 0.0);
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::string out;
  char buf[96];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex& v = At(r, c);
      std::snprintf(buf, sizeof(buf), "(%.*g,%.*g) ", precision, v.real(),
                    precision, v.imag());
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace mcdft::linalg
