#include "core/dft_transform.hpp"

#include <algorithm>

namespace mcdft::core {

AnalogBlock AnalogBlock::Clone() const {
  return AnalogBlock{netlist.Clone(), name, input_node, output_node, opamps};
}

namespace {

spice::Opamp& GetOpamp(spice::Netlist& netlist, const std::string& name) {
  spice::Element& e = netlist.GetElement(name);
  if (e.Kind() != spice::ElementKind::kOpamp) {
    throw util::NetlistError("element '" + name + "' is a " +
                             std::string(spice::ElementKindName(e.Kind())) +
                             ", not an opamp");
  }
  return static_cast<spice::Opamp&>(e);
}

}  // namespace

DftCircuit DftCircuit::Transform(const AnalogBlock& block,
                                 std::vector<std::string> configurable) {
  if (block.opamps.empty()) {
    throw util::NetlistError("analog block '" + block.name +
                             "' declares no opamps");
  }
  DftCircuit dft;
  dft.netlist_ = block.netlist.Clone();
  dft.name_ = block.name + " (DFT)";
  dft.input_node_ = block.input_node;
  dft.output_node_ = block.output_node;
  dft.chain_ = block.opamps;

  if (configurable.empty()) {
    configurable = block.opamps;  // brute-force: replace every opamp
  }
  // Keep chain order and verify subset-ness.
  for (const auto& name : configurable) {
    if (std::find(block.opamps.begin(), block.opamps.end(), name) ==
        block.opamps.end()) {
      throw util::NetlistError("configurable opamp '" + name +
                               "' is not in the block's opamp chain");
    }
  }
  for (const auto& name : block.opamps) {
    if (std::find(configurable.begin(), configurable.end(), name) !=
        configurable.end()) {
      dft.configurable_.push_back(name);
    }
  }

  // Wire the In_test chain: opamp k taps the output of opamp k-1 in the
  // *full* chain (the primary input for k = 0), per Fig. 4.  Keeping the
  // tap on the physical predecessor regardless of which opamps are made
  // configurable means a partial-DFT circuit behaves identically to the
  // full-DFT circuit in every configuration they share — which is what
  // lets Sec. 4.3 reuse the Table 2 rows as Table 4 without re-simulating.
  spice::NodeId prev_tap = dft.netlist_.FindNode(block.input_node);
  for (const auto& name : block.opamps) {
    spice::Opamp& op = GetOpamp(dft.netlist_, name);
    const bool is_configurable =
        std::find(dft.configurable_.begin(), dft.configurable_.end(), name) !=
        dft.configurable_.end();
    if (is_configurable) op.MakeConfigurable(prev_tap);
    prev_tap = op.Out();
  }
  return dft;
}

void DftCircuit::ApplyConfiguration(const ConfigVector& cv) {
  if (cv.BitCount() != configurable_.size()) {
    throw util::OptimizationError(
        "configuration vector has " + std::to_string(cv.BitCount()) +
        " bits but the circuit has " + std::to_string(configurable_.size()) +
        " configurable opamps");
  }
  for (std::size_t k = 0; k < configurable_.size(); ++k) {
    GetOpamp(netlist_, configurable_[k])
        .SetMode(cv.SelectionOf(k) ? spice::OpampMode::kFollower
                                   : spice::OpampMode::kNormal);
  }
}

ConfigVector DftCircuit::CurrentConfiguration() const {
  ConfigVector cv(configurable_.size());
  for (std::size_t k = 0; k < configurable_.size(); ++k) {
    const auto& op = static_cast<const spice::Opamp&>(
        netlist_.GetElement(configurable_[k]));
    cv.SetSelection(k, op.Mode() == spice::OpampMode::kFollower);
  }
  return cv;
}

DftCircuit DftCircuit::Clone() const {
  DftCircuit copy;
  copy.netlist_ = netlist_.Clone();
  copy.name_ = name_;
  copy.input_node_ = input_node_;
  copy.output_node_ = output_node_;
  copy.chain_ = chain_;
  copy.configurable_ = configurable_;
  return copy;
}

AnalogBlock MakeBlockFromDeck(const spice::ParsedDeck& deck) {
  AnalogBlock block;
  block.netlist = deck.netlist.Clone();
  block.name = deck.netlist.Title();
  for (const auto& e : deck.netlist.Elements()) {
    if (e->Kind() == spice::ElementKind::kOpamp) {
      block.opamps.push_back(e->Name());
    }
    if (block.input_node.empty() &&
        e->Kind() == spice::ElementKind::kVoltageSource) {
      block.input_node = deck.netlist.NodeName(e->Nodes()[0]);
    }
  }
  if (block.opamps.empty()) {
    throw util::NetlistError("deck '" + block.name + "' has no opamps");
  }
  if (block.input_node.empty()) {
    throw util::NetlistError("deck '" + block.name +
                             "' has no voltage source to use as the input");
  }
  if (deck.probes.empty()) {
    throw util::NetlistError("deck '" + block.name +
                             "' has no .probe card to use as the output");
  }
  block.output_node = deck.netlist.NodeName(deck.probes.front().plus);
  return block;
}

ScopedConfiguration::ScopedConfiguration(DftCircuit& circuit,
                                         const ConfigVector& cv)
    : circuit_(circuit) {
  circuit_.ApplyConfiguration(cv);
}

ScopedConfiguration::~ScopedConfiguration() {
  ConfigVector c0(circuit_.ConfigurableOpamps().size());
  circuit_.ApplyConfiguration(c0);
}

}  // namespace mcdft::core
