#include "core/report.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace mcdft::core {

using util::FormatTrimmed;
using util::Table;

std::string RowName(const CampaignResult& campaign, std::size_t row) {
  return campaign.PerConfig().at(row).config.Name();
}

std::string RowSetName(const CampaignResult& campaign,
                       const boolcov::Cube& rows) {
  std::string out = "{";
  bool first = true;
  for (std::size_t r : rows.Variables()) {
    if (!first) out += ", ";
    out += RowName(campaign, r);
    first = false;
  }
  return out + "}";
}

std::string RenderConfigurationTable(const ConfigurationSpace& space) {
  Table t;
  t.SetTitle("Configuration table (Table 1)");
  t.SetHeader({"Conf", "Vector", "Description"});
  for (std::size_t i = 0; i < space.ConfigurationCount(); ++i) {
    const ConfigVector cv = space.At(i);
    std::string desc = "New Test Conf";
    if (cv.IsFunctional()) desc = "Funct. Conf";
    if (cv.IsTransparent()) desc = "Transp. Conf";
    t.AddRow({cv.Name(), cv.BitString(), desc});
  }
  t.SetAlign(2, Table::Align::kLeft);
  return t.Render();
}

std::string RenderDetectabilityMatrix(const CampaignResult& campaign) {
  Table t;
  t.SetTitle("Fault detectability matrix (Figure 5)");
  std::vector<std::string> header{"Conf"};
  for (const auto& f : campaign.Faults()) header.push_back(f.ShortLabel());
  t.SetHeader(std::move(header));
  const auto matrix = campaign.DetectabilityMatrix();
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    std::vector<std::string> row{RowName(campaign, i)};
    for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
      row.push_back(matrix[i][j] ? "1" : "0");
    }
    t.AddRow(std::move(row));
  }
  return t.Render();
}

std::string RenderOmegaTable(const CampaignResult& campaign, bool mark_best) {
  Table t;
  t.SetTitle("w-detectability table [%] (Table 2; '*' = per-fault best)");
  std::vector<std::string> header{"Conf"};
  for (const auto& f : campaign.Faults()) header.push_back(f.ShortLabel());
  header.push_back("<w-det>");
  t.SetHeader(std::move(header));
  const auto omega = campaign.OmegaTable();

  std::vector<double> best(campaign.FaultCount(), 0.0);
  for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
    for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
      best[j] = std::max(best[j], omega[i][j]);
    }
  }
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    std::vector<std::string> row{RowName(campaign, i)};
    double avg = 0.0;
    for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
      std::string cell = FormatTrimmed(100.0 * omega[i][j], 1);
      if (mark_best && best[j] > 0.0 && omega[i][j] == best[j]) cell += "*";
      row.push_back(std::move(cell));
      avg += omega[i][j];
    }
    avg /= static_cast<double>(campaign.FaultCount());
    row.push_back(FormatTrimmed(100.0 * avg, 1));
    t.AddRow(std::move(row));
  }
  return t.Render();
}

std::string RenderMappingTable(const ConfigurationSpace& space) {
  Table t;
  t.SetTitle("Configuration -> opamp mapping (Table 3)");
  t.SetHeader({"Conf", "Vector", "Follower opamps"});
  for (std::size_t i = 0; i < space.ConfigurationCount(); ++i) {
    const ConfigVector cv = space.At(i);
    const auto followers = space.FollowerOpamps(cv);
    std::string cell = "-";
    if (!followers.empty()) cell = util::Join(followers, ".");
    t.AddRow({cv.Name(), cv.BitString(), cell});
  }
  t.SetAlign(2, Table::Align::kLeft);
  return t.Render();
}

namespace {

std::string NamedPos(const CampaignResult& campaign,
                     const boolcov::CoverProblem& problem) {
  return problem.ToString(
      [&](std::size_t v) { return RowName(campaign, v); });
}

}  // namespace

std::string RenderFundamental(const FundamentalSolution& solution,
                              const CampaignResult& campaign) {
  auto namer = [&](std::size_t v) { return RowName(campaign, v); };
  std::string out;
  out += "Fundamental requirement (Sec. 4.1)\n";
  out += "  max fault coverage = " +
         FormatTrimmed(100.0 * solution.max_coverage, 1) + "%\n";
  if (!solution.undetectable.empty()) {
    out += "  undetectable in every configuration:";
    for (const auto& f : solution.undetectable) out += " " + f.Label();
    out += "\n";
  }
  out += "  xi          = " + NamedPos(campaign, solution.xi) + "\n";
  out += "  xi_ess      = " +
         (solution.essential.Empty() ? std::string("1 (none)")
                                     : solution.essential.ToString(namer)) +
         "\n";
  out += "  xi_compl    = " + NamedPos(campaign, solution.xi_reduced) + "\n";
  out += "  xi (SOP)    = ";
  for (std::size_t i = 0; i < solution.minimal_covers.size(); ++i) {
    if (i != 0) out += " + ";
    out += solution.minimal_covers[i].ToString(namer);
  }
  out += "\n";
  return out;
}

std::string RenderSelection(const SelectionResult& result,
                            const CampaignResult& campaign) {
  std::string out;
  out += "2nd-order requirement: minimize " + result.cost_name + "\n";
  Table t;
  t.SetHeader({"Candidate set", result.cost_name, "<w-det> %", "coverage %",
               "chosen"});
  for (const auto& s : result.all_minimal) {
    const bool winner = s.rows == result.selected.rows;
    t.AddRow({RowSetName(campaign, s.rows), FormatTrimmed(s.cost, 2),
              FormatTrimmed(100.0 * s.avg_omega_det, 1),
              FormatTrimmed(100.0 * s.coverage, 1),
              winner ? "<== S_opt" : ""});
  }
  t.SetAlign(4, Table::Align::kLeft);
  out += t.Render();
  out += "S_opt = " + RowSetName(campaign, result.selected.rows) +
         "  (<w-det> = " +
         FormatTrimmed(100.0 * result.selected.avg_omega_det, 1) + "%)\n";
  return out;
}

std::string RenderPartialDft(const PartialDftResult& result,
                             const CampaignResult& campaign,
                             const DftCircuit& circuit) {
  auto opamp_namer = [&](std::size_t v) {
    return circuit.ConfigurableOpamps().at(v);
  };
  std::string out;
  out += "2nd-order requirement: minimize configurable-opamp count (Sec. 4.3)\n";
  out += "  xi* candidates (absorbed): ";
  for (std::size_t i = 0; i < result.opamp_candidates.size(); ++i) {
    if (i != 0) out += " + ";
    out += result.opamp_candidates[i].ToString(opamp_namer);
  }
  out += "\n  chosen configurable opamps: " +
         (result.opamps.empty()
              ? std::string("none (the functional configuration suffices)")
              : result.opamp_cube.ToString(opamp_namer)) +
         " (" + std::to_string(result.opamps.size()) + " of " +
         std::to_string(circuit.ConfigurableOpamps().size()) + ")\n";
  out += "  permitted configurations:";
  for (std::size_t r : result.permitted_rows) {
    out += " " + RowName(campaign, r);
  }
  out += "\n";
  Table t;
  t.SetHeader({"Usage", "configs", "<w-det> %", "coverage %"});
  t.AddRow({"all permitted (3rd-order optimum)",
            std::to_string(result.usage_all.configs.size()),
            FormatTrimmed(100.0 * result.usage_all.avg_omega_det, 1),
            FormatTrimmed(100.0 * result.usage_all.coverage, 1)});
  t.AddRow({"minimal covering subset " +
                RowSetName(campaign, result.usage_minimal.rows),
            std::to_string(result.usage_minimal.configs.size()),
            FormatTrimmed(100.0 * result.usage_minimal.avg_omega_det, 1),
            FormatTrimmed(100.0 * result.usage_minimal.coverage, 1)});
  t.SetAlign(0, Table::Align::kLeft);
  out += t.Render();
  return out;
}

std::string RenderOmegaBars(
    const std::vector<faults::Fault>& fault_list,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const std::string& title) {
  std::string out = title + "\n";
  for (const auto& [name, values] : series) {
    if (values.size() != fault_list.size()) {
      throw util::AnalysisError("omega bar series '" + name +
                                "' length does not match fault list");
    }
  }
  for (std::size_t j = 0; j < fault_list.size(); ++j) {
    out += fault_list[j].ShortLabel() + "\n";
    for (const auto& [name, values] : series) {
      out += "  " + util::BarLine(name, values[j],
                                  FormatTrimmed(100.0 * values[j], 1) + "%",
                                  40, 18) +
             "\n";
    }
  }
  // Series averages.
  out += "<w-det> averages:\n";
  for (const auto& [name, values] : series) {
    double avg = 0.0;
    for (double v : values) avg += v;
    avg /= values.empty() ? 1.0 : static_cast<double>(values.size());
    out += "  " + util::BarLine(name, avg, FormatTrimmed(100.0 * avg, 1) + "%",
                                40, 18) +
           "\n";
  }
  return out;
}

}  // namespace mcdft::core
