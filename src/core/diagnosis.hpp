// Fault diagnosis from configuration signatures.
//
// The multi-configuration campaign gives every fault a *signature*: the
// set of configurations in which it is detectable.  Faults with identical
// signatures are indistinguishable by a pass/fail multi-configuration
// test; the partition into signature classes measures the diagnostic
// resolution the DFT buys on top of plain detection (the diagnosis-based
// literature the paper contrasts itself with in Sec. 2 — refs [7..10] —
// asks exactly this question).
//
// The transparent-configuration test of opamp-internal faults (paper
// Sec. 3.1, ref [5]) is provided here as well: a go/no-go screen in the
// all-follower configuration plus a localization campaign over the
// single-follower configurations.
#pragma once

#include "core/campaign.hpp"

namespace mcdft::core {

/// One signature class: faults that no configuration distinguishes.
struct SignatureClass {
  std::string signature;              ///< e.g. "0110100" over campaign rows
  std::vector<faults::Fault> faults;  ///< members (size 1 = fully diagnosed)
};

/// Diagnosis summary for a campaign.
struct DiagnosisReport {
  std::vector<SignatureClass> classes;  ///< sorted by signature

  /// Number of faults that are alone in their class (uniquely located by
  /// the pass/fail pattern over configurations).
  std::size_t uniquely_diagnosed = 0;

  /// classes.size() / fault count, in (0, 1]: 1.0 = full diagnosis.
  double resolution = 0.0;

  /// Fraction of fault pairs the signatures distinguish.
  double pairwise_distinguishability = 0.0;
};

/// Signature construction options.
struct DiagnosisOptions {
  /// Number of omega-detectability magnitude levels per configuration.
  /// 1 = boolean pass/fail signatures (detectable or not).  Higher values
  /// quantize omega-detectability into that many equal bins, the
  /// fault-dictionary approach: severe faults that trip *every*
  /// configuration can still be told apart by how much of the band they
  /// disturb in each one.  Must be in [1, 9].
  std::size_t levels = 1;
};

/// Partition the campaign's faults by detectability signature.
/// Undetected-everywhere faults share the all-zero class.
DiagnosisReport Diagnose(const CampaignResult& campaign,
                         const DiagnosisOptions& options = {});

/// Render the report as text (class table + headline metrics).
std::string RenderDiagnosis(const DiagnosisReport& report,
                            const CampaignResult& campaign);

/// Options for the opamp transparent-configuration test.
struct OpampTestOptions {
  /// Detection criteria for the deviation from the nominal (identity-like)
  /// transparent response.  The tolerance envelope is unnecessary here:
  /// passive components barely load the follower chain.
  testability::DetectionCriteria criteria{.epsilon = 0.05,
                                          .relative_floor = 0.25};
  double f_lo_hz = 10.0;
  double f_hi_hz = 1e5;
  std::size_t points_per_decade = 25;
  spice::MnaOptions mna;
};

/// Result of the transparent-configuration opamp screen.
struct OpampTestResult {
  /// Verdicts of the go/no-go screen in the transparent configuration.
  std::vector<testability::FaultDetectability> screen;

  /// Fault coverage of the screen alone.
  double screen_coverage = 0.0;

  /// Localization campaign: rows = the transparent configuration followed
  /// by every single-follower configuration; diagnosis over it.
  CampaignResult localization;
  DiagnosisReport diagnosis;
};

/// Run the opamp-internal fault test on a DFT circuit: screen all faults
/// in the transparent configuration, then run the localization campaign.
/// `opamp_faults` defaults (empty list) to MakeOpampFaults on the
/// circuit's configurable opamps.  Requires every chain opamp to be
/// configurable (the transparent path must exist end to end).
OpampTestResult RunOpampTransparentTest(
    const DftCircuit& circuit, std::vector<faults::Fault> opamp_faults = {},
    const OpampTestOptions& options = {});

}  // namespace mcdft::core
