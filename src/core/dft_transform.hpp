// The multi-configuration DFT transformation (paper Sec. 3.1, Fig. 4):
// replace (all or some) opamps by configurable opamps and wire the In_test
// chain from primary input towards the primary output.
#pragma once

#include <string>
#include <vector>

#include "core/configuration.hpp"
#include "spice/elements.hpp"
#include "spice/netlist.hpp"
#include "spice/parser.hpp"

namespace mcdft::core {

/// A functional analog block before DFT insertion: the netlist (driven by
/// an AC source), its primary input/output nodes, and its opamps in chain
/// order (the signal-path order used to wire In_test inputs).
struct AnalogBlock {
  spice::Netlist netlist;
  std::string name;
  std::string input_node;
  std::string output_node;
  std::vector<std::string> opamps;  ///< chain order, e.g. {"OP1","OP2","OP3"}

  /// Deep copy.
  AnalogBlock Clone() const;
};

/// A DFT-modified circuit: the netlist with configurable opamps (all in
/// normal mode after the transform) plus the bookkeeping needed to emulate
/// configurations.
class DftCircuit {
 public:
  /// Apply the multi-configuration DFT to `block`.
  ///
  /// `configurable` selects which opamps are replaced by configurable ones
  /// (empty = all of them, the brute-force application; a strict subset is
  /// the paper's *partial DFT*, Sec. 4.3).  Each configurable opamp's
  /// In_test taps the output of the immediately preceding opamp in the full
  /// chain (the primary input for the first), reproducing Fig. 4 / Fig. 7;
  /// this makes shared configurations of full and partial DFT circuits
  /// electrically identical.
  ///
  /// Throws NetlistError when an opamp name is unknown, not an Opamp
  /// element, or `configurable` is not a subset of `block.opamps`.
  static DftCircuit Transform(const AnalogBlock& block,
                              std::vector<std::string> configurable = {});

  /// The DFT-modified netlist (configurable opamps in their current modes).
  const spice::Netlist& Circuit() const { return netlist_; }

  const std::string& Name() const { return name_; }
  const std::string& InputNode() const { return input_node_; }
  const std::string& OutputNode() const { return output_node_; }

  /// All opamps in chain order.
  const std::vector<std::string>& Chain() const { return chain_; }

  /// Configurable opamps in chain order (the configuration-vector bits).
  const std::vector<std::string>& ConfigurableOpamps() const {
    return configurable_;
  }

  /// Configuration space over the configurable opamps.
  ConfigurationSpace Space() const { return ConfigurationSpace(configurable_); }

  /// Switch the circuit into a configuration (mutates opamp modes).
  void ApplyConfiguration(const ConfigVector& cv);

  /// Current configuration.
  ConfigVector CurrentConfiguration() const;

  /// Deep copy.
  DftCircuit Clone() const;

 private:
  DftCircuit() = default;

  spice::Netlist netlist_;
  std::string name_;
  std::string input_node_;
  std::string output_node_;
  std::vector<std::string> chain_;
  std::vector<std::string> configurable_;
};

/// Build an AnalogBlock from a parsed SPICE deck: the opamp chain is the
/// card order of the deck's opamps, the primary input is the positive node
/// of the first voltage source, and the primary output is the first
/// probe's positive node.  Throws NetlistError when the deck has no
/// opamps, no voltage source, or no probe.
AnalogBlock MakeBlockFromDeck(const spice::ParsedDeck& deck);

/// RAII configuration switch: applies `cv` on construction and restores
/// the functional configuration C_0 on destruction.  Used by the campaign
/// driver so a thrown analysis never leaves the circuit reconfigured.
class ScopedConfiguration {
 public:
  ScopedConfiguration(DftCircuit& circuit, const ConfigVector& cv);
  ~ScopedConfiguration();

  ScopedConfiguration(const ScopedConfiguration&) = delete;
  ScopedConfiguration& operator=(const ScopedConfiguration&) = delete;

 private:
  DftCircuit& circuit_;
};

}  // namespace mcdft::core
