#include "core/preselection.hpp"

#include <algorithm>

#include "boolcov/setcover.hpp"

namespace mcdft::core {

PreselectionResult PreselectConfigurations(
    const DftCircuit& circuit, const std::vector<faults::Fault>& fault_list,
    const std::vector<ConfigVector>& candidates,
    const PreselectionOptions& options) {
  if (candidates.empty() || fault_list.empty()) {
    throw util::AnalysisError("pre-selection needs candidates and faults");
  }
  DftCircuit work = circuit.Clone();

  // Band resolution mirrors the campaign: anchor on the functional
  // configuration's passband.
  double anchor;
  if (options.anchor_hz) {
    anchor = *options.anchor_hz;
  } else {
    ScopedConfiguration functional(
        work, ConfigVector(work.ConfigurableOpamps().size()));
    spice::AcAnalyzer analyzer(work.Circuit(), options.mna);
    spice::Probe probe{work.Circuit().FindNode(work.OutputNode()),
                       spice::kGround, "v(out)"};
    anchor = testability::EstimateAnchorFrequency(
        analyzer.Run(spice::SweepSpec::Decade(1e-1, 1e8, 10), probe));
  }
  const testability::ReferenceBand band = testability::ReferenceBand::Around(
      anchor, options.decades_below, options.decades_above,
      options.points_per_decade);
  const spice::SweepSpec sweep = band.MakeSweep();
  const spice::Probe probe{work.Circuit().FindNode(work.OutputNode()),
                           spice::kGround, "v(out)"};

  PreselectionResult result;
  result.candidates = candidates;
  result.predicted.assign(candidates.size(),
                          std::vector<bool>(fault_list.size(), false));

  // Fault sites and their per-fault perturbation signs/magnitudes.
  std::vector<std::string> sites;
  for (const auto& f : fault_list) sites.push_back(f.Device());

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    ScopedConfiguration sc(work, candidates[c]);
    // One forward-difference sweep per fault with delta = the fault's own
    // magnitude: the projected deviation IS the screening fault simulation
    // on the coarse grid.
    std::vector<std::vector<double>> projected(fault_list.size());
    for (std::size_t j = 0; j < fault_list.size(); ++j) {
      testability::SensitivityOptions sens;
      sens.delta = std::min(0.9, std::abs(fault_list[j].ValueFactor() - 1.0));
      sens.mna = options.mna;
      projected[j] = testability::ComputeRelativeSensitivity(
          work.Circuit(), sweep, probe, sites[j], sens);
      for (auto& v : projected[j]) v *= sens.delta;  // back to deviation
      result.sweeps_used += 2;  // nominal + perturbed
    }
    // Analytic tolerance-envelope proxy from the same data: worst-case
    // superposition of every site's sensitivity at the process tolerance,
    // derated by envelope_scale (see PreselectionOptions).
    std::vector<double> proxy(sweep.PointCount(), 0.0);
    if (options.component_tolerance > 0.0) {
      for (std::size_t j = 0; j < fault_list.size(); ++j) {
        const double mag =
            std::min(0.9, std::abs(fault_list[j].ValueFactor() - 1.0));
        for (std::size_t i = 0; i < proxy.size(); ++i) {
          proxy[i] += projected[j][i] / mag;  // |S_j(w)|
        }
      }
      for (auto& v : proxy) {
        v *= options.envelope_scale * options.component_tolerance;
      }
    }
    for (std::size_t j = 0; j < fault_list.size(); ++j) {
      for (std::size_t i = 0; i < proxy.size(); ++i) {
        if (projected[j][i] > options.predicted_epsilon + proxy[i]) {
          result.predicted[c][j] = true;
          break;
        }
      }
    }
  }

  // Faults with all-zero predicted columns are reported, not covered.
  std::vector<std::size_t> coverable;
  for (std::size_t j = 0; j < fault_list.size(); ++j) {
    bool any = false;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      any = any || result.predicted[c][j];
    }
    if (any) {
      coverable.push_back(j);
    } else {
      result.predicted_undetectable.push_back(fault_list[j]);
    }
  }

  // Greedy cover over the predicted matrix.
  std::vector<bool> keep(candidates.size(), false);
  // Always keep the functional configuration when it is a candidate (it is
  // free: no reconfiguration, and it anchors the comparison).
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].IsFunctional()) keep[c] = true;
  }
  std::vector<bool> covered(fault_list.size(), false);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (!keep[c]) continue;
    for (std::size_t j : coverable) {
      if (result.predicted[c][j]) covered[j] = true;
    }
  }
  while (true) {
    std::size_t best = candidates.size();
    std::size_t best_gain = 0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (keep[c]) continue;
      std::size_t gain = 0;
      for (std::size_t j : coverable) {
        if (!covered[j] && result.predicted[c][j]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = c;
      }
    }
    if (best == candidates.size()) break;  // nothing uncovered remains
    keep[best] = true;
    for (std::size_t j : coverable) {
      if (result.predicted[best][j]) covered[j] = true;
    }
  }

  // Headroom: add the highest-predicted-count configurations not yet kept.
  std::vector<std::size_t> rest;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (!keep[c]) rest.push_back(c);
  }
  std::sort(rest.begin(), rest.end(), [&](std::size_t a, std::size_t b) {
    const auto count = [&](std::size_t c) {
      return std::count(result.predicted[c].begin(), result.predicted[c].end(),
                        true);
    };
    return count(a) > count(b);
  });
  for (std::size_t i = 0; i < std::min(options.extra_configs, rest.size());
       ++i) {
    keep[rest[i]] = true;
  }

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (keep[c]) result.selected.push_back(candidates[c]);
  }
  return result;
}

}  // namespace mcdft::core
