#include "core/test_plan.hpp"

#include <algorithm>
#include <cmath>

#include "boolcov/setcover.hpp"
#include "core/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcdft::core {

namespace {

/// Candidate measurement point.
struct Point {
  std::size_t row;
  std::size_t freq_index;
  std::vector<std::size_t> covers;
};

}  // namespace

TestPlan GenerateTestPlan(const CampaignResult& campaign,
                          const TestPlanOptions& options) {
  std::vector<std::size_t> rows = options.rows;
  if (rows.empty()) {
    rows.resize(campaign.ConfigCount());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  }
  for (std::size_t r : rows) {
    if (r >= campaign.ConfigCount()) {
      throw util::AnalysisError("test-plan row " + std::to_string(r) +
                                " outside the campaign");
    }
    if (campaign.PerConfig()[r].nominal.PointCount() == 0) {
      throw util::AnalysisError(
          "test-plan generation needs a simulated campaign (no nominal "
          "response stored for row " + std::to_string(r) + ")");
    }
  }

  // Decide, per fault, whether robust coverage (deviation >= robustness x
  // threshold somewhere) is achievable; if not, fall back to the plain
  // threshold for that fault.
  const std::size_t nfaults = campaign.FaultCount();
  const double robust = std::max(1.0, options.robustness_factor);
  auto dev_of = [&](const ConfigResult& cfg, std::size_t j, std::size_t i) {
    const auto& region = cfg.faults[j].region;
    const auto& d = options.mode == MeasurementMode::kComplex
                        ? region.deviation
                        : region.magnitude_deviation;
    return i < d.size() ? static_cast<double>(d[i]) : 0.0;
  };
  auto covers_at = [&](const ConfigResult& cfg, std::size_t j, std::size_t i,
                       double factor) {
    const auto& region = cfg.faults[j].region;
    const auto& mask = options.mode == MeasurementMode::kComplex
                           ? region.mask
                           : region.magnitude_mask;
    if (i >= mask.size() || !mask[i]) return false;
    if (factor <= 1.0) return true;
    const double threshold =
        i < cfg.threshold.size() ? cfg.threshold[i] : 0.0;
    return dev_of(cfg, j, i) >= factor * threshold;
  };
  std::vector<double> fault_factor(nfaults, robust);
  for (std::size_t j = 0; j < nfaults; ++j) {
    bool robustly_coverable = false;
    for (std::size_t r : rows) {
      const auto& cfg = campaign.PerConfig()[r];
      for (std::size_t i = 0; i < cfg.nominal.PointCount(); ++i) {
        if (covers_at(cfg, j, i, robust)) {
          robustly_coverable = true;
          break;
        }
      }
      if (robustly_coverable) break;
    }
    if (!robustly_coverable) fault_factor[j] = 1.0;
  }

  // Enumerate candidate points: a grid point qualifies if it covers at
  // least one fault at that fault's required margin.
  std::vector<Point> points;
  for (std::size_t r : rows) {
    const auto& cfg = campaign.PerConfig()[r];
    const std::size_t npts = cfg.nominal.PointCount();
    for (std::size_t i = 0; i < npts; ++i) {
      Point p{r, i, {}};
      for (std::size_t j = 0; j < nfaults; ++j) {
        if (covers_at(cfg, j, i, fault_factor[j])) p.covers.push_back(j);
      }
      if (!p.covers.empty()) points.push_back(std::move(p));
    }
  }

  // Coverable faults and the covering problem over points.
  std::vector<bool> coverable(nfaults, false);
  for (const auto& p : points) {
    for (std::size_t j : p.covers) coverable[j] = true;
  }
  TestPlan plan;
  for (std::size_t j = 0; j < nfaults; ++j) {
    if (!coverable[j]) plan.uncovered.push_back(campaign.Faults()[j]);
  }

  std::vector<std::size_t> chosen_points;
  if (!points.empty()) {
    boolcov::CoverProblem problem(points.size());
    for (std::size_t j = 0; j < nfaults; ++j) {
      if (!coverable[j]) continue;
      boolcov::Clause clause{boolcov::Cube(points.size()),
                             campaign.Faults()[j].Label()};
      for (std::size_t v = 0; v < points.size(); ++v) {
        if (std::find(points[v].covers.begin(), points[v].covers.end(), j) !=
            points[v].covers.end()) {
          clause.literals.Set(v);
        }
      }
      problem.AddClause(std::move(clause));
    }
    const bool use_exact =
        options.exact && points.size() <= options.max_exact_points;
    auto cover = use_exact
                     ? boolcov::ExactSetCover(
                           problem, boolcov::UnitWeights(points.size()))
                     : boolcov::GreedySetCover(
                           problem, boolcov::UnitWeights(points.size()));
    chosen_points = cover.chosen.Variables();
  }

  // Order by configuration (then frequency) to minimize reconfigurations.
  std::sort(chosen_points.begin(), chosen_points.end(),
            [&](std::size_t a, std::size_t b) {
              if (points[a].row != points[b].row) {
                return points[a].row < points[b].row;
              }
              return points[a].freq_index < points[b].freq_index;
            });

  for (std::size_t v : chosen_points) {
    const Point& p = points[v];
    const auto& cfg = campaign.PerConfig()[p.row];
    TestMeasurement m(p.row, cfg.config, p.freq_index);
    m.frequency_hz = cfg.nominal.freqs_hz[p.freq_index];
    m.expected = cfg.nominal.values[p.freq_index];
    m.expected_magnitude = cfg.nominal.MagnitudeAt(p.freq_index);
    // The detection threshold bounds the relative deviation against
    // denom = max(|T(w)|, floor * peak) — the same normalization the
    // campaign applied, so the window is exactly the campaign's
    // detectability boundary mapped to an absolute measurement.
    double peak = 0.0;
    for (std::size_t i = 0; i < cfg.nominal.PointCount(); ++i) {
      peak = std::max(peak, cfg.nominal.MagnitudeAt(i));
    }
    const double denom =
        std::max(m.expected_magnitude, cfg.relative_floor * peak);
    const double window = cfg.threshold.empty()
                              ? 0.1 * denom
                              : cfg.threshold[p.freq_index] * denom;
    m.window_radius = window;
    m.lower_bound = std::max(0.0, m.expected_magnitude - window);
    m.upper_bound = m.expected_magnitude + window;
    m.covers = p.covers;
    plan.steps.push_back(std::move(m));
  }

  // Metrics.
  std::vector<bool> covered(nfaults, false);
  for (const auto& m : plan.steps) {
    for (std::size_t j : m.covers) covered[j] = true;
  }
  plan.coverage =
      static_cast<double>(std::count(covered.begin(), covered.end(), true)) /
      static_cast<double>(nfaults);
  for (std::size_t s = 1; s < plan.steps.size(); ++s) {
    if (!(plan.steps[s].config == plan.steps[s - 1].config)) {
      ++plan.reconfigurations;
    }
  }
  if (!plan.steps.empty()) ++plan.reconfigurations;  // initial setup
  plan.estimated_time_s =
      static_cast<double>(plan.steps.size()) * options.seconds_per_measurement +
      static_cast<double>(plan.reconfigurations) *
          options.seconds_per_reconfiguration;
  return plan;
}

std::string RenderTestPlan(const TestPlan& plan,
                           const CampaignResult& campaign) {
  util::Table t;
  t.SetTitle("Test plan (" + std::to_string(plan.steps.size()) +
             " measurements, " + std::to_string(plan.reconfigurations) +
             " reconfigurations, ~" +
             util::FormatTrimmed(plan.estimated_time_s, 3) + " s)");
  t.SetHeader({"#", "config", "frequency", "expect |T|", "phase",
               "accept window (|T| / vector radius)", "detects"});
  for (std::size_t s = 0; s < plan.steps.size(); ++s) {
    const auto& m = plan.steps[s];
    std::vector<std::string> detects;
    for (std::size_t j : m.covers) {
      detects.push_back(campaign.Faults()[j].ShortLabel());
    }
    const double phase_deg =
        std::arg(m.expected) * 180.0 / 3.14159265358979323846;
    t.AddRow({std::to_string(s + 1), m.config.Name(),
              util::FormatEngineering(m.frequency_hz, 4) + "Hz",
              util::FormatTrimmed(m.expected_magnitude, 4),
              util::FormatTrimmed(phase_deg, 1) + "deg",
              "[" + util::FormatTrimmed(m.lower_bound, 4) + ", " +
                  util::FormatTrimmed(m.upper_bound, 4) + "] / r=" +
                  util::FormatTrimmed(m.window_radius, 4),
              util::Join(detects, " ")});
  }
  t.SetAlign(6, util::Table::Align::kLeft);
  std::string out = t.Render();
  out += "plan fault coverage: " +
         util::FormatTrimmed(100.0 * plan.coverage, 1) + "%\n";
  if (!plan.uncovered.empty()) {
    out += "uncoverable faults:";
    for (const auto& f : plan.uncovered) out += " " + f.Label();
    out += "\n";
  }
  return out;
}

}  // namespace mcdft::core
