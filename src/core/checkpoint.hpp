// The shard checkpoint file format (schema "mcdft.shard/1").
//
// One JSON document per shard: a manifest binding the file to its campaign
// inputs (content hash, configuration set, fault list, reference band,
// probe label, shard spec) plus the completed work units, each carrying a
// partial ConfigResult row at full double precision (the util/json
// serializer emits round-trip-exact numbers).  The file is rewritten with
// an atomic rename + fsync after every completed unit, so an interrupted
// run resumes from the last completed unit and a crash can never leave a
// half-written checkpoint behind.
//
// Documented in DESIGN.md "Sharding & checkpointing".
#pragma once

#include <string>
#include <vector>

#include "core/shard.hpp"
#include "util/json.hpp"

namespace mcdft::core {

/// A checkpoint that cannot be trusted: malformed/truncated JSON, wrong
/// schema version, manifest mismatch (stale content hash, foreign shard
/// spec), overlapping or gapped coverage.  Resume and merge fail with this
/// rather than mixing bad data into a campaign.
class CheckpointError : public util::Error {
 public:
  explicit CheckpointError(const std::string& what)
      : Error("checkpoint: " + what) {}
};

inline constexpr const char* kShardSchema = "mcdft.shard/1";

/// Everything needed to validate a shard file against its siblings and to
/// reconstitute the campaign frame on merge.
struct ShardManifest {
  ShardSpec shard;
  std::string circuit;                    ///< circuit name (reporting only)
  std::string content_hash;               ///< CampaignContentHash of inputs
  std::vector<std::string> config_bits;   ///< row order, "101"-style
  std::vector<faults::Fault> fault_list;  ///< column order
  double band_f_lo = 0.0;                 ///< reference band, exact doubles
  double band_f_hi = 0.0;
  std::size_t band_points_per_decade = 0;
  std::string probe_label;                ///< e.g. "v(out)"

  testability::ReferenceBand Band() const;

  /// True when two manifests describe the same campaign (everything but
  /// the shard spec matches exactly).
  bool SameCampaign(const ShardManifest& other) const;
};

/// One completed unit: the owned cell range and its partial row.
/// `partial.faults` holds exactly [unit.fault_begin, unit.fault_end) in
/// fault order; nominal/threshold/relative_floor are the full-row values
/// (identical across shards splitting one configuration, validated on
/// merge).
struct ShardUnitResult {
  ShardUnit unit;
  ConfigResult partial;
};

/// A shard checkpoint: manifest + the units completed so far.
struct ShardDocument {
  ShardManifest manifest;
  std::vector<ShardUnitResult> units;
};

/// Serialize the document (manifest + completed units).
util::json::Value ShardToJson(const ShardDocument& doc);

/// Parse and validate a shard document: schema version, structural
/// completeness, in-range units.  Throws CheckpointError with a diagnostic
/// that names what is wrong (the caller adds the file path).
ShardDocument ShardFromJson(const util::json::Value& json);

/// Checkpoint file name for a shard: "shard-<i>of<N>.json".
std::string ShardFileName(const ShardSpec& spec);

/// Load a shard checkpoint file.  Wraps parse/validation failures in a
/// CheckpointError naming the path (a truncated or otherwise malformed
/// file is reported as such, never silently ignored).
ShardDocument LoadShardFile(const std::string& path);

/// Write the document to `path` atomically (tmp + fsync + rename).
void WriteShardFile(const ShardDocument& doc, const std::string& path);

}  // namespace mcdft::core
