// The shard checkpoint file format (schema "mcdft.shard/2").
//
// One JSONL document per shard: the first line is a compact header object
// binding the file to its campaign inputs (content hash, configuration
// set, fault list, reference band, probe label, shard spec); every further
// line is one completed work unit carrying a partial ConfigResult row at
// full double precision (the util/json serializer emits round-trip-exact
// numbers) plus a CRC32 over the record body.  The file is rewritten with
// an atomic rename + fsync after every completed unit, so an interrupted
// run resumes from the last completed unit and a crash can never leave a
// half-written checkpoint behind.
//
// The per-unit CRC makes damage *localizable*: a bit flip or truncation
// invalidates only the records it touches, and the salvaging loader
// (SalvageShardFile) recovers every intact unit so resume recomputes only
// the damaged ones.  The strict loader (LoadShardFile, used by merge)
// still refuses the whole file.  Legacy "mcdft.shard/1" single-document
// checkpoints are still read by both loaders (all-or-nothing: /1 has no
// per-unit CRC to salvage with).
//
// Documented in DESIGN.md "Sharding & checkpointing" and "Resilience &
// failure semantics".
#pragma once

#include <string>
#include <vector>

#include "core/shard.hpp"
#include "util/json.hpp"

namespace mcdft::core {

/// A checkpoint that cannot be trusted: malformed/truncated JSON, wrong
/// schema version, manifest mismatch (stale content hash, foreign shard
/// spec), overlapping or gapped coverage.  Resume and merge fail with this
/// rather than mixing bad data into a campaign.
class CheckpointError : public util::Error {
 public:
  explicit CheckpointError(const std::string& what)
      : Error("checkpoint: " + what) {}
};

inline constexpr const char* kShardSchema = "mcdft.shard/2";
inline constexpr const char* kShardSchemaV1 = "mcdft.shard/1";

/// Everything needed to validate a shard file against its siblings and to
/// reconstitute the campaign frame on merge.
struct ShardManifest {
  ShardSpec shard;
  std::string circuit;                    ///< circuit name (reporting only)
  std::string content_hash;               ///< CampaignContentHash of inputs
  std::vector<std::string> config_bits;   ///< row order, "101"-style
  std::vector<faults::Fault> fault_list;  ///< column order
  double band_f_lo = 0.0;                 ///< reference band, exact doubles
  double band_f_hi = 0.0;
  std::size_t band_points_per_decade = 0;
  std::string probe_label;                ///< e.g. "v(out)"

  testability::ReferenceBand Band() const;

  /// True when two manifests describe the same campaign (everything but
  /// the shard spec matches exactly).
  bool SameCampaign(const ShardManifest& other) const;
};

/// One completed unit: the owned cell range and its partial row.
/// `partial.faults` holds exactly [unit.fault_begin, unit.fault_end) in
/// fault order; nominal/threshold/relative_floor are the full-row values
/// (identical across shards splitting one configuration, validated on
/// merge).  Quarantine state round-trips: the nominal response's mask and
/// each fault's quarantined_points (absent in legacy /1 files = none).
struct ShardUnitResult {
  ShardUnit unit;
  ConfigResult partial;
};

/// A shard checkpoint: manifest + the units completed so far.
struct ShardDocument {
  ShardManifest manifest;
  std::vector<ShardUnitResult> units;
};

/// Serialize the document to its on-disk JSONL text: a compact header
/// line, then one compact CRC-carrying record line per unit.
std::string ShardToText(const ShardDocument& doc);

/// What SalvageShardFile recovered and what it had to drop.
struct ShardSalvage {
  std::size_t units_loaded = 0;        ///< intact units returned
  std::vector<std::string> damaged;    ///< one named diagnostic per bad record
};

/// Parse and validate shard text (either schema).  Throws CheckpointError
/// with a diagnostic that names what is wrong (the caller adds the file
/// path).  With `salvage == nullptr` any damaged unit record is fatal;
/// otherwise damaged /2 records are dropped into `salvage->damaged` and
/// the intact units are returned (header damage is always fatal — without
/// a trusted manifest nothing in the file can be attributed).
ShardDocument ShardFromText(const std::string& text,
                            ShardSalvage* salvage = nullptr);

/// Checkpoint file name for a shard: "shard-<i>of<N>.json".
std::string ShardFileName(const ShardSpec& spec);

/// Load a shard checkpoint file strictly (used by merge).  Wraps parse/
/// validation failures in a CheckpointError naming the path (a truncated
/// or otherwise malformed file is reported as such, never silently
/// ignored).
ShardDocument LoadShardFile(const std::string& path);

/// Load a shard checkpoint file, salvaging what the per-unit CRCs vouch
/// for (used by resume).  Damaged unit records are dropped with a named
/// diagnostic in `salvage` and counted in the
/// `core.checkpoint.salvaged_units` / `core.checkpoint.damaged_units`
/// metrics; a damaged header still throws CheckpointError.
ShardDocument SalvageShardFile(const std::string& path,
                               ShardSalvage& salvage);

/// Write the document to `path` atomically (tmp + fsync + rename).
void WriteShardFile(const ShardDocument& doc, const std::string& path);

}  // namespace mcdft::core
