#include "core/run_report.hpp"

#include <cstdlib>
#include <fstream>

#include "linalg/simd/kernels.hpp"
#include "util/parallel.hpp"

namespace mcdft::core {

namespace json = util::json;
namespace metrics = util::metrics;
namespace trace = util::trace;

namespace {

double Seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

std::uint64_t CounterValue(const metrics::Snapshot& delta,
                           std::string_view name) {
  for (const auto& c : delta.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

/// Batched fault-solve occupancy: how full the SMW batches ran and how many
/// cells peeled out onto the exact ladder.  All zeros when batching is off.
json::Value BatchingSection(const metrics::Snapshot& delta) {
  const std::uint64_t batches = CounterValue(delta, "faults.sim.batches");
  const std::uint64_t cells = CounterValue(delta, "faults.sim.batched_cells");
  const std::uint64_t peeled = CounterValue(delta, "faults.sim.batch_peeled");
  json::Value section = json::Value::Object();
  section.Set("batches", json::Value::Number(batches));
  section.Set("batched_cells", json::Value::Number(cells));
  section.Set("peeled_cells", json::Value::Number(peeled));
  section.Set("mean_occupancy",
              json::Value::Number(batches == 0
                                      ? 0.0
                                      : static_cast<double>(cells) /
                                            static_cast<double>(batches)));
  section.Set("simd", json::Value::Str(linalg::simd::Active().name));
  return section;
}

/// Counters under `prefix.` folded into one JSON object (prefix stripped).
json::Value CounterGroup(const metrics::Snapshot& delta,
                         std::string_view prefix) {
  json::Value group = json::Value::Object();
  for (const auto& c : delta.counters) {
    if (c.name.size() > prefix.size() + 1 &&
        c.name.compare(0, prefix.size(), prefix) == 0 &&
        c.name[prefix.size()] == '.') {
      group.Set(c.name.substr(prefix.size() + 1), json::Value::Number(c.value));
    }
  }
  return group;
}

json::Value PhaseTable(const std::vector<trace::SpanStats>& spans) {
  json::Value phases = json::Value::Array();
  for (const auto& s : spans) {
    json::Value row = json::Value::Object();
    row.Set("name", json::Value::Str(s.name));
    row.Set("count", json::Value::Number(s.count));
    row.Set("wall_s", json::Value::Number(Seconds(s.total_wall_ns)));
    row.Set("max_wall_s", json::Value::Number(Seconds(s.max_wall_ns)));
    row.Set("cpu_s", json::Value::Number(Seconds(s.total_cpu_ns)));
    phases.PushBack(std::move(row));
  }
  return phases;
}

json::Value CampaignSection(const CampaignResult& campaign) {
  json::Value section = json::Value::Object();
  section.Set("config_count", json::Value::Number(
                                  static_cast<std::uint64_t>(campaign.ConfigCount())));
  section.Set("fault_count", json::Value::Number(
                                 static_cast<std::uint64_t>(campaign.FaultCount())));
  section.Set("coverage", json::Value::Number(campaign.Coverage()));
  section.Set("average_omega_det",
              json::Value::Number(campaign.AverageOmegaDet()));

  // Resilience accounting: (fault, omega) cells the retry ladder had to
  // quarantine, campaign-wide and per configuration (with the offending
  // faults named).  A healthy campaign reports quarantined = 0 and no
  // per-row quarantine lists.
  std::size_t total_cells = 0;
  for (const auto& cr : campaign.PerConfig()) {
    for (const auto& f : cr.faults) total_cells += f.region.mask.size();
  }
  json::Value cells = json::Value::Object();
  cells.Set("total", json::Value::Number(
                         static_cast<std::uint64_t>(total_cells)));
  cells.Set("quarantined",
            json::Value::Number(static_cast<std::uint64_t>(
                campaign.QuarantinedCellCount())));
  section.Set("cells", std::move(cells));

  json::Value configs = json::Value::Array();
  for (const auto& cr : campaign.PerConfig()) {
    std::size_t detected = 0;
    for (const auto& f : cr.faults) {
      if (f.detectable) ++detected;
    }
    json::Value row = json::Value::Object();
    row.Set("config", json::Value::Str(cr.config.Name()));
    row.Set("bits", json::Value::Str(cr.config.BitString()));
    row.Set("detected_faults",
            json::Value::Number(static_cast<std::uint64_t>(detected)));
    row.Set("fault_coverage",
            json::Value::Number(cr.faults.empty()
                                    ? 0.0
                                    : static_cast<double>(detected) /
                                          static_cast<double>(cr.faults.size())));
    row.Set("average_omega_det", json::Value::Number(cr.AverageOmegaDet()));
    const std::size_t quarantined = cr.QuarantinedCellCount();
    row.Set("quarantined_cells",
            json::Value::Number(static_cast<std::uint64_t>(quarantined)));
    if (quarantined > 0) {
      json::Value list = json::Value::Array();
      for (const auto& f : cr.faults) {
        if (f.quarantined_points == 0) continue;
        json::Value q = json::Value::Object();
        q.Set("device", json::Value::Str(f.fault.Device()));
        q.Set("kind", json::Value::Str(
                          std::string(faults::FaultKindName(f.fault.Kind()))));
        q.Set("magnitude", json::Value::Number(f.fault.Magnitude()));
        q.Set("quarantined_points",
              json::Value::Number(
                  static_cast<std::uint64_t>(f.quarantined_points)));
        list.PushBack(std::move(q));
      }
      row.Set("quarantine", std::move(list));
    }
    configs.PushBack(std::move(row));
  }
  section.Set("per_config", std::move(configs));
  return section;
}

json::Value EnvironmentSection() {
  json::Value env = json::Value::Object();
  env.Set("hardware_threads",
          json::Value::Number(
              static_cast<std::uint64_t>(util::HardwareThreadCount())));
  const char* threads_env = std::getenv("MCDFT_THREADS");
  env.Set("mcdft_threads_env", threads_env ? json::Value::Str(threads_env)
                                           : json::Value::Null());
  const char* metrics_env = std::getenv("MCDFT_METRICS");
  env.Set("mcdft_metrics_env", metrics_env ? json::Value::Str(metrics_env)
                                           : json::Value::Null());
  const char* simd_env = std::getenv("MCDFT_SIMD");
  env.Set("mcdft_simd_env", simd_env ? json::Value::Str(simd_env)
                                     : json::Value::Null());
  const char* batch_env = std::getenv("MCDFT_BATCH");
  env.Set("mcdft_batch_env", batch_env ? json::Value::Str(batch_env)
                                       : json::Value::Null());
#if defined(__clang__)
  env.Set("compiler", json::Value::Str("clang " __clang_version__));
#elif defined(__GNUC__)
  env.Set("compiler", json::Value::Str("gcc " __VERSION__));
#else
  env.Set("compiler", json::Value::Str("unknown"));
#endif
#ifndef NDEBUG
  env.Set("build", json::Value::Str("debug"));
#else
  env.Set("build", json::Value::Str("release"));
#endif
  return env;
}

}  // namespace

CampaignRunRecorder::CampaignRunRecorder()
    : metrics_before_(metrics::Capture()),
      trace_before_(trace::Capture()),
      wall_start_ns_(trace::internal::NowWallNs()),
      cpu_start_ns_(trace::internal::NowCpuNs()) {
  enable_.emplace(true);
}

CampaignRunRecorder::~CampaignRunRecorder() = default;

json::Value CampaignRunRecorder::Finish(const CampaignResult& campaign,
                                        const RunReportOptions& options) {
  const std::uint64_t wall_ns = trace::internal::NowWallNs() - wall_start_ns_;
  const std::uint64_t cpu_ns = trace::internal::NowCpuNs() - cpu_start_ns_;
  const metrics::Snapshot delta =
      metrics::Delta(metrics_before_, metrics::Capture());
  const std::vector<trace::SpanStats> spans =
      trace::Delta(trace_before_, trace::Capture());
  enable_.reset();  // restore the pre-recorder enable state

  json::Value report = json::Value::Object();
  report.Set("schema", json::Value::Str("mcdft.run_report/3"));
  report.Set("tool", json::Value::Str(options.tool));
  if (!options.circuit.empty()) {
    report.Set("circuit", json::Value::Str(options.circuit));
  }

  json::Value timing = json::Value::Object();
  timing.Set("wall_s", json::Value::Number(Seconds(wall_ns)));
  timing.Set("cpu_s", json::Value::Number(Seconds(cpu_ns)));
  report.Set("timing", std::move(timing));
  report.Set("phases", PhaseTable(spans));

  json::Value threads = json::Value::Object();
  threads.Set("requested", json::Value::Number(
                               static_cast<std::uint64_t>(options.threads)));
  threads.Set("resolved",
              json::Value::Number(static_cast<std::uint64_t>(
                  util::ResolveThreadCount(options.threads))));
  report.Set("threads", std::move(threads));

  json::Value solver = json::Value::Object();
  solver.Set("sparse_lu", CounterGroup(delta, "linalg.sparse_lu"));
  solver.Set("smw", CounterGroup(delta, "linalg.smw"));
  solver.Set("mna", CounterGroup(delta, "spice.mna"));
  const metrics::HistogramSample fill =
      delta.HistogramOf("linalg.sparse_lu.fill_nnz");
  if (fill.count > 0) {
    json::Value h = json::Value::Object();
    h.Set("count", json::Value::Number(fill.count));
    h.Set("mean", json::Value::Number(static_cast<double>(fill.sum) /
                                      static_cast<double>(fill.count)));
    h.Set("min", json::Value::Number(fill.min));
    h.Set("max", json::Value::Number(fill.max));
    solver.Set("fill_nnz", std::move(h));
  }
  report.Set("solver", std::move(solver));

  report.Set("parallel", CounterGroup(delta, "util.parallel"));
  report.Set("faults", CounterGroup(delta, "faults.sim"));
  report.Set("batching", BatchingSection(delta));
  report.Set("shard", CounterGroup(delta, "core.shard"));
  report.Set("checkpoint", CounterGroup(delta, "core.checkpoint"));

  // Full counter dump for ad-hoc analysis (the grouped views above are the
  // stable, documented surface).
  json::Value raw = json::Value::Object();
  for (const auto& c : delta.counters) {
    raw.Set(c.name, json::Value::Number(c.value));
  }
  report.Set("counters", std::move(raw));

  report.Set("campaign", CampaignSection(campaign));
  report.Set("environment", EnvironmentSection());
  return report;
}

void WriteRunReport(const json::Value& report, const std::string& path) {
  json::WriteFileAtomic(report, path);
}

}  // namespace mcdft::core
