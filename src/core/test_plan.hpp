// Multi-frequency test-plan generation: compile the campaign's
// detectability data into an executable tester program — an ordered list
// of (configuration, frequency, expected value, acceptance window)
// measurements that detects every covered fault.
//
// This closes the loop the paper opens with the omega-detectability
// metric: a fault's detectability region is exactly the set of candidate
// test frequencies, and choosing a minimal measurement set is one more
// covering problem (this time over (configuration, frequency) points —
// the multifrequency ATPG view of refs [12][13]).
#pragma once

#include "core/campaign.hpp"

namespace mcdft::core {

/// What the tester can measure at each point.
enum class MeasurementMode {
  /// Vector (gain + phase) measurement: accept when the complex distance
  /// |measured - expected| stays within the window radius.  Matches the
  /// paper's Definition 1 exactly.
  kComplex,
  /// Scalar magnitude measurement: accept when |measured| lies within
  /// [lower_bound, upper_bound].  Cheaper tester; faults whose deviation
  /// is phase-only become uncoverable (reported in TestPlan::uncovered).
  kMagnitude,
};

/// One measurement in the plan.
struct TestMeasurement {
  std::size_t row = 0;          ///< campaign configuration row
  ConfigVector config;          ///< the configuration to apply
  std::size_t freq_index = 0;   ///< grid index within the campaign band
  double frequency_hz = 0.0;
  std::complex<double> expected;    ///< nominal T at the point
  double expected_magnitude = 0.0;  ///< |expected|
  /// kComplex: accept iff |measured - expected| <= window_radius.
  double window_radius = 0.0;
  /// kMagnitude: accept iff |measured| in [lower_bound, upper_bound].
  double lower_bound = 0.0;
  double upper_bound = 0.0;
  std::vector<std::size_t> covers;  ///< fault indices this point detects

  TestMeasurement(std::size_t row_in, ConfigVector config_in,
                  std::size_t freq_index_in)
      : row(row_in), config(std::move(config_in)), freq_index(freq_index_in) {}
};

/// The compiled plan.
struct TestPlan {
  /// Measurements grouped by configuration (reconfigurations minimized by
  /// ordering, not by re-solving the cover).
  std::vector<TestMeasurement> steps;

  /// Faults covered by the plan / campaign fault count.
  double coverage = 0.0;

  /// Faults no measurement point can detect (undetectable in the chosen
  /// rows).
  std::vector<faults::Fault> uncovered;

  std::size_t reconfigurations = 0;  ///< configuration switches in the plan
  double estimated_time_s = 0.0;     ///< from the TestPlanOptions time model
};

/// Plan-generation options.
struct TestPlanOptions {
  /// Restrict the plan to these campaign rows (empty = every row); use the
  /// optimizer's S_opt for the paper's short test procedure.
  std::vector<std::size_t> rows;

  /// Tester capability (see MeasurementMode).
  MeasurementMode mode = MeasurementMode::kComplex;

  /// Robustness margin: a measurement point only counts as covering a
  /// fault when the fault's deviation exceeds `robustness_factor x
  /// threshold` there, so the chosen points keep detecting under process
  /// spread.  Faults with no such point fall back to plain-threshold
  /// coverage (better fragile detection than none).  1.0 disables.
  double robustness_factor = 1.5;

  /// Cover-minimization effort: greedy is near-optimal here and scales to
  /// thousands of candidate points; exact runs branch-and-bound when the
  /// candidate count is at most `max_exact_points`.
  bool exact = false;
  std::size_t max_exact_points = 512;

  /// Tester time model (matches core::TestTimeCost semantics).
  double seconds_per_measurement = 5e-3;
  double seconds_per_reconfiguration = 1.0;
};

/// Compile a minimal-measurement plan from a simulated campaign.  Throws
/// AnalysisError when the campaign is synthetic (no stored nominal
/// responses) or `rows` is out of range.
TestPlan GenerateTestPlan(const CampaignResult& campaign,
                          const TestPlanOptions& options = {});

/// Render the plan as a tester-readable table.
std::string RenderTestPlan(const TestPlan& plan, const CampaignResult& campaign);

}  // namespace mcdft::core
