// User-defined cost functions for the 2nd-order requirements (paper Sec. 4):
// "test time, silicon overhead or performance degradation".
//
// A cost function scores a candidate *set of test configurations* (a cube
// over campaign rows).  The optimizer evaluates every minimal cover from
// the fundamental requirement against the chosen cost function and keeps
// the cheapest ones; ties go to the 3rd-order omega-detectability rule.
#pragma once

#include <memory>

#include "boolcov/cube.hpp"
#include "core/campaign.hpp"

namespace mcdft::core {

/// Interface of a 2nd-order cost function.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  /// Human-readable name for reports.
  virtual std::string Name() const = 0;

  /// Cost of selecting the configuration set `rows` (a cube over the
  /// campaign's configuration rows).  Lower is better.
  virtual double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
                      const DftCircuit& circuit) const = 0;
};

/// Sec. 4.2: number of test configurations (test-procedure complexity).
class ConfigCountCost final : public CostFunction {
 public:
  std::string Name() const override { return "configuration count"; }
  double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
              const DftCircuit& circuit) const override;
};

/// Sec. 4.3: number of opamps that must be made configurable — the union
/// of follower opamps over the selected configurations (silicon area +
/// performance degradation proxy).
class OpampCountCost final : public CostFunction {
 public:
  std::string Name() const override { return "configurable-opamp count"; }
  double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
              const DftCircuit& circuit) const override;
};

/// Opamp chain positions needed in follower mode by a configuration set:
/// the paper's configuration->opamp mapping (Table 3) extended to sets.
/// The returned cube lives over the circuit's configurable-opamp positions.
boolcov::Cube RequiredOpamps(const boolcov::Cube& rows,
                             const CampaignResult& campaign,
                             const DftCircuit& circuit);

/// Explicit test-time model: each configuration costs a reconfiguration
/// overhead plus one measurement per sweep point.
class TestTimeCost final : public CostFunction {
 public:
  /// `seconds_per_point`: one AC measurement; `reconfig_seconds`: digital
  /// reconfiguration + settling between configurations.
  TestTimeCost(double seconds_per_point, double reconfig_seconds);
  std::string Name() const override { return "test time (s)"; }
  double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
              const DftCircuit& circuit) const override;

 private:
  double seconds_per_point_;
  double reconfig_seconds_;
};

/// Explicit silicon-overhead model: per configurable opamp (switches +
/// test-input routing) plus per selection line (control routing).
class SiliconAreaCost final : public CostFunction {
 public:
  /// Costs in arbitrary area units.
  SiliconAreaCost(double area_per_configurable_opamp, double area_per_sel_line);
  std::string Name() const override { return "silicon overhead"; }
  double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
              const DftCircuit& circuit) const override;

 private:
  double area_per_opamp_;
  double area_per_line_;
};

/// Weighted sum of other cost functions (multi-objective trade-offs).
class CompositeCost final : public CostFunction {
 public:
  void Add(std::shared_ptr<const CostFunction> f, double weight);
  std::string Name() const override;
  double Cost(const boolcov::Cube& rows, const CampaignResult& campaign,
              const DftCircuit& circuit) const override;

 private:
  std::vector<std::pair<std::shared_ptr<const CostFunction>, double>> parts_;
};

}  // namespace mcdft::core
