// BIST configuration sequencing (paper Sec. 4.2: "if BIST is under
// consideration, configurations are generated on-chip, and the
// minimization of the configuration number then simplifies the required
// test circuitry").
//
// Beyond minimizing *how many* configurations run, the on-chip sequencer
// cares about *in which order*: every selection-line toggle is a switching
// event with an analog settling penalty, so a good schedule visits the
// selected configurations in an order minimizing total Hamming distance —
// a tiny TSP solved exactly for realistic set sizes.
#pragma once

#include "core/configuration.hpp"

namespace mcdft::core {

/// A configuration schedule.
struct BistSchedule {
  /// Visit order (starting from the functional configuration C_0, which is
  /// the power-on state of the selection lines).
  std::vector<ConfigVector> order;

  /// Selection-line toggles along the schedule, including the transition
  /// from C_0 into the first configuration (0 if it IS C_0).
  std::size_t toggles = 0;

  /// Toggles of the naive (index-sorted) order, for comparison.
  std::size_t naive_toggles = 0;
};

/// Sequencer options.
struct BistOptions {
  /// Above this set size the exact search (exhaustive permutations with
  /// pruning) yields to a nearest-neighbour + 2-opt heuristic.
  std::size_t exact_limit = 10;
};

/// Order `configs` to minimize total selection-line toggles starting from
/// the all-zero power-on state.  All vectors must share one bit width.
BistSchedule ScheduleConfigurations(std::vector<ConfigVector> configs,
                                    const BistOptions& options = {});

/// Hamming distance between two configuration vectors.
std::size_t ToggleCount(const ConfigVector& a, const ConfigVector& b);

}  // namespace mcdft::core
