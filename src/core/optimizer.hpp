// The ordered-requirement optimizer — the paper's main contribution
// (Section 4):
//   1st order (fundamental): keep the maximum achievable fault coverage.
//   2nd order: minimize a user-defined cost over the minimal covers
//              (configuration count, configurable-opamp count, test time...)
//   3rd order: break remaining ties by the highest average
//              omega-detectability.
#pragma once

#include "boolcov/petrick.hpp"
#include "boolcov/setcover.hpp"
#include "core/cost_functions.hpp"

namespace mcdft::core {

/// Result of the fundamental requirement analysis (Sec. 4.1).
struct FundamentalSolution {
  /// Faults detectable in no simulated configuration.  The fundamental
  /// requirement then means "cover every *detectable* fault"; these are
  /// reported so no silent coverage loss occurs.
  std::vector<faults::Fault> undetectable;

  /// The covering problem xi (one clause per detectable fault, variables =
  /// campaign rows).
  boolcov::CoverProblem xi;

  /// Essential configurations (rows appearing as single-literal clauses).
  boolcov::Cube essential;

  /// The problem after committing to the essentials — the reduced fault
  /// detectability matrix of Fig. 6.
  boolcov::CoverProblem xi_reduced;

  /// All minimal covers (each includes the essential rows), sorted by size.
  std::vector<boolcov::Cube> minimal_covers;

  /// Maximum achievable fault coverage (over all simulated rows).
  double max_coverage = 0.0;

  FundamentalSolution(boolcov::CoverProblem xi_in,
                      boolcov::CoverProblem xi_reduced_in, std::size_t nvars)
      : xi(std::move(xi_in)),
        essential(nvars),
        xi_reduced(std::move(xi_reduced_in)) {}
};

/// One candidate configuration set with its evaluation.
struct ScoredSet {
  boolcov::Cube rows;                  ///< campaign rows selected
  std::vector<ConfigVector> configs;   ///< the corresponding configurations
  double cost = 0.0;                   ///< 2nd-order cost
  double avg_omega_det = 0.0;          ///< 3rd-order metric
  double coverage = 0.0;               ///< achieved fault coverage
};

/// Result of a 2nd+3rd-order optimization.
struct SelectionResult {
  ScoredSet selected;                ///< the winner
  std::vector<ScoredSet> tied;       ///< all min-cost candidates (incl. winner)
  std::vector<ScoredSet> all_minimal;///< every minimal cover, scored
  std::string cost_name;
};

/// Result of the partial-DFT optimization (Sec. 4.3).
struct PartialDftResult {
  /// Chosen configurable opamps (names, chain order) — the xi* minimum.
  std::vector<std::string> opamps;

  /// Cube over configurable-opamp chain positions.
  boolcov::Cube opamp_cube;

  /// All distinct opamp-set candidates after mapping + absorption, sorted
  /// by size (the terms of the absorbed xi* expression).
  std::vector<boolcov::Cube> opamp_candidates;

  /// Campaign rows *permitted* by the chosen opamps (every simulated
  /// configuration whose followers are a subset of the chosen opamps).
  std::vector<std::size_t> permitted_rows;

  /// Scored usage of all permitted rows (the paper's Table 4 conclusion:
  /// using every permitted configuration maximizes <w-det>).
  ScoredSet usage_all;

  /// Scored usage of a minimal covering subset of the permitted rows
  /// (cheapest test procedure on the partial-DFT circuit).
  ScoredSet usage_minimal;

  PartialDftResult(std::size_t opamp_positions, std::size_t row_count)
      : opamp_cube(opamp_positions) {
    (void)row_count;
  }
};

/// Ties a campaign to the covering/optimization machinery.
class DftOptimizer {
 public:
  /// `circuit` and `campaign` must outlive the optimizer.
  DftOptimizer(const DftCircuit& circuit, const CampaignResult& campaign);

  /// Sec. 4.1: build xi, extract essentials, reduce, expand with Petrick.
  FundamentalSolution SolveFundamental(
      const boolcov::PetrickOptions& options = {}) const;

  /// Generic 2nd-order + 3rd-order selection over the minimal covers.
  SelectionResult Optimize(const CostFunction& cost,
                           const boolcov::PetrickOptions& options = {}) const;

  /// Sec. 4.2 shortcut: minimize the configuration count.
  SelectionResult OptimizeConfigurationCount() const;

  /// Sec. 4.3: minimize the configurable-opamp count and derive the
  /// partial-DFT implementation.
  PartialDftResult OptimizePartialDft(
      const boolcov::PetrickOptions& options = {}) const;

  /// Scalable fallback for large configuration spaces where Petrick
  /// explodes: exact branch-and-bound minimum-cardinality cover (no
  /// exhaustive candidate list, no 3rd-order tie-break).
  ScoredSet OptimizeConfigurationCountExact() const;

  /// Greedy ln(n)-approximate cover (baseline for the ablation bench).
  ScoredSet OptimizeConfigurationCountGreedy() const;

  /// Score an arbitrary row set (cost = NaN; coverage and <w-det> filled).
  ScoredSet Score(const boolcov::Cube& rows) const;

 private:
  ScoredSet ScoreWithCost(const boolcov::Cube& rows,
                          const CostFunction& cost) const;
  boolcov::CoverProblem BuildProblem(
      std::vector<faults::Fault>* undetectable) const;

  const DftCircuit& circuit_;
  const CampaignResult& campaign_;
};

}  // namespace mcdft::core
