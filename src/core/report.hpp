// Paper-style report rendering: the tables, matrices and (text) graphs of
// Renovell et al. 1998, generated from live campaign/optimizer results.
#pragma once

#include "core/optimizer.hpp"
#include "util/table.hpp"

namespace mcdft::core {

/// Table 1: configuration index, vector and description for a space.
std::string RenderConfigurationTable(const ConfigurationSpace& space);

/// Figure 5: the boolean fault detectability matrix of a campaign.
std::string RenderDetectabilityMatrix(const CampaignResult& campaign);

/// Table 2 / Table 4: the omega-detectability table in percent.  When
/// `mark_best` is set, the per-fault maximum entries (the paper's black
/// boxes) are flagged with '*'.
std::string RenderOmegaTable(const CampaignResult& campaign,
                             bool mark_best = true);

/// Table 3: configuration -> follower-opamp mapping.
std::string RenderMappingTable(const ConfigurationSpace& space);

/// Sec. 4.1 narrative: xi, the essential configurations, the reduced
/// expression and the expanded sum of products.
std::string RenderFundamental(const FundamentalSolution& solution,
                              const CampaignResult& campaign);

/// A 2nd/3rd-order selection: candidates with costs and <w-det>, winner.
std::string RenderSelection(const SelectionResult& result,
                            const CampaignResult& campaign);

/// Sec. 4.3: the xi* candidates, chosen opamps, permitted configurations
/// and their usage scores.
std::string RenderPartialDft(const PartialDftResult& result,
                             const CampaignResult& campaign,
                             const DftCircuit& circuit);

/// Text bar graph of per-fault omega-detectability series (the paper's
/// Graph 1/2/3/4).  Each series is a (name, per-fault values) pair; values
/// in [0,1] are printed in percent.
std::string RenderOmegaBars(
    const std::vector<faults::Fault>& fault_list,
    const std::vector<std::pair<std::string, std::vector<double>>>& series,
    const std::string& title);

/// Name of campaign row i ("C5"), used consistently across renderers.
std::string RowName(const CampaignResult& campaign, std::size_t row);

/// Render a row-set cube as "{C2, C5}".
std::string RowSetName(const CampaignResult& campaign,
                       const boolcov::Cube& rows);

}  // namespace mcdft::core
