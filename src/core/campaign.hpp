// The multi-configuration fault-simulation campaign: evaluate every fault
// in every candidate test configuration, producing the fault detectability
// matrix (paper Fig. 5) and the omega-detectability table (Table 2).
#pragma once

#include <optional>
#include <unordered_map>

#include "core/dft_transform.hpp"
#include "testability/metrics.hpp"
#include "testability/tolerance.hpp"

namespace mcdft::core {

/// Campaign options.
struct CampaignOptions {
  testability::DetectionCriteria criteria;  ///< epsilon etc. (Def. 1)

  /// When set, a Monte-Carlo process-tolerance envelope is computed for
  /// every configuration (over the fault-site components) and added to the
  /// detection threshold — the realistic reading of the paper's epsilon.
  /// criteria.envelope must then be empty (it is filled per configuration).
  std::optional<testability::ToleranceModel> tolerance;

  /// Reference band shape (Def. 2): decades below/above the anchor and the
  /// sampling density.
  double decades_below = 2.0;
  double decades_above = 2.0;
  std::size_t points_per_decade = 50;

  /// Band anchor frequency (Hz).  Unset = estimate from the functional
  /// configuration's fault-free response (its -3 dB passband centre).
  std::optional<double> anchor_hz;

  spice::MnaOptions mna;

  /// Worker threads for the (configuration, fault) sweeps and the
  /// Monte-Carlo envelope samples.  0 = MCDFT_THREADS env var, else the
  /// hardware thread count; 1 = serial.  Results are bit-identical for any
  /// value (static partitioning + ordered reductions).
  std::size_t threads = 0;
};

/// Per-configuration fault analysis.
struct ConfigResult {
  ConfigVector config;
  std::vector<testability::FaultDetectability> faults;  ///< per fault, in order

  /// Fault-free response of this configuration on the campaign grid
  /// (empty for synthetic campaigns built from bare matrices).
  spice::FrequencyResponse nominal;

  /// Detection threshold at each grid point (epsilon + envelope), aligned
  /// with `nominal`; empty for synthetic campaigns.
  std::vector<double> threshold;

  /// Deviation-normalization floor the thresholds were applied against
  /// (criteria.relative_floor at campaign time).
  double relative_floor = 0.25;

  /// Average omega-detectability over the fault list in this configuration.
  double AverageOmegaDet() const;

  /// Total quarantined (fault, omega) cells in this configuration row —
  /// grid points the resilient simulator excluded from the verdicts after
  /// exhausting the retry ladder (counted undetected by convention).
  std::size_t QuarantinedCellCount() const;
};

/// Full campaign result: everything Sections 3-4 need.
class CampaignResult {
 public:
  CampaignResult(std::vector<faults::Fault> fault_list,
                 std::vector<ConfigResult> per_config,
                 testability::ReferenceBand band);

  const std::vector<faults::Fault>& Faults() const { return faults_; }
  const std::vector<ConfigResult>& PerConfig() const { return per_config_; }
  const testability::ReferenceBand& Band() const { return band_; }

  std::size_t ConfigCount() const { return per_config_.size(); }
  std::size_t FaultCount() const { return faults_.size(); }

  /// The boolean fault detectability matrix d_ij (row = configuration in
  /// campaign order, column = fault), paper Fig. 5.
  std::vector<std::vector<bool>> DetectabilityMatrix() const;

  /// The omega-detectability table (same shape), paper Table 2.
  std::vector<std::vector<double>> OmegaTable() const;

  /// Best-case (per-fault max) verdicts over a subset of configuration rows
  /// (empty = all rows): the "a fault is tested in its best configuration"
  /// rule behind Graph 2 and the <w-det> of a chosen configuration set.
  std::vector<testability::FaultDetectability> BestCase(
      const std::vector<std::size_t>& rows = {}) const;

  /// Fault coverage achieved using a subset of rows (empty = all).
  double Coverage(const std::vector<std::size_t>& rows = {}) const;

  /// Average omega-detectability using a subset of rows (empty = all).
  double AverageOmegaDet(const std::vector<std::size_t>& rows = {}) const;

  /// Row index of a configuration in this campaign; throws
  /// OptimizationError when the configuration was not simulated.  O(1):
  /// the index->row map is built at construction.
  std::size_t RowOf(const ConfigVector& cv) const;

  /// Total quarantined cells over every configuration row (0 on a fully
  /// healthy campaign).  Non-zero drives the CLI's distinct exit code and
  /// the run report's quarantine section.
  std::size_t QuarantinedCellCount() const;

 private:
  std::vector<faults::Fault> faults_;
  std::vector<ConfigResult> per_config_;
  testability::ReferenceBand band_;
  // ConfigVector::Index() -> row; verified with operator== on lookup so
  // same-index vectors of a different width still miss.
  std::unordered_map<std::size_t, std::size_t> row_of_;
};

/// The campaign settings used by every paper-reproduction experiment in
/// bench/ and by the integration tests: tester accuracy epsilon = 8 %,
/// +/-3 % Monte-Carlo process-tolerance envelope (48 samples, fixed seed),
/// a 25 %-of-peak measurement floor, and the 4-decade reference band of
/// Definition 2 (2 decades of passband + 2 of stopband, 50 points/decade).
CampaignOptions MakePaperCampaignOptions();

/// Run the campaign on `circuit` over `configs` (e.g. Space().All() or a
/// pre-selected subset) and `fault_list`.  The circuit is cloned; the
/// argument is untouched.  One AC sweep is run per (configuration, fault)
/// pair plus one nominal sweep per configuration.
CampaignResult RunCampaign(const DftCircuit& circuit,
                           const std::vector<faults::Fault>& fault_list,
                           const std::vector<ConfigVector>& configs,
                           const CampaignOptions& options = {});

// --- Campaign building blocks (shared with core/shard) -----------------
//
// The sharded executor must reproduce the monolithic campaign bit for bit,
// so both paths are built from the same pieces: resolve the frame once,
// prepare each configuration independently, analyze each (config, fault)
// cell independently.  Every piece is a deterministic function of its
// arguments (Monte-Carlo envelopes use fixed per-sample seed streams), so
// any partition of the work matrix reassembles to identical numbers.

/// The campaign-wide frame: reference band, sweep grid, output probe and
/// the component sites the tolerance envelope perturbs (fault-list order).
struct CampaignFrame {
  testability::ReferenceBand band;
  spice::SweepSpec sweep;
  spice::Probe probe;
  std::vector<std::string> tolerance_sites;
};

/// Resolve the frame on a working clone of the circuit (the clone is
/// switched to the functional configuration for the anchor estimate).
/// Validates the options; throws AnalysisError on conflicts.
CampaignFrame BuildCampaignFrame(DftCircuit& work,
                                 const std::vector<faults::Fault>& fault_list,
                                 const CampaignOptions& options);

/// One configuration, ready to simulate: the configured netlist snapshot
/// and its detection criteria (epsilon + Monte-Carlo envelope).
struct PreparedConfig {
  spice::Netlist netlist;
  testability::DetectionCriteria criteria;
};

/// Apply `cv` to the working circuit, compute its criteria and snapshot
/// the configured netlist.  Independent per configuration: preparing any
/// subset yields the same bytes as preparing all of them.
PreparedConfig PrepareCampaignConfig(DftCircuit& work,
                                     const CampaignFrame& frame,
                                     const ConfigVector& cv,
                                     const CampaignOptions& options);

/// Assemble a (possibly partial) ConfigResult row covering fault indices
/// [fault_begin, fault_end) of `fault_list`.  `responses` holds the
/// nominal response followed by the faulty responses in fault order.
ConfigResult AssembleConfigRow(const ConfigVector& cv,
                               const testability::DetectionCriteria& criteria,
                               std::vector<spice::FrequencyResponse> responses,
                               const std::vector<faults::Fault>& fault_list,
                               std::size_t fault_begin, std::size_t fault_end);

/// Testability of the *unmodified* block (paper Sec. 2): analyze the fault
/// list on the functional circuit only.  Returns the single-configuration
/// campaign so the same accessors/metrics apply.
CampaignResult AnalyzeFunctionalOnly(const DftCircuit& circuit,
                                     const std::vector<faults::Fault>& fault_list,
                                     const CampaignOptions& options = {});

}  // namespace mcdft::core
