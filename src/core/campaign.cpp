#include "core/campaign.hpp"

#include <algorithm>
#include <iterator>
#include <optional>
#include <unordered_set>

#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace mcdft::core {

namespace metrics = util::metrics;

double ConfigResult::AverageOmegaDet() const {
  return testability::AverageOmegaDetectability(faults);
}

std::size_t ConfigResult::QuarantinedCellCount() const {
  std::size_t n = 0;
  for (const auto& f : faults) n += f.quarantined_points;
  return n;
}

CampaignResult::CampaignResult(std::vector<faults::Fault> fault_list,
                               std::vector<ConfigResult> per_config,
                               testability::ReferenceBand band)
    : faults_(std::move(fault_list)),
      per_config_(std::move(per_config)),
      band_(band) {
  if (per_config_.empty()) {
    throw util::AnalysisError("campaign with zero configurations");
  }
  for (const auto& cr : per_config_) {
    if (cr.faults.size() != faults_.size()) {
      throw util::AnalysisError("campaign configuration rows are ragged");
    }
  }
  row_of_.reserve(per_config_.size());
  for (std::size_t i = 0; i < per_config_.size(); ++i) {
    row_of_.emplace(per_config_[i].config.Index(), i);  // first wins, as before
  }
}

std::vector<std::vector<bool>> CampaignResult::DetectabilityMatrix() const {
  std::vector<std::vector<bool>> m(ConfigCount(),
                                   std::vector<bool>(FaultCount(), false));
  for (std::size_t i = 0; i < ConfigCount(); ++i) {
    for (std::size_t j = 0; j < FaultCount(); ++j) {
      m[i][j] = per_config_[i].faults[j].detectable;
    }
  }
  return m;
}

std::vector<std::vector<double>> CampaignResult::OmegaTable() const {
  std::vector<std::vector<double>> m(ConfigCount(),
                                     std::vector<double>(FaultCount(), 0.0));
  for (std::size_t i = 0; i < ConfigCount(); ++i) {
    for (std::size_t j = 0; j < FaultCount(); ++j) {
      m[i][j] = per_config_[i].faults[j].omega_detectability;
    }
  }
  return m;
}

std::vector<testability::FaultDetectability> CampaignResult::BestCase(
    const std::vector<std::size_t>& rows) const {
  std::vector<std::vector<testability::FaultDetectability>> lists;
  if (rows.empty()) {
    for (const auto& cr : per_config_) lists.push_back(cr.faults);
  } else {
    for (std::size_t r : rows) {
      if (r >= per_config_.size()) {
        throw util::OptimizationError("campaign row " + std::to_string(r) +
                                      " out of range");
      }
      lists.push_back(per_config_[r].faults);
    }
  }
  return testability::BestCasePerFault(lists);
}

double CampaignResult::Coverage(const std::vector<std::size_t>& rows) const {
  return testability::FaultCoverage(BestCase(rows));
}

double CampaignResult::AverageOmegaDet(
    const std::vector<std::size_t>& rows) const {
  return testability::AverageOmegaDetectability(BestCase(rows));
}

std::size_t CampaignResult::QuarantinedCellCount() const {
  std::size_t n = 0;
  for (const auto& cr : per_config_) n += cr.QuarantinedCellCount();
  return n;
}

std::size_t CampaignResult::RowOf(const ConfigVector& cv) const {
  const auto it = row_of_.find(cv.Index());
  if (it != row_of_.end() && per_config_[it->second].config == cv) {
    return it->second;
  }
  throw util::OptimizationError("configuration " + cv.Name() +
                                " was not simulated in this campaign");
}

namespace {

testability::ReferenceBand ResolveBand(DftCircuit& work,
                                       const CampaignOptions& options) {
  double anchor;
  if (options.anchor_hz) {
    anchor = *options.anchor_hz;
  } else {
    // Estimate from the functional configuration's fault-free response on a
    // wide exploratory sweep (6 decades around 1 kHz, then refined around
    // the found passband).
    ScopedConfiguration functional(
        work, ConfigVector(work.ConfigurableOpamps().size()));
    spice::AcAnalyzer analyzer(work.Circuit(), options.mna);
    spice::Probe probe{work.Circuit().FindNode(work.OutputNode()),
                       spice::kGround, "v(out)"};
    const auto wide = spice::SweepSpec::Decade(1e-1, 1e8, 10);
    anchor = testability::EstimateAnchorFrequency(analyzer.Run(wide, probe));
  }
  return testability::ReferenceBand::Around(anchor, options.decades_below,
                                            options.decades_above,
                                            options.points_per_decade);
}

}  // namespace

CampaignFrame BuildCampaignFrame(DftCircuit& work,
                                 const std::vector<faults::Fault>& fault_list,
                                 const CampaignOptions& options) {
  if (fault_list.empty()) {
    throw util::AnalysisError("campaign needs a non-empty fault list");
  }
  if (options.tolerance && !options.criteria.envelope.empty()) {
    throw util::AnalysisError(
        "criteria.envelope must be empty when a tolerance model is set");
  }
  testability::ReferenceBand band = [&] {
    util::trace::Span span("campaign.resolve_band");
    return ResolveBand(work, options);
  }();
  spice::SweepSpec sweep = band.MakeSweep();
  spice::Probe probe{work.Circuit().FindNode(work.OutputNode()),
                     spice::kGround, "v(" + work.OutputNode() + ")"};
  std::vector<std::string> sites;
  if (options.tolerance) {
    std::unordered_set<std::string> seen;
    for (const auto& f : fault_list) {
      if (seen.insert(f.Device()).second) sites.push_back(f.Device());
    }
  }
  return CampaignFrame{band, std::move(sweep), std::move(probe),
                       std::move(sites)};
}

PreparedConfig PrepareCampaignConfig(DftCircuit& work,
                                     const CampaignFrame& frame,
                                     const ConfigVector& cv,
                                     const CampaignOptions& options) {
  ScopedConfiguration sc(work, cv);
  testability::DetectionCriteria criteria = options.criteria;
  if (options.tolerance) {
    criteria.envelope = testability::ComputeToleranceEnvelope(
        work.Circuit(), frame.sweep, frame.probe, frame.tolerance_sites,
        *options.tolerance, criteria.relative_floor, options.mna,
        options.threads);
  }
  return PreparedConfig{work.Circuit().Clone(), std::move(criteria)};
}

ConfigResult AssembleConfigRow(const ConfigVector& cv,
                               const testability::DetectionCriteria& criteria,
                               std::vector<spice::FrequencyResponse> responses,
                               const std::vector<faults::Fault>& fault_list,
                               std::size_t fault_begin,
                               std::size_t fault_end) {
  if (fault_end > fault_list.size() || fault_begin > fault_end ||
      responses.size() != 1 + (fault_end - fault_begin)) {
    throw util::AnalysisError("config row assembly out of range");
  }
  ConfigResult row{cv, {}, std::move(responses[0]), {}};
  row.faults.reserve(fault_end - fault_begin);
  std::size_t quarantined_cells = 0;
  for (std::size_t j = fault_begin; j < fault_end; ++j) {
    row.faults.push_back(testability::AnalyzeFault(
        fault_list[j], row.nominal, responses[1 + j - fault_begin], criteria));
    quarantined_cells += row.faults.back().quarantined_points;
  }
  // Cell accounting for run reports and the CLI exit code: a cell is one
  // (config, fault, omega) verdict; quarantined cells were excluded from
  // the verdict by the documented counted-undetected convention.
  metrics::GetCounter("campaign.cells.total")
      .Add((fault_end - fault_begin) * row.nominal.PointCount());
  if (quarantined_cells > 0) {
    metrics::GetCounter("campaign.cells.quarantined").Add(quarantined_cells);
  }
  row.threshold.resize(row.nominal.PointCount());
  for (std::size_t i = 0; i < row.threshold.size(); ++i) {
    row.threshold[i] = criteria.ThresholdAt(i);
  }
  row.relative_floor = criteria.relative_floor;
  return row;
}

CampaignOptions MakePaperCampaignOptions() {
  CampaignOptions options;
  options.criteria.epsilon = 0.08;
  options.criteria.relative_floor = 0.25;
  options.tolerance = testability::ToleranceModel{};  // 3 %, 48 samples
  options.decades_below = 2.0;
  options.decades_above = 2.0;
  options.points_per_decade = 50;
  return options;
}

CampaignResult RunCampaign(const DftCircuit& circuit,
                           const std::vector<faults::Fault>& fault_list,
                           const std::vector<ConfigVector>& configs,
                           const CampaignOptions& options) {
  if (configs.empty()) {
    throw util::AnalysisError("campaign needs at least one configuration");
  }
  if (fault_list.empty()) {
    throw util::AnalysisError("campaign needs a non-empty fault list");
  }
  metrics::GetCounter("core.campaign.runs").Add();
  metrics::GetCounter("core.campaign.configs").Add(configs.size());
  metrics::GetCounter("core.campaign.faults")
      .Add(configs.size() * fault_list.size());
  metrics::GetGauge("core.campaign.threads")
      .Set(static_cast<std::int64_t>(util::ResolveThreadCount(options.threads)));
  util::trace::Span run_span("campaign");

  DftCircuit work = circuit.Clone();
  const CampaignFrame frame = BuildCampaignFrame(work, fault_list, options);

  // Phase 1 (serial over configurations): apply each configuration, compute
  // its detection criteria (the Monte-Carlo envelope parallelizes over
  // samples internally) and snapshot the configured circuit.
  std::vector<PreparedConfig> prepared;
  prepared.reserve(configs.size());
  {
    util::trace::Span span("campaign.prepare");
    for (const ConfigVector& cv : configs) {
      prepared.push_back(PrepareCampaignConfig(work, frame, cv, options));
    }
  }

  // Phase 2 (parallel): simulate every (configuration, sweep) cell.
  //
  // Low-rank path (default): configurations run in order; inside each one
  // the sweep is frequency-major — the nominal system is factored once per
  // frequency and all faults apply as SMW rank-updates against it, with the
  // frequency blocks parallelized inside SimulateRange.  Fault-major path
  // (--no-lowrank): all (configuration, sweep) tasks on one flat index,
  // task c*(F+1) being configuration c's nominal sweep and c*(F+1)+1+j its
  // j-th fault.  Both paths are bit-identical across thread counts: each
  // cell is a pure function of (configured netlist values, frequency grid).
  const std::size_t tasks_per_config = fault_list.size() + 1;
  const std::size_t task_count = configs.size() * tasks_per_config;
  std::vector<spice::FrequencyResponse> responses(task_count);
  {
    util::trace::Span span("campaign.simulate");
    if (spice::LowRankFaultSolvesEnabled(options.mna)) {
      for (std::size_t c = 0; c < configs.size(); ++c) {
        faults::FaultSimulator simulator(prepared[c].netlist, frame.sweep,
                                         frame.probe, options.mna);
        std::vector<spice::FrequencyResponse> row = simulator.SimulateRange(
            fault_list, 0, fault_list.size(), options.threads);
        std::move(row.begin(), row.end(),
                  responses.begin() +
                      static_cast<std::ptrdiff_t>(c * tasks_per_config));
      }
    } else {
      util::ParallelForRange(
          options.threads, task_count,
          [&](std::size_t begin, std::size_t end) {
            std::optional<faults::FaultSimulator> simulator;
            std::size_t simulator_config = configs.size();  // none yet
            for (std::size_t t = begin; t < end; ++t) {
              const std::size_t c = t / tasks_per_config;
              const std::size_t j = t % tasks_per_config;
              if (c != simulator_config) {
                simulator.emplace(prepared[c].netlist, frame.sweep,
                                  frame.probe, options.mna);
                simulator_config = c;
              }
              responses[t] =
                  j == 0 ? simulator->SimulateNominalResilient()
                         : simulator->SimulateFaultResilient(fault_list[j - 1]);
            }
          });
    }
  }

  // Phase 3 (serial, ordered): assemble rows in configuration order.
  util::trace::Span assemble_span("campaign.assemble");
  std::vector<ConfigResult> per_config;
  per_config.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    auto first = responses.begin() +
                 static_cast<std::ptrdiff_t>(c * tasks_per_config);
    std::vector<spice::FrequencyResponse> row_responses(
        std::make_move_iterator(first),
        std::make_move_iterator(first +
                                static_cast<std::ptrdiff_t>(tasks_per_config)));
    per_config.push_back(AssembleConfigRow(configs[c], prepared[c].criteria,
                                           std::move(row_responses), fault_list,
                                           0, fault_list.size()));
  }
  return CampaignResult(fault_list, std::move(per_config), frame.band);
}

CampaignResult AnalyzeFunctionalOnly(const DftCircuit& circuit,
                                     const std::vector<faults::Fault>& fault_list,
                                     const CampaignOptions& options) {
  return RunCampaign(circuit, fault_list,
                     {ConfigVector(circuit.ConfigurableOpamps().size())},
                     options);
}

}  // namespace mcdft::core
