#include "core/diagnosis.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/report.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcdft::core {

DiagnosisReport Diagnose(const CampaignResult& campaign,
                         const DiagnosisOptions& options) {
  if (options.levels < 1 || options.levels > 9) {
    throw util::OptimizationError("diagnosis levels must be in [1, 9]");
  }
  const auto matrix = campaign.DetectabilityMatrix();
  const auto omega = campaign.OmegaTable();
  std::map<std::string, std::vector<faults::Fault>> by_signature;
  for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
    std::string sig(campaign.ConfigCount(), '0');
    for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
      if (!matrix[i][j]) continue;
      if (options.levels == 1) {
        sig[i] = '1';
      } else {
        // Quantize omega-detectability into `levels` equal bins; a
        // detectable fault always gets at least level 1.
        const double w = omega[i][j];
        std::size_t level = static_cast<std::size_t>(
            std::ceil(w * static_cast<double>(options.levels)));
        level = std::clamp<std::size_t>(level, 1, options.levels);
        sig[i] = static_cast<char>('0' + level);
      }
    }
    by_signature[sig].push_back(campaign.Faults()[j]);
  }

  DiagnosisReport report;
  for (auto& [sig, faults] : by_signature) {
    if (faults.size() == 1) ++report.uniquely_diagnosed;
    report.classes.push_back(SignatureClass{sig, std::move(faults)});
  }
  const double nfaults = static_cast<double>(campaign.FaultCount());
  report.resolution = static_cast<double>(report.classes.size()) / nfaults;

  // Pairwise distinguishability: pairs in different classes / all pairs.
  const double total_pairs = nfaults * (nfaults - 1.0) / 2.0;
  double same_class_pairs = 0.0;
  for (const auto& cls : report.classes) {
    const double n = static_cast<double>(cls.faults.size());
    same_class_pairs += n * (n - 1.0) / 2.0;
  }
  report.pairwise_distinguishability =
      total_pairs > 0.0 ? 1.0 - same_class_pairs / total_pairs : 1.0;
  return report;
}

std::string RenderDiagnosis(const DiagnosisReport& report,
                            const CampaignResult& campaign) {
  util::Table t;
  t.SetTitle("Fault diagnosis by configuration signature");
  std::string header = "signature (";
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    if (i != 0) header += " ";
    header += RowName(campaign, i);
  }
  header += ")";
  t.SetHeader({header, "faults in class"});
  for (const auto& cls : report.classes) {
    std::vector<std::string> names;
    for (const auto& f : cls.faults) names.push_back(f.ShortLabel());
    t.AddRow({cls.signature, util::Join(names, ", ")});
  }
  t.SetAlign(1, util::Table::Align::kLeft);
  std::string out = t.Render();
  out += "uniquely diagnosed faults: " +
         std::to_string(report.uniquely_diagnosed) + " / " +
         std::to_string(campaign.FaultCount()) + "\n";
  out += "diagnostic resolution:     " +
         util::FormatTrimmed(100.0 * report.resolution, 1) + "%\n";
  out += "distinguishable pairs:     " +
         util::FormatTrimmed(100.0 * report.pairwise_distinguishability, 1) +
         "%\n";
  return out;
}

OpampTestResult RunOpampTransparentTest(const DftCircuit& circuit,
                                        std::vector<faults::Fault> opamp_faults,
                                        const OpampTestOptions& options) {
  if (circuit.ConfigurableOpamps().size() != circuit.Chain().size()) {
    throw util::AnalysisError(
        "the transparent-configuration test needs every chain opamp "
        "configurable (partial DFT breaks the end-to-end follower path)");
  }
  if (opamp_faults.empty()) {
    opamp_faults = faults::MakeOpampFaults(circuit.Circuit());
  }
  for (const auto& f : opamp_faults) {
    if (!f.IsOpampFault()) {
      throw util::AnalysisError("non-opamp fault '" + f.Label() +
                                "' in the opamp transparent test");
    }
  }

  const std::size_t n = circuit.ConfigurableOpamps().size();
  // Row 0: transparent; rows 1..n: single-follower configurations.
  std::vector<ConfigVector> configs;
  configs.push_back(ConfigVector::FromBits(std::string(n, '1')));
  for (std::size_t k = 0; k < n; ++k) {
    ConfigVector cv(n);
    cv.SetSelection(k, true);
    configs.push_back(cv);
  }

  CampaignOptions campaign_options;
  campaign_options.criteria = options.criteria;
  campaign_options.anchor_hz = std::sqrt(options.f_lo_hz * options.f_hi_hz);
  campaign_options.decades_below =
      std::log10(*campaign_options.anchor_hz / options.f_lo_hz);
  campaign_options.decades_above =
      std::log10(options.f_hi_hz / *campaign_options.anchor_hz);
  campaign_options.points_per_decade = options.points_per_decade;
  campaign_options.mna = options.mna;

  OpampTestResult result{
      {}, 0.0,
      RunCampaign(circuit, opamp_faults, configs, campaign_options),
      {}};
  result.screen = result.localization.PerConfig()[0].faults;
  result.screen_coverage =
      testability::FaultCoverage(result.screen);
  // Severe opamp faults trip every configuration, so boolean signatures
  // are uniform; the 4-level quantized dictionary separates them by how
  // much of the band each configuration loses.
  result.diagnosis = Diagnose(result.localization, DiagnosisOptions{4});
  return result;
}

}  // namespace mcdft::core
