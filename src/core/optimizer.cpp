#include "core/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcdft::core {

DftOptimizer::DftOptimizer(const DftCircuit& circuit,
                           const CampaignResult& campaign)
    : circuit_(circuit), campaign_(campaign) {}

boolcov::CoverProblem DftOptimizer::BuildProblem(
    std::vector<faults::Fault>* undetectable) const {
  const auto matrix = campaign_.DetectabilityMatrix();
  const std::size_t nrows = matrix.size();
  boolcov::CoverProblem problem(nrows);
  for (std::size_t j = 0; j < campaign_.FaultCount(); ++j) {
    boolcov::Clause clause{boolcov::Cube(nrows),
                           campaign_.Faults()[j].Label()};
    for (std::size_t i = 0; i < nrows; ++i) {
      if (matrix[i][j]) clause.literals.Set(i);
    }
    if (clause.literals.Empty()) {
      // Not even the full multi-configuration set detects this fault: the
      // maximum fault coverage excludes it (the fundamental requirement is
      // relative to the *achievable* maximum).
      if (undetectable) undetectable->push_back(campaign_.Faults()[j]);
      continue;
    }
    problem.AddClause(std::move(clause));
  }
  return problem;
}

FundamentalSolution DftOptimizer::SolveFundamental(
    const boolcov::PetrickOptions& options) const {
  std::vector<faults::Fault> undetectable;
  boolcov::CoverProblem xi = BuildProblem(&undetectable);

  const std::size_t nrows = campaign_.ConfigCount();
  boolcov::Cube essential = xi.EssentialVariables();
  boolcov::CoverProblem reduced = xi.ReduceBy(essential);

  FundamentalSolution sol(xi, reduced, nrows);
  sol.undetectable = std::move(undetectable);
  sol.essential = essential;
  sol.max_coverage =
      1.0 - static_cast<double>(sol.undetectable.size()) /
                static_cast<double>(campaign_.FaultCount());

  // Expand the reduced problem, then put the essentials back into every
  // product (xi = xi_ess . xi_compl, Sec. 4.1).
  boolcov::CoverProblem reduced_absorbed = reduced;
  reduced_absorbed.AbsorbClauses();
  std::vector<boolcov::Cube> products;
  if (reduced_absorbed.Satisfied()) {
    products.push_back(boolcov::Cube(nrows));
  } else {
    products = boolcov::PetrickMinimalProducts(reduced_absorbed, options);
  }
  sol.minimal_covers.reserve(products.size());
  for (const auto& p : products) {
    sol.minimal_covers.push_back(p.Union(essential));
  }
  std::sort(sol.minimal_covers.begin(), sol.minimal_covers.end(),
            boolcov::Cube::OrderBySize);
  return sol;
}

ScoredSet DftOptimizer::Score(const boolcov::Cube& rows) const {
  ScoredSet s{rows, {}, std::numeric_limits<double>::quiet_NaN(), 0.0, 0.0};
  for (std::size_t r : rows.Variables()) {
    s.configs.push_back(campaign_.PerConfig()[r].config);
  }
  s.avg_omega_det = campaign_.AverageOmegaDet(rows.Variables());
  s.coverage = campaign_.Coverage(rows.Variables());
  return s;
}

ScoredSet DftOptimizer::ScoreWithCost(const boolcov::Cube& rows,
                                      const CostFunction& cost) const {
  ScoredSet s = Score(rows);
  s.cost = cost.Cost(rows, campaign_, circuit_);
  return s;
}

SelectionResult DftOptimizer::Optimize(
    const CostFunction& cost, const boolcov::PetrickOptions& options) const {
  FundamentalSolution fundamental = SolveFundamental(options);
  if (fundamental.minimal_covers.empty()) {
    throw util::OptimizationError("no covering configuration set exists");
  }
  SelectionResult result;
  result.cost_name = cost.Name();
  result.all_minimal.reserve(fundamental.minimal_covers.size());
  double best_cost = std::numeric_limits<double>::infinity();
  for (const auto& cover : fundamental.minimal_covers) {
    result.all_minimal.push_back(ScoreWithCost(cover, cost));
    best_cost = std::min(best_cost, result.all_minimal.back().cost);
  }
  for (const auto& s : result.all_minimal) {
    if (s.cost == best_cost) result.tied.push_back(s);
  }
  // 3rd-order requirement: highest average omega-detectability wins; break
  // any residual tie deterministically by cube order.
  result.selected = result.tied.front();
  for (const auto& s : result.tied) {
    if (s.avg_omega_det > result.selected.avg_omega_det +
                              std::numeric_limits<double>::epsilon()) {
      result.selected = s;
    }
  }
  return result;
}

SelectionResult DftOptimizer::OptimizeConfigurationCount() const {
  return Optimize(ConfigCountCost{});
}

PartialDftResult DftOptimizer::OptimizePartialDft(
    const boolcov::PetrickOptions& options) const {
  FundamentalSolution fundamental = SolveFundamental(options);
  if (fundamental.minimal_covers.empty()) {
    throw util::OptimizationError("no covering configuration set exists");
  }
  const std::size_t npos = circuit_.ConfigurableOpamps().size();
  PartialDftResult result(npos, campaign_.ConfigCount());

  // Map every minimal cover through Table 3 (configurations -> opamps) and
  // absorb: this is the xi -> xi* substitution of Sec. 4.3.
  std::vector<boolcov::Cube> opamp_terms;
  for (const auto& cover : fundamental.minimal_covers) {
    const boolcov::Cube needed = RequiredOpamps(cover, campaign_, circuit_);
    bool absorbed = false;
    for (const auto& existing : opamp_terms) {
      if (existing.SubsetOf(needed)) {
        absorbed = true;
        break;
      }
    }
    if (absorbed) continue;
    std::erase_if(opamp_terms,
                  [&](const boolcov::Cube& t) { return needed.SubsetOf(t); });
    opamp_terms.push_back(needed);
  }
  std::sort(opamp_terms.begin(), opamp_terms.end(), boolcov::Cube::OrderBySize);
  result.opamp_candidates = opamp_terms;

  // 2nd-order: fewest configurable opamps; 3rd-order: among ties, the
  // candidate whose permitted configurations reach the highest <w-det>.
  const std::size_t best_count = opamp_terms.front().LiteralCount();
  boolcov::Cube best_cube = opamp_terms.front();
  double best_wdet = -1.0;
  std::vector<std::size_t> best_rows;
  for (const auto& cand : opamp_terms) {
    if (cand.LiteralCount() != best_count) break;  // sorted by size
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < campaign_.ConfigCount(); ++r) {
      boolcov::Cube followers(npos);
      for (std::size_t pos :
           campaign_.PerConfig()[r].config.FollowerPositions()) {
        followers.Set(pos);
      }
      if (followers.SubsetOf(cand)) rows.push_back(r);
    }
    const double wdet = campaign_.AverageOmegaDet(rows);
    if (wdet > best_wdet) {
      best_wdet = wdet;
      best_cube = cand;
      best_rows = std::move(rows);
    }
  }
  result.opamp_cube = best_cube;
  for (std::size_t pos : best_cube.Variables()) {
    result.opamps.push_back(circuit_.ConfigurableOpamps()[pos]);
  }
  result.permitted_rows = best_rows;

  boolcov::Cube all_permitted(campaign_.ConfigCount());
  for (std::size_t r : best_rows) all_permitted.Set(r);
  result.usage_all = Score(all_permitted);
  result.usage_all.cost = static_cast<double>(best_count);

  // Minimal covering subset among the permitted rows (for the cheapest test
  // procedure on the partial circuit): restrict the covering problem.
  boolcov::CoverProblem restricted(campaign_.ConfigCount());
  for (const auto& clause : fundamental.xi.Clauses()) {
    boolcov::Clause cl{clause.literals.Intersect(all_permitted), clause.label};
    restricted.AddClause(std::move(cl));  // throws if a fault became uncoverable
  }
  auto exact = boolcov::ExactSetCover(
      restricted, boolcov::UnitWeights(campaign_.ConfigCount()));
  result.usage_minimal = Score(exact.chosen);
  result.usage_minimal.cost = exact.cost;
  return result;
}

ScoredSet DftOptimizer::OptimizeConfigurationCountExact() const {
  boolcov::CoverProblem problem = BuildProblem(nullptr);
  auto res = boolcov::ExactSetCover(problem,
                                    boolcov::UnitWeights(problem.VariableCount()));
  ScoredSet s = Score(res.chosen);
  s.cost = res.cost;
  return s;
}

ScoredSet DftOptimizer::OptimizeConfigurationCountGreedy() const {
  boolcov::CoverProblem problem = BuildProblem(nullptr);
  auto res = boolcov::GreedySetCover(
      problem, boolcov::UnitWeights(problem.VariableCount()));
  ScoredSet s = Score(res.chosen);
  s.cost = res.cost;
  return s;
}

}  // namespace mcdft::core
