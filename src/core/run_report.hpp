// Structured JSON run reports for fault-simulation campaigns.
//
// A CampaignRunRecorder brackets one campaign run: it snapshots the global
// metrics/trace registries, enables instrumentation, and — once the caller
// hands back the CampaignResult — folds the metric deltas, per-phase
// timings, per-configuration coverage summaries and environment facts into
// one JSON document (schema "mcdft.run_report/2", documented in DESIGN.md
// "Observability").
//
// The recorder only ever *adds* observability: it restores the previous
// metrics enable state on Finish()/destruction and never perturbs campaign
// numbers (instrumentation is counters and clocks, not behaviour).
#pragma once

#include <optional>
#include <string>

#include "core/campaign.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace mcdft::core {

/// Free-form context the caller wants embedded in the report.
struct RunReportOptions {
  std::string tool = "mcdft";     ///< producing binary ("mcdft", "bench", ...)
  std::string circuit;            ///< circuit name, when known
  std::size_t threads = 0;        ///< requested thread count (0 = auto)
};

/// RAII bracket around an instrumented campaign run.
class CampaignRunRecorder {
 public:
  /// Snapshots the current metric/trace state and turns instrumentation on.
  CampaignRunRecorder();

  /// Restores the previous enable state if Finish() was never called.
  ~CampaignRunRecorder();

  CampaignRunRecorder(const CampaignRunRecorder&) = delete;
  CampaignRunRecorder& operator=(const CampaignRunRecorder&) = delete;

  /// Build the report from everything recorded since construction.  May be
  /// called once; restores the previous metrics enable state.
  util::json::Value Finish(const CampaignResult& campaign,
                           const RunReportOptions& options = {});

 private:
  util::metrics::Snapshot metrics_before_;
  std::vector<util::trace::SpanStats> trace_before_;
  std::uint64_t wall_start_ns_ = 0;
  std::uint64_t cpu_start_ns_ = 0;
  std::optional<util::metrics::ScopedEnable> enable_;
};

/// Serialize `report` to `path` (pretty-printed).  Throws util::Error when
/// the file cannot be written.
void WriteRunReport(const util::json::Value& report, const std::string& path);

}  // namespace mcdft::core
