#include "core/test_quality.hpp"

#include <algorithm>
#include <random>

#include "faults/injector.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace mcdft::core {

namespace {

/// Execute every measurement of the plan against `netlist`; true = pass.
bool PassesPlan(const spice::Netlist& netlist, const TestPlan& plan,
                MeasurementMode mode, DftCircuit& configurator,
                const spice::MnaOptions& mna) {
  // The netlist under test *is* configurator.Circuit(): the caller mutates
  // values in place; we only switch configurations here.
  (void)netlist;
  const spice::NodeId out =
      configurator.Circuit().FindNode(configurator.OutputNode());
  for (const auto& m : plan.steps) {
    ScopedConfiguration sc(configurator, m.config);
    spice::AcAnalyzer analyzer(configurator.Circuit(), mna);
    auto r = analyzer.Run(spice::SweepSpec::List({m.frequency_hz}),
                          {out, spice::kGround, "v"});
    if (mode == MeasurementMode::kComplex) {
      if (std::abs(r.values[0] - m.expected) > m.window_radius) return false;
    } else {
      const double mag = r.MagnitudeAt(0);
      if (mag < m.lower_bound || mag > m.upper_bound) return false;
    }
  }
  return true;
}

}  // namespace

double TestQualityReport::OverallEscapeRate() const {
  std::size_t escaped = 0, total = 0;
  for (const auto& e : escapes) {
    escaped += e.escaped;
    total += e.total;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(escaped) / static_cast<double>(total);
}

TestQualityReport EvaluateTestQuality(const DftCircuit& circuit,
                                      const TestPlan& plan,
                                      const std::vector<faults::Fault>& fault_list,
                                      MeasurementMode mode,
                                      const TestQualityOptions& options) {
  if (plan.steps.empty()) {
    throw util::AnalysisError("cannot evaluate an empty test plan");
  }
  DftCircuit work = circuit.Clone();
  spice::Netlist& net = const_cast<spice::Netlist&>(work.Circuit());

  // Capture the nominal values of every tolerance site (the fault-list
  // devices) so each sample perturbs from nominal.
  std::vector<std::string> sites;
  for (const auto& f : fault_list) {
    if (std::find(sites.begin(), sites.end(), f.Device()) == sites.end() &&
        !f.IsOpampFault()) {
      sites.push_back(f.Device());
    }
  }
  std::vector<double> nominal;
  for (const auto& s : sites) nominal.push_back(net.GetElement(s).Value());

  std::mt19937_64 rng(options.seed);
  std::uniform_real_distribution<double> spread(
      -options.tolerance.component_tolerance,
      options.tolerance.component_tolerance);
  auto randomize = [&] {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      net.GetElement(sites[i]).SetValue(nominal[i] * (1.0 + spread(rng)));
    }
  };
  auto restore = [&] {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      net.GetElement(sites[i]).SetValue(nominal[i]);
    }
  };

  TestQualityReport report;

  // --- False rejects: in-tolerance circuits must pass -------------------
  for (std::size_t k = 0; k < options.good_samples; ++k) {
    randomize();
    ++report.good_total;
    if (!PassesPlan(net, plan, mode, work, options.mna)) {
      ++report.good_rejected;
    }
  }
  restore();

  // --- Escapes: tolerance spread + the fault must fail ------------------
  for (const auto& fault : fault_list) {
    FaultEscape fe{fault, 0, 0};
    for (std::size_t k = 0; k < options.faulty_samples; ++k) {
      randomize();
      faults::ScopedFaultInjection inj(net, fault);
      ++fe.total;
      if (PassesPlan(net, plan, mode, work, options.mna)) ++fe.escaped;
    }
    restore();
    report.escapes.push_back(std::move(fe));
  }
  return report;
}

std::string RenderTestQuality(const TestQualityReport& report) {
  util::Table t;
  t.SetTitle("Monte-Carlo test quality");
  t.SetHeader({"fault", "escapes", "samples", "escape rate %"});
  for (const auto& e : report.escapes) {
    t.AddRow({e.fault.Label(), std::to_string(e.escaped),
              std::to_string(e.total),
              util::FormatTrimmed(100.0 * e.EscapeRate(), 1)});
  }
  std::string out = t.Render();
  out += "false-reject (yield-loss) rate: " +
         util::FormatTrimmed(100.0 * report.FalseRejectRate(), 1) + "% (" +
         std::to_string(report.good_rejected) + "/" +
         std::to_string(report.good_total) + " in-tolerance samples)\n";
  out += "overall escape rate:            " +
         util::FormatTrimmed(100.0 * report.OverallEscapeRate(), 1) + "%\n";
  return out;
}

}  // namespace mcdft::core
