// Configuration vectors and the configuration space of a DFT-modified
// circuit (paper Sec. 3.1, Table 1).
//
// A circuit with n configurable opamps has 2^n configurations; the
// configuration vector CV = (sel_1 ... sel_n) holds one selection bit per
// configurable opamp (1 = follower mode).  C_0 (all zeros) is the normal
// functional configuration; C_{2^n-1} (all ones) is the *transparent*
// configuration that propagates the input straight to the output.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcdft::core {

/// One configuration: the selection bits of the configurable opamps.
///
/// Bit k corresponds to the k-th configurable opamp in chain order.  The
/// paper's index convention is used throughout: configuration C_i has
/// sel_1 as the *most significant* bit, so for 3 opamps C_5 = (1 0 1).
class ConfigVector {
 public:
  /// All-normal configuration over `bit_count` opamps (C_0).
  explicit ConfigVector(std::size_t bit_count);

  /// Configuration C_index (paper numbering; see class comment).  Throws
  /// OptimizationError when index >= 2^bit_count.
  static ConfigVector FromIndex(std::size_t index, std::size_t bit_count);

  /// Parse "101"-style bit strings (sel_1 first).
  static ConfigVector FromBits(const std::string& bits);

  std::size_t BitCount() const { return bits_.size(); }

  /// Selection bit of opamp k (0-based chain position).
  bool SelectionOf(std::size_t k) const;
  void SetSelection(std::size_t k, bool follower);

  /// The paper's configuration index ("C_i").
  std::size_t Index() const;

  /// Conventional name "C5".
  std::string Name() const;

  /// "101" (sel_1 first).
  std::string BitString() const;

  /// Chain positions of opamps in follower mode.
  std::vector<std::size_t> FollowerPositions() const;
  std::size_t FollowerCount() const;

  /// All-zero: the functional configuration C_0.
  bool IsFunctional() const;

  /// All-one: the transparent configuration (identity function).
  bool IsTransparent() const;

  bool operator==(const ConfigVector& other) const = default;

 private:
  std::vector<bool> bits_;  // bits_[k] = sel_{k+1}
};

/// The set of configurations available on a circuit with the given
/// configurable opamps (in chain order), with the enumeration helpers the
/// optimizer and benches need.
class ConfigurationSpace {
 public:
  /// Throws OptimizationError when `opamp_names` is empty or larger than
  /// 20 (2^20 configurations is past any practical fault-simulation run).
  explicit ConfigurationSpace(std::vector<std::string> opamp_names);

  std::size_t OpampCount() const { return opamps_.size(); }
  const std::vector<std::string>& OpampNames() const { return opamps_; }

  /// 2^n.
  std::size_t ConfigurationCount() const;

  /// Configuration C_i.
  ConfigVector At(std::size_t index) const;

  /// Names of the opamps a configuration drives into follower mode — the
  /// paper's configuration->opamp mapping (Table 3).
  std::vector<std::string> FollowerOpamps(const ConfigVector& cv) const;

  /// All 2^n configurations in index order.
  std::vector<ConfigVector> All() const;

  /// All configurations except the transparent one — the set the paper
  /// uses for passive-component faults (C_0 ... C_6 on the biquad).
  std::vector<ConfigVector> AllNonTransparent() const;

  /// Configurations with at most `k` opamps in follower mode (including
  /// C_0).  This is the structural pre-selection suggested in the paper's
  /// conclusion for larger circuits, where 2^n explodes.
  std::vector<ConfigVector> UpToKFollowers(std::size_t k) const;

 private:
  std::vector<std::string> opamps_;
};

}  // namespace mcdft::core
