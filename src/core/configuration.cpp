#include "core/configuration.hpp"

#include <algorithm>

namespace mcdft::core {

ConfigVector::ConfigVector(std::size_t bit_count) : bits_(bit_count, false) {
  if (bit_count == 0) {
    throw util::OptimizationError("configuration vector needs >= 1 bit");
  }
}

ConfigVector ConfigVector::FromIndex(std::size_t index, std::size_t bit_count) {
  ConfigVector cv(bit_count);
  if (bit_count >= 64 || index >= (std::size_t{1} << bit_count)) {
    throw util::OptimizationError("configuration index " +
                                  std::to_string(index) + " out of range");
  }
  // sel_1 is the most significant bit of the paper's index.
  for (std::size_t k = 0; k < bit_count; ++k) {
    cv.bits_[k] = (index >> (bit_count - 1 - k)) & 1u;
  }
  return cv;
}

ConfigVector ConfigVector::FromBits(const std::string& bits) {
  if (bits.empty()) {
    throw util::OptimizationError("empty configuration bit string");
  }
  ConfigVector cv(bits.size());
  for (std::size_t k = 0; k < bits.size(); ++k) {
    if (bits[k] == '1') {
      cv.bits_[k] = true;
    } else if (bits[k] != '0') {
      throw util::OptimizationError("bad configuration bit string '" + bits +
                                    "'");
    }
  }
  return cv;
}

bool ConfigVector::SelectionOf(std::size_t k) const {
  if (k >= bits_.size()) {
    throw util::OptimizationError("selection bit " + std::to_string(k) +
                                  " out of range");
  }
  return bits_[k];
}

void ConfigVector::SetSelection(std::size_t k, bool follower) {
  if (k >= bits_.size()) {
    throw util::OptimizationError("selection bit " + std::to_string(k) +
                                  " out of range");
  }
  bits_[k] = follower;
}

std::size_t ConfigVector::Index() const {
  std::size_t idx = 0;
  for (bool b : bits_) idx = (idx << 1) | (b ? 1u : 0u);
  return idx;
}

std::string ConfigVector::Name() const {
  return "C" + std::to_string(Index());
}

std::string ConfigVector::BitString() const {
  std::string s;
  s.reserve(bits_.size());
  for (bool b : bits_) s += b ? '1' : '0';
  return s;
}

std::vector<std::size_t> ConfigVector::FollowerPositions() const {
  std::vector<std::size_t> out;
  for (std::size_t k = 0; k < bits_.size(); ++k) {
    if (bits_[k]) out.push_back(k);
  }
  return out;
}

std::size_t ConfigVector::FollowerCount() const {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), true));
}

bool ConfigVector::IsFunctional() const { return FollowerCount() == 0; }

bool ConfigVector::IsTransparent() const {
  return FollowerCount() == bits_.size();
}

ConfigurationSpace::ConfigurationSpace(std::vector<std::string> opamp_names)
    : opamps_(std::move(opamp_names)) {
  if (opamps_.empty()) {
    throw util::OptimizationError("configuration space over zero opamps");
  }
  if (opamps_.size() > 20) {
    throw util::OptimizationError(
        "configuration space over " + std::to_string(opamps_.size()) +
        " opamps (2^n too large); use UpToKFollowers-style pre-selection");
  }
}

std::size_t ConfigurationSpace::ConfigurationCount() const {
  return std::size_t{1} << opamps_.size();
}

ConfigVector ConfigurationSpace::At(std::size_t index) const {
  return ConfigVector::FromIndex(index, opamps_.size());
}

std::vector<std::string> ConfigurationSpace::FollowerOpamps(
    const ConfigVector& cv) const {
  if (cv.BitCount() != opamps_.size()) {
    throw util::OptimizationError(
        "configuration vector does not match this configuration space");
  }
  std::vector<std::string> out;
  for (std::size_t k : cv.FollowerPositions()) out.push_back(opamps_[k]);
  return out;
}

std::vector<ConfigVector> ConfigurationSpace::All() const {
  std::vector<ConfigVector> out;
  out.reserve(ConfigurationCount());
  for (std::size_t i = 0; i < ConfigurationCount(); ++i) out.push_back(At(i));
  return out;
}

std::vector<ConfigVector> ConfigurationSpace::AllNonTransparent() const {
  std::vector<ConfigVector> out = All();
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const ConfigVector& cv) {
                             return cv.IsTransparent();
                           }),
            out.end());
  return out;
}

std::vector<ConfigVector> ConfigurationSpace::UpToKFollowers(
    std::size_t k) const {
  std::vector<ConfigVector> out;
  for (std::size_t i = 0; i < ConfigurationCount(); ++i) {
    ConfigVector cv = At(i);
    if (cv.FollowerCount() <= k) out.push_back(cv);
  }
  return out;
}

}  // namespace mcdft::core
