#include "core/checkpoint.hpp"

#include <cmath>

namespace mcdft::core {

namespace json = util::json;

namespace {

faults::FaultKind KindFromName(const std::string& name) {
  for (const faults::FaultKind kind :
       {faults::FaultKind::kDeviationUp, faults::FaultKind::kDeviationDown,
        faults::FaultKind::kOpen, faults::FaultKind::kShort,
        faults::FaultKind::kGainDegradation,
        faults::FaultKind::kBandwidthDegradation}) {
    if (faults::FaultKindName(kind) == name) return kind;
  }
  throw CheckpointError("unknown fault kind '" + name + "'");
}

json::Value MaskToJson(const std::vector<bool>& mask) {
  std::string s(mask.size(), '0');
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) s[i] = '1';
  }
  return json::Value::Str(std::move(s));
}

std::vector<bool> MaskFromJson(const json::Value& v, std::size_t expect,
                               const char* what) {
  const std::string& s = v.AsString();
  if (s.size() != expect) {
    throw CheckpointError(std::string(what) + " mask has " +
                          std::to_string(s.size()) + " bits, want " +
                          std::to_string(expect));
  }
  std::vector<bool> mask(s.size(), false);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '0' && s[i] != '1') {
      throw CheckpointError(std::string(what) + " mask has non-binary digit");
    }
    mask[i] = s[i] == '1';
  }
  return mask;
}

template <typename T>
json::Value NumbersToJson(const std::vector<T>& values) {
  json::Value a = json::Value::Array();
  for (const T v : values) a.PushBack(json::Value::Number(static_cast<double>(v)));
  return a;
}

template <typename T>
std::vector<T> NumbersFromJson(const json::Value& v, std::size_t expect,
                               const char* what) {
  if (!v.IsArray() || v.Size() != expect) {
    throw CheckpointError(std::string(what) + " has " +
                          std::to_string(v.IsArray() ? v.Size() : 0) +
                          " entries, want " + std::to_string(expect));
  }
  std::vector<T> out;
  out.reserve(v.Size());
  for (const json::Value& x : v.Items()) {
    out.push_back(static_cast<T>(x.AsDouble()));
  }
  return out;
}

json::Value ComplexToJson(const std::vector<std::complex<double>>& values) {
  json::Value a = json::Value::Array();
  for (const auto& z : values) {
    a.PushBack(json::Value::Number(z.real()));
    a.PushBack(json::Value::Number(z.imag()));
  }
  return a;
}

std::vector<std::complex<double>> ComplexFromJson(const json::Value& v,
                                                  std::size_t expect,
                                                  const char* what) {
  if (!v.IsArray() || v.Size() != 2 * expect) {
    throw CheckpointError(std::string(what) + " has " +
                          std::to_string(v.IsArray() ? v.Size() : 0) +
                          " scalars, want " + std::to_string(2 * expect));
  }
  std::vector<std::complex<double>> out;
  out.reserve(expect);
  for (std::size_t i = 0; i < expect; ++i) {
    out.emplace_back(v.At(2 * i).AsDouble(), v.At(2 * i + 1).AsDouble());
  }
  return out;
}

json::Value FaultToJson(const faults::Fault& f) {
  json::Value o = json::Value::Object();
  o.Set("device", json::Value::Str(f.Device()));
  o.Set("kind", json::Value::Str(std::string(faults::FaultKindName(f.Kind()))));
  o.Set("magnitude", json::Value::Number(f.Magnitude()));
  return o;
}

faults::Fault FaultFromJson(const json::Value& v) {
  return faults::Fault(v.Get("device").AsString(),
                       KindFromName(v.Get("kind").AsString()),
                       v.Get("magnitude").AsDouble());
}

json::Value DetectabilityToJson(const testability::FaultDetectability& fd) {
  json::Value o = json::Value::Object();
  o.Set("detectable", json::Value::Bool(fd.detectable));
  o.Set("omega_detectability", json::Value::Number(fd.omega_detectability));
  o.Set("peak_deviation", json::Value::Number(fd.peak_deviation));
  o.Set("peak_frequency_hz", json::Value::Number(fd.peak_frequency_hz));
  json::Value region = json::Value::Object();
  region.Set("mask", MaskToJson(fd.region.mask));
  region.Set("magnitude_mask", MaskToJson(fd.region.magnitude_mask));
  region.Set("deviation", NumbersToJson(fd.region.deviation));
  region.Set("magnitude_deviation",
             NumbersToJson(fd.region.magnitude_deviation));
  json::Value intervals = json::Value::Array();
  for (const auto& [lo, hi] : fd.region.intervals) {
    intervals.PushBack(json::Value::Number(lo));
    intervals.PushBack(json::Value::Number(hi));
  }
  region.Set("intervals", std::move(intervals));
  region.Set("measure", json::Value::Number(fd.region.measure));
  o.Set("region", std::move(region));
  return o;
}

testability::FaultDetectability DetectabilityFromJson(
    const json::Value& v, const faults::Fault& fault, std::size_t points) {
  testability::FaultDetectability fd(fault);
  fd.detectable = v.Get("detectable").AsBool();
  fd.omega_detectability = v.Get("omega_detectability").AsDouble();
  fd.peak_deviation = v.Get("peak_deviation").AsDouble();
  fd.peak_frequency_hz = v.Get("peak_frequency_hz").AsDouble();
  const json::Value& region = v.Get("region");
  fd.region.mask = MaskFromJson(region.Get("mask"), points, "region");
  fd.region.magnitude_mask =
      MaskFromJson(region.Get("magnitude_mask"), points, "region magnitude");
  fd.region.deviation =
      NumbersFromJson<float>(region.Get("deviation"), points, "deviation");
  fd.region.magnitude_deviation = NumbersFromJson<float>(
      region.Get("magnitude_deviation"), points, "magnitude deviation");
  const json::Value& intervals = region.Get("intervals");
  if (!intervals.IsArray() || intervals.Size() % 2 != 0) {
    throw CheckpointError("region intervals must hold [lo, hi] pairs");
  }
  for (std::size_t i = 0; i < intervals.Size(); i += 2) {
    fd.region.intervals.emplace_back(intervals.At(i).AsDouble(),
                                     intervals.At(i + 1).AsDouble());
  }
  fd.region.measure = region.Get("measure").AsDouble();
  return fd;
}

json::Value ManifestToJson(const ShardManifest& m) {
  json::Value o = json::Value::Object();
  json::Value shard = json::Value::Object();
  shard.Set("index", json::Value::Number(
                         static_cast<std::uint64_t>(m.shard.index)));
  shard.Set("count", json::Value::Number(
                         static_cast<std::uint64_t>(m.shard.count)));
  o.Set("shard", std::move(shard));
  o.Set("circuit", json::Value::Str(m.circuit));
  o.Set("content_hash", json::Value::Str(m.content_hash));
  json::Value configs = json::Value::Array();
  for (const auto& bits : m.config_bits) configs.PushBack(json::Value::Str(bits));
  o.Set("configs", std::move(configs));
  json::Value flist = json::Value::Array();
  for (const auto& f : m.fault_list) flist.PushBack(FaultToJson(f));
  o.Set("faults", std::move(flist));
  json::Value band = json::Value::Object();
  band.Set("f_lo_hz", json::Value::Number(m.band_f_lo));
  band.Set("f_hi_hz", json::Value::Number(m.band_f_hi));
  band.Set("points_per_decade",
           json::Value::Number(
               static_cast<std::uint64_t>(m.band_points_per_decade)));
  o.Set("band", std::move(band));
  o.Set("probe_label", json::Value::Str(m.probe_label));
  return o;
}

ShardManifest ManifestFromJson(const json::Value& v) {
  ShardManifest m;
  const json::Value& shard = v.Get("shard");
  m.shard.index = static_cast<std::size_t>(shard.Get("index").AsDouble());
  m.shard.count = static_cast<std::size_t>(shard.Get("count").AsDouble());
  m.shard.Validate();
  m.circuit = v.Get("circuit").AsString();
  m.content_hash = v.Get("content_hash").AsString();
  for (const json::Value& bits : v.Get("configs").Items()) {
    m.config_bits.push_back(bits.AsString());
  }
  for (const json::Value& f : v.Get("faults").Items()) {
    m.fault_list.push_back(FaultFromJson(f));
  }
  const json::Value& band = v.Get("band");
  m.band_f_lo = band.Get("f_lo_hz").AsDouble();
  m.band_f_hi = band.Get("f_hi_hz").AsDouble();
  m.band_points_per_decade = static_cast<std::size_t>(
      band.Get("points_per_decade").AsDouble());
  m.probe_label = v.Get("probe_label").AsString();
  if (m.config_bits.empty()) {
    throw CheckpointError("manifest has an empty configuration set");
  }
  if (m.fault_list.empty()) {
    throw CheckpointError("manifest has an empty fault list");
  }
  return m;
}

}  // namespace

testability::ReferenceBand ShardManifest::Band() const {
  return testability::ReferenceBand(band_f_lo, band_f_hi,
                                    band_points_per_decade);
}

bool ShardManifest::SameCampaign(const ShardManifest& other) const {
  return content_hash == other.content_hash && circuit == other.circuit &&
         config_bits == other.config_bits && fault_list == other.fault_list &&
         band_f_lo == other.band_f_lo && band_f_hi == other.band_f_hi &&
         band_points_per_decade == other.band_points_per_decade &&
         probe_label == other.probe_label;
}

json::Value ShardToJson(const ShardDocument& doc) {
  json::Value root = json::Value::Object();
  root.Set("schema", json::Value::Str(kShardSchema));
  root.Set("manifest", ManifestToJson(doc.manifest));
  json::Value units = json::Value::Array();
  for (const ShardUnitResult& u : doc.units) {
    json::Value o = json::Value::Object();
    o.Set("config", json::Value::Number(
                        static_cast<std::uint64_t>(u.unit.config)));
    o.Set("fault_begin", json::Value::Number(
                             static_cast<std::uint64_t>(u.unit.fault_begin)));
    o.Set("fault_end", json::Value::Number(
                           static_cast<std::uint64_t>(u.unit.fault_end)));
    json::Value nominal = json::Value::Object();
    nominal.Set("label", json::Value::Str(u.partial.nominal.label));
    nominal.Set("values", ComplexToJson(u.partial.nominal.values));
    o.Set("nominal", std::move(nominal));
    o.Set("threshold", NumbersToJson(u.partial.threshold));
    o.Set("relative_floor", json::Value::Number(u.partial.relative_floor));
    json::Value fl = json::Value::Array();
    for (const auto& fd : u.partial.faults) {
      fl.PushBack(DetectabilityToJson(fd));
    }
    o.Set("faults", std::move(fl));
    units.PushBack(std::move(o));
  }
  root.Set("units", std::move(units));
  return root;
}

ShardDocument ShardFromJson(const json::Value& json) {
  const json::Value* schema = json.Find("schema");
  if (schema == nullptr || !schema->IsString()) {
    throw CheckpointError("missing schema marker (not a shard file?)");
  }
  if (schema->AsString() != kShardSchema) {
    throw CheckpointError("schema-version mismatch: file has '" +
                          schema->AsString() + "', this build reads '" +
                          kShardSchema + "'");
  }
  ShardDocument doc{ManifestFromJson(json.Get("manifest")), {}};
  const ShardManifest& m = doc.manifest;
  const std::vector<double> grid = m.Band().MakeSweep().Frequencies();

  for (const json::Value& o : json.Get("units").Items()) {
    ShardUnit unit;
    unit.config = static_cast<std::size_t>(o.Get("config").AsDouble());
    unit.fault_begin = static_cast<std::size_t>(o.Get("fault_begin").AsDouble());
    unit.fault_end = static_cast<std::size_t>(o.Get("fault_end").AsDouble());
    if (unit.config >= m.config_bits.size() ||
        unit.fault_begin >= unit.fault_end ||
        unit.fault_end > m.fault_list.size()) {
      throw CheckpointError(
          "unit (config " + std::to_string(unit.config) + ", faults [" +
          std::to_string(unit.fault_begin) + ", " +
          std::to_string(unit.fault_end) + ")) is outside the campaign's " +
          std::to_string(m.config_bits.size()) + "x" +
          std::to_string(m.fault_list.size()) + " work matrix");
    }
    ShardUnitResult u{
        unit,
        ConfigResult{ConfigVector::FromBits(m.config_bits[unit.config]),
                     {},
                     {},
                     {}}};
    const json::Value& nominal = o.Get("nominal");
    u.partial.nominal.freqs_hz = grid;
    u.partial.nominal.label = nominal.Get("label").AsString();
    u.partial.nominal.values =
        ComplexFromJson(nominal.Get("values"), grid.size(), "nominal response");
    u.partial.threshold =
        NumbersFromJson<double>(o.Get("threshold"), grid.size(), "threshold");
    u.partial.relative_floor = o.Get("relative_floor").AsDouble();
    const json::Value& fl = o.Get("faults");
    if (!fl.IsArray() ||
        fl.Size() != u.unit.fault_end - u.unit.fault_begin) {
      throw CheckpointError("unit fault results do not match its fault range");
    }
    u.partial.faults.reserve(fl.Size());
    for (std::size_t k = 0; k < fl.Size(); ++k) {
      u.partial.faults.push_back(DetectabilityFromJson(
          fl.At(k), m.fault_list[u.unit.fault_begin + k], grid.size()));
    }
    doc.units.push_back(std::move(u));
  }
  return doc;
}

std::string ShardFileName(const ShardSpec& spec) {
  return "shard-" + spec.Name() + ".json";
}

ShardDocument LoadShardFile(const std::string& path) {
  json::Value parsed;
  try {
    parsed = json::ParseFile(path);
  } catch (const util::Error& e) {
    throw CheckpointError("cannot read shard file '" + path +
                          "' (truncated or corrupt?): " + e.what());
  }
  try {
    return ShardFromJson(parsed);
  } catch (const CheckpointError& e) {
    // Re-wrap so the diagnostic names the offending file (stripping the
    // inner "checkpoint: " prefix the constructor re-adds).
    std::string what = e.what();
    constexpr std::string_view prefix = "checkpoint: ";
    if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
    throw CheckpointError("in shard file '" + path + "': " + what);
  } catch (const util::Error& e) {
    throw CheckpointError("malformed shard file '" + path + "': " + e.what());
  }
}

void WriteShardFile(const ShardDocument& doc, const std::string& path) {
  try {
    json::WriteFileAtomic(ShardToJson(doc), path);
  } catch (const util::Error& e) {
    throw CheckpointError("cannot write shard file '" + path +
                          "': " + e.what());
  }
}

}  // namespace mcdft::core
