#include "core/checkpoint.hpp"

#include <cmath>
#include <fstream>
#include <iterator>

#include "util/crc32.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::core {

namespace json = util::json;
namespace metrics = util::metrics;

namespace {

faults::FaultKind KindFromName(const std::string& name) {
  for (const faults::FaultKind kind :
       {faults::FaultKind::kDeviationUp, faults::FaultKind::kDeviationDown,
        faults::FaultKind::kOpen, faults::FaultKind::kShort,
        faults::FaultKind::kGainDegradation,
        faults::FaultKind::kBandwidthDegradation}) {
    if (faults::FaultKindName(kind) == name) return kind;
  }
  throw CheckpointError("unknown fault kind '" + name + "'");
}

json::Value MaskToJson(const std::vector<bool>& mask) {
  std::string s(mask.size(), '0');
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) s[i] = '1';
  }
  return json::Value::Str(std::move(s));
}

std::vector<bool> MaskFromJson(const json::Value& v, std::size_t expect,
                               const char* what) {
  const std::string& s = v.AsString();
  if (s.size() != expect) {
    throw CheckpointError(std::string(what) + " mask has " +
                          std::to_string(s.size()) + " bits, want " +
                          std::to_string(expect));
  }
  std::vector<bool> mask(s.size(), false);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '0' && s[i] != '1') {
      throw CheckpointError(std::string(what) + " mask has non-binary digit");
    }
    mask[i] = s[i] == '1';
  }
  return mask;
}

template <typename T>
json::Value NumbersToJson(const std::vector<T>& values) {
  json::Value a = json::Value::Array();
  for (const T v : values) a.PushBack(json::Value::Number(static_cast<double>(v)));
  return a;
}

template <typename T>
std::vector<T> NumbersFromJson(const json::Value& v, std::size_t expect,
                               const char* what) {
  if (!v.IsArray() || v.Size() != expect) {
    throw CheckpointError(std::string(what) + " has " +
                          std::to_string(v.IsArray() ? v.Size() : 0) +
                          " entries, want " + std::to_string(expect));
  }
  std::vector<T> out;
  out.reserve(v.Size());
  for (const json::Value& x : v.Items()) {
    out.push_back(static_cast<T>(x.AsDouble()));
  }
  return out;
}

json::Value ComplexToJson(const std::vector<std::complex<double>>& values) {
  json::Value a = json::Value::Array();
  for (const auto& z : values) {
    a.PushBack(json::Value::Number(z.real()));
    a.PushBack(json::Value::Number(z.imag()));
  }
  return a;
}

std::vector<std::complex<double>> ComplexFromJson(const json::Value& v,
                                                  std::size_t expect,
                                                  const char* what) {
  if (!v.IsArray() || v.Size() != 2 * expect) {
    throw CheckpointError(std::string(what) + " has " +
                          std::to_string(v.IsArray() ? v.Size() : 0) +
                          " scalars, want " + std::to_string(2 * expect));
  }
  std::vector<std::complex<double>> out;
  out.reserve(expect);
  for (std::size_t i = 0; i < expect; ++i) {
    out.emplace_back(v.At(2 * i).AsDouble(), v.At(2 * i + 1).AsDouble());
  }
  return out;
}

json::Value FaultToJson(const faults::Fault& f) {
  json::Value o = json::Value::Object();
  o.Set("device", json::Value::Str(f.Device()));
  o.Set("kind", json::Value::Str(std::string(faults::FaultKindName(f.Kind()))));
  o.Set("magnitude", json::Value::Number(f.Magnitude()));
  return o;
}

faults::Fault FaultFromJson(const json::Value& v) {
  return faults::Fault(v.Get("device").AsString(),
                       KindFromName(v.Get("kind").AsString()),
                       v.Get("magnitude").AsDouble());
}

json::Value DetectabilityToJson(const testability::FaultDetectability& fd) {
  json::Value o = json::Value::Object();
  o.Set("detectable", json::Value::Bool(fd.detectable));
  o.Set("omega_detectability", json::Value::Number(fd.omega_detectability));
  o.Set("peak_deviation", json::Value::Number(fd.peak_deviation));
  o.Set("peak_frequency_hz", json::Value::Number(fd.peak_frequency_hz));
  if (fd.quarantined_points > 0) {
    o.Set("quarantined_points",
          json::Value::Number(
              static_cast<std::uint64_t>(fd.quarantined_points)));
  }
  json::Value region = json::Value::Object();
  region.Set("mask", MaskToJson(fd.region.mask));
  region.Set("magnitude_mask", MaskToJson(fd.region.magnitude_mask));
  region.Set("deviation", NumbersToJson(fd.region.deviation));
  region.Set("magnitude_deviation",
             NumbersToJson(fd.region.magnitude_deviation));
  json::Value intervals = json::Value::Array();
  for (const auto& [lo, hi] : fd.region.intervals) {
    intervals.PushBack(json::Value::Number(lo));
    intervals.PushBack(json::Value::Number(hi));
  }
  region.Set("intervals", std::move(intervals));
  region.Set("measure", json::Value::Number(fd.region.measure));
  o.Set("region", std::move(region));
  return o;
}

testability::FaultDetectability DetectabilityFromJson(
    const json::Value& v, const faults::Fault& fault, std::size_t points) {
  testability::FaultDetectability fd(fault);
  fd.detectable = v.Get("detectable").AsBool();
  fd.omega_detectability = v.Get("omega_detectability").AsDouble();
  fd.peak_deviation = v.Get("peak_deviation").AsDouble();
  fd.peak_frequency_hz = v.Get("peak_frequency_hz").AsDouble();
  if (const json::Value* qp = v.Find("quarantined_points")) {
    fd.quarantined_points = static_cast<std::size_t>(qp->AsDouble());
  }
  const json::Value& region = v.Get("region");
  fd.region.mask = MaskFromJson(region.Get("mask"), points, "region");
  fd.region.magnitude_mask =
      MaskFromJson(region.Get("magnitude_mask"), points, "region magnitude");
  fd.region.deviation =
      NumbersFromJson<float>(region.Get("deviation"), points, "deviation");
  fd.region.magnitude_deviation = NumbersFromJson<float>(
      region.Get("magnitude_deviation"), points, "magnitude deviation");
  const json::Value& intervals = region.Get("intervals");
  if (!intervals.IsArray() || intervals.Size() % 2 != 0) {
    throw CheckpointError("region intervals must hold [lo, hi] pairs");
  }
  for (std::size_t i = 0; i < intervals.Size(); i += 2) {
    fd.region.intervals.emplace_back(intervals.At(i).AsDouble(),
                                     intervals.At(i + 1).AsDouble());
  }
  fd.region.measure = region.Get("measure").AsDouble();
  return fd;
}

json::Value ManifestToJson(const ShardManifest& m) {
  json::Value o = json::Value::Object();
  json::Value shard = json::Value::Object();
  shard.Set("index", json::Value::Number(
                         static_cast<std::uint64_t>(m.shard.index)));
  shard.Set("count", json::Value::Number(
                         static_cast<std::uint64_t>(m.shard.count)));
  o.Set("shard", std::move(shard));
  o.Set("circuit", json::Value::Str(m.circuit));
  o.Set("content_hash", json::Value::Str(m.content_hash));
  json::Value configs = json::Value::Array();
  for (const auto& bits : m.config_bits) configs.PushBack(json::Value::Str(bits));
  o.Set("configs", std::move(configs));
  json::Value flist = json::Value::Array();
  for (const auto& f : m.fault_list) flist.PushBack(FaultToJson(f));
  o.Set("faults", std::move(flist));
  json::Value band = json::Value::Object();
  band.Set("f_lo_hz", json::Value::Number(m.band_f_lo));
  band.Set("f_hi_hz", json::Value::Number(m.band_f_hi));
  band.Set("points_per_decade",
           json::Value::Number(
               static_cast<std::uint64_t>(m.band_points_per_decade)));
  o.Set("band", std::move(band));
  o.Set("probe_label", json::Value::Str(m.probe_label));
  return o;
}

ShardManifest ManifestFromJson(const json::Value& v) {
  ShardManifest m;
  const json::Value& shard = v.Get("shard");
  m.shard.index = static_cast<std::size_t>(shard.Get("index").AsDouble());
  m.shard.count = static_cast<std::size_t>(shard.Get("count").AsDouble());
  m.shard.Validate();
  m.circuit = v.Get("circuit").AsString();
  m.content_hash = v.Get("content_hash").AsString();
  for (const json::Value& bits : v.Get("configs").Items()) {
    m.config_bits.push_back(bits.AsString());
  }
  for (const json::Value& f : v.Get("faults").Items()) {
    m.fault_list.push_back(FaultFromJson(f));
  }
  const json::Value& band = v.Get("band");
  m.band_f_lo = band.Get("f_lo_hz").AsDouble();
  m.band_f_hi = band.Get("f_hi_hz").AsDouble();
  m.band_points_per_decade = static_cast<std::size_t>(
      band.Get("points_per_decade").AsDouble());
  m.probe_label = v.Get("probe_label").AsString();
  if (m.config_bits.empty()) {
    throw CheckpointError("manifest has an empty configuration set");
  }
  if (m.fault_list.empty()) {
    throw CheckpointError("manifest has an empty fault list");
  }
  return m;
}

void ValidateUnitRange(const ShardUnit& unit, const ShardManifest& m) {
  if (unit.config >= m.config_bits.size() ||
      unit.fault_begin >= unit.fault_end ||
      unit.fault_end > m.fault_list.size()) {
    throw CheckpointError(
        "unit (config " + std::to_string(unit.config) + ", faults [" +
        std::to_string(unit.fault_begin) + ", " +
        std::to_string(unit.fault_end) + ")) is outside the campaign's " +
        std::to_string(m.config_bits.size()) + "x" +
        std::to_string(m.fault_list.size()) + " work matrix");
  }
}

/// Serialize a unit's result payload (everything but the cell coordinates).
json::Value UnitPayloadToJson(const ShardUnitResult& u) {
  json::Value o = json::Value::Object();
  json::Value nominal = json::Value::Object();
  nominal.Set("label", json::Value::Str(u.partial.nominal.label));
  nominal.Set("values", ComplexToJson(u.partial.nominal.values));
  if (u.partial.nominal.QuarantinedCount() > 0) {
    nominal.Set("quarantined", MaskToJson(u.partial.nominal.quarantined));
  }
  o.Set("nominal", std::move(nominal));
  o.Set("threshold", NumbersToJson(u.partial.threshold));
  o.Set("relative_floor", json::Value::Number(u.partial.relative_floor));
  json::Value fl = json::Value::Array();
  for (const auto& fd : u.partial.faults) {
    fl.PushBack(DetectabilityToJson(fd));
  }
  o.Set("faults", std::move(fl));
  return o;
}

/// Parse a unit's result payload from `holder` into `u.partial`.  For /2
/// records `holder` is the "payload" member; legacy /1 unit objects keep
/// the same fields flat next to the coordinates, so the object itself is
/// passed.
void UnitPayloadFromJson(const json::Value& holder, ShardUnitResult& u,
                         const ShardManifest& m,
                         const std::vector<double>& grid) {
  const json::Value& nominal = holder.Get("nominal");
  u.partial.nominal.freqs_hz = grid;
  u.partial.nominal.label = nominal.Get("label").AsString();
  u.partial.nominal.values =
      ComplexFromJson(nominal.Get("values"), grid.size(), "nominal response");
  if (const json::Value* q = nominal.Find("quarantined")) {
    u.partial.nominal.quarantined =
        MaskFromJson(*q, grid.size(), "nominal quarantine");
  }
  u.partial.threshold =
      NumbersFromJson<double>(holder.Get("threshold"), grid.size(),
                              "threshold");
  u.partial.relative_floor = holder.Get("relative_floor").AsDouble();
  const json::Value& fl = holder.Get("faults");
  if (!fl.IsArray() || fl.Size() != u.unit.fault_end - u.unit.fault_begin) {
    throw CheckpointError("unit fault results do not match its fault range");
  }
  u.partial.faults.reserve(fl.Size());
  for (std::size_t k = 0; k < fl.Size(); ++k) {
    u.partial.faults.push_back(DetectabilityFromJson(
        fl.At(k), m.fault_list[u.unit.fault_begin + k], grid.size()));
  }
}

ShardUnitResult MakeEmptyUnit(const ShardUnit& unit, const ShardManifest& m) {
  return ShardUnitResult{
      unit,
      ConfigResult{ConfigVector::FromBits(m.config_bits[unit.config]),
                   {},
                   {},
                   {}}};
}

// The record line carries its own CRC32 so damage is localized to the
// records it touches: the CRC covers the record object serialized
// *without* the crc32 member, which is spliced in just before the closing
// brace.  The reader recovers the covered bytes with a reverse search for
// the marker — no re-serialization round trip is relied on.
constexpr std::string_view kCrcMarker = ",\"crc32\":\"";

std::string UnitRecordLine(const ShardUnitResult& u) {
  json::Value o = json::Value::Object();
  o.Set("config", json::Value::Number(
                      static_cast<std::uint64_t>(u.unit.config)));
  o.Set("fault_begin", json::Value::Number(
                           static_cast<std::uint64_t>(u.unit.fault_begin)));
  o.Set("fault_end", json::Value::Number(
                         static_cast<std::uint64_t>(u.unit.fault_end)));
  o.Set("payload", UnitPayloadToJson(u));
  std::string body = o.Serialize(0);
  const std::string crc = util::Crc32Hex(util::Crc32(body));
  body.pop_back();  // the closing '}'
  body.append(kCrcMarker);
  body += crc;
  body += "\"}";
  return body;
}

ShardUnitResult UnitFromRecordLine(const std::string& line,
                                   const ShardManifest& m,
                                   const std::vector<double>& grid) {
  const std::size_t pos = line.rfind(kCrcMarker);
  if (pos == std::string::npos) {
    throw CheckpointError("unit record has no crc32 field");
  }
  std::string covered = line.substr(0, pos);
  covered += '}';
  const std::string computed = util::Crc32Hex(util::Crc32(covered));
  json::Value o;
  try {
    o = json::Parse(line);
  } catch (const util::Error& e) {
    throw CheckpointError(std::string("unit record is not valid JSON: ") +
                          e.what());
  }
  const std::string& stored = o.Get("crc32").AsString();
  if (stored != computed) {
    throw CheckpointError("unit record failed its CRC check (stored " +
                          stored + ", computed " + computed + ")");
  }
  ShardUnit unit;
  unit.config = static_cast<std::size_t>(o.Get("config").AsDouble());
  unit.fault_begin = static_cast<std::size_t>(o.Get("fault_begin").AsDouble());
  unit.fault_end = static_cast<std::size_t>(o.Get("fault_end").AsDouble());
  ValidateUnitRange(unit, m);
  ShardUnitResult u = MakeEmptyUnit(unit, m);
  UnitPayloadFromJson(o.Get("payload"), u, m, grid);
  return u;
}

/// Legacy "mcdft.shard/1" single-document loader (schema already checked).
ShardDocument ShardFromJsonV1(const json::Value& json) {
  ShardDocument doc{ManifestFromJson(json.Get("manifest")), {}};
  const ShardManifest& m = doc.manifest;
  const std::vector<double> grid = m.Band().MakeSweep().Frequencies();

  for (const json::Value& o : json.Get("units").Items()) {
    ShardUnit unit;
    unit.config = static_cast<std::size_t>(o.Get("config").AsDouble());
    unit.fault_begin = static_cast<std::size_t>(o.Get("fault_begin").AsDouble());
    unit.fault_end = static_cast<std::size_t>(o.Get("fault_end").AsDouble());
    ValidateUnitRange(unit, m);
    ShardUnitResult u = MakeEmptyUnit(unit, m);
    UnitPayloadFromJson(o, u, m, grid);
    doc.units.push_back(std::move(u));
  }
  return doc;
}

[[noreturn]] void ThrowSchemaMismatch(const std::string& found) {
  throw CheckpointError("schema-version mismatch: file has '" + found +
                        "', this build reads '" + kShardSchema +
                        "' (and legacy '" + kShardSchemaV1 + "')");
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("cannot read shard file '" + path +
                          "' (truncated or corrupt?): open failed");
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw CheckpointError("cannot read shard file '" + path +
                          "' (truncated or corrupt?): read failed");
  }
  return text;
}

/// Re-throw a checkpoint diagnostic so it names the offending file
/// (stripping the inner "checkpoint: " prefix the constructor re-adds).
[[noreturn]] void RethrowNamingPath(const std::string& path,
                                    const util::Error& e) {
  std::string what = e.what();
  constexpr std::string_view prefix = "checkpoint: ";
  if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
  throw CheckpointError("in shard file '" + path + "': " + what);
}

}  // namespace

testability::ReferenceBand ShardManifest::Band() const {
  return testability::ReferenceBand(band_f_lo, band_f_hi,
                                    band_points_per_decade);
}

bool ShardManifest::SameCampaign(const ShardManifest& other) const {
  return content_hash == other.content_hash && circuit == other.circuit &&
         config_bits == other.config_bits && fault_list == other.fault_list &&
         band_f_lo == other.band_f_lo && band_f_hi == other.band_f_hi &&
         band_points_per_decade == other.band_points_per_decade &&
         probe_label == other.probe_label;
}

std::string ShardToText(const ShardDocument& doc) {
  json::Value head = json::Value::Object();
  head.Set("schema", json::Value::Str(kShardSchema));
  head.Set("manifest", ManifestToJson(doc.manifest));
  std::string text = head.Serialize(0);
  text += '\n';
  for (const ShardUnitResult& u : doc.units) {
    text += UnitRecordLine(u);
    text += '\n';
  }
  return text;
}

ShardDocument ShardFromText(const std::string& text, ShardSalvage* salvage) {
  // A legacy /1 checkpoint (or a unit-less /2 header) is one complete JSON
  // value; a /2 file with units is JSONL and never parses whole.
  bool whole_ok = false;
  json::Value whole;
  try {
    whole = json::Parse(text);
    whole_ok = true;
  } catch (const util::Error&) {
  }
  if (whole_ok) {
    const json::Value* schema = whole.Find("schema");
    if (schema == nullptr || !schema->IsString()) {
      throw CheckpointError("missing schema marker (not a shard file?)");
    }
    ShardDocument doc;
    if (schema->AsString() == kShardSchemaV1) {
      // Legacy documents have no per-unit CRC: they load all-or-nothing on
      // both the strict and the salvage path.
      doc = ShardFromJsonV1(whole);
    } else if (schema->AsString() == kShardSchema) {
      doc = ShardDocument{ManifestFromJson(whole.Get("manifest")), {}};
    } else {
      ThrowSchemaMismatch(schema->AsString());
    }
    if (salvage != nullptr) salvage->units_loaded = doc.units.size();
    return doc;
  }

  const std::size_t nl = text.find('\n');
  const std::string head_text =
      text.substr(0, nl == std::string::npos ? text.size() : nl);
  json::Value head;
  try {
    head = json::Parse(head_text);
  } catch (const util::Error& e) {
    throw CheckpointError(
        std::string("checkpoint header line is unreadable (truncated or "
                    "corrupt?): ") +
        e.what());
  }
  const json::Value* schema = head.Find("schema");
  if (schema == nullptr || !schema->IsString()) {
    throw CheckpointError("missing schema marker (not a shard file?)");
  }
  if (schema->AsString() != kShardSchema) {
    ThrowSchemaMismatch(schema->AsString());
  }
  ShardDocument doc{ManifestFromJson(head.Get("manifest")), {}};
  const std::vector<double> grid =
      doc.manifest.Band().MakeSweep().Frequencies();

  std::size_t line_no = 1;
  std::size_t start = nl == std::string::npos ? text.size() : nl + 1;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    const bool terminated = end != std::string::npos;
    const std::string line =
        text.substr(start, (terminated ? end : text.size()) - start);
    start = terminated ? end + 1 : text.size();
    ++line_no;
    if (line.empty()) continue;

    std::string damage;
    if (!terminated) {
      // The writer always terminates records, so a missing newline means
      // the tail of the file is gone.
      damage = "record is truncated (file ends mid-line)";
    } else if (util::faultpoint::AnyArmed() &&
               util::faultpoint::ShouldFail("checkpoint.read.unit")) {
      damage = "injected read fault (faultpoint checkpoint.read.unit)";
    }
    if (damage.empty()) {
      try {
        doc.units.push_back(UnitFromRecordLine(line, doc.manifest, grid));
        continue;
      } catch (const util::Error& e) {
        damage = e.what();
        constexpr std::string_view prefix = "checkpoint: ";
        if (damage.rfind(prefix, 0) == 0) damage.erase(0, prefix.size());
      }
    }
    const std::string diagnostic =
        "unit record at line " + std::to_string(line_no) + ": " + damage;
    if (salvage == nullptr) throw CheckpointError(diagnostic);
    salvage->damaged.push_back(diagnostic);
  }
  if (salvage != nullptr) salvage->units_loaded = doc.units.size();
  return doc;
}

std::string ShardFileName(const ShardSpec& spec) {
  return "shard-" + spec.Name() + ".json";
}

ShardDocument LoadShardFile(const std::string& path) {
  const std::string text = ReadFileText(path);
  try {
    return ShardFromText(text);
  } catch (const CheckpointError& e) {
    RethrowNamingPath(path, e);
  } catch (const util::Error& e) {
    throw CheckpointError("malformed shard file '" + path + "': " + e.what());
  }
}

ShardDocument SalvageShardFile(const std::string& path,
                               ShardSalvage& salvage) {
  const std::string text = ReadFileText(path);
  ShardDocument doc;
  try {
    doc = ShardFromText(text, &salvage);
  } catch (const CheckpointError& e) {
    RethrowNamingPath(path, e);
  } catch (const util::Error& e) {
    throw CheckpointError("malformed shard file '" + path + "': " + e.what());
  }
  if (!salvage.damaged.empty()) {
    metrics::GetCounter("core.checkpoint.damaged_units")
        .Add(salvage.damaged.size());
    metrics::GetCounter("core.checkpoint.salvaged_units")
        .Add(salvage.units_loaded);
  }
  return doc;
}

void WriteShardFile(const ShardDocument& doc, const std::string& path) {
  try {
    json::WriteTextFileAtomic(ShardToText(doc), path);
  } catch (const util::Error& e) {
    throw CheckpointError("cannot write shard file '" + path +
                          "': " + e.what());
  }
}

}  // namespace mcdft::core
