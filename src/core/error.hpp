// Structured error taxonomy for the resilience layer.
//
// Failures that the campaign engine reacts to programmatically (retry
// ladder, quarantine, checkpoint salvage) are reported as `McdftError`
// carrying a machine-checkable category plus a free-form context string.
// The class derives from `util::Error`, so existing `catch (util::Error&)`
// handlers — including the CLI's top-level one — keep working unchanged.
//
// Header-only on purpose: the linalg layer throws these, and a header
// under `core/` keeps the taxonomy in one place without adding a link
// dependency from mcdft_linalg up to mcdft_core.
#pragma once

#include <string>
#include <string_view>

#include "util/error.hpp"

namespace mcdft::core {

/// What went wrong, as a machine-checkable enum.  The retry ladder and the
/// checkpoint salvage path branch on these; the names are also the stable
/// strings used in run reports and diagnostics.
enum class ErrorCategory {
  kSingularSystem,         ///< LU factorization hit a (near-)zero pivot
  kNonFiniteResult,        ///< a solve produced NaN/Inf in an observed value
  kDeltaExtractionFailed,  ///< fault stamp delta could not be decomposed
  kCheckpointCorrupt,      ///< checkpoint failed schema/CRC/parse validation
  kIoFailure,              ///< filesystem-level read/write/rename failure
  kInjected,               ///< fired by an armed util/faultpoint (tests, CI)
};

/// Stable name for a category (used in diagnostics and run reports).
constexpr std::string_view ErrorCategoryName(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::kSingularSystem: return "SingularSystem";
    case ErrorCategory::kNonFiniteResult: return "NonFiniteResult";
    case ErrorCategory::kDeltaExtractionFailed: return "DeltaExtractionFailed";
    case ErrorCategory::kCheckpointCorrupt: return "CheckpointCorrupt";
    case ErrorCategory::kIoFailure: return "IoFailure";
    case ErrorCategory::kInjected: return "Injected";
  }
  return "Unknown";
}

/// Categorized failure.  `Context()` names the failing site (matrix step,
/// file path, faultpoint name, ...) for diagnostics; the category is what
/// recovery code should branch on.
class McdftError : public util::Error {
 public:
  McdftError(ErrorCategory category, const std::string& context)
      : util::Error(std::string(ErrorCategoryName(category)) + ": " + context),
        category_(category),
        context_(context) {}

  ErrorCategory Category() const noexcept { return category_; }
  const std::string& Context() const noexcept { return context_; }

 private:
  ErrorCategory category_;
  std::string context_;
};

}  // namespace mcdft::core
