// Configuration pre-selection — the solution the paper's conclusion
// proposes for the fault-simulation bottleneck: "using structural
// information to select a first subset of configurations that will be
// candidate for the simulation process".
//
// The screen runs a *cheap* sensitivity sweep per candidate configuration
// (coarse frequency grid, perturbation = the fault magnitude, no
// Monte-Carlo tolerance envelope) to predict each configuration's
// detectability row, then greedily keeps a small complementary subset that
// covers every predicted-detectable fault (plus the functional
// configuration and optional extra rows for omega-detectability headroom).
// Only the kept configurations go through the expensive full campaign.
#pragma once

#include "core/campaign.hpp"
#include "testability/sensitivity.hpp"

namespace mcdft::core {

/// Pre-selection options.
struct PreselectionOptions {
  /// Screening grid density (the full campaign default is 50).
  std::size_t points_per_decade = 10;

  /// Tester-accuracy part of the predicted detection threshold (should
  /// match the full campaign's criteria.epsilon).
  double predicted_epsilon = 0.08;

  /// Process tolerance used for the analytic envelope proxy.  The screen
  /// models the campaign's Monte-Carlo tolerance envelope at zero extra
  /// cost as  envelope(w) ~ envelope_scale * tolerance * sum_j |S_j(w)|
  /// (the worst-case linear superposition of all fault-site sensitivities,
  /// derated because a sampled maximum does not reach the worst case).
  /// This is what lets the screen *see* tolerance masking: the functional
  /// configuration has many live sensitivities and thus a high threshold,
  /// an isolating configuration has few.  Should match the campaign's
  /// tolerance model; set to 0 to disable.
  double component_tolerance = 0.03;
  double envelope_scale = 0.6;

  /// Extra configurations kept beyond the covering subset, ranked by
  /// predicted fault count (headroom for omega-detectability).
  std::size_t extra_configs = 2;

  /// Band anchor (Hz); unset = estimate from the functional configuration
  /// exactly like the full campaign does.
  std::optional<double> anchor_hz;
  double decades_below = 2.0;
  double decades_above = 2.0;

  spice::MnaOptions mna;
};

/// Result of the screening pass.
struct PreselectionResult {
  /// The selected candidate subset (always includes the functional
  /// configuration), in the candidate list's order.
  std::vector<ConfigVector> selected;

  /// Predicted detectability matrix over ALL candidates (screening rows).
  std::vector<std::vector<bool>> predicted;

  /// Candidate order used for `predicted` (== the input candidates).
  std::vector<ConfigVector> candidates;

  /// Faults predicted undetectable in every candidate configuration.
  std::vector<faults::Fault> predicted_undetectable;

  /// AC sweeps spent by the screen (cost accounting for the ablation).
  std::size_t sweeps_used = 0;
};

/// Screen `candidates` and return the subset worth full fault simulation.
/// Throws AnalysisError on empty inputs.
PreselectionResult PreselectConfigurations(
    const DftCircuit& circuit, const std::vector<faults::Fault>& fault_list,
    const std::vector<ConfigVector>& candidates,
    const PreselectionOptions& options = {});

}  // namespace mcdft::core
