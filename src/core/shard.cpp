#include "core/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>

#include "core/checkpoint.hpp"
#include "spice/writer.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace mcdft::core {

namespace metrics = util::metrics;

void ShardSpec::Validate() const {
  if (count == 0) {
    throw util::AnalysisError("shard count must be >= 1");
  }
  if (index >= count) {
    throw util::AnalysisError("shard index " + std::to_string(index) +
                              " out of range for " + std::to_string(count) +
                              " shards");
  }
}

std::string ShardSpec::Name() const {
  return std::to_string(index) + "of" + std::to_string(count);
}

ShardSpec ParseShardSpec(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    throw util::AnalysisError("shard spec must be 'i/N', got '" + text + "'");
  }
  ShardSpec spec;
  try {
    std::size_t parsed = 0;
    spec.index = std::stoul(text.substr(0, slash), &parsed);
    if (parsed != slash) throw std::invalid_argument(text);
    const std::string count_text = text.substr(slash + 1);
    spec.count = std::stoul(count_text, &parsed);
    if (parsed != count_text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw util::AnalysisError("shard spec must be 'i/N', got '" + text + "'");
  }
  spec.Validate();
  return spec;
}

std::pair<std::size_t, std::size_t> ShardCellRange(std::size_t config_count,
                                                   std::size_t fault_count,
                                                   const ShardSpec& spec) {
  spec.Validate();
  // Same cut points as util::ParallelForRange's static partition: shard w
  // owns [w*cells/count, (w+1)*cells/count).
  const std::size_t cells = config_count * fault_count;
  return {spec.index * cells / spec.count,
          (spec.index + 1) * cells / spec.count};
}

std::vector<ShardUnit> ShardUnits(std::size_t config_count,
                                  std::size_t fault_count,
                                  const ShardSpec& spec) {
  const auto [begin, end] = ShardCellRange(config_count, fault_count, spec);
  std::vector<ShardUnit> units;
  for (std::size_t cell = begin; cell < end;) {
    const std::size_t config = cell / fault_count;
    const std::size_t config_end = (config + 1) * fault_count;
    ShardUnit unit;
    unit.config = config;
    unit.fault_begin = cell % fault_count;
    unit.fault_end = std::min(end, config_end) - config * fault_count;
    units.push_back(unit);
    cell = std::min(end, config_end);
  }
  return units;
}

std::string Fnv1a64Hex(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

namespace {

void AppendExact(std::string& blob, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  blob += buf;
}

}  // namespace

std::string CampaignContentHash(const DftCircuit& circuit,
                                const std::vector<faults::Fault>& fault_list,
                                const std::vector<ConfigVector>& configs,
                                const CampaignOptions& options) {
  DftCircuit clone = circuit.Clone();
  ScopedConfiguration functional(
      clone, ConfigVector(clone.ConfigurableOpamps().size()));
  std::string blob = spice::WriteDeck(clone.Circuit());
  blob += "|output=" + circuit.OutputNode();
  for (const auto& f : fault_list) {
    blob += "|fault=" + f.Device() + ":";
    blob += faults::FaultKindName(f.Kind());
    blob += ":";
    AppendExact(blob, f.Magnitude());
  }
  for (const auto& cv : configs) blob += "|cv=" + cv.BitString();
  // Every option that can change campaign numbers.  Thread count and the
  // factorization cache are deliberately absent: results are invariant to
  // both (see DESIGN.md "Threading & determinism").
  blob += "|eps=";
  AppendExact(blob, options.criteria.epsilon);
  blob += "|floor=";
  AppendExact(blob, options.criteria.relative_floor);
  for (const double e : options.criteria.envelope) {
    blob += "|env=";
    AppendExact(blob, e);
  }
  if (options.tolerance) {
    blob += "|tol=";
    AppendExact(blob, options.tolerance->component_tolerance);
    blob += "|samples=" + std::to_string(options.tolerance->samples);
    blob += "|seed=" + std::to_string(options.tolerance->seed);
  }
  blob += "|below=";
  AppendExact(blob, options.decades_below);
  blob += "|above=";
  AppendExact(blob, options.decades_above);
  blob += "|ppd=" + std::to_string(options.points_per_decade);
  if (options.anchor_hz) {
    blob += "|anchor=";
    AppendExact(blob, *options.anchor_hz);
  }
  blob += "|backend=" + std::to_string(static_cast<int>(options.mna.backend));
  blob += "|dense=" + std::to_string(options.mna.dense_threshold);
  // The *effective* low-rank gate, not the raw flag: SMW changes results at
  // rounding level (~1e-12), so checkpoints from lowrank and fault-major
  // runs must never merge — while option combinations that resolve to the
  // same path (e.g. lowrank requested but the cache is off) hash alike.
  blob += "|lowrank=";
  blob += spice::LowRankFaultSolvesEnabled(options.mna) ? "1" : "0";
  // Only the on/off gate, never the width: batched SMW solves are
  // bit-identical at every batch width, so runs differing only in width
  // may share checkpoints.  (The gate itself is likewise bit-identical to
  // unbatched today — kept in the hash so a future divergence fails safe.)
  blob += "|batch=";
  blob += spice::BatchedFaultSolvesEnabled(options.mna) ? "1" : "0";
  return Fnv1a64Hex(blob);
}

namespace {

/// Index of `unit` in this shard's unit list, or nullopt.
std::optional<std::size_t> SlotOf(const std::vector<ShardUnit>& units,
                                  const ShardUnit& unit) {
  for (std::size_t k = 0; k < units.size(); ++k) {
    if (units[k] == unit) return k;
  }
  return std::nullopt;
}

}  // namespace

ShardRunResult RunCampaignShard(const DftCircuit& circuit,
                                const std::vector<faults::Fault>& fault_list,
                                const std::vector<ConfigVector>& configs,
                                const CampaignOptions& options,
                                const ShardRunOptions& shard_options) {
  const ShardSpec spec = shard_options.shard;
  spec.Validate();
  if (configs.empty()) {
    throw util::AnalysisError("campaign needs at least one configuration");
  }
  if (shard_options.checkpoint_dir.empty()) {
    throw util::AnalysisError("shard run needs a checkpoint directory");
  }
  metrics::GetCounter("core.shard.runs").Add();
  util::trace::Span run_span("shard.run");

  DftCircuit work = circuit.Clone();
  const CampaignFrame frame = BuildCampaignFrame(work, fault_list, options);

  ShardManifest manifest;
  manifest.shard = spec;
  manifest.circuit = circuit.Name();
  manifest.content_hash =
      CampaignContentHash(circuit, fault_list, configs, options);
  for (const auto& cv : configs) manifest.config_bits.push_back(cv.BitString());
  manifest.fault_list = fault_list;
  manifest.band_f_lo = frame.band.FLow();
  manifest.band_f_hi = frame.band.FHigh();
  manifest.band_points_per_decade = frame.band.PointsPerDecade();
  manifest.probe_label = frame.probe.label;

  const std::vector<ShardUnit> units =
      ShardUnits(configs.size(), fault_list.size(), spec);
  metrics::GetCounter("core.shard.units").Add(units.size());

  std::filesystem::create_directories(shard_options.checkpoint_dir);
  const std::string path =
      (std::filesystem::path(shard_options.checkpoint_dir) /
       ShardFileName(spec))
          .string();

  ShardRunResult result;
  result.shard_path = path;
  result.units_total = units.size();

  // Resume: a valid checkpoint for the same inputs restores its completed
  // units; anything suspicious aborts loudly instead of merging bad data.
  // Damaged unit records are the exception: the per-unit CRCs localize the
  // damage, so the salvaging loader keeps the intact units and this run
  // simply recomputes the dropped ones.
  std::vector<std::optional<ShardUnitResult>> slots(units.size());
  if (std::filesystem::exists(path)) {
    util::trace::Span load_span("checkpoint.load");
    metrics::GetCounter("core.checkpoint.loads").Add();
    ShardSalvage salvage;
    ShardDocument existing = SalvageShardFile(path, salvage);
    result.salvage_diagnostics = std::move(salvage.damaged);
    if (existing.manifest.shard != spec) {
      throw CheckpointError("'" + path + "' belongs to shard " +
                            existing.manifest.shard.Name() +
                            ", this run is shard " + spec.Name());
    }
    if (!existing.manifest.SameCampaign(manifest)) {
      throw CheckpointError(
          "'" + path + "' was written for different campaign inputs (stale " +
          "content hash " + existing.manifest.content_hash + ", expected " +
          manifest.content_hash +
          "): circuit, fault list or options changed; delete the checkpoint "
          "directory to start over");
    }
    for (ShardUnitResult& u : existing.units) {
      const auto slot = SlotOf(units, u.unit);
      if (!slot) {
        throw CheckpointError("'" + path + "' contains unit (config " +
                              std::to_string(u.unit.config) +
                              ") that shard " + spec.Name() + " does not own");
      }
      slots[*slot] = std::move(u);
      ++result.units_resumed;
    }
    metrics::GetCounter("core.checkpoint.resume_hits")
        .Add(result.units_resumed);
  }

  ShardDocument doc{manifest, {}};
  const auto write_checkpoint = [&] {
    util::trace::Span write_span("checkpoint.write");
    doc.units.clear();
    for (const auto& slot : slots) {
      if (slot) doc.units.push_back(*slot);
    }
    // A failed write is tolerated: the atomic protocol leaves the previous
    // checkpoint (and no tmp litter) behind, so the only cost is that a
    // later resume recomputes more units.  Simulation results never abort
    // over checkpoint I/O.
    try {
      WriteShardFile(doc, path);
      metrics::GetCounter("core.checkpoint.writes").Add();
    } catch (const util::Error& e) {
      ++result.checkpoint_write_failures;
      result.last_write_error = e.what();
      metrics::GetCounter("core.checkpoint.write_failures").Add();
    }
  };
  // Persist the manifest immediately: a run killed before its first unit
  // still leaves a resumable (empty) checkpoint behind.
  write_checkpoint();

  for (std::size_t k = 0; k < units.size(); ++k) {
    if (slots[k]) continue;
    if (result.units_run >= shard_options.max_new_units) break;
    const ShardUnit& unit = units[k];

    util::trace::Span unit_span("shard.unit");
    PreparedConfig prepared = [&] {
      util::trace::Span span("shard.prepare");
      return PrepareCampaignConfig(work, frame, configs[unit.config], options);
    }();

    const std::size_t task_count = 1 + unit.fault_end - unit.fault_begin;
    std::vector<spice::FrequencyResponse> responses(task_count);
    {
      util::trace::Span span("shard.simulate");
      if (spice::LowRankFaultSolvesEnabled(options.mna)) {
        // Frequency-major unit: nominal factored once per frequency, the
        // unit's faults applied as SMW rank-updates (parallel over
        // frequency blocks inside SimulateRange).  Each cell stays a pure
        // function of (configured netlist, frequency), so shard merges
        // remain byte-identical to the monolithic run.
        faults::FaultSimulator simulator(prepared.netlist, frame.sweep,
                                         frame.probe, options.mna);
        responses = simulator.SimulateRange(fault_list, unit.fault_begin,
                                            unit.fault_end, options.threads);
      } else {
        util::ParallelForRange(
            options.threads, task_count,
            [&](std::size_t begin, std::size_t end) {
              faults::FaultSimulator simulator(prepared.netlist, frame.sweep,
                                               frame.probe, options.mna);
              for (std::size_t t = begin; t < end; ++t) {
                responses[t] = t == 0
                                   ? simulator.SimulateNominal()
                                   : simulator.SimulateFault(
                                         fault_list[unit.fault_begin + t - 1]);
              }
            });
      }
    }
    slots[k] = ShardUnitResult{
        unit, AssembleConfigRow(configs[unit.config], prepared.criteria,
                                std::move(responses), fault_list,
                                unit.fault_begin, unit.fault_end)};
    ++result.units_run;
    metrics::GetCounter("core.shard.units_run").Add();
    write_checkpoint();
  }

  result.complete = std::all_of(slots.begin(), slots.end(),
                                [](const auto& s) { return s.has_value(); });
  for (const auto& slot : slots) {
    if (slot) result.quarantined_cells += slot->partial.QuarantinedCellCount();
  }
  return result;
}

MergedCampaign MergeShards(const std::vector<std::string>& shard_paths) {
  if (shard_paths.empty()) {
    throw CheckpointError("no shard files to merge");
  }
  util::trace::Span merge_span("shard.merge");
  metrics::GetCounter("core.shard.merges").Add();
  metrics::GetCounter("core.shard.merged_files").Add(shard_paths.size());

  std::vector<std::pair<std::string, ShardDocument>> docs;
  docs.reserve(shard_paths.size());
  {
    util::trace::Span load_span("checkpoint.load");
    for (const std::string& path : shard_paths) {
      metrics::GetCounter("core.checkpoint.loads").Add();
      docs.emplace_back(path, LoadShardFile(path));
    }
  }
  std::sort(docs.begin(), docs.end(), [](const auto& a, const auto& b) {
    return a.second.manifest.shard.index < b.second.manifest.shard.index;
  });

  const ShardManifest& ref = docs.front().second.manifest;
  for (const auto& [path, doc] : docs) {
    if (!doc.manifest.SameCampaign(ref)) {
      throw CheckpointError(
          "'" + path + "' does not belong to the same campaign as '" +
          docs.front().first + "' (content hash " + doc.manifest.content_hash +
          " vs " + ref.content_hash + ")");
    }
  }

  const std::size_t config_count = ref.config_bits.size();
  const std::size_t fault_count = ref.fault_list.size();

  // Coverage: every cell of the work matrix exactly once.
  std::vector<std::vector<const ShardUnitResult*>> by_config(config_count);
  std::vector<std::vector<bool>> covered(config_count,
                                         std::vector<bool>(fault_count, false));
  for (const auto& [path, doc] : docs) {
    for (const ShardUnitResult& u : doc.units) {
      for (std::size_t j = u.unit.fault_begin; j < u.unit.fault_end; ++j) {
        if (covered[u.unit.config][j]) {
          throw CheckpointError("overlapping coverage: cell (config " +
                                std::to_string(u.unit.config) + ", fault " +
                                std::to_string(j) +
                                ") appears twice (second time in '" + path +
                                "')");
        }
        covered[u.unit.config][j] = true;
      }
      by_config[u.unit.config].push_back(&u);
    }
  }
  std::size_t missing = 0;
  std::string first_gap;
  for (std::size_t c = 0; c < config_count; ++c) {
    for (std::size_t j = 0; j < fault_count; ++j) {
      if (!covered[c][j]) {
        if (missing == 0) {
          first_gap = "(config " + std::to_string(c) + ", fault " +
                      std::to_string(j) + ")";
        }
        ++missing;
      }
    }
  }
  if (missing > 0) {
    throw CheckpointError(
        "coverage gap: " + std::to_string(missing) + " of " +
        std::to_string(config_count * fault_count) +
        " cells missing, first at " + first_gap +
        " — are all shards present and complete?");
  }

  // Stitch rows in campaign order.
  util::trace::Span stitch_span("shard.stitch");
  std::vector<ConfigResult> per_config;
  per_config.reserve(config_count);
  for (std::size_t c = 0; c < config_count; ++c) {
    std::vector<const ShardUnitResult*>& parts = by_config[c];
    std::sort(parts.begin(), parts.end(),
              [](const ShardUnitResult* a, const ShardUnitResult* b) {
                return a->unit.fault_begin < b->unit.fault_begin;
              });
    const ConfigResult& first = parts.front()->partial;
    ConfigResult row{first.config, {}, first.nominal, first.threshold};
    row.relative_floor = first.relative_floor;
    row.faults.reserve(fault_count);
    for (const ShardUnitResult* part : parts) {
      const ConfigResult& p = part->partial;
      if (p.nominal.values != row.nominal.values ||
          p.nominal.label != row.nominal.label ||
          p.nominal.quarantined != row.nominal.quarantined ||
          p.threshold != row.threshold ||
          p.relative_floor != row.relative_floor) {
        throw CheckpointError(
            "shards disagree on the nominal response/threshold of config " +
            std::to_string(c) +
            " — checkpoints from different builds or inputs?");
      }
      for (const auto& fd : p.faults) row.faults.push_back(fd);
    }
    per_config.push_back(std::move(row));
  }

  return MergedCampaign{
      CampaignResult(ref.fault_list, std::move(per_config), ref.Band()),
      ref.circuit, docs.size()};
}

}  // namespace mcdft::core
