// Monte-Carlo test-quality evaluation: does the compiled test plan
// actually separate good dies from bad ones?
//
// Two error rates matter on a production tester:
//   - false rejects (yield loss): an in-tolerance circuit fails the plan
//     because process spread pushed a measurement outside its window;
//   - test escapes: a faulty circuit passes the plan because the fault's
//     effect hides inside the windows at the chosen points (possibly
//     masked by the same process spread).
// Both are estimated by sampling: in-tolerance circuits for the first,
// per-fault in-tolerance + fault circuits for the second.  This closes the
// validation loop on the paper's epsilon-as-process-tolerance reading.
#pragma once

#include "core/test_plan.hpp"

namespace mcdft::core {

/// Evaluation options.
struct TestQualityOptions {
  testability::ToleranceModel tolerance;  ///< process spread model
  std::size_t good_samples = 64;   ///< in-tolerance circuits to test
  std::size_t faulty_samples = 16; ///< per fault: tolerance samples + fault
  std::uint64_t seed = 0xd1e5ca3e; ///< deterministic evaluation
  spice::MnaOptions mna;
};

/// Per-fault escape statistics.
struct FaultEscape {
  faults::Fault fault;
  std::size_t escaped = 0;  ///< samples that passed the whole plan
  std::size_t total = 0;
  double EscapeRate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(escaped) / static_cast<double>(total);
  }
};

/// The evaluation result.
struct TestQualityReport {
  std::size_t good_total = 0;
  std::size_t good_rejected = 0;  ///< false rejects (yield loss)
  double FalseRejectRate() const {
    return good_total == 0 ? 0.0
                           : static_cast<double>(good_rejected) /
                                 static_cast<double>(good_total);
  }

  std::vector<FaultEscape> escapes;  ///< one entry per fault in the campaign

  /// Aggregate escape rate over every faulty sample.
  double OverallEscapeRate() const;
};

/// Execute the plan against Monte-Carlo circuit samples.
///
/// `circuit` must be the DFT circuit the campaign was run on (the plan's
/// configurations are applied to it).  A sample passes the plan when every
/// measurement lands inside its acceptance region (vector or magnitude,
/// per `mode`).  Faults not covered by the plan are reported with
/// escaped == total (they trivially escape).
TestQualityReport EvaluateTestQuality(
    const DftCircuit& circuit, const TestPlan& plan,
    const std::vector<faults::Fault>& fault_list,
    MeasurementMode mode = MeasurementMode::kComplex,
    const TestQualityOptions& options = {});

/// Render the report.
std::string RenderTestQuality(const TestQualityReport& report);

}  // namespace mcdft::core
