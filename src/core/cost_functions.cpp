#include "core/cost_functions.hpp"

namespace mcdft::core {

double ConfigCountCost::Cost(const boolcov::Cube& rows, const CampaignResult&,
                             const DftCircuit&) const {
  return static_cast<double>(rows.LiteralCount());
}

boolcov::Cube RequiredOpamps(const boolcov::Cube& rows,
                             const CampaignResult& campaign,
                             const DftCircuit& circuit) {
  boolcov::Cube opamps(circuit.ConfigurableOpamps().size());
  for (std::size_t row : rows.Variables()) {
    if (row >= campaign.PerConfig().size()) {
      throw util::OptimizationError("configuration-set cube row " +
                                    std::to_string(row) +
                                    " outside the campaign");
    }
    for (std::size_t pos :
         campaign.PerConfig()[row].config.FollowerPositions()) {
      opamps.Set(pos);
    }
  }
  return opamps;
}

double OpampCountCost::Cost(const boolcov::Cube& rows,
                            const CampaignResult& campaign,
                            const DftCircuit& circuit) const {
  return static_cast<double>(
      RequiredOpamps(rows, campaign, circuit).LiteralCount());
}

TestTimeCost::TestTimeCost(double seconds_per_point, double reconfig_seconds)
    : seconds_per_point_(seconds_per_point), reconfig_seconds_(reconfig_seconds) {
  if (!(seconds_per_point > 0.0) || !(reconfig_seconds >= 0.0)) {
    throw util::OptimizationError("test-time cost parameters must be positive");
  }
}

double TestTimeCost::Cost(const boolcov::Cube& rows,
                          const CampaignResult& campaign,
                          const DftCircuit&) const {
  const double points =
      static_cast<double>(campaign.Band().MakeSweep().PointCount());
  const double nconf = static_cast<double>(rows.LiteralCount());
  return nconf * (reconfig_seconds_ + points * seconds_per_point_);
}

SiliconAreaCost::SiliconAreaCost(double area_per_configurable_opamp,
                                 double area_per_sel_line)
    : area_per_opamp_(area_per_configurable_opamp),
      area_per_line_(area_per_sel_line) {
  if (!(area_per_opamp_ >= 0.0) || !(area_per_line_ >= 0.0)) {
    throw util::OptimizationError("silicon-area costs must be non-negative");
  }
}

double SiliconAreaCost::Cost(const boolcov::Cube& rows,
                             const CampaignResult& campaign,
                             const DftCircuit& circuit) const {
  const double n = static_cast<double>(
      RequiredOpamps(rows, campaign, circuit).LiteralCount());
  return n * (area_per_opamp_ + area_per_line_);
}

void CompositeCost::Add(std::shared_ptr<const CostFunction> f, double weight) {
  if (!f) throw util::OptimizationError("null cost function component");
  parts_.emplace_back(std::move(f), weight);
}

std::string CompositeCost::Name() const {
  std::string name = "composite(";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i != 0) name += " + ";
    name += parts_[i].first->Name();
  }
  return name + ")";
}

double CompositeCost::Cost(const boolcov::Cube& rows,
                           const CampaignResult& campaign,
                           const DftCircuit& circuit) const {
  double acc = 0.0;
  for (const auto& [f, w] : parts_) acc += w * f->Cost(rows, campaign, circuit);
  return acc;
}

}  // namespace mcdft::core
