// Sharded campaign execution: a deterministic static partition of the
// (configuration x fault) work matrix into `count` contiguous cell ranges,
// so a campaign can run as independent shard processes (CI matrix jobs,
// separate machines) whose checkpoint files merge back into a
// CampaignResult that is bit-identical to the monolithic run.
//
// Partition math mirrors util::ParallelForRange: the flat cell space
// [0, configs*faults) with cell = config*faults + fault is cut at
// `w * cells / count` for w in [0, count].  Cell (c, j)'s value is a pure
// function of the campaign inputs (see the campaign building blocks in
// core/campaign.hpp), so *any* shard count reassembles to the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.hpp"

namespace mcdft::core {

/// Which shard of how many.  The default (0 of 1) is the whole campaign.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  /// Throws AnalysisError unless count >= 1 and index < count.
  void Validate() const;

  /// "0of3" — used in checkpoint file names.
  std::string Name() const;

  bool operator==(const ShardSpec&) const = default;
};

/// Parse "i/N" (e.g. "1/3").  Throws AnalysisError on malformed input.
ShardSpec ParseShardSpec(const std::string& text);

/// One unit of shard work: a configuration row and the contiguous range of
/// fault indices this shard owns on it.  A unit is the checkpoint
/// granularity — it completes (and is persisted) atomically.
struct ShardUnit {
  std::size_t config = 0;       ///< campaign row index
  std::size_t fault_begin = 0;  ///< first owned fault index
  std::size_t fault_end = 0;    ///< one past the last owned fault index

  bool operator==(const ShardUnit&) const = default;
};

/// The shard's contiguous cell range [begin, end) of the flat
/// config-major cell space (`config_count * fault_count` cells).
std::pair<std::size_t, std::size_t> ShardCellRange(std::size_t config_count,
                                                   std::size_t fault_count,
                                                   const ShardSpec& spec);

/// The shard's work units: its cell range split at configuration
/// boundaries, in campaign order.  Every configuration appears in at most
/// one unit per shard; over all shards the units tile the work matrix
/// disjointly with no gaps.
std::vector<ShardUnit> ShardUnits(std::size_t config_count,
                                  std::size_t fault_count,
                                  const ShardSpec& spec);

/// FNV-1a 64-bit hash, hex-encoded.  Stable across platforms and runs.
std::string Fnv1a64Hex(std::string_view data);

/// Content hash binding a checkpoint to its campaign inputs: the circuit
/// (functional-configuration deck), the fault list, the configuration set
/// and every option that influences campaign numbers (thread count
/// excluded — results are thread-count invariant).  Checkpoints and merges
/// refuse inputs whose hash differs.
std::string CampaignContentHash(const DftCircuit& circuit,
                                const std::vector<faults::Fault>& fault_list,
                                const std::vector<ConfigVector>& configs,
                                const CampaignOptions& options);

/// Shard-run controls.
struct ShardRunOptions {
  ShardSpec shard;

  /// Directory for the shard checkpoint file ("shard-<i>of<N>.json").
  /// Created when missing.  Required.
  std::string checkpoint_dir;

  /// Stop after freshly computing this many units (checkpoint intact, run
  /// reported incomplete).  Simulates a mid-campaign kill in tests.
  std::size_t max_new_units = static_cast<std::size_t>(-1);
};

/// Outcome of one shard run.
struct ShardRunResult {
  std::string shard_path;          ///< checkpoint file written
  std::size_t units_total = 0;     ///< units this shard owns
  std::size_t units_resumed = 0;   ///< restored from the checkpoint
  std::size_t units_run = 0;       ///< freshly computed this run
  bool complete = false;           ///< all owned units are in the file

  /// Unit records the salvaging loader had to drop from a damaged
  /// checkpoint (CRC mismatch, truncation, injected read fault); each
  /// entry names the record and what was wrong with it.  The dropped
  /// units were recomputed like any other missing unit.
  std::vector<std::string> salvage_diagnostics;

  /// Checkpoint writes that failed this run (tolerated: the atomic write
  /// protocol leaves the previous checkpoint intact, so a failure only
  /// widens what a later resume recomputes).  The last failure's
  /// diagnostic is kept for reporting.
  std::size_t checkpoint_write_failures = 0;
  std::string last_write_error;

  /// Quarantined (fault, omega) cells across this shard's completed units
  /// (resumed or run) — drives the CLI's degraded-run exit code for
  /// multi-shard runs where no merged campaign exists yet.
  std::size_t quarantined_cells = 0;
};

/// Run one shard of the campaign, checkpointing each completed unit with
/// an atomic rename + fsync.  An existing checkpoint for the same inputs
/// resumes after its last completed unit, salvaging every CRC-intact unit
/// of a damaged file (the dropped units are recomputed); a checkpoint
/// whose manifest does not match (schema, content hash, shard spec) makes
/// the run fail with a CheckpointError rather than silently mixing
/// results.  Checkpoint-write failures are tolerated and counted (see
/// ShardRunResult); the campaign itself never aborts over checkpoint I/O.
ShardRunResult RunCampaignShard(const DftCircuit& circuit,
                                const std::vector<faults::Fault>& fault_list,
                                const std::vector<ConfigVector>& configs,
                                const CampaignOptions& options,
                                const ShardRunOptions& shard_options);

/// A merged set of shard checkpoints.
struct MergedCampaign {
  CampaignResult campaign;
  std::string circuit;         ///< circuit name from the manifests
  std::size_t shard_files = 0; ///< checkpoints merged
};

/// Merge shard checkpoint files back into the full campaign.  Validates
/// every manifest (schema version, identical content hash/band/fault list/
/// configuration set) and the combined coverage (every cell exactly once:
/// no gaps, no overlap; shared nominal rows byte-identical across shards).
/// Throws CheckpointError with a diagnostic naming the offending file on
/// any mismatch.
MergedCampaign MergeShards(const std::vector<std::string>& shard_paths);

}  // namespace mcdft::core
