#include "core/bist.hpp"

#include <algorithm>
#include <limits>

namespace mcdft::core {

std::size_t ToggleCount(const ConfigVector& a, const ConfigVector& b) {
  if (a.BitCount() != b.BitCount()) {
    throw util::OptimizationError("toggle count across different widths");
  }
  std::size_t n = 0;
  for (std::size_t k = 0; k < a.BitCount(); ++k) {
    if (a.SelectionOf(k) != b.SelectionOf(k)) ++n;
  }
  return n;
}

namespace {

std::size_t PathToggles(const ConfigVector& start,
                        const std::vector<ConfigVector>& configs,
                        const std::vector<std::size_t>& order) {
  std::size_t total = 0;
  const ConfigVector* prev = &start;
  for (std::size_t idx : order) {
    total += ToggleCount(*prev, configs[idx]);
    prev = &configs[idx];
  }
  return total;
}

/// Exhaustive branch-and-bound over visit orders (open path from C_0).
void ExactSearch(const ConfigVector& start,
                 const std::vector<ConfigVector>& configs,
                 std::vector<std::size_t>& current, std::vector<bool>& used,
                 std::size_t cost_so_far, const ConfigVector* last,
                 std::size_t& best_cost, std::vector<std::size_t>& best) {
  if (cost_so_far >= best_cost) return;
  if (current.size() == configs.size()) {
    best_cost = cost_so_far;
    best = current;
    return;
  }
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    current.push_back(i);
    const std::size_t step = ToggleCount(last ? *last : start, configs[i]);
    ExactSearch(start, configs, current, used, cost_so_far + step,
                &configs[i], best_cost, best);
    current.pop_back();
    used[i] = false;
  }
}

/// Nearest neighbour + 2-opt improvement.
std::vector<std::size_t> Heuristic(const ConfigVector& start,
                                   const std::vector<ConfigVector>& configs) {
  const std::size_t n = configs.size();
  std::vector<std::size_t> order;
  std::vector<bool> used(n, false);
  const ConfigVector* last = &start;
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_d = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const std::size_t d = ToggleCount(*last, configs[i]);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    used[best] = true;
    order.push_back(best);
    last = &configs[best];
  }
  // 2-opt passes until no improvement.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t a = 0; a + 1 < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        std::vector<std::size_t> candidate = order;
        std::reverse(candidate.begin() + static_cast<std::ptrdiff_t>(a),
                     candidate.begin() + static_cast<std::ptrdiff_t>(b) + 1);
        if (PathToggles(start, configs, candidate) <
            PathToggles(start, configs, order)) {
          order = std::move(candidate);
          improved = true;
        }
      }
    }
  }
  return order;
}

}  // namespace

BistSchedule ScheduleConfigurations(std::vector<ConfigVector> configs,
                                    const BistOptions& options) {
  if (configs.empty()) {
    throw util::OptimizationError("cannot schedule zero configurations");
  }
  const std::size_t width = configs.front().BitCount();
  for (const auto& cv : configs) {
    if (cv.BitCount() != width) {
      throw util::OptimizationError("mixed-width configuration set");
    }
  }
  const ConfigVector start(width);  // power-on state C_0

  // Naive order: by configuration index.
  std::vector<ConfigVector> naive = configs;
  std::sort(naive.begin(), naive.end(),
            [](const ConfigVector& a, const ConfigVector& b) {
              return a.Index() < b.Index();
            });
  BistSchedule schedule;
  {
    const ConfigVector* prev = &start;
    for (const auto& cv : naive) {
      schedule.naive_toggles += ToggleCount(*prev, cv);
      prev = &cv;
    }
  }

  std::vector<std::size_t> order;
  if (configs.size() <= options.exact_limit) {
    std::vector<std::size_t> current;
    std::vector<bool> used(configs.size(), false);
    std::size_t best_cost = std::numeric_limits<std::size_t>::max();
    ExactSearch(start, configs, current, used, 0, nullptr, best_cost, order);
  } else {
    order = Heuristic(start, configs);
  }

  schedule.toggles = PathToggles(start, configs, order);
  schedule.order.reserve(configs.size());
  for (std::size_t idx : order) schedule.order.push_back(configs[idx]);
  return schedule;
}

}  // namespace mcdft::core
