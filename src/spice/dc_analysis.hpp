// DC operating-point analysis for linear circuits: a single MNA solve with
// s = 0 (capacitors open, inductors short, sources at their DC values).
#pragma once

#include <string>
#include <vector>

#include "spice/mna.hpp"

namespace mcdft::spice {

/// Result of a DC operating-point analysis.
struct DcOperatingPoint {
  /// Real node voltages indexed by NodeId (entry 0, ground, is 0).
  std::vector<double> node_voltages;

  /// Voltage at a node.
  double VoltageAt(NodeId node) const;
};

/// Compute the operating point.  Throws NumericError when the DC system is
/// singular (e.g. a capacitively-isolated node).
DcOperatingPoint SolveOperatingPoint(const Netlist& netlist,
                                     MnaOptions options = {});

}  // namespace mcdft::spice
