// Netlist serialization back to the SPICE-subset text accepted by
// spice/parser.hpp (round-trip capable, used by the fault injector's
// diagnostics and by the examples).
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace mcdft::spice {

/// Serialize a netlist as a SPICE-subset deck.  The output starts with a
/// `.title` card and ends with `.end`; parsing it back yields an equivalent
/// netlist (same elements, values, node names and opamp configuration).
std::string WriteDeck(const Netlist& netlist);

/// Serialize a single element as its card text.
std::string WriteCard(const Netlist& netlist, const Element& element);

}  // namespace mcdft::spice
