#include "spice/elements.hpp"

#include <cmath>
#include <numbers>

#include "util/strings.hpp"

namespace mcdft::spice {

std::string_view ElementKindName(ElementKind kind) {
  switch (kind) {
    case ElementKind::kResistor: return "resistor";
    case ElementKind::kCapacitor: return "capacitor";
    case ElementKind::kInductor: return "inductor";
    case ElementKind::kVoltageSource: return "voltage source";
    case ElementKind::kCurrentSource: return "current source";
    case ElementKind::kVcvs: return "vcvs";
    case ElementKind::kVccs: return "vccs";
    case ElementKind::kCcvs: return "ccvs";
    case ElementKind::kCccs: return "cccs";
    case ElementKind::kOpamp: return "opamp";
  }
  return "unknown";
}

Element::Element(std::string name, std::vector<NodeId> nodes)
    : name_(util::ToUpper(name)), nodes_(std::move(nodes)) {}

double Element::Value() const {
  throw util::NetlistError("element " + name_ + " has no principal value");
}

void Element::SetValue(double) {
  throw util::NetlistError("element " + name_ + " has no principal value");
}

namespace {

void CheckPositive(const std::string& name, double v, const char* what) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    throw util::NetlistError(name + ": " + what + " must be positive and finite, got " +
                             std::to_string(v));
  }
}

}  // namespace

// --- Resistor ---------------------------------------------------------

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Element(std::move(name), {a, b}), ohms_(ohms) {
  CheckPositive(Name(), ohms, "resistance");
}

void Resistor::Stamp(StampContext& ctx) const {
  ctx.AddAdmittance(Nodes()[0], Nodes()[1], Complex(1.0 / ohms_, 0.0));
}

std::unique_ptr<Element> Resistor::Clone() const {
  return std::make_unique<Resistor>(*this);
}

void Resistor::SetValue(double value) {
  CheckPositive(Name(), value, "resistance");
  ohms_ = value;
}

std::string Resistor::ParamString() const {
  return util::FormatEngineering(ohms_);
}

// --- Capacitor --------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads)
    : Element(std::move(name), {a, b}), farads_(farads) {
  CheckPositive(Name(), farads, "capacitance");
}

void Capacitor::Stamp(StampContext& ctx) const {
  // Open at DC (s = 0 gives a zero stamp; skip for sparsity).
  if (ctx.Kind() == AnalysisKind::kDc) return;
  ctx.AddAdmittance(Nodes()[0], Nodes()[1], ctx.S() * farads_);
}

std::unique_ptr<Element> Capacitor::Clone() const {
  return std::make_unique<Capacitor>(*this);
}

void Capacitor::SetValue(double value) {
  CheckPositive(Name(), value, "capacitance");
  farads_ = value;
}

std::string Capacitor::ParamString() const {
  return util::FormatEngineering(farads_);
}

// --- Inductor ---------------------------------------------------------

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Element(std::move(name), {a, b}), henries_(henries) {
  CheckPositive(Name(), henries, "inductance");
}

void Inductor::Stamp(StampContext& ctx) const {
  // Branch equation: V_a - V_b - s L I = 0; KCL gets +I at a, -I at b.
  const NodeId a = Nodes()[0];
  const NodeId b = Nodes()[1];
  ctx.AddNodeBranch(a, 0, Complex(1.0, 0.0));
  ctx.AddNodeBranch(b, 0, Complex(-1.0, 0.0));
  ctx.AddBranchNode(0, a, Complex(1.0, 0.0));
  ctx.AddBranchNode(0, b, Complex(-1.0, 0.0));
  ctx.AddBranchBranch(0, 0, -ctx.S() * henries_);
}

std::unique_ptr<Element> Inductor::Clone() const {
  return std::make_unique<Inductor>(*this);
}

void Inductor::SetValue(double value) {
  CheckPositive(Name(), value, "inductance");
  henries_ = value;
}

std::string Inductor::ParamString() const {
  return util::FormatEngineering(henries_);
}

// --- VoltageSource ----------------------------------------------------

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus,
                             double dc, double ac_mag, double ac_phase_deg)
    : Element(std::move(name), {plus, minus}),
      dc_(dc),
      ac_mag_(ac_mag),
      ac_phase_deg_(ac_phase_deg) {}

Complex VoltageSource::AcPhasor() const {
  const double rad = ac_phase_deg_ * std::numbers::pi / 180.0;
  return Complex(ac_mag_ * std::cos(rad), ac_mag_ * std::sin(rad));
}

void VoltageSource::Stamp(StampContext& ctx) const {
  const NodeId p = Nodes()[0];
  const NodeId m = Nodes()[1];
  ctx.AddNodeBranch(p, 0, Complex(1.0, 0.0));
  ctx.AddNodeBranch(m, 0, Complex(-1.0, 0.0));
  ctx.AddBranchNode(0, p, Complex(1.0, 0.0));
  ctx.AddBranchNode(0, m, Complex(-1.0, 0.0));
  ctx.AddBranchRhs(0, ctx.Kind() == AnalysisKind::kDc ? Complex(dc_, 0.0)
                                                      : AcPhasor());
}

std::unique_ptr<Element> VoltageSource::Clone() const {
  return std::make_unique<VoltageSource>(*this);
}

void VoltageSource::SetValue(double value) {
  if (ac_mag_ != 0.0) {
    ac_mag_ = value;
  } else {
    dc_ = value;
  }
}

std::string VoltageSource::ParamString() const {
  std::string s = "DC " + util::FormatEngineering(dc_);
  if (ac_mag_ != 0.0) {
    s += " AC " + util::FormatEngineering(ac_mag_);
    if (ac_phase_deg_ != 0.0) s += " " + util::FormatTrimmed(ac_phase_deg_, 3);
  }
  return s;
}

// --- CurrentSource ----------------------------------------------------

CurrentSource::CurrentSource(std::string name, NodeId plus, NodeId minus,
                             double dc, double ac_mag, double ac_phase_deg)
    : Element(std::move(name), {plus, minus}),
      dc_(dc),
      ac_mag_(ac_mag),
      ac_phase_deg_(ac_phase_deg) {}

void CurrentSource::Stamp(StampContext& ctx) const {
  Complex i;
  if (ctx.Kind() == AnalysisKind::kDc) {
    i = Complex(dc_, 0.0);
  } else {
    const double rad = ac_phase_deg_ * std::numbers::pi / 180.0;
    i = Complex(ac_mag_ * std::cos(rad), ac_mag_ * std::sin(rad));
  }
  // SPICE convention: current flows from plus, through the source, to minus.
  ctx.AddNodeRhs(Nodes()[0], -i);
  ctx.AddNodeRhs(Nodes()[1], i);
}

std::unique_ptr<Element> CurrentSource::Clone() const {
  return std::make_unique<CurrentSource>(*this);
}

void CurrentSource::SetValue(double value) {
  if (ac_mag_ != 0.0) {
    ac_mag_ = value;
  } else {
    dc_ = value;
  }
}

std::string CurrentSource::ParamString() const {
  std::string s = "DC " + util::FormatEngineering(dc_);
  if (ac_mag_ != 0.0) {
    s += " AC " + util::FormatEngineering(ac_mag_);
    if (ac_phase_deg_ != 0.0) s += " " + util::FormatTrimmed(ac_phase_deg_, 3);
  }
  return s;
}

// --- Vcvs --------------------------------------------------------------

Vcvs::Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
           double gain)
    : Element(std::move(name), {p, m, cp, cm}), gain_(gain) {}

void Vcvs::Stamp(StampContext& ctx) const {
  const NodeId p = Nodes()[0], m = Nodes()[1], cp = Nodes()[2], cm = Nodes()[3];
  ctx.AddNodeBranch(p, 0, Complex(1.0, 0.0));
  ctx.AddNodeBranch(m, 0, Complex(-1.0, 0.0));
  // Branch equation: V_p - V_m - gain*(V_cp - V_cm) = 0.
  ctx.AddBranchNode(0, p, Complex(1.0, 0.0));
  ctx.AddBranchNode(0, m, Complex(-1.0, 0.0));
  ctx.AddBranchNode(0, cp, Complex(-gain_, 0.0));
  ctx.AddBranchNode(0, cm, Complex(gain_, 0.0));
}

std::unique_ptr<Element> Vcvs::Clone() const {
  return std::make_unique<Vcvs>(*this);
}

std::string Vcvs::ParamString() const { return util::FormatEngineering(gain_); }

// --- Vccs --------------------------------------------------------------

Vccs::Vccs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm,
           double gm)
    : Element(std::move(name), {p, m, cp, cm}), gm_(gm) {}

void Vccs::Stamp(StampContext& ctx) const {
  const NodeId p = Nodes()[0], m = Nodes()[1], cp = Nodes()[2], cm = Nodes()[3];
  const Complex g(gm_, 0.0);
  ctx.AddNodeNode(p, cp, g);
  ctx.AddNodeNode(p, cm, -g);
  ctx.AddNodeNode(m, cp, -g);
  ctx.AddNodeNode(m, cm, g);
}

std::unique_ptr<Element> Vccs::Clone() const {
  return std::make_unique<Vccs>(*this);
}

std::string Vccs::ParamString() const { return util::FormatEngineering(gm_); }

// --- Ccvs --------------------------------------------------------------

Ccvs::Ccvs(std::string name, NodeId p, NodeId m, std::string control_vsource,
           double transres)
    : Element(std::move(name), {p, m}),
      control_(util::ToUpper(control_vsource)),
      transres_(transres) {}

void Ccvs::Stamp(StampContext& ctx) const {
  // This element needs the controlling source's branch; the MNA system
  // resolves it by name at assembly time (see MnaStampContext).
  const NodeId p = Nodes()[0], m = Nodes()[1];
  ctx.AddNodeBranch(p, 0, Complex(1.0, 0.0));
  ctx.AddNodeBranch(m, 0, Complex(-1.0, 0.0));
  ctx.AddBranchNode(0, p, Complex(1.0, 0.0));
  ctx.AddBranchNode(0, m, Complex(-1.0, 0.0));
  ctx.AddBranchForeignBranchByName(0, control_, 0, Complex(-transres_, 0.0));
}

std::unique_ptr<Element> Ccvs::Clone() const {
  return std::make_unique<Ccvs>(*this);
}

std::string Ccvs::ParamString() const {
  return control_ + " " + util::FormatEngineering(transres_);
}

// --- Cccs --------------------------------------------------------------

Cccs::Cccs(std::string name, NodeId p, NodeId m, std::string control_vsource,
           double gain)
    : Element(std::move(name), {p, m}),
      control_(util::ToUpper(control_vsource)),
      gain_(gain) {}

void Cccs::Stamp(StampContext& ctx) const {
  ctx.AddNodeForeignBranchByName(Nodes()[0], control_, 0, Complex(gain_, 0.0));
  ctx.AddNodeForeignBranchByName(Nodes()[1], control_, 0, Complex(-gain_, 0.0));
}

std::unique_ptr<Element> Cccs::Clone() const {
  return std::make_unique<Cccs>(*this);
}

std::string Cccs::ParamString() const {
  return control_ + " " + util::FormatEngineering(gain_);
}

// --- Opamp --------------------------------------------------------------

Complex OpampModel::Gain(Complex s) const {
  switch (kind) {
    case OpampModelKind::kIdeal:
      return Complex(0.0, 0.0);  // not used: ideal opamp stamps a nullor
    case OpampModelKind::kFiniteGain:
      return Complex(a0, 0.0);
    case OpampModelKind::kSinglePole: {
      const double wp = 2.0 * std::numbers::pi * gbw / a0;
      return Complex(a0, 0.0) / (Complex(1.0, 0.0) + s / wp);
    }
  }
  return Complex(a0, 0.0);
}

Opamp::Opamp(std::string name, NodeId in_plus, NodeId in_minus, NodeId out,
             OpampModel model, NodeId in_test)
    : Element(std::move(name), {in_plus, in_minus, out, in_test}),
      model_(model) {}

void Opamp::MakeConfigurable(NodeId in_test) {
  configurable_ = true;
  MutableNodes()[3] = in_test;
}

void Opamp::SetMode(OpampMode mode) {
  if (mode == OpampMode::kFollower && !configurable_) {
    throw util::NetlistError("opamp " + Name() +
                             " is not configurable: cannot enter follower mode");
  }
  mode_ = mode;
}

void Opamp::Stamp(StampContext& ctx) const {
  const NodeId p = InPlus(), n = InMinus(), out = Out(), t = InTest();
  // Output behaves as a controlled voltage source: branch current into out.
  ctx.AddNodeBranch(out, 0, Complex(1.0, 0.0));

  if (model_.kind == OpampModelKind::kIdeal) {
    if (mode_ == OpampMode::kNormal) {
      // Nullor: enforce V+ = V-.
      ctx.AddBranchNode(0, p, Complex(1.0, 0.0));
      ctx.AddBranchNode(0, n, Complex(-1.0, 0.0));
    } else {
      // Ideal follower: V_out = V_test.
      ctx.AddBranchNode(0, out, Complex(1.0, 0.0));
      ctx.AddBranchNode(0, t, Complex(-1.0, 0.0));
    }
    return;
  }

  const Complex a = model_.Gain(ctx.S());
  if (mode_ == OpampMode::kNormal) {
    // V_out - A(s) (V+ - V-) = 0.
    ctx.AddBranchNode(0, out, Complex(1.0, 0.0));
    ctx.AddBranchNode(0, p, -a);
    ctx.AddBranchNode(0, n, a);
  } else {
    // Follower emulation: the amplifier is rewired as a unity buffer of the
    // In_test node: V_out - A(s) (V_test - V_out) = 0  =>  V_out ~= V_test.
    ctx.AddBranchNode(0, out, Complex(1.0, 0.0) + a);
    ctx.AddBranchNode(0, t, -a);
  }
}

std::unique_ptr<Element> Opamp::Clone() const {
  return std::make_unique<Opamp>(*this);
}

std::string Opamp::ParamString() const {
  std::string s;
  switch (model_.kind) {
    case OpampModelKind::kIdeal: s = "MODEL=IDEAL"; break;
    case OpampModelKind::kFiniteGain:
      s = "A0=" + util::FormatEngineering(model_.a0);
      break;
    case OpampModelKind::kSinglePole:
      s = "A0=" + util::FormatEngineering(model_.a0) +
          " GBW=" + util::FormatEngineering(model_.gbw);
      break;
  }
  if (configurable_) {
    s += " CONFIGURABLE";
    s += mode_ == OpampMode::kFollower ? " MODE=FOLLOWER" : " MODE=NORMAL";
  }
  return s;
}

}  // namespace mcdft::spice
