// Frequency-response container and the deviation analysis at the heart of
// the paper's testability metric: the relative deviation |dT/T|(omega)
// between a faulty and the fault-free response.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcdft::spice {

/// Sampled complex frequency response T(j*omega) on a frequency grid (Hz).
struct FrequencyResponse {
  std::vector<double> freqs_hz;
  std::vector<std::complex<double>> values;
  std::string label;

  /// Per-point quarantine mask from the resilient fault simulator: true at
  /// points where every solve attempt (SMW, exact, jittered-pivot, dense)
  /// failed or returned a non-finite value.  Empty means no point is
  /// quarantined (the common case: the mask is only allocated on first
  /// quarantine).  Quarantined points hold the placeholder value (0, 0)
  /// and are excluded from detectability with the documented convention.
  std::vector<bool> quarantined;

  std::size_t PointCount() const { return freqs_hz.size(); }

  /// True when point i is quarantined.
  bool QuarantinedAt(std::size_t i) const {
    return i < quarantined.size() && quarantined[i];
  }

  /// Number of quarantined points (0 when the mask is empty).
  std::size_t QuarantinedCount() const {
    std::size_t n = 0;
    for (bool q : quarantined) n += q ? 1 : 0;
    return n;
  }

  /// Mark point i quarantined, allocating the mask on first use.
  void MarkQuarantined(std::size_t i) {
    if (quarantined.size() < freqs_hz.size()) {
      quarantined.assign(freqs_hz.size(), false);
    }
    quarantined[i] = true;
  }

  /// |T| at point i.
  double MagnitudeAt(std::size_t i) const { return std::abs(values[i]); }

  /// 20*log10|T| at point i (clamped at -400 dB for exact zeros).
  double MagnitudeDbAt(std::size_t i) const;

  /// Phase in degrees at point i.
  double PhaseDegAt(std::size_t i) const;

  /// Index of the grid point with maximum |T| (the passband peak).
  std::size_t PeakIndex() const;

  /// Throws AnalysisError unless sizes are consistent and non-empty.
  void CheckConsistent() const;
};

/// Pointwise relative deviation between a faulty response and a reference:
///   dev_i = |T_faulty_i - T_ref_i| / max(|T_ref_i|, floor)
/// where `floor` = `relative_floor` * max_i |T_ref_i| guards the stopband
/// against division by (near-)zero — a deep-stopband reference would
/// otherwise declare every fault detectable from numerical noise.
/// The two responses must share the same grid.
std::vector<double> RelativeDeviation(const FrequencyResponse& faulty,
                                      const FrequencyResponse& reference,
                                      double relative_floor = 1e-9);

/// Magnitude-only variant: dev_i = ||T_faulty_i| - |T_ref_i|| / denom_i with
/// the same denominator rule as RelativeDeviation.  This is what a
/// magnitude-measuring tester can actually observe — always <= the complex
/// deviation (phase-only deviations are invisible to it).
std::vector<double> MagnitudeDeviation(const FrequencyResponse& faulty,
                                       const FrequencyResponse& reference,
                                       double relative_floor = 1e-9);

}  // namespace mcdft::spice
