// Circuit element hierarchy and their MNA stamps.
//
// Every element knows how to stamp itself into the Modified Nodal Analysis
// system through the StampContext interface.  Elements that introduce a
// branch current unknown (sources, inductors, opamp outputs) declare it via
// BranchCount().
#pragma once

#include <complex>
#include <memory>
#include <string>
#include <vector>

#include "spice/netlist.hpp"

namespace mcdft::spice {

using Complex = std::complex<double>;

/// Which analysis the stamp is being produced for.
enum class AnalysisKind {
  kDc,  ///< operating point: s = 0, independent sources use their DC value
  kAc,  ///< small-signal sweep: s = j*omega, sources use AC magnitude/phase
};

/// Element type tag (useful for filtering, e.g. "all passive components"
/// when building fault lists).
enum class ElementKind {
  kResistor,
  kCapacitor,
  kInductor,
  kVoltageSource,
  kCurrentSource,
  kVcvs,
  kVccs,
  kCcvs,
  kCccs,
  kOpamp,
};

/// Short human-readable name of an element kind ("resistor", "opamp", ...).
std::string_view ElementKindName(ElementKind kind);

/// Interface through which elements write their MNA contributions.
///
/// Rows/columns are addressed by circuit NodeId (ground contributions are
/// dropped automatically) and by element-local branch index (0-based,
/// < BranchCount() of the element currently being stamped).
class StampContext {
 public:
  virtual ~StampContext() = default;

  /// Analysis being assembled.
  virtual AnalysisKind Kind() const = 0;

  /// Complex frequency s = j*omega (0 for DC).
  virtual Complex S() const = 0;

  /// Classic two-terminal admittance stamp between nodes a and b.
  virtual void AddAdmittance(NodeId a, NodeId b, Complex y) = 0;

  /// A(node_row, node_col) += v.
  virtual void AddNodeNode(NodeId row, NodeId col, Complex v) = 0;

  /// A(node_row, branch_col) += v for local branch `branch` of the element
  /// currently being stamped.
  virtual void AddNodeBranch(NodeId row, std::size_t branch, Complex v) = 0;

  /// A(branch_row, node_col) += v.
  virtual void AddBranchNode(std::size_t branch, NodeId col, Complex v) = 0;

  /// A(branch_row, branch_col) += v (both local to the current element).
  virtual void AddBranchBranch(std::size_t row, std::size_t col, Complex v) = 0;

  /// A(branch_row, foreign_branch_col) += v where the column belongs to
  /// branch `k` of the element named `other` (controlled-source coupling).
  /// Throws AnalysisError when no such element/branch exists in the system.
  virtual void AddBranchForeignBranchByName(std::size_t row,
                                            const std::string& other,
                                            std::size_t k, Complex v) = 0;

  /// A(node_row, foreign_branch_col) += v (same addressing as above).
  virtual void AddNodeForeignBranchByName(NodeId row, const std::string& other,
                                          std::size_t k, Complex v) = 0;

  /// rhs(node_row) += v.
  virtual void AddNodeRhs(NodeId row, Complex v) = 0;

  /// rhs(branch_row) += v.
  virtual void AddBranchRhs(std::size_t branch, Complex v) = 0;
};

/// Abstract circuit element.
class Element {
 public:
  Element(std::string name, std::vector<NodeId> nodes);
  virtual ~Element() = default;

  /// Canonical (upper-case) unique name.
  const std::string& Name() const { return name_; }

  /// Element type tag.
  virtual ElementKind Kind() const = 0;

  /// Terminal nodes (meaning is kind-specific; see each subclass).
  const std::vector<NodeId>& Nodes() const { return nodes_; }

  /// Number of branch-current unknowns this element adds to the MNA system.
  virtual std::size_t BranchCount() const { return 0; }

  /// Write this element's contribution into the system being assembled.
  virtual void Stamp(StampContext& ctx) const = 0;

  /// Polymorphic deep copy.
  virtual std::unique_ptr<Element> Clone() const = 0;

  /// True when the element has a single scalar principal value that fault
  /// models can deviate (R, L, C, source values, controlled-source gains).
  virtual bool HasValue() const { return false; }

  /// Principal value; throws NetlistError when HasValue() is false.
  virtual double Value() const;

  /// Set principal value; throws NetlistError when HasValue() is false.
  virtual void SetValue(double value);

  /// Parameter portion of the SPICE card (everything after the node list).
  virtual std::string ParamString() const = 0;

 protected:
  /// Mutable node access for subclass-internal rewiring (configurable
  /// opamp test input, fault injector shorts).
  std::vector<NodeId>& MutableNodes() { return nodes_; }

 private:
  std::string name_;
  std::vector<NodeId> nodes_;
};

// ---------------------------------------------------------------------
// Passive two-terminal elements
// ---------------------------------------------------------------------

/// Linear resistor between nodes (a, b).
class Resistor final : public Element {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);
  ElementKind Kind() const override { return ElementKind::kResistor; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return ohms_; }
  void SetValue(double value) override;
  std::string ParamString() const override;

 private:
  double ohms_;
};

/// Linear capacitor between nodes (a, b).  Open at DC.
class Capacitor final : public Element {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double farads);
  ElementKind Kind() const override { return ElementKind::kCapacitor; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return farads_; }
  void SetValue(double value) override;
  std::string ParamString() const override;

 private:
  double farads_;
};

/// Linear inductor between nodes (a, b), formulated with a branch current
/// so the DC (short) limit is exact.
class Inductor final : public Element {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double henries);
  ElementKind Kind() const override { return ElementKind::kInductor; }
  std::size_t BranchCount() const override { return 1; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return henries_; }
  void SetValue(double value) override;
  std::string ParamString() const override;

 private:
  double henries_;
};

// ---------------------------------------------------------------------
// Independent sources
// ---------------------------------------------------------------------

/// Independent voltage source (plus, minus) with DC value and AC phasor.
/// Its branch current is available for CCVS/CCCS control.
class VoltageSource final : public Element {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, double dc,
                double ac_mag, double ac_phase_deg);
  ElementKind Kind() const override { return ElementKind::kVoltageSource; }
  std::size_t BranchCount() const override { return 1; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  /// Principal value is the AC magnitude when nonzero, else the DC value.
  double Value() const override { return ac_mag_ != 0.0 ? ac_mag_ : dc_; }
  void SetValue(double value) override;
  std::string ParamString() const override;

  double Dc() const { return dc_; }
  double AcMagnitude() const { return ac_mag_; }
  double AcPhaseDeg() const { return ac_phase_deg_; }
  /// AC excitation as a phasor.
  Complex AcPhasor() const;

 private:
  double dc_;
  double ac_mag_;
  double ac_phase_deg_;
};

/// Independent current source flowing from `plus` through the source to
/// `minus` (SPICE convention: positive value pulls current out of `plus`).
class CurrentSource final : public Element {
 public:
  CurrentSource(std::string name, NodeId plus, NodeId minus, double dc,
                double ac_mag, double ac_phase_deg);
  ElementKind Kind() const override { return ElementKind::kCurrentSource; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return ac_mag_ != 0.0 ? ac_mag_ : dc_; }
  void SetValue(double value) override;
  std::string ParamString() const override;

 private:
  double dc_;
  double ac_mag_;
  double ac_phase_deg_;
};

// ---------------------------------------------------------------------
// Controlled sources
// ---------------------------------------------------------------------

/// VCVS: V(p, m) = gain * V(cp, cm).  Nodes: [p, m, cp, cm].
class Vcvs final : public Element {
 public:
  Vcvs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm, double gain);
  ElementKind Kind() const override { return ElementKind::kVcvs; }
  std::size_t BranchCount() const override { return 1; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return gain_; }
  void SetValue(double value) override { gain_ = value; }
  std::string ParamString() const override;

 private:
  double gain_;
};

/// VCCS: I(p -> m) = gm * V(cp, cm).  Nodes: [p, m, cp, cm].
class Vccs final : public Element {
 public:
  Vccs(std::string name, NodeId p, NodeId m, NodeId cp, NodeId cm, double gm);
  ElementKind Kind() const override { return ElementKind::kVccs; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return gm_; }
  void SetValue(double value) override { gm_ = value; }
  std::string ParamString() const override;

 private:
  double gm_;
};

/// CCVS: V(p, m) = transres * I(control source).  Nodes: [p, m].
class Ccvs final : public Element {
 public:
  Ccvs(std::string name, NodeId p, NodeId m, std::string control_vsource,
       double transres);
  ElementKind Kind() const override { return ElementKind::kCcvs; }
  std::size_t BranchCount() const override { return 1; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return transres_; }
  void SetValue(double value) override { transres_ = value; }
  std::string ParamString() const override;
  /// Name of the voltage source whose branch current controls this element.
  const std::string& ControlSource() const { return control_; }

 private:
  std::string control_;
  double transres_;
};

/// CCCS: I(p -> m) = gain * I(control source).  Nodes: [p, m].
class Cccs final : public Element {
 public:
  Cccs(std::string name, NodeId p, NodeId m, std::string control_vsource,
       double gain);
  ElementKind Kind() const override { return ElementKind::kCccs; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  bool HasValue() const override { return true; }
  double Value() const override { return gain_; }
  void SetValue(double value) override { gain_ = value; }
  std::string ParamString() const override;
  const std::string& ControlSource() const { return control_; }

 private:
  std::string control_;
  double gain_;
};

// ---------------------------------------------------------------------
// Behavioural (configurable) opamp
// ---------------------------------------------------------------------

/// Opamp small-signal model selection.
enum class OpampModelKind {
  kIdeal,       ///< nullor: V+ = V-, output is an ideal controlled source
  kFiniteGain,  ///< V_out = A0 (V+ - V-)
  kSinglePole,  ///< V_out = A0/(1 + s/wp) (V+ - V-), wp = 2*pi*gbw/A0
};

/// Opamp model parameters.
struct OpampModel {
  OpampModelKind kind = OpampModelKind::kFiniteGain;
  double a0 = 1e6;    ///< DC open-loop gain (kFiniteGain, kSinglePole)
  double gbw = 1e6;   ///< gain-bandwidth product in Hz (kSinglePole only)

  /// Open-loop gain A(s) at complex frequency s.
  Complex Gain(Complex s) const;
};

/// Operating mode of a configurable opamp (paper Fig. 3).
enum class OpampMode {
  kNormal,    ///< classical opamp behaviour
  kFollower,  ///< output follows the In_test input (sel = 1)
};

/// Behavioural opamp with the multi-configuration DFT hooks.
///
/// Nodes: [in+, in-, out, in_test].  A plain (non-configurable) opamp has
/// in_test = ground and is permanently in normal mode.  The DFT transform
/// (core/dft_transform.hpp) marks opamps configurable and wires the
/// In_test chain; core/configuration.hpp then flips modes per
/// configuration vector.
class Opamp final : public Element {
 public:
  Opamp(std::string name, NodeId in_plus, NodeId in_minus, NodeId out,
        OpampModel model = {}, NodeId in_test = kGround);
  ElementKind Kind() const override { return ElementKind::kOpamp; }
  std::size_t BranchCount() const override { return 1; }
  void Stamp(StampContext& ctx) const override;
  std::unique_ptr<Element> Clone() const override;
  std::string ParamString() const override;

  NodeId InPlus() const { return Nodes()[0]; }
  NodeId InMinus() const { return Nodes()[1]; }
  NodeId Out() const { return Nodes()[2]; }
  NodeId InTest() const { return Nodes()[3]; }

  const OpampModel& Model() const { return model_; }
  void SetModel(const OpampModel& model) { model_ = model; }

  /// Whether this opamp was replaced by a configurable implementation.
  bool IsConfigurable() const { return configurable_; }
  /// Mark as configurable and wire its In_test input.
  void MakeConfigurable(NodeId in_test);

  OpampMode Mode() const { return mode_; }
  /// Switch mode.  Throws NetlistError when asked to enter follower mode on
  /// a non-configurable opamp (no In_test wiring exists in silicon).
  void SetMode(OpampMode mode);

 private:
  OpampModel model_;
  bool configurable_ = false;
  OpampMode mode_ = OpampMode::kNormal;
};

}  // namespace mcdft::spice
