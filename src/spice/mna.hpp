// Modified Nodal Analysis assembly and solution.
//
// Unknown ordering: the N-1 non-ground node voltages first (node id i maps
// to unknown i-1), then one slot per element branch current in element
// insertion order.  The assembled system A x = b is solved with the dense
// LU backend below a size threshold and the sparse Markowitz LU above it.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/elements.hpp"

namespace mcdft::spice {

/// Which linear-solver backend the MNA engine uses.
enum class SolverBackend {
  kAuto,    ///< dense below `dense_threshold` unknowns, sparse above
  kDense,   ///< always dense LU
  kSparse,  ///< always sparse Markowitz LU
};

/// MNA engine options.
struct MnaOptions {
  SolverBackend backend = SolverBackend::kAuto;
  std::size_t dense_threshold = 64;  ///< kAuto switch-over point
  /// When true, repeated solves through an MnaSolveCache keep the CSR
  /// sparsity pattern and the sparse-LU pivot ordering across frequencies
  /// and parametric (value-only) faults, doing numeric-only refactorization
  /// per point.  kDense is unaffected (dense LU has no reusable analysis).
  bool cache_factorization = true;
  /// When true, fault campaigns may solve faulty systems as rank-<=2
  /// Sherman-Morrison-Woodbury updates against the nominal factorization
  /// (frequency-major sweeps) instead of refactoring per (fault, omega)
  /// cell.  Results change only at rounding level (~1e-12 relative);
  /// `mcdft analyze --no-lowrank` or MCDFT_LOWRANK=0 restore the exact
  /// fault-major path.  Only effective with cache_factorization and a
  /// sparse-capable backend — see LowRankFaultSolvesEnabled().
  bool lowrank_fault_updates = true;
  /// When true (default), fault campaigns recover from per-cell solve
  /// failures instead of aborting: an SMW failure retries on the exact
  /// path, an exact failure or a non-finite probe value retries once with
  /// a jittered (fully-pivoted) ordering and then a dense factorization,
  /// and a cell that exhausts the ladder is quarantined (see
  /// FrequencyResponse::quarantined).  On healthy circuits the ladder
  /// never engages and results are bit-identical to `retry_ladder = false`,
  /// which restores strict fail-fast behavior (first solve failure
  /// throws).  Every ladder decision is a pure function of the cell's
  /// inputs, preserving thread/shard determinism.
  bool retry_ladder = true;
  /// Fault-batch width of the frequency-major low-rank path: up to this
  /// many faults at one frequency solve as one SoA-packed multi-RHS SMW
  /// batch (SIMD complex kernels).  0 disables batching (per-fault SMW
  /// solves).  Results are bit-identical at every width — batching only
  /// changes throughput — so the campaign content hash folds in the on/off
  /// gate, never the width.  `mcdft analyze --no-batch` or MCDFT_BATCH
  /// override it (see EffectiveFaultBatch()).
  std::size_t fault_batch = 32;
};

/// Effective gate for the low-rank fault-solve path: the option is set,
/// the factorization cache (which the nominal refactor chain rides on) is
/// on, the backend can go sparse, and the MCDFT_LOWRANK environment
/// variable (read once per process; "0" disables) does not veto it.
bool LowRankFaultSolvesEnabled(const MnaOptions& options);

/// Effective fault-batch width: `options.fault_batch` unless the
/// MCDFT_BATCH environment variable (read once per process) overrides it —
/// "0" disables batching, a positive integer replaces the width.
std::size_t EffectiveFaultBatch(const MnaOptions& options);

/// True when fault campaigns run the *batched* SMW path: a nonzero
/// effective batch width on top of LowRankFaultSolvesEnabled().
bool BatchedFaultSolvesEnabled(const MnaOptions& options);

/// Solution of one MNA solve: node voltages + branch currents with
/// convenient accessors.
class MnaSolution {
 public:
  MnaSolution(linalg::Vector x, const std::vector<std::size_t>* branch_base,
              std::size_t node_unknowns);

  /// Complex node voltage (ground returns 0).
  Complex VoltageAt(NodeId node) const;

  /// Differential voltage V(plus) - V(minus).
  Complex VoltageBetween(NodeId plus, NodeId minus) const;

  /// Branch current `k` of the element with system element index `idx`
  /// (see MnaSystem::ElementIndexOf).
  Complex BranchCurrent(std::size_t element_idx, std::size_t k = 0) const;

  /// Raw unknown vector.
  const linalg::Vector& Raw() const { return x_; }

 private:
  linalg::Vector x_;
  const std::vector<std::size_t>* branch_base_;  // owned by the MnaSystem
  std::size_t node_unknowns_;
};

/// Assembles and solves the MNA system of a netlist.
///
/// The system object captures the netlist's *structure* (unknown indexing)
/// at construction; element parameter values are read at each Assemble/
/// Solve call, so fault injection that only changes values can reuse the
/// same MnaSystem.  Structural edits (adding/removing elements or nodes)
/// require a new MnaSystem.
class MnaSystem {
 public:
  /// Index the unknowns of `netlist`.  The netlist must outlive this object.
  explicit MnaSystem(const Netlist& netlist, MnaOptions options = {});

  /// Total number of unknowns (node voltages + branch currents).
  std::size_t UnknownCount() const { return unknown_count_; }

  /// Number of node-voltage unknowns (= NodeCount()-1).
  std::size_t NodeUnknownCount() const { return node_unknowns_; }

  /// Assemble the complex system for the given analysis at angular
  /// frequency `omega` (rad/s; ignored for DC).
  void Assemble(AnalysisKind kind, double omega, linalg::TripletMatrix& a,
                linalg::Vector& rhs) const;

  /// Stamp a single element at (kind, omega), scaled by `weight`, appending
  /// its matrix contributions to `entries` and its RHS contributions to
  /// `rhs_entries` (both in system unknown coordinates, duplicates kept).
  /// Recording one element with weight -1 at nominal values and +1 with a
  /// fault injected yields exactly that fault's stamp delta — the input of
  /// the low-rank fault-solve path.
  void StampElement(std::size_t element_idx, AnalysisKind kind, double omega,
                    Complex weight, std::vector<linalg::Triplet>& entries,
                    std::vector<std::pair<std::size_t, Complex>>& rhs_entries)
      const;

  /// Assemble and solve at angular frequency `omega`.
  MnaSolution Solve(AnalysisKind kind, double omega) const;

  /// AC solve at frequency `hz`.
  MnaSolution SolveAcHz(double hz) const;

  /// DC operating point.
  MnaSolution SolveDc() const;

  /// System element index for a named element (used with BranchCurrent).
  /// Name matching is case-insensitive.
  std::size_t ElementIndexOf(const std::string& name) const;

  /// Unknown index of branch `k` of element `element_idx`.  Throws
  /// AnalysisError when the element declared fewer branches.
  std::size_t BranchUnknown(std::size_t element_idx, std::size_t k) const;

  const Netlist& Circuit() const { return netlist_; }

  const MnaOptions& Options() const { return options_; }

  /// Wrap a raw unknown vector produced by an external solve of this
  /// system's equations (used by MnaSolveCache).
  MnaSolution WrapSolution(linalg::Vector x) const {
    return MnaSolution(std::move(x), &branch_base_, node_unknowns_);
  }

 private:
  const Netlist& netlist_;
  MnaOptions options_;
  std::size_t node_unknowns_ = 0;
  std::size_t unknown_count_ = 0;
  std::vector<std::size_t> branch_base_;  // per element: first branch unknown
};

/// Reusable solve state for repeated MNA solves with an invariant sparsity
/// pattern — the workhorse of AC sweeps and parametric fault campaigns.
///
/// Holds the assembly scratch (triplets + RHS), the cached CSR pattern of
/// the stamp sequence, and the sparse-LU factor whose pivot ordering is
/// reused for numeric-only refactorization at each subsequent point.  The
/// cache owns all of its state (no references into any MnaSystem), so one
/// cache may serve many systems; the pattern check simply rebuilds when the
/// stamp sequence changes.
///
/// Determinism: results for a given (netlist values, kind, omega) depend on
/// the ordering chosen at the first full factorization after
/// ResetOrdering().  Callers that must produce identical results regardless
/// of how work is batched (e.g. a fault campaign split across threads) call
/// ResetOrdering() at each sweep boundary so the ordering is always derived
/// from the sweep's own first point.
class MnaSolveCache {
 public:
  /// Assemble and solve `sys` at (kind, omega), reusing cached structure
  /// when `sys.Options().cache_factorization` allows.  Falls back to a full
  /// factorization whenever the cached pivot ordering is rejected.
  MnaSolution Solve(const MnaSystem& sys, AnalysisKind kind, double omega);

  /// AC solve at frequency `hz`.
  MnaSolution SolveAcHz(const MnaSystem& sys, double hz);

  /// Forget the cached pivot ordering (the sparsity pattern is kept; it is
  /// a deterministic function of the stamp sequence and carries no value
  /// information).  Call at sweep boundaries for batching-independent
  /// results.
  void ResetOrdering() { lu_.reset(); }

  /// Diagnostics: how many solves went through the numeric-only refactor
  /// fast path vs. a full factorization (exposed for tests and benches).
  std::size_t RefactorCount() const { return refactor_count_; }
  std::size_t FullFactorCount() const { return full_factor_count_; }

 private:
  linalg::TripletMatrix a_;
  linalg::Vector rhs_;
  std::optional<linalg::CsrAssembly> pattern_;
  std::optional<linalg::SparseLu> lu_;
  std::size_t refactor_count_ = 0;
  std::size_t full_factor_count_ = 0;
};

}  // namespace mcdft::spice
