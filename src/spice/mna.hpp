// Modified Nodal Analysis assembly and solution.
//
// Unknown ordering: the N-1 non-ground node voltages first (node id i maps
// to unknown i-1), then one slot per element branch current in element
// insertion order.  The assembled system A x = b is solved with the dense
// LU backend below a size threshold and the sparse Markowitz LU above it.
#pragma once

#include <vector>

#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/elements.hpp"

namespace mcdft::spice {

/// Which linear-solver backend the MNA engine uses.
enum class SolverBackend {
  kAuto,    ///< dense below `dense_threshold` unknowns, sparse above
  kDense,   ///< always dense LU
  kSparse,  ///< always sparse Markowitz LU
};

/// MNA engine options.
struct MnaOptions {
  SolverBackend backend = SolverBackend::kAuto;
  std::size_t dense_threshold = 64;  ///< kAuto switch-over point
};

/// Solution of one MNA solve: node voltages + branch currents with
/// convenient accessors.
class MnaSolution {
 public:
  MnaSolution(linalg::Vector x, const std::vector<std::size_t>* branch_base,
              std::size_t node_unknowns);

  /// Complex node voltage (ground returns 0).
  Complex VoltageAt(NodeId node) const;

  /// Differential voltage V(plus) - V(minus).
  Complex VoltageBetween(NodeId plus, NodeId minus) const;

  /// Branch current `k` of the element with system element index `idx`
  /// (see MnaSystem::ElementIndexOf).
  Complex BranchCurrent(std::size_t element_idx, std::size_t k = 0) const;

  /// Raw unknown vector.
  const linalg::Vector& Raw() const { return x_; }

 private:
  linalg::Vector x_;
  const std::vector<std::size_t>* branch_base_;  // owned by the MnaSystem
  std::size_t node_unknowns_;
};

/// Assembles and solves the MNA system of a netlist.
///
/// The system object captures the netlist's *structure* (unknown indexing)
/// at construction; element parameter values are read at each Assemble/
/// Solve call, so fault injection that only changes values can reuse the
/// same MnaSystem.  Structural edits (adding/removing elements or nodes)
/// require a new MnaSystem.
class MnaSystem {
 public:
  /// Index the unknowns of `netlist`.  The netlist must outlive this object.
  explicit MnaSystem(const Netlist& netlist, MnaOptions options = {});

  /// Total number of unknowns (node voltages + branch currents).
  std::size_t UnknownCount() const { return unknown_count_; }

  /// Number of node-voltage unknowns (= NodeCount()-1).
  std::size_t NodeUnknownCount() const { return node_unknowns_; }

  /// Assemble the complex system for the given analysis at angular
  /// frequency `omega` (rad/s; ignored for DC).
  void Assemble(AnalysisKind kind, double omega, linalg::TripletMatrix& a,
                linalg::Vector& rhs) const;

  /// Assemble and solve at angular frequency `omega`.
  MnaSolution Solve(AnalysisKind kind, double omega) const;

  /// AC solve at frequency `hz`.
  MnaSolution SolveAcHz(double hz) const;

  /// DC operating point.
  MnaSolution SolveDc() const;

  /// System element index for a named element (used with BranchCurrent).
  /// Name matching is case-insensitive.
  std::size_t ElementIndexOf(const std::string& name) const;

  /// Unknown index of branch `k` of element `element_idx`.  Throws
  /// AnalysisError when the element declared fewer branches.
  std::size_t BranchUnknown(std::size_t element_idx, std::size_t k) const;

  const Netlist& Circuit() const { return netlist_; }

 private:
  const Netlist& netlist_;
  MnaOptions options_;
  std::size_t node_unknowns_ = 0;
  std::size_t unknown_count_ = 0;
  std::vector<std::size_t> branch_base_;  // per element: first branch unknown
};

}  // namespace mcdft::spice
