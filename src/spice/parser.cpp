#include "spice/parser.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "spice/elements.hpp"
#include "util/strings.hpp"

namespace mcdft::spice {

namespace {

using util::EqualsNoCase;
using util::ParseEngineering;
using util::SplitFields;
using util::StartsWithNoCase;
using util::ToLower;
using util::ToUpper;
using util::Trim;

constexpr int kMaxSubcktDepth = 20;

/// One logical line after continuation merging, with its source line number.
struct LogicalLine {
  std::size_t number;
  std::string text;
};

std::vector<LogicalLine> MergeContinuations(const std::string& text) {
  std::vector<LogicalLine> lines;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view t = Trim(raw);
    if (t.empty() || t.front() == '*') continue;
    // Strip trailing comment introduced by ';'.
    if (auto pos = t.find(';'); pos != std::string_view::npos) {
      t = Trim(t.substr(0, pos));
      if (t.empty()) continue;
    }
    if (t.front() == '+') {
      if (lines.empty()) {
        throw util::ParseError(lineno, "continuation '+' with no previous card");
      }
      lines.back().text += " ";
      lines.back().text += std::string(t.substr(1));
    } else {
      lines.push_back(LogicalLine{lineno, std::string(t)});
    }
  }
  return lines;
}

double RequireValue(const LogicalLine& line, const std::string& token,
                    const char* what) {
  double v = 0.0;
  if (!ParseEngineering(token, v)) {
    throw util::ParseError(line.number, std::string("bad ") + what + " '" +
                                            token + "'");
  }
  return v;
}

void RequireFieldCount(const LogicalLine& line,
                       const std::vector<std::string>& f, std::size_t n,
                       const char* card) {
  if (f.size() < n) {
    throw util::ParseError(line.number,
                           std::string(card) + " card needs at least " +
                               std::to_string(n - 1) + " arguments");
  }
}

/// Parse the trailing [value] [DC v] [AC mag [phase]] of a source card.
void ParseSourceParams(const LogicalLine& line,
                       const std::vector<std::string>& f, std::size_t start,
                       double& dc, double& ac_mag, double& ac_phase) {
  dc = 0.0;
  ac_mag = 0.0;
  ac_phase = 0.0;
  std::size_t i = start;
  while (i < f.size()) {
    if (EqualsNoCase(f[i], "dc")) {
      if (i + 1 >= f.size()) {
        throw util::ParseError(line.number, "DC keyword without value");
      }
      dc = RequireValue(line, f[i + 1], "DC value");
      i += 2;
    } else if (EqualsNoCase(f[i], "ac")) {
      if (i + 1 >= f.size()) {
        throw util::ParseError(line.number, "AC keyword without value");
      }
      ac_mag = RequireValue(line, f[i + 1], "AC magnitude");
      i += 2;
      if (i < f.size()) {
        double ph = 0.0;
        if (ParseEngineering(f[i], ph)) {
          ac_phase = ph;
          ++i;
        }
      }
    } else if (i == start) {
      dc = RequireValue(line, f[i], "source value");
      ++i;
    } else {
      throw util::ParseError(line.number, "unexpected token '" + f[i] + "'");
    }
  }
}

/// A stored subcircuit definition.
struct SubcktDef {
  std::vector<std::string> ports;  // lower-case port node names
  std::vector<LogicalLine> body;
};

/// Builds a flat netlist from the logical lines, expanding subcircuit
/// instances on the fly.
class DeckBuilder {
 public:
  ParsedDeck Build(const std::vector<LogicalLine>& lines) {
    bool ended = false;
    bool first = true;
    for (std::size_t idx = 0; idx < lines.size(); ++idx) {
      const LogicalLine& line = lines[idx];
      if (ended) {
        throw util::ParseError(line.number, "content after .end");
      }
      auto f = SplitFields(line.text);
      if (f.empty()) continue;

      const char lead = static_cast<char>(
          std::toupper(static_cast<unsigned char>(f[0].front())));
      const bool looks_like_card =
          lead == '.' ||
          std::string("RCLVIEGHFOX").find(lead) != std::string::npos;
      if (first && !looks_like_card) {
        deck_.netlist.SetTitle(line.text);
        first = false;
        continue;
      }
      first = false;

      if (lead == '.' && EqualsNoCase(f[0], ".subckt")) {
        idx = CollectSubckt(lines, idx);
        continue;
      }
      if (lead == '.' && EqualsNoCase(f[0], ".ends")) {
        throw util::ParseError(line.number, ".ends without .subckt");
      }
      if (lead == '.') {
        ParseDotCard(line, f, ended);
        continue;
      }
      ParseCard(line, f, /*prefix=*/"", /*nodemap=*/{}, /*depth=*/0);
    }
    return std::move(deck_);
  }

 private:
  /// Store a .subckt block; returns the index of its .ends line.
  std::size_t CollectSubckt(const std::vector<LogicalLine>& lines,
                            std::size_t start) {
    const LogicalLine& header = lines[start];
    auto f = SplitFields(header.text);
    RequireFieldCount(header, f, 3, ".subckt");
    const std::string name = ToUpper(f[1]);
    if (subckts_.count(name) != 0) {
      throw util::ParseError(header.number,
                             "duplicate subcircuit '" + name + "'");
    }
    SubcktDef def;
    for (std::size_t i = 2; i < f.size(); ++i) {
      def.ports.push_back(ToLower(f[i]));
    }
    std::size_t idx = start + 1;
    int nesting = 1;
    for (; idx < lines.size(); ++idx) {
      auto body_fields = SplitFields(lines[idx].text);
      if (!body_fields.empty() && EqualsNoCase(body_fields[0], ".subckt")) {
        throw util::ParseError(lines[idx].number,
                               "nested .subckt definitions are not supported "
                               "(nested *instances* are)");
      }
      if (!body_fields.empty() && EqualsNoCase(body_fields[0], ".ends")) {
        --nesting;
        break;
      }
      def.body.push_back(lines[idx]);
    }
    if (nesting != 0) {
      throw util::ParseError(header.number,
                             ".subckt '" + name + "' without .ends");
    }
    subckts_[name] = std::move(def);
    return idx;
  }

  /// Resolve a node token inside an instantiation context.
  std::string MapNode(const std::string& token, const std::string& prefix,
                      const std::map<std::string, std::string>& nodemap) const {
    const std::string key = ToLower(token);
    if (key == "0" || key == "gnd") return "0";  // global ground
    auto it = nodemap.find(key);
    if (it != nodemap.end()) return it->second;
    return prefix.empty() ? token : prefix + "." + token;
  }

  /// Resolve an element name: suffix with the instance path so the leading
  /// type letter survives ("R1" in instance X1 -> "R1.X1").
  std::string MapName(const std::string& token,
                      const std::string& prefix) const {
    return prefix.empty() ? token : token + "." + prefix;
  }

  void ParseOpampCard(const LogicalLine& line,
                      const std::vector<std::string>& f,
                      const std::string& prefix,
                      const std::map<std::string, std::string>& nodemap) {
    RequireFieldCount(line, f, 4, "opamp");
    const std::string name = MapName(f[0], prefix);
    const std::string inp = MapNode(f[1], prefix, nodemap);
    const std::string inn = MapNode(f[2], prefix, nodemap);
    const std::string out = MapNode(f[3], prefix, nodemap);
    std::string test_node;
    OpampModel model;
    bool configurable = false;
    OpampMode mode = OpampMode::kNormal;

    for (std::size_t i = 4; i < f.size(); ++i) {
      const std::string& tok = f[i];
      auto eq = tok.find('=');
      if (eq == std::string::npos) {
        if (EqualsNoCase(tok, "configurable")) {
          configurable = true;
        } else if (test_node.empty()) {
          test_node = MapNode(tok, prefix, nodemap);
        } else {
          throw util::ParseError(line.number,
                                 "unexpected opamp token '" + tok + "'");
        }
        continue;
      }
      const std::string key = ToUpper(tok.substr(0, eq));
      const std::string val = tok.substr(eq + 1);
      if (key == "A0") {
        model.a0 = RequireValue(line, val, "A0");
      } else if (key == "GBW") {
        model.gbw = RequireValue(line, val, "GBW");
        model.kind = OpampModelKind::kSinglePole;
      } else if (key == "MODEL") {
        if (EqualsNoCase(val, "ideal")) {
          model.kind = OpampModelKind::kIdeal;
        } else if (EqualsNoCase(val, "finite")) {
          model.kind = OpampModelKind::kFiniteGain;
        } else if (EqualsNoCase(val, "pole") ||
                   EqualsNoCase(val, "singlepole")) {
          model.kind = OpampModelKind::kSinglePole;
        } else {
          throw util::ParseError(line.number,
                                 "unknown opamp model '" + val + "'");
        }
      } else if (key == "MODE") {
        if (EqualsNoCase(val, "follower")) {
          mode = OpampMode::kFollower;
        } else if (EqualsNoCase(val, "normal")) {
          mode = OpampMode::kNormal;
        } else {
          throw util::ParseError(line.number,
                                 "unknown opamp mode '" + val + "'");
        }
      } else {
        throw util::ParseError(line.number,
                               "unknown opamp parameter '" + key + "'");
      }
    }

    Netlist& nl = deck_.netlist;
    const NodeId test = test_node.empty() ? kGround : nl.Node(test_node);
    auto opamp = std::make_unique<Opamp>(name, nl.Node(inp), nl.Node(inn),
                                         nl.Node(out), model, test);
    if (configurable || !test_node.empty()) {
      opamp->MakeConfigurable(test);
      opamp->SetMode(mode);
    } else if (mode == OpampMode::kFollower) {
      throw util::ParseError(line.number,
                             "MODE=FOLLOWER requires a test node / CONFIGURABLE");
    }
    nl.AddElement(std::move(opamp));
  }

  void ExpandInstance(const LogicalLine& line,
                      const std::vector<std::string>& f,
                      const std::string& prefix,
                      const std::map<std::string, std::string>& nodemap,
                      int depth) {
    if (depth >= kMaxSubcktDepth) {
      throw util::ParseError(line.number,
                             "subcircuit nesting deeper than " +
                                 std::to_string(kMaxSubcktDepth));
    }
    RequireFieldCount(line, f, 3, "subcircuit instance");
    const std::string sub_name = ToUpper(f.back());
    auto it = subckts_.find(sub_name);
    if (it == subckts_.end()) {
      throw util::ParseError(line.number,
                             "unknown subcircuit '" + sub_name + "'");
    }
    const SubcktDef& def = it->second;
    const std::size_t nports = f.size() - 2;  // minus name and subckt name
    if (nports != def.ports.size()) {
      throw util::ParseError(
          line.number, "subcircuit '" + sub_name + "' has " +
                           std::to_string(def.ports.size()) + " ports but " +
                           std::to_string(nports) + " nodes were given");
    }
    // Bind ports to the instantiating scope's nodes.
    std::map<std::string, std::string> inner_map;
    for (std::size_t i = 0; i < nports; ++i) {
      inner_map[def.ports[i]] = MapNode(f[1 + i], prefix, nodemap);
    }
    const std::string inner_prefix =
        prefix.empty() ? ToUpper(f[0]) : prefix + "." + ToUpper(f[0]);
    for (const LogicalLine& body_line : def.body) {
      auto body_fields = SplitFields(body_line.text);
      if (body_fields.empty()) continue;
      ParseCard(body_line, body_fields, inner_prefix, inner_map, depth + 1);
    }
  }

  void ParseCard(const LogicalLine& line, const std::vector<std::string>& f,
                 const std::string& prefix,
                 const std::map<std::string, std::string>& nodemap, int depth) {
    Netlist& nl = deck_.netlist;
    const char lead = static_cast<char>(
        std::toupper(static_cast<unsigned char>(f[0].front())));
    auto node = [&](const std::string& tok) {
      return MapNode(tok, prefix, nodemap);
    };
    switch (lead) {
      case '.':
        // Directives are only legal at top level (depth 0 handled in
        // Build); inside a subcircuit body they are rejected.
        throw util::ParseError(line.number,
                               "directive '" + f[0] +
                                   "' is not allowed inside a subcircuit");
      case 'R':
        RequireFieldCount(line, f, 4, "resistor");
        nl.AddResistor(MapName(f[0], prefix), node(f[1]), node(f[2]),
                       RequireValue(line, f[3], "resistance"));
        break;
      case 'C':
        RequireFieldCount(line, f, 4, "capacitor");
        nl.AddCapacitor(MapName(f[0], prefix), node(f[1]), node(f[2]),
                        RequireValue(line, f[3], "capacitance"));
        break;
      case 'L':
        RequireFieldCount(line, f, 4, "inductor");
        nl.AddInductor(MapName(f[0], prefix), node(f[1]), node(f[2]),
                       RequireValue(line, f[3], "inductance"));
        break;
      case 'V': {
        RequireFieldCount(line, f, 3, "voltage source");
        double dc, ac, ph;
        ParseSourceParams(line, f, 3, dc, ac, ph);
        nl.AddVoltageSource(MapName(f[0], prefix), node(f[1]), node(f[2]), dc,
                            ac, ph);
        break;
      }
      case 'I': {
        RequireFieldCount(line, f, 3, "current source");
        double dc, ac, ph;
        ParseSourceParams(line, f, 3, dc, ac, ph);
        nl.AddCurrentSource(MapName(f[0], prefix), node(f[1]), node(f[2]), dc,
                            ac, ph);
        break;
      }
      case 'E':
        RequireFieldCount(line, f, 6, "vcvs");
        nl.AddVcvs(MapName(f[0], prefix), node(f[1]), node(f[2]), node(f[3]),
                   node(f[4]), RequireValue(line, f[5], "gain"));
        break;
      case 'G':
        RequireFieldCount(line, f, 6, "vccs");
        nl.AddVccs(MapName(f[0], prefix), node(f[1]), node(f[2]), node(f[3]),
                   node(f[4]), RequireValue(line, f[5], "transconductance"));
        break;
      case 'H':
        RequireFieldCount(line, f, 5, "ccvs");
        nl.AddCcvs(MapName(f[0], prefix), node(f[1]), node(f[2]),
                   MapName(f[3], prefix),
                   RequireValue(line, f[4], "transresistance"));
        break;
      case 'F':
        RequireFieldCount(line, f, 5, "cccs");
        nl.AddCccs(MapName(f[0], prefix), node(f[1]), node(f[2]),
                   MapName(f[3], prefix), RequireValue(line, f[4], "gain"));
        break;
      case 'O':
        ParseOpampCard(line, f, prefix, nodemap);
        break;
      case 'X':
        ExpandInstance(line, f, prefix, nodemap, depth);
        break;
      default:
        throw util::ParseError(line.number, "unknown card '" + f[0] + "'");
    }
  }

  void ParseDotCard(const LogicalLine& line, const std::vector<std::string>& f,
                    bool& ended) {
    const std::string card = ToUpper(f[0]);
    if (card == ".TITLE") {
      std::string title;
      for (std::size_t i = 1; i < f.size(); ++i) {
        if (i > 1) title += " ";
        title += f[i];
      }
      deck_.netlist.SetTitle(title);
    } else if (card == ".AC") {
      RequireFieldCount(line, f, 5, ".ac");
      const double n = RequireValue(line, f[2], "point count");
      const double f1 = RequireValue(line, f[3], "start frequency");
      const double f2 = RequireValue(line, f[4], "stop frequency");
      if (EqualsNoCase(f[1], "dec")) {
        deck_.sweep = SweepSpec::Decade(f1, f2, static_cast<std::size_t>(n));
      } else if (EqualsNoCase(f[1], "lin")) {
        deck_.sweep = SweepSpec::Linear(f1, f2, static_cast<std::size_t>(n));
      } else {
        throw util::ParseError(line.number, ".ac supports DEC or LIN, got '" +
                                                f[1] + "'");
      }
    } else if (card == ".PROBE" || card == ".PRINT") {
      for (std::size_t i = 1; i < f.size(); ++i) {
        const std::string& spec = f[i];
        if (!StartsWithNoCase(spec, "v(") || spec.back() != ')') {
          throw util::ParseError(line.number,
                                 "probe must look like v(node) or v(n1,n2)");
        }
        const std::string inner = spec.substr(2, spec.size() - 3);
        auto parts = util::SplitKeepEmpty(inner, ',');
        if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
          throw util::ParseError(line.number, "bad probe '" + spec + "'");
        }
        Probe probe;
        probe.plus = deck_.netlist.Node(parts[0]);
        probe.minus = parts.size() == 2 ? deck_.netlist.Node(parts[1]) : kGround;
        probe.label = spec;
        deck_.probes.push_back(probe);
      }
    } else if (card == ".END") {
      ended = true;
    } else if (card == ".OP" || card == ".OPTIONS") {
      // Accepted and ignored: .op is implicit, options are not needed.
    } else {
      throw util::ParseError(line.number, "unknown directive '" + card + "'");
    }
  }

  ParsedDeck deck_;
  std::map<std::string, SubcktDef> subckts_;
};

}  // namespace

ParsedDeck ParseDeck(const std::string& text) {
  DeckBuilder builder;
  return builder.Build(MergeContinuations(text));
}

ParsedDeck ParseDeckFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::Error("cannot open netlist file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseDeck(ss.str());
}

}  // namespace mcdft::spice
