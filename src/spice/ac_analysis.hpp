// AC (small-signal frequency) analysis: sweep specification, probes, and
// the analyzer driving MNA solves across the sweep.
#pragma once

#include <string>
#include <vector>

#include "spice/mna.hpp"
#include "spice/transfer_function.hpp"

namespace mcdft::spice {

/// Frequency sweep specification, mirroring SPICE `.AC DEC/LIN` cards plus
/// an explicit point list.
class SweepSpec {
 public:
  /// Logarithmic sweep: `points_per_decade` points per decade from
  /// `f_start` to `f_stop` (both inclusive endpoints).
  static SweepSpec Decade(double f_start, double f_stop,
                          std::size_t points_per_decade);

  /// Linear sweep with `points` total points, inclusive endpoints.
  static SweepSpec Linear(double f_start, double f_stop, std::size_t points);

  /// Explicit list of frequencies (Hz), must be non-empty and ascending.
  static SweepSpec List(std::vector<double> frequencies_hz);

  /// Materialize the grid (Hz).  Throws AnalysisError on an empty or
  /// ill-ordered specification.
  const std::vector<double>& Frequencies() const { return freqs_; }

  std::size_t PointCount() const { return freqs_.size(); }
  double FStart() const { return freqs_.front(); }
  double FStop() const { return freqs_.back(); }

 private:
  explicit SweepSpec(std::vector<double> freqs);
  std::vector<double> freqs_;
};

/// What to measure: differential node voltage V(plus) - V(minus).
struct Probe {
  NodeId plus = kGround;
  NodeId minus = kGround;
  std::string label = "v(out)";
};

/// Runs an AC sweep of a netlist, producing the complex frequency response
/// at a probe.  The excitation is whatever AC sources the netlist contains
/// (for a transfer function, drive with a single AC 1V source).
///
/// The analyzer keeps an MnaSolveCache: the MNA sparsity pattern is
/// invariant across frequencies (and across value-only fault injection on
/// the underlying netlist), so after the sweep's first full factorization
/// every remaining point is a numeric-only refactorization.  The cached
/// pivot ordering is dropped at each sweep boundary, which makes a sweep's
/// results depend only on (netlist values, sweep) — reusing one analyzer
/// across many faults yields bit-identical results to fresh analyzers.
class AcAnalyzer {
 public:
  explicit AcAnalyzer(const Netlist& netlist, MnaOptions options = {});

  /// Response at the probe over the sweep.
  FrequencyResponse Run(const SweepSpec& sweep, const Probe& probe) const;

  /// Responses at several probes in one pass over the sweep (one MNA solve
  /// per frequency regardless of probe count).
  std::vector<FrequencyResponse> RunMulti(const SweepSpec& sweep,
                                          const std::vector<Probe>& probes) const;

  /// Solve-cache diagnostics (tests/benches): numeric-only refactors vs
  /// full factorizations performed so far.
  std::size_t RefactorCount() const { return cache_.RefactorCount(); }
  std::size_t FullFactorCount() const { return cache_.FullFactorCount(); }

 private:
  MnaSystem system_;
  mutable MnaSolveCache cache_;
};

}  // namespace mcdft::spice
