// Circuit netlist model: named nodes plus a list of owned circuit elements.
//
// This is the substrate standing in for the paper's HSPICE decks: linear
// elements (R, L, C), independent and controlled sources, and behavioural
// opamps — including the *configurable opamp* of the multi-configuration
// DFT technique (normal / follower modes, Renovell et al., Fig. 3).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace mcdft::spice {

/// Index of a circuit node.  Node 0 is always the ground reference.
using NodeId = std::size_t;

/// The ground node (SPICE node "0").
inline constexpr NodeId kGround = 0;

class Element;  // defined in spice/elements.hpp

/// A complete circuit: node name registry + owned element list.
///
/// Element names are unique case-insensitively (canonicalized to upper
/// case), matching SPICE semantics.  The netlist is value-semantically
/// copyable through Clone(), which the fault injector uses to create
/// faulty circuit instances without disturbing the golden netlist.
class Netlist {
 public:
  Netlist();
  explicit Netlist(std::string title);

  Netlist(Netlist&&) noexcept;
  Netlist& operator=(Netlist&&) noexcept;
  Netlist(const Netlist&) = delete;
  Netlist& operator=(const Netlist&) = delete;
  ~Netlist();

  /// Deep copy (elements are cloned).
  Netlist Clone() const;

  /// Human-readable deck title.
  const std::string& Title() const { return title_; }
  void SetTitle(std::string title) { title_ = std::move(title); }

  // --- Nodes ----------------------------------------------------------

  /// Get-or-create the node with this name.  "0" and "gnd" (any case) both
  /// refer to the ground node.
  NodeId Node(const std::string& name);

  /// Look up an existing node; throws NetlistError when unknown.
  NodeId FindNode(const std::string& name) const;

  /// Look up an existing node; nullopt when unknown.
  std::optional<NodeId> TryFindNode(const std::string& name) const;

  /// Name of a node id.
  const std::string& NodeName(NodeId id) const;

  /// Number of nodes including ground.
  std::size_t NodeCount() const { return node_names_.size(); }

  // --- Elements -------------------------------------------------------

  /// Add an element; the netlist takes ownership.  Throws NetlistError on
  /// duplicate name (case-insensitive) or null element.
  Element& AddElement(std::unique_ptr<Element> element);

  /// Remove the element with this name.  Throws NetlistError when absent.
  void RemoveElement(const std::string& name);

  /// Find an element by name (case-insensitive); nullptr when absent.
  Element* FindElement(const std::string& name);
  const Element* FindElement(const std::string& name) const;

  /// Find by name or throw NetlistError.
  Element& GetElement(const std::string& name);
  const Element& GetElement(const std::string& name) const;

  /// All elements in insertion order.
  const std::vector<std::unique_ptr<Element>>& Elements() const {
    return elements_;
  }
  std::size_t ElementCount() const { return elements_.size(); }

  // --- Convenience builders (return the created element) --------------

  Element& AddResistor(const std::string& name, const std::string& a,
                       const std::string& b, double ohms);
  Element& AddCapacitor(const std::string& name, const std::string& a,
                        const std::string& b, double farads);
  Element& AddInductor(const std::string& name, const std::string& a,
                       const std::string& b, double henries);
  /// Independent voltage source with DC value and AC magnitude/phase(deg).
  Element& AddVoltageSource(const std::string& name, const std::string& plus,
                            const std::string& minus, double dc,
                            double ac_mag = 0.0, double ac_phase_deg = 0.0);
  Element& AddCurrentSource(const std::string& name, const std::string& plus,
                            const std::string& minus, double dc,
                            double ac_mag = 0.0, double ac_phase_deg = 0.0);
  /// Voltage-controlled voltage source: V(p,m) = gain * V(cp,cm).
  Element& AddVcvs(const std::string& name, const std::string& p,
                   const std::string& m, const std::string& cp,
                   const std::string& cm, double gain);
  /// Voltage-controlled current source: I(p->m) = gm * V(cp,cm).
  Element& AddVccs(const std::string& name, const std::string& p,
                   const std::string& m, const std::string& cp,
                   const std::string& cm, double gm);
  /// Current-controlled voltage source; control current flows through the
  /// named independent voltage source.
  Element& AddCcvs(const std::string& name, const std::string& p,
                   const std::string& m, const std::string& vsource,
                   double transres);
  /// Current-controlled current source (control as for AddCcvs).
  Element& AddCccs(const std::string& name, const std::string& p,
                   const std::string& m, const std::string& vsource,
                   double gain);
  /// Behavioural opamp (in+, in-, out).  See spice/elements.hpp for the
  /// model options; default is a finite-gain (1e6) VCVS-style amplifier.
  Element& AddOpamp(const std::string& name, const std::string& in_plus,
                    const std::string& in_minus, const std::string& out);

  // --- Validation -----------------------------------------------------

  /// Structural checks: at least one non-ground node, every node touched by
  /// at least one element terminal, every non-ground node connected to
  /// ground through element terminals (so the MNA matrix has a chance of
  /// being non-singular), and controlled-source references resolvable.
  /// Returns the list of problems (empty = valid).
  std::vector<std::string> Validate() const;

  /// Validate() and throw NetlistError listing the problems, if any.
  void ValidateOrThrow() const;

 private:
  std::string title_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_index_;  // lower-case name
  std::vector<std::unique_ptr<Element>> elements_;
  std::unordered_map<std::string, std::size_t> element_index_;  // upper-case
};

}  // namespace mcdft::spice
