#include "spice/dc_analysis.hpp"

namespace mcdft::spice {

double DcOperatingPoint::VoltageAt(NodeId node) const {
  if (node >= node_voltages.size()) {
    throw util::AnalysisError("node id " + std::to_string(node) +
                              " outside operating point");
  }
  return node_voltages[node];
}

DcOperatingPoint SolveOperatingPoint(const Netlist& netlist,
                                     MnaOptions options) {
  MnaSystem system(netlist, options);
  MnaSolution sol = system.SolveDc();
  DcOperatingPoint op;
  op.node_voltages.resize(netlist.NodeCount(), 0.0);
  for (NodeId n = 1; n < netlist.NodeCount(); ++n) {
    op.node_voltages[n] = sol.VoltageAt(n).real();
  }
  return op;
}

}  // namespace mcdft::spice
