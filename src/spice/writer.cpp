#include "spice/writer.hpp"

#include "spice/elements.hpp"

namespace mcdft::spice {

std::string WriteCard(const Netlist& netlist, const Element& element) {
  std::string card = element.Name();
  const auto& nodes = element.Nodes();

  std::size_t node_count = nodes.size();
  if (element.Kind() == ElementKind::kOpamp) {
    // Nodes are [in+, in-, out, in_test]; the test node is only physical
    // (and only parseable) on configurable opamps.
    const auto& op = static_cast<const Opamp&>(element);
    node_count = op.IsConfigurable() ? 4 : 3;
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    card += " " + netlist.NodeName(nodes[i]);
  }
  const std::string params = element.ParamString();
  if (!params.empty()) card += " " + params;
  return card;
}

std::string WriteDeck(const Netlist& netlist) {
  std::string out = ".title " + netlist.Title() + "\n";
  for (const auto& e : netlist.Elements()) {
    out += WriteCard(netlist, *e) + "\n";
  }
  out += ".end\n";
  return out;
}

}  // namespace mcdft::spice
