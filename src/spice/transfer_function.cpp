#include "spice/transfer_function.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace mcdft::spice {

double FrequencyResponse::MagnitudeDbAt(std::size_t i) const {
  const double mag = MagnitudeAt(i);
  if (mag <= 0.0) return -400.0;
  return 20.0 * std::log10(mag);
}

double FrequencyResponse::PhaseDegAt(std::size_t i) const {
  return std::arg(values[i]) * 180.0 / std::numbers::pi;
}

std::size_t FrequencyResponse::PeakIndex() const {
  CheckConsistent();
  std::size_t best = 0;
  double best_mag = MagnitudeAt(0);
  for (std::size_t i = 1; i < PointCount(); ++i) {
    const double m = MagnitudeAt(i);
    if (m > best_mag) {
      best_mag = m;
      best = i;
    }
  }
  return best;
}

void FrequencyResponse::CheckConsistent() const {
  if (freqs_hz.empty() || freqs_hz.size() != values.size()) {
    throw util::AnalysisError("inconsistent frequency response '" + label +
                              "': " + std::to_string(freqs_hz.size()) +
                              " freqs vs " + std::to_string(values.size()) +
                              " values");
  }
}

namespace {

std::vector<double> DeviationImpl(const FrequencyResponse& faulty,
                                  const FrequencyResponse& reference,
                                  double relative_floor, bool magnitude_only) {
  faulty.CheckConsistent();
  reference.CheckConsistent();
  if (faulty.freqs_hz != reference.freqs_hz) {
    throw util::AnalysisError(
        "relative deviation requires identical frequency grids");
  }
  double peak = 0.0;
  for (const auto& v : reference.values) peak = std::max(peak, std::abs(v));
  const double floor = std::max(relative_floor * peak, 1e-300);

  std::vector<double> dev(reference.PointCount());
  for (std::size_t i = 0; i < dev.size(); ++i) {
    const double denom = std::max(std::abs(reference.values[i]), floor);
    const double num =
        magnitude_only
            ? std::abs(std::abs(faulty.values[i]) -
                       std::abs(reference.values[i]))
            : std::abs(faulty.values[i] - reference.values[i]);
    dev[i] = num / denom;
  }
  return dev;
}

}  // namespace

std::vector<double> RelativeDeviation(const FrequencyResponse& faulty,
                                      const FrequencyResponse& reference,
                                      double relative_floor) {
  return DeviationImpl(faulty, reference, relative_floor, false);
}

std::vector<double> MagnitudeDeviation(const FrequencyResponse& faulty,
                                       const FrequencyResponse& reference,
                                       double relative_floor) {
  return DeviationImpl(faulty, reference, relative_floor, true);
}

}  // namespace mcdft::spice
