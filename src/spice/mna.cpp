#include "spice/mna.hpp"

#include "util/metrics.hpp"
#include "util/strings.hpp"

#include <cmath>
#include <cstdlib>
#include <numbers>
#include <string_view>

namespace mcdft::spice {

namespace metrics = util::metrics;

MnaSolution::MnaSolution(linalg::Vector x,
                         const std::vector<std::size_t>* branch_base,
                         std::size_t node_unknowns)
    : x_(std::move(x)), branch_base_(branch_base), node_unknowns_(node_unknowns) {}

Complex MnaSolution::VoltageAt(NodeId node) const {
  if (node == kGround) return Complex(0.0, 0.0);
  const std::size_t idx = node - 1;
  if (idx >= node_unknowns_) {
    throw util::AnalysisError("node id " + std::to_string(node) +
                              " outside solved system");
  }
  return x_[idx];
}

Complex MnaSolution::VoltageBetween(NodeId plus, NodeId minus) const {
  return VoltageAt(plus) - VoltageAt(minus);
}

Complex MnaSolution::BranchCurrent(std::size_t element_idx, std::size_t k) const {
  if (element_idx + 1 >= branch_base_->size()) {
    throw util::AnalysisError("element index " + std::to_string(element_idx) +
                              " outside solved system");
  }
  const std::size_t base = (*branch_base_)[element_idx];
  const std::size_t next = (*branch_base_)[element_idx + 1];
  if (base + k >= next) {
    throw util::AnalysisError("element has no branch " + std::to_string(k));
  }
  return x_[base + k];
}

namespace {

/// StampContext implementation writing into a triplet matrix + RHS.
class MnaStampContext final : public StampContext {
 public:
  MnaStampContext(const MnaSystem& sys, const Netlist& netlist,
                  AnalysisKind kind, Complex s, linalg::TripletMatrix& a,
                  linalg::Vector& rhs)
      : sys_(sys), netlist_(netlist), kind_(kind), s_(s), a_(a), rhs_(rhs) {}

  void SetCurrentElement(std::size_t element_idx) { current_ = element_idx; }

  AnalysisKind Kind() const override { return kind_; }
  Complex S() const override { return s_; }

  void AddAdmittance(NodeId a, NodeId b, Complex y) override {
    AddNodeNode(a, a, y);
    AddNodeNode(b, b, y);
    AddNodeNode(a, b, -y);
    AddNodeNode(b, a, -y);
  }

  void AddNodeNode(NodeId row, NodeId col, Complex v) override {
    if (row == kGround || col == kGround) return;
    a_.Add(row - 1, col - 1, v);
  }

  void AddNodeBranch(NodeId row, std::size_t branch, Complex v) override {
    if (row == kGround) return;
    a_.Add(row - 1, BranchUnknown(current_, branch), v);
  }

  void AddBranchNode(std::size_t branch, NodeId col, Complex v) override {
    if (col == kGround) return;
    a_.Add(BranchUnknown(current_, branch), col - 1, v);
  }

  void AddBranchBranch(std::size_t row, std::size_t col, Complex v) override {
    a_.Add(BranchUnknown(current_, row), BranchUnknown(current_, col), v);
  }

  void AddBranchForeignBranchByName(std::size_t row, const std::string& other,
                                    std::size_t k, Complex v) override {
    a_.Add(BranchUnknown(current_, row), ForeignBranch(other, k), v);
  }

  void AddNodeForeignBranchByName(NodeId row, const std::string& other,
                                  std::size_t k, Complex v) override {
    if (row == kGround) return;
    a_.Add(row - 1, ForeignBranch(other, k), v);
  }

  void AddNodeRhs(NodeId row, Complex v) override {
    if (row == kGround) return;
    rhs_[row - 1] += v;
  }

  void AddBranchRhs(std::size_t branch, Complex v) override {
    rhs_[BranchUnknown(current_, branch)] += v;
  }

 private:
  std::size_t BranchUnknown(std::size_t element_idx, std::size_t k) const {
    return sys_.BranchUnknown(element_idx, k);
  }

  std::size_t ForeignBranch(const std::string& name, std::size_t k) const {
    const std::size_t idx = sys_.ElementIndexOf(name);
    return BranchUnknown(idx, k);
  }

  const MnaSystem& sys_;
  const Netlist& netlist_;
  AnalysisKind kind_;
  Complex s_;
  linalg::TripletMatrix& a_;
  linalg::Vector& rhs_;
  std::size_t current_ = 0;
};

/// StampContext that records one element's weighted contributions as loose
/// (index, value) lists instead of writing into an assembled system — the
/// recorder behind MnaSystem::StampElement.  Uses the same unknown
/// addressing as MnaStampContext (node i -> unknown i-1, ground dropped,
/// branches via MnaSystem::BranchUnknown).
class DeltaStampContext final : public StampContext {
 public:
  DeltaStampContext(const MnaSystem& sys, std::size_t element_idx,
                    AnalysisKind kind, Complex s, Complex weight,
                    std::vector<linalg::Triplet>& entries,
                    std::vector<std::pair<std::size_t, Complex>>& rhs_entries)
      : sys_(sys),
        current_(element_idx),
        kind_(kind),
        s_(s),
        weight_(weight),
        entries_(entries),
        rhs_(rhs_entries) {}

  AnalysisKind Kind() const override { return kind_; }
  Complex S() const override { return s_; }

  void AddAdmittance(NodeId a, NodeId b, Complex y) override {
    AddNodeNode(a, a, y);
    AddNodeNode(b, b, y);
    AddNodeNode(a, b, -y);
    AddNodeNode(b, a, -y);
  }

  void AddNodeNode(NodeId row, NodeId col, Complex v) override {
    if (row == kGround || col == kGround) return;
    Push(row - 1, col - 1, v);
  }

  void AddNodeBranch(NodeId row, std::size_t branch, Complex v) override {
    if (row == kGround) return;
    Push(row - 1, sys_.BranchUnknown(current_, branch), v);
  }

  void AddBranchNode(std::size_t branch, NodeId col, Complex v) override {
    if (col == kGround) return;
    Push(sys_.BranchUnknown(current_, branch), col - 1, v);
  }

  void AddBranchBranch(std::size_t row, std::size_t col, Complex v) override {
    Push(sys_.BranchUnknown(current_, row), sys_.BranchUnknown(current_, col),
         v);
  }

  void AddBranchForeignBranchByName(std::size_t row, const std::string& other,
                                    std::size_t k, Complex v) override {
    Push(sys_.BranchUnknown(current_, row), ForeignBranch(other, k), v);
  }

  void AddNodeForeignBranchByName(NodeId row, const std::string& other,
                                  std::size_t k, Complex v) override {
    if (row == kGround) return;
    Push(row - 1, ForeignBranch(other, k), v);
  }

  void AddNodeRhs(NodeId row, Complex v) override {
    if (row == kGround) return;
    rhs_.emplace_back(row - 1, weight_ * v);
  }

  void AddBranchRhs(std::size_t branch, Complex v) override {
    rhs_.emplace_back(sys_.BranchUnknown(current_, branch), weight_ * v);
  }

 private:
  void Push(std::size_t row, std::size_t col, Complex v) {
    entries_.push_back(linalg::Triplet{row, col, weight_ * v});
  }

  std::size_t ForeignBranch(const std::string& name, std::size_t k) const {
    return sys_.BranchUnknown(sys_.ElementIndexOf(name), k);
  }

  const MnaSystem& sys_;
  std::size_t current_;
  AnalysisKind kind_;
  Complex s_;
  Complex weight_;
  std::vector<linalg::Triplet>& entries_;
  std::vector<std::pair<std::size_t, Complex>>& rhs_;
};

}  // namespace

bool LowRankFaultSolvesEnabled(const MnaOptions& options) {
  static const bool env_enabled = [] {
    const char* v = std::getenv("MCDFT_LOWRANK");
    return v == nullptr || std::string_view(v) != "0";
  }();
  return env_enabled && options.lowrank_fault_updates &&
         options.cache_factorization &&
         options.backend != SolverBackend::kDense;
}

std::size_t EffectiveFaultBatch(const MnaOptions& options) {
  // -1 = no override; read once so mid-run environment edits cannot split
  // a campaign across two behaviors.
  static const long long env_batch = [] {
    const char* v = std::getenv("MCDFT_BATCH");
    if (v == nullptr || *v == '\0') return -1LL;
    char* end = nullptr;
    const long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0' || parsed < 0) return -1LL;
    return parsed;
  }();
  if (env_batch >= 0) return static_cast<std::size_t>(env_batch);
  return options.fault_batch;
}

bool BatchedFaultSolvesEnabled(const MnaOptions& options) {
  return EffectiveFaultBatch(options) > 0 && LowRankFaultSolvesEnabled(options);
}

MnaSystem::MnaSystem(const Netlist& netlist, MnaOptions options)
    : netlist_(netlist), options_(options) {
  netlist.ValidateOrThrow();
  node_unknowns_ = netlist.NodeCount() - 1;
  branch_base_.resize(netlist.ElementCount() + 1);
  std::size_t next = node_unknowns_;
  for (std::size_t i = 0; i < netlist.ElementCount(); ++i) {
    branch_base_[i] = next;
    next += netlist.Elements()[i]->BranchCount();
  }
  branch_base_[netlist.ElementCount()] = next;
  unknown_count_ = next;
}

void MnaSystem::Assemble(AnalysisKind kind, double omega,
                         linalg::TripletMatrix& a, linalg::Vector& rhs) const {
  const Complex s = kind == AnalysisKind::kDc ? Complex(0.0, 0.0)
                                              : Complex(0.0, omega);
  a.Reset(unknown_count_, unknown_count_);
  rhs.Resize(unknown_count_);
  rhs.SetZero();
  MnaStampContext ctx(*this, netlist_, kind, s, a, rhs);
  for (std::size_t i = 0; i < netlist_.ElementCount(); ++i) {
    ctx.SetCurrentElement(i);
    netlist_.Elements()[i]->Stamp(ctx);
  }
}

void MnaSystem::StampElement(
    std::size_t element_idx, AnalysisKind kind, double omega, Complex weight,
    std::vector<linalg::Triplet>& entries,
    std::vector<std::pair<std::size_t, Complex>>& rhs_entries) const {
  if (element_idx >= netlist_.ElementCount()) {
    throw util::AnalysisError("element index " + std::to_string(element_idx) +
                              " outside MNA system");
  }
  const Complex s = kind == AnalysisKind::kDc ? Complex(0.0, 0.0)
                                              : Complex(0.0, omega);
  DeltaStampContext ctx(*this, element_idx, kind, s, weight, entries,
                        rhs_entries);
  netlist_.Elements()[element_idx]->Stamp(ctx);
}

MnaSolution MnaSystem::Solve(AnalysisKind kind, double omega) const {
  static metrics::Counter& solve_count = metrics::GetCounter("spice.mna.solve");
  solve_count.Add();
  linalg::TripletMatrix a;
  linalg::Vector rhs;
  Assemble(kind, omega, a, rhs);

  const bool use_sparse =
      options_.backend == SolverBackend::kSparse ||
      (options_.backend == SolverBackend::kAuto &&
       unknown_count_ > options_.dense_threshold);

  linalg::Vector x;
  if (use_sparse) {
    linalg::CsrMatrix csr(a);
    x = linalg::SolveSparse(csr, rhs);
  } else {
    x = linalg::SolveDense(a.ToDense(), rhs);
  }
  return MnaSolution(std::move(x), &branch_base_, node_unknowns_);
}

MnaSolution MnaSystem::SolveAcHz(double hz) const {
  return Solve(AnalysisKind::kAc, 2.0 * std::numbers::pi * hz);
}

MnaSolution MnaSystem::SolveDc() const { return Solve(AnalysisKind::kDc, 0.0); }

std::size_t MnaSystem::ElementIndexOf(const std::string& name) const {
  const std::string key = util::ToUpper(name);
  for (std::size_t i = 0; i < netlist_.ElementCount(); ++i) {
    if (netlist_.Elements()[i]->Name() == key) return i;
  }
  throw util::AnalysisError("element '" + name + "' not found in MNA system");
}

MnaSolution MnaSolveCache::Solve(const MnaSystem& sys, AnalysisKind kind,
                                 double omega) {
  static metrics::Counter& solve_count = metrics::GetCounter("spice.mna.solve");
  static metrics::Counter& dense_count =
      metrics::GetCounter("spice.mna.dense_solve");
  static metrics::Counter& uncached_count =
      metrics::GetCounter("spice.mna.uncached_sparse_solve");
  static metrics::Counter& pattern_hit =
      metrics::GetCounter("spice.mna.pattern_hit");
  static metrics::Counter& pattern_rebuild =
      metrics::GetCounter("spice.mna.pattern_rebuild");
  static metrics::Counter& refactor_hit =
      metrics::GetCounter("spice.mna.refactor_hit");
  static metrics::Counter& full_factor =
      metrics::GetCounter("spice.mna.full_factor");

  solve_count.Add();
  sys.Assemble(kind, omega, a_, rhs_);
  const MnaOptions& options = sys.Options();

  if (options.backend == SolverBackend::kDense ||
      (options.backend == SolverBackend::kAuto && !options.cache_factorization &&
       sys.UnknownCount() <= options.dense_threshold)) {
    dense_count.Add();
    return sys.WrapSolution(linalg::SolveDense(a_.ToDense(), rhs_));
  }
  if (!options.cache_factorization) {
    uncached_count.Add();
    return sys.WrapSolution(linalg::SolveSparse(linalg::CsrMatrix(a_), rhs_));
  }

  // Cached sparse path: O(nnz) value refresh into the stored pattern, then
  // numeric-only refactorization under the stored pivot ordering.
  if (pattern_ && pattern_->Matches(a_)) {
    pattern_hit.Add();
    pattern_->Update(a_);
  } else {
    pattern_rebuild.Add();
    pattern_.emplace(a_);  // structure changed (or first solve)
    lu_.reset();
  }
  const linalg::CsrMatrix& m = pattern_->Matrix();
  if (lu_ && lu_->Refactor(m)) {
    refactor_hit.Add();
    ++refactor_count_;
  } else {
    lu_.emplace(m);
    full_factor.Add();
    ++full_factor_count_;
  }
  return sys.WrapSolution(lu_->Solve(rhs_));
}

MnaSolution MnaSolveCache::SolveAcHz(const MnaSystem& sys, double hz) {
  return Solve(sys, AnalysisKind::kAc, 2.0 * std::numbers::pi * hz);
}

std::size_t MnaSystem::BranchUnknown(std::size_t element_idx,
                                     std::size_t k) const {
  const std::size_t base = branch_base_[element_idx];
  const std::size_t next = branch_base_[element_idx + 1];
  if (base + k >= next) {
    throw util::AnalysisError(
        "element '" + netlist_.Elements()[element_idx]->Name() +
        "' used branch " + std::to_string(k) + " but declared only " +
        std::to_string(next - base));
  }
  return base + k;
}

}  // namespace mcdft::spice
