#include "spice/ac_analysis.hpp"

#include <cmath>

namespace mcdft::spice {

SweepSpec::SweepSpec(std::vector<double> freqs) : freqs_(std::move(freqs)) {
  if (freqs_.empty()) throw util::AnalysisError("empty frequency sweep");
  for (std::size_t i = 0; i < freqs_.size(); ++i) {
    if (!(freqs_[i] > 0.0) || !std::isfinite(freqs_[i])) {
      throw util::AnalysisError("sweep frequency must be positive and finite");
    }
    if (i > 0 && freqs_[i] <= freqs_[i - 1]) {
      throw util::AnalysisError("sweep frequencies must be strictly ascending");
    }
  }
}

SweepSpec SweepSpec::Decade(double f_start, double f_stop,
                            std::size_t points_per_decade) {
  if (!(f_start > 0.0) || !(f_stop > f_start)) {
    throw util::AnalysisError("decade sweep requires 0 < f_start < f_stop");
  }
  if (points_per_decade == 0) {
    throw util::AnalysisError("decade sweep requires at least 1 point/decade");
  }
  const double decades = std::log10(f_stop / f_start);
  const std::size_t total =
      static_cast<std::size_t>(std::ceil(decades * points_per_decade)) + 1;
  std::vector<double> f(total);
  for (std::size_t i = 0; i < total; ++i) {
    const double frac = static_cast<double>(i) / (total - 1);
    f[i] = f_start * std::pow(10.0, frac * decades);
  }
  f.back() = f_stop;  // kill rounding drift at the endpoint
  return SweepSpec(std::move(f));
}

SweepSpec SweepSpec::Linear(double f_start, double f_stop, std::size_t points) {
  if (!(f_start > 0.0) || !(f_stop > f_start)) {
    throw util::AnalysisError("linear sweep requires 0 < f_start < f_stop");
  }
  if (points < 2) throw util::AnalysisError("linear sweep requires >= 2 points");
  std::vector<double> f(points);
  for (std::size_t i = 0; i < points; ++i) {
    f[i] = f_start + (f_stop - f_start) * static_cast<double>(i) /
                         static_cast<double>(points - 1);
  }
  return SweepSpec(std::move(f));
}

SweepSpec SweepSpec::List(std::vector<double> frequencies_hz) {
  return SweepSpec(std::move(frequencies_hz));
}

AcAnalyzer::AcAnalyzer(const Netlist& netlist, MnaOptions options)
    : system_(netlist, options) {}

FrequencyResponse AcAnalyzer::Run(const SweepSpec& sweep,
                                  const Probe& probe) const {
  return RunMulti(sweep, {probe}).front();
}

std::vector<FrequencyResponse> AcAnalyzer::RunMulti(
    const SweepSpec& sweep, const std::vector<Probe>& probes) const {
  if (probes.empty()) throw util::AnalysisError("no probes given");
  std::vector<FrequencyResponse> out(probes.size());
  for (std::size_t p = 0; p < probes.size(); ++p) {
    out[p].freqs_hz = sweep.Frequencies();
    out[p].values.reserve(sweep.PointCount());
    out[p].label = probes[p].label;
  }
  // Each sweep chooses its pivot ordering afresh at its first point, so a
  // sweep's numbers never depend on what this analyzer solved before it.
  cache_.ResetOrdering();
  for (double f : sweep.Frequencies()) {
    MnaSolution sol = cache_.SolveAcHz(system_, f);
    for (std::size_t p = 0; p < probes.size(); ++p) {
      out[p].values.push_back(
          sol.VoltageBetween(probes[p].plus, probes[p].minus));
    }
  }
  return out;
}

}  // namespace mcdft::spice
