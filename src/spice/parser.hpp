// SPICE-subset netlist parser.
//
// Supported cards (case-insensitive, `*` comments, `+` continuations):
//   R/C/L name  n+ n-  value                 passive elements
//   V/I  name   n+ n-  [value] [DC v] [AC mag [phase_deg]]
//   E    name   p m cp cm  gain              VCVS
//   G    name   p m cp cm  gm                VCCS
//   H    name   p m  vsource transres        CCVS
//   F    name   p m  vsource gain            CCCS
//   O    name   in+ in- out [in_test] [A0=v] [GBW=v] [MODEL=IDEAL]
//               [CONFIGURABLE] [MODE=NORMAL|FOLLOWER]
//   X    name   node1 ... nodeN subckt_name  subcircuit instance
//   .subckt NAME port1 ... portN / .ends     subcircuit definition
//   .title text        .ac dec|lin N fstart fstop
//   .probe v(node) | v(n1,n2)               .end
//
// Subcircuits are flattened on instantiation: local nodes become
// "<inst>.<node>" (ground "0"/"gnd" stays global), element names become
// "<name>.<inst>" so the leading type letter survives round-trips, and
// CCVS/CCCS control references resolve within the same instance.
// Definitions may nest instances (depth-limited).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "spice/ac_analysis.hpp"
#include "spice/netlist.hpp"

namespace mcdft::spice {

/// Result of parsing a deck: the netlist plus any analysis directives.
struct ParsedDeck {
  Netlist netlist;
  std::optional<SweepSpec> sweep;  ///< from a `.ac` card, if present
  std::vector<Probe> probes;       ///< from `.probe` cards, node-resolved
};

/// Parse a SPICE-subset deck from text.  Throws ParseError with a 1-based
/// line number on malformed input, NetlistError on semantic problems
/// (duplicate element names, ...).
ParsedDeck ParseDeck(const std::string& text);

/// Parse a deck stored in a file.  Throws util::Error if unreadable.
ParsedDeck ParseDeckFile(const std::string& path);

}  // namespace mcdft::spice
