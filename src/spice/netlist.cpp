#include "spice/netlist.hpp"

#include <algorithm>
#include <queue>

#include "spice/elements.hpp"
#include "util/strings.hpp"

namespace mcdft::spice {

Netlist::Netlist() : Netlist("untitled") {}

Netlist::Netlist(std::string title) : title_(std::move(title)) {
  node_names_.push_back("0");
  node_index_["0"] = kGround;
  node_index_["gnd"] = kGround;
}

Netlist::Netlist(Netlist&&) noexcept = default;
Netlist& Netlist::operator=(Netlist&&) noexcept = default;
Netlist::~Netlist() = default;

Netlist Netlist::Clone() const {
  Netlist copy(title_);
  copy.node_names_ = node_names_;
  copy.node_index_ = node_index_;
  copy.elements_.reserve(elements_.size());
  for (const auto& e : elements_) {
    copy.element_index_[e->Name()] = copy.elements_.size();
    copy.elements_.push_back(e->Clone());
  }
  return copy;
}

NodeId Netlist::Node(const std::string& name) {
  const std::string key = util::ToLower(name);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  const NodeId id = node_names_.size();
  node_names_.push_back(name);
  node_index_[key] = id;
  return id;
}

NodeId Netlist::FindNode(const std::string& name) const {
  auto id = TryFindNode(name);
  if (!id) throw util::NetlistError("unknown node '" + name + "'");
  return *id;
}

std::optional<NodeId> Netlist::TryFindNode(const std::string& name) const {
  auto it = node_index_.find(util::ToLower(name));
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Netlist::NodeName(NodeId id) const {
  if (id >= node_names_.size()) {
    throw util::NetlistError("node id " + std::to_string(id) + " out of range");
  }
  return node_names_[id];
}

Element& Netlist::AddElement(std::unique_ptr<Element> element) {
  if (!element) throw util::NetlistError("null element");
  const std::string& name = element->Name();
  if (element_index_.count(name) != 0) {
    throw util::NetlistError("duplicate element name '" + name + "'");
  }
  for (NodeId n : element->Nodes()) {
    if (n >= node_names_.size()) {
      throw util::NetlistError("element '" + name +
                               "' references node id outside this netlist");
    }
  }
  element_index_[name] = elements_.size();
  elements_.push_back(std::move(element));
  return *elements_.back();
}

void Netlist::RemoveElement(const std::string& name) {
  const std::string key = util::ToUpper(name);
  auto it = element_index_.find(key);
  if (it == element_index_.end()) {
    throw util::NetlistError("cannot remove unknown element '" + name + "'");
  }
  const std::size_t idx = it->second;
  elements_.erase(elements_.begin() + static_cast<std::ptrdiff_t>(idx));
  element_index_.erase(it);
  for (auto& [k, v] : element_index_) {
    if (v > idx) --v;
  }
}

Element* Netlist::FindElement(const std::string& name) {
  auto it = element_index_.find(util::ToUpper(name));
  return it == element_index_.end() ? nullptr : elements_[it->second].get();
}

const Element* Netlist::FindElement(const std::string& name) const {
  auto it = element_index_.find(util::ToUpper(name));
  return it == element_index_.end() ? nullptr : elements_[it->second].get();
}

Element& Netlist::GetElement(const std::string& name) {
  Element* e = FindElement(name);
  if (!e) throw util::NetlistError("unknown element '" + name + "'");
  return *e;
}

const Element& Netlist::GetElement(const std::string& name) const {
  const Element* e = FindElement(name);
  if (!e) throw util::NetlistError("unknown element '" + name + "'");
  return *e;
}

Element& Netlist::AddResistor(const std::string& name, const std::string& a,
                              const std::string& b, double ohms) {
  return AddElement(std::make_unique<Resistor>(name, Node(a), Node(b), ohms));
}

Element& Netlist::AddCapacitor(const std::string& name, const std::string& a,
                               const std::string& b, double farads) {
  return AddElement(std::make_unique<Capacitor>(name, Node(a), Node(b), farads));
}

Element& Netlist::AddInductor(const std::string& name, const std::string& a,
                              const std::string& b, double henries) {
  return AddElement(std::make_unique<Inductor>(name, Node(a), Node(b), henries));
}

Element& Netlist::AddVoltageSource(const std::string& name,
                                   const std::string& plus,
                                   const std::string& minus, double dc,
                                   double ac_mag, double ac_phase_deg) {
  return AddElement(std::make_unique<VoltageSource>(name, Node(plus),
                                                    Node(minus), dc, ac_mag,
                                                    ac_phase_deg));
}

Element& Netlist::AddCurrentSource(const std::string& name,
                                   const std::string& plus,
                                   const std::string& minus, double dc,
                                   double ac_mag, double ac_phase_deg) {
  return AddElement(std::make_unique<CurrentSource>(name, Node(plus),
                                                    Node(minus), dc, ac_mag,
                                                    ac_phase_deg));
}

Element& Netlist::AddVcvs(const std::string& name, const std::string& p,
                          const std::string& m, const std::string& cp,
                          const std::string& cm, double gain) {
  return AddElement(std::make_unique<Vcvs>(name, Node(p), Node(m), Node(cp),
                                           Node(cm), gain));
}

Element& Netlist::AddVccs(const std::string& name, const std::string& p,
                          const std::string& m, const std::string& cp,
                          const std::string& cm, double gm) {
  return AddElement(std::make_unique<Vccs>(name, Node(p), Node(m), Node(cp),
                                           Node(cm), gm));
}

Element& Netlist::AddCcvs(const std::string& name, const std::string& p,
                          const std::string& m, const std::string& vsource,
                          double transres) {
  return AddElement(std::make_unique<Ccvs>(name, Node(p), Node(m), vsource,
                                           transres));
}

Element& Netlist::AddCccs(const std::string& name, const std::string& p,
                          const std::string& m, const std::string& vsource,
                          double gain) {
  return AddElement(std::make_unique<Cccs>(name, Node(p), Node(m), vsource,
                                           gain));
}

Element& Netlist::AddOpamp(const std::string& name, const std::string& in_plus,
                           const std::string& in_minus, const std::string& out) {
  return AddElement(std::make_unique<Opamp>(name, Node(in_plus), Node(in_minus),
                                            Node(out)));
}

std::vector<std::string> Netlist::Validate() const {
  std::vector<std::string> problems;
  if (node_names_.size() <= 1) {
    problems.push_back("circuit has no nodes besides ground");
  }
  if (elements_.empty()) {
    problems.push_back("circuit has no elements");
  }

  // Terminal-touch census and undirected connectivity over element terminals.
  std::vector<std::size_t> touches(node_names_.size(), 0);
  std::vector<std::vector<NodeId>> adjacency(node_names_.size());
  for (const auto& e : elements_) {
    const auto& nodes = e->Nodes();
    for (NodeId n : nodes) ++touches[n];
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      adjacency[nodes[i]].push_back(nodes[i + 1]);
      adjacency[nodes[i + 1]].push_back(nodes[i]);
    }
    // Controlled sources must reference an existing voltage source.
    std::string control;
    if (e->Kind() == ElementKind::kCcvs) {
      control = static_cast<const Ccvs&>(*e).ControlSource();
    } else if (e->Kind() == ElementKind::kCccs) {
      control = static_cast<const Cccs&>(*e).ControlSource();
    }
    if (!control.empty()) {
      const Element* src = FindElement(control);
      if (!src) {
        problems.push_back(e->Name() + ": unknown control source '" + control +
                           "'");
      } else if (src->BranchCount() == 0) {
        problems.push_back(e->Name() + ": control element '" + control +
                           "' carries no branch current");
      }
    }
  }
  for (NodeId n = 1; n < node_names_.size(); ++n) {
    if (touches[n] == 0) {
      problems.push_back("node '" + node_names_[n] +
                         "' is not connected to any element");
    }
  }

  // BFS from ground: every touched node must be reachable, otherwise the MNA
  // system has a floating island and is singular.
  std::vector<bool> seen(node_names_.size(), false);
  std::queue<NodeId> queue;
  queue.push(kGround);
  seen[kGround] = true;
  while (!queue.empty()) {
    NodeId n = queue.front();
    queue.pop();
    for (NodeId next : adjacency[n]) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push(next);
      }
    }
  }
  for (NodeId n = 1; n < node_names_.size(); ++n) {
    if (touches[n] > 0 && !seen[n]) {
      problems.push_back("node '" + node_names_[n] +
                         "' has no path to ground (floating island)");
    }
  }
  return problems;
}

void Netlist::ValidateOrThrow() const {
  auto problems = Validate();
  if (problems.empty()) return;
  std::string msg = "netlist '" + title_ + "' is invalid:";
  for (const auto& p : problems) msg += "\n  - " + p;
  throw util::NetlistError(msg);
}

}  // namespace mcdft::spice
