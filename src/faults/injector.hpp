// Fault injection: create faulty circuit instances from a golden netlist.
#pragma once

#include <optional>

#include "faults/fault.hpp"
#include "spice/elements.hpp"

namespace mcdft::faults {

/// Return a deep copy of `golden` with `fault` applied.
spice::Netlist InjectFault(const spice::Netlist& golden, const Fault& fault);

/// Return a deep copy with several simultaneous faults (multiple-fault
/// analysis; the paper's single-fault assumption is the list size 1 case).
spice::Netlist InjectFaults(const spice::Netlist& golden,
                            const std::vector<Fault>& faults);

/// In-place injector that avoids a netlist clone per fault: it remembers
/// the original value of the target element, applies the fault, and
/// restores on Revert() (or destruction).  Used by the campaign driver in
/// the hot loop.
class ScopedFaultInjection {
 public:
  /// Apply `fault` to `netlist` (kept by reference; must outlive this).
  ScopedFaultInjection(spice::Netlist& netlist, const Fault& fault);

  /// Same, with the target element already resolved — the hot-path variant
  /// for loops that inject one fault at every sweep point (skips the name
  /// lookup).  `element` must be `fault`'s device and outlive this.
  ScopedFaultInjection(spice::Element& element, const Fault& fault);

  /// Restore the original value (idempotent).
  void Revert();

  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  spice::Element* element_;
  double original_value_ = 0.0;
  std::optional<spice::OpampModel> original_model_;  // opamp faults only
  bool active_ = false;
};

}  // namespace mcdft::faults
