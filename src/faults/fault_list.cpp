#include "faults/fault_list.hpp"

#include <algorithm>

namespace mcdft::faults {

bool IsPassiveRC(const spice::Element& element) {
  return element.Kind() == spice::ElementKind::kResistor ||
         element.Kind() == spice::ElementKind::kCapacitor;
}

bool IsPassive(const spice::Element& element) {
  return IsPassiveRC(element) ||
         element.Kind() == spice::ElementKind::kInductor;
}

std::vector<Fault> MakeDeviationFaults(const spice::Netlist& netlist,
                                       const DeviationFaultOptions& options) {
  if (!options.upward && !options.downward) {
    throw util::AnalysisError(
        "deviation fault generation needs at least one direction");
  }
  std::vector<Fault> faults;
  for (const auto& e : netlist.Elements()) {
    if (!e->HasValue() || !options.filter(*e)) continue;
    if (options.upward) {
      faults.emplace_back(e->Name(), FaultKind::kDeviationUp, options.magnitude);
    }
    if (options.downward) {
      faults.emplace_back(e->Name(), FaultKind::kDeviationDown,
                          options.magnitude);
    }
  }
  return faults;
}

std::vector<Fault> MakeCatastrophicFaults(
    const spice::Netlist& netlist, const CatastrophicFaultOptions& options) {
  std::vector<Fault> faults;
  for (const auto& e : netlist.Elements()) {
    if (!e->HasValue() || !options.filter(*e)) continue;
    if (options.opens) faults.push_back(Fault::Open(e->Name()));
    if (options.shorts) faults.push_back(Fault::Short(e->Name()));
  }
  return faults;
}

std::vector<Fault> MakeOpampFaults(const spice::Netlist& netlist,
                                   const OpampFaultOptions& options) {
  if (!options.gain && !options.bandwidth) {
    throw util::AnalysisError("opamp fault generation needs >= 1 fault kind");
  }
  std::vector<Fault> faults;
  for (const auto& e : netlist.Elements()) {
    if (e->Kind() != spice::ElementKind::kOpamp) continue;
    if (options.gain) {
      faults.push_back(Fault::GainDegradation(e->Name(), options.gain_factor));
    }
    if (options.bandwidth) {
      faults.push_back(
          Fault::BandwidthDegradation(e->Name(), options.gbw_factor));
    }
  }
  return faults;
}

std::vector<Fault> MergeFaultLists(
    const std::vector<std::vector<Fault>>& lists) {
  std::vector<Fault> merged;
  for (const auto& list : lists) {
    for (const auto& f : list) {
      if (std::find(merged.begin(), merged.end(), f) == merged.end()) {
        merged.push_back(f);
      }
    }
  }
  return merged;
}

}  // namespace mcdft::faults
