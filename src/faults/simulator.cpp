#include "faults/simulator.hpp"

namespace mcdft::faults {

FaultSimulator::FaultSimulator(const spice::Netlist& netlist,
                               spice::SweepSpec sweep, spice::Probe probe,
                               spice::MnaOptions options)
    : work_(netlist.Clone()),
      sweep_(std::move(sweep)),
      probe_(std::move(probe)),
      options_(options),
      analyzer_(work_, options_) {
  work_.ValidateOrThrow();
}

spice::FrequencyResponse FaultSimulator::SimulateNominal() const {
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = "nominal";
  return r;
}

spice::FrequencyResponse FaultSimulator::SimulateFault(const Fault& fault) const {
  ScopedFaultInjection injection(work_, fault);
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = fault.Label();
  return r;
}

FaultSimCampaign FaultSimulator::Run(const std::vector<Fault>& faults) const {
  FaultSimCampaign campaign;
  campaign.nominal = SimulateNominal();
  campaign.faulty.reserve(faults.size());
  for (const auto& f : faults) {
    campaign.faulty.push_back(FaultSimResult{f, SimulateFault(f)});
  }
  return campaign;
}

}  // namespace mcdft::faults
