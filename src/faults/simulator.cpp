#include "faults/simulator.hpp"

#include <numbers>
#include <optional>

#include "faults/stamp_delta.hpp"
#include "linalg/lowrank.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace mcdft::faults {

namespace metrics = util::metrics;

FaultSimulator::FaultSimulator(const spice::Netlist& netlist,
                               spice::SweepSpec sweep, spice::Probe probe,
                               spice::MnaOptions options)
    : work_(netlist.Clone()),
      sweep_(std::move(sweep)),
      probe_(std::move(probe)),
      options_(options),
      analyzer_(work_, options_) {
  work_.ValidateOrThrow();
}

spice::FrequencyResponse FaultSimulator::SimulateNominal() const {
  static metrics::Counter& nominal_sweeps =
      metrics::GetCounter("faults.sim.nominal_sweeps");
  nominal_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = "nominal";
  return r;
}

spice::FrequencyResponse FaultSimulator::SimulateFault(const Fault& fault) const {
  static metrics::Counter& fault_sweeps =
      metrics::GetCounter("faults.sim.fault_sweeps");
  fault_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  ScopedFaultInjection injection(work_, fault);
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = fault.Label();
  return r;
}

namespace {

/// Per-thread-block state of a frequency-major sweep.  Fault injection
/// mutates the netlist, so each block owns a private clone (and its own MNA
/// structures): blocks never share mutable state.
///
/// Determinism: every block derives its pivot ordering from the sweep's
/// *first* frequency (a full Markowitz factorization of the nominal system
/// at freqs[0]) and reaches any other point by numeric-only refactorization
/// under that fixed ordering.  The value computed at a frequency is thus a
/// pure function of (netlist values, frequency) — independent of how points
/// are split across blocks, threads or shards.  A point whose values reject
/// the anchored ordering gets its own fresh full factorization (again a
/// pure function of that point), and the anchor ordering stays in force for
/// subsequent points.
class FreqMajorBlock {
 public:
  FreqMajorBlock(const spice::Netlist& base, const spice::MnaOptions& options,
                 double omega0, const std::vector<Fault>& faults,
                 std::size_t fault_begin, std::size_t fault_end)
      : local_(base.Clone()), sys_(local_, options) {
    // Resolve each fault's target once: the per-point loop then skips the
    // name lookup (hash + case fold) on every (fault, frequency) pair.
    targets_.reserve(fault_end - fault_begin);
    for (std::size_t j = fault_begin; j < fault_end; ++j) {
      const std::string& device = faults[j].Device();
      targets_.push_back(
          Target{sys_.ElementIndexOf(device), &local_.GetElement(device)});
    }
    sys_.Assemble(spice::AnalysisKind::kAc, omega0, a_, rhs_);
    pattern_.emplace(a_);
    ref_lu_.emplace(pattern_->Matrix());
  }

  /// Factor the nominal system at `omega` (t == 0 reuses the anchor
  /// factorization as built) and cache x0; returns the nominal solution.
  const linalg::Vector& BindPoint(std::size_t t, double omega) {
    if (t != 0) {
      sys_.Assemble(spice::AnalysisKind::kAc, omega, a_, rhs_);
      pattern_->Update(a_);
    }
    point_lu_.reset();
    linalg::SparseLu* lu = &*ref_lu_;
    if (t != 0 && !ref_lu_->Refactor(pattern_->Matrix())) {
      point_lu_.emplace(pattern_->Matrix());
      lu = &*point_lu_;
    }
    smw_.Bind(*lu, rhs_);
    return smw_.NominalSolution();
  }

  /// Solve the bound point with fault `slot` of the block's range injected:
  /// SMW rank-update when the stamp delta allows it, exact fresh
  /// factorization otherwise.
  linalg::Vector SolveFault(const Fault& fault, std::size_t slot,
                            double omega) {
    static metrics::Counter& exact_fallback =
        metrics::GetCounter("faults.sim.exact_fallback");
    const Target& target = targets_[slot];
    if (FaultStampDelta::Compute(sys_, *target.element, target.index, fault,
                                 spice::AnalysisKind::kAc, omega, scratch_,
                                 delta_)) {
      std::optional<linalg::Vector> x = smw_.Solve(delta_);
      if (x) return std::move(*x);
    }
    // Exact path: assemble the faulty system and factor it from scratch — a
    // pure function of (faulty values, omega), preserving the determinism
    // contract.  Reuses the assembly scratch; the nominal (a_, rhs_) values
    // are not needed again at this point (x0 lives in the SMW solver) and
    // the next point reassembles anyway.
    exact_fallback.Add();
    ScopedFaultInjection injection(*target.element, fault);
    sys_.Assemble(spice::AnalysisKind::kAc, omega, a_, rhs_);
    if (pattern_->Matches(a_)) {
      pattern_->Update(a_);
      linalg::SparseLu lu(pattern_->Matrix());
      return lu.Solve(rhs_);
    }
    // A fault that changes the stamp structure (opamp model promotion):
    // solve outside the cached pattern.
    return linalg::SolveSparse(linalg::CsrMatrix(a_), rhs_);
  }

  /// Probe voltage V(plus) - V(minus) from a raw unknown vector.
  linalg::Complex ProbeValue(const spice::Probe& probe,
                             const linalg::Vector& x) const {
    const auto at = [&](spice::NodeId node) {
      return node == spice::kGround ? linalg::Complex(0.0, 0.0)
                                    : x[node - 1];
    };
    return at(probe.plus) - at(probe.minus);
  }

 private:
  /// A fault's pre-resolved injection target.
  struct Target {
    std::size_t index;        // MNA element index
    spice::Element* element;  // element inside local_
  };

  spice::Netlist local_;
  spice::MnaSystem sys_;
  std::vector<Target> targets_;
  linalg::TripletMatrix a_;
  linalg::Vector rhs_;
  std::optional<linalg::CsrAssembly> pattern_;
  std::optional<linalg::SparseLu> ref_lu_;    // anchor-ordering factorization
  std::optional<linalg::SparseLu> point_lu_;  // per-point ordering fallback
  linalg::LowRankUpdateSolver smw_;
  FaultStampDelta::Scratch scratch_;
  linalg::LowRankPerturbation delta_;
};

}  // namespace

std::vector<spice::FrequencyResponse> FaultSimulator::SimulateRange(
    const std::vector<Fault>& faults, std::size_t fault_begin,
    std::size_t fault_end, std::size_t threads) const {
  static metrics::Counter& nominal_sweeps =
      metrics::GetCounter("faults.sim.nominal_sweeps");
  static metrics::Counter& fault_sweeps =
      metrics::GetCounter("faults.sim.fault_sweeps");
  if (fault_end > faults.size() || fault_begin > fault_end) {
    throw util::AnalysisError("fault range out of bounds");
  }
  const std::size_t count = fault_end - fault_begin;

  if (!spice::LowRankFaultSolvesEnabled(options_)) {
    // Escape hatch (--no-lowrank / MCDFT_LOWRANK=0 / dense or uncached
    // solver): classic fault-major sweeps, same slot layout.
    std::vector<spice::FrequencyResponse> out;
    out.reserve(1 + count);
    out.push_back(SimulateNominal());
    for (std::size_t j = fault_begin; j < fault_end; ++j) {
      out.push_back(SimulateFault(faults[j]));
    }
    return out;
  }

  nominal_sweeps.Add();
  fault_sweeps.Add(count);
  util::trace::Span span("faults.sim.freq_major");

  const std::vector<double>& freqs = sweep_.Frequencies();
  const std::size_t points = freqs.size();
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  std::vector<spice::FrequencyResponse> out(1 + count);
  out[0].label = "nominal";
  for (std::size_t j = 0; j < count; ++j) {
    out[1 + j].label = faults[fault_begin + j].Label();
  }
  for (auto& r : out) {
    r.freqs_hz = freqs;
    r.values.resize(points);
  }

  util::ParallelForRange(
      threads, points, [&](std::size_t begin, std::size_t end) {
        FreqMajorBlock block(work_, options_, kTwoPi * freqs[0], faults,
                             fault_begin, fault_end);
        for (std::size_t t = begin; t < end; ++t) {
          const double omega = kTwoPi * freqs[t];
          out[0].values[t] = block.ProbeValue(probe_, block.BindPoint(t, omega));
          for (std::size_t j = 0; j < count; ++j) {
            out[1 + j].values[t] = block.ProbeValue(
                probe_, block.SolveFault(faults[fault_begin + j], j, omega));
          }
        }
      });
  return out;
}

FaultSimCampaign FaultSimulator::Run(const std::vector<Fault>& faults) const {
  FaultSimCampaign campaign;
  campaign.nominal = SimulateNominal();
  campaign.faulty.reserve(faults.size());
  for (const auto& f : faults) {
    campaign.faulty.push_back(FaultSimResult{f, SimulateFault(f)});
  }
  return campaign;
}

}  // namespace mcdft::faults
