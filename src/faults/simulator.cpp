#include "faults/simulator.hpp"

#include <cmath>
#include <numbers>
#include <optional>

#include "core/error.hpp"
#include "faults/stamp_delta.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace mcdft::faults {

namespace metrics = util::metrics;

namespace {

bool Finite(linalg::Complex v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

metrics::Counter& RetryCounter() {
  static metrics::Counter& c = metrics::GetCounter("faults.sim.retries");
  return c;
}

metrics::Counter& QuarantineCounter() {
  static metrics::Counter& c = metrics::GetCounter("faults.sim.quarantined");
  return c;
}

}  // namespace

FaultSimulator::FaultSimulator(const spice::Netlist& netlist,
                               spice::SweepSpec sweep, spice::Probe probe,
                               spice::MnaOptions options)
    : work_(netlist.Clone()),
      sweep_(std::move(sweep)),
      probe_(std::move(probe)),
      options_(options),
      analyzer_(work_, options_) {
  work_.ValidateOrThrow();
}

spice::FrequencyResponse FaultSimulator::SimulateNominal() const {
  static metrics::Counter& nominal_sweeps =
      metrics::GetCounter("faults.sim.nominal_sweeps");
  nominal_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = "nominal";
  return r;
}

spice::FrequencyResponse FaultSimulator::SimulateFault(const Fault& fault) const {
  static metrics::Counter& fault_sweeps =
      metrics::GetCounter("faults.sim.fault_sweeps");
  fault_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  ScopedFaultInjection injection(work_, fault);
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = fault.Label();
  return r;
}

spice::FrequencyResponse FaultSimulator::SimulateResilient(
    const Fault* fault) const {
  const std::string label = fault ? fault->Label() : "nominal";
  if (!options_.retry_ladder) {
    return fault ? SimulateFault(*fault) : SimulateNominal();
  }

  // Classic (fault-major) retry ladder, sweep granularity: a sweep that
  // throws — or contains a non-finite probe value — is retried once on a
  // fresh dense-backend analyzer (different factorization path, no pivot
  // ordering reuse).  Points still bad after the retry are quarantined;
  // a retry that throws quarantines the whole sweep.  Everything here is
  // serial and a pure function of (netlist values, sweep), so the outcome
  // is independent of thread/shard partitioning.
  std::optional<spice::FrequencyResponse> r;
  try {
    r = fault ? SimulateFault(*fault) : SimulateNominal();
  } catch (const util::Error&) {
    r.reset();
  }

  const auto has_bad_point = [](const spice::FrequencyResponse& resp) {
    for (const auto& v : resp.values) {
      if (!Finite(v)) return true;
    }
    return false;
  };

  if (!r || has_bad_point(*r)) {
    RetryCounter().Add();
    try {
      spice::MnaOptions dense = options_;
      dense.backend = spice::SolverBackend::kDense;
      std::optional<ScopedFaultInjection> injection;
      if (fault) injection.emplace(work_, *fault);
      spice::AcAnalyzer fresh(work_, dense);
      spice::FrequencyResponse retried = fresh.Run(sweep_, probe_);
      retried.label = label;
      r = std::move(retried);
    } catch (const util::Error&) {
      if (!r) {
        // Both attempts threw: quarantine the entire sweep.
        spice::FrequencyResponse all_bad;
        all_bad.freqs_hz = sweep_.Frequencies();
        all_bad.values.assign(all_bad.freqs_hz.size(),
                              linalg::Complex(0.0, 0.0));
        all_bad.label = label;
        for (std::size_t i = 0; i < all_bad.freqs_hz.size(); ++i) {
          all_bad.MarkQuarantined(i);
        }
        QuarantineCounter().Add(all_bad.freqs_hz.size());
        return all_bad;
      }
      // Keep the first attempt's response; its bad points are quarantined
      // below.
    }
    // Quarantine whatever is still non-finite after the retry.
    for (std::size_t i = 0; i < r->values.size(); ++i) {
      if (!Finite(r->values[i])) {
        r->values[i] = linalg::Complex(0.0, 0.0);
        r->MarkQuarantined(i);
        QuarantineCounter().Add();
      }
    }
  }
  return *r;
}

spice::FrequencyResponse FaultSimulator::SimulateNominalResilient() const {
  return SimulateResilient(nullptr);
}

spice::FrequencyResponse FaultSimulator::SimulateFaultResilient(
    const Fault& fault) const {
  return SimulateResilient(&fault);
}

namespace {

/// Per-thread-block state of a frequency-major sweep.  Fault injection
/// mutates the netlist, so each block owns a private clone (and its own MNA
/// structures): blocks never share mutable state.
///
/// Determinism: every block derives its pivot ordering from the sweep's
/// *first* frequency (a full Markowitz factorization of the nominal system
/// at freqs[0]) and reaches any other point by numeric-only refactorization
/// under that fixed ordering.  The value computed at a frequency is thus a
/// pure function of (netlist values, frequency) — independent of how points
/// are split across blocks, threads or shards.  A point whose values reject
/// the anchored ordering gets its own fresh full factorization (again a
/// pure function of that point), and the anchor ordering stays in force for
/// subsequent points.  The retry ladder keeps the same contract: every
/// escalation decision depends only on the cell's own inputs (an exception
/// or a non-finite value from a deterministic solve), never on timing, so
/// quarantine verdicts are identical at any thread or shard count.
class FreqMajorBlock {
 public:
  FreqMajorBlock(const spice::Netlist& base, const spice::MnaOptions& options,
                 double omega0, const std::vector<Fault>& faults,
                 std::size_t fault_begin, std::size_t fault_end)
      : local_(base.Clone()), sys_(local_, options),
        batch_size_(spice::EffectiveFaultBatch(options)),
        ladder_(options.retry_ladder) {
    // Resolve each fault's target once: the per-point loop then skips the
    // name lookup (hash + case fold) on every (fault, frequency) pair.
    targets_.reserve(fault_end - fault_begin);
    for (std::size_t j = fault_begin; j < fault_end; ++j) {
      const std::string& device = faults[j].Device();
      targets_.push_back(
          Target{sys_.ElementIndexOf(device), &local_.GetElement(device)});
    }
    sys_.Assemble(spice::AnalysisKind::kAc, omega0, a_, rhs_);
    pattern_.emplace(a_);
    if (!ladder_) {
      ref_lu_.emplace(pattern_->Matrix());
      return;
    }
    try {
      ref_lu_.emplace(pattern_->Matrix());
    } catch (const util::Error&) {
      // Anchor factorization failed: leave ref_lu_ empty — every point then
      // runs its own full factorization through the ladder.  The decision
      // depends only on (netlist values, freqs[0]), so every block across
      // every thread/shard partition makes it identically.
      RetryCounter().Add();
    }
  }

  /// Solve the nominal system at `omega` (t == 0 reuses the anchor
  /// assembly) and bind the SMW solver; returns the probe value, or
  /// nullopt when the whole retry ladder failed (quarantine the point).
  /// Without the ladder, failures propagate as exceptions (fail-fast).
  std::optional<linalg::Complex> SolveNominal(std::size_t t, double omega,
                                              const spice::Probe& probe) {
    if (t != 0) {
      sys_.Assemble(spice::AnalysisKind::kAc, omega, a_, rhs_);
      pattern_->Update(a_);
    }
    point_lu_.reset();
    smw_bound_ = false;
    dense_nominal_ = false;

    if (!ladder_) {
      linalg::SparseLu* lu = &*ref_lu_;
      if (t != 0 && !ref_lu_->Refactor(pattern_->Matrix())) {
        point_lu_.emplace(pattern_->Matrix());
        lu = &*point_lu_;
      }
      smw_.Bind(*lu, rhs_);
      smw_bound_ = true;
      return ProbeValue(probe, smw_.NominalSolution());
    }

    // Stage 1: anchored sparse factorization (the normal path).
    try {
      linalg::SparseLu* lu = nullptr;
      if (ref_lu_) {
        lu = &*ref_lu_;
        if (t != 0 && !ref_lu_->Refactor(pattern_->Matrix())) lu = nullptr;
      }
      if (lu == nullptr) {
        point_lu_.emplace(pattern_->Matrix());
        lu = &*point_lu_;
      }
      smw_.Bind(*lu, rhs_);
      const linalg::Complex v = ProbeValue(probe, smw_.NominalSolution());
      if (Finite(v)) {
        smw_bound_ = true;
        return v;
      }
    } catch (const util::Error&) {
    }
    RetryCounter().Add();

    // Stage 2: jittered pivot ordering — a fresh factorization under pure
    // partial pivoting (threshold 1.0) instead of the sparsity-favoring
    // Markowitz ordering.
    try {
      point_lu_.emplace(pattern_->Matrix(), linalg::SparseLuOptions{1.0});
      smw_.Bind(*point_lu_, rhs_);
      const linalg::Complex v = ProbeValue(probe, smw_.NominalSolution());
      if (Finite(v)) {
        smw_bound_ = true;
        return v;
      }
    } catch (const util::Error&) {
    }
    RetryCounter().Add();

    // Stage 3: dense fallback.  SMW cannot bind a dense factorization, so
    // every fault at this point takes the exact ladder directly.
    try {
      dense_x0_ = linalg::SolveDense(a_.ToDense(), rhs_);
      const linalg::Complex v = ProbeValue(probe, dense_x0_);
      if (Finite(v)) {
        dense_nominal_ = true;
        return v;
      }
    } catch (const util::Error&) {
    }
    return std::nullopt;
  }

  /// Solve the bound point with fault `slot` of the block's range injected:
  /// SMW rank-update when the stamp delta allows it, exact fresh
  /// factorization otherwise, then (ladder only) jittered-pivot and dense
  /// retries.  Returns the probe value, or nullopt when quarantined.
  std::optional<linalg::Complex> SolveFaultValue(const Fault& fault,
                                                 std::size_t slot,
                                                 double omega,
                                                 const spice::Probe& probe) {
    const Target& target = targets_[slot];

    if (!ladder_) {
      if (FaultStampDelta::Compute(sys_, *target.element, target.index, fault,
                                   spice::AnalysisKind::kAc, omega, scratch_,
                                   delta_)) {
        std::optional<linalg::Vector> x = smw_.Solve(delta_);
        if (x) return ProbeValue(probe, *x);
      }
      return SolveFaultExact(fault, slot, omega, probe);
    }

    // Stage 0: SMW rank-update against the bound nominal factorization.  A
    // declined update (rank cap, RHS delta, conditioning guard) is the
    // normal exact fallback, not a retry; a *thrown* failure or non-finite
    // value counts as one and escalates.
    if (smw_bound_) {
      bool smw_failed = false;
      try {
        if (FaultStampDelta::Compute(sys_, *target.element, target.index,
                                     fault, spice::AnalysisKind::kAc, omega,
                                     scratch_, delta_)) {
          std::optional<linalg::Vector> x = smw_.Solve(delta_);
          if (x) {
            const linalg::Complex v = ProbeValue(probe, *x);
            if (Finite(v)) return v;
            smw_failed = true;
          }
        }
      } catch (const util::Error&) {
        smw_failed = true;
      }
      if (smw_failed) RetryCounter().Add();
    }

    return SolveFaultExact(fault, slot, omega, probe);
  }

  /// Solve fault `slot` at the bound point exactly — everything after the
  /// SMW stage of SolveFaultValue(), shared with the batched path so a
  /// cell peeled out of a batch walks the identical ladder.  Returns the
  /// probe value, or nullopt when the ladder is exhausted (quarantine).
  std::optional<linalg::Complex> SolveFaultExact(const Fault& fault,
                                                 std::size_t slot,
                                                 double omega,
                                                 const spice::Probe& probe) {
    static metrics::Counter& exact_fallback =
        metrics::GetCounter("faults.sim.exact_fallback");
    const Target& target = targets_[slot];
    exact_fallback.Add();

    if (!ladder_) {
      ScopedFaultInjection injection(*target.element, fault);
      sys_.Assemble(spice::AnalysisKind::kAc, omega, a_, rhs_);
      if (pattern_->Matches(a_)) {
        pattern_->Update(a_);
        linalg::SparseLu lu(pattern_->Matrix());
        return ProbeValue(probe, lu.Solve(rhs_));
      }
      // A fault that changes the stamp structure (opamp model promotion):
      // solve outside the cached pattern.
      return ProbeValue(probe, linalg::SolveSparse(linalg::CsrMatrix(a_), rhs_));
    }

    std::optional<ScopedFaultInjection> injection;
    try {
      injection.emplace(*target.element, fault);
      sys_.Assemble(spice::AnalysisKind::kAc, omega, a_, rhs_);
    } catch (const util::Error&) {
      // The faulty value itself is unrepresentable (e.g. scales past the
      // floating-point range) or the faulty stamp cannot assemble: there
      // is no alternative factorization to try — quarantine the cell.
      RetryCounter().Add();
      return std::nullopt;
    }
    const bool same_structure = pattern_->Matches(a_);
    if (same_structure) pattern_->Update(a_);

    // Stage 1: exact sparse factorization, default Markowitz ordering.
    try {
      linalg::Vector x =
          same_structure
              ? linalg::SparseLu(pattern_->Matrix()).Solve(rhs_)
              : linalg::SolveSparse(linalg::CsrMatrix(a_), rhs_);
      const linalg::Complex v = ProbeValue(probe, x);
      if (Finite(v)) return v;
    } catch (const util::Error&) {
    }
    RetryCounter().Add();

    // Stage 2: jittered pivot ordering (pure partial pivoting).
    try {
      const linalg::SparseLuOptions jitter{1.0};
      linalg::Vector x =
          same_structure
              ? linalg::SparseLu(pattern_->Matrix(), jitter).Solve(rhs_)
              : linalg::SolveSparse(linalg::CsrMatrix(a_), rhs_, jitter);
      const linalg::Complex v = ProbeValue(probe, x);
      if (Finite(v)) return v;
    } catch (const util::Error&) {
    }
    RetryCounter().Add();

    // Stage 3: dense factorization of the faulty system.
    try {
      linalg::Vector x = linalg::SolveDense(a_.ToDense(), rhs_);
      const linalg::Complex v = ProbeValue(probe, x);
      if (Finite(v)) return v;
    } catch (const util::Error&) {
    }
    return std::nullopt;
  }

  /// Solve every fault of the block's range at the bound point and return
  /// the per-slot values (nullopt = quarantined).  With a nonzero batch
  /// width and a bound SMW solver the faults run in chunks through
  /// LowRankUpdateSolver::SolveBatch(); every outcome a batch reports maps
  /// onto exactly the action the unbatched path would have taken for that
  /// cell (see below), so values, counters and quarantine verdicts are
  /// bit-identical at any batch width — including width 0, which runs the
  /// per-fault path directly.
  const std::vector<std::optional<linalg::Complex>>& SolveFaultRow(
      const std::vector<Fault>& faults, std::size_t fault_begin, double omega,
      const spice::Probe& probe) {
    static metrics::Counter& batch_count =
        metrics::GetCounter("faults.sim.batches");
    static metrics::Counter& batched_cells =
        metrics::GetCounter("faults.sim.batched_cells");
    static metrics::Counter& batch_peeled =
        metrics::GetCounter("faults.sim.batch_peeled");
    const std::size_t count = targets_.size();
    row_.assign(count, std::nullopt);
    if (batch_size_ == 0 || !smw_bound_) {
      // Unbatched (or the nominal recovered densely / ladder-failed —
      // SMW is unbound and every cell takes the exact path anyway).
      for (std::size_t j = 0; j < count; ++j) {
        row_[j] = SolveFaultValue(faults[fault_begin + j], j, omega, probe);
      }
      return row_;
    }

    for (std::size_t chunk = 0; chunk < count; chunk += batch_size_) {
      const std::size_t cells = std::min(batch_size_, count - chunk);
      // Build the chunk's perturbations.  Cells whose stamp delta does not
      // exist (kNoDelta) or whose computation threw (kThrew, ladder only —
      // fail-fast propagates the exception) peel out before the batch.
      cell_kind_.assign(cells, kLaned);
      if (deltas_.size() < cells) deltas_.resize(cells);
      std::size_t laned = 0;
      for (std::size_t c = 0; c < cells; ++c) {
        const std::size_t j = chunk + c;
        const Target& target = targets_[j];
        bool have = false;
        if (!ladder_) {
          have = FaultStampDelta::Compute(
              sys_, *target.element, target.index, faults[fault_begin + j],
              spice::AnalysisKind::kAc, omega, scratch_, deltas_[laned]);
        } else {
          try {
            have = FaultStampDelta::Compute(
                sys_, *target.element, target.index, faults[fault_begin + j],
                spice::AnalysisKind::kAc, omega, scratch_, deltas_[laned]);
          } catch (const util::Error&) {
            RetryCounter().Add();
            cell_kind_[c] = kThrew;
            continue;
          }
        }
        if (have) {
          ++laned;
        } else {
          cell_kind_[c] = kNoDelta;
        }
      }

      if (laned > 0) {
        batch_count.Add();
        batched_cells.Add(laned);
        smw_.SolveBatch(deltas_.data(), laned, batch_);
      }

      // Resolve every cell of the chunk, peeling batch rejections onto the
      // same exact ladder the unbatched path uses.
      std::size_t compact = 0;
      for (std::size_t c = 0; c < cells; ++c) {
        const std::size_t j = chunk + c;
        const Fault& fault = faults[fault_begin + j];
        if (cell_kind_[c] != kLaned) {
          // kThrew already counted its retry; kNoDelta is the normal
          // exact fallback (unbatched: Compute false -> exact).
          row_[j] = SolveFaultExact(fault, j, omega, probe);
          batch_peeled.Add();
          continue;
        }
        const std::size_t cell = compact++;
        switch (batch_.Status(cell)) {
          case linalg::SmwBatchStatus::kSolved:
          case linalg::SmwBatchStatus::kNominal: {
            const linalg::Complex v =
                batch_.Status(cell) == linalg::SmwBatchStatus::kNominal
                    ? ProbeValue(probe, smw_.NominalSolution())
                    : ProbeBatchValue(probe, cell);
            if (!ladder_ || Finite(v)) {
              row_[j] = v;
            } else {
              // Unbatched: non-finite SMW value = one retry, then exact.
              RetryCounter().Add();
              row_[j] = SolveFaultExact(fault, j, omega, probe);
              batch_peeled.Add();
            }
            break;
          }
          case linalg::SmwBatchStatus::kDeclined:
            // Unbatched: Solve() returned nullopt -> exact fallback.
            row_[j] = SolveFaultExact(fault, j, omega, probe);
            batch_peeled.Add();
            break;
          case linalg::SmwBatchStatus::kFailed:
            // Unbatched: Solve() threw.  Fail-fast rethrows; the ladder
            // counts a retry and escalates to the exact path.
            if (!ladder_) {
              throw core::McdftError(core::ErrorCategory::kInjected,
                                     "faultpoint smw.solve");
            }
            RetryCounter().Add();
            row_[j] = SolveFaultExact(fault, j, omega, probe);
            batch_peeled.Add();
            break;
        }
      }
    }
    return row_;
  }

  /// Probe voltage V(plus) - V(minus) from a raw unknown vector.
  linalg::Complex ProbeValue(const spice::Probe& probe,
                             const linalg::Vector& x) const {
    const auto at = [&](spice::NodeId node) {
      return node == spice::kGround ? linalg::Complex(0.0, 0.0)
                                    : x[node - 1];
    };
    return at(probe.plus) - at(probe.minus);
  }

 private:
  /// A fault's pre-resolved injection target.
  struct Target {
    std::size_t index;        // MNA element index
    spice::Element* element;  // element inside local_
  };

  // Chunk-cell classification of the batched path.
  static constexpr unsigned char kLaned = 0;    // entered the SMW batch
  static constexpr unsigned char kNoDelta = 1;  // no stamp delta: exact path
  static constexpr unsigned char kThrew = 2;    // delta computation threw

  /// Probe voltage of a kSolved batch cell (same arithmetic as ProbeValue
  /// over the cell's solution lanes).
  linalg::Complex ProbeBatchValue(const spice::Probe& probe,
                                  std::size_t cell) const {
    const auto at = [&](spice::NodeId node) {
      return node == spice::kGround ? linalg::Complex(0.0, 0.0)
                                    : batch_.At(cell, node - 1);
    };
    return at(probe.plus) - at(probe.minus);
  }

  spice::Netlist local_;
  spice::MnaSystem sys_;
  std::vector<Target> targets_;
  linalg::TripletMatrix a_;
  linalg::Vector rhs_;
  std::optional<linalg::CsrAssembly> pattern_;
  std::optional<linalg::SparseLu> ref_lu_;    // anchor-ordering factorization
  std::optional<linalg::SparseLu> point_lu_;  // per-point ordering fallback
  linalg::LowRankUpdateSolver smw_;
  FaultStampDelta::Scratch scratch_;
  linalg::LowRankPerturbation delta_;
  // Batched-path scratch, reused across points and chunks.
  std::size_t batch_size_ = 0;
  std::vector<linalg::LowRankPerturbation> deltas_;
  linalg::SmwBatch batch_;
  std::vector<unsigned char> cell_kind_;
  std::vector<std::optional<linalg::Complex>> row_;
  bool ladder_ = true;
  bool smw_bound_ = false;     // SMW holds a valid nominal at this point
  bool dense_nominal_ = false; // nominal recovered densely at this point
  linalg::Vector dense_x0_;
};

}  // namespace

std::vector<spice::FrequencyResponse> FaultSimulator::SimulateRange(
    const std::vector<Fault>& faults, std::size_t fault_begin,
    std::size_t fault_end, std::size_t threads) const {
  static metrics::Counter& nominal_sweeps =
      metrics::GetCounter("faults.sim.nominal_sweeps");
  static metrics::Counter& fault_sweeps =
      metrics::GetCounter("faults.sim.fault_sweeps");
  if (fault_end > faults.size() || fault_begin > fault_end) {
    throw util::AnalysisError("fault range out of bounds");
  }
  const std::size_t count = fault_end - fault_begin;

  if (!spice::LowRankFaultSolvesEnabled(options_)) {
    // Escape hatch (--no-lowrank / MCDFT_LOWRANK=0 / dense or uncached
    // solver): classic fault-major sweeps, same slot layout, with the same
    // quarantine semantics at sweep granularity.
    std::vector<spice::FrequencyResponse> out;
    out.reserve(1 + count);
    out.push_back(SimulateNominalResilient());
    for (std::size_t j = fault_begin; j < fault_end; ++j) {
      out.push_back(SimulateFaultResilient(faults[j]));
    }
    return out;
  }

  nominal_sweeps.Add();
  fault_sweeps.Add(count);
  util::trace::Span span("faults.sim.freq_major");

  const std::vector<double>& freqs = sweep_.Frequencies();
  const std::size_t points = freqs.size();
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const bool ladder = options_.retry_ladder;

  std::vector<spice::FrequencyResponse> out(1 + count);
  out[0].label = "nominal";
  for (std::size_t j = 0; j < count; ++j) {
    out[1 + j].label = faults[fault_begin + j].Label();
  }
  for (auto& r : out) {
    r.freqs_hz = freqs;
    r.values.resize(points);
  }

  // Quarantine scratch masks: one byte per (slot, point).  vector<bool>
  // bit-packs, so adjacent frequency blocks would race on shared words —
  // bytes keep the parallel writes disjoint.  Folded into the responses'
  // masks after the join.
  std::vector<std::vector<unsigned char>> qmask;
  if (ladder) {
    qmask.assign(1 + count, std::vector<unsigned char>(points, 0));
  }

  util::ParallelForRange(
      threads, points, [&](std::size_t begin, std::size_t end) {
        FreqMajorBlock block(work_, options_, kTwoPi * freqs[0], faults,
                             fault_begin, fault_end);
        for (std::size_t t = begin; t < end; ++t) {
          const double omega = kTwoPi * freqs[t];
          const std::optional<linalg::Complex> nominal =
              block.SolveNominal(t, omega, probe_);
          if (!nominal) {
            // Nominal quarantined: every fault cell at this omega is
            // quarantined with it (there is no reference to compare
            // against).  Ladder mode only — without it SolveNominal threw.
            qmask[0][t] = 1;
            out[0].values[t] = linalg::Complex(0.0, 0.0);
            for (std::size_t j = 0; j < count; ++j) {
              qmask[1 + j][t] = 1;
              out[1 + j].values[t] = linalg::Complex(0.0, 0.0);
            }
            continue;
          }
          out[0].values[t] = *nominal;
          const std::vector<std::optional<linalg::Complex>>& row =
              block.SolveFaultRow(faults, fault_begin, omega, probe_);
          for (std::size_t j = 0; j < count; ++j) {
            if (row[j]) {
              out[1 + j].values[t] = *row[j];
            } else {
              qmask[1 + j][t] = 1;
              out[1 + j].values[t] = linalg::Complex(0.0, 0.0);
            }
          }
        }
      });

  if (ladder) {
    std::size_t quarantined = 0;
    for (std::size_t s = 0; s < qmask.size(); ++s) {
      for (std::size_t t = 0; t < points; ++t) {
        if (qmask[s][t]) {
          out[s].MarkQuarantined(t);
          ++quarantined;
        }
      }
    }
    if (quarantined > 0) QuarantineCounter().Add(quarantined);
  }
  return out;
}

FaultSimCampaign FaultSimulator::Run(const std::vector<Fault>& faults) const {
  FaultSimCampaign campaign;
  campaign.nominal = SimulateNominal();
  campaign.faulty.reserve(faults.size());
  for (const auto& f : faults) {
    campaign.faulty.push_back(FaultSimResult{f, SimulateFault(f)});
  }
  return campaign;
}

}  // namespace mcdft::faults
