#include "faults/simulator.hpp"

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace mcdft::faults {

namespace metrics = util::metrics;

FaultSimulator::FaultSimulator(const spice::Netlist& netlist,
                               spice::SweepSpec sweep, spice::Probe probe,
                               spice::MnaOptions options)
    : work_(netlist.Clone()),
      sweep_(std::move(sweep)),
      probe_(std::move(probe)),
      options_(options),
      analyzer_(work_, options_) {
  work_.ValidateOrThrow();
}

spice::FrequencyResponse FaultSimulator::SimulateNominal() const {
  static metrics::Counter& nominal_sweeps =
      metrics::GetCounter("faults.sim.nominal_sweeps");
  nominal_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = "nominal";
  return r;
}

spice::FrequencyResponse FaultSimulator::SimulateFault(const Fault& fault) const {
  static metrics::Counter& fault_sweeps =
      metrics::GetCounter("faults.sim.fault_sweeps");
  fault_sweeps.Add();
  util::trace::Span span("faults.sim.sweep");
  ScopedFaultInjection injection(work_, fault);
  spice::FrequencyResponse r = analyzer_.Run(sweep_, probe_);
  r.label = fault.Label();
  return r;
}

FaultSimCampaign FaultSimulator::Run(const std::vector<Fault>& faults) const {
  FaultSimCampaign campaign;
  campaign.nominal = SimulateNominal();
  campaign.faulty.reserve(faults.size());
  for (const auto& f : faults) {
    campaign.faulty.push_back(FaultSimResult{f, SimulateFault(f)});
  }
  return campaign;
}

}  // namespace mcdft::faults
