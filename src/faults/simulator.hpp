// Fault simulation: fault-free and faulty AC responses over a sweep.
//
// This is the paper's "extensive fault simulation" (HSPICE in the original,
// our MNA engine here).  The simulator owns a working copy of the circuit
// and runs each fault through ScopedFaultInjection, so a campaign of F
// faults costs F+1 sweeps and no netlist clones.  One AcAnalyzer persists
// across the whole campaign: fault injection is value-only, so the MNA
// structure and solve cache carry over from sweep to sweep (the analyzer
// re-derives its pivot ordering at each sweep's first point, so reuse does
// not change any numbers).
#pragma once

#include "faults/fault_list.hpp"
#include "faults/injector.hpp"
#include "spice/ac_analysis.hpp"

namespace mcdft::faults {

/// Result of simulating one fault.
struct FaultSimResult {
  Fault fault;
  spice::FrequencyResponse response;
};

/// Result of a whole campaign.
struct FaultSimCampaign {
  spice::FrequencyResponse nominal;
  std::vector<FaultSimResult> faulty;
};

/// Drives fault simulation of a fixed circuit / sweep / probe.
class FaultSimulator {
 public:
  /// The simulator clones `netlist` internally; later changes to the
  /// original do not affect it.
  FaultSimulator(const spice::Netlist& netlist, spice::SweepSpec sweep,
                 spice::Probe probe, spice::MnaOptions options = {});

  // The persistent analyzer references the internal netlist clone.
  FaultSimulator(const FaultSimulator&) = delete;
  FaultSimulator& operator=(const FaultSimulator&) = delete;

  /// Fault-free response.
  spice::FrequencyResponse SimulateNominal() const;

  /// Response with one fault injected.
  spice::FrequencyResponse SimulateFault(const Fault& fault) const;

  /// Resilient variants used by campaigns: with options.retry_ladder set
  /// (the default) a failed or non-finite sweep is retried once on a fresh
  /// dense-backend analyzer and points that stay bad are quarantined in
  /// the response's mask instead of throwing.  Without the ladder these
  /// delegate to the fail-fast variants above.
  spice::FrequencyResponse SimulateNominalResilient() const;
  spice::FrequencyResponse SimulateFaultResilient(const Fault& fault) const;

  /// Nominal + all faulty responses.
  FaultSimCampaign Run(const std::vector<Fault>& faults) const;

  /// Frequency-major fast path over a fault range: returns the nominal
  /// response followed by the responses of faults [fault_begin, fault_end)
  /// in order — the exact slot layout of one campaign-unit row.
  ///
  /// Per sweep frequency the nominal system is factored once (a numeric
  /// refactorization under an ordering derived from the sweep's first
  /// point) and every fault is applied as a Sherman-Morrison-Woodbury
  /// rank-update against it; faults the SMW path rejects (RHS deltas,
  /// near-singular updates) are solved exactly from scratch.  The sweep
  /// parallelizes over frequency blocks; every value is a pure function of
  /// (netlist values, frequency), so results are bit-identical for any
  /// `threads` (0 = resolve MCDFT_THREADS) and any fault batching.
  ///
  /// When spice::LowRankFaultSolvesEnabled(options) is false this runs the
  /// classic fault-major sweeps serially instead.
  std::vector<spice::FrequencyResponse> SimulateRange(
      const std::vector<Fault>& faults, std::size_t fault_begin,
      std::size_t fault_end, std::size_t threads) const;

  const spice::SweepSpec& Sweep() const { return sweep_; }
  const spice::Probe& GetProbe() const { return probe_; }

 private:
  /// Shared body of the resilient sweep variants (fault == nullptr runs
  /// the nominal sweep).
  spice::FrequencyResponse SimulateResilient(const Fault* fault) const;

  // mutable: SimulateFault temporarily perturbs the working netlist and
  // restores it; the object is logically const.
  mutable spice::Netlist work_;
  spice::SweepSpec sweep_;
  spice::Probe probe_;
  spice::MnaOptions options_;
  // Persistent analyzer over work_: the MNA structure survives value-only
  // fault injection, so its solve cache is reused across all sweeps.
  mutable spice::AcAnalyzer analyzer_;
};

}  // namespace mcdft::faults
