// Fault-list generation.
//
// The paper's experiments use one soft fault per passive component (the
// "20% deviations from the nominal value for all resistors and capacitors",
// Sec. 2).  The generators below produce that list plus richer variants
// (both deviation directions, catastrophic opens/shorts, custom filters).
#pragma once

#include <functional>
#include <vector>

#include "faults/fault.hpp"
#include "spice/elements.hpp"

namespace mcdft::faults {

/// Which elements a generator targets.
using ElementFilter = std::function<bool(const spice::Element&)>;

/// Filter accepting the paper's fault universe: resistors and capacitors.
bool IsPassiveRC(const spice::Element& element);

/// Filter accepting all passive components (R, L, C).
bool IsPassive(const spice::Element& element);

/// Options for soft (deviation) fault-list generation.
struct DeviationFaultOptions {
  double magnitude = 0.2;   ///< deviation as a fraction (0.2 = 20 %)
  bool upward = true;       ///< include value*(1+magnitude) faults
  bool downward = false;    ///< include value*(1-magnitude) faults
  ElementFilter filter = IsPassiveRC;
};

/// One deviation fault per selected element and direction, in netlist
/// element order (matching the paper's fR1 ... fC2 column ordering).
std::vector<Fault> MakeDeviationFaults(const spice::Netlist& netlist,
                                       const DeviationFaultOptions& options = {});

/// Catastrophic fault list: an open and/or a short per selected element.
struct CatastrophicFaultOptions {
  bool opens = true;
  bool shorts = true;
  ElementFilter filter = IsPassiveRC;
};

std::vector<Fault> MakeCatastrophicFaults(
    const spice::Netlist& netlist, const CatastrophicFaultOptions& options = {});

/// Options for opamp-internal fault generation (paper Sec. 3.1: these are
/// the faults the *transparent* configuration targets).
struct OpampFaultOptions {
  bool gain = true;            ///< include A0-degradation faults
  bool bandwidth = true;       ///< include GBW-degradation faults
  double gain_factor = 1e-5;   ///< remaining fraction of A0 (severe defect)
  double gbw_factor = 1e-3;    ///< remaining fraction of GBW
};

/// One gain- and/or bandwidth-degradation fault per opamp in the netlist.
std::vector<Fault> MakeOpampFaults(const spice::Netlist& netlist,
                                   const OpampFaultOptions& options = {});

/// Concatenate fault lists, dropping exact duplicates while keeping order.
std::vector<Fault> MergeFaultLists(const std::vector<std::vector<Fault>>& lists);

}  // namespace mcdft::faults
