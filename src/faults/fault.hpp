// Fault models for analog circuits.
//
// The paper studies *soft* (parametric deviation) faults on passive
// components — e.g. the +/-20 % deviations of Section 2 — and mentions
// catastrophic faults as the usual extension; both are modelled here.
#pragma once

#include <string>

#include "spice/netlist.hpp"

namespace mcdft::faults {

/// Kind of fault injected into a device.
enum class FaultKind {
  kDeviationUp,    ///< value * (1 + magnitude)  — soft fault
  kDeviationDown,  ///< value * (1 - magnitude)  — soft fault
  kOpen,           ///< catastrophic open: value -> value * open_factor
  kShort,          ///< catastrophic short: value -> value * short_factor
  // Faults *inside* opamps (paper Sec. 3.1: the transparent configuration
  // "is used to test faults inside opamps"; ref [5]).
  kGainDegradation,  ///< open-loop gain A0 scaled by `magnitude` (< 1)
  kBandwidthDegradation,  ///< GBW scaled by `magnitude` (< 1); forces the
                          ///< single-pole model if the opamp was ideal-ish
};

/// Short name of a fault kind ("+", "-", "open", "short").
std::string_view FaultKindName(FaultKind kind);

/// A single fault: a deviation or catastrophic defect of one element's
/// principal value.
///
/// Catastrophic faults are modelled as extreme parametric changes (a 1e9
/// resistance scale for an open resistor, 1e-9 for a short), the standard
/// simulation practice for linear fault analysis: the topology is kept, so
/// one MnaSystem structure serves the whole campaign.
class Fault {
 public:
  /// Soft deviation fault: value scaled by (1 +/- magnitude).
  /// `magnitude` must be in (0, 1) for kDeviationDown and > 0 for
  /// kDeviationUp; throws AnalysisError otherwise.
  Fault(std::string device, FaultKind kind, double magnitude);

  /// Catastrophic fault with the default extreme factors.
  static Fault Open(std::string device);
  static Fault Short(std::string device);

  /// Opamp-internal faults.  `factor` must be in (0, 1): the fraction of
  /// the nominal A0 / GBW that remains.
  static Fault GainDegradation(std::string opamp, double factor);
  static Fault BandwidthDegradation(std::string opamp, double factor);

  /// True for the opamp-internal fault kinds.
  bool IsOpampFault() const;

  const std::string& Device() const { return device_; }
  FaultKind Kind() const { return kind_; }
  double Magnitude() const { return magnitude_; }

  /// Multiplicative factor applied to the device's principal value.
  double ValueFactor() const;

  /// Display label, e.g. "fR1(+20%)", "fC2(-20%)", "fR3(open)".
  std::string Label() const;

  /// Compact label for table headers, matching the paper's columns: "fR1".
  /// Not unique when several fault kinds target one device; use Label()
  /// where uniqueness matters.
  std::string ShortLabel() const { return "f" + device_; }

  /// Apply to a netlist (mutates the named element's value).  Throws
  /// NetlistError when the device is missing or has no principal value.
  void ApplyTo(spice::Netlist& netlist) const;

  /// Apply directly to the (already resolved) target element — the hot-path
  /// variant for loops that inject one fault at every sweep point.  The
  /// element must be this fault's device.
  void ApplyTo(spice::Element& element) const;

  bool operator==(const Fault& other) const = default;

 private:
  std::string device_;
  FaultKind kind_;
  double magnitude_;
};

}  // namespace mcdft::faults
