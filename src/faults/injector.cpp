#include "faults/injector.hpp"

#include "spice/elements.hpp"

namespace mcdft::faults {

spice::Netlist InjectFault(const spice::Netlist& golden, const Fault& fault) {
  spice::Netlist faulty = golden.Clone();
  fault.ApplyTo(faulty);
  return faulty;
}

spice::Netlist InjectFaults(const spice::Netlist& golden,
                            const std::vector<Fault>& faults) {
  spice::Netlist faulty = golden.Clone();
  for (const auto& f : faults) f.ApplyTo(faulty);
  return faulty;
}

ScopedFaultInjection::ScopedFaultInjection(spice::Netlist& netlist,
                                           const Fault& fault)
    : ScopedFaultInjection(netlist.GetElement(fault.Device()), fault) {}

ScopedFaultInjection::ScopedFaultInjection(spice::Element& element,
                                           const Fault& fault)
    : element_(&element) {
  if (fault.IsOpampFault()) {
    original_model_ = static_cast<const spice::Opamp&>(element).Model();
  } else {
    original_value_ = element.Value();
  }
  fault.ApplyTo(element);
  active_ = true;
}

void ScopedFaultInjection::Revert() {
  if (!active_) return;
  if (original_model_) {
    static_cast<spice::Opamp&>(*element_).SetModel(*original_model_);
  } else {
    element_->SetValue(original_value_);
  }
  active_ = false;
}

ScopedFaultInjection::~ScopedFaultInjection() { Revert(); }

}  // namespace mcdft::faults
