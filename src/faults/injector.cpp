#include "faults/injector.hpp"

#include "spice/elements.hpp"

namespace mcdft::faults {

spice::Netlist InjectFault(const spice::Netlist& golden, const Fault& fault) {
  spice::Netlist faulty = golden.Clone();
  fault.ApplyTo(faulty);
  return faulty;
}

spice::Netlist InjectFaults(const spice::Netlist& golden,
                            const std::vector<Fault>& faults) {
  spice::Netlist faulty = golden.Clone();
  for (const auto& f : faults) f.ApplyTo(faulty);
  return faulty;
}

ScopedFaultInjection::ScopedFaultInjection(spice::Netlist& netlist,
                                           const Fault& fault)
    : netlist_(netlist), device_(fault.Device()) {
  spice::Element& e = netlist_.GetElement(device_);
  if (fault.IsOpampFault()) {
    original_model_ = static_cast<const spice::Opamp&>(e).Model();
  } else {
    original_value_ = e.Value();
  }
  fault.ApplyTo(netlist_);
  active_ = true;
}

void ScopedFaultInjection::Revert() {
  if (!active_) return;
  spice::Element& e = netlist_.GetElement(device_);
  if (original_model_) {
    static_cast<spice::Opamp&>(e).SetModel(*original_model_);
  } else {
    e.SetValue(original_value_);
  }
  active_ = false;
}

ScopedFaultInjection::~ScopedFaultInjection() { Revert(); }

}  // namespace mcdft::faults
