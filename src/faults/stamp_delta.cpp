#include "faults/stamp_delta.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "faults/injector.hpp"

namespace mcdft::faults {

namespace {

using linalg::Complex;

/// Sum duplicate coordinates in-place and drop exact zeros (value-free
/// stamp entries — e.g. a source's incidence pattern — cancel exactly
/// between the nominal and faulty recordings).
void Accumulate(std::vector<linalg::Triplet>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const linalg::Triplet& a, const linalg::Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries.size();) {
    linalg::Triplet acc = entries[i];
    for (++i; i < entries.size() && entries[i].row == acc.row &&
              entries[i].col == acc.col;
         ++i) {
      acc.value += entries[i].value;
    }
    if (acc.value != Complex(0.0, 0.0)) entries[out++] = acc;
  }
  entries.resize(out);
}

}  // namespace

bool FaultStampDelta::Compute(const spice::MnaSystem& system,
                              spice::Element& element, std::size_t element_idx,
                              const Fault& fault, spice::AnalysisKind kind,
                              double omega, Scratch& scratch,
                              linalg::LowRankPerturbation& out) {
  auto& entries = scratch.entries;
  auto& rhs = scratch.rhs;
  entries.clear();
  rhs.clear();
  system.StampElement(element_idx, kind, omega, Complex(-1.0, 0.0), entries,
                      rhs);
  {
    ScopedFaultInjection injection(element, fault);
    system.StampElement(element_idx, kind, omega, Complex(1.0, 0.0), entries,
                        rhs);
  }

  // An RHS delta (independent-source value fault) cannot be folded into a
  // matrix update: x_f = (A+Delta)^{-1}(b+db) needs the exact path.
  {
    std::sort(rhs.begin(), rhs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < rhs.size();) {
      Complex acc = rhs[i].second;
      const std::size_t row = rhs[i].first;
      for (++i; i < rhs.size() && rhs[i].first == row; ++i) acc += rhs[i].second;
      if (acc != Complex(0.0, 0.0)) return false;
    }
  }

  Accumulate(entries);
  std::size_t rank = 0;
  const auto finish = [&] {
    out.terms.resize(rank);
    return true;
  };
  if (entries.empty()) return finish();  // change invisible at this kind

  // Dense closure of the delta over its touched rows/columns.
  auto& rows = scratch.rows;
  auto& cols = scratch.cols;
  rows.clear();
  cols.clear();
  for (const auto& e : entries) {
    rows.push_back(e.row);
    cols.push_back(e.col);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  const std::size_t nr = rows.size(), nc = cols.size();
  auto& d = scratch.dense;
  d.assign(nr * nc, Complex(0.0, 0.0));
  const auto row_of = [&](std::size_t r) {
    return static_cast<std::size_t>(
        std::lower_bound(rows.begin(), rows.end(), r) - rows.begin());
  };
  const auto col_of = [&](std::size_t c) {
    return static_cast<std::size_t>(
        std::lower_bound(cols.begin(), cols.end(), c) - cols.begin());
  };
  double maxabs = 0.0;
  for (const auto& e : entries) {
    d[row_of(e.row) * nc + col_of(e.col)] += e.value;
    maxabs = std::max(maxabs, std::abs(e.value));
  }
  if (maxabs == 0.0) return finish();

  // Complete-pivot elimination: peel rank-1 terms until the residual is
  // stamp roundoff.  A two-terminal admittance delta terminates after one
  // step exactly; the cap guards pathological multi-branch stamps.
  const double drop = kDropTol * maxabs;
  auto& u_col = scratch.u_col;
  auto& w_row = scratch.w_row;
  for (std::size_t step = 0; step <= linalg::LowRankUpdateSolver::kMaxRank;
       ++step) {
    std::size_t pi = 0, pj = 0;
    double pmag = 0.0;
    for (std::size_t i = 0; i < nr; ++i) {
      for (std::size_t j = 0; j < nc; ++j) {
        const double mag = std::abs(d[i * nc + j]);
        if (mag > pmag) {
          pmag = mag;
          pi = i;
          pj = j;
        }
      }
    }
    if (pmag <= drop) return finish();  // fully factorized
    if (step == linalg::LowRankUpdateSolver::kMaxRank) {
      return false;  // rank above the SMW cap
    }
    const Complex pivot = d[pi * nc + pj];
    // Snapshot the pivot column (u) and normalized pivot row (w) before
    // subtracting the outer product — the subtraction overwrites both.
    u_col.resize(nr);
    w_row.resize(nc);
    for (std::size_t i = 0; i < nr; ++i) u_col[i] = d[i * nc + pj];
    for (std::size_t j = 0; j < nc; ++j) w_row[j] = d[pi * nc + j] / pivot;
    if (out.terms.size() <= rank) out.terms.emplace_back();
    linalg::LowRankTerm& term = out.terms[rank++];
    term.u.clear();
    term.w.clear();
    for (std::size_t i = 0; i < nr; ++i) {
      if (u_col[i] != Complex(0.0, 0.0)) term.u.emplace_back(rows[i], u_col[i]);
    }
    for (std::size_t j = 0; j < nc; ++j) {
      if (w_row[j] != Complex(0.0, 0.0)) term.w.emplace_back(cols[j], w_row[j]);
    }
    for (std::size_t i = 0; i < nr; ++i) {
      if (u_col[i] == Complex(0.0, 0.0)) continue;
      for (std::size_t j = 0; j < nc; ++j) {
        d[i * nc + j] -= u_col[i] * w_row[j];
      }
    }
  }
  return finish();
}

std::optional<linalg::LowRankPerturbation> FaultStampDelta::Compute(
    const spice::MnaSystem& system, spice::Netlist& netlist,
    const Fault& fault, spice::AnalysisKind kind, double omega) {
  const std::size_t idx = system.ElementIndexOf(fault.Device());
  Scratch scratch;
  linalg::LowRankPerturbation delta;
  if (!Compute(system, netlist.GetElement(fault.Device()), idx, fault, kind,
               omega, scratch, delta)) {
    return std::nullopt;
  }
  return delta;
}

}  // namespace mcdft::faults
