// Derivation of a fault's low-rank MNA perturbation from its element stamp.
//
// A parametric fault changes one element's principal value, so the faulty
// system matrix differs from the nominal one only by that element's stamp
// delta: recording the stamp with weight -1 at nominal values and +1 with
// the fault injected yields a handful of triplets whose dense closure is
// rank <= 2 for every two-terminal stamp (and rank 1 for most).  The delta
// is factorized as Delta = sum_j u_j w_j^T, ready for the SMW solver.
//
// Faults that touch the right-hand side (independent-source value faults)
// or exceed the rank cap have no pure-matrix low-rank form; Compute()
// returns nullopt and the caller must solve the faulty system exactly.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "faults/fault.hpp"
#include "linalg/lowrank.hpp"
#include "spice/mna.hpp"

namespace mcdft::faults {

class FaultStampDelta {
 public:
  /// Drop tolerance of the rank factorization, relative to the largest
  /// delta entry: elimination residue below this is stamp roundoff, not
  /// structure.
  static constexpr double kDropTol = 1e-13;

  /// Reusable working storage for Compute().  A sweep computes one delta
  /// per (fault, frequency); keeping the buffers across calls turns the
  /// per-call cost into a handful of resize()s.
  struct Scratch {
    std::vector<linalg::Triplet> entries;
    std::vector<std::pair<std::size_t, linalg::Complex>> rhs;
    std::vector<std::size_t> rows, cols;
    std::vector<linalg::Complex> dense, u_col, w_row;
  };

  /// Compute the rank-factorized matrix perturbation of `fault` on
  /// `netlist` for analysis (kind, omega).  `system` must index `netlist`;
  /// the netlist is mutated (fault injected) and restored before return.
  /// Returns nullopt when the fault is not expressible as a pure low-rank
  /// matrix update (RHS delta, unknown device, or rank above
  /// linalg::LowRankUpdateSolver::kMaxRank).
  static std::optional<linalg::LowRankPerturbation> Compute(
      const spice::MnaSystem& system, spice::Netlist& netlist,
      const Fault& fault, spice::AnalysisKind kind, double omega);

  /// Hot-path variant with the target element pre-resolved and all
  /// allocations amortized: fills `out` (clearing any previous terms) and
  /// returns true, or returns false where the overload above returns
  /// nullopt.  `element` must be `system`'s element `element_idx` and
  /// `fault`'s device.
  static bool Compute(const spice::MnaSystem& system, spice::Element& element,
                      std::size_t element_idx, const Fault& fault,
                      spice::AnalysisKind kind, double omega, Scratch& scratch,
                      linalg::LowRankPerturbation& out);
};

}  // namespace mcdft::faults
