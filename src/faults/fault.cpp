#include "faults/fault.hpp"

#include <cmath>
#include <cstdio>

#include "spice/elements.hpp"
#include "util/strings.hpp"

namespace mcdft::faults {

namespace {
// Extreme-but-finite factors keeping the MNA system well conditioned while
// being far outside any realistic process deviation.
constexpr double kOpenFactor = 1e9;
constexpr double kShortFactor = 1e-9;
}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviationUp: return "+";
    case FaultKind::kDeviationDown: return "-";
    case FaultKind::kOpen: return "open";
    case FaultKind::kShort: return "short";
    case FaultKind::kGainDegradation: return "lowA0";
    case FaultKind::kBandwidthDegradation: return "lowGBW";
  }
  return "?";
}

Fault::Fault(std::string device, FaultKind kind, double magnitude)
    : device_(util::ToUpper(device)), kind_(kind), magnitude_(magnitude) {
  if (kind == FaultKind::kDeviationUp || kind == FaultKind::kDeviationDown) {
    if (!(magnitude > 0.0) || !std::isfinite(magnitude)) {
      throw util::AnalysisError("deviation magnitude must be positive, got " +
                                std::to_string(magnitude));
    }
    if (kind == FaultKind::kDeviationDown && magnitude >= 1.0) {
      throw util::AnalysisError(
          "downward deviation must be < 100%, got " + std::to_string(magnitude));
    }
  }
  if ((kind == FaultKind::kGainDegradation ||
       kind == FaultKind::kBandwidthDegradation) &&
      (!(magnitude > 0.0) || !(magnitude < 1.0))) {
    throw util::AnalysisError("degradation factor must be in (0,1), got " +
                              std::to_string(magnitude));
  }
}

Fault Fault::Open(std::string device) {
  return Fault(std::move(device), FaultKind::kOpen, 0.0);
}

Fault Fault::Short(std::string device) {
  return Fault(std::move(device), FaultKind::kShort, 0.0);
}

Fault Fault::GainDegradation(std::string opamp, double factor) {
  if (!(factor > 0.0) || !(factor < 1.0)) {
    throw util::AnalysisError("gain degradation factor must be in (0,1), got " +
                              std::to_string(factor));
  }
  return Fault(std::move(opamp), FaultKind::kGainDegradation, factor);
}

Fault Fault::BandwidthDegradation(std::string opamp, double factor) {
  if (!(factor > 0.0) || !(factor < 1.0)) {
    throw util::AnalysisError(
        "bandwidth degradation factor must be in (0,1), got " +
        std::to_string(factor));
  }
  return Fault(std::move(opamp), FaultKind::kBandwidthDegradation, factor);
}

bool Fault::IsOpampFault() const {
  return kind_ == FaultKind::kGainDegradation ||
         kind_ == FaultKind::kBandwidthDegradation;
}

double Fault::ValueFactor() const {
  switch (kind_) {
    case FaultKind::kDeviationUp: return 1.0 + magnitude_;
    case FaultKind::kDeviationDown: return 1.0 - magnitude_;
    case FaultKind::kOpen: return kOpenFactor;
    case FaultKind::kShort: return kShortFactor;
    case FaultKind::kGainDegradation:
    case FaultKind::kBandwidthDegradation: return magnitude_;
  }
  return 1.0;
}

std::string Fault::Label() const {
  switch (kind_) {
    case FaultKind::kDeviationUp:
      return "f" + device_ + "(+" + util::FormatTrimmed(magnitude_ * 100.0) +
             "%)";
    case FaultKind::kDeviationDown:
      return "f" + device_ + "(-" + util::FormatTrimmed(magnitude_ * 100.0) +
             "%)";
    case FaultKind::kOpen: return "f" + device_ + "(open)";
    case FaultKind::kShort: return "f" + device_ + "(short)";
    case FaultKind::kGainDegradation: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", magnitude_);
      return "f" + device_ + "(A0x" + buf + ")";
    }
    case FaultKind::kBandwidthDegradation: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", magnitude_);
      return "f" + device_ + "(GBWx" + buf + ")";
    }
  }
  return "f" + device_;
}

void Fault::ApplyTo(spice::Netlist& netlist) const {
  ApplyTo(netlist.GetElement(device_));
}

void Fault::ApplyTo(spice::Element& e) const {
  if (IsOpampFault()) {
    if (e.Kind() != spice::ElementKind::kOpamp) {
      throw util::NetlistError("opamp fault targets non-opamp '" + device_ +
                               "'");
    }
    auto& op = static_cast<spice::Opamp&>(e);
    spice::OpampModel model = op.Model();
    if (kind_ == FaultKind::kGainDegradation) {
      model.a0 *= magnitude_;
      if (model.kind == spice::OpampModelKind::kIdeal) {
        // An ideal opamp has no gain to degrade; fall back to finite gain.
        model.kind = spice::OpampModelKind::kFiniteGain;
      }
    } else {
      // Bandwidth degradation needs the single-pole model to be visible.
      model.kind = spice::OpampModelKind::kSinglePole;
      model.gbw *= magnitude_;
    }
    op.SetModel(model);
    return;
  }
  if (!e.HasValue()) {
    throw util::NetlistError("fault target '" + device_ +
                             "' has no principal value to deviate");
  }
  // Opens/shorts scale conductance-like and impedance-like values in the
  // physically correct direction: an *open* capacitor loses capacitance,
  // an open resistor gains resistance.
  double factor = ValueFactor();
  if (e.Kind() == spice::ElementKind::kCapacitor) {
    if (kind_ == FaultKind::kOpen) factor = kShortFactor;
    if (kind_ == FaultKind::kShort) factor = kOpenFactor;
  }
  e.SetValue(e.Value() * factor);
}

}  // namespace mcdft::faults
