#include "circuits/khn.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double KhnParams::F0() const {
  return 1.0 / (2.0 * std::numbers::pi * std::sqrt(r6 * r7 * c1 * c2));
}

core::AnalogBlock BuildKhn(const KhnParams& p) {
  core::AnalogBlock block;
  block.name = "KHN state-variable filter";
  block.input_node = "in";
  block.output_node = "out3";
  block.opamps = {"OP1", "OP2", "OP3"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);

  // OP1: summer.  HP = (1 + R3/R2)*V(nb) - (R3/R2)*LP with
  // V(nb) = (Vin/R1 + BP/R4) / (1/R1 + 1/R4 + 1/R5).
  nl.AddResistor("R1", "in", "nb", p.r1);
  nl.AddResistor("R4", "out2", "nb", p.r4);
  nl.AddResistor("R5", "nb", "0", p.r5);
  nl.AddResistor("R2", "out3", "na", p.r2);
  nl.AddResistor("R3", "na", "out1", p.r3);
  nl.AddElement(std::make_unique<spice::Opamp>("OP1", nl.Node("nb"),
                                               nl.Node("na"), nl.Node("out1"),
                                               p.opamp));

  // OP2: first inverting integrator (BP = -HP / (s R6 C1)).
  nl.AddResistor("R6", "out1", "n2", p.r6);
  nl.AddCapacitor("C1", "n2", "out2", p.c1);
  nl.AddElement(std::make_unique<spice::Opamp>("OP2", nl.Node("0"),
                                               nl.Node("n2"), nl.Node("out2"),
                                               p.opamp));

  // OP3: second inverting integrator (LP = -BP / (s R7 C2)).
  nl.AddResistor("R7", "out2", "n3", p.r7);
  nl.AddCapacitor("C2", "n3", "out3", p.c2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP3", nl.Node("0"),
                                               nl.Node("n3"), nl.Node("out3"),
                                               p.opamp));
  return block;
}

core::DftCircuit BuildDftKhn(const KhnParams& params) {
  return core::DftCircuit::Transform(BuildKhn(params));
}

}  // namespace mcdft::circuits
