#include "circuits/biquad.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double BiquadParams::F0() const {
  return std::sqrt(r5 / (r3 * r6 * c1 * c2 * r4)) / (2.0 * std::numbers::pi);
}

double BiquadParams::Q() const {
  return r2 * c1 * 2.0 * std::numbers::pi * F0();
}

core::AnalogBlock BuildBiquad(const BiquadParams& p) {
  core::AnalogBlock block;
  block.name = "Tow-Thomas biquadratic filter";
  block.input_node = "in";
  block.output_node = "out3";
  block.opamps = {"OP1", "OP2", "OP3"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);

  // OP1: lossy inverting integrator (summing node n1).
  nl.AddResistor("R1", "in", "n1", p.r1);
  nl.AddCapacitor("C1", "n1", "out1", p.c1);
  nl.AddResistor("R2", "n1", "out1", p.r2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP1", nl.Node("0"),
                                               nl.Node("n1"), nl.Node("out1"),
                                               p.opamp));

  // OP2: inverting integrator.
  nl.AddResistor("R3", "out1", "n2", p.r3);
  nl.AddCapacitor("C2", "n2", "out2", p.c2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP2", nl.Node("0"),
                                               nl.Node("n2"), nl.Node("out2"),
                                               p.opamp));

  // OP3: unity inverter.
  nl.AddResistor("R4", "out2", "n3", p.r4);
  nl.AddResistor("R5", "n3", "out3", p.r5);
  nl.AddElement(std::make_unique<spice::Opamp>("OP3", nl.Node("0"),
                                               nl.Node("n3"), nl.Node("out3"),
                                               p.opamp));

  // Resonator loop closure.
  nl.AddResistor("R6", "out3", "n1", p.r6);
  return block;
}

core::DftCircuit BuildDftBiquad(const BiquadParams& params) {
  return core::DftCircuit::Transform(BuildBiquad(params));
}

}  // namespace mcdft::circuits
