#include "circuits/ackerberg.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double AckerbergParams::F0() const {
  return std::sqrt(r5 / (r4 * r3 * r6 * c1 * c2)) / (2.0 * std::numbers::pi);
}

core::AnalogBlock BuildAckerberg(const AckerbergParams& p) {
  core::AnalogBlock block;
  block.name = "Ackerberg-Mossberg-style biquad (inverter inside the loop)";
  block.input_node = "in";
  block.output_node = "out3";
  block.opamps = {"OP1", "OP2", "OP3"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);

  // OP1: lossy inverting integrator.
  nl.AddResistor("R1", "in", "n1", p.r1);
  nl.AddCapacitor("C1", "n1", "out1", p.c1);
  nl.AddResistor("R2", "n1", "out1", p.r2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP1", nl.Node("0"),
                                               nl.Node("n1"), nl.Node("out1"),
                                               p.opamp));

  // OP2: unity inverter between the two integrators (the AM arrangement:
  // the sign inversion lives inside the resonator loop, so the second
  // integration is effectively non-inverting).
  nl.AddResistor("R4", "out1", "n2", p.r4);
  nl.AddResistor("R5", "n2", "out2", p.r5);
  nl.AddElement(std::make_unique<spice::Opamp>("OP2", nl.Node("0"),
                                               nl.Node("n2"), nl.Node("out2"),
                                               p.opamp));

  // OP3: inverting integrator closing at the low-pass output.
  nl.AddResistor("R3", "out2", "n3", p.r3);
  nl.AddCapacitor("C2", "n3", "out3", p.c2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP3", nl.Node("0"),
                                               nl.Node("n3"), nl.Node("out3"),
                                               p.opamp));

  // Loop closure back to the summing node.
  nl.AddResistor("R6", "out3", "n1", p.r6);
  return block;
}

core::DftCircuit BuildDftAckerberg(const AckerbergParams& params) {
  return core::DftCircuit::Transform(BuildAckerberg(params));
}

}  // namespace mcdft::circuits
