#include "circuits/zoo.hpp"

#include "circuits/ackerberg.hpp"
#include "circuits/biquad.hpp"
#include "circuits/cascade.hpp"
#include "circuits/instrumentation.hpp"
#include "circuits/khn.hpp"
#include "circuits/leapfrog.hpp"
#include "circuits/notch.hpp"
#include "circuits/sallen_key.hpp"

namespace mcdft::circuits {

const std::vector<ZooEntry>& Zoo() {
  static const std::vector<ZooEntry> zoo = {
      {"biquad", "Tow-Thomas biquad (the paper's Fig. 1; 3 opamps)",
       [] { return BuildBiquad(); }},
      {"khn", "KHN state-variable filter (3 opamps)",
       [] { return BuildKhn(); }},
      {"ackerberg", "Ackerberg-Mossberg biquad (3 opamps)",
       [] { return BuildAckerberg(); }},
      {"sallenkey", "4th-order Sallen-Key Butterworth cascade (2 opamps)",
       [] { return BuildSallenKey(); }},
      {"inamp", "3-opamp instrumentation amplifier with output pole",
       [] { return BuildInstrumentation(); }},
      {"notch", "KHN-based notch, HP+LP summer (4 opamps)",
       [] { return BuildNotch(); }},
      {"leapfrog", "5-opamp leapfrog ladder low-pass",
       [] { return BuildLeapfrog(); }},
      {"cascade6", "6th-order Butterworth cascade, 3x Tow-Thomas (9 opamps)",
       [] { return BuildCascade6(); }},
  };
  return zoo;
}

const ZooEntry& FindInZoo(const std::string& name) {
  for (const auto& entry : Zoo()) {
    if (entry.name == name) return entry;
  }
  std::string valid;
  for (const auto& entry : Zoo()) valid += " " + entry.name;
  throw util::Error("unknown circuit '" + name + "'; valid names:" + valid);
}

}  // namespace mcdft::circuits
