#include "circuits/sallen_key.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double SallenKeyParams::F0Section1() const {
  return 1.0 / (2.0 * std::numbers::pi * std::sqrt(r1 * r2 * c1 * c2));
}

double SallenKeyParams::F0Section2() const {
  return 1.0 / (2.0 * std::numbers::pi * std::sqrt(r3 * r4 * c3 * c4));
}

namespace {

/// One unity-gain Sallen-Key LP section from `in` to `out`.
void AddSection(spice::Netlist& nl, const std::string& suffix,
                const std::string& in, const std::string& out,
                const std::string& op_name, double ra, double rb, double ca,
                double cb, const spice::OpampModel& model) {
  const std::string x = "x" + suffix;
  const std::string y = "y" + suffix;
  nl.AddResistor("R" + suffix + "A", in, x, ra);
  nl.AddResistor("R" + suffix + "B", x, y, rb);
  nl.AddCapacitor("C" + suffix + "A", x, out, ca);
  nl.AddCapacitor("C" + suffix + "B", y, "0", cb);
  // Unity-gain follower: V- tied to the output node.
  nl.AddElement(std::make_unique<spice::Opamp>(op_name, nl.Node(y),
                                               nl.Node(out), nl.Node(out),
                                               model));
}

}  // namespace

core::AnalogBlock BuildSallenKey(const SallenKeyParams& p) {
  core::AnalogBlock block;
  block.name = "4th-order Sallen-Key Butterworth low-pass";
  block.input_node = "in";
  block.output_node = "out2";
  block.opamps = {"OP1", "OP2"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);
  AddSection(nl, "1", "in", "out1", "OP1", p.r1, p.r2, p.c1, p.c2, p.opamp);
  AddSection(nl, "2", "out1", "out2", "OP2", p.r3, p.r4, p.c3, p.c4, p.opamp);
  return block;
}

core::DftCircuit BuildDftSallenKey(const SallenKeyParams& params) {
  return core::DftCircuit::Transform(BuildSallenKey(params));
}

}  // namespace mcdft::circuits
