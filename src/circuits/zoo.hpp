// Circuit registry: every bundled circuit by name, for the examples and
// benches that take a `--circuit` argument.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// A registry entry: the functional block builder plus metadata.
struct ZooEntry {
  std::string name;         ///< registry key, e.g. "biquad"
  std::string description;  ///< one-line description
  std::function<core::AnalogBlock()> build;
};

/// All bundled circuits with default parameters, in difficulty order.
const std::vector<ZooEntry>& Zoo();

/// Look up a circuit by name; throws util::Error with the list of valid
/// names when unknown.
const ZooEntry& FindInZoo(const std::string& name);

}  // namespace mcdft::circuits
