// Ackerberg-Mossberg-style biquad: lossy inverting integrator, then the
// unity inverter, then the second integrator — the sign inversion sits
// *inside* the resonator loop, making the second integration effectively
// non-inverting.  Same component census as the Tow-Thomas biquad (3
// opamps, R1..R6, C1, C2) but a different stage ordering, so its
// configuration signatures differ — a good contrast circuit for the
// optimizer.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults match the Tow-Thomas defaults
/// (f0 ~= 1 kHz, Q ~= 0.95, unity DC gain) for apples-to-apples contrast.
struct AckerbergParams {
  double r1 = 15.9e3;  ///< input resistor
  double r2 = 15.1e3;  ///< damping resistor (Q)
  double r3 = 15.9e3;  ///< integrator-coupling resistor
  double r4 = 10e3;    ///< inverter input resistor
  double r5 = 10e3;    ///< inverter feedback resistor
  double r6 = 15.9e3;  ///< loop feedback resistor
  double c1 = 10e-9;
  double c2 = 10e-9;
  spice::OpampModel opamp = {};

  /// Ideal resonance frequency 1/(2*pi*sqrt(R3 R6 C1 C2)).
  double F0() const;
};

/// Functional block: AC source "VIN" at "in", low-pass output "out3",
/// chain OP1, OP2, OP3.
core::AnalogBlock BuildAckerberg(const AckerbergParams& params = {});

/// Brute-force DFT-modified Ackerberg-Mossberg biquad.
core::DftCircuit BuildDftAckerberg(const AckerbergParams& params = {});

}  // namespace mcdft::circuits
