// 6th-order Butterworth low-pass as a cascade of three Tow-Thomas biquads:
// nine opamps, 512 configurations.  This is the "more complex analog
// circuits" case the paper's conclusion announces; it exercises the
// structural configuration pre-selection (UpToKFollowers) and the
// scalable set-cover path of the optimizer.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Cascade parameters.
struct CascadeParams {
  double f0 = 1e3;          ///< Butterworth cutoff (Hz)
  double r = 10e3;          ///< inverter resistors
  double c = 10e-9;         ///< integrating capacitors
  spice::OpampModel opamp = {};
};

/// Functional block: AC source "VIN" at "in", output "o3_3" (3rd biquad's
/// inverter output), opamp chain OP11..OP33 in signal order.
core::AnalogBlock BuildCascade6(const CascadeParams& params = {});

/// Brute-force DFT-modified cascade (9 configurable opamps).
core::DftCircuit BuildDftCascade6(const CascadeParams& params = {});

}  // namespace mcdft::circuits
