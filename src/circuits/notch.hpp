// Band-reject (notch) filter: the KHN state-variable core plus a fourth
// opamp summing the HP and LP outputs — the classical universal-filter
// notch realization.  The response has a true transmission zero at f0,
// which exercises the deviation-measurement floor (a pointwise |dT/T|
// reading would explode at the null).
#pragma once

#include "circuits/khn.hpp"

namespace mcdft::circuits {

/// Component values: the KHN core plus the summing stage.
struct NotchParams {
  KhnParams khn;        ///< state-variable core (f0, Q)
  double r8 = 10e3;     ///< HP input to the summer
  double r9 = 10e3;     ///< LP input to the summer
  double r10 = 10e3;    ///< summer feedback
  spice::OpampModel opamp = {};

  /// Notch frequency (= the KHN resonance).
  double F0() const { return khn.F0(); }
};

/// Functional block: AC source "VIN" at "in", notch output "out4",
/// chain OP1..OP4.  10 resistors + 2 capacitors (12 fault sites).
core::AnalogBlock BuildNotch(const NotchParams& params = {});

/// Brute-force DFT-modified notch (4 configurable opamps, 16 configs).
core::DftCircuit BuildDftNotch(const NotchParams& params = {});

}  // namespace mcdft::circuits
