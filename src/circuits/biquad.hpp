// The paper's example circuit (Fig. 1): a biquadratic filter with three
// opamps, six resistors and two capacitors — the Tow-Thomas two-integrator
// biquad, the standard topology with exactly this component census.
//
//   Vin --R1--+                                   +--R4--+
//             |                                   |      |
//            (n1)--[OP1: C1 || R2]--(out1)--R3--(n2)    (n3)--[OP3: R5]--(out3)
//             |                     [OP2: C2]--(out2)----+
//             +-----------R6-----------------------------(out3 feedback)
//
// OP1 is a lossy inverting integrator, OP2 an inverting integrator and OP3
// an inverter; R6 closes the resonator loop from the primary output back
// to the OP1 summing node.  The primary output is out3 (low-pass).
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults give f0 ~= 1 kHz, Q ~= 0.95, unity DC gain
/// — an operating point whose testability signature reproduces the
/// qualitative shape of the paper's results (poor functional-configuration
/// omega-detectability, 100 % multi-configuration coverage, non-trivial
/// minimal covers, and a 2-of-3-opamp partial DFT).
struct BiquadParams {
  double r1 = 15.9e3;  ///< input resistor (DC gain = R6/R1 * R5/R4)
  double r2 = 15.1e3;  ///< damping resistor across C1 (sets Q)
  double r3 = 15.9e3;  ///< integrator-coupling resistor
  double r4 = 10e3;    ///< inverter input resistor
  double r5 = 10e3;    ///< inverter feedback resistor
  double r6 = 15.9e3;  ///< loop feedback resistor
  double c1 = 10e-9;   ///< OP1 integrating capacitor
  double c2 = 10e-9;   ///< OP2 integrating capacitor
  spice::OpampModel opamp = {};  ///< opamp model for all three opamps

  /// Ideal-opamp resonance frequency 1/(2*pi*sqrt(R3 R6 C1 C2)) * sqrt(R5/R4).
  double F0() const;

  /// Ideal-opamp quality factor.
  double Q() const;
};

/// Build the functional biquad as an AnalogBlock (AC source "VIN" driving
/// node "in"; output node "out3"; opamp chain OP1, OP2, OP3).
core::AnalogBlock BuildBiquad(const BiquadParams& params = {});

/// The paper's full pipeline fixture: the biquad after brute-force DFT
/// insertion (all three opamps configurable).
core::DftCircuit BuildDftBiquad(const BiquadParams& params = {});

}  // namespace mcdft::circuits
