// 4th-order Butterworth low-pass as two cascaded unity-gain Sallen-Key
// sections.  Two opamps used as followers — a deliberately opamp-poor
// circuit showing the multi-configuration technique on cascaded stages
// with only 4 configurations.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults give a 4th-order Butterworth at ~1 kHz
/// (section Qs 0.5412 and 1.3066).
struct SallenKeyParams {
  // Section 1 (Q = 0.5412).
  double r1 = 10e3;
  double r2 = 10e3;
  double c1 = 17.2e-9;  ///< feedback capacitor (node x -> out1)
  double c2 = 14.7e-9;  ///< shunt capacitor (node y -> ground)
  // Section 2 (Q = 1.3066).
  double r3 = 10e3;
  double r4 = 10e3;
  double c3 = 41.6e-9;
  double c4 = 6.09e-9;
  spice::OpampModel opamp = {};

  /// Ideal cutoff of section 1.
  double F0Section1() const;
  /// Ideal cutoff of section 2.
  double F0Section2() const;
};

/// Functional block: AC source "VIN" at "in", output "out2", chain OP1, OP2.
core::AnalogBlock BuildSallenKey(const SallenKeyParams& params = {});

/// Brute-force DFT-modified cascade.
core::DftCircuit BuildDftSallenKey(const SallenKeyParams& params = {});

}  // namespace mcdft::circuits
