// KHN (Kerwin-Huelsman-Newcomb) state-variable filter: a summing amplifier
// and two inverting integrators producing simultaneous HP/BP/LP outputs.
// Three opamps, seven resistors, two capacitors — the next step up from
// the paper's biquad for the multi-configuration extension study.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults give f0 ~= 1 kHz, Q = 5.
struct KhnParams {
  double r1 = 10e3;    ///< Vin -> summer non-inverting input
  double r2 = 10e3;    ///< LP feedback -> summer inverting input
  double r3 = 10e3;    ///< summer feedback
  double r4 = 10e3;    ///< BP feedback -> summer non-inverting input
  double r5 = 1.25e3;  ///< non-inverting input to ground (sets Q)
  double r6 = 15.9e3;  ///< first integrator resistor
  double r7 = 15.9e3;  ///< second integrator resistor
  double c1 = 10e-9;   ///< first integrator capacitor
  double c2 = 10e-9;   ///< second integrator capacitor
  spice::OpampModel opamp = {};

  /// Ideal resonance frequency (R2 = R3 assumed by the formula).
  double F0() const;
};

/// Functional KHN block: AC source "VIN" at node "in", low-pass output at
/// "out3", opamp chain OP1 (summer), OP2, OP3 (integrators).
core::AnalogBlock BuildKhn(const KhnParams& params = {});

/// Brute-force DFT-modified KHN.
core::DftCircuit BuildDftKhn(const KhnParams& params = {});

}  // namespace mcdft::circuits
