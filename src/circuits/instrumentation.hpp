// Three-opamp instrumentation amplifier with a single-pole output low-pass
// (capacitor across the difference-amp feedback resistor).  A mostly-flat
// circuit with one pole: a contrast case where detectability regions are
// wide and the optimizer has little redundancy to exploit.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults: differential gain 1 + 2*R2/R1 = 21,
/// unity difference stage, output pole at ~1 kHz.
struct InstrumentationParams {
  double r1 = 1e3;     ///< gain-set resistor Rg between the buffer V- nodes
  double r2 = 10e3;    ///< buffer 1 feedback
  double r3 = 10e3;    ///< buffer 2 feedback
  double r4 = 10e3;    ///< difference amp input (inverting path)
  double r5 = 10e3;    ///< difference amp input (non-inverting path)
  double r6 = 10e3;    ///< difference amp feedback
  double r7 = 10e3;    ///< difference amp ground leg
  double c1 = 15.9e-9; ///< across R6: output pole
  spice::OpampModel opamp = {};

  /// Ideal in-band differential gain.
  double Gain() const { return 1.0 + (r2 + r3) / r1; }

  /// Output pole frequency 1/(2*pi*R6*C1).
  double PoleHz() const;
};

/// Functional block: AC source "VIN" drives the positive input, the
/// negative input is grounded.  Output "out3", chain OP1, OP2, OP3.
core::AnalogBlock BuildInstrumentation(const InstrumentationParams& params = {});

/// Brute-force DFT-modified instrumentation amplifier.
core::DftCircuit BuildDftInstrumentation(
    const InstrumentationParams& params = {});

}  // namespace mcdft::circuits
