// Leapfrog (ladder-simulation) low-pass: an active realization of a
// doubly-terminated 3rd-order Butterworth LC ladder with three integrators
// and two inverters (five opamps).  Leapfrog filters have global feedback
// across stages, making them the hardest case for signal-path DFT — a good
// stress test for the multi-configuration optimizer.
//
// Signal flow (state signs chosen so only available polarities are used):
//   OP1: lossy inverting integrator  out1 = -(Vin + out3)/(1 + s*tau1)
//   OP2: inverter                    out2 = -out1
//   OP3: inverting integrator        out3 = -(out2 + out5)/(s*tau2)
//   OP4: inverter                    out4 = -out3
//   OP5: lossy inverting integrator  out5 = -out4/(1 + s*tau3)
// which realizes V1 = (Vin - I2R)/(1+s*tau1), I2R = (V1 - V3)/(s*tau2),
// V3 = (I2R - V3)/(s*tau3) with out5 = -V3 as the primary output.
#pragma once

#include "core/dft_transform.hpp"

namespace mcdft::circuits {

/// Component values.  Defaults: Butterworth g = (1, 2, 1) at ~1 kHz with
/// all resistors 10k (tau1 = tau3 = 1/w0, tau2 = 2/w0).
struct LeapfrogParams {
  double r = 10e3;       ///< every resistor (unity weights everywhere)
  double c1 = 15.9e-9;   ///< tau1 capacitor (OP1)
  double c2 = 31.8e-9;   ///< tau2 capacitor (OP3)
  double c3 = 15.9e-9;   ///< tau3 capacitor (OP5)
  spice::OpampModel opamp = {};

  /// Ideal cutoff 1/(2*pi*R*C1).
  double F0() const;
};

/// Functional block: AC source "VIN" at "in", output "out5",
/// chain OP1..OP5.  Components R1..R11, C1..C3 (14 fault sites).
core::AnalogBlock BuildLeapfrog(const LeapfrogParams& params = {});

/// Brute-force DFT-modified leapfrog (5 configurable opamps, 32 configs).
core::DftCircuit BuildDftLeapfrog(const LeapfrogParams& params = {});

}  // namespace mcdft::circuits
