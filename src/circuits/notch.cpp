#include "circuits/notch.hpp"

namespace mcdft::circuits {

core::AnalogBlock BuildNotch(const NotchParams& p) {
  // Start from the KHN core: out1 = HP, out2 = BP, out3 = LP.
  core::AnalogBlock block = BuildKhn(p.khn);
  block.name = "KHN-based notch (HP + LP summer)";
  block.output_node = "out4";
  block.opamps.push_back("OP4");

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);

  // OP4: inverting summer of the HP and LP outputs.  With equal gains the
  // BP term is absent and the transfer function has a zero pair on the
  // imaginary axis at w0: a true notch.
  nl.AddResistor("R8", "out1", "n4", p.r8);
  nl.AddResistor("R9", "out3", "n4", p.r9);
  nl.AddResistor("R10", "n4", "out4", p.r10);
  nl.AddElement(std::make_unique<spice::Opamp>("OP4", nl.Node("0"),
                                               nl.Node("n4"), nl.Node("out4"),
                                               p.opamp));
  return block;
}

core::DftCircuit BuildDftNotch(const NotchParams& params) {
  return core::DftCircuit::Transform(BuildNotch(params));
}

}  // namespace mcdft::circuits
