#include "circuits/cascade.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

namespace {

/// Section quality factors of a 6th-order Butterworth cascade.
constexpr double kQs[3] = {0.5176, 0.7071, 1.9319};

/// One Tow-Thomas biquad, stage index s (1-based), from `in` to its
/// inverter output "out<s>3".
void AddBiquadStage(spice::Netlist& nl, int stage, const std::string& in,
                    const CascadeParams& p, std::vector<std::string>& opamps) {
  const double w0 = 2.0 * std::numbers::pi * p.f0;
  const double rint = 1.0 / (w0 * p.c);   // R3/R6 integrator resistors
  const double rq = kQs[stage - 1] * rint;  // damping resistor (Q)
  const std::string s = std::to_string(stage);
  const auto node = [&](const std::string& base) { return base + s; };

  nl.AddResistor("R" + s + "1", in, node("n1_"), rint);
  nl.AddCapacitor("C" + s + "1", node("n1_"), node("o1_"), p.c);
  nl.AddResistor("R" + s + "2", node("n1_"), node("o1_"), rq);
  nl.AddElement(std::make_unique<spice::Opamp>(
      "OP" + s + "1", nl.Node("0"), nl.Node(node("n1_")), nl.Node(node("o1_")),
      p.opamp));

  nl.AddResistor("R" + s + "3", node("o1_"), node("n2_"), rint);
  nl.AddCapacitor("C" + s + "2", node("n2_"), node("o2_"), p.c);
  nl.AddElement(std::make_unique<spice::Opamp>(
      "OP" + s + "2", nl.Node("0"), nl.Node(node("n2_")), nl.Node(node("o2_")),
      p.opamp));

  nl.AddResistor("R" + s + "4", node("o2_"), node("n3_"), p.r);
  nl.AddResistor("R" + s + "5", node("n3_"), node("o3_"), p.r);
  nl.AddElement(std::make_unique<spice::Opamp>(
      "OP" + s + "3", nl.Node("0"), nl.Node(node("n3_")), nl.Node(node("o3_")),
      p.opamp));

  nl.AddResistor("R" + s + "6", node("o3_"), node("n1_"), rint);

  opamps.push_back("OP" + s + "1");
  opamps.push_back("OP" + s + "2");
  opamps.push_back("OP" + s + "3");
}

}  // namespace

core::AnalogBlock BuildCascade6(const CascadeParams& p) {
  core::AnalogBlock block;
  block.name = "6th-order Butterworth cascade (3x Tow-Thomas)";
  block.input_node = "in";
  block.output_node = "o3_3";

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);
  AddBiquadStage(nl, 1, "in", p, block.opamps);
  AddBiquadStage(nl, 2, "o3_1", p, block.opamps);
  AddBiquadStage(nl, 3, "o3_2", p, block.opamps);
  return block;
}

core::DftCircuit BuildDftCascade6(const CascadeParams& params) {
  return core::DftCircuit::Transform(BuildCascade6(params));
}

}  // namespace mcdft::circuits
