#include "circuits/leapfrog.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double LeapfrogParams::F0() const {
  return 1.0 / (2.0 * std::numbers::pi * r * c1);
}

core::AnalogBlock BuildLeapfrog(const LeapfrogParams& p) {
  core::AnalogBlock block;
  block.name = "5-opamp leapfrog ladder low-pass (Butterworth 3rd order)";
  block.input_node = "in";
  block.output_node = "out5";
  block.opamps = {"OP1", "OP2", "OP3", "OP4", "OP5"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);

  // OP1: lossy inverting integrator summing Vin and out3.
  nl.AddResistor("R1", "in", "m1", p.r);
  nl.AddResistor("R2", "out3", "m1", p.r);
  nl.AddCapacitor("C1", "m1", "out1", p.c1);
  nl.AddResistor("R3", "m1", "out1", p.r);
  nl.AddElement(std::make_unique<spice::Opamp>("OP1", nl.Node("0"),
                                               nl.Node("m1"), nl.Node("out1"),
                                               p.opamp));

  // OP2: inverter of out1.
  nl.AddResistor("R4", "out1", "m2", p.r);
  nl.AddResistor("R5", "m2", "out2", p.r);
  nl.AddElement(std::make_unique<spice::Opamp>("OP2", nl.Node("0"),
                                               nl.Node("m2"), nl.Node("out2"),
                                               p.opamp));

  // OP3: inverting integrator summing out2 and out5.
  nl.AddResistor("R6", "out2", "m3", p.r);
  nl.AddResistor("R7", "out5", "m3", p.r);
  nl.AddCapacitor("C2", "m3", "out3", p.c2);
  nl.AddElement(std::make_unique<spice::Opamp>("OP3", nl.Node("0"),
                                               nl.Node("m3"), nl.Node("out3"),
                                               p.opamp));

  // OP4: inverter of out3.
  nl.AddResistor("R8", "out3", "m4", p.r);
  nl.AddResistor("R9", "m4", "out4", p.r);
  nl.AddElement(std::make_unique<spice::Opamp>("OP4", nl.Node("0"),
                                               nl.Node("m4"), nl.Node("out4"),
                                               p.opamp));

  // OP5: lossy inverting integrator of out4 (load termination).
  nl.AddResistor("R10", "out4", "m5", p.r);
  nl.AddCapacitor("C3", "m5", "out5", p.c3);
  nl.AddResistor("R11", "m5", "out5", p.r);
  nl.AddElement(std::make_unique<spice::Opamp>("OP5", nl.Node("0"),
                                               nl.Node("m5"), nl.Node("out5"),
                                               p.opamp));
  return block;
}

core::DftCircuit BuildDftLeapfrog(const LeapfrogParams& params) {
  return core::DftCircuit::Transform(BuildLeapfrog(params));
}

}  // namespace mcdft::circuits
