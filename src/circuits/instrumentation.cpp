#include "circuits/instrumentation.hpp"

#include <cmath>
#include <numbers>

namespace mcdft::circuits {

double InstrumentationParams::PoleHz() const {
  return 1.0 / (2.0 * std::numbers::pi * r6 * c1);
}

core::AnalogBlock BuildInstrumentation(const InstrumentationParams& p) {
  core::AnalogBlock block;
  block.name = "3-opamp instrumentation amplifier with output pole";
  block.input_node = "in";
  block.output_node = "out3";
  block.opamps = {"OP1", "OP2", "OP3"};

  spice::Netlist& nl = block.netlist;
  nl.SetTitle(block.name);
  nl.AddVoltageSource("VIN", "in", "0", 0.0, 1.0);

  // Input buffers with the shared gain-set resistor R1 (= Rg).
  nl.AddElement(std::make_unique<spice::Opamp>("OP1", nl.Node("in"),
                                               nl.Node("na"), nl.Node("out1"),
                                               p.opamp));
  nl.AddElement(std::make_unique<spice::Opamp>("OP2", nl.Node("0"),
                                               nl.Node("nb"), nl.Node("out2"),
                                               p.opamp));
  nl.AddResistor("R1", "na", "nb", p.r1);
  nl.AddResistor("R2", "na", "out1", p.r2);
  nl.AddResistor("R3", "nb", "out2", p.r3);

  // Difference amplifier with C1 across the feedback resistor.
  nl.AddResistor("R4", "out1", "nd", p.r4);
  nl.AddResistor("R6", "nd", "out3", p.r6);
  nl.AddCapacitor("C1", "nd", "out3", p.c1);
  nl.AddResistor("R5", "out2", "np", p.r5);
  nl.AddResistor("R7", "np", "0", p.r7);
  nl.AddElement(std::make_unique<spice::Opamp>("OP3", nl.Node("np"),
                                               nl.Node("nd"), nl.Node("out3"),
                                               p.opamp));
  return block;
}

core::DftCircuit BuildDftInstrumentation(const InstrumentationParams& params) {
  return core::DftCircuit::Transform(BuildInstrumentation(params));
}

}  // namespace mcdft::circuits
