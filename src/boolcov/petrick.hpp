// Petrick's method: expand a product-of-sums covering expression into the
// sum-of-products of its irredundant solutions, with on-the-fly absorption
// (x + x.y = x) to keep the intermediate SOP minimal.
#pragma once

#include "boolcov/pos.hpp"

namespace mcdft::boolcov {

/// Expansion limits.  The method is worst-case exponential; the limits trip
/// an OptimizationError instead of letting a pathological matrix take the
/// process down (the caller can fall back to setcover.hpp heuristics).
struct PetrickOptions {
  std::size_t max_products = 200000;  ///< abort above this many live terms
};

/// All irredundant product terms satisfying the POS expression, sorted by
/// Cube::OrderBySize (fewest literals first, then lexicographic).
///
/// After absorption the result is exactly the set of minimal covers in the
/// subset-order sense: every returned cube satisfies every clause, and no
/// returned cube is a superset of another.  (The paper's expanded xi
/// expression lists *all* product terms before discarding dominated ones;
/// RawExpansion reproduces that intermediate form for the Sec. 4.1 bench.)
std::vector<Cube> PetrickMinimalProducts(const CoverProblem& problem,
                                         const PetrickOptions& options = {});

/// The literal distribution-law expansion without the final absorption,
/// i.e. one product per choice function of the clauses, deduplicated.  Only
/// sensible for small problems (the paper's 8-fault biquad); guarded by the
/// same limit.
std::vector<Cube> PetrickRawExpansion(const CoverProblem& problem,
                                      const PetrickOptions& options = {});

}  // namespace mcdft::boolcov
