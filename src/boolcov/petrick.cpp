#include "boolcov/petrick.hpp"

#include <algorithm>
#include <unordered_set>

namespace mcdft::boolcov {

namespace {

/// Insert `candidate` into an absorbed SOP: drop it if some existing term
/// is a subset of it; otherwise remove every existing term it is a subset
/// of, then append.
void InsertAbsorbed(std::vector<Cube>& sop, const Cube& candidate) {
  for (const auto& t : sop) {
    if (t.SubsetOf(candidate)) return;  // candidate absorbed
  }
  std::erase_if(sop, [&](const Cube& t) { return candidate.SubsetOf(t); });
  sop.push_back(candidate);
}

std::vector<Cube> Expand(const CoverProblem& problem,
                         const PetrickOptions& options, bool absorb) {
  std::vector<Cube> sop{Cube(problem.VariableCount())};  // the identity product
  for (const auto& clause : problem.Clauses()) {
    std::vector<Cube> next;
    next.reserve(sop.size());
    const auto vars = clause.literals.Variables();
    for (const auto& term : sop) {
      // Distribute: term * (v1 + v2 + ...) = term.v1 + term.v2 + ...
      // In absorbing mode, a term that already satisfies the clause passes
      // unchanged (idempotence: the distributed variants are all absorbed
      // by it anyway).  Raw mode distributes literally, reproducing the
      // paper's intermediate expansion including redundant products.
      if (absorb && !term.Intersect(clause.literals).Empty()) {
        InsertAbsorbed(next, term);
        continue;
      }
      for (std::size_t v : vars) {
        Cube grown = term;
        grown.Set(v);
        if (absorb) {
          InsertAbsorbed(next, grown);
        } else {
          next.push_back(grown);
        }
      }
      if (next.size() > options.max_products) {
        throw util::OptimizationError(
            "Petrick expansion exceeded " +
            std::to_string(options.max_products) +
            " products; use the set-cover heuristics instead");
      }
    }
    sop = std::move(next);
  }

  if (!absorb) {
    // Deduplicate exact repeats (the distribution law creates them when a
    // variable appears in several clauses).
    std::unordered_set<Cube, Cube::Hash> seen;
    std::vector<Cube> unique;
    for (const auto& t : sop) {
      if (seen.insert(t).second) unique.push_back(t);
    }
    sop = std::move(unique);
  }
  std::sort(sop.begin(), sop.end(), Cube::OrderBySize);
  return sop;
}

}  // namespace

std::vector<Cube> PetrickMinimalProducts(const CoverProblem& problem,
                                         const PetrickOptions& options) {
  return Expand(problem, options, /*absorb=*/true);
}

std::vector<Cube> PetrickRawExpansion(const CoverProblem& problem,
                                      const PetrickOptions& options) {
  return Expand(problem, options, /*absorb=*/false);
}

}  // namespace mcdft::boolcov
