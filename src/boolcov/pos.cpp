#include "boolcov/pos.hpp"

namespace mcdft::boolcov {

CoverProblem::CoverProblem(std::size_t variable_count)
    : nvars_(variable_count) {}

void CoverProblem::AddClause(Clause clause) {
  if (clause.literals.VariableCount() != nvars_) {
    throw util::OptimizationError("clause over wrong variable universe");
  }
  if (clause.literals.Empty()) {
    throw util::OptimizationError(
        "unsatisfiable requirement '" + clause.label +
        "': no variable can cover it");
  }
  clauses_.push_back(std::move(clause));
}

Cube CoverProblem::EssentialVariables() const {
  Cube essential(nvars_);
  for (const auto& c : clauses_) {
    if (c.literals.LiteralCount() == 1) {
      essential = essential.Union(c.literals);
    }
  }
  return essential;
}

CoverProblem CoverProblem::ReduceBy(const Cube& chosen) const {
  CoverProblem reduced(nvars_);
  for (const auto& c : clauses_) {
    if (c.literals.Intersect(chosen).Empty()) {
      reduced.clauses_.push_back(c);
    }
  }
  return reduced;
}

std::size_t CoverProblem::AbsorbClauses() {
  std::vector<Clause> kept;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    bool absorbed = false;
    for (std::size_t j = 0; j < clauses_.size() && !absorbed; ++j) {
      if (i == j) continue;
      const bool j_subset_i = clauses_[j].literals.SubsetOf(clauses_[i].literals);
      if (!j_subset_i) continue;
      const bool equal = clauses_[i].literals == clauses_[j].literals;
      // Strict subset absorbs; among equals keep only the first occurrence.
      if (!equal || j < i) absorbed = true;
    }
    if (absorbed) {
      ++removed;
    } else {
      kept.push_back(clauses_[i]);
    }
  }
  clauses_ = std::move(kept);
  return removed;
}

std::string CoverProblem::ToString(
    const std::function<std::string(std::size_t)>& namer) const {
  if (clauses_.empty()) return "1";
  std::string out;
  for (const auto& c : clauses_) {
    out += "(";
    const auto vars = c.literals.Variables();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (i != 0) out += "+";
      out += namer(vars[i]);
    }
    out += ")";
  }
  return out;
}

CoverProblem BuildCoverProblem(const std::vector<std::vector<bool>>& detects,
                               const std::vector<std::string>& fault_labels) {
  if (detects.empty()) {
    throw util::OptimizationError("empty detectability matrix");
  }
  const std::size_t nvars = detects.size();
  const std::size_t nfaults = detects.front().size();
  for (const auto& row : detects) {
    if (row.size() != nfaults) {
      throw util::OptimizationError("ragged detectability matrix");
    }
  }
  if (fault_labels.size() != nfaults) {
    throw util::OptimizationError("fault label count does not match matrix");
  }
  CoverProblem problem(nvars);
  for (std::size_t j = 0; j < nfaults; ++j) {
    Clause clause{Cube(nvars), fault_labels[j]};
    for (std::size_t i = 0; i < nvars; ++i) {
      if (detects[i][j]) clause.literals.Set(i);
    }
    problem.AddClause(std::move(clause));
  }
  return problem;
}

}  // namespace mcdft::boolcov
