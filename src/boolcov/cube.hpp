// Cube: a set of positive literals over a fixed variable universe, stored
// as a dynamic bitset.  In the paper's Section 4, variables are either test
// configurations (the xi expression) or opamps (the xi* expression), and a
// cube is a product term such as C1.C2 or OP1.OP3.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace mcdft::boolcov {

/// Product term over `variable_count` positive boolean variables.
class Cube {
 public:
  /// Empty cube (the constant-1 product) over `variable_count` variables.
  explicit Cube(std::size_t variable_count = 0);

  /// Cube with the given variables set.
  Cube(std::size_t variable_count, std::initializer_list<std::size_t> vars);

  std::size_t VariableCount() const { return nvars_; }

  /// Number of literals in the product.
  std::size_t LiteralCount() const;

  bool Test(std::size_t var) const;
  void Set(std::size_t var);
  void Reset(std::size_t var);

  bool Empty() const { return LiteralCount() == 0; }

  /// Set-union of literals (product concatenation: C1.C2 * C2.C3 = C1.C2.C3).
  Cube Union(const Cube& other) const;

  /// Set-intersection of literals.
  Cube Intersect(const Cube& other) const;

  /// True when every literal of this cube is also in `other` — i.e. `other`
  /// is a *larger* product, so this cube absorbs it (x + x.y = x).
  bool SubsetOf(const Cube& other) const;

  /// Indices of set variables, ascending.
  std::vector<std::size_t> Variables() const;

  /// Render as e.g. "C1.C2" using a variable-name callback.
  std::string ToString(
      const std::function<std::string(std::size_t)>& namer) const;

  bool operator==(const Cube& other) const = default;

  /// Strict weak order: fewer literals first, then lexicographic on the
  /// bit pattern (deterministic result ordering for the optimizer).
  static bool OrderBySize(const Cube& a, const Cube& b);

  /// Hash for unordered containers.
  struct Hash {
    std::size_t operator()(const Cube& c) const;
  };

 private:
  void CheckVar(std::size_t var) const;
  std::size_t nvars_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mcdft::boolcov
