#include "boolcov/setcover.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcdft::boolcov {

std::vector<double> UnitWeights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

namespace {

void CheckWeights(const CoverProblem& problem,
                  const std::vector<double>& weights) {
  if (weights.size() != problem.VariableCount()) {
    throw util::OptimizationError("weight vector size mismatch");
  }
  for (double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      throw util::OptimizationError("set-cover weights must be positive");
    }
  }
}

double CostOf(const Cube& chosen, const std::vector<double>& weights) {
  double c = 0.0;
  for (std::size_t v : chosen.Variables()) c += weights[v];
  return c;
}

/// Recursive branch and bound.
class BnB {
 public:
  BnB(const std::vector<double>& weights, std::size_t nvars)
      : weights_(weights), best_cost_(std::numeric_limits<double>::infinity()),
        best_(nvars) {}

  void Run(CoverProblem problem, Cube chosen, double cost) {
    ++stats_.nodes_explored;

    // Essential extraction: forced choices cost nothing to branch on.
    Cube essential = problem.EssentialVariables();
    if (!essential.Empty()) {
      for (std::size_t v : essential.Variables()) {
        if (!chosen.Test(v)) {
          cost += weights_[v];
          chosen.Set(v);
        }
      }
      problem = problem.ReduceBy(essential);
    }
    if (cost >= best_cost_) return;
    if (problem.Satisfied()) {
      best_cost_ = cost;
      best_ = chosen;
      ++stats_.best_updates;
      return;
    }
    problem.AbsorbClauses();

    // Lower bound: each uncovered clause needs at least its cheapest
    // literal, but one variable can satisfy many clauses, so divide by the
    // largest number of clauses any single variable could satisfy.
    double sum_cheapest = 0.0;
    std::vector<std::size_t> occurrence(problem.VariableCount(), 0);
    for (const auto& cl : problem.Clauses()) {
      double cheapest = std::numeric_limits<double>::infinity();
      for (std::size_t v : cl.literals.Variables()) {
        cheapest = std::min(cheapest, weights_[v]);
        ++occurrence[v];
      }
      sum_cheapest += cheapest;
    }
    const std::size_t max_occ =
        *std::max_element(occurrence.begin(), occurrence.end());
    if (cost + sum_cheapest / static_cast<double>(std::max<std::size_t>(
                                  max_occ, 1)) >=
        best_cost_) {
      return;
    }

    // Branch on the shortest clause: one subtree per literal choice.
    const auto& clauses = problem.Clauses();
    std::size_t pick = 0;
    for (std::size_t i = 1; i < clauses.size(); ++i) {
      if (clauses[i].literals.LiteralCount() <
          clauses[pick].literals.LiteralCount()) {
        pick = i;
      }
    }
    // Prefer cheap, high-occurrence literals first to find good incumbents
    // early (tighter pruning later).
    auto vars = clauses[pick].literals.Variables();
    std::sort(vars.begin(), vars.end(), [&](std::size_t a, std::size_t b) {
      const double ra = weights_[a] / (occurrence[a] + 1.0);
      const double rb = weights_[b] / (occurrence[b] + 1.0);
      return ra < rb;
    });
    for (std::size_t v : vars) {
      Cube child_chosen = chosen;
      child_chosen.Set(v);
      Cube just_v(problem.VariableCount());
      just_v.Set(v);
      Run(problem.ReduceBy(just_v), std::move(child_chosen),
          cost + weights_[v]);
    }
  }

  double best_cost() const { return best_cost_; }
  const Cube& best() const { return best_; }
  const SetCoverStats& stats() const { return stats_; }

 private:
  const std::vector<double>& weights_;
  double best_cost_;
  Cube best_;
  SetCoverStats stats_;
};

}  // namespace

SetCoverResult ExactSetCover(const CoverProblem& problem,
                             const std::vector<double>& weights) {
  CheckWeights(problem, weights);
  BnB solver(weights, problem.VariableCount());
  solver.Run(problem, Cube(problem.VariableCount()), 0.0);
  if (!std::isfinite(solver.best_cost())) {
    throw util::OptimizationError("no feasible cover exists");
  }
  return SetCoverResult{solver.best(), solver.best_cost(), solver.stats()};
}

SetCoverResult GreedySetCover(const CoverProblem& problem,
                              const std::vector<double>& weights) {
  CheckWeights(problem, weights);
  CoverProblem remaining = problem;
  Cube chosen(problem.VariableCount());
  SetCoverStats stats;
  while (!remaining.Satisfied()) {
    ++stats.nodes_explored;
    // Count clause coverage per variable.
    std::vector<std::size_t> covers(problem.VariableCount(), 0);
    for (const auto& cl : remaining.Clauses()) {
      for (std::size_t v : cl.literals.Variables()) ++covers[v];
    }
    std::size_t best_v = problem.VariableCount();
    double best_ratio = 0.0;
    for (std::size_t v = 0; v < covers.size(); ++v) {
      if (covers[v] == 0) continue;
      const double ratio = static_cast<double>(covers[v]) / weights[v];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_v = v;
      }
    }
    if (best_v == problem.VariableCount()) {
      throw util::OptimizationError("no feasible cover exists");
    }
    chosen.Set(best_v);
    Cube just_v(problem.VariableCount());
    just_v.Set(best_v);
    remaining = remaining.ReduceBy(just_v);
  }
  return SetCoverResult{chosen, CostOf(chosen, weights), stats};
}

}  // namespace mcdft::boolcov
