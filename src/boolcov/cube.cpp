#include "boolcov/cube.hpp"

#include <bit>

namespace mcdft::boolcov {

namespace {
std::size_t LimbCount(std::size_t nvars) { return (nvars + 63) / 64; }
}  // namespace

Cube::Cube(std::size_t variable_count)
    : nvars_(variable_count), bits_(LimbCount(variable_count), 0) {}

Cube::Cube(std::size_t variable_count, std::initializer_list<std::size_t> vars)
    : Cube(variable_count) {
  for (std::size_t v : vars) Set(v);
}

void Cube::CheckVar(std::size_t var) const {
  if (var >= nvars_) {
    throw util::OptimizationError("cube variable " + std::to_string(var) +
                                  " outside universe of " +
                                  std::to_string(nvars_));
  }
}

std::size_t Cube::LiteralCount() const {
  std::size_t n = 0;
  for (auto limb : bits_) n += static_cast<std::size_t>(std::popcount(limb));
  return n;
}

bool Cube::Test(std::size_t var) const {
  CheckVar(var);
  return (bits_[var / 64] >> (var % 64)) & 1u;
}

void Cube::Set(std::size_t var) {
  CheckVar(var);
  bits_[var / 64] |= std::uint64_t{1} << (var % 64);
}

void Cube::Reset(std::size_t var) {
  CheckVar(var);
  bits_[var / 64] &= ~(std::uint64_t{1} << (var % 64));
}

Cube Cube::Union(const Cube& other) const {
  if (other.nvars_ != nvars_) {
    throw util::OptimizationError("cube union across different universes");
  }
  Cube out(nvars_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] | other.bits_[i];
  }
  return out;
}

Cube Cube::Intersect(const Cube& other) const {
  if (other.nvars_ != nvars_) {
    throw util::OptimizationError("cube intersection across different universes");
  }
  Cube out(nvars_);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    out.bits_[i] = bits_[i] & other.bits_[i];
  }
  return out;
}

bool Cube::SubsetOf(const Cube& other) const {
  if (other.nvars_ != nvars_) {
    throw util::OptimizationError("cube subset test across different universes");
  }
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

std::vector<std::size_t> Cube::Variables() const {
  std::vector<std::size_t> vars;
  for (std::size_t v = 0; v < nvars_; ++v) {
    if ((bits_[v / 64] >> (v % 64)) & 1u) vars.push_back(v);
  }
  return vars;
}

std::string Cube::ToString(
    const std::function<std::string(std::size_t)>& namer) const {
  const auto vars = Variables();
  if (vars.empty()) return "1";
  std::string out;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) out += ".";
    out += namer(vars[i]);
  }
  return out;
}

bool Cube::OrderBySize(const Cube& a, const Cube& b) {
  const std::size_t la = a.LiteralCount();
  const std::size_t lb = b.LiteralCount();
  if (la != lb) return la < lb;
  // Lexicographic on variable indices (lowest set variable first).
  return a.Variables() < b.Variables();
}

std::size_t Cube::Hash::operator()(const Cube& c) const {
  std::size_t h = c.nvars_;
  for (auto limb : c.bits_) {
    h ^= static_cast<std::size_t>(limb) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

}  // namespace mcdft::boolcov
