// Weighted set-cover solvers used (a) as scalable alternatives to Petrick's
// method on large configuration spaces and (b) as baselines for the
// covering ablation bench.
#pragma once

#include <optional>

#include "boolcov/pos.hpp"

namespace mcdft::boolcov {

/// Statistics from a solver run.
struct SetCoverStats {
  std::size_t nodes_explored = 0;  ///< branch-and-bound tree nodes
  std::size_t best_updates = 0;    ///< number of incumbent improvements
};

/// Result of a set-cover solve.
struct SetCoverResult {
  Cube chosen;         ///< selected variables
  double cost = 0.0;   ///< total weight
  SetCoverStats stats;
};

/// Exact branch-and-bound minimum-weight cover.
///
/// `weights` gives the cost of selecting each variable (pass all-ones for
/// minimum cardinality, the paper's configuration-count requirement).
/// Preprocessing applies essential extraction and clause absorption at each
/// node; bounding uses the trivial "cheapest literal per uncovered clause /
/// max clause membership" lower bound.  Throws OptimizationError if any
/// clause is uncoverable.
SetCoverResult ExactSetCover(const CoverProblem& problem,
                             const std::vector<double>& weights);

/// Classic greedy heuristic: repeatedly pick the variable maximizing
/// (newly covered clauses / weight).  ln(n)-approximate; used as the
/// scalable baseline.
SetCoverResult GreedySetCover(const CoverProblem& problem,
                              const std::vector<double>& weights);

/// Convenience all-ones weight vector.
std::vector<double> UnitWeights(std::size_t n);

}  // namespace mcdft::boolcov
