// The covering problem in product-of-sums form: the paper's expression
//   xi = prod_over_faults ( sum_over_configs d_ij * C_i )
// with essential-variable extraction and matrix reduction (Sec. 4.1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "boolcov/cube.hpp"

namespace mcdft::boolcov {

/// One sum factor of the POS expression: the set of variables whose
/// presence satisfies it, tagged with a label (the fault it covers).
struct Clause {
  Cube literals;
  std::string label;
};

/// Product-of-sums covering problem over `variable_count` variables.
class CoverProblem {
 public:
  explicit CoverProblem(std::size_t variable_count);

  std::size_t VariableCount() const { return nvars_; }

  /// Append a clause.  Throws OptimizationError when it has no literals:
  /// that requirement is unsatisfiable (a fault no configuration detects).
  void AddClause(Clause clause);

  const std::vector<Clause>& Clauses() const { return clauses_; }

  /// Variables appearing in exactly-one-literal clauses: the paper's
  /// *essential configurations*, which every solution must contain.
  Cube EssentialVariables() const;

  /// The reduced problem after committing to `chosen` variables: clauses
  /// containing any chosen variable are satisfied and dropped (the paper's
  /// reduced fault detectability matrix, Fig. 6).
  CoverProblem ReduceBy(const Cube& chosen) const;

  /// Drop absorbed clauses: a clause whose literal set contains another
  /// clause's literal set is implied by it and removed.  Returns the number
  /// of clauses removed.
  std::size_t AbsorbClauses();

  /// True when no clauses remain (everything covered).
  bool Satisfied() const { return clauses_.empty(); }

  /// Render like the paper: "(C0+C2+C4+C6).(C2+C4+C6)..." using a
  /// variable-name callback.
  std::string ToString(
      const std::function<std::string(std::size_t)>& namer) const;

 private:
  std::size_t nvars_;
  std::vector<Clause> clauses_;
};

/// Build the covering problem from a detectability matrix: `detects[i][j]`
/// says variable (configuration) i detects fault j.  `fault_labels` sizes
/// must match the column count.  Faults detected by no configuration throw
/// OptimizationError (maximum coverage is then impossible and the caller
/// must drop them explicitly — see core/optimizer.hpp).
CoverProblem BuildCoverProblem(const std::vector<std::vector<bool>>& detects,
                               const std::vector<std::string>& fault_labels);

}  // namespace mcdft::boolcov
