#include "testability/reference_band.hpp"

#include <cmath>

namespace mcdft::testability {

ReferenceBand::ReferenceBand(double f_lo_hz, double f_hi_hz,
                             std::size_t points_per_decade)
    : f_lo_(f_lo_hz), f_hi_(f_hi_hz), points_per_decade_(points_per_decade) {
  if (!(f_lo_ > 0.0) || !(f_hi_ > f_lo_)) {
    throw util::AnalysisError("reference band requires 0 < f_lo < f_hi");
  }
  if (points_per_decade_ == 0) {
    throw util::AnalysisError("reference band needs >= 1 point per decade");
  }
}

ReferenceBand ReferenceBand::Around(double anchor_hz, double decades_below,
                                    double decades_above,
                                    std::size_t points_per_decade) {
  if (!(anchor_hz > 0.0)) {
    throw util::AnalysisError("reference band anchor must be positive");
  }
  return ReferenceBand(anchor_hz * std::pow(10.0, -decades_below),
                       anchor_hz * std::pow(10.0, decades_above),
                       points_per_decade);
}

double ReferenceBand::Decades() const { return std::log10(f_hi_ / f_lo_); }

spice::SweepSpec ReferenceBand::MakeSweep() const {
  return spice::SweepSpec::Decade(f_lo_, f_hi_, points_per_decade_);
}

std::vector<double> ReferenceBand::LogMeasureWeights(
    const std::vector<double>& freqs) {
  if (freqs.size() < 2) {
    throw util::AnalysisError("log-measure weights need >= 2 grid points");
  }
  const std::size_t n = freqs.size();
  std::vector<double> w(n, 0.0);
  auto lg = [](double f) { return std::log10(f); };
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = i == 0 ? lg(freqs[0]) : 0.5 * (lg(freqs[i - 1]) + lg(freqs[i]));
    const double hi =
        i + 1 == n ? lg(freqs[n - 1]) : 0.5 * (lg(freqs[i]) + lg(freqs[i + 1]));
    w[i] = hi - lo;
  }
  const double total = lg(freqs[n - 1]) - lg(freqs[0]);
  for (auto& x : w) x /= total;
  return w;
}

double EstimateAnchorFrequency(const spice::FrequencyResponse& response) {
  response.CheckConsistent();
  const std::size_t peak = response.PeakIndex();
  const double peak_mag = response.MagnitudeAt(peak);
  if (peak_mag <= 0.0) {
    // Degenerate all-zero response: fall back to the geometric mid-band.
    return std::sqrt(response.freqs_hz.front() * response.freqs_hz.back());
  }
  const double edge = peak_mag / std::sqrt(2.0);  // -3 dB

  // Walk outwards from the peak to the -3 dB crossings.
  std::size_t lo = 0;
  bool have_lo = false;
  for (std::size_t i = peak; i-- > 0;) {
    if (response.MagnitudeAt(i) < edge) {
      lo = i + 1;
      have_lo = true;
      break;
    }
  }
  std::size_t hi = response.PointCount() - 1;
  bool have_hi = false;
  for (std::size_t i = peak + 1; i < response.PointCount(); ++i) {
    if (response.MagnitudeAt(i) < edge) {
      hi = i - 1;
      have_hi = true;
      break;
    }
  }
  if (have_lo && have_hi) {
    return std::sqrt(response.freqs_hz[lo] * response.freqs_hz[hi]);
  }
  if (have_hi) return response.freqs_hz[hi];  // lowpass: use the cutoff
  if (have_lo) return response.freqs_hz[lo];  // highpass: use the cutoff
  return response.freqs_hz[peak];             // flat within the sweep
}

}  // namespace mcdft::testability
