// Component sensitivity of the frequency response — the quantity behind
// Slamani & Kaminska's observability-based testability analysis that the
// paper builds its metric on (Sec. 2, refs [11][12]).
//
// S_x(w) = (|dT|/denom(w)) / (dx/x), evaluated by finite difference.  With
// the perturbation set to the actual fault magnitude this is exactly the
// fault's relative deviation, so the same code doubles as the cheap
// "structural" screen the paper's conclusion proposes for pre-selecting
// candidate configurations before full fault simulation.
#pragma once

#include "spice/ac_analysis.hpp"

namespace mcdft::testability {

/// Sensitivity computation options.
struct SensitivityOptions {
  /// Relative perturbation dx/x (0.01 = classic small-signal sensitivity;
  /// set to the fault magnitude to predict that fault's deviation).
  double delta = 0.01;

  /// Use the central difference (2 extra solves per component) instead of
  /// the forward difference (1 extra solve, nominal response reused).
  bool central = false;

  /// Deviation normalization floor (see spice::RelativeDeviation).
  double relative_floor = 0.25;

  spice::MnaOptions mna;
};

/// Per-frequency relative sensitivity of the probed response to
/// `component`'s principal value.  Throws NetlistError for components
/// without a principal value.  The input netlist is not modified.
std::vector<double> ComputeRelativeSensitivity(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::string& component,
    const SensitivityOptions& options = {});

/// Sensitivities of all `components` sharing one nominal solve (forward
/// difference) — the batch form used by configuration pre-selection.
/// Returns one sensitivity vector per component, in order.
std::vector<std::vector<double>> ComputeSensitivities(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::vector<std::string>& components,
    const SensitivityOptions& options = {});

}  // namespace mcdft::testability
