// Process-tolerance envelope: the frequency-dependent detection threshold
// behind the paper's epsilon ("this tolerance allows to take into account
// possible fluctuations in the process environment", Def. 1).
//
// A deviation only indicates a *fault* if it exceeds what in-tolerance
// process fluctuation of every component could produce.  We compute that
// bound by Monte-Carlo: sample circuits with all fault-site components
// uniformly varied within +/-tolerance, record the per-frequency maximum
// relative deviation from nominal, and use
//     threshold(w) = envelope(w) + epsilon_base
// as the detection threshold.  This captures the classic analog-test
// physics the multi-configuration technique exploits: global feedback
// desensitizes the functional configuration (many components share the
// tolerance budget, masking a single fault), while a follower-mode
// configuration isolates a stage so the same fault towers over the
// envelope of its few local components.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/ac_analysis.hpp"

namespace mcdft::testability {

/// Monte-Carlo tolerance-envelope settings.
struct ToleranceModel {
  double component_tolerance = 0.03;  ///< +/- fraction per component (3 %)
  std::size_t samples = 48;           ///< Monte-Carlo sample count
  std::uint64_t seed = 0xdffe1998;    ///< deterministic campaigns
};

/// Compute the per-frequency envelope: max over Monte-Carlo samples of the
/// relative deviation (same normalization as the fault analysis, i.e.
/// spice::RelativeDeviation with `relative_floor`) between the perturbed
/// and nominal responses.
///
/// `component_names` lists the elements to perturb (typically the fault
/// sites).  The netlist is cloned internally; the argument is untouched.
/// Returns one value per sweep point.
///
/// Sample k draws its perturbations from an independent generator seeded
/// with `model.seed ^ k`, so each sample is a self-contained stream: the
/// envelope is bit-identical for any `threads` value (0 = auto thread
/// count, 1 = serial), and the envelope of N samples is the pointwise max
/// of the N single-sample envelopes at seeds `seed ^ k`.
std::vector<double> ComputeToleranceEnvelope(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::vector<std::string>& component_names,
    const ToleranceModel& model, double relative_floor,
    spice::MnaOptions mna_options = {}, std::size_t threads = 1);

}  // namespace mcdft::testability
