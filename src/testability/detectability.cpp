#include "testability/detectability.hpp"

#include <cmath>

namespace mcdft::testability {

FaultDetectability AnalyzeFault(const faults::Fault& fault,
                                const spice::FrequencyResponse& nominal,
                                const spice::FrequencyResponse& faulty,
                                const DetectionCriteria& criteria) {
  if (!(criteria.epsilon > 0.0)) {
    throw util::AnalysisError("detection tolerance epsilon must be positive");
  }
  const std::vector<double> dev =
      spice::RelativeDeviation(faulty, nominal, criteria.relative_floor);
  const std::vector<double> mag_dev =
      spice::MagnitudeDeviation(faulty, nominal, criteria.relative_floor);
  if (!criteria.envelope.empty() && criteria.envelope.size() != dev.size()) {
    throw util::AnalysisError(
        "tolerance envelope size does not match the sweep grid");
  }
  const std::vector<double> weights =
      ReferenceBand::LogMeasureWeights(nominal.freqs_hz);

  FaultDetectability out{fault};
  out.region.mask.resize(dev.size(), false);
  out.region.magnitude_mask.resize(dev.size(), false);
  out.region.deviation.resize(dev.size(), 0.0f);
  out.region.magnitude_deviation.resize(dev.size(), 0.0f);

  double measure = 0.0;
  for (std::size_t i = 0; i < dev.size(); ++i) {
    // Quarantined-point convention (see FaultDetectability): the point is
    // counted undetected and contributes no deviation.  A non-finite
    // deviation that slipped past the solve-boundary checks is handled the
    // same way — the comparison layer never propagates NaN/Inf.
    if (nominal.QuarantinedAt(i) || faulty.QuarantinedAt(i) ||
        !std::isfinite(dev[i]) || !std::isfinite(mag_dev[i])) {
      ++out.quarantined_points;
      continue;
    }
    out.region.deviation[i] = static_cast<float>(dev[i]);
    out.region.magnitude_deviation[i] = static_cast<float>(mag_dev[i]);
    if (dev[i] > criteria.ThresholdAt(i)) {
      out.region.mask[i] = true;
      measure += weights[i];
    }
    if (mag_dev[i] > criteria.ThresholdAt(i)) {
      out.region.magnitude_mask[i] = true;
    }
    if (dev[i] > out.peak_deviation) {
      out.peak_deviation = dev[i];
      out.peak_frequency_hz = nominal.freqs_hz[i];
    }
  }
  out.detectable = measure > 0.0;
  out.omega_detectability = std::min(measure, 1.0);

  // Contiguous mask runs -> frequency intervals.
  for (std::size_t i = 0; i < out.region.mask.size();) {
    if (!out.region.mask[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < out.region.mask.size() && out.region.mask[j + 1]) ++j;
    out.region.intervals.emplace_back(nominal.freqs_hz[i], nominal.freqs_hz[j]);
    i = j + 1;
  }
  out.region.measure = out.omega_detectability;
  return out;
}

std::vector<FaultDetectability> AnalyzeFaultList(
    const faults::FaultSimulator& simulator,
    const std::vector<faults::Fault>& faults,
    const DetectionCriteria& criteria) {
  const spice::FrequencyResponse nominal = simulator.SimulateNominal();
  std::vector<FaultDetectability> out;
  out.reserve(faults.size());
  for (const auto& f : faults) {
    out.push_back(AnalyzeFault(f, nominal, simulator.SimulateFault(f), criteria));
  }
  return out;
}

}  // namespace mcdft::testability
