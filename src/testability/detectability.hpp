// Fault detectability (Definition 1) and omega-detectability (Definition 2).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "faults/simulator.hpp"
#include "testability/reference_band.hpp"

namespace mcdft::testability {

/// Detection tolerance settings.
struct DetectionCriteria {
  /// Relative tolerance epsilon of Definition 1 (0.10 = 10 % in the paper),
  /// absorbing measurement accuracy.  When `envelope` is set, process
  /// fluctuations are modelled explicitly and epsilon only needs to cover
  /// the tester accuracy (0.05 is a sensible value then).
  double epsilon = 0.10;

  /// Stopband guard for the relative deviation (see
  /// spice::RelativeDeviation): reference magnitudes below
  /// `relative_floor * max|T|` are clamped before dividing.  The default
  /// models a tester with ~12 dB of usable range below the passband level;
  /// 1e-9 recovers the pure pointwise |dT/T| reading of Definition 1.
  double relative_floor = 0.25;

  /// Optional per-frequency process-tolerance envelope (see
  /// testability/tolerance.hpp).  When non-empty (size must equal the
  /// sweep's point count), the detection threshold at grid point i is
  /// `epsilon + envelope[i]` instead of plain `epsilon`.
  std::vector<double> envelope;

  /// Threshold at grid point i.
  double ThresholdAt(std::size_t i) const {
    return epsilon + (envelope.empty() ? 0.0 : envelope[i]);
  }
};

/// The frequency region where a fault is detectable.
struct DetectabilityRegion {
  /// Per-grid-point mask: complex deviation exceeds the threshold.
  std::vector<bool> mask;

  /// Per-grid-point mask for *magnitude-only* measurement (what a
  /// magnitude tester observes; subset of `mask` pointwise).  Used by the
  /// test-plan generator.
  std::vector<bool> magnitude_mask;

  /// Quantitative deviations per grid point (float to keep campaigns
  /// small): the complex relative deviation and its magnitude-only
  /// counterpart.  The test-plan generator uses them to prefer measurement
  /// points with *margin* over the detection threshold, so the plan stays
  /// robust under process spread.
  std::vector<float> deviation;
  std::vector<float> magnitude_deviation;

  /// Maximal contiguous sub-bands [f_lo, f_hi] of the region (Hz).
  std::vector<std::pair<double, double>> intervals;

  /// Lebesgue measure of the region in log-frequency, normalized by the
  /// reference region: the omega-detectability of Definition 2, in [0, 1].
  double measure = 0.0;
};

/// Complete testability verdict for one fault.
struct FaultDetectability {
  explicit FaultDetectability(faults::Fault f) : fault(std::move(f)) {}

  faults::Fault fault;

  /// Definition 1: exists omega with |dT/T| > epsilon.
  bool detectable = false;

  /// Definition 2 in [0, 1] (0 when not detectable).
  double omega_detectability = 0.0;

  /// Peak relative deviation over the band and the frequency where it
  /// occurs (diagnostic for test-stimulus selection).
  double peak_deviation = 0.0;
  double peak_frequency_hz = 0.0;

  /// Grid points excluded from the verdict because the resilient simulator
  /// quarantined them (every solve attempt failed there, in either the
  /// nominal or the faulty response).  Convention: a quarantined point
  /// counts as *undetected* at that omega — deviation forced to 0, masks
  /// false, measure weight forfeited — so quarantine can only lower, never
  /// raise, detectability and coverage claims stay conservative.
  std::size_t quarantined_points = 0;

  DetectabilityRegion region;
};

/// Evaluate Definition 1 + Definition 2 for a faulty response against the
/// nominal one.  Both must share the reference band's grid.
FaultDetectability AnalyzeFault(const faults::Fault& fault,
                                const spice::FrequencyResponse& nominal,
                                const spice::FrequencyResponse& faulty,
                                const DetectionCriteria& criteria = {});

/// Run a whole fault list through AnalyzeFault using a FaultSimulator.
std::vector<FaultDetectability> AnalyzeFaultList(
    const faults::FaultSimulator& simulator,
    const std::vector<faults::Fault>& faults,
    const DetectionCriteria& criteria = {});

}  // namespace mcdft::testability
