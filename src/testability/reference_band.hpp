// The reference frequency region Omega_reference of Definition 2.
//
// The paper chooses it to contain "the mean useful information about the
// frequency response (say, about two orders of magnitude in the passband
// and two orders of magnitude in the stopband)" and notes its absolute
// extent is not critical because only relative omega-detectability is
// exploited.  We anchor it on the circuit's passband peak frequency.
#pragma once

#include "spice/ac_analysis.hpp"

namespace mcdft::testability {

/// The reference region [f_lo, f_hi] with its sampling density.
class ReferenceBand {
 public:
  /// Explicit band.  Requires 0 < f_lo < f_hi.
  ReferenceBand(double f_lo_hz, double f_hi_hz,
                std::size_t points_per_decade = 50);

  /// Paper-style band: `decades_below` decades under and `decades_above`
  /// decades over an anchor frequency (e.g. the passband peak / cutoff).
  static ReferenceBand Around(double anchor_hz, double decades_below = 2.0,
                              double decades_above = 2.0,
                              std::size_t points_per_decade = 50);

  double FLow() const { return f_lo_; }
  double FHigh() const { return f_hi_; }
  std::size_t PointsPerDecade() const { return points_per_decade_; }
  double Decades() const;

  /// Log-uniform sweep across the band.
  spice::SweepSpec MakeSweep() const;

  /// Quadrature weight of each sweep point for measuring detectability
  /// regions in log-frequency: w_i = half the log-distance to the two
  /// neighbours, normalized so the weights sum to 1.  On the log-uniform
  /// grid this reduces to ~1/N with half-weight endpoints, which makes the
  /// omega-detectability the true Lebesgue measure of the region in
  /// log(omega), i.e. the probability that a log-uniform random test
  /// frequency falls inside it.
  static std::vector<double> LogMeasureWeights(const std::vector<double>& freqs);

 private:
  double f_lo_;
  double f_hi_;
  std::size_t points_per_decade_;
};

/// Find the anchor frequency of a response for ReferenceBand::Around: the
/// geometric mean of the -3 dB edges around the passband peak (falling back
/// to the peak frequency, and to the sweep midpoint for an all-flat
/// response).
double EstimateAnchorFrequency(const spice::FrequencyResponse& response);

}  // namespace mcdft::testability
