#include "testability/metrics.hpp"

namespace mcdft::testability {

double FaultCoverage(const std::vector<FaultDetectability>& results) {
  if (results.empty()) {
    throw util::AnalysisError("fault coverage of an empty fault list");
  }
  std::size_t detected = 0;
  for (const auto& r : results) {
    if (r.detectable) ++detected;
  }
  return static_cast<double>(detected) / static_cast<double>(results.size());
}

double AverageOmegaDetectability(
    const std::vector<FaultDetectability>& results) {
  if (results.empty()) {
    throw util::AnalysisError("omega-detectability of an empty fault list");
  }
  double acc = 0.0;
  for (const auto& r : results) acc += r.omega_detectability;
  return acc / static_cast<double>(results.size());
}

std::vector<FaultDetectability> BestCasePerFault(
    const std::vector<std::vector<FaultDetectability>>& per_configuration) {
  if (per_configuration.empty()) {
    throw util::AnalysisError("best-case combination of zero configurations");
  }
  const std::size_t nfaults = per_configuration.front().size();
  for (const auto& list : per_configuration) {
    if (list.size() != nfaults) {
      throw util::AnalysisError(
          "best-case combination requires equal-length fault lists");
    }
    for (std::size_t j = 0; j < nfaults; ++j) {
      if (!(list[j].fault == per_configuration.front()[j].fault)) {
        throw util::AnalysisError(
            "best-case combination requires identical fault ordering");
      }
    }
  }
  std::vector<FaultDetectability> best = per_configuration.front();
  for (std::size_t c = 1; c < per_configuration.size(); ++c) {
    for (std::size_t j = 0; j < nfaults; ++j) {
      if (per_configuration[c][j].omega_detectability >
          best[j].omega_detectability) {
        best[j] = per_configuration[c][j];
      }
    }
  }
  return best;
}

}  // namespace mcdft::testability
