#include "testability/tolerance.hpp"

#include <algorithm>
#include <random>

#include "spice/elements.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace mcdft::testability {

std::vector<double> ComputeToleranceEnvelope(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::vector<std::string>& component_names,
    const ToleranceModel& model, double relative_floor,
    spice::MnaOptions mna_options, std::size_t threads) {
  if (!(model.component_tolerance > 0.0) || model.component_tolerance >= 1.0) {
    throw util::AnalysisError("component tolerance must be in (0, 1)");
  }
  if (model.samples == 0) {
    throw util::AnalysisError("tolerance envelope needs >= 1 sample");
  }
  if (component_names.empty()) {
    throw util::AnalysisError("tolerance envelope needs >= 1 component");
  }
  util::metrics::GetCounter("testability.envelope.samples").Add(model.samples);
  util::trace::Span span("testability.envelope");

  std::vector<double> nominal_values;
  nominal_values.reserve(component_names.size());
  {
    const spice::Netlist probe_clone = netlist.Clone();
    for (const auto& name : component_names) {
      nominal_values.push_back(probe_clone.GetElement(name).Value());
    }
  }

  const spice::Netlist nominal_work = netlist.Clone();
  spice::AcAnalyzer nominal_analyzer(nominal_work, mna_options);
  const spice::FrequencyResponse nominal = nominal_analyzer.Run(sweep, probe);

  // Per-sample deviation vectors, filled by index: sample k is a
  // self-contained stream (its own generator at seed ^ k), so any static
  // partition over k produces the same per-sample results.
  std::vector<std::vector<double>> deviations(model.samples);
  util::ParallelForRange(
      threads, model.samples, [&](std::size_t begin, std::size_t end) {
        spice::Netlist work = netlist.Clone();
        spice::AcAnalyzer analyzer(work, mna_options);
        for (std::size_t k = begin; k < end; ++k) {
          std::mt19937_64 rng(model.seed ^ static_cast<std::uint64_t>(k));
          std::uniform_real_distribution<double> uniform(
              -model.component_tolerance, model.component_tolerance);
          for (std::size_t i = 0; i < component_names.size(); ++i) {
            work.GetElement(component_names[i])
                .SetValue(nominal_values[i] * (1.0 + uniform(rng)));
          }
          const spice::FrequencyResponse sample = analyzer.Run(sweep, probe);
          deviations[k] =
              spice::RelativeDeviation(sample, nominal, relative_floor);
        }
      });

  // Ordered reduction: max over samples in index order.
  std::vector<double> envelope(sweep.PointCount(), 0.0);
  for (std::size_t k = 0; k < model.samples; ++k) {
    for (std::size_t i = 0; i < envelope.size(); ++i) {
      envelope[i] = std::max(envelope[i], deviations[k][i]);
    }
  }
  return envelope;
}

}  // namespace mcdft::testability
