#include "testability/tolerance.hpp"

#include <algorithm>
#include <random>

#include "spice/elements.hpp"

namespace mcdft::testability {

std::vector<double> ComputeToleranceEnvelope(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::vector<std::string>& component_names,
    const ToleranceModel& model, double relative_floor,
    spice::MnaOptions mna_options) {
  if (!(model.component_tolerance > 0.0) || model.component_tolerance >= 1.0) {
    throw util::AnalysisError("component tolerance must be in (0, 1)");
  }
  if (model.samples == 0) {
    throw util::AnalysisError("tolerance envelope needs >= 1 sample");
  }
  if (component_names.empty()) {
    throw util::AnalysisError("tolerance envelope needs >= 1 component");
  }

  spice::Netlist work = netlist.Clone();
  std::vector<double> nominal_values;
  nominal_values.reserve(component_names.size());
  for (const auto& name : component_names) {
    nominal_values.push_back(work.GetElement(name).Value());
  }

  spice::AcAnalyzer nominal_analyzer(work, mna_options);
  const spice::FrequencyResponse nominal = nominal_analyzer.Run(sweep, probe);

  std::mt19937_64 rng(model.seed);
  std::uniform_real_distribution<double> uniform(-model.component_tolerance,
                                                 model.component_tolerance);

  std::vector<double> envelope(sweep.PointCount(), 0.0);
  for (std::size_t k = 0; k < model.samples; ++k) {
    for (std::size_t i = 0; i < component_names.size(); ++i) {
      work.GetElement(component_names[i])
          .SetValue(nominal_values[i] * (1.0 + uniform(rng)));
    }
    spice::AcAnalyzer analyzer(work, mna_options);
    const spice::FrequencyResponse sample = analyzer.Run(sweep, probe);
    const std::vector<double> dev =
        spice::RelativeDeviation(sample, nominal, relative_floor);
    for (std::size_t i = 0; i < envelope.size(); ++i) {
      envelope[i] = std::max(envelope[i], dev[i]);
    }
  }
  // Restore nominal values (the clone dies anyway, but keep the invariant
  // obvious if `work` is ever hoisted out).
  for (std::size_t i = 0; i < component_names.size(); ++i) {
    work.GetElement(component_names[i]).SetValue(nominal_values[i]);
  }
  return envelope;
}

}  // namespace mcdft::testability
