// Circuit-level testability metrics: fault coverage and the average
// omega-detectability rate <w-det> used throughout the paper.
#pragma once

#include <vector>

#include "testability/detectability.hpp"

namespace mcdft::testability {

/// Fault coverage: detectable faults / total faults, in [0, 1].
/// Throws AnalysisError on an empty list.
double FaultCoverage(const std::vector<FaultDetectability>& results);

/// Average omega-detectability rate <w-det> over the fault list, in [0, 1]
/// (non-detectable faults contribute 0, as in the paper's Graph 1).
double AverageOmegaDetectability(const std::vector<FaultDetectability>& results);

/// Element-wise best-case combination: for each fault, keep the entry with
/// the larger omega-detectability.  This is the paper's "a fault is assumed
/// to be tested in the best case" rule (black boxes of Table 2); combining
/// all configurations' results yields Graph 2's DFT-modified series.
/// All lists must cover the same faults in the same order.
std::vector<FaultDetectability> BestCasePerFault(
    const std::vector<std::vector<FaultDetectability>>& per_configuration);

}  // namespace mcdft::testability
