#include "testability/sensitivity.hpp"

#include "spice/elements.hpp"

namespace mcdft::testability {

namespace {

spice::FrequencyResponse RunSweep(const spice::Netlist& netlist,
                                  const spice::SweepSpec& sweep,
                                  const spice::Probe& probe,
                                  const spice::MnaOptions& mna) {
  spice::AcAnalyzer analyzer(netlist, mna);
  return analyzer.Run(sweep, probe);
}

}  // namespace

std::vector<std::vector<double>> ComputeSensitivities(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::vector<std::string>& components,
    const SensitivityOptions& options) {
  if (!(options.delta > 0.0) || options.delta >= 1.0) {
    throw util::AnalysisError("sensitivity delta must be in (0, 1)");
  }
  spice::Netlist work = netlist.Clone();
  const spice::FrequencyResponse nominal =
      RunSweep(work, sweep, probe, options.mna);

  std::vector<std::vector<double>> out;
  out.reserve(components.size());
  for (const auto& name : components) {
    spice::Element& e = work.GetElement(name);
    const double x0 = e.Value();

    e.SetValue(x0 * (1.0 + options.delta));
    const spice::FrequencyResponse up = RunSweep(work, sweep, probe, options.mna);

    std::vector<double> dev;
    if (options.central) {
      // Average of the up- and down-deviations against the nominal
      // response (both with the same normalization), halving the
      // first-order truncation error.
      e.SetValue(x0 * (1.0 - options.delta));
      const spice::FrequencyResponse down =
          RunSweep(work, sweep, probe, options.mna);
      dev = spice::RelativeDeviation(up, nominal, options.relative_floor);
      auto dev2 = spice::RelativeDeviation(down, nominal, options.relative_floor);
      for (std::size_t i = 0; i < dev.size(); ++i) {
        dev[i] = 0.5 * (dev[i] + dev2[i]);
      }
    } else {
      dev = spice::RelativeDeviation(up, nominal, options.relative_floor);
    }
    e.SetValue(x0);

    for (auto& v : dev) v /= options.delta;
    out.push_back(std::move(dev));
  }
  return out;
}

std::vector<double> ComputeRelativeSensitivity(
    const spice::Netlist& netlist, const spice::SweepSpec& sweep,
    const spice::Probe& probe, const std::string& component,
    const SensitivityOptions& options) {
  return ComputeSensitivities(netlist, sweep, probe, {component}, options)
      .front();
}

}  // namespace mcdft::testability
