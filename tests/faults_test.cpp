#include "faults/simulator.hpp"

#include <gtest/gtest.h>

#include "spice/elements.hpp"

namespace mcdft::faults {
namespace {

spice::Netlist RcCircuit() {
  spice::Netlist nl("rc");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  return nl;
}

TEST(Fault, ValueFactors) {
  EXPECT_DOUBLE_EQ(Fault("R1", FaultKind::kDeviationUp, 0.2).ValueFactor(), 1.2);
  EXPECT_DOUBLE_EQ(Fault("R1", FaultKind::kDeviationDown, 0.2).ValueFactor(),
                   0.8);
  EXPECT_GT(Fault::Open("R1").ValueFactor(), 1e6);
  EXPECT_LT(Fault::Short("R1").ValueFactor(), 1e-6);
}

TEST(Fault, Labels) {
  EXPECT_EQ(Fault("R1", FaultKind::kDeviationUp, 0.2).Label(), "fR1(+20%)");
  EXPECT_EQ(Fault("c2", FaultKind::kDeviationDown, 0.1).Label(), "fC2(-10%)");
  EXPECT_EQ(Fault::Open("R3").Label(), "fR3(open)");
  EXPECT_EQ(Fault::Short("R3").Label(), "fR3(short)");
  EXPECT_EQ(Fault("R1", FaultKind::kDeviationUp, 0.2).ShortLabel(), "fR1");
}

TEST(Fault, InvalidMagnitudesThrow) {
  EXPECT_THROW(Fault("R1", FaultKind::kDeviationUp, 0.0), util::AnalysisError);
  EXPECT_THROW(Fault("R1", FaultKind::kDeviationUp, -0.1), util::AnalysisError);
  EXPECT_THROW(Fault("R1", FaultKind::kDeviationDown, 1.0), util::AnalysisError);
}

TEST(Fault, ApplyScalesValue) {
  auto nl = RcCircuit();
  Fault("R1", FaultKind::kDeviationUp, 0.2).ApplyTo(nl);
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1.2e3);
}

TEST(Fault, ApplyToUnknownDeviceThrows) {
  auto nl = RcCircuit();
  EXPECT_THROW(Fault("R9", FaultKind::kDeviationUp, 0.2).ApplyTo(nl),
               util::NetlistError);
}

TEST(Fault, ApplyToValuelessDeviceThrows) {
  spice::Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddOpamp("OP1", "in", "x", "x");
  nl.AddResistor("R1", "x", "0", 1.0);
  EXPECT_THROW(Fault("OP1", FaultKind::kDeviationUp, 0.2).ApplyTo(nl),
               util::NetlistError);
}

TEST(Fault, OpenCapacitorLosesCapacitance) {
  auto nl = RcCircuit();
  Fault::Open("C1").ApplyTo(nl);
  EXPECT_LT(nl.GetElement("C1").Value(), 1e-12);  // open cap -> tiny C
  auto nl2 = RcCircuit();
  Fault::Short("C1").ApplyTo(nl2);
  EXPECT_GT(nl2.GetElement("C1").Value(), 1.0);  // short cap -> huge C
}

TEST(Fault, Equality) {
  Fault a("R1", FaultKind::kDeviationUp, 0.2);
  Fault b("r1", FaultKind::kDeviationUp, 0.2);
  Fault c("R1", FaultKind::kDeviationDown, 0.2);
  EXPECT_EQ(a, b);  // canonicalized device names
  EXPECT_FALSE(a == c);
}

TEST(FaultList, DefaultDeviationListMatchesPassives) {
  auto nl = RcCircuit();
  auto faults = MakeDeviationFaults(nl);
  ASSERT_EQ(faults.size(), 2u);  // R1, C1 (not V1)
  EXPECT_EQ(faults[0].Device(), "R1");
  EXPECT_EQ(faults[1].Device(), "C1");
  EXPECT_EQ(faults[0].Kind(), FaultKind::kDeviationUp);
}

TEST(FaultList, BothDirections) {
  auto nl = RcCircuit();
  DeviationFaultOptions opt;
  opt.downward = true;
  auto faults = MakeDeviationFaults(nl, opt);
  EXPECT_EQ(faults.size(), 4u);
}

TEST(FaultList, NoDirectionThrows) {
  auto nl = RcCircuit();
  DeviationFaultOptions opt;
  opt.upward = false;
  opt.downward = false;
  EXPECT_THROW(MakeDeviationFaults(nl, opt), util::AnalysisError);
}

TEST(FaultList, CustomFilter) {
  auto nl = RcCircuit();
  DeviationFaultOptions opt;
  opt.filter = [](const spice::Element& e) {
    return e.Kind() == spice::ElementKind::kResistor;
  };
  auto faults = MakeDeviationFaults(nl, opt);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].Device(), "R1");
}

TEST(FaultList, CatastrophicList) {
  auto nl = RcCircuit();
  auto faults = MakeCatastrophicFaults(nl);
  EXPECT_EQ(faults.size(), 4u);  // open+short for R1, C1
  CatastrophicFaultOptions opt;
  opt.shorts = false;
  EXPECT_EQ(MakeCatastrophicFaults(nl, opt).size(), 2u);
}

TEST(FaultList, MergeDeduplicates) {
  auto nl = RcCircuit();
  auto a = MakeDeviationFaults(nl);
  auto merged = MergeFaultLists({a, a, MakeCatastrophicFaults(nl)});
  EXPECT_EQ(merged.size(), 6u);
}

TEST(Injector, CloneBasedInjectionLeavesGoldenIntact) {
  auto golden = RcCircuit();
  auto faulty = InjectFault(golden, Fault("R1", FaultKind::kDeviationUp, 0.5));
  EXPECT_DOUBLE_EQ(golden.GetElement("R1").Value(), 1e3);
  EXPECT_DOUBLE_EQ(faulty.GetElement("R1").Value(), 1.5e3);
}

TEST(Injector, MultipleFaults) {
  auto golden = RcCircuit();
  auto faulty = InjectFaults(golden, {Fault("R1", FaultKind::kDeviationUp, 0.1),
                                      Fault("C1", FaultKind::kDeviationDown,
                                            0.1)});
  EXPECT_DOUBLE_EQ(faulty.GetElement("R1").Value(), 1.1e3);
  EXPECT_NEAR(faulty.GetElement("C1").Value(), 0.9e-6, 1e-15);
}

TEST(Injector, ScopedInjectionRestoresOnDestruction) {
  auto nl = RcCircuit();
  {
    ScopedFaultInjection inj(nl, Fault("R1", FaultKind::kDeviationUp, 0.2));
    EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1.2e3);
  }
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1e3);
}

TEST(Injector, ScopedInjectionRevertIsIdempotent) {
  auto nl = RcCircuit();
  ScopedFaultInjection inj(nl, Fault("R1", FaultKind::kDeviationUp, 0.2));
  inj.Revert();
  inj.Revert();
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1e3);
}

TEST(Simulator, NominalAndFaultyResponsesDiffer) {
  auto nl = RcCircuit();
  FaultSimulator sim(nl, spice::SweepSpec::Decade(10, 1e4, 10),
                     spice::Probe{nl.FindNode("out"), spice::kGround, "v"});
  auto nominal = sim.SimulateNominal();
  auto faulty = sim.SimulateFault(Fault("R1", FaultKind::kDeviationUp, 0.5));
  EXPECT_EQ(nominal.PointCount(), faulty.PointCount());
  double max_dev = 0.0;
  for (std::size_t i = 0; i < nominal.PointCount(); ++i) {
    max_dev = std::max(max_dev,
                       std::abs(faulty.values[i] - nominal.values[i]));
  }
  EXPECT_GT(max_dev, 0.01);
}

TEST(Simulator, WorkingCopyRestoredBetweenFaults) {
  auto nl = RcCircuit();
  FaultSimulator sim(nl, spice::SweepSpec::List({159.0}),
                     spice::Probe{nl.FindNode("out"), spice::kGround, "v"});
  auto n1 = sim.SimulateNominal();
  sim.SimulateFault(Fault("R1", FaultKind::kDeviationUp, 0.5));
  auto n2 = sim.SimulateNominal();
  EXPECT_NEAR(std::abs(n1.values[0] - n2.values[0]), 0.0, 1e-15);
}

TEST(Simulator, CampaignRunsAllFaults) {
  auto nl = RcCircuit();
  FaultSimulator sim(nl, spice::SweepSpec::Decade(10, 1e4, 5),
                     spice::Probe{nl.FindNode("out"), spice::kGround, "v"});
  auto campaign = sim.Run(MakeDeviationFaults(nl));
  EXPECT_EQ(campaign.faulty.size(), 2u);
  EXPECT_EQ(campaign.nominal.label, "nominal");
  EXPECT_EQ(campaign.faulty[0].response.label, campaign.faulty[0].fault.Label());
}

}  // namespace
}  // namespace mcdft::faults
