// Bit-compatibility tests of the linalg/simd kernel stack and the batched
// solve paths built on it.
//
// The contract under test (see linalg/simd/kernels.hpp): every kernel
// variant — scalar, AVX2, AVX-512 — computes the textbook complex product
// with plain add/sub and no FMA contraction, so the three are *byte*
// identical, and the multi-RHS / batched solves that run through them are
// byte-identical to their scalar per-solve counterparts.
#include "linalg/simd/kernels.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <random>
#include <vector>

#include "core/error.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/sparse_lu.hpp"
#include "util/faultpoint.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {
namespace {

namespace simd = mcdft::linalg::simd;

/// Lane counts straddling every vector width: scalar tails of both the
/// 4-lane AVX2 and 8-lane AVX-512 kernels, plus exact multiples.
constexpr std::size_t kLaneCounts[] = {1, 2, 3, 4, 5, 7, 8, 9,
                                       15, 16, 17, 31, 32, 33, 100};

std::vector<double> RandomDoubles(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::vector<double> v(n);
  for (auto& x : v) x = u(rng);
  return v;
}

bool BytesEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(SimdKernels, VariantsAreByteIdenticalToScalar) {
  // Only variants the host can actually execute: on pre-AVX hardware the
  // vector tables alias the scalar kernels and the test is vacuous there.
  const simd::IsaLevel host = simd::DetectCpuLevel();
  std::vector<const simd::Kernels*> variants = {&simd::ScalarKernels()};
  if (host >= simd::IsaLevel::kAvx2) variants.push_back(&simd::Avx2Kernels());
  if (host >= simd::IsaLevel::kAvx512) {
    variants.push_back(&simd::Avx512Kernels());
  }

  std::mt19937_64 rng(0xC0FFEE);
  for (const std::size_t m : kLaneCounts) {
    const std::vector<double> x_re = RandomDoubles(m, rng);
    const std::vector<double> x_im = RandomDoubles(m, rng);
    const std::vector<double> y_re0 = RandomDoubles(m, rng);
    const std::vector<double> y_im0 = RandomDoubles(m, rng);
    const std::vector<double> a_re = RandomDoubles(m, rng);
    const std::vector<double> a_im = RandomDoubles(m, rng);
    const double s_re = a_re[0], s_im = a_im[0];

    std::vector<double> ref_axpy_re = y_re0, ref_axpy_im = y_im0;
    simd::ScalarKernels().caxpy_sub(m, s_re, s_im, x_re.data(), x_im.data(),
                                    ref_axpy_re.data(), ref_axpy_im.data());
    std::vector<double> ref_madd_re = y_re0, ref_madd_im = y_im0;
    simd::ScalarKernels().cmadd(m, a_re.data(), a_im.data(), x_re.data(),
                                x_im.data(), ref_madd_re.data(),
                                ref_madd_im.data());

    for (const simd::Kernels* k : variants) {
      std::vector<double> got_re = y_re0, got_im = y_im0;
      k->caxpy_sub(m, s_re, s_im, x_re.data(), x_im.data(), got_re.data(),
                   got_im.data());
      EXPECT_TRUE(BytesEqual(got_re, ref_axpy_re))
          << k->name << " caxpy_sub re, m=" << m;
      EXPECT_TRUE(BytesEqual(got_im, ref_axpy_im))
          << k->name << " caxpy_sub im, m=" << m;

      got_re = y_re0;
      got_im = y_im0;
      k->cmadd(m, a_re.data(), a_im.data(), x_re.data(), x_im.data(),
               got_re.data(), got_im.data());
      EXPECT_TRUE(BytesEqual(got_re, ref_madd_re))
          << k->name << " cmadd re, m=" << m;
      EXPECT_TRUE(BytesEqual(got_im, ref_madd_im))
          << k->name << " cmadd im, m=" << m;
    }
  }
}

TEST(SimdKernels, ParseAndResolveLevels) {
  EXPECT_EQ(simd::ParseLevel("scalar"), simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::ParseLevel("avx2"), simd::IsaLevel::kAvx2);
  EXPECT_EQ(simd::ParseLevel("avx512"), simd::IsaLevel::kAvx512);
  EXPECT_FALSE(simd::ParseLevel("").has_value());
  EXPECT_FALSE(simd::ParseLevel("AVX2").has_value());
  EXPECT_FALSE(simd::ParseLevel("sse").has_value());

  // A forced level degrades to the best usable level at or below it.
  EXPECT_EQ(simd::ResolveLevel(simd::IsaLevel::kAvx512,
                               simd::IsaLevel::kScalar),
            simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::ResolveLevel(simd::IsaLevel::kScalar,
                               simd::IsaLevel::kAvx512),
            simd::IsaLevel::kScalar);
  EXPECT_EQ(simd::ResolveLevel(std::nullopt, simd::IsaLevel::kAvx2),
            simd::IsaLevel::kAvx2);
}

TEST(SimdKernels, ActiveLevelIsExecutableAndCompiled) {
  const simd::Kernels& active = simd::Active();
  EXPECT_LE(static_cast<int>(active.level),
            static_cast<int>(simd::DetectCpuLevel()));
  EXPECT_TRUE(simd::Compiled(active.level));
  EXPECT_NE(active.caxpy_sub, nullptr);
  EXPECT_NE(active.cmadd, nullptr);
}

/// Random sparse diagonally-dominant system (same construction as the
/// sparse-LU tests).
TripletMatrix RandomSparse(std::size_t n, double density,
                           std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TripletMatrix t(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) {
        t.Add(r, c, Complex(3.0 + u(rng), u(rng)));
      } else if (coin(rng) < density) {
        t.Add(r, c, Complex(u(rng), u(rng)) * 0.3);
      }
    }
  }
  return t;
}

Vector RandomVector(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = Complex(u(rng), u(rng));
  return v;
}

TEST(SolveMulti, LanesMatchScalarSolveBitwise) {
  std::mt19937_64 rng(0xABCD);
  for (const std::size_t n : {5u, 17u, 40u}) {
    for (const std::size_t lanes : {1u, 3u, 8u, 13u}) {
      SparseLu lu{CsrMatrix(RandomSparse(n, 0.25, rng))};
      std::vector<Vector> rhs;
      for (std::size_t l = 0; l < lanes; ++l) {
        rhs.push_back(RandomVector(n, rng));
      }

      std::vector<double> re(n * lanes), im(n * lanes);
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t l = 0; l < lanes; ++l) {
          re[r * lanes + l] = rhs[l][r].real();
          im[r * lanes + l] = rhs[l][r].imag();
        }
      }
      lu.SolveMulti(lanes, re.data(), im.data());
      EXPECT_TRUE(lu.HasFactorProgram());

      for (std::size_t l = 0; l < lanes; ++l) {
        const Vector x = lu.Solve(rhs[l]);
        for (std::size_t r = 0; r < n; ++r) {
          EXPECT_EQ(x[r].real(), re[r * lanes + l])
              << "n=" << n << " lanes=" << lanes << " lane " << l << " row "
              << r;
          EXPECT_EQ(x[r].imag(), im[r * lanes + l])
              << "n=" << n << " lanes=" << lanes << " lane " << l << " row "
              << r;
        }
      }
    }
  }
}

/// Random sparse vector with `nnz` entries at distinct indices.
std::vector<std::pair<std::size_t, Complex>> RandomSparseVec(
    std::size_t n, std::size_t nnz, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> idx(0, n - 1);
  std::vector<std::pair<std::size_t, Complex>> v;
  while (v.size() < nnz) {
    const std::size_t i = idx(rng);
    bool dup = false;
    for (const auto& e : v) dup |= e.first == i;
    if (!dup) v.emplace_back(i, Complex(u(rng), u(rng)));
  }
  return v;
}

LowRankPerturbation RandomPerturbation(std::size_t n, std::size_t rank,
                                       std::mt19937_64& rng) {
  LowRankPerturbation p;
  for (std::size_t j = 0; j < rank; ++j) {
    LowRankTerm term;
    term.u = RandomSparseVec(n, 2, rng);
    term.w = RandomSparseVec(n, 2, rng);
    p.terms.push_back(std::move(term));
  }
  return p;
}

TEST(SolveBatch, CellsMatchScalarSolveBitwise) {
  util::faultpoint::DisarmAll();
  const util::metrics::ScopedEnable metrics_on;
  util::metrics::Counter& updates =
      util::metrics::GetCounter("linalg.smw.update");
  util::metrics::Counter& fallbacks =
      util::metrics::GetCounter("linalg.smw.fallback");
  util::metrics::Counter& batched =
      util::metrics::GetCounter("linalg.smw.batched");

  std::mt19937_64 rng(0xBA7C4);
  const std::size_t n = 24;
  SparseLu lu{CsrMatrix(RandomSparse(n, 0.3, rng))};
  LowRankUpdateSolver solver;
  solver.Bind(lu, RandomVector(n, rng));

  // Mixed batch: every rank 1..4, a rank-0 cell, and an over-rank cell the
  // solver must decline (rank above kMaxRank).
  std::vector<LowRankPerturbation> deltas;
  deltas.push_back(RandomPerturbation(n, 2, rng));
  deltas.push_back(RandomPerturbation(n, 0, rng));  // rank 0 -> nominal
  deltas.push_back(RandomPerturbation(n, 1, rng));
  deltas.push_back(RandomPerturbation(n, 4, rng));
  deltas.push_back(RandomPerturbation(n, 5, rng));  // over cap -> declined
  deltas.push_back(RandomPerturbation(n, 3, rng));
  deltas.push_back(RandomPerturbation(n, 1, rng));

  const std::uint64_t updates0 = updates.Value();
  const std::uint64_t fallbacks0 = fallbacks.Value();
  SmwBatch batch;
  solver.SolveBatch(deltas.data(), deltas.size(), batch);
  const std::uint64_t batch_updates = updates.Value() - updates0;
  const std::uint64_t batch_fallbacks = fallbacks.Value() - fallbacks0;
  EXPECT_GT(batched.Value(), 0u);

  ASSERT_EQ(batch.Count(), deltas.size());
  EXPECT_EQ(batch.Status(1), SmwBatchStatus::kNominal);
  EXPECT_EQ(batch.Status(4), SmwBatchStatus::kDeclined);

  const std::uint64_t updates1 = updates.Value();
  const std::uint64_t fallbacks1 = fallbacks.Value();
  for (std::size_t cell = 0; cell < deltas.size(); ++cell) {
    const std::optional<Vector> x = solver.Solve(deltas[cell]);
    if (cell == 4) {
      // Unbatched parity for the declined cell.
      EXPECT_FALSE(x.has_value());
      continue;
    }
    ASSERT_TRUE(x.has_value()) << "cell " << cell;
    if (batch.Status(cell) == SmwBatchStatus::kNominal) {
      for (std::size_t r = 0; r < n; ++r) {
        EXPECT_EQ((*x)[r], solver.NominalSolution()[r]);
      }
      continue;
    }
    ASSERT_EQ(batch.Status(cell), SmwBatchStatus::kSolved) << "cell " << cell;
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ((*x)[r].real(), batch.At(cell, r).real())
          << "cell " << cell << " row " << r;
      EXPECT_EQ((*x)[r].imag(), batch.At(cell, r).imag())
          << "cell " << cell << " row " << r;
    }
  }
  // Counter parity: the batch bumped update/fallback exactly as the
  // per-cell Solve() calls just did.
  EXPECT_EQ(batch_updates, updates.Value() - updates1);
  EXPECT_EQ(batch_fallbacks, fallbacks.Value() - fallbacks1);
}

TEST(SolveBatch, InjectedFaultpointFailsTheSameCellsAsSolve) {
  const util::metrics::ScopedEnable metrics_on;
  std::mt19937_64 rng(0xF417);
  const std::size_t n = 16;
  SparseLu lu{CsrMatrix(RandomSparse(n, 0.3, rng))};
  LowRankUpdateSolver solver;
  solver.Bind(lu, RandomVector(n, rng));

  std::vector<LowRankPerturbation> deltas;
  for (std::size_t c = 0; c < 32; ++c) {
    deltas.push_back(RandomPerturbation(n, 1 + c % 2, rng));
  }

  util::faultpoint::Arm("smw.solve", 0.3, 1234);
  SmwBatch batch;
  solver.SolveBatch(deltas.data(), deltas.size(), batch);

  std::size_t failed = 0;
  for (std::size_t c = 0; c < deltas.size(); ++c) {
    const bool batch_failed = batch.Status(c) == SmwBatchStatus::kFailed;
    bool solve_threw = false;
    try {
      (void)solver.Solve(deltas[c]);
    } catch (const core::McdftError&) {
      solve_threw = true;
    }
    EXPECT_EQ(batch_failed, solve_threw) << "cell " << c;
    failed += batch_failed;
  }
  util::faultpoint::DisarmAll();
  // The hashed 30% rate over 32 cells fires somewhere strictly between
  // never and always (the digest decision is deterministic per cell).
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, deltas.size());
}

}  // namespace
}  // namespace mcdft::linalg
