// Validates the Section 4 optimizer against the paper's own worked example:
// the synthetic campaign in paper_fixture.hpp carries the published Fig. 5
// matrix and Table 2 omega values, so every optimization result below is
// checked against the numbers printed in the paper.
#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

using testdata::PaperCampaign;
using testdata::PaperCircuit;

class PaperOptimizerTest : public ::testing::Test {
 protected:
  PaperOptimizerTest()
      : campaign_(PaperCampaign()),
        circuit_(PaperCircuit()),
        optimizer_(circuit_, campaign_) {}

  CampaignResult campaign_;
  DftCircuit circuit_;
  DftOptimizer optimizer_;
};

TEST_F(PaperOptimizerTest, MaximumCoverageIsHundredPercent) {
  auto f = optimizer_.SolveFundamental();
  EXPECT_TRUE(f.undetectable.empty());
  EXPECT_DOUBLE_EQ(f.max_coverage, 1.0);
}

TEST_F(PaperOptimizerTest, EssentialConfigurationIsC2) {
  // fC1 is detectable in C2 only (Sec. 4.1: "xi_ess = (C2)").
  auto f = optimizer_.SolveFundamental();
  EXPECT_EQ(f.essential.Variables(), (std::vector<std::size_t>{2}));
}

TEST_F(PaperOptimizerTest, ReducedMatrixMatchesFig6) {
  auto f = optimizer_.SolveFundamental();
  auto namer = [&](std::size_t v) { return "C" + std::to_string(v); };
  // xi_compl = (C1+C4+C5).(C1+C5) (fR3 and fC2 remain).
  EXPECT_EQ(f.xi_reduced.ToString(namer), "(C1+C4+C5)(C1+C5)");
}

TEST_F(PaperOptimizerTest, MinimalCoversAreTheTwoPaperSets) {
  auto f = optimizer_.SolveFundamental();
  ASSERT_EQ(f.minimal_covers.size(), 2u);
  EXPECT_EQ(f.minimal_covers[0], boolcov::Cube(7, {1, 2}));  // {C1,C2}
  EXPECT_EQ(f.minimal_covers[1], boolcov::Cube(7, {2, 5}));  // {C2,C5}
}

TEST_F(PaperOptimizerTest, ConfigCountOptimizationSelectsC2C5) {
  // Both sets have 2 configurations; the 3rd-order requirement picks
  // {C2,C5}: <w-det> = 32.5% vs 30% for {C1,C2} (paper Sec. 4.2).
  auto sel = optimizer_.OptimizeConfigurationCount();
  EXPECT_EQ(sel.tied.size(), 2u);
  EXPECT_EQ(sel.selected.rows, boolcov::Cube(7, {2, 5}));
  EXPECT_DOUBLE_EQ(sel.selected.cost, 2.0);
  EXPECT_NEAR(sel.selected.avg_omega_det, 0.325, 1e-9);
  EXPECT_DOUBLE_EQ(sel.selected.coverage, 1.0);
  // The rejected tie is {C1,C2} at 30%.
  for (const auto& s : sel.tied) {
    if (s.rows == boolcov::Cube(7, {1, 2})) {
      EXPECT_NEAR(s.avg_omega_det, 0.30, 1e-9);
    }
  }
}

TEST_F(PaperOptimizerTest, BruteForceAverageOmegaDetMatchesPaper) {
  // Graph 2: <w-det> = 68.3% for the DFT-modified filter (max per fault:
  // 66, 70, 70, 70, 100, 100, 30, 40 -> average 68.25).
  EXPECT_NEAR(campaign_.AverageOmegaDet(), 0.6825, 1e-9);
  // Graph 1: initial filter 12.5%.
  EXPECT_NEAR(campaign_.AverageOmegaDet({0}), 0.125, 1e-9);
}

TEST_F(PaperOptimizerTest, PartialDftSelectsTwoOpamps) {
  // Sec. 4.3: xi* minimal term = OP1.OP2 (from {C1,C2}); OP3 stays
  // classical.  With our MSB-first bit convention C1 = (001) -> OP3 and
  // C2 = (010) -> OP2, so the minimal opamp set is {OP2, OP3}: exactly two
  // configurable opamps, matching the paper's count (its own tables mix
  // LSB/MSB conventions; the structure is identical).
  auto part = optimizer_.OptimizePartialDft();
  EXPECT_EQ(part.opamps.size(), 2u);
  EXPECT_EQ(part.opamp_cube.LiteralCount(), 2u);
  // Four configurations are permitted on the 2-opamp partial circuit.
  EXPECT_EQ(part.permitted_rows.size(), 4u);
  EXPECT_DOUBLE_EQ(part.usage_all.coverage, 1.0);
  EXPECT_DOUBLE_EQ(part.usage_minimal.coverage, 1.0);
  // Using every permitted configuration dominates the minimal subset.
  EXPECT_GE(part.usage_all.avg_omega_det,
            part.usage_minimal.avg_omega_det - 1e-12);
}

TEST_F(PaperOptimizerTest, PartialDftOmegaDetMatchesPaperTable4) {
  // Paper Table 4: permitted configurations C0, C1, C2, C3 with per-fault
  // maxima 54, 30, 30, 46, 100, 100, 30, 30 -> <w-det> = 52.5%.
  auto part = optimizer_.OptimizePartialDft();
  EXPECT_NEAR(part.usage_all.avg_omega_det, 0.525, 1e-9);
}

TEST_F(PaperOptimizerTest, ExactAndGreedyCoverAgreeOnSize) {
  auto exact = optimizer_.OptimizeConfigurationCountExact();
  EXPECT_DOUBLE_EQ(exact.cost, 2.0);
  EXPECT_DOUBLE_EQ(exact.coverage, 1.0);
  auto greedy = optimizer_.OptimizeConfigurationCountGreedy();
  EXPECT_DOUBLE_EQ(greedy.coverage, 1.0);
  EXPECT_GE(greedy.cost, exact.cost);
}

TEST_F(PaperOptimizerTest, GenericCostFunctionPath) {
  TestTimeCost cost(0.01, 1.0);
  auto sel = optimizer_.Optimize(cost);
  EXPECT_EQ(sel.cost_name, "test time (s)");
  // Test time is proportional to the configuration count here, so the
  // winner equals the configuration-count winner.
  EXPECT_EQ(sel.selected.rows, boolcov::Cube(7, {2, 5}));
}

TEST_F(PaperOptimizerTest, ScoreComputesCoverageAndOmega) {
  boolcov::Cube rows(7, {0});
  auto s = optimizer_.Score(rows);
  EXPECT_NEAR(s.avg_omega_det, 0.125, 1e-9);
  EXPECT_DOUBLE_EQ(s.coverage, 0.25);  // paper: FC_filter = 25%
  ASSERT_EQ(s.configs.size(), 1u);
  EXPECT_TRUE(s.configs[0].IsFunctional());
}

TEST(OptimizerEdgeCases, UndetectableFaultIsExcludedAndReported) {
  auto faults = testdata::PaperFaults();
  faults.emplace_back("R1", faults::FaultKind::kDeviationDown, 0.2);
  auto omega = testdata::PaperOmegaTable();
  std::vector<ConfigResult> rows;
  for (std::size_t i = 0; i < omega.size(); ++i) {
    ConfigResult row{ConfigVector::FromIndex(i, 3), {}};
    for (std::size_t j = 0; j < faults.size(); ++j) {
      testability::FaultDetectability d{faults[j]};
      const double w = j < omega[i].size() ? omega[i][j] : 0.0;  // new fault: 0
      d.detectable = w > 0.0;
      d.omega_detectability = w / 100.0;
      row.faults.push_back(std::move(d));
    }
    rows.push_back(std::move(row));
  }
  CampaignResult campaign(faults, std::move(rows),
                          testability::ReferenceBand(10.0, 1e5, 25));
  DftCircuit circuit = PaperCircuit();
  DftOptimizer optimizer(circuit, campaign);
  auto f = optimizer.SolveFundamental();
  ASSERT_EQ(f.undetectable.size(), 1u);
  EXPECT_EQ(f.undetectable[0].Label(), "fR1(-20%)");
  EXPECT_NEAR(f.max_coverage, 8.0 / 9.0, 1e-12);
  // The solvable part still yields the paper's covers.
  ASSERT_EQ(f.minimal_covers.size(), 2u);
}

TEST(OptimizerEdgeCases, CampaignRowLookup) {
  auto campaign = PaperCampaign();
  EXPECT_EQ(campaign.RowOf(ConfigVector::FromIndex(5, 3)), 5u);
  EXPECT_THROW(campaign.RowOf(ConfigVector::FromIndex(7, 3)),
               util::OptimizationError);
}

}  // namespace
}  // namespace mcdft::core
