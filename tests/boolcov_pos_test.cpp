#include "boolcov/pos.hpp"

#include <gtest/gtest.h>

namespace mcdft::boolcov {
namespace {

/// The paper's fault detectability matrix (Fig. 5): detects[i][j] = config
/// C_i detects fault j, faults ordered fR1..fR6, fC1, fC2.
std::vector<std::vector<bool>> PaperMatrix() {
  return {
      {1, 0, 0, 1, 0, 0, 0, 0},  // C0
      {0, 0, 1, 0, 1, 1, 0, 1},  // C1
      {1, 1, 0, 1, 1, 1, 1, 0},  // C2
      {0, 0, 0, 0, 1, 1, 0, 0},  // C3
      {1, 1, 1, 1, 1, 0, 0, 0},  // C4
      {0, 0, 1, 0, 0, 0, 0, 1},  // C5
      {1, 1, 0, 1, 0, 0, 0, 0},  // C6
  };
}

std::vector<std::string> PaperFaults() {
  return {"fR1", "fR2", "fR3", "fR4", "fR5", "fR6", "fC1", "fC2"};
}

std::string Name(std::size_t v) { return "C" + std::to_string(v); }

TEST(CoverProblem, BuildFromPaperMatrix) {
  CoverProblem p = BuildCoverProblem(PaperMatrix(), PaperFaults());
  EXPECT_EQ(p.VariableCount(), 7u);
  EXPECT_EQ(p.Clauses().size(), 8u);
  // The xi expression of Sec. 4.1, clause per fault.
  EXPECT_EQ(p.ToString(Name),
            "(C0+C2+C4+C6)(C2+C4+C6)(C1+C4+C5)(C0+C2+C4+C6)"
            "(C1+C2+C3+C4)(C1+C2+C3)(C2)(C1+C5)");
}

TEST(CoverProblem, EssentialIsPaperC2) {
  CoverProblem p = BuildCoverProblem(PaperMatrix(), PaperFaults());
  Cube essential = p.EssentialVariables();
  EXPECT_EQ(essential.Variables(), (std::vector<std::size_t>{2}));
}

TEST(CoverProblem, ReduceByEssentialMatchesPaperFig6) {
  CoverProblem p = BuildCoverProblem(PaperMatrix(), PaperFaults());
  CoverProblem reduced = p.ReduceBy(p.EssentialVariables());
  // Only fR3 and fC2 survive: xi_compl = (C1+C4+C5).(C1+C5).
  EXPECT_EQ(reduced.ToString(Name), "(C1+C4+C5)(C1+C5)");
}

TEST(CoverProblem, AbsorbDropsImpliedClauses) {
  CoverProblem p(4);
  Clause a{Cube(4, {0, 1}), "a"};
  Clause b{Cube(4, {0, 1, 2}), "b"};  // implied by a
  Clause c{Cube(4, {3}), "c"};
  p.AddClause(a);
  p.AddClause(b);
  p.AddClause(c);
  EXPECT_EQ(p.AbsorbClauses(), 1u);
  EXPECT_EQ(p.Clauses().size(), 2u);
  EXPECT_EQ(p.ToString(Name), "(C0+C1)(C3)");
}

TEST(CoverProblem, AbsorbKeepsOneOfEqualClauses) {
  CoverProblem p(3);
  p.AddClause({Cube(3, {0, 1}), "x"});
  p.AddClause({Cube(3, {0, 1}), "y"});
  EXPECT_EQ(p.AbsorbClauses(), 1u);
  EXPECT_EQ(p.Clauses().size(), 1u);
}

TEST(CoverProblem, EmptyClauseThrows) {
  CoverProblem p(3);
  EXPECT_THROW(p.AddClause({Cube(3), "uncoverable"}),
               util::OptimizationError);
}

TEST(CoverProblem, WrongUniverseClauseThrows) {
  CoverProblem p(3);
  EXPECT_THROW(p.AddClause({Cube(4, {0}), "bad"}), util::OptimizationError);
}

TEST(CoverProblem, SatisfiedWhenNoClauses) {
  CoverProblem p(3);
  EXPECT_TRUE(p.Satisfied());
  EXPECT_EQ(p.ToString(Name), "1");
  EXPECT_TRUE(p.EssentialVariables().Empty());
}

TEST(BuildCoverProblem, UndetectableFaultThrows) {
  std::vector<std::vector<bool>> m{{1, 0}, {1, 0}};
  EXPECT_THROW(BuildCoverProblem(m, {"a", "b"}), util::OptimizationError);
}

TEST(BuildCoverProblem, ValidatesShape) {
  EXPECT_THROW(BuildCoverProblem({}, {}), util::OptimizationError);
  std::vector<std::vector<bool>> ragged{{1, 0}, {1}};
  EXPECT_THROW(BuildCoverProblem(ragged, {"a", "b"}),
               util::OptimizationError);
  std::vector<std::vector<bool>> ok{{1, 1}};
  EXPECT_THROW(BuildCoverProblem(ok, {"a"}), util::OptimizationError);
}

TEST(CoverProblem, ReduceByEmptyCubeIsIdentity) {
  CoverProblem p = BuildCoverProblem(PaperMatrix(), PaperFaults());
  CoverProblem r = p.ReduceBy(Cube(7));
  EXPECT_EQ(r.Clauses().size(), p.Clauses().size());
}

}  // namespace
}  // namespace mcdft::boolcov
