// Subcircuit (.subckt / .ends / X-instance) parser tests.
#include <gtest/gtest.h>

#include "spice/elements.hpp"
#include "spice/mna.hpp"
#include "spice/parser.hpp"

namespace mcdft::spice {
namespace {

TEST(Subckt, FlattensSimpleInstance) {
  ParsedDeck d = ParseDeck(R"(
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
V1 vin 0 DC 4
X1 vin mid divider
.end
)");
  // Flattened names: R1.X1 and R2.X1; local node 'out' bound to 'mid'.
  EXPECT_NE(d.netlist.FindElement("R1.X1"), nullptr);
  EXPECT_NE(d.netlist.FindElement("R2.X1"), nullptr);
  auto sol = MnaSystem(d.netlist).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("mid")).real(), 2.0, 1e-9);
}

TEST(Subckt, MultipleInstancesAreIndependent) {
  ParsedDeck d = ParseDeck(R"(
.subckt sect a b
R1 a b 1k
C1 b 0 1n
.ends
V1 in 0 AC 1
X1 in m1 sect
X2 m1 m2 sect
X3 m2 out sect
.end
)");
  EXPECT_EQ(d.netlist.ElementCount(), 7u);  // V1 + 3*(R+C)
  EXPECT_NE(d.netlist.FindElement("R1.X3"), nullptr);
  // Internal nodes are distinct per instance? sect has no internal nodes,
  // but the chain must simulate: 3-pole RC ladder.
  auto sol = MnaSystem(d.netlist).SolveAcHz(1.0);
  EXPECT_NEAR(std::abs(sol.VoltageAt(d.netlist.FindNode("out"))), 1.0, 1e-3);
}

TEST(Subckt, InternalNodesArePrefixed) {
  ParsedDeck d = ParseDeck(R"(
.subckt twostep a b
R1 a mid 1k
R2 mid b 1k
.ends
V1 in 0 DC 1
X1 in out twostep
R3 out 0 2k
.end
)");
  // The internal node is X1.mid, not a global 'mid'.
  EXPECT_TRUE(d.netlist.TryFindNode("X1.mid").has_value());
  EXPECT_FALSE(d.netlist.TryFindNode("mid").has_value());
  auto sol = MnaSystem(d.netlist).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("out")).real(), 0.5, 1e-9);
}

TEST(Subckt, GroundStaysGlobal) {
  ParsedDeck d = ParseDeck(R"(
.subckt shunt a
R1 a 0 1k
.ends
V1 in 0 DC 2
X1 in shunt
.end
)");
  auto sol = MnaSystem(d.netlist).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("in")).real(), 2.0, 1e-12);
}

TEST(Subckt, NestedInstances) {
  ParsedDeck d = ParseDeck(R"(
.subckt unit a b
R1 a b 1k
.ends
.subckt pair a b
X1 a m unit
X2 m b unit
.ends
V1 in 0 DC 3
X9 in out pair
R9 out 0 2k
.end
)");
  // Names nest: R1.X9.X1 / R1.X9.X2; node m becomes X9.m.
  EXPECT_NE(d.netlist.FindElement("R1.X9.X1"), nullptr);
  EXPECT_NE(d.netlist.FindElement("R1.X9.X2"), nullptr);
  EXPECT_TRUE(d.netlist.TryFindNode("X9.m").has_value());
  auto sol = MnaSystem(d.netlist).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("out")).real(), 1.5, 1e-9);
}

TEST(Subckt, OpampInsideSubcircuit) {
  ParsedDeck d = ParseDeck(R"(
.subckt inverting in out
R1 in minus 1k
R2 minus out 10k
O1 0 minus out A0=1e6
.ends
V1 src 0 DC 1
X1 src vo inverting
.end
)");
  EXPECT_NE(d.netlist.FindElement("O1.X1"), nullptr);
  auto sol = MnaSystem(d.netlist).SolveDc();
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("vo")).real(), -10.0, 1e-3);
}

TEST(Subckt, ControlSourceScopedToInstance) {
  ParsedDeck d = ParseDeck(R"(
.subckt sense in out
V1 in m DC 0
R1 m 0 1k
F1 0 out V1 2
.ends
V9 top 0 DC 1
X1 top o sense
R2 o 0 1k
.end
)");
  // F1.X1 must reference V1.X1, not the outer V9.
  const auto& f1 = static_cast<const Cccs&>(d.netlist.GetElement("F1.X1"));
  EXPECT_EQ(f1.ControlSource(), "V1.X1");
  auto sol = MnaSystem(d.netlist).SolveDc();
  // 1 mA flows from 'top' *into* V1.X1's + terminal (branch current +1 mA),
  // so F1 (gain 2) drives 2 mA from ground into 'o': V(o) = +2 V.
  EXPECT_NEAR(sol.VoltageAt(d.netlist.FindNode("o")).real(), 2.0, 1e-6);
}

TEST(Subckt, Errors) {
  // Unknown subcircuit.
  EXPECT_THROW(ParseDeck("X1 a b nosuch\n"), util::ParseError);
  // Port-count mismatch.
  EXPECT_THROW(ParseDeck(".subckt s a b\nR1 a b 1\n.ends\nX1 n1 s\n"),
               util::ParseError);
  // .ends without .subckt.
  EXPECT_THROW(ParseDeck(".ends\n"), util::ParseError);
  // Unterminated definition.
  EXPECT_THROW(ParseDeck(".subckt s a\nR1 a 0 1\n"), util::ParseError);
  // Duplicate definition.
  EXPECT_THROW(ParseDeck(".subckt s a\nR1 a 0 1\n.ends\n"
                         ".subckt s a\nR1 a 0 1\n.ends\n"),
               util::ParseError);
  // Nested definitions unsupported.
  EXPECT_THROW(
      ParseDeck(".subckt s a\n.subckt t b\nR1 b 0 1\n.ends\n.ends\n"),
      util::ParseError);
  // Directives inside a subcircuit body.
  EXPECT_THROW(ParseDeck(".subckt s a\n.ac dec 5 1 10\n.ends\nV1 a 0 1\n"
                         "X1 a s\n"),
               util::ParseError);
}

TEST(Subckt, SelfRecursionIsRejected) {
  // A subcircuit that instantiates itself must hit the depth guard, not
  // hang.  (Instantiation happens at X-card time, so the definition parses.)
  EXPECT_THROW(ParseDeck(R"(
.subckt loop a
X1 a loop
.ends
X0 n loop
)"),
               util::ParseError);
}

TEST(Subckt, DefinitionWithoutInstanceIsInert) {
  ParsedDeck d = ParseDeck(R"(
.subckt unused a b
R1 a b 1k
.ends
V1 in 0 DC 1
R2 in 0 1k
.end
)");
  EXPECT_EQ(d.netlist.ElementCount(), 2u);
}

}  // namespace
}  // namespace mcdft::spice
