// Shard partition math and campaign content hashing (core/shard).
//
// The partition properties proved here — disjoint, gap-free, full coverage
// for any shard count, with units split only at configuration boundaries —
// are what make the sharded executor's "bit-identical merge" claim a
// matter of per-cell determinism alone (see core_shard_merge_test.cpp).
#include <gtest/gtest.h>

#include <set>

#include "circuits/zoo.hpp"
#include "core/shard.hpp"
#include "faults/fault_list.hpp"
#include "util/error.hpp"

namespace mcdft::core {
namespace {

TEST(ShardSpec, ValidateAcceptsInRangeAndRejectsOutOfRange) {
  EXPECT_NO_THROW((ShardSpec{0, 1}.Validate()));
  EXPECT_NO_THROW((ShardSpec{2, 3}.Validate()));
  EXPECT_THROW((ShardSpec{0, 0}.Validate()), util::AnalysisError);
  EXPECT_THROW((ShardSpec{3, 3}.Validate()), util::AnalysisError);
  EXPECT_THROW((ShardSpec{7, 2}.Validate()), util::AnalysisError);
}

TEST(ShardSpec, NameEmbedsIndexAndCount) {
  EXPECT_EQ((ShardSpec{0, 1}.Name()), "0of1");
  EXPECT_EQ((ShardSpec{2, 16}.Name()), "2of16");
}

TEST(ShardSpec, ParseRoundTripsAndRejectsMalformedInput) {
  EXPECT_EQ(ParseShardSpec("0/1"), (ShardSpec{0, 1}));
  EXPECT_EQ(ParseShardSpec("2/3"), (ShardSpec{2, 3}));
  for (const char* bad : {"", "1", "/", "1/", "/3", "a/3", "1/b", "3/3",
                          "-1/3", "1/3/5", "1 / 3"}) {
    EXPECT_THROW(ParseShardSpec(bad), util::AnalysisError) << "'" << bad << "'";
  }
}

TEST(ShardPartition, CellRangesTileTheMatrixForAnyShardCount) {
  // Deliberately awkward sizes: cells not divisible by count, fewer cells
  // than shards, single fault, single config.
  const std::size_t shapes[][2] = {{1, 1}, {1, 7}, {5, 1}, {3, 17}, {16, 23}};
  for (const auto& shape : shapes) {
    const std::size_t configs = shape[0], faults = shape[1];
    const std::size_t cells = configs * faults;
    for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{4}, std::size_t{7}, cells + 3}) {
      std::size_t expected_begin = 0;
      for (std::size_t index = 0; index < count; ++index) {
        const auto [begin, end] =
            ShardCellRange(configs, faults, ShardSpec{index, count});
        EXPECT_EQ(begin, expected_begin)
            << configs << "x" << faults << " shard " << index << "/" << count;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, cells) << configs << "x" << faults
                                       << " count " << count;
    }
  }
}

TEST(ShardPartition, UnitsCoverEveryCellExactlyOnce) {
  const std::size_t configs = 5, faults = 13;
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{9}, std::size_t{100}}) {
    std::set<std::pair<std::size_t, std::size_t>> seen;
    for (std::size_t index = 0; index < count; ++index) {
      for (const ShardUnit& u : ShardUnits(configs, faults,
                                           ShardSpec{index, count})) {
        EXPECT_LT(u.config, configs);
        EXPECT_LT(u.fault_begin, u.fault_end);  // no empty units
        EXPECT_LE(u.fault_end, faults);
        for (std::size_t j = u.fault_begin; j < u.fault_end; ++j) {
          EXPECT_TRUE(seen.emplace(u.config, j).second)
              << "cell (" << u.config << ", " << j << ") owned twice at count "
              << count;
        }
      }
    }
    EXPECT_EQ(seen.size(), configs * faults) << "count " << count;
  }
}

TEST(ShardPartition, UnitsSplitOnlyAtConfigurationBoundaries) {
  // Within one shard each configuration contributes at most one unit, and
  // units arrive in campaign (config-major) order.
  for (std::size_t count : {std::size_t{2}, std::size_t{3}, std::size_t{5}}) {
    for (std::size_t index = 0; index < count; ++index) {
      const auto units = ShardUnits(4, 11, ShardSpec{index, count});
      for (std::size_t k = 1; k < units.size(); ++k) {
        EXPECT_LT(units[k - 1].config, units[k].config);
      }
    }
  }
}

TEST(ShardHash, Fnv1a64MatchesReferenceVectors) {
  // Standard FNV-1a test vectors (64-bit).
  EXPECT_EQ(Fnv1a64Hex(""), "cbf29ce484222325");
  EXPECT_EQ(Fnv1a64Hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(Fnv1a64Hex("foobar"), "85944171f73967e8");
}

class ShardContentHash : public ::testing::Test {
 protected:
  void SetUp() override {
    auto block = circuits::FindInZoo("biquad").build();
    circuit_ = std::make_unique<DftCircuit>(DftCircuit::Transform(block));
    fault_list_ = faults::MakeDeviationFaults(circuit_->Circuit());
    configs_ = {ConfigVector(circuit_->ConfigurableOpamps().size())};
    options_ = MakePaperCampaignOptions();
    options_.points_per_decade = 5;
    options_.tolerance->samples = 6;
  }

  std::string Hash(const CampaignOptions& options) const {
    return CampaignContentHash(*circuit_, fault_list_, configs_, options);
  }

  std::unique_ptr<DftCircuit> circuit_;
  std::vector<faults::Fault> fault_list_;
  std::vector<ConfigVector> configs_;
  CampaignOptions options_;
};

TEST_F(ShardContentHash, StableAcrossCallsAndThreadCounts) {
  const std::string base = Hash(options_);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(Hash(options_), base);

  // Results are invariant to the worker count, so the hash must be too —
  // otherwise a checkpoint written on an 8-core CI box could not resume on
  // a 4-core one.
  CampaignOptions threaded = options_;
  threaded.threads = 8;
  EXPECT_EQ(Hash(threaded), base);

  // The factorization cache alone does not change numbers — but it gates
  // the low-rank fault path (which does, at rounding level), so only the
  // *effective* solve path is hashed.  With low-rank requested (the
  // default), turning the cache off switches to the exact fault-major path
  // and the hash must change with it ...
  CampaignOptions cached = options_;
  cached.mna.cache_factorization = false;
  EXPECT_NE(Hash(cached), base);

  // ... and every option combination resolving to the exact path hashes
  // alike: lowrank off, or lowrank requested but uncached.
  CampaignOptions no_lowrank = options_;
  no_lowrank.mna.lowrank_fault_updates = false;
  const std::string exact = Hash(no_lowrank);
  EXPECT_NE(exact, base);
  EXPECT_EQ(Hash(cached), exact);
  no_lowrank.mna.cache_factorization = false;
  EXPECT_EQ(Hash(no_lowrank), exact);
}

TEST_F(ShardContentHash, BatchGateHashesOnOffButNeverWidth) {
  // Batched SMW solves are bit-identical at every width, so checkpoints
  // from different widths must merge — only the on/off gate is hashed.
  const std::string base = Hash(options_);  // default width 32, batched

  CampaignOptions narrow = options_;
  narrow.mna.fault_batch = 1;
  EXPECT_EQ(Hash(narrow), base);
  CampaignOptions wide = options_;
  wide.mna.fault_batch = 128;
  EXPECT_EQ(Hash(wide), base);

  CampaignOptions off = options_;
  off.mna.fault_batch = 0;
  EXPECT_NE(Hash(off), base);

  // With the low-rank path off the batch width is moot either way: every
  // combination resolves to the exact fault-major path and hashes alike.
  CampaignOptions exact = options_;
  exact.mna.lowrank_fault_updates = false;
  CampaignOptions exact_nobatch = exact;
  exact_nobatch.mna.fault_batch = 0;
  EXPECT_EQ(Hash(exact), Hash(exact_nobatch));
}

TEST_F(ShardContentHash, SensitiveToEveryNumberBearingInput) {
  const std::string base = Hash(options_);

  CampaignOptions eps = options_;
  eps.criteria.epsilon *= 1.5;
  EXPECT_NE(Hash(eps), base);

  CampaignOptions floor = options_;
  floor.criteria.relative_floor += 0.05;
  EXPECT_NE(Hash(floor), base);

  CampaignOptions grid = options_;
  grid.points_per_decade += 1;
  EXPECT_NE(Hash(grid), base);

  CampaignOptions seed = options_;
  seed.tolerance->seed ^= 1;
  EXPECT_NE(Hash(seed), base);

  CampaignOptions anchor = options_;
  anchor.anchor_hz = 1234.5;
  EXPECT_NE(Hash(anchor), base);

  // A different fault list or configuration set is a different campaign.
  auto fewer_faults = fault_list_;
  fewer_faults.pop_back();
  EXPECT_NE(CampaignContentHash(*circuit_, fewer_faults, configs_, options_),
            base);

  auto more_configs = configs_;
  auto flipped = ConfigVector(circuit_->ConfigurableOpamps().size());
  flipped.SetSelection(0, true);
  more_configs.push_back(flipped);
  EXPECT_NE(CampaignContentHash(*circuit_, fault_list_, more_configs, options_),
            base);
}

}  // namespace
}  // namespace mcdft::core
