// End-to-end resilience (ISSUE 5): campaigns with quarantined cells stay
// bit-identical across thread and shard counts, checkpoint-write faults
// only widen what a resume recomputes (converging to the same bytes an
// undisturbed run writes), and checkpoint-read faults are salvaged around
// with the dropped units recomputed.
//
// The genuine-quarantine trigger is a fault whose injected value
// overflows the floating-point range on a device the SMW path cannot
// bypass (see PreparePoisonedBiquad): every ladder stage fails and the
// cell quarantines — a pure function of the cell's own inputs, so the
// verdict is partition-invariant.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "circuits/zoo.hpp"
#include "core/run_report.hpp"
#include "core/shard.hpp"
#include "faults/fault_list.hpp"
#include "util/faultpoint.hpp"

namespace mcdft::core {
namespace {

namespace fs = std::filesystem;

CampaignOptions FastOptions() {
  CampaignOptions options = MakePaperCampaignOptions();
  options.points_per_decade = 5;
  options.tolerance->samples = 6;
  options.threads = 2;
  // Pin the band so the grid is independent of the sense-resistor
  // modification the poisoned fixture makes below.
  options.anchor_hz = 1000.0;
  return options;
}

std::vector<ConfigVector> SmallConfigSet(const DftCircuit& circuit) {
  auto space = circuit.Space();
  std::vector<ConfigVector> configs = space.UpToKFollowers(2);
  std::erase_if(configs,
                [](const ConfigVector& cv) { return cv.IsTransparent(); });
  return configs;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Bitwise campaign comparison (same bar as core_shard_merge_test.cpp),
/// extended with the quarantine bookkeeping.
void ExpectBitIdentical(const CampaignResult& a, const CampaignResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.ConfigCount(), b.ConfigCount()) << what;
  ASSERT_EQ(a.FaultCount(), b.FaultCount()) << what;
  EXPECT_EQ(a.DetectabilityMatrix(), b.DetectabilityMatrix()) << what;
  EXPECT_EQ(a.Coverage(), b.Coverage()) << what;
  EXPECT_EQ(a.AverageOmegaDet(), b.AverageOmegaDet()) << what;
  EXPECT_EQ(a.QuarantinedCellCount(), b.QuarantinedCellCount()) << what;

  const auto omega_a = a.OmegaTable();
  const auto omega_b = b.OmegaTable();
  EXPECT_EQ(omega_a, omega_b) << what;

  for (std::size_t i = 0; i < a.ConfigCount(); ++i) {
    const ConfigResult& ra = a.PerConfig()[i];
    const ConfigResult& rb = b.PerConfig()[i];
    EXPECT_EQ(ra.config, rb.config) << what;
    EXPECT_EQ(ra.threshold, rb.threshold) << what << " row " << i;
    EXPECT_EQ(ra.QuarantinedCellCount(), rb.QuarantinedCellCount())
        << what << " row " << i;
    ASSERT_EQ(ra.nominal.PointCount(), rb.nominal.PointCount()) << what;
    for (std::size_t p = 0; p < ra.nominal.PointCount(); ++p) {
      EXPECT_EQ(ra.nominal.values[p], rb.nominal.values[p])
          << what << " nominal row " << i << " point " << p;
    }
    ASSERT_EQ(ra.faults.size(), rb.faults.size()) << what;
    for (std::size_t j = 0; j < ra.faults.size(); ++j) {
      EXPECT_EQ(ra.faults[j].quarantined_points,
                rb.faults[j].quarantined_points)
          << what << " row " << i << " fault " << j;
    }
  }
}

struct Prepared {
  DftCircuit circuit;
  std::vector<faults::Fault> fault_list;
  std::vector<ConfigVector> configs;
};

/// The biquad plus a dangling 1e200-ohm sense resistor RQ off the output,
/// with one oversized deviation fault on it.  The faulty value overflows
/// to infinity (rejected by element validation), and the near-zero sense
/// conductance collapses the SMW capacitance matrix below its pivot
/// floor, so no ladder stage can represent the faulty system: the whole
/// fault column quarantines while the nominal and every other fault stay
/// healthy — a genuine end-to-end quarantine, not an injected one.
Prepared PreparePoisonedBiquad() {
  auto block = circuits::FindInZoo("biquad").build();
  block.netlist.AddResistor("RQ", block.output_node, "qx", 1e200);
  DftCircuit circuit = DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  fault_list.emplace_back("RQ", faults::FaultKind::kDeviationUp, 1e150);
  auto configs = SmallConfigSet(circuit);
  return Prepared{std::move(circuit), std::move(fault_list),
                  std::move(configs)};
}

class Resilience : public ::testing::Test {
 protected:
  void SetUp() override {
    util::faultpoint::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("mcdft_resilience_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    util::faultpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(Resilience, PoisonedFaultQuarantinesAndIsCountedUndetected) {
  const Prepared p = PreparePoisonedBiquad();
  const CampaignOptions options = FastOptions();
  const CampaignResult campaign =
      RunCampaign(p.circuit, p.fault_list, p.configs, options);

  ASSERT_GT(campaign.QuarantinedCellCount(), 0u);

  // The poisoned fault is the last in the list; it must be quarantined at
  // every grid point of every configuration and counted undetected there.
  const std::size_t poisoned = p.fault_list.size() - 1;
  const auto matrix = campaign.DetectabilityMatrix();
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    const ConfigResult& row = campaign.PerConfig()[i];
    const testability::FaultDetectability& fd = row.faults[poisoned];
    EXPECT_EQ(fd.quarantined_points, row.nominal.PointCount())
        << "config row " << i;
    EXPECT_FALSE(fd.detectable) << "config row " << i;
    EXPECT_EQ(fd.omega_detectability, 0.0) << "config row " << i;
    EXPECT_FALSE(matrix[i][poisoned]) << "config row " << i;

    // The healthy faults are untouched by the poisoned neighbour.
    std::size_t healthy_quarantined = 0;
    for (std::size_t j = 0; j < poisoned; ++j) {
      healthy_quarantined += row.faults[j].quarantined_points;
    }
    EXPECT_EQ(healthy_quarantined, 0u) << "config row " << i;
    EXPECT_EQ(row.nominal.QuarantinedCount(), 0u) << "config row " << i;
  }

  // Coverage counts the quarantined fault as missed.
  EXPECT_LT(campaign.Coverage(), 1.0);
}

TEST_F(Resilience, QuarantinedCampaignIsThreadCountInvariant) {
  const Prepared p = PreparePoisonedBiquad();
  CampaignOptions options = FastOptions();

  options.threads = 1;
  const CampaignResult serial =
      RunCampaign(p.circuit, p.fault_list, p.configs, options);
  ASSERT_GT(serial.QuarantinedCellCount(), 0u);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    options.threads = threads;
    const CampaignResult parallel =
        RunCampaign(p.circuit, p.fault_list, p.configs, options);
    ExpectBitIdentical(serial, parallel,
                       "quarantined campaign @" + std::to_string(threads) +
                           " threads");
  }
}

TEST_F(Resilience, QuarantineSurvivesCheckpointRoundTripAndMerge) {
  const Prepared p = PreparePoisonedBiquad();
  const CampaignOptions options = FastOptions();
  const CampaignResult monolithic =
      RunCampaign(p.circuit, p.fault_list, p.configs, options);
  ASSERT_GT(monolithic.QuarantinedCellCount(), 0u);

  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const fs::path ck = dir_ / ("shards_" + std::to_string(count));
    std::vector<std::string> paths;
    std::size_t shard_quarantined = 0;
    for (std::size_t index = 0; index < count; ++index) {
      ShardRunOptions shard_options;
      shard_options.shard = ShardSpec{index, count};
      shard_options.checkpoint_dir = ck.string();
      const ShardRunResult run = RunCampaignShard(
          p.circuit, p.fault_list, p.configs, options, shard_options);
      EXPECT_TRUE(run.complete);
      shard_quarantined += run.quarantined_cells;
      paths.push_back(run.shard_path);
    }
    // The per-shard counters (what drives the CLI exit code before any
    // merge exists) see every quarantined cell exactly once.
    EXPECT_EQ(shard_quarantined, monolithic.QuarantinedCellCount())
        << count << " shards";

    const MergedCampaign merged = MergeShards(paths);
    ExpectBitIdentical(monolithic, merged.campaign,
                       "quarantined merge @" + std::to_string(count) +
                           " shards");
  }
}

TEST_F(Resilience, RunReportRecordsQuarantinedCells) {
  const Prepared p = PreparePoisonedBiquad();
  const CampaignOptions options = FastOptions();

  CampaignRunRecorder recorder;
  const CampaignResult campaign =
      RunCampaign(p.circuit, p.fault_list, p.configs, options);
  RunReportOptions report_options;
  report_options.circuit = p.circuit.Name();
  const util::json::Value report = recorder.Finish(campaign, report_options);

  const util::json::Value& cells =
      report.Get("campaign").Get("cells");
  EXPECT_EQ(cells.Get("quarantined").AsDouble(),
            static_cast<double>(campaign.QuarantinedCellCount()));
  EXPECT_GT(cells.Get("total").AsDouble(), cells.Get("quarantined").AsDouble());

  // Every configuration row reports its count and names the poisoned
  // fault in its quarantine list.
  const util::json::Value& rows =
      report.Get("campaign").Get("per_config");
  ASSERT_EQ(rows.Size(), campaign.ConfigCount());
  for (std::size_t i = 0; i < rows.Size(); ++i) {
    const ConfigResult& row = campaign.PerConfig()[i];
    EXPECT_EQ(rows.At(i).Get("quarantined_cells").AsDouble(),
              static_cast<double>(row.QuarantinedCellCount()));
    const util::json::Value* list = rows.At(i).Find("quarantine");
    ASSERT_NE(list, nullptr) << "config row " << i;
    ASSERT_EQ(list->Size(), 1u) << "config row " << i;
    EXPECT_EQ(list->At(0).Get("device").AsString(), "RQ");
  }
}

TEST_F(Resilience, CheckpointWriteFaultsOnlyWidenWhatResumeRecomputes) {
  const Prepared p = PreparePoisonedBiquad();
  const CampaignOptions options = FastOptions();

  // Reference: shard 0/2 written without interference.
  ShardRunOptions straight;
  straight.shard = ShardSpec{0, 2};
  straight.checkpoint_dir = (dir_ / "straight").string();
  const ShardRunResult whole =
      RunCampaignShard(p.circuit, p.fault_list, p.configs, options, straight);
  ASSERT_TRUE(whole.complete);
  const std::string expected = ReadBytes(whole.shard_path);

  struct Case {
    double rate;
    std::uint64_t seed;
  };
  for (const Case c : {Case{0.3, 7}, Case{0.7, 11}, Case{1.0, 13}}) {
    ShardRunOptions faulty = straight;
    faulty.checkpoint_dir =
        (dir_ / ("writefault_" + std::to_string(c.seed))).string();

    util::faultpoint::Arm("checkpoint.write.short", c.rate, c.seed);
    const ShardRunResult disturbed = RunCampaignShard(
        p.circuit, p.fault_list, p.configs, options, faulty);
    util::faultpoint::DisarmAll();

    // Write failures are tolerated: the campaign itself completed.
    EXPECT_TRUE(disturbed.complete) << "rate " << c.rate;
    EXPECT_GT(disturbed.checkpoint_write_failures, 0u) << "rate " << c.rate;
    EXPECT_FALSE(disturbed.last_write_error.empty()) << "rate " << c.rate;

    // A clean rerun resumes whatever survived and converges to exactly
    // the bytes the undisturbed run wrote.
    const ShardRunResult converged = RunCampaignShard(
        p.circuit, p.fault_list, p.configs, options, faulty);
    EXPECT_TRUE(converged.complete) << "rate " << c.rate;
    EXPECT_EQ(converged.checkpoint_write_failures, 0u) << "rate " << c.rate;
    EXPECT_EQ(ReadBytes(converged.shard_path), expected)
        << "rate " << c.rate;
  }
}

TEST_F(Resilience, CheckpointReadFaultsAreSalvagedAndRecomputed) {
  const Prepared p = PreparePoisonedBiquad();
  const CampaignOptions options = FastOptions();

  ShardRunOptions shard_options;
  shard_options.shard = ShardSpec{0, 1};
  shard_options.checkpoint_dir = (dir_ / "readfault").string();
  const ShardRunResult whole = RunCampaignShard(
      p.circuit, p.fault_list, p.configs, options, shard_options);
  ASSERT_TRUE(whole.complete);
  ASSERT_GE(whole.units_total, 2u);
  const std::string expected = ReadBytes(whole.shard_path);

  for (const double rate : {0.5, 1.0}) {
    util::faultpoint::Arm("checkpoint.read.unit", rate,
                          static_cast<std::uint64_t>(rate * 100));
    const ShardRunResult resumed = RunCampaignShard(
        p.circuit, p.fault_list, p.configs, options, shard_options);
    util::faultpoint::DisarmAll();

    // Units the injected read fault damaged were dropped with a
    // diagnostic and recomputed; the file converged back to the same
    // bytes either way.
    EXPECT_TRUE(resumed.complete) << "rate " << rate;
    EXPECT_GT(resumed.salvage_diagnostics.size(), 0u) << "rate " << rate;
    EXPECT_EQ(resumed.units_run, resumed.salvage_diagnostics.size())
        << "rate " << rate;
    EXPECT_EQ(resumed.units_resumed + resumed.units_run, whole.units_total)
        << "rate " << rate;
    EXPECT_EQ(ReadBytes(resumed.shard_path), expected) << "rate " << rate;
  }
}

}  // namespace
}  // namespace mcdft::core
