#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace mcdft::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(Trim, NoWhitespaceIsIdentity) { EXPECT_EQ(Trim("abc"), "abc"); }

TEST(SplitFields, SplitsOnSpacesAndTabs) {
  auto f = SplitFields("R1  n1\tn2  10k");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "R1");
  EXPECT_EQ(f[3], "10k");
}

TEST(SplitFields, EmptyInputGivesNoFields) {
  EXPECT_TRUE(SplitFields("").empty());
  EXPECT_TRUE(SplitFields("   ").empty());
}

TEST(SplitFields, CustomDelimiters) {
  auto f = SplitFields("a,b;;c", ",;");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
}

TEST(SplitKeepEmpty, KeepsEmptyPieces) {
  auto f = SplitKeepEmpty("a,,b", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST(SplitKeepEmpty, TrailingDelimiter) {
  auto f = SplitKeepEmpty("x,", ',');
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[1], "");
}

TEST(CaseFolding, LowerUpper) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("aBc1"), "ABC1");
}

TEST(CaseFolding, EqualsNoCase) {
  EXPECT_TRUE(EqualsNoCase("MEG", "meg"));
  EXPECT_FALSE(EqualsNoCase("MEG", "me"));
  EXPECT_FALSE(EqualsNoCase("MEG", "mex"));
}

TEST(CaseFolding, StartsWithNoCase) {
  EXPECT_TRUE(StartsWithNoCase("10MEGohm", "10meg"));
  EXPECT_FALSE(StartsWithNoCase("10k", "10meg"));
}

struct EngCase {
  const char* text;
  double value;
};

class ParseEngineeringTest : public ::testing::TestWithParam<EngCase> {};

TEST_P(ParseEngineeringTest, ParsesSuffix) {
  double v = 0.0;
  ASSERT_TRUE(ParseEngineering(GetParam().text, v)) << GetParam().text;
  EXPECT_NEAR(v, GetParam().value, std::abs(GetParam().value) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, ParseEngineeringTest,
    ::testing::Values(
        EngCase{"1k", 1e3}, EngCase{"4.7K", 4.7e3}, EngCase{"2.2n", 2.2e-9},
        EngCase{"10meg", 1e7}, EngCase{"10MEG", 1e7}, EngCase{"3m", 3e-3},
        EngCase{"5u", 5e-6}, EngCase{"7p", 7e-12}, EngCase{"1.5f", 1.5e-15},
        EngCase{"2g", 2e9}, EngCase{"3t", 3e12}, EngCase{"1e-6", 1e-6},
        EngCase{"-12.5", -12.5}, EngCase{"10kohm", 1e4},
        EngCase{"100nF", 100e-9}, EngCase{"0", 0.0}, EngCase{"  42  ", 42.0},
        EngCase{"1E3", 1e3}, EngCase{"2.5e-3k", 2.5}, EngCase{"10hz", 10.0}));

struct BadEngCase {
  const char* text;
};

class ParseEngineeringRejectTest : public ::testing::TestWithParam<BadEngCase> {
};

TEST_P(ParseEngineeringRejectTest, Rejects) {
  double v = 0.0;
  EXPECT_FALSE(ParseEngineering(GetParam().text, v)) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(BadInputs, ParseEngineeringRejectTest,
                         ::testing::Values(BadEngCase{""}, BadEngCase{"abc"},
                                           BadEngCase{"k10"},
                                           BadEngCase{"10k5"},
                                           BadEngCase{"--5"}));

TEST(FormatEngineering, RoundTripsCommonValues) {
  EXPECT_EQ(FormatEngineering(4700.0), "4.7k");
  EXPECT_EQ(FormatEngineering(2.2e-9), "2.2n");
  EXPECT_EQ(FormatEngineering(1e6), "1Meg");
  EXPECT_EQ(FormatEngineering(0.0), "0");
  EXPECT_EQ(FormatEngineering(-1500.0), "-1.5k");
}

TEST(FormatEngineering, ParseFormatRoundTrip) {
  for (double v : {1.0, 12.0, 4.7e3, 2.2e-9, 15.9e3, 1e-12, 3.3e6}) {
    double parsed = 0.0;
    ASSERT_TRUE(ParseEngineering(FormatEngineering(v, 9), parsed));
    EXPECT_NEAR(parsed, v, std::abs(v) * 1e-6);
  }
}

TEST(FormatTrimmed, DropsTrailingZeros) {
  EXPECT_EQ(FormatTrimmed(12.50), "12.5");
  EXPECT_EQ(FormatTrimmed(3.00), "3");
  EXPECT_EQ(FormatTrimmed(0.25), "0.25");
  EXPECT_EQ(FormatTrimmed(-0.0), "0");
}

TEST(Join, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace mcdft::util
