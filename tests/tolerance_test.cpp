#include "testability/tolerance.hpp"

#include <gtest/gtest.h>

namespace mcdft::testability {
namespace {

spice::Netlist RcCircuit() {
  spice::Netlist nl("rc");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  return nl;
}

spice::Probe OutProbe(const spice::Netlist& nl) {
  return spice::Probe{nl.FindNode("out"), spice::kGround, "v(out)"};
}

TEST(ToleranceEnvelope, DeterministicForFixedSeed) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 10);
  ToleranceModel model;
  model.samples = 16;
  auto e1 = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                     model, 0.25);
  auto e2 = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                     model, 0.25);
  ASSERT_EQ(e1.size(), sweep.PointCount());
  EXPECT_EQ(e1, e2);
}

TEST(ToleranceEnvelope, DifferentSeedsDiffer) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 10);
  ToleranceModel m1;
  m1.samples = 8;
  ToleranceModel m2 = m1;
  m2.seed = 999;
  auto e1 = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"}, m1,
                                     0.25);
  auto e2 = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"}, m2,
                                     0.25);
  EXPECT_NE(e1, e2);
}

TEST(ToleranceEnvelope, GrowsWithTolerance) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 10);
  ToleranceModel small;
  small.component_tolerance = 0.01;
  small.samples = 16;
  ToleranceModel big = small;
  big.component_tolerance = 0.10;
  auto es = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                     small, 0.25);
  auto eb = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                     big, 0.25);
  double max_s = 0.0, max_b = 0.0;
  for (double v : es) max_s = std::max(max_s, v);
  for (double v : eb) max_b = std::max(max_b, v);
  EXPECT_GT(max_b, 2.0 * max_s);
}

TEST(ToleranceEnvelope, MoreSamplesNeverShrinkIt) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 8);
  ToleranceModel few;
  few.samples = 4;
  ToleranceModel many = few;
  many.samples = 32;
  auto ef = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1"}, few, 0.25);
  auto em = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1"}, many, 0.25);
  // Same seed: the first 4 samples are a prefix of the 32.
  for (std::size_t i = 0; i < ef.size(); ++i) EXPECT_GE(em[i], ef[i] - 1e-15);
}

TEST(ToleranceEnvelope, BitIdenticalAcrossThreadCounts) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 10);
  ToleranceModel model;
  model.samples = 16;
  auto serial = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                         model, 0.25, {}, 1);
  auto parallel = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl),
                                           {"R1", "C1"}, model, 0.25, {}, 4);
  EXPECT_EQ(serial, parallel);
}

TEST(ToleranceEnvelope, PerSampleSeedDerivationIsPinned) {
  // Sample k draws from a generator seeded with seed ^ k, so the N-sample
  // envelope equals the pointwise max of N single-sample envelopes run at
  // seeds seed ^ k.  This is the contract that makes samples independent
  // streams (and the envelope thread-count invariant); a change to the
  // derivation breaks this test.
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10.0, 1e4, 8);
  ToleranceModel model;
  model.samples = 6;
  model.seed = 0x5eed042;
  auto whole = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                        model, 0.25);
  std::vector<double> rebuilt(sweep.PointCount(), 0.0);
  for (std::uint64_t k = 0; k < model.samples; ++k) {
    ToleranceModel one;
    one.component_tolerance = model.component_tolerance;
    one.samples = 1;
    one.seed = model.seed ^ k;
    auto e = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                      one, 0.25);
    for (std::size_t i = 0; i < rebuilt.size(); ++i) {
      rebuilt[i] = std::max(rebuilt[i], e[i]);
    }
  }
  EXPECT_EQ(whole, rebuilt);
}

TEST(ToleranceEnvelope, BoundedByWorstCaseSensitivity) {
  // For the RC divider, a +/-5% change of R and C cannot move |T| by more
  // than ~10-12% anywhere; the envelope must respect that.
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(1.0, 1e5, 10);
  ToleranceModel model;
  model.component_tolerance = 0.05;
  model.samples = 32;
  auto e = ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1", "C1"},
                                    model, 1e-9);
  for (double v : e) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.25);
  }
}

TEST(ToleranceEnvelope, LeavesInputNetlistUntouched) {
  auto nl = RcCircuit();
  ToleranceModel model;
  model.samples = 4;
  ComputeToleranceEnvelope(nl, spice::SweepSpec::Decade(10, 1e3, 5),
                           OutProbe(nl), {"R1", "C1"}, model, 0.25);
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1e3);
  EXPECT_DOUBLE_EQ(nl.GetElement("C1").Value(), 1e-6);
}

TEST(ToleranceEnvelope, ValidatesArguments) {
  auto nl = RcCircuit();
  auto sweep = spice::SweepSpec::Decade(10, 1e3, 5);
  ToleranceModel bad_tol;
  bad_tol.component_tolerance = 0.0;
  EXPECT_THROW(ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1"},
                                        bad_tol, 0.25),
               util::AnalysisError);
  ToleranceModel bad_samples;
  bad_samples.samples = 0;
  EXPECT_THROW(ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R1"},
                                        bad_samples, 0.25),
               util::AnalysisError);
  ToleranceModel ok;
  EXPECT_THROW(ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {}, ok, 0.25),
               util::AnalysisError);
  EXPECT_THROW(ComputeToleranceEnvelope(nl, sweep, OutProbe(nl), {"R9"}, ok,
                                        0.25),
               util::NetlistError);
}

}  // namespace
}  // namespace mcdft::testability
