// The sharded executor's acceptance claim (ISSUE 3): merging shard
// checkpoints reconstitutes a CampaignResult BIT-identical to the
// monolithic RunCampaign for any shard count, and a killed-and-resumed
// shard converges to exactly the bytes an uninterrupted run writes.
//
// Uses the biquad and the 6-opamp cascade with the same fast settings as
// core_campaign_determinism_test.cpp (grid density and sample count are
// irrelevant to the partition-reassembly claim).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "circuits/zoo.hpp"
#include "core/checkpoint.hpp"
#include "core/shard.hpp"
#include "faults/fault_list.hpp"
#include "util/faultpoint.hpp"

namespace mcdft::core {
namespace {

namespace fs = std::filesystem;

CampaignOptions FastOptions() {
  CampaignOptions options = MakePaperCampaignOptions();
  options.points_per_decade = 5;
  options.tolerance->samples = 6;
  options.threads = 2;
  return options;
}

std::vector<ConfigVector> SmallConfigSet(const DftCircuit& circuit) {
  auto space = circuit.Space();
  std::vector<ConfigVector> configs = space.OpampCount() > 5
                                          ? space.UpToKFollowers(1)
                                          : space.UpToKFollowers(2);
  std::erase_if(configs,
                [](const ConfigVector& cv) { return cv.IsTransparent(); });
  return configs;
}

/// Bitwise comparison including the derived summaries the run report
/// prints (coverage, average omega-detectability).
void ExpectBitIdentical(const CampaignResult& a, const CampaignResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.ConfigCount(), b.ConfigCount()) << what;
  ASSERT_EQ(a.FaultCount(), b.FaultCount()) << what;
  EXPECT_EQ(a.DetectabilityMatrix(), b.DetectabilityMatrix()) << what;
  EXPECT_EQ(a.Coverage(), b.Coverage()) << what;
  EXPECT_EQ(a.AverageOmegaDet(), b.AverageOmegaDet()) << what;

  const auto omega_a = a.OmegaTable();
  const auto omega_b = b.OmegaTable();
  for (std::size_t i = 0; i < omega_a.size(); ++i) {
    for (std::size_t j = 0; j < omega_a[i].size(); ++j) {
      EXPECT_EQ(omega_a[i][j], omega_b[i][j])
          << what << " omega[" << i << "][" << j << "]";
    }
  }
  for (std::size_t i = 0; i < a.ConfigCount(); ++i) {
    const ConfigResult& ra = a.PerConfig()[i];
    const ConfigResult& rb = b.PerConfig()[i];
    EXPECT_EQ(ra.config, rb.config) << what;
    EXPECT_EQ(ra.threshold, rb.threshold) << what << " threshold row " << i;
    EXPECT_EQ(ra.relative_floor, rb.relative_floor) << what;
    EXPECT_EQ(ra.AverageOmegaDet(), rb.AverageOmegaDet()) << what;
    ASSERT_EQ(ra.nominal.PointCount(), rb.nominal.PointCount()) << what;
    for (std::size_t p = 0; p < ra.nominal.PointCount(); ++p) {
      EXPECT_EQ(ra.nominal.values[p], rb.nominal.values[p])
          << what << " nominal row " << i << " point " << p;
    }
  }
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ShardMerge : public ::testing::Test {
 protected:
  void SetUp() override {
    // Byte-identity claims require undisturbed checkpoint writes: opt out
    // of any armed-suite MCDFT_FAULTPOINTS spec.
    util::faultpoint::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("mcdft_shard_merge_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    util::faultpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

struct Prepared {
  DftCircuit circuit;
  std::vector<faults::Fault> fault_list;
  std::vector<ConfigVector> configs;
};

Prepared PrepareCircuit(const char* name) {
  auto block = circuits::FindInZoo(name).build();
  DftCircuit circuit = DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  auto configs = SmallConfigSet(circuit);
  return Prepared{std::move(circuit), std::move(fault_list),
                  std::move(configs)};
}

void CheckMergeMatchesMonolithic(const fs::path& dir, const char* name) {
  const Prepared p = PrepareCircuit(name);
  const CampaignOptions options = FastOptions();
  const CampaignResult monolithic =
      RunCampaign(p.circuit, p.fault_list, p.configs, options);

  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const fs::path ck =
        dir / (std::string(name) + "_" + std::to_string(count));
    std::vector<std::string> paths;
    std::size_t units_total = 0;
    for (std::size_t index = 0; index < count; ++index) {
      ShardRunOptions shard_options;
      shard_options.shard = ShardSpec{index, count};
      shard_options.checkpoint_dir = ck.string();
      const ShardRunResult run = RunCampaignShard(
          p.circuit, p.fault_list, p.configs, options, shard_options);
      EXPECT_TRUE(run.complete);
      EXPECT_EQ(run.units_resumed, 0u);
      units_total += run.units_total;
      paths.push_back(run.shard_path);
    }
    // Every configuration appears once per shard that owns cells on it, so
    // across shards there are at least as many units as configurations.
    EXPECT_GE(units_total, p.configs.size());

    const MergedCampaign merged = MergeShards(paths);
    EXPECT_EQ(merged.circuit, p.circuit.Name());
    EXPECT_EQ(merged.shard_files, count);
    ExpectBitIdentical(monolithic, merged.campaign,
                       std::string(name) + " @" + std::to_string(count) +
                           " shards");
  }
}

TEST_F(ShardMerge, BiquadMergedShardsBitIdenticalToMonolithic) {
  CheckMergeMatchesMonolithic(dir_, "biquad");
}

TEST_F(ShardMerge, Cascade6MergedShardsBitIdenticalToMonolithic) {
  CheckMergeMatchesMonolithic(dir_, "cascade6");
}

TEST_F(ShardMerge, MixedBatchWidthShardsMergeBitIdenticalToUnbatched) {
  // Batched SMW fault solves are bit-identical at every batch width, and
  // the campaign content hash folds only the on/off gate — so shards run
  // at *different* widths must merge, and the merged campaign must equal
  // an unbatched monolithic run byte for byte.
  const Prepared p = PrepareCircuit("biquad");
  CampaignOptions unbatched = FastOptions();
  unbatched.mna.fault_batch = 0;
  const CampaignResult monolithic =
      RunCampaign(p.circuit, p.fault_list, p.configs, unbatched);

  constexpr std::size_t kWidths[] = {1, 32, 4, 8};
  for (std::size_t count : {std::size_t{2}, std::size_t{4}}) {
    const fs::path ck = dir_ / ("mixed_batch_" + std::to_string(count));
    std::vector<std::string> paths;
    for (std::size_t index = 0; index < count; ++index) {
      CampaignOptions options = FastOptions();
      options.mna.fault_batch = kWidths[index];
      ShardRunOptions shard_options;
      shard_options.shard = ShardSpec{index, count};
      shard_options.checkpoint_dir = ck.string();
      const ShardRunResult run = RunCampaignShard(
          p.circuit, p.fault_list, p.configs, options, shard_options);
      EXPECT_TRUE(run.complete);
      paths.push_back(run.shard_path);
    }
    const MergedCampaign merged = MergeShards(paths);
    ExpectBitIdentical(monolithic, merged.campaign,
                       "mixed batch widths @" + std::to_string(count) +
                           " shards");
  }
}

TEST_F(ShardMerge, KilledAndResumedShardWritesIdenticalBytes) {
  const Prepared p = PrepareCircuit("biquad");
  const CampaignOptions options = FastOptions();

  // Reference: shard 0/2 run to completion in one go.
  ShardRunOptions straight;
  straight.shard = ShardSpec{0, 2};
  straight.checkpoint_dir = (dir_ / "straight").string();
  const ShardRunResult whole =
      RunCampaignShard(p.circuit, p.fault_list, p.configs, options, straight);
  ASSERT_TRUE(whole.complete);
  ASSERT_GE(whole.units_total, 2u) << "need >= 2 units to simulate a kill";

  // Same shard, killed after one fresh unit, then resumed to completion.
  ShardRunOptions interrupted = straight;
  interrupted.checkpoint_dir = (dir_ / "interrupted").string();
  interrupted.max_new_units = 1;
  const ShardRunResult partial = RunCampaignShard(p.circuit, p.fault_list,
                                                  p.configs, options,
                                                  interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.units_run, 1u);

  interrupted.max_new_units = static_cast<std::size_t>(-1);
  const ShardRunResult resumed = RunCampaignShard(p.circuit, p.fault_list,
                                                  p.configs, options,
                                                  interrupted);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.units_resumed, 1u);
  EXPECT_EQ(resumed.units_run, whole.units_total - 1);

  // The acceptance bar: the resumed checkpoint is the same BYTES as the
  // uninterrupted one.
  EXPECT_EQ(ReadBytes(resumed.shard_path), ReadBytes(whole.shard_path));
}

TEST_F(ShardMerge, MergeRejectsGapsOverlapsAndForeignCampaigns) {
  const Prepared p = PrepareCircuit("biquad");
  const CampaignOptions options = FastOptions();

  std::vector<std::string> paths;
  for (std::size_t index = 0; index < 2; ++index) {
    ShardRunOptions shard_options;
    shard_options.shard = ShardSpec{index, 2};
    shard_options.checkpoint_dir = (dir_ / "pair").string();
    paths.push_back(RunCampaignShard(p.circuit, p.fault_list, p.configs,
                                     options, shard_options)
                        .shard_path);
  }

  // A missing shard is a coverage gap.
  EXPECT_THROW(MergeShards({paths[0]}), CheckpointError);
  // The same shard twice is overlapping coverage.
  EXPECT_THROW(MergeShards({paths[0], paths[1], paths[1]}), CheckpointError);

  // A shard of a different campaign (changed epsilon) cannot be mixed in.
  CampaignOptions changed = options;
  changed.criteria.epsilon *= 2.0;
  ShardRunOptions foreign;
  foreign.shard = ShardSpec{1, 2};
  foreign.checkpoint_dir = (dir_ / "foreign").string();
  const std::string foreign_path =
      RunCampaignShard(p.circuit, p.fault_list, p.configs, changed, foreign)
          .shard_path;
  EXPECT_THROW(MergeShards({paths[0], foreign_path}), CheckpointError);

  // The intact pair still merges.
  EXPECT_EQ(MergeShards(paths).shard_files, 2u);
}

}  // namespace
}  // namespace mcdft::core
