// The deterministic fault-injection harness (util/faultpoint): ordinal and
// hashed firing modes, the MCDFT_FAULTPOINTS spec parser, stat counters,
// and the determinism contract both modes are built on.
#include "util/faultpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace mcdft::util::faultpoint {
namespace {

/// Each test runs in its own process (gtest discovery), so mutating the
/// global registry is safe; still, start and end from a clean slate so an
/// armed-suite run (MCDFT_FAULTPOINTS set) cannot bleed into assertions.
class FaultpointTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultpointTest, DisarmedPointsNeverFire) {
  EXPECT_FALSE(ShouldFail("test.never_armed"));
  EXPECT_FALSE(ShouldFail("test.never_armed", 0x1234u));
  const Stats s = StatsOf("test.never_armed");
  EXPECT_EQ(s.fired, 0u);
}

TEST_F(FaultpointTest, OrdinalSequenceIsAFunctionOfSeedAndCallOrder) {
  const auto sequence = [](std::uint64_t seed) {
    Arm("test.ordinal", 0.5, seed);
    std::vector<bool> fires;
    for (int i = 0; i < 256; ++i) fires.push_back(ShouldFail("test.ordinal"));
    return fires;
  };
  const std::vector<bool> first = sequence(123);
  const std::vector<bool> again = sequence(123);
  EXPECT_EQ(first, again);  // re-arming resets the ordinal counter
  EXPECT_NE(first, sequence(124));

  // Rate 0.5 over 256 draws: both outcomes must occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FaultpointTest, RateEndpointsAndClamping) {
  Arm("test.rate", 0.0, 1);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(ShouldFail("test.rate"));
  Arm("test.rate", 1.0, 1);
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(ShouldFail("test.rate"));
  Arm("test.rate", 7.5, 1);  // clamped to 1
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(ShouldFail("test.rate"));
  Arm("test.rate", -0.5, 1);  // clamped to 0
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(ShouldFail("test.rate"));
}

TEST_F(FaultpointTest, HashedModeIsAPureFunctionOfSeedAndDigest) {
  Arm("test.hashed", 0.5, 42);
  std::size_t fired = 0;
  for (std::uint64_t d = 0; d < 1000; ++d) {
    const bool first = ShouldFail("test.hashed", d);
    // No internal state: the same digest always decides the same way, in
    // any evaluation order — this is what makes solver injection
    // thread-count invariant.
    EXPECT_EQ(ShouldFail("test.hashed", d), first);
    if (first) ++fired;
  }
  EXPECT_GT(fired, 300u);  // ~binomial(1000, 0.5)
  EXPECT_LT(fired, 700u);
  // Re-arming with the same (rate, seed) reproduces every decision.
  Arm("test.hashed", 0.5, 42);
  std::size_t fired_again = 0;
  for (std::uint64_t d = 0; d < 1000; ++d) {
    if (ShouldFail("test.hashed", d)) ++fired_again;
  }
  EXPECT_EQ(fired, fired_again);
}

TEST_F(FaultpointTest, StatsCountEvaluationsAndFires) {
  Arm("test.stats", 1.0, 9);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ShouldFail("test.stats"));
  Stats s = StatsOf("test.stats");
  EXPECT_EQ(s.evaluations, 5u);
  EXPECT_EQ(s.fired, 5u);

  // Disarm keeps the counters for post-hoc assertions but stops firing.
  Disarm("test.stats");
  EXPECT_FALSE(ShouldFail("test.stats"));
  s = StatsOf("test.stats");
  EXPECT_EQ(s.fired, 5u);
}

TEST_F(FaultpointTest, SpecParserArmsEveryTriple) {
  ArmFromSpec("test.spec.a:0:3,test.spec.b:1:4");
  EXPECT_TRUE(AnyArmed());
  EXPECT_FALSE(ShouldFail("test.spec.a"));
  EXPECT_TRUE(ShouldFail("test.spec.b"));
}

TEST_F(FaultpointTest, SpecParserRejectsMalformedInput) {
  for (const char* bad :
       {"noseed:0.5", ":0.5:7", "name::7", "name:0.5:",
        "name:zero:7", "name:0.5:seed", "name:0.5:7:extra"}) {
    EXPECT_THROW(ArmFromSpec(bad), util::Error) << "spec '" << bad << "'";
  }
}

TEST_F(FaultpointTest, DigestHelpersAreDeterministic) {
  const unsigned char bytes[] = {1, 2, 3, 4};
  const std::uint64_t d1 = DigestBytes(bytes, sizeof bytes);
  EXPECT_EQ(d1, DigestBytes(bytes, sizeof bytes));
  const unsigned char other[] = {1, 2, 3, 5};
  EXPECT_NE(d1, DigestBytes(other, sizeof other));
  EXPECT_NE(DigestCombine(d1, 7), DigestCombine(d1, 8));
  EXPECT_EQ(DigestCombine(d1, 7), DigestCombine(d1, 7));
}

TEST_F(FaultpointTest, AnyArmedTracksTheRegistry) {
  DisarmAll();
  EXPECT_FALSE(AnyArmed());
  Arm("test.any", 0.1, 2);
  EXPECT_TRUE(AnyArmed());
  DisarmAll();
  EXPECT_FALSE(AnyArmed());
}

}  // namespace
}  // namespace mcdft::util::faultpoint
