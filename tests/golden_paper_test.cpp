// Golden-file regression tests for the paper-facing report renderers:
// Table 1 (configurations), Table 2 (omega-detectability), Table 4
// (partial-DFT omega table) and Fig. 5 (detectability matrix), rendered
// from the synthetic paper campaign so the expected text is deterministic.
//
// Comparison is token-wise with an explicit numeric tolerance: numbers may
// drift within kNumericTolerance (layout/rounding churn), every other
// token must match exactly ('*' best-entry markers are compared too — they
// are part of the paper's semantics).
//
// Regenerate after an intentional renderer change with:
//   MCDFT_REGOLD=1 ctest -R Golden
#include <gtest/gtest.h>

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "paper_fixture.hpp"

#ifndef MCDFT_GOLDEN_DIR
#error "MCDFT_GOLDEN_DIR must point at tests/golden"
#endif

namespace mcdft::core {
namespace {

constexpr double kNumericTolerance = 0.05;  // omega values print in percent

std::string GoldenPath(const std::string& name) {
  return std::string(MCDFT_GOLDEN_DIR) + "/" + name;
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

bool ParseNumber(const std::string& tok, double& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto r = std::from_chars(first, last, out);
  return r.ec == std::errc{} && r.ptr == last;
}

void CompareAgainstGolden(const std::string& actual, const std::string& file) {
  const std::string path = GoldenPath(file);
  if (std::getenv("MCDFT_REGOLD") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with MCDFT_REGOLD=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();

  const std::vector<std::string> want = Tokenize(expected);
  const std::vector<std::string> got = Tokenize(actual);
  ASSERT_EQ(want.size(), got.size())
      << file << ": token count changed\n--- expected ---\n"
      << expected << "\n--- actual ---\n"
      << actual;
  for (std::size_t i = 0; i < want.size(); ++i) {
    double w = 0.0, g = 0.0;
    if (ParseNumber(want[i], w) && ParseNumber(got[i], g)) {
      EXPECT_NEAR(g, w, kNumericTolerance)
          << file << ": numeric token " << i << " ('" << want[i] << "' vs '"
          << got[i] << "')";
    } else {
      EXPECT_EQ(got[i], want[i]) << file << ": token " << i;
    }
  }
}

TEST(GoldenPaper, Table1Configurations) {
  const DftCircuit circuit = testdata::PaperCircuit();
  CompareAgainstGolden(RenderConfigurationTable(circuit.Space()),
                       "table1_configurations.txt");
}

TEST(GoldenPaper, Fig5DetectabilityMatrix) {
  CompareAgainstGolden(RenderDetectabilityMatrix(testdata::PaperCampaign()),
                       "fig5_detectability_matrix.txt");
}

TEST(GoldenPaper, Table2OmegaTable) {
  CompareAgainstGolden(RenderOmegaTable(testdata::PaperCampaign()),
                       "table2_omega_table.txt");
}

TEST(GoldenPaper, Table4PartialDft) {
  const DftCircuit circuit = testdata::PaperCircuit();
  const CampaignResult campaign = testdata::PaperCampaign();
  const DftOptimizer optimizer(circuit, campaign);
  const PartialDftResult part = optimizer.OptimizePartialDft();
  CompareAgainstGolden(RenderPartialDft(part, campaign, circuit),
                       "table4_partial_dft.txt");
}

}  // namespace
}  // namespace mcdft::core
