#include "util/table.hpp"

#include <gtest/gtest.h>

namespace mcdft::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t;
  t.SetHeader({"Conf", "fR1"});
  t.AddRow({"C0", "1"});
  t.AddRow({"C1", "0"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("Conf"), std::string::npos);
  EXPECT_NE(out.find("C1"), std::string::npos);
  // Frame characters present.
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.Render();
  // Every data line has the same width as the rule line.
  std::size_t rule_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    std::size_t end = out.find('\n', pos);
    if (end == std::string::npos) break;
    EXPECT_EQ(end - pos, rule_len);
    pos = end + 1;
  }
}

TEST(Table, TitleAppearsAboveFrame) {
  Table t;
  t.SetTitle("My title");
  t.SetHeader({"x"});
  t.AddRow({"1"});
  const std::string out = t.Render();
  EXPECT_EQ(out.rfind("My title", 0), 0u);
}

TEST(Table, SeparatorAddsRule) {
  Table t;
  t.SetHeader({"x"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // Expect 5 rule lines: top, under header, separator, bottom... count '+--'.
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, AlignmentRightByDefaultForDataColumns) {
  Table t;
  t.SetHeader({"name", "val"});
  t.AddRow({"x", "1"});
  const std::string out = t.Render();
  // "val" column width 3, value "1" right-aligned -> "  1".
  EXPECT_NE(out.find("|   1 |"), std::string::npos);
}

TEST(Table, ExplicitCenterAlignment) {
  Table t;
  t.SetHeader({"aaaaa"});
  t.SetAlign(0, Table::Align::kCenter);
  t.AddRow({"x"});
  EXPECT_NE(t.Render().find("|   x   |"), std::string::npos);
}

TEST(Table, EmptyTableRendersNothingButTitle) {
  Table t;
  t.SetTitle("t");
  EXPECT_EQ(t.Render(), "t\n");
}

TEST(Table, RowCount) {
  Table t;
  t.AddRow({"a"});
  t.AddRow({"b"});
  EXPECT_EQ(t.RowCount(), 2u);
}

TEST(BarLine, FullAndEmpty) {
  const std::string full = BarLine("x", 1.0, "100%", 10, 4);
  EXPECT_NE(full.find("##########"), std::string::npos);
  const std::string empty = BarLine("x", 0.0, "0%", 10, 4);
  EXPECT_EQ(empty.find('#'), std::string::npos);
}

TEST(BarLine, ClampsOutOfRange) {
  EXPECT_EQ(BarLine("x", 2.0, "v", 10, 1), BarLine("x", 1.0, "v", 10, 1));
  EXPECT_EQ(BarLine("x", -1.0, "v", 10, 1), BarLine("x", 0.0, "v", 10, 1));
}

TEST(BarLine, HalfBar) {
  const std::string half = BarLine("x", 0.5, "50%", 10, 4);
  EXPECT_NE(half.find("#####"), std::string::npos);
  EXPECT_EQ(half.find("######"), std::string::npos);
}

}  // namespace
}  // namespace mcdft::util
