#include "boolcov/setcover.hpp"

#include <gtest/gtest.h>

#include <random>

#include "boolcov/petrick.hpp"

namespace mcdft::boolcov {
namespace {

bool Satisfies(const Cube& term, const CoverProblem& problem) {
  for (const auto& clause : problem.Clauses()) {
    if (term.Intersect(clause.literals).Empty()) return false;
  }
  return true;
}

CoverProblem PaperProblem() {
  // The paper's Fig. 5 covering problem (see boolcov_pos_test.cpp).
  std::vector<std::vector<bool>> m{
      {1, 0, 0, 1, 0, 0, 0, 0}, {0, 0, 1, 0, 1, 1, 0, 1},
      {1, 1, 0, 1, 1, 1, 1, 0}, {0, 0, 0, 0, 1, 1, 0, 0},
      {1, 1, 1, 1, 1, 0, 0, 0}, {0, 0, 1, 0, 0, 0, 0, 1},
      {1, 1, 0, 1, 0, 0, 0, 0}};
  return BuildCoverProblem(
      m, {"fR1", "fR2", "fR3", "fR4", "fR5", "fR6", "fC1", "fC2"});
}

TEST(ExactSetCover, PaperMatrixMinimumIsTwo) {
  auto p = PaperProblem();
  auto r = ExactSetCover(p, UnitWeights(7));
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_TRUE(Satisfies(r.chosen, p));
  // Must be one of the paper's two minimal sets {C1,C2} / {C2,C5}.
  EXPECT_TRUE(r.chosen == Cube(7, {1, 2}) || r.chosen == Cube(7, {2, 5}));
}

TEST(GreedySetCover, PaperMatrixIsFeasible) {
  auto p = PaperProblem();
  auto r = GreedySetCover(p, UnitWeights(7));
  EXPECT_TRUE(Satisfies(r.chosen, p));
  EXPECT_LE(r.cost, 3.0);  // ln(8)-approximation of 2
}

TEST(ExactSetCover, RespectsWeights) {
  // Two clauses, both coverable by variable 0 (heavy) or by 1 and 2 (light).
  CoverProblem p(3);
  p.AddClause({Cube(3, {0, 1}), "a"});
  p.AddClause({Cube(3, {0, 2}), "b"});
  auto cheap0 = ExactSetCover(p, {1.0, 5.0, 5.0});
  EXPECT_EQ(cheap0.chosen, Cube(3, {0}));
  auto cheap12 = ExactSetCover(p, {10.0, 1.0, 1.0});
  EXPECT_EQ(cheap12.chosen, Cube(3, {1, 2}));
  EXPECT_DOUBLE_EQ(cheap12.cost, 2.0);
}

TEST(ExactSetCover, SingleVariableProblem) {
  CoverProblem p(1);
  p.AddClause({Cube(1, {0}), "only"});
  auto r = ExactSetCover(p, UnitWeights(1));
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
}

TEST(ExactSetCover, EmptyProblemCostsNothing) {
  CoverProblem p(3);
  auto r = ExactSetCover(p, UnitWeights(3));
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.chosen.Empty());
}

TEST(SetCover, WeightValidation) {
  CoverProblem p(2);
  p.AddClause({Cube(2, {0}), "a"});
  EXPECT_THROW(ExactSetCover(p, {1.0}), util::OptimizationError);
  EXPECT_THROW(ExactSetCover(p, {1.0, -1.0}), util::OptimizationError);
  EXPECT_THROW(GreedySetCover(p, {0.0, 1.0}), util::OptimizationError);
}

class SetCoverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetCoverPropertyTest, ExactMatchesPetrickMinimum) {
  std::mt19937_64 rng(GetParam());
  const std::size_t nvars = 7;
  CoverProblem p(nvars);
  const std::size_t nclauses = 4 + rng() % 4;
  for (std::size_t c = 0; c < nclauses; ++c) {
    Cube lits(nvars);
    while (lits.Empty()) {
      for (std::size_t v = 0; v < nvars; ++v) {
        if (rng() % 3 == 0) lits.Set(v);
      }
    }
    p.AddClause({lits, "c" + std::to_string(c)});
  }
  auto exact = ExactSetCover(p, UnitWeights(nvars));
  auto sop = PetrickMinimalProducts(p);
  std::size_t best = sop.front().LiteralCount();
  for (const auto& t : sop) best = std::min(best, t.LiteralCount());
  EXPECT_DOUBLE_EQ(exact.cost, static_cast<double>(best));
  EXPECT_TRUE(Satisfies(exact.chosen, p));

  auto greedy = GreedySetCover(p, UnitWeights(nvars));
  EXPECT_TRUE(Satisfies(greedy.chosen, p));
  EXPECT_GE(greedy.cost, exact.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(ExactSetCover, StatsArePopulated) {
  auto p = PaperProblem();
  auto r = ExactSetCover(p, UnitWeights(7));
  EXPECT_GE(r.stats.nodes_explored, 1u);
  EXPECT_GE(r.stats.best_updates, 1u);
}

}  // namespace
}  // namespace mcdft::boolcov
