#include "spice/parser.hpp"

#include <gtest/gtest.h>

#include "spice/elements.hpp"
#include "spice/mna.hpp"
#include "spice/writer.hpp"

namespace mcdft::spice {
namespace {

TEST(Parser, FullDeck) {
  const std::string deck = R"(My little filter
* a comment line
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1u
.ac dec 10 1 1meg
.probe v(out)
.end
)";
  ParsedDeck d = ParseDeck(deck);
  EXPECT_EQ(d.netlist.Title(), "My little filter");
  EXPECT_EQ(d.netlist.ElementCount(), 3u);
  ASSERT_TRUE(d.sweep.has_value());
  EXPECT_DOUBLE_EQ(d.sweep->FStart(), 1.0);
  EXPECT_DOUBLE_EQ(d.sweep->FStop(), 1e6);
  ASSERT_EQ(d.probes.size(), 1u);
  EXPECT_EQ(d.probes[0].plus, d.netlist.FindNode("out"));
  EXPECT_EQ(d.probes[0].minus, kGround);
}

TEST(Parser, ParsedDeckIsSimulatable) {
  ParsedDeck d = ParseDeck(
      "V1 in 0 AC 1\nR1 in out 1k\nR2 out 0 1k\n.end\n");
  auto sol = MnaSystem(d.netlist).SolveAcHz(1e3);
  EXPECT_NEAR(std::abs(sol.VoltageAt(d.netlist.FindNode("out"))), 0.5, 1e-9);
}

TEST(Parser, EngineeringSuffixes) {
  ParsedDeck d = ParseDeck("R1 a 0 4.7k\nC1 a 0 2.2n\nL1 a 0 10m\n");
  EXPECT_DOUBLE_EQ(d.netlist.GetElement("R1").Value(), 4700.0);
  EXPECT_DOUBLE_EQ(d.netlist.GetElement("C1").Value(), 2.2e-9);
  EXPECT_DOUBLE_EQ(d.netlist.GetElement("L1").Value(), 10e-3);
}

TEST(Parser, ContinuationLines) {
  ParsedDeck d = ParseDeck("R1 a\n+ 0\n+ 10k\n");
  EXPECT_DOUBLE_EQ(d.netlist.GetElement("R1").Value(), 1e4);
}

TEST(Parser, SemicolonComments) {
  ParsedDeck d = ParseDeck("R1 a 0 1k ; the input resistor\n");
  EXPECT_EQ(d.netlist.ElementCount(), 1u);
}

TEST(Parser, SourceVariants) {
  ParsedDeck d = ParseDeck(
      "V1 a 0 5\n"
      "V2 b 0 DC 2 AC 0.5 90\n"
      "I1 c 0 1m\n"
      "R1 a 0 1\nR2 b 0 1\nR3 c 0 1\n");
  const auto& v1 = static_cast<const VoltageSource&>(d.netlist.GetElement("V1"));
  EXPECT_DOUBLE_EQ(v1.Dc(), 5.0);
  const auto& v2 = static_cast<const VoltageSource&>(d.netlist.GetElement("V2"));
  EXPECT_DOUBLE_EQ(v2.Dc(), 2.0);
  EXPECT_DOUBLE_EQ(v2.AcMagnitude(), 0.5);
  EXPECT_DOUBLE_EQ(v2.AcPhaseDeg(), 90.0);
  EXPECT_NEAR(v2.AcPhasor().imag(), 0.5, 1e-12);
}

TEST(Parser, ControlledSources) {
  ParsedDeck d = ParseDeck(
      "V1 in 0 1\n"
      "R1 in 0 1k\n"
      "E1 e 0 in 0 2\n"
      "G1 0 g in 0 1m\n"
      "H1 h 0 V1 100\n"
      "F1 0 f V1 3\n"
      "R2 e 0 1k\nR3 g 0 1k\nR4 h 0 1k\nR5 f 0 1k\n");
  EXPECT_EQ(d.netlist.GetElement("E1").Kind(), ElementKind::kVcvs);
  EXPECT_EQ(d.netlist.GetElement("G1").Kind(), ElementKind::kVccs);
  EXPECT_EQ(d.netlist.GetElement("H1").Kind(), ElementKind::kCcvs);
  EXPECT_EQ(d.netlist.GetElement("F1").Kind(), ElementKind::kCccs);
  EXPECT_EQ(static_cast<const Ccvs&>(d.netlist.GetElement("H1")).ControlSource(),
            "V1");
}

TEST(Parser, OpampCardPlain) {
  ParsedDeck d = ParseDeck("O1 p n out A0=2e5\nR1 p 0 1\nR2 n out 1\n");
  const auto& op = static_cast<const Opamp&>(d.netlist.GetElement("O1"));
  EXPECT_DOUBLE_EQ(op.Model().a0, 2e5);
  EXPECT_FALSE(op.IsConfigurable());
  EXPECT_EQ(op.InTest(), kGround);
}

TEST(Parser, OpampCardConfigurable) {
  ParsedDeck d = ParseDeck(
      "O1 p n out tnode CONFIGURABLE MODE=FOLLOWER\n"
      "R1 p 0 1\nR2 n out 1\nR3 tnode 0 1\n");
  const auto& op = static_cast<const Opamp&>(d.netlist.GetElement("O1"));
  EXPECT_TRUE(op.IsConfigurable());
  EXPECT_EQ(op.Mode(), OpampMode::kFollower);
  EXPECT_EQ(op.InTest(), d.netlist.FindNode("tnode"));
}

TEST(Parser, OpampModels) {
  ParsedDeck d = ParseDeck(
      "O1 a b c MODEL=IDEAL\n"
      "O2 a b d GBW=5meg A0=1e5\n"
      "R1 a 0 1\nR2 b c 1\nR3 b d 1\n");
  EXPECT_EQ(static_cast<const Opamp&>(d.netlist.GetElement("O1")).Model().kind,
            OpampModelKind::kIdeal);
  const auto& o2 = static_cast<const Opamp&>(d.netlist.GetElement("O2"));
  EXPECT_EQ(o2.Model().kind, OpampModelKind::kSinglePole);
  EXPECT_DOUBLE_EQ(o2.Model().gbw, 5e6);
}

TEST(Parser, ProbeDifferential) {
  ParsedDeck d = ParseDeck("R1 a b 1k\n.probe v(a,b)\n");
  ASSERT_EQ(d.probes.size(), 1u);
  EXPECT_EQ(d.probes[0].plus, d.netlist.FindNode("a"));
  EXPECT_EQ(d.probes[0].minus, d.netlist.FindNode("b"));
}

TEST(Parser, AcLinCard) {
  ParsedDeck d = ParseDeck("R1 a 0 1\n.ac lin 11 100 200\n");
  ASSERT_TRUE(d.sweep.has_value());
  EXPECT_EQ(d.sweep->PointCount(), 11u);
}

struct BadDeck {
  const char* text;
  std::size_t line;
};

class ParserErrorTest : public ::testing::TestWithParam<BadDeck> {};

TEST_P(ParserErrorTest, ReportsLineNumber) {
  try {
    ParseDeck(GetParam().text);
    FAIL() << "expected ParseError for: " << GetParam().text;
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), GetParam().line) << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    BadDecks, ParserErrorTest,
    ::testing::Values(
        BadDeck{".title t\nR1 a 0\n", 2},             // missing value
        BadDeck{"R1 a 0 xyz\n", 1},                   // bad value
        BadDeck{"+ cont\n", 1},                       // leading continuation
        BadDeck{".title t\nQ1 a b c\n", 2},           // unknown card
        BadDeck{".title t\n.frobnicate\n", 2},        // unknown directive
        BadDeck{".ac oct 5 1 10\nR1 a 0 1\n", 1},     // bad sweep kind
        BadDeck{".probe w(out)\n", 1},                // bad probe
        BadDeck{"V1 a 0 DC\n", 1},                    // DC without value
        BadDeck{"O1 a b\n", 1},                       // opamp short card
        BadDeck{"O1 a b c MODEL=WEIRD\n", 1},         // bad opamp model
        BadDeck{".end\nR1 a 0 1\n", 2}));             // content after .end

TEST(Parser, DuplicateElementIsNetlistError) {
  EXPECT_THROW(ParseDeck("R1 a 0 1\nR1 b 0 2\n"), util::NetlistError);
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(ParseDeckFile("/nonexistent/file.cir"), util::Error);
}

TEST(Writer, DeckRoundTrip) {
  Netlist nl("roundtrip");
  nl.AddVoltageSource("V1", "in", "0", 1.0, 2.0, 45.0);
  nl.AddResistor("R1", "in", "mid", 4.7e3);
  nl.AddCapacitor("C1", "mid", "0", 2.2e-9);
  nl.AddInductor("L1", "mid", "out", 1e-3);
  nl.AddVcvs("E1", "e", "0", "out", "0", 3.0);
  nl.AddCcvs("H1", "h", "0", "V1", 50.0);
  nl.AddResistor("RL1", "e", "0", 1e3);
  nl.AddResistor("RL2", "h", "0", 1e3);
  nl.AddResistor("RL3", "out", "0", 1e3);
  auto& op = static_cast<Opamp&>(nl.AddOpamp("OP1", "out", "e", "oo"));
  op.MakeConfigurable(nl.Node("in"));
  nl.AddResistor("RL4", "oo", "0", 1e3);

  const std::string deck = WriteDeck(nl);
  ParsedDeck re = ParseDeck(deck);
  EXPECT_EQ(re.netlist.Title(), "roundtrip");
  EXPECT_EQ(re.netlist.ElementCount(), nl.ElementCount());
  EXPECT_NEAR(re.netlist.GetElement("R1").Value(), 4.7e3, 1.0);
  EXPECT_NEAR(re.netlist.GetElement("C1").Value(), 2.2e-9, 1e-12);
  const auto& rop = static_cast<const Opamp&>(re.netlist.GetElement("OP1"));
  EXPECT_TRUE(rop.IsConfigurable());
  EXPECT_EQ(re.netlist.NodeName(rop.InTest()), "in");
  const auto& rv = static_cast<const VoltageSource&>(re.netlist.GetElement("V1"));
  EXPECT_DOUBLE_EQ(rv.AcPhaseDeg(), 45.0);
}

TEST(Writer, RoundTripPreservesAcBehaviour) {
  Netlist nl("rc");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  ParsedDeck re = ParseDeck(WriteDeck(nl));
  auto s1 = MnaSystem(nl).SolveAcHz(159.0);
  auto s2 = MnaSystem(re.netlist).SolveAcHz(159.0);
  EXPECT_NEAR(std::abs(s1.VoltageAt(nl.FindNode("out")) -
                       s2.VoltageAt(re.netlist.FindNode("out"))),
              0.0, 1e-9);
}

TEST(Writer, CardContainsNameNodesParams) {
  Netlist nl;
  nl.AddResistor("R1", "a", "b", 1e3);
  const std::string card = WriteCard(nl, nl.GetElement("R1"));
  EXPECT_EQ(card, "R1 a b 1k");
}

}  // namespace
}  // namespace mcdft::spice
