#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mcdft::util::metrics {
namespace {

TEST(Metrics, CounterAccumulatesWhenEnabled) {
  ScopedEnable on;
  Counter& c = GetCounter("test.metrics.counter_basic");
  c.Reset();
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(Metrics, DisabledUpdatesAreDropped) {
  ScopedEnable off(false);
  Counter& c = GetCounter("test.metrics.counter_disabled");
  c.Reset();
  c.Add(1000);
  EXPECT_EQ(c.Value(), 0u);

  Gauge& g = GetGauge("test.metrics.gauge_disabled");
  g.Reset();
  g.Set(7);
  EXPECT_EQ(g.Value(), 0);

  Histogram& h = GetHistogram("test.metrics.hist_disabled");
  h.Reset();
  h.Observe(123);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(Metrics, ScopedEnableRestoresPreviousState) {
  const bool before = Enabled();
  {
    ScopedEnable on(true);
    EXPECT_TRUE(Enabled());
    {
      ScopedEnable off(false);
      EXPECT_FALSE(Enabled());
    }
    EXPECT_TRUE(Enabled());
  }
  EXPECT_EQ(Enabled(), before);
}

TEST(Metrics, HandlesAreStableAcrossLookups) {
  Counter& a = GetCounter("test.metrics.stable");
  Counter& b = GetCounter("test.metrics.stable");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, GaugeTracksValueAndMax) {
  ScopedEnable on;
  Gauge& g = GetGauge("test.metrics.gauge");
  g.Reset();
  g.Set(5);
  g.Set(9);
  g.Set(3);
  EXPECT_EQ(g.Value(), 3);
  EXPECT_EQ(g.Max(), 9);
}

TEST(Metrics, HistogramBucketsMinMaxSum) {
  ScopedEnable on;
  Histogram& h = GetHistogram("test.metrics.hist");
  h.Reset();
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);     // bucket 1: [2, 4)
  h.Observe(1023);  // bucket 9: [512, 1024)
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 1026u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 1023u);
  const auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(buckets[0], 2u);  // 0 and 1
  EXPECT_EQ(buckets[1], 1u);  // 2
  EXPECT_EQ(buckets[9], 1u);  // 1023
}

TEST(Metrics, CounterIsExactUnderContention) {
  ScopedEnable on;
  Counter& c = GetCounter("test.metrics.contended");
  c.Reset();
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(Metrics, SnapshotDeltaSubtractsCounters) {
  ScopedEnable on;
  Counter& c = GetCounter("test.metrics.delta");
  c.Reset();
  c.Add(10);
  const Snapshot before = Capture();
  c.Add(32);
  const Snapshot after = Capture();
  const Snapshot delta = Delta(before, after);
  EXPECT_EQ(delta.CounterValue("test.metrics.delta"), 32u);
  EXPECT_EQ(before.CounterValue("test.metrics.delta"), 10u);
  // Absent names read as zero.
  EXPECT_EQ(delta.CounterValue("test.metrics.no_such_counter"), 0u);
}

TEST(Metrics, SnapshotDeltaKeepsGaugeAfterValue) {
  ScopedEnable on;
  Gauge& g = GetGauge("test.metrics.delta_gauge");
  g.Reset();
  g.Set(4);
  const Snapshot before = Capture();
  g.Set(11);
  const Snapshot delta = Delta(before, Capture());
  bool found = false;
  for (const auto& s : delta.gauges) {
    if (s.name == "test.metrics.delta_gauge") {
      found = true;
      EXPECT_EQ(s.value, 11);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Metrics, SnapshotDeltaSubtractsHistogramCounts) {
  ScopedEnable on;
  Histogram& h = GetHistogram("test.metrics.delta_hist");
  h.Reset();
  h.Observe(100);
  const Snapshot before = Capture();
  h.Observe(200);
  h.Observe(300);
  const auto sample = Delta(before, Capture()).HistogramOf("test.metrics.delta_hist");
  EXPECT_EQ(sample.count, 2u);
  EXPECT_EQ(sample.sum, 500u);
}

TEST(Metrics, ResetAllZeroesButKeepsHandles) {
  ScopedEnable on;
  Counter& c = GetCounter("test.metrics.resetall");
  c.Add(5);
  ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  c.Add(2);  // handle still valid
  EXPECT_EQ(c.Value(), 2u);
}

}  // namespace
}  // namespace mcdft::util::metrics
