#include "spice/ac_analysis.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "circuits/biquad.hpp"
#include "faults/injector.hpp"

namespace mcdft::spice {
namespace {

/// Max |cached - scratch| over a sweep, scaled by the scratch magnitude.
void ExpectSweepMatchesScratch(const Netlist& nl, const SweepSpec& sweep,
                               const Probe& probe) {
  AcAnalyzer cached(nl);  // cache_factorization defaults on
  const FrequencyResponse r = cached.Run(sweep, probe);
  MnaOptions scratch_options;
  scratch_options.cache_factorization = false;
  const MnaSystem scratch(nl, scratch_options);
  for (std::size_t i = 0; i < sweep.PointCount(); ++i) {
    const Complex ref = scratch.SolveAcHz(sweep.Frequencies()[i])
                            .VoltageBetween(probe.plus, probe.minus);
    EXPECT_NEAR(std::abs(r.values[i] - ref), 0.0,
                1e-12 * (1.0 + std::abs(ref)))
        << "point " << i << " at " << sweep.Frequencies()[i] << " Hz";
  }
  // Whole-sweep reuse: one full factorization, the rest numeric refactors.
  EXPECT_EQ(cached.FullFactorCount(), 1u);
  EXPECT_EQ(cached.RefactorCount(), sweep.PointCount() - 1);
}

Netlist RcLowPass() {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddCapacitor("C1", "out", "0", 1e-6);
  return nl;
}

TEST(SweepSpec, DecadeGridEndpointsAndMonotonicity) {
  auto s = SweepSpec::Decade(10.0, 1e4, 10);
  EXPECT_DOUBLE_EQ(s.FStart(), 10.0);
  EXPECT_DOUBLE_EQ(s.FStop(), 1e4);
  EXPECT_EQ(s.PointCount(), 31u);  // 3 decades * 10 + 1
  for (std::size_t i = 1; i < s.PointCount(); ++i) {
    EXPECT_GT(s.Frequencies()[i], s.Frequencies()[i - 1]);
  }
}

TEST(SweepSpec, DecadeGridIsLogUniform) {
  auto s = SweepSpec::Decade(1.0, 1e3, 5);
  const auto& f = s.Frequencies();
  const double ratio = f[1] / f[0];
  for (std::size_t i = 2; i < f.size(); ++i) {
    EXPECT_NEAR(f[i] / f[i - 1], ratio, ratio * 1e-9);
  }
}

TEST(SweepSpec, LinearGrid) {
  auto s = SweepSpec::Linear(100.0, 200.0, 5);
  ASSERT_EQ(s.PointCount(), 5u);
  EXPECT_DOUBLE_EQ(s.Frequencies()[1], 125.0);
  EXPECT_DOUBLE_EQ(s.Frequencies()[4], 200.0);
}

TEST(SweepSpec, ListGrid) {
  auto s = SweepSpec::List({1.0, 10.0, 100.0});
  EXPECT_EQ(s.PointCount(), 3u);
}

TEST(SweepSpec, RejectsBadSpecs) {
  EXPECT_THROW(SweepSpec::Decade(0.0, 1e3, 10), util::AnalysisError);
  EXPECT_THROW(SweepSpec::Decade(1e3, 1e2, 10), util::AnalysisError);
  EXPECT_THROW(SweepSpec::Decade(1.0, 1e3, 0), util::AnalysisError);
  EXPECT_THROW(SweepSpec::Linear(1.0, 2.0, 1), util::AnalysisError);
  EXPECT_THROW(SweepSpec::List({}), util::AnalysisError);
  EXPECT_THROW(SweepSpec::List({10.0, 5.0}), util::AnalysisError);
  EXPECT_THROW(SweepSpec::List({-1.0, 5.0}), util::AnalysisError);
}

TEST(AcAnalyzer, RcLowPassMagnitudeAndPhase) {
  Netlist nl = RcLowPass();
  AcAnalyzer analyzer(nl);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e-3);
  Probe probe{nl.FindNode("out"), kGround, "v(out)"};
  auto r = analyzer.Run(SweepSpec::List({fc / 100.0, fc, fc * 100.0}), probe);
  ASSERT_EQ(r.PointCount(), 3u);
  EXPECT_NEAR(r.MagnitudeAt(0), 1.0, 1e-3);
  EXPECT_NEAR(r.MagnitudeAt(1), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(r.MagnitudeAt(2), 0.01, 1e-4);
  EXPECT_NEAR(r.PhaseDegAt(1), -45.0, 1e-3);
  EXPECT_NEAR(r.MagnitudeDbAt(1), -3.0103, 1e-3);
}

TEST(AcAnalyzer, MultiProbeSharesSolves) {
  Netlist nl = RcLowPass();
  AcAnalyzer analyzer(nl);
  Probe pout{nl.FindNode("out"), kGround, "v(out)"};
  Probe pin{nl.FindNode("in"), kGround, "v(in)"};
  Probe pdiff{nl.FindNode("in"), nl.FindNode("out"), "v(in,out)"};
  auto rs = analyzer.RunMulti(SweepSpec::Decade(10, 1e5, 5), {pout, pin, pdiff});
  ASSERT_EQ(rs.size(), 3u);
  for (std::size_t i = 0; i < rs[0].PointCount(); ++i) {
    // v(in) - v(out) == v(in,out)
    EXPECT_NEAR(std::abs((rs[1].values[i] - rs[0].values[i]) - rs[2].values[i]),
                0.0, 1e-12);
    EXPECT_NEAR(std::abs(rs[1].values[i]), 1.0, 1e-12);  // ideal source
  }
}

TEST(AcAnalyzer, NoProbesThrows) {
  Netlist nl = RcLowPass();
  AcAnalyzer analyzer(nl);
  EXPECT_THROW(analyzer.RunMulti(SweepSpec::Decade(10, 100, 5), {}),
               util::AnalysisError);
}

TEST(SolverReuse, CachedSweepMatchesScratchOnBiquad) {
  const auto block = circuits::BuildBiquad();
  const Netlist& nl = block.netlist;
  Probe probe{nl.FindNode(block.output_node), kGround, "v(out)"};
  ExpectSweepMatchesScratch(nl, SweepSpec::Decade(10.0, 1e5, 12), probe);
}

TEST(SolverReuse, CachedSweepMatchesScratchWithBranchUnknowns) {
  // VCVS and opamp add branch-current unknowns, exercising the cached
  // pattern on the bordered (node + branch) MNA structure.
  Netlist nl("amp");
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "a", 1e3);
  nl.AddCapacitor("C1", "a", "0", 1e-7);
  nl.AddVcvs("E1", "b", "0", "a", "0", 10.0);
  nl.AddResistor("R2", "b", "c", 2e3);
  nl.AddOpamp("OP1", "0", "c", "out");
  nl.AddResistor("RF", "c", "out", 5e3);
  Probe probe{nl.FindNode("out"), kGround, "v(out)"};
  ExpectSweepMatchesScratch(nl, SweepSpec::Decade(10.0, 1e5, 12), probe);
}

TEST(SolverReuse, SurvivesFaultInjectionValueMutation) {
  // One analyzer across nominal -> faulted -> restored sweeps must match a
  // fresh analyzer run on each netlist state: the cache keys nothing on
  // element values, and each sweep re-derives its pivot ordering.
  const auto block = circuits::BuildBiquad();
  Netlist nl = block.netlist.Clone();
  const auto sweep = SweepSpec::Decade(10.0, 1e5, 10);
  Probe probe{nl.FindNode(block.output_node), kGround, "v(out)"};

  AcAnalyzer reused(nl);
  const FrequencyResponse nominal_first = reused.Run(sweep, probe);
  FrequencyResponse faulted_reused;
  {
    faults::ScopedFaultInjection injection(
        nl, faults::Fault("R1", faults::FaultKind::kDeviationUp, 0.2));
    faulted_reused = reused.Run(sweep, probe);
    // Fresh analyzer on the currently-faulted netlist: bit-identical.
    AcAnalyzer fresh(nl);
    const FrequencyResponse faulted_fresh = fresh.Run(sweep, probe);
    for (std::size_t i = 0; i < sweep.PointCount(); ++i) {
      EXPECT_EQ(faulted_reused.values[i], faulted_fresh.values[i]);
    }
    // And matches the non-cached scratch solver to 1e-12.
    MnaOptions scratch_options;
    scratch_options.cache_factorization = false;
    const MnaSystem scratch(nl, scratch_options);
    for (std::size_t i = 0; i < sweep.PointCount(); ++i) {
      const Complex ref = scratch.SolveAcHz(sweep.Frequencies()[i])
                              .VoltageBetween(probe.plus, probe.minus);
      EXPECT_NEAR(std::abs(faulted_reused.values[i] - ref), 0.0,
                  1e-12 * (1.0 + std::abs(ref)));
    }
  }
  // The fault actually moved the response.
  bool moved = false;
  for (std::size_t i = 0; i < sweep.PointCount(); ++i) {
    if (faulted_reused.values[i] != nominal_first.values[i]) moved = true;
  }
  EXPECT_TRUE(moved);
  // After restoration the reused analyzer reproduces the first sweep bit
  // for bit.
  const FrequencyResponse nominal_again = reused.Run(sweep, probe);
  for (std::size_t i = 0; i < sweep.PointCount(); ++i) {
    EXPECT_EQ(nominal_again.values[i], nominal_first.values[i]);
  }
}

TEST(FrequencyResponse, PeakIndexFindsResonance) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "a", 10.0);
  nl.AddInductor("L1", "a", "out", 1e-3);
  nl.AddCapacitor("C1", "out", "0", 1e-9);
  // Band-pass voltage across C near f0 ~ 159 kHz.
  AcAnalyzer analyzer(nl);
  Probe probe{nl.FindNode("out"), kGround, "v(out)"};
  auto r = analyzer.Run(SweepSpec::Decade(1e3, 1e7, 20), probe);
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-9));
  const double fpeak = r.freqs_hz[r.PeakIndex()];
  EXPECT_NEAR(std::log10(fpeak), std::log10(f0), 0.06);
}

TEST(FrequencyResponse, ConsistencyCheck) {
  FrequencyResponse r;
  r.freqs_hz = {1.0, 2.0};
  r.values = {Complex(1, 0)};
  EXPECT_THROW(r.CheckConsistent(), util::AnalysisError);
}

TEST(FrequencyResponse, MagnitudeDbOfZeroClamps) {
  FrequencyResponse r;
  r.freqs_hz = {1.0};
  r.values = {Complex(0, 0)};
  EXPECT_DOUBLE_EQ(r.MagnitudeDbAt(0), -400.0);
}

TEST(RelativeDeviation, PointwiseOnMatchingGrids) {
  FrequencyResponse ref, faulty;
  ref.freqs_hz = {1.0, 10.0};
  ref.values = {Complex(1.0, 0.0), Complex(0.5, 0.0)};
  faulty.freqs_hz = ref.freqs_hz;
  faulty.values = {Complex(1.1, 0.0), Complex(0.5, 0.0)};
  auto dev = RelativeDeviation(faulty, ref, 1e-9);
  ASSERT_EQ(dev.size(), 2u);
  EXPECT_NEAR(dev[0], 0.1, 1e-12);
  EXPECT_NEAR(dev[1], 0.0, 1e-12);
}

TEST(RelativeDeviation, FloorGuardsSmallReference) {
  FrequencyResponse ref, faulty;
  ref.freqs_hz = {1.0, 10.0};
  ref.values = {Complex(1.0, 0.0), Complex(1e-6, 0.0)};  // deep stopband
  faulty.freqs_hz = ref.freqs_hz;
  faulty.values = {Complex(1.0, 0.0), Complex(2e-6, 0.0)};
  // Pointwise reading: 100% deviation at the stopband point.
  auto raw = RelativeDeviation(faulty, ref, 1e-12);
  EXPECT_NEAR(raw[1], 1.0, 1e-9);
  // With a 25%-of-peak floor the same deviation is negligible.
  auto floored = RelativeDeviation(faulty, ref, 0.25);
  EXPECT_NEAR(floored[1], 1e-6 / 0.25, 1e-9);
}

TEST(RelativeDeviation, GridMismatchThrows) {
  FrequencyResponse ref, faulty;
  ref.freqs_hz = {1.0};
  ref.values = {Complex(1, 0)};
  faulty.freqs_hz = {2.0};
  faulty.values = {Complex(1, 0)};
  EXPECT_THROW(RelativeDeviation(faulty, ref), util::AnalysisError);
}

}  // namespace
}  // namespace mcdft::spice
