#include "core/bist.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace mcdft::core {
namespace {

ConfigVector CV(const std::string& bits) { return ConfigVector::FromBits(bits); }

TEST(ToggleCountTest, HammingDistance) {
  EXPECT_EQ(ToggleCount(CV("000"), CV("000")), 0u);
  EXPECT_EQ(ToggleCount(CV("000"), CV("111")), 3u);
  EXPECT_EQ(ToggleCount(CV("101"), CV("011")), 2u);
  EXPECT_THROW(ToggleCount(CV("10"), CV("100")), util::OptimizationError);
}

TEST(BistSchedule, GrayOrderBeatsIndexOrder) {
  // All 8 configurations of 3 bits: a Gray-code walk needs 7 toggles
  // (+0 from the C_0 start); the index order needs more.
  std::vector<ConfigVector> all;
  for (std::size_t i = 0; i < 8; ++i) all.push_back(ConfigVector::FromIndex(i, 3));
  auto schedule = ScheduleConfigurations(all);
  EXPECT_EQ(schedule.order.size(), 8u);
  EXPECT_EQ(schedule.toggles, 7u);            // perfect Gray sequence
  EXPECT_GT(schedule.naive_toggles, 7u);      // 000,001,010,... costs 11
  // Every consecutive pair differs in exactly one bit.
  EXPECT_TRUE(schedule.order.front().IsFunctional());
  for (std::size_t i = 1; i < schedule.order.size(); ++i) {
    EXPECT_EQ(ToggleCount(schedule.order[i - 1], schedule.order[i]), 1u);
  }
}

TEST(BistSchedule, SingleConfiguration) {
  auto schedule = ScheduleConfigurations({CV("101")});
  EXPECT_EQ(schedule.order.size(), 1u);
  EXPECT_EQ(schedule.toggles, 2u);  // from power-on 000 to 101
}

TEST(BistSchedule, PaperOptimizedSetOrdering) {
  // The paper's S_opt = {C2, C5} over 3 bits: from 000 the cheaper first
  // hop is C2 (010, 1 toggle), then C5 (101, 3 toggles): 4 total, versus
  // naive C2 then C5 (same here) — and the solver must not do worse.
  auto schedule = ScheduleConfigurations({CV("010"), CV("101")});
  EXPECT_LE(schedule.toggles, schedule.naive_toggles);
  EXPECT_EQ(schedule.toggles, 4u);
  EXPECT_EQ(schedule.order.front().BitString(), "010");
}

TEST(BistSchedule, EmptySetThrows) {
  EXPECT_THROW(ScheduleConfigurations({}), util::OptimizationError);
}

TEST(BistSchedule, MixedWidthThrows) {
  EXPECT_THROW(ScheduleConfigurations({CV("10"), CV("100")}),
               util::OptimizationError);
}

class BistPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BistPropertyTest, ExactNeverWorseThanNaiveOrHeuristic) {
  std::mt19937_64 rng(GetParam());
  const std::size_t width = 4 + rng() % 3;
  const std::size_t count = 3 + rng() % 5;  // within the exact limit
  std::vector<ConfigVector> configs;
  std::set<std::size_t> seen;
  while (configs.size() < count) {
    const std::size_t idx = rng() % (std::size_t{1} << width);
    if (seen.insert(idx).second) {
      configs.push_back(ConfigVector::FromIndex(idx, width));
    }
  }
  auto exact = ScheduleConfigurations(configs);
  EXPECT_LE(exact.toggles, exact.naive_toggles);

  BistOptions heuristic_only;
  heuristic_only.exact_limit = 0;
  auto heur = ScheduleConfigurations(configs, heuristic_only);
  EXPECT_LE(exact.toggles, heur.toggles);
  // Both visit every configuration exactly once.
  EXPECT_EQ(exact.order.size(), configs.size());
  EXPECT_EQ(heur.order.size(), configs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BistPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(BistSchedule, HeuristicHandlesLargerSets) {
  std::vector<ConfigVector> configs;
  for (std::size_t i = 1; i < 30; ++i) {
    configs.push_back(ConfigVector::FromIndex(i, 5));
  }
  auto schedule = ScheduleConfigurations(configs);  // > exact_limit
  EXPECT_EQ(schedule.order.size(), 29u);
  EXPECT_LE(schedule.toggles, schedule.naive_toggles);
}

}  // namespace
}  // namespace mcdft::core
