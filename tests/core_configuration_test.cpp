#include "core/configuration.hpp"

#include <gtest/gtest.h>

namespace mcdft::core {
namespace {

TEST(ConfigVector, IndexBitStringRoundTrip) {
  // The paper's convention: C5 over 3 opamps is (1 0 1).
  ConfigVector c5 = ConfigVector::FromIndex(5, 3);
  EXPECT_EQ(c5.BitString(), "101");
  EXPECT_EQ(c5.Index(), 5u);
  EXPECT_EQ(c5.Name(), "C5");
  EXPECT_TRUE(c5.SelectionOf(0));
  EXPECT_FALSE(c5.SelectionOf(1));
  EXPECT_TRUE(c5.SelectionOf(2));
}

TEST(ConfigVector, AllIndicesRoundTrip) {
  for (std::size_t n = 1; n <= 6; ++n) {
    for (std::size_t i = 0; i < (std::size_t{1} << n); ++i) {
      EXPECT_EQ(ConfigVector::FromIndex(i, n).Index(), i);
    }
  }
}

TEST(ConfigVector, FromBits) {
  ConfigVector cv = ConfigVector::FromBits("0110");
  EXPECT_EQ(cv.Index(), 6u);
  EXPECT_EQ(cv.BitCount(), 4u);
  EXPECT_THROW(ConfigVector::FromBits(""), util::OptimizationError);
  EXPECT_THROW(ConfigVector::FromBits("01x"), util::OptimizationError);
}

TEST(ConfigVector, OutOfRangeThrows) {
  EXPECT_THROW(ConfigVector::FromIndex(8, 3), util::OptimizationError);
  EXPECT_THROW(ConfigVector(0), util::OptimizationError);
  ConfigVector cv(3);
  EXPECT_THROW(cv.SelectionOf(3), util::OptimizationError);
  EXPECT_THROW(cv.SetSelection(3, true), util::OptimizationError);
}

TEST(ConfigVector, FunctionalAndTransparent) {
  EXPECT_TRUE(ConfigVector::FromIndex(0, 3).IsFunctional());
  EXPECT_FALSE(ConfigVector::FromIndex(0, 3).IsTransparent());
  EXPECT_TRUE(ConfigVector::FromIndex(7, 3).IsTransparent());
  EXPECT_FALSE(ConfigVector::FromIndex(7, 3).IsFunctional());
  EXPECT_FALSE(ConfigVector::FromIndex(5, 3).IsFunctional());
}

TEST(ConfigVector, FollowerPositions) {
  ConfigVector c6 = ConfigVector::FromIndex(6, 3);  // 110
  EXPECT_EQ(c6.FollowerPositions(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(c6.FollowerCount(), 2u);
}

TEST(ConfigVector, SetSelection) {
  ConfigVector cv(3);
  cv.SetSelection(1, true);
  EXPECT_EQ(cv.Index(), 2u);
  cv.SetSelection(1, false);
  EXPECT_EQ(cv.Index(), 0u);
}

TEST(ConfigurationSpace, CountAndEnumeration) {
  ConfigurationSpace space({"OP1", "OP2", "OP3"});
  EXPECT_EQ(space.OpampCount(), 3u);
  EXPECT_EQ(space.ConfigurationCount(), 8u);
  auto all = space.All();
  ASSERT_EQ(all.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(all[i].Index(), i);
}

TEST(ConfigurationSpace, NonTransparentDropsAllOnes) {
  ConfigurationSpace space({"OP1", "OP2", "OP3"});
  auto configs = space.AllNonTransparent();
  EXPECT_EQ(configs.size(), 7u);
  for (const auto& cv : configs) EXPECT_FALSE(cv.IsTransparent());
}

TEST(ConfigurationSpace, FollowerOpampsMatchesPaperTable3) {
  // The paper's Table 3 maps each configuration to the opamps its vector
  // puts in follower mode (C5 = (101) -> OP1.OP3).  The paper mixes bit
  // orders between its own tables; we use MSB-first (sel1 = MSB)
  // consistently: C4 = (100) -> OP1, C1 = (001) -> OP3.
  ConfigurationSpace space({"OP1", "OP2", "OP3"});
  EXPECT_TRUE(space.FollowerOpamps(space.At(0)).empty());
  EXPECT_EQ(space.FollowerOpamps(space.At(4)),
            (std::vector<std::string>{"OP1"}));
  EXPECT_EQ(space.FollowerOpamps(space.At(1)),
            (std::vector<std::string>{"OP3"}));
  EXPECT_EQ(space.FollowerOpamps(space.At(5)),
            (std::vector<std::string>{"OP1", "OP3"}));
  EXPECT_EQ(space.FollowerOpamps(space.At(7)),
            (std::vector<std::string>{"OP1", "OP2", "OP3"}));
}

TEST(ConfigurationSpace, FollowerOpampsChecksUniverse) {
  ConfigurationSpace space({"OP1", "OP2"});
  EXPECT_THROW(space.FollowerOpamps(ConfigVector::FromIndex(1, 3)),
               util::OptimizationError);
}

TEST(ConfigurationSpace, UpToKFollowers) {
  ConfigurationSpace space({"A", "B", "C", "D"});
  EXPECT_EQ(space.UpToKFollowers(0).size(), 1u);                // C0
  EXPECT_EQ(space.UpToKFollowers(1).size(), 5u);                // C0 + 4
  EXPECT_EQ(space.UpToKFollowers(2).size(), 11u);               // + C(4,2)=6
  EXPECT_EQ(space.UpToKFollowers(4).size(), 16u);               // everything
}

TEST(ConfigurationSpace, RejectsDegenerateSizes) {
  EXPECT_THROW(ConfigurationSpace({}), util::OptimizationError);
  std::vector<std::string> too_many(21, "OP");
  EXPECT_THROW(ConfigurationSpace{too_many}, util::OptimizationError);
}

}  // namespace
}  // namespace mcdft::core
