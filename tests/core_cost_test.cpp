#include "core/cost_functions.hpp"

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

class CostFunctionTest : public ::testing::Test {
 protected:
  CostFunctionTest()
      : campaign_(testdata::PaperCampaign()), circuit_(testdata::PaperCircuit()) {}

  CampaignResult campaign_;
  DftCircuit circuit_;
};

TEST_F(CostFunctionTest, ConfigCountCostIsLiteralCount) {
  ConfigCountCost cost;
  EXPECT_DOUBLE_EQ(cost.Cost(boolcov::Cube(7, {1, 2}), campaign_, circuit_),
                   2.0);
  EXPECT_DOUBLE_EQ(cost.Cost(boolcov::Cube(7), campaign_, circuit_), 0.0);
  EXPECT_EQ(cost.Name(), "configuration count");
}

TEST_F(CostFunctionTest, RequiredOpampsUnionsFollowerSets) {
  // {C1 (001), C2 (010)} -> followers at positions 2 and 1.
  auto opamps = RequiredOpamps(boolcov::Cube(7, {1, 2}), campaign_, circuit_);
  EXPECT_EQ(opamps.Variables(), (std::vector<std::size_t>{1, 2}));
  // {C2 (010), C5 (101)} -> all three positions.
  auto all = RequiredOpamps(boolcov::Cube(7, {2, 5}), campaign_, circuit_);
  EXPECT_EQ(all.LiteralCount(), 3u);
  // C0 alone needs no configurable opamp at all.
  EXPECT_TRUE(RequiredOpamps(boolcov::Cube(7, {0}), campaign_, circuit_)
                  .Empty());
}

TEST_F(CostFunctionTest, RequiredOpampsRowOutOfRangeThrows) {
  boolcov::Cube rows(9, {8});
  EXPECT_THROW(RequiredOpamps(rows, campaign_, circuit_),
               util::OptimizationError);
}

TEST_F(CostFunctionTest, OpampCountCost) {
  OpampCountCost cost;
  EXPECT_DOUBLE_EQ(cost.Cost(boolcov::Cube(7, {1, 2}), campaign_, circuit_),
                   2.0);
  EXPECT_DOUBLE_EQ(cost.Cost(boolcov::Cube(7, {2, 5}), campaign_, circuit_),
                   3.0);
}

TEST_F(CostFunctionTest, TestTimeCostScalesWithConfigsAndPoints) {
  TestTimeCost cost(0.01, 2.0);
  const double points =
      static_cast<double>(campaign_.Band().MakeSweep().PointCount());
  EXPECT_DOUBLE_EQ(
      cost.Cost(boolcov::Cube(7, {2, 5}), campaign_, circuit_),
      2.0 * (2.0 + points * 0.01));
  EXPECT_THROW(TestTimeCost(0.0, 1.0), util::OptimizationError);
  EXPECT_THROW(TestTimeCost(0.1, -1.0), util::OptimizationError);
}

TEST_F(CostFunctionTest, SiliconAreaCost) {
  SiliconAreaCost cost(100.0, 10.0);
  EXPECT_DOUBLE_EQ(cost.Cost(boolcov::Cube(7, {1, 2}), campaign_, circuit_),
                   2.0 * 110.0);
  EXPECT_THROW(SiliconAreaCost(-1.0, 0.0), util::OptimizationError);
}

TEST_F(CostFunctionTest, CompositeCostWeightsComponents) {
  CompositeCost composite;
  composite.Add(std::make_shared<ConfigCountCost>(), 1.0);
  composite.Add(std::make_shared<OpampCountCost>(), 10.0);
  // {C2,C5}: 2 configs + 3 opamps -> 2 + 30 = 32.
  EXPECT_DOUBLE_EQ(
      composite.Cost(boolcov::Cube(7, {2, 5}), campaign_, circuit_), 32.0);
  EXPECT_NE(composite.Name().find("configuration count"), std::string::npos);
  EXPECT_THROW(composite.Add(nullptr, 1.0), util::OptimizationError);
}

TEST_F(CostFunctionTest, CompositeChangesOptimizerChoice) {
  // With opamp count weighted heavily, {C1,C2} (2 opamps) must beat
  // {C2,C5} (3 opamps) even though both have 2 configurations.
  DftOptimizer optimizer(circuit_, campaign_);
  CompositeCost composite;
  composite.Add(std::make_shared<ConfigCountCost>(), 1.0);
  composite.Add(std::make_shared<OpampCountCost>(), 100.0);
  auto sel = optimizer.Optimize(composite);
  EXPECT_EQ(sel.selected.rows, boolcov::Cube(7, {1, 2}));
}

}  // namespace
}  // namespace mcdft::core
