#include "linalg/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"
#include "linalg/lu.hpp"

namespace mcdft::linalg {
namespace {

/// Random sparse diagonally-dominant system.
TripletMatrix RandomSparse(std::size_t n, double density, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TripletMatrix t(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) {
        t.Add(r, c, Complex(3.0 + u(rng), u(rng)));
      } else if (coin(rng) < density) {
        t.Add(r, c, Complex(u(rng), u(rng)) * 0.3);
      }
    }
  }
  return t;
}

TEST(SparseLu, SolvesDiagonalSystem) {
  TripletMatrix t(3, 3);
  t.Add(0, 0, Complex(2, 0));
  t.Add(1, 1, Complex(4, 0));
  t.Add(2, 2, Complex(0, 2));
  Vector b(3);
  b[0] = Complex(2, 0);
  b[1] = Complex(8, 0);
  b[2] = Complex(0, 4);
  Vector x = SolveSparse(CsrMatrix(t), b);
  EXPECT_NEAR(std::abs(x[0] - Complex(1, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(x[1] - Complex(2, 0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(x[2] - Complex(2, 0)), 0.0, 1e-14);
}

TEST(SparseLu, RequiresSquare) {
  TripletMatrix t(2, 3);
  EXPECT_THROW(SparseLu{CsrMatrix(t)}, util::NumericError);
}

TEST(SparseLu, SingularThrowsCategorizedError) {
  TripletMatrix t(2, 2);
  t.Add(0, 0, Complex(1, 0));
  t.Add(0, 1, Complex(1, 0));
  t.Add(1, 0, Complex(1, 0));
  t.Add(1, 1, Complex(1, 0));
  try {
    SparseLu lu{CsrMatrix(t)};
    FAIL() << "singular factorization did not throw";
  } catch (const core::McdftError& e) {
    EXPECT_EQ(e.Category(), core::ErrorCategory::kSingularSystem);
  }
}

TEST(SparseLu, StructurallySingularThrows) {
  TripletMatrix t(2, 2);
  t.Add(0, 0, Complex(1, 0));  // row/col 1 empty
  EXPECT_THROW(SparseLu{CsrMatrix(t)}, core::McdftError);
}

TEST(SparseLu, PermutedIdentity) {
  TripletMatrix t(3, 3);
  t.Add(0, 2, Complex(1, 0));
  t.Add(1, 0, Complex(1, 0));
  t.Add(2, 1, Complex(1, 0));
  Vector b(3);
  b[0] = Complex(10, 0);
  b[1] = Complex(20, 0);
  b[2] = Complex(30, 0);
  Vector x = SolveSparse(CsrMatrix(t), b);
  EXPECT_NEAR(x[2].real(), 10.0, 1e-14);
  EXPECT_NEAR(x[0].real(), 20.0, 1e-14);
  EXPECT_NEAR(x[1].real(), 30.0, 1e-14);
}

TEST(SparseLu, SolveDimensionMismatchThrows) {
  TripletMatrix t(2, 2);
  t.Add(0, 0, Complex(1, 0));
  t.Add(1, 1, Complex(1, 0));
  SparseLu lu{CsrMatrix(t)};
  Vector b(3);
  EXPECT_THROW(lu.Solve(b), util::NumericError);
}

TEST(SparseLu, FactorNonZeroCountAtLeastMatrixNnz) {
  std::mt19937_64 rng(3);
  TripletMatrix t = RandomSparse(20, 0.15, rng);
  CsrMatrix csr(t);
  SparseLu lu(csr);
  EXPECT_GE(lu.FactorNonZeroCount(), 20u);  // at least the diagonal
}

struct SparseCase {
  std::size_t n;
  double density;
};

class SparseLuPropertyTest : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseLuPropertyTest, MatchesDenseSolver) {
  std::mt19937_64 rng(500 + GetParam().n);
  for (int trial = 0; trial < 3; ++trial) {
    TripletMatrix t = RandomSparse(GetParam().n, GetParam().density, rng);
    CsrMatrix csr(t);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    Vector b(GetParam().n);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = Complex(u(rng), u(rng));
    Vector xs = SolveSparse(csr, b);
    Vector xd = SolveDense(t.ToDense(), b);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(std::abs(xs[i] - xd[i]), 0.0, 1e-9)
          << "n=" << GetParam().n << " i=" << i;
    }
  }
}

TEST_P(SparseLuPropertyTest, ResidualSmall) {
  std::mt19937_64 rng(900 + GetParam().n);
  TripletMatrix t = RandomSparse(GetParam().n, GetParam().density, rng);
  CsrMatrix csr(t);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector b(GetParam().n);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = Complex(u(rng), u(rng));
  Vector x = SolveSparse(csr, b);
  Vector r = csr.Multiply(x);
  r.Axpy(Complex(-1.0, 0.0), b);
  EXPECT_LT(r.Norm2() / (b.Norm2() + 1e-30), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseLuPropertyTest,
    ::testing::Values(SparseCase{4, 0.5}, SparseCase{10, 0.3},
                      SparseCase{25, 0.15}, SparseCase{50, 0.08},
                      SparseCase{100, 0.04}, SparseCase{64, 1.0}));

TEST(SparseLu, PivotThresholdOneIsPartialPivoting) {
  std::mt19937_64 rng(42);
  TripletMatrix t = RandomSparse(30, 0.2, rng);
  CsrMatrix csr(t);
  Vector b(30);
  for (std::size_t i = 0; i < 30; ++i) b[i] = Complex(1.0, 0.0);
  SparseLuOptions strict;
  strict.pivot_threshold = 1.0;
  Vector x1 = SolveSparse(csr, b, strict);
  Vector x2 = SolveDense(t.ToDense(), b);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(std::abs(x1[i] - x2[i]), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace mcdft::linalg
