// Unit tests of the Sherman-Morrison-Woodbury low-rank update solver: exact
// agreement with a direct solve of the perturbed system, the rank-0 and
// over-rank edge cases, and the conditioning guard that hands a (nearly)
// singular perturbed system back to the exact path.
#include "linalg/lowrank.hpp"

#include <gtest/gtest.h>

#include <random>

#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace mcdft::linalg {
namespace {

Vector RandomVector(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = Complex(u(rng), u(rng));
  return v;
}

/// Random diagonally dominant sparse system (always factorizable).
TripletMatrix RandomSystem(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  TripletMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a.Add(i, i, Complex(4.0 + u(rng), u(rng)));
    a.Add(i, pick(rng), Complex(u(rng), u(rng)));
    a.Add(pick(rng), i, Complex(u(rng), u(rng)));
  }
  return a;
}

/// Accumulate the delta into a dense matrix, for the reference solve of
/// A + Delta.
void AddDelta(Matrix& m, const LowRankPerturbation& delta) {
  for (const LowRankTerm& term : delta.terms) {
    for (const auto& [i, uv] : term.u) {
      for (const auto& [j, wv] : term.w) {
        m.At(i, j) += uv * wv;
      }
    }
  }
}

double MaxRelativeError(const Vector& x, const Vector& y) {
  double scale = x.NormInf();
  if (scale == 0.0) scale = 1.0;
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - y[i]) / scale);
  }
  return err;
}

TEST(LowRankUpdateSolver, MatchesDirectSolveAcrossRandomRanks) {
  constexpr std::size_t kCases = 50;
  for (std::size_t seed = 0; seed < kCases; ++seed) {
    std::mt19937_64 rng(0x10A11 ^ seed);
    const std::size_t n = 4 + seed % 13;
    const TripletMatrix a = RandomSystem(rng, n);
    const Vector b = RandomVector(rng, n);
    SparseLu lu{CsrMatrix(a)};
    LowRankUpdateSolver solver;
    solver.Bind(lu, b);

    const std::size_t rank = 1 + seed % LowRankUpdateSolver::kMaxRank;
    LowRankPerturbation delta;
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    for (std::size_t t = 0; t < rank; ++t) {
      LowRankTerm term;
      term.u.emplace_back(pick(rng), Complex(u(rng), u(rng)));
      term.u.emplace_back(pick(rng), Complex(u(rng), u(rng)));
      term.w.emplace_back(pick(rng), Complex(u(rng), u(rng)));
      term.w.emplace_back(pick(rng), Complex(u(rng), u(rng)));
      delta.terms.push_back(std::move(term));
    }

    const std::optional<Vector> fast = solver.Solve(delta);
    ASSERT_TRUE(fast.has_value()) << "seed " << seed;
    Matrix dense = a.ToDense();
    AddDelta(dense, delta);
    const Vector exact = SolveDense(dense, b);
    EXPECT_LT(MaxRelativeError(*fast, exact), 1e-10) << "seed " << seed;
  }
}

TEST(LowRankUpdateSolver, RankZeroReturnsNominalSolution) {
  std::mt19937_64 rng(42);
  const TripletMatrix a = RandomSystem(rng, 6);
  const Vector b = RandomVector(rng, 6);
  SparseLu lu{CsrMatrix(a)};
  LowRankUpdateSolver solver;
  solver.Bind(lu, b);
  const std::optional<Vector> x = solver.Solve(LowRankPerturbation{});
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(MaxRelativeError(*x, solver.NominalSolution()), 1e-15);
}

TEST(LowRankUpdateSolver, RankAboveCapFallsBack) {
  std::mt19937_64 rng(7);
  const TripletMatrix a = RandomSystem(rng, 8);
  const Vector b = RandomVector(rng, 8);
  SparseLu lu{CsrMatrix(a)};
  LowRankUpdateSolver solver;
  solver.Bind(lu, b);
  LowRankPerturbation delta;
  for (std::size_t t = 0; t <= LowRankUpdateSolver::kMaxRank; ++t) {
    LowRankTerm term;
    term.u.emplace_back(t, Complex(1.0, 0.0));
    term.w.emplace_back(t, Complex(1.0, 0.0));
    delta.terms.push_back(std::move(term));
  }
  EXPECT_FALSE(solver.Solve(delta).has_value());
}

TEST(LowRankUpdateSolver, SolveBeforeBindThrows) {
  LowRankUpdateSolver solver;
  EXPECT_THROW(solver.Solve(LowRankPerturbation{}), util::NumericError);
}

TEST(LowRankUpdateSolver, SingularUpdateTakesFallbackAndBumpsCounter) {
  // Crafted near-singular case: A = I, Delta = -e0 e0^T zeroes the first
  // pivot of A + Delta exactly, so the SMW capacitance matrix is
  // C = 1 + w^T A^{-1} u = 0.  The conditioning guard must refuse the
  // update (SMW would divide by ~0) and count a fallback.
  util::metrics::ScopedEnable metrics_on;
  TripletMatrix a(2, 2);
  a.Add(0, 0, Complex(1.0, 0.0));
  a.Add(1, 1, Complex(1.0, 0.0));
  Vector b(2);
  b[0] = Complex(1.0, 0.0);
  b[1] = Complex(2.0, 0.0);
  SparseLu lu{CsrMatrix(a)};
  LowRankUpdateSolver solver;
  solver.Bind(lu, b);

  LowRankPerturbation delta;
  LowRankTerm term;
  term.u.emplace_back(0, Complex(1.0, 0.0));
  term.w.emplace_back(0, Complex(-1.0, 0.0));
  delta.terms.push_back(std::move(term));

  util::metrics::Counter& fallback =
      util::metrics::GetCounter("linalg.smw.fallback");
  const std::uint64_t before = fallback.Value();
  EXPECT_FALSE(solver.Solve(delta).has_value());
  EXPECT_EQ(fallback.Value(), before + 1);
}

}  // namespace
}  // namespace mcdft::linalg
