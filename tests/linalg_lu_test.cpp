#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mcdft::linalg {
namespace {

Matrix RandomMatrix(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix m(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m.At(r, c) = Complex(u(rng), u(rng));
    }
    m.At(r, r) += Complex(2.0 * static_cast<double>(n), 0.0);  // well conditioned
  }
  return m;
}

Vector RandomVector(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = Complex(u(rng), u(rng));
  return v;
}

TEST(DenseLu, Solves2x2RealSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [0.8; 1.4]
  Matrix a(2);
  a.At(0, 0) = Complex(2, 0);
  a.At(0, 1) = Complex(1, 0);
  a.At(1, 0) = Complex(1, 0);
  a.At(1, 1) = Complex(3, 0);
  Vector b(2);
  b[0] = Complex(3, 0);
  b[1] = Complex(5, 0);
  Vector x = SolveDense(a, b);
  EXPECT_NEAR(x[0].real(), 0.8, 1e-12);
  EXPECT_NEAR(x[1].real(), 1.4, 1e-12);
}

TEST(DenseLu, SolvesComplexSystem) {
  // (i) * x = 1  ->  x = -i
  Matrix a(1);
  a.At(0, 0) = Complex(0, 1);
  Vector b(1);
  b[0] = Complex(1, 0);
  Vector x = SolveDense(a, b);
  EXPECT_NEAR(x[0].real(), 0.0, 1e-15);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-15);
}

TEST(DenseLu, RequiresSquareMatrix) {
  Matrix a(2, 3);
  EXPECT_THROW(LuFactorization{a}, util::NumericError);
}

TEST(DenseLu, SingularMatrixThrows) {
  Matrix a(2);
  a.At(0, 0) = Complex(1, 0);
  a.At(0, 1) = Complex(2, 0);
  a.At(1, 0) = Complex(2, 0);
  a.At(1, 1) = Complex(4, 0);  // rank 1
  EXPECT_THROW(LuFactorization{a}, util::NumericError);
}

TEST(DenseLu, ZeroPivotHandledByRowExchange) {
  // a11 = 0 forces a pivot swap; the system is still regular.
  Matrix a(2);
  a.At(0, 0) = Complex(0, 0);
  a.At(0, 1) = Complex(1, 0);
  a.At(1, 0) = Complex(1, 0);
  a.At(1, 1) = Complex(0, 0);
  Vector b(2);
  b[0] = Complex(5, 0);
  b[1] = Complex(7, 0);
  Vector x = SolveDense(a, b);
  EXPECT_NEAR(x[0].real(), 7.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 5.0, 1e-12);
}

TEST(DenseLu, SolveDimensionMismatchThrows) {
  LuFactorization lu(Matrix::Identity(3));
  Vector b(2);
  EXPECT_THROW(lu.Solve(b), util::NumericError);
}

TEST(DenseLu, DeterminantOfIdentityIsOne) {
  LuFactorization lu(Matrix::Identity(4));
  EXPECT_NEAR(lu.Log10AbsDeterminant(), 0.0, 1e-12);
  EXPECT_NEAR(lu.PivotRatio(), 1.0, 1e-12);
}

TEST(DenseLu, DeterminantOfScaledIdentity) {
  Matrix a = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) a.At(i, i) = Complex(10.0, 0.0);
  LuFactorization lu(a);
  EXPECT_NEAR(lu.Log10AbsDeterminant(), 3.0, 1e-12);
}

TEST(DenseLu, ReusableFactorizationForMultipleRhs) {
  std::mt19937_64 rng(7);
  Matrix a = RandomMatrix(5, rng);
  LuFactorization lu(a);
  for (int k = 0; k < 3; ++k) {
    Vector x_true = RandomVector(5, rng);
    Vector b = a.Multiply(x_true);
    Vector x = lu.Solve(b);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-10);
    }
  }
}

class DenseLuPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DenseLuPropertyTest, SolveRecoversKnownSolution) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(1000 + n);
  for (int trial = 0; trial < 5; ++trial) {
    Matrix a = RandomMatrix(n, rng);
    Vector x_true = RandomVector(n, rng);
    Vector b = a.Multiply(x_true);
    Vector x = LuFactorization(a).Solve(b);
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) err += std::abs(x[i] - x_true[i]);
    EXPECT_LT(err / n, 1e-9) << "n=" << n << " trial=" << trial;
  }
}

TEST_P(DenseLuPropertyTest, ResidualIsSmall) {
  const std::size_t n = GetParam();
  std::mt19937_64 rng(2000 + n);
  Matrix a = RandomMatrix(n, rng);
  Vector b = RandomVector(n, rng);
  Vector x = LuFactorization(a).Solve(b);
  Vector r = a.Multiply(x);
  r.Axpy(Complex(-1.0, 0.0), b);
  EXPECT_LT(r.Norm2() / (b.Norm2() + 1e-30), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseLuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40, 64));

}  // namespace
}  // namespace mcdft::linalg
