// Differential accuracy tests of the low-rank (SMW) fault-solve path
// against the exact refactorization path.
//
// The stamp-delta derivation plus the SMW update must reproduce the exact
// faulty solution to solver roundoff on *arbitrary* circuits, not just the
// zoo: ~200 randomized RC/RLC ladders, each with a random single-element
// fault, are solved both ways and compared point-wise.  A second test pins
// the end-to-end equivalence of FaultSimulator::SimulateRange between the
// frequency-major SMW engine and the classic fault-major sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>

#include "circuits/zoo.hpp"
#include "faults/fault_list.hpp"
#include "faults/injector.hpp"
#include "faults/simulator.hpp"
#include "faults/stamp_delta.hpp"
#include "linalg/lowrank.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/mna.hpp"
#include "spice/netlist.hpp"

namespace mcdft {
namespace {

using linalg::Complex;
using linalg::CsrMatrix;
using linalg::SparseLu;
using linalg::TripletMatrix;
using linalg::Vector;

struct RandomCircuit {
  spice::Netlist netlist;
  std::vector<std::string> tweakable;  // R/C/L names for fault targets
};

/// Random RC/RLC ladder (same construction as the random LU differential
/// tests): a source-driven spine of series resistors, a shunt R/C/L from
/// every spine node to ground, plus random bridging capacitors.
RandomCircuit BuildRandomLadder(std::mt19937_64& rng, bool with_inductors) {
  std::uniform_int_distribution<std::size_t> stage_count(3, 12);
  std::uniform_real_distribution<double> log_r(2.0, 5.0);
  std::uniform_real_distribution<double> log_c(-10.0, -7.0);
  std::uniform_real_distribution<double> log_l(-4.0, -2.0);
  std::uniform_int_distribution<int> kind(0, with_inductors ? 2 : 1);

  RandomCircuit out;
  const std::size_t stages = stage_count(rng);
  std::size_t n_res = 0, n_cap = 0, n_ind = 0;
  const auto node = [](std::size_t i) { return "n" + std::to_string(i); };

  out.netlist.AddVoltageSource("Vin", node(0), "0", 0.0, 1.0);
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string r = "R" + std::to_string(++n_res);
    out.netlist.AddResistor(r, node(i), node(i + 1),
                            std::pow(10.0, log_r(rng)));
    out.tweakable.push_back(r);
    switch (kind(rng)) {
      case 0: {
        const std::string name = "R" + std::to_string(++n_res);
        out.netlist.AddResistor(name, node(i + 1), "0",
                                std::pow(10.0, log_r(rng)));
        out.tweakable.push_back(name);
        break;
      }
      case 1: {
        const std::string name = "C" + std::to_string(++n_cap);
        out.netlist.AddCapacitor(name, node(i + 1), "0",
                                 std::pow(10.0, log_c(rng)));
        out.tweakable.push_back(name);
        break;
      }
      default: {
        const std::string name = "L" + std::to_string(++n_ind);
        out.netlist.AddInductor(name, node(i + 1), "0",
                                std::pow(10.0, log_l(rng)));
        out.tweakable.push_back(name);
        break;
      }
    }
  }
  std::uniform_int_distribution<std::size_t> pick(1, stages);
  for (int b = 0; b < 2; ++b) {
    const std::size_t a = pick(rng), c = pick(rng);
    if (a == c) continue;
    out.netlist.AddCapacitor("C" + std::to_string(++n_cap), node(a), node(c),
                             std::pow(10.0, log_c(rng)));
  }
  out.netlist.ValidateOrThrow();
  return out;
}

double MaxRelativeError(const Vector& x, const Vector& y) {
  double scale = x.NormInf();
  if (scale == 0.0) scale = 1.0;
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - y[i]) / scale);
  }
  return err;
}

/// A random fault drawn from the full model: deviations, opens, shorts.
faults::Fault RandomFault(std::mt19937_64& rng, const std::string& device) {
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_real_distribution<double> mag(0.05, 0.8);
  switch (kind(rng)) {
    case 0: return faults::Fault(device, faults::FaultKind::kDeviationUp,
                                 mag(rng));
    case 1: return faults::Fault(device, faults::FaultKind::kDeviationDown,
                                 mag(rng));
    case 2: return faults::Fault::Open(device);
    default: return faults::Fault::Short(device);
  }
}

TEST(LowRankFaultDiff, SmwMatchesExactSolveOnRandomCircuits) {
  constexpr std::size_t kCases = 200;
  std::size_t smw_solves = 0;
  for (std::size_t seed = 0; seed < kCases; ++seed) {
    std::mt19937_64 rng(0x5EED5 ^ seed);
    RandomCircuit rc = BuildRandomLadder(rng, seed % 2 == 0);
    const spice::MnaSystem mna(rc.netlist);
    std::uniform_int_distribution<std::size_t> pick(0, rc.tweakable.size() - 1);
    const faults::Fault fault = RandomFault(rng, rc.tweakable[pick(rng)]);
    std::uniform_real_distribution<double> log_f(1.0, 6.0);
    const double omega = 2.0 * 3.141592653589793 * std::pow(10.0, log_f(rng));

    // Nominal factorization + SMW update.
    TripletMatrix a;
    Vector b;
    mna.Assemble(spice::AnalysisKind::kAc, omega, a, b);
    SparseLu nominal{CsrMatrix(a)};
    linalg::LowRankUpdateSolver solver;
    solver.Bind(nominal, b);
    const auto delta = faults::FaultStampDelta::Compute(
        mna, rc.netlist, fault, spice::AnalysisKind::kAc, omega);
    ASSERT_TRUE(delta.has_value())
        << "seed " << seed << ": passive single-element fault must be "
        << "expressible as a low-rank matrix update";
    const auto fast = solver.Solve(*delta);
    ASSERT_TRUE(fast.has_value()) << "seed " << seed;
    ++smw_solves;

    // Exact path: inject, reassemble, factor from scratch.
    faults::ScopedFaultInjection injection(rc.netlist, fault);
    mna.Assemble(spice::AnalysisKind::kAc, omega, a, b);
    const Vector exact = linalg::SolveSparse(CsrMatrix(a), b);
    // Parametric deviations — the campaign's fault class — perturb the
    // matrix at its own scale and agree to solver roundoff.  Catastrophic
    // opens/shorts scale one entry by 1e9, so the SMW correction is
    // conditioned ~1e9 worse than the nominal solve; a few lost digits are
    // inherent to the update form, not a defect (still 1000x tighter than
    // the campaign's epsilon band).
    const bool catastrophic = fault.Kind() == faults::FaultKind::kOpen ||
                              fault.Kind() == faults::FaultKind::kShort;
    EXPECT_LT(MaxRelativeError(*fast, exact), catastrophic ? 1e-6 : 1e-9)
        << "seed " << seed << " fault " << fault.Label() << " omega " << omega;
  }
  EXPECT_EQ(smw_solves, kCases);
}

TEST(LowRankFaultDiff, SimulateRangeMatchesLegacyFaultMajorSweeps) {
  // End-to-end: the frequency-major SMW engine must agree with the classic
  // per-fault sweeps on a real circuit, fault label by fault label.
  auto block = circuits::FindInZoo("biquad").build();
  auto faults_list = faults::MakeDeviationFaults(block.netlist);
  ASSERT_GT(faults_list.size(), 4u);
  spice::Probe probe{block.netlist.FindNode(block.output_node), spice::kGround,
                     "v(" + block.output_node + ")"};
  auto sweep = spice::SweepSpec::Decade(10.0, 1e5, 8);

  spice::MnaOptions lowrank_options;
  faults::FaultSimulator fast(block.netlist, sweep, probe, lowrank_options);
  const auto via_smw = fast.SimulateRange(faults_list, 0, faults_list.size(), 1);

  spice::MnaOptions exact_options;
  exact_options.lowrank_fault_updates = false;
  faults::FaultSimulator slow(block.netlist, sweep, probe, exact_options);
  const auto via_exact =
      slow.SimulateRange(faults_list, 0, faults_list.size(), 1);

  ASSERT_EQ(via_smw.size(), via_exact.size());
  ASSERT_EQ(via_smw.size(), faults_list.size() + 1);
  for (std::size_t r = 0; r < via_smw.size(); ++r) {
    EXPECT_EQ(via_smw[r].label, via_exact[r].label);
    ASSERT_EQ(via_smw[r].PointCount(), via_exact[r].PointCount());
    for (std::size_t t = 0; t < via_smw[r].PointCount(); ++t) {
      EXPECT_LT(std::abs(via_smw[r].values[t] - via_exact[r].values[t]),
                1e-9 * std::max(1.0, std::abs(via_exact[r].values[t])))
          << "row " << via_smw[r].label << " point " << t;
    }
  }
}

}  // namespace
}  // namespace mcdft
