#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "circuits/biquad.hpp"
#include "paper_fixture.hpp"

namespace mcdft::core {
namespace {

/// Fast campaign options for circuit-level tests (no Monte-Carlo envelope,
/// coarse grid).
CampaignOptions FastOptions() {
  CampaignOptions o;
  o.points_per_decade = 10;
  o.criteria.epsilon = 0.10;
  o.criteria.relative_floor = 0.25;
  return o;
}

TEST(Campaign, RunsAllConfigurations) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto campaign = RunCampaign(circuit, faults,
                              circuit.Space().AllNonTransparent(),
                              FastOptions());
  EXPECT_EQ(campaign.ConfigCount(), 7u);
  EXPECT_EQ(campaign.FaultCount(), 8u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(campaign.PerConfig()[i].config.Index(), i);
  }
}

TEST(Campaign, MatrixAndOmegaTableConsistent) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto campaign = RunCampaign(circuit, faults,
                              circuit.Space().AllNonTransparent(),
                              FastOptions());
  auto matrix = campaign.DetectabilityMatrix();
  auto omega = campaign.OmegaTable();
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    for (std::size_t j = 0; j < campaign.FaultCount(); ++j) {
      // Definition 1 and Definition 2 agree: detectable <=> omega > 0.
      EXPECT_EQ(matrix[i][j], omega[i][j] > 0.0);
      EXPECT_GE(omega[i][j], 0.0);
      EXPECT_LE(omega[i][j], 1.0);
    }
  }
}

TEST(Campaign, CampaignLeavesInputCircuitInFunctionalMode) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  RunCampaign(circuit, faults, {ConfigVector::FromIndex(3, 3)}, FastOptions());
  EXPECT_TRUE(circuit.CurrentConfiguration().IsFunctional());
  // Values untouched.
  EXPECT_DOUBLE_EQ(circuit.Circuit().GetElement("R1").Value(),
                   circuits::BiquadParams{}.r1);
}

TEST(Campaign, FunctionalOnlyIsSingleRow) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto campaign = AnalyzeFunctionalOnly(circuit, faults, FastOptions());
  EXPECT_EQ(campaign.ConfigCount(), 1u);
  EXPECT_TRUE(campaign.PerConfig()[0].config.IsFunctional());
}

TEST(Campaign, EmptyInputsRejected) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  EXPECT_THROW(RunCampaign(circuit, faults, {}, FastOptions()),
               util::AnalysisError);
  EXPECT_THROW(RunCampaign(circuit, {}, circuit.Space().All(), FastOptions()),
               util::AnalysisError);
}

TEST(Campaign, ExplicitAnchorOverridesEstimation) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  CampaignOptions o = FastOptions();
  o.anchor_hz = 500.0;
  o.decades_below = 1.0;
  o.decades_above = 1.0;
  auto campaign =
      RunCampaign(circuit, faults, {ConfigVector(3)}, o);
  EXPECT_NEAR(campaign.Band().FLow(), 50.0, 1e-9);
  EXPECT_NEAR(campaign.Band().FHigh(), 5000.0, 1e-9);
}

TEST(Campaign, AutoAnchorLandsNearF0) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto campaign = RunCampaign(circuit, faults, {ConfigVector(3)}, FastOptions());
  const double f0 = circuits::BiquadParams{}.F0();
  const double anchor =
      campaign.Band().FLow() * 100.0;  // 2 decades below anchor
  EXPECT_NEAR(std::log10(anchor), std::log10(f0), 0.5);
}

TEST(Campaign, ToleranceEnvelopeReducesDetections) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  CampaignOptions plain = FastOptions();
  plain.criteria.epsilon = 0.08;
  CampaignOptions with_tol = plain;
  with_tol.tolerance = testability::ToleranceModel{0.03, 16, 1234};
  auto c_plain = RunCampaign(circuit, faults, {ConfigVector(3)}, plain);
  auto c_tol = RunCampaign(circuit, faults, {ConfigVector(3)}, with_tol);
  // The envelope can only raise thresholds, so omega values cannot grow.
  for (std::size_t j = 0; j < faults.size(); ++j) {
    EXPECT_LE(c_tol.OmegaTable()[0][j], c_plain.OmegaTable()[0][j] + 1e-12);
  }
}

TEST(Campaign, ToleranceModelWithPresetEnvelopeThrows) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  CampaignOptions o = FastOptions();
  o.tolerance = testability::ToleranceModel{};
  o.criteria.envelope.assign(10, 0.1);
  EXPECT_THROW(RunCampaign(circuit, faults, {ConfigVector(3)}, o),
               util::AnalysisError);
}

TEST(Campaign, PaperOptionsAreDeterministic) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto o = MakePaperCampaignOptions();
  o.points_per_decade = 10;  // keep the test fast
  auto c1 = RunCampaign(circuit, faults, {ConfigVector(3)}, o);
  auto c2 = RunCampaign(circuit, faults, {ConfigVector(3)}, o);
  EXPECT_EQ(c1.OmegaTable(), c2.OmegaTable());
}

TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto o = MakePaperCampaignOptions();
  o.points_per_decade = 10;  // keep the test fast
  o.tolerance->samples = 8;
  o.threads = 1;
  auto serial = RunCampaign(circuit, faults,
                            circuit.Space().AllNonTransparent(), o);
  o.threads = 4;
  auto parallel = RunCampaign(circuit, faults,
                              circuit.Space().AllNonTransparent(), o);
  // The whole result is bit-identical, not merely close: responses,
  // thresholds (which embed the Monte-Carlo envelope), and verdicts.
  ASSERT_EQ(serial.ConfigCount(), parallel.ConfigCount());
  EXPECT_EQ(serial.OmegaTable(), parallel.OmegaTable());
  EXPECT_EQ(serial.DetectabilityMatrix(), parallel.DetectabilityMatrix());
  for (std::size_t i = 0; i < serial.ConfigCount(); ++i) {
    const auto& s = serial.PerConfig()[i];
    const auto& p = parallel.PerConfig()[i];
    EXPECT_EQ(s.threshold, p.threshold);
    ASSERT_EQ(s.nominal.values.size(), p.nominal.values.size());
    for (std::size_t k = 0; k < s.nominal.values.size(); ++k) {
      EXPECT_EQ(s.nominal.values[k], p.nominal.values[k]);
    }
  }
}

TEST(Campaign, RowOfFindsEveryConfigAndRejectsOthers) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto faults = faults::MakeDeviationFaults(circuit.Circuit());
  auto campaign = RunCampaign(circuit, faults,
                              circuit.Space().AllNonTransparent(),
                              FastOptions());
  for (std::size_t i = 0; i < campaign.ConfigCount(); ++i) {
    EXPECT_EQ(campaign.RowOf(campaign.PerConfig()[i].config), i);
  }
  // The transparent configuration C7 was not simulated.
  EXPECT_THROW(campaign.RowOf(ConfigVector::FromIndex(7, 3)),
               util::OptimizationError);
  // Same index, different width: still a miss, not a false hit.
  EXPECT_THROW(campaign.RowOf(ConfigVector::FromIndex(2, 4)),
               util::OptimizationError);
}

TEST(Campaign, BestCaseSubsetRows) {
  auto campaign = testdata::PaperCampaign();
  auto best = campaign.BestCase({2, 5});
  // {C2, C5}: per-fault maxima 30,30,40,30,30,30,30,40 -> avg 32.5%.
  double avg = 0.0;
  for (const auto& d : best) avg += d.omega_detectability;
  EXPECT_NEAR(avg / best.size(), 0.325, 1e-9);
  EXPECT_THROW(campaign.BestCase({99}), util::OptimizationError);
}

TEST(Campaign, RaggedRowsRejected) {
  auto faults = testdata::PaperFaults();
  std::vector<ConfigResult> rows;
  ConfigResult row{ConfigVector::FromIndex(0, 3), {}};
  rows.push_back(row);  // empty fault list vs 8 faults
  EXPECT_THROW(CampaignResult(faults, std::move(rows),
                              testability::ReferenceBand(10.0, 1e5, 25)),
               util::AnalysisError);
}

}  // namespace
}  // namespace mcdft::core
