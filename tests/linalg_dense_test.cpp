#include "linalg/dense.hpp"

#include <gtest/gtest.h>

namespace mcdft::linalg {
namespace {

TEST(Vector, ConstructionAndAccess) {
  Vector v(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], Complex(0.0, 0.0));
  v[1] = Complex(1.0, -2.0);
  EXPECT_EQ(v[1], Complex(1.0, -2.0));
}

TEST(Vector, Norms) {
  Vector v(2);
  v[0] = Complex(3.0, 0.0);
  v[1] = Complex(0.0, 4.0);
  EXPECT_DOUBLE_EQ(v.Norm2(), 5.0);
  EXPECT_DOUBLE_EQ(v.NormInf(), 4.0);
}

TEST(Vector, Axpy) {
  Vector x(2), y(2);
  x[0] = Complex(1.0, 0.0);
  x[1] = Complex(2.0, 0.0);
  y[0] = Complex(10.0, 0.0);
  y[1] = Complex(20.0, 0.0);
  y.Axpy(Complex(0.0, 1.0), x);  // y += i*x
  EXPECT_EQ(y[0], Complex(10.0, 1.0));
  EXPECT_EQ(y[1], Complex(20.0, 2.0));
}

TEST(Vector, AxpySizeMismatchThrows) {
  Vector x(2), y(3);
  EXPECT_THROW(y.Axpy(Complex(1.0, 0.0), x), util::NumericError);
}

TEST(Vector, SetZeroAndResize) {
  Vector v(2, Complex(5.0, 0.0));
  v.Resize(4);
  EXPECT_EQ(v[3], Complex(0.0, 0.0));
  EXPECT_EQ(v[0], Complex(5.0, 0.0));
  v.SetZero();
  EXPECT_EQ(v[0], Complex(0.0, 0.0));
}

TEST(Matrix, ShapeAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.Cols(), 3u);
  m.At(1, 2) = Complex(7.0, 0.0);
  m.Add(1, 2, Complex(1.0, 1.0));
  EXPECT_EQ(m.At(1, 2), Complex(8.0, 1.0));
}

TEST(Matrix, Identity) {
  Matrix id = Matrix::Identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id.At(r, c), r == c ? Complex(1.0, 0.0) : Complex(0.0, 0.0));
    }
  }
}

TEST(Matrix, MultiplyIdentityIsNoOp) {
  Matrix id = Matrix::Identity(2);
  Vector x(2);
  x[0] = Complex(1.0, 2.0);
  x[1] = Complex(-3.0, 0.5);
  Vector y = id.Multiply(x);
  EXPECT_EQ(y[0], x[0]);
  EXPECT_EQ(y[1], x[1]);
}

TEST(Matrix, MultiplyKnownResult) {
  Matrix m(2, 2);
  m.At(0, 0) = Complex(1.0, 0.0);
  m.At(0, 1) = Complex(2.0, 0.0);
  m.At(1, 0) = Complex(0.0, 1.0);
  m.At(1, 1) = Complex(0.0, 0.0);
  Vector x(2);
  x[0] = Complex(1.0, 0.0);
  x[1] = Complex(1.0, 0.0);
  Vector y = m.Multiply(x);
  EXPECT_EQ(y[0], Complex(3.0, 0.0));
  EXPECT_EQ(y[1], Complex(0.0, 1.0));
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix m(2, 3);
  Vector x(2);
  EXPECT_THROW(m.Multiply(x), util::NumericError);
}

TEST(Matrix, Norms) {
  Matrix m(2, 2);
  m.At(0, 0) = Complex(3.0, 4.0);  // |.| = 5
  m.At(1, 1) = Complex(1.0, 0.0);
  EXPECT_DOUBLE_EQ(m.NormFrobenius(), std::sqrt(26.0));
  EXPECT_DOUBLE_EQ(m.NormInf(), 5.0);
}

TEST(Matrix, ToStringContainsEntries) {
  Matrix m(1, 1);
  m.At(0, 0) = Complex(2.5, -1.0);
  const std::string s = m.ToString();
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("-1"), std::string::npos);
}

TEST(Matrix, SetZeroKeepsShape) {
  Matrix m(2, 3);
  m.At(0, 0) = Complex(1.0, 0.0);
  m.SetZero();
  EXPECT_EQ(m.Rows(), 2u);
  EXPECT_EQ(m.At(0, 0), Complex(0.0, 0.0));
}

}  // namespace
}  // namespace mcdft::linalg
