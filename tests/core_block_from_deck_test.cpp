#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "spice/parser.hpp"

namespace mcdft::core {
namespace {

constexpr const char* kDeck = R"(deck filter
V1 in 0 AC 1
R1 in minus 1k
R2 minus out 1k
C1 minus out 100n
O1 0 minus out A0=1e6
.probe v(out)
.end
)";

TEST(MakeBlockFromDeck, ExtractsChainInputAndOutput) {
  auto block = MakeBlockFromDeck(spice::ParseDeck(kDeck));
  EXPECT_EQ(block.name, "deck filter");
  EXPECT_EQ(block.input_node, "in");
  EXPECT_EQ(block.output_node, "out");
  ASSERT_EQ(block.opamps.size(), 1u);
  EXPECT_EQ(block.opamps[0], "O1");
}

TEST(MakeBlockFromDeck, BlockIsTransformableAndSimulatable) {
  auto block = MakeBlockFromDeck(spice::ParseDeck(kDeck));
  DftCircuit dft = DftCircuit::Transform(block);
  auto fault_list = faults::MakeDeviationFaults(dft.Circuit());
  EXPECT_EQ(fault_list.size(), 3u);
  CampaignOptions options;
  options.points_per_decade = 10;
  auto campaign = AnalyzeFunctionalOnly(dft, fault_list, options);
  EXPECT_EQ(campaign.FaultCount(), 3u);
}

TEST(MakeBlockFromDeck, OpampChainFollowsCardOrder) {
  auto block = MakeBlockFromDeck(spice::ParseDeck(R"(two
V1 in 0 AC 1
O2 in a a
O1 a b b
.probe v(b)
)"));
  ASSERT_EQ(block.opamps.size(), 2u);
  EXPECT_EQ(block.opamps[0], "O2");
  EXPECT_EQ(block.opamps[1], "O1");
}

TEST(MakeBlockFromDeck, MissingPiecesThrow) {
  // No opamp.
  EXPECT_THROW(MakeBlockFromDeck(spice::ParseDeck(
                   "V1 a 0 1\nR1 a 0 1\n.probe v(a)\n")),
               util::NetlistError);
  // No source.
  EXPECT_THROW(MakeBlockFromDeck(spice::ParseDeck(
                   "R1 a b 1\nO1 a b b\n.probe v(b)\n")),
               util::NetlistError);
  // No probe.
  EXPECT_THROW(MakeBlockFromDeck(spice::ParseDeck(
                   "V1 a 0 1\nO1 a b b\n")),
               util::NetlistError);
}

}  // namespace
}  // namespace mcdft::core
