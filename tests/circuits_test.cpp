// Nominal-behaviour checks of every circuit in the zoo: cutoff/resonance
// frequencies, passband gains and roll-off slopes against their design
// equations.
#include "circuits/zoo.hpp"

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "circuits/ackerberg.hpp"
#include "circuits/biquad.hpp"
#include "circuits/cascade.hpp"
#include "circuits/instrumentation.hpp"
#include "circuits/khn.hpp"
#include "circuits/leapfrog.hpp"
#include "circuits/notch.hpp"
#include "circuits/sallen_key.hpp"
#include "faults/fault_list.hpp"
#include "spice/ac_analysis.hpp"

namespace mcdft::circuits {
namespace {

spice::FrequencyResponse Sweep(const core::AnalogBlock& block, double f_lo,
                               double f_hi, std::size_t ppd = 20) {
  spice::AcAnalyzer analyzer(block.netlist);
  spice::Probe probe{block.netlist.FindNode(block.output_node), spice::kGround,
                     "v(out)"};
  return analyzer.Run(spice::SweepSpec::Decade(f_lo, f_hi, ppd), probe);
}

double MagAtHz(const core::AnalogBlock& block, double f) {
  spice::AcAnalyzer analyzer(block.netlist);
  spice::Probe probe{block.netlist.FindNode(block.output_node), spice::kGround,
                     "v(out)"};
  auto r = analyzer.Run(spice::SweepSpec::List({f}), probe);
  return r.MagnitudeAt(0);
}

TEST(Biquad, DesignEquations) {
  BiquadParams p;
  EXPECT_NEAR(p.F0(), 1000.0, 10.0);
  EXPECT_NEAR(p.Q(), 0.95, 0.02);
}

TEST(Biquad, DcGainIsR6OverR1) {
  BiquadParams p;
  auto block = BuildBiquad(p);
  EXPECT_NEAR(MagAtHz(block, 0.1), p.r6 / p.r1, 1e-3);
}

TEST(Biquad, SecondOrderRollOff) {
  auto block = BuildBiquad();
  // -40 dB/decade well past f0: |T(100 kHz)| / |T(10 kHz)| ~ 1/100.
  EXPECT_NEAR(MagAtHz(block, 1e4) / MagAtHz(block, 1e5), 100.0, 5.0);
}

TEST(Biquad, ValidatesCleanly) {
  auto block = BuildBiquad();
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_EQ(block.opamps.size(), 3u);
  EXPECT_EQ(block.netlist.ElementCount(), 12u);  // V + 6R + 2C + 3 opamps
}

TEST(Khn, LowPassShape) {
  KhnParams p;
  auto block = BuildKhn(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_NEAR(p.F0(), 1000.0, 10.0);
  const double dc = MagAtHz(block, 1.0);
  EXPECT_GT(dc, 0.1);
  // Second-order roll-off.
  EXPECT_NEAR(MagAtHz(block, 2e4) / MagAtHz(block, 2e5), 100.0, 5.0);
}

TEST(Khn, ResonancePeakNearF0) {
  auto block = BuildKhn();
  auto r = Sweep(block, 10.0, 1e5);
  const double fpeak = r.freqs_hz[r.PeakIndex()];
  EXPECT_NEAR(std::log10(fpeak), 3.0, 0.15);  // Q = 5 peaking at ~1 kHz
}

TEST(Ackerberg, MatchesTowThomasMagnitudeWithIdenticalValues) {
  // Same design equations: the AM biquad's |T| equals the Tow-Thomas |T|
  // when built from the same component values (both realize the same
  // second-order function; only opamp-imperfection sensitivity differs).
  BiquadParams tt;
  AckerbergParams am;
  auto b_tt = BuildBiquad(tt);
  auto b_am = BuildAckerberg(am);
  for (double f : {10.0, 100.0, 1000.0, 5000.0, 50000.0}) {
    EXPECT_NEAR(MagAtHz(b_tt, f), MagAtHz(b_am, f), 0.02 * MagAtHz(b_tt, f))
        << "f=" << f;
  }
}

TEST(Ackerberg, Validates) {
  auto block = BuildAckerberg();
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_NEAR(AckerbergParams{}.F0(), 1000.0, 10.0);
}

TEST(SallenKey, ButterworthResponse) {
  SallenKeyParams p;
  auto block = BuildSallenKey(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_NEAR(p.F0Section1(), 1000.0, 25.0);
  EXPECT_NEAR(p.F0Section2(), 1000.0, 25.0);
  // Unity DC gain, -3 dB at ~1 kHz, 4th-order (-80 dB/dec) roll-off.
  EXPECT_NEAR(MagAtHz(block, 1.0), 1.0, 1e-3);
  EXPECT_NEAR(MagAtHz(block, 1000.0), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(MagAtHz(block, 2e4) / MagAtHz(block, 2e5), 1e4, 500.0);
}

TEST(Leapfrog, DoublyTerminatedButterworth) {
  LeapfrogParams p;
  auto block = BuildLeapfrog(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  // DC gain 1/2 (doubly terminated), f0 ~ 1 kHz, 3rd-order roll-off.
  EXPECT_NEAR(MagAtHz(block, 1.0), 0.5, 1e-3);
  EXPECT_NEAR(MagAtHz(block, p.F0()), 0.5 / std::sqrt(2.0), 0.03);
  EXPECT_NEAR(MagAtHz(block, 2e4) / MagAtHz(block, 2e5), 1e3, 100.0);
}

TEST(Leapfrog, FaultSiteCensus) {
  auto block = BuildLeapfrog();
  auto fault_list = mcdft::faults::MakeDeviationFaults(block.netlist);
  EXPECT_EQ(fault_list.size(), 14u);  // 11 R + 3 C
  EXPECT_EQ(block.opamps.size(), 5u);
}

TEST(Instrumentation, GainAndPole) {
  InstrumentationParams p;
  auto block = BuildInstrumentation(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_NEAR(p.Gain(), 21.0, 1e-9);
  EXPECT_NEAR(p.PoleHz(), 1000.0, 10.0);
  EXPECT_NEAR(MagAtHz(block, 1.0), 21.0, 0.05);
  EXPECT_NEAR(MagAtHz(block, p.PoleHz()), 21.0 / std::sqrt(2.0), 0.6);
}

TEST(Cascade6, SixthOrderButterworth) {
  CascadeParams p;
  auto block = BuildCascade6(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_EQ(block.opamps.size(), 9u);
  // Unity DC gain (each stage has R1 = R6), -3 dB near 1 kHz and a
  // -120 dB/dec roll-off.
  EXPECT_NEAR(MagAtHz(block, 1.0), 1.0, 1e-2);
  EXPECT_NEAR(MagAtHz(block, 1000.0), 1.0 / std::sqrt(2.0), 0.08);
  EXPECT_NEAR(MagAtHz(block, 2e4) / MagAtHz(block, 2e5), 1e6, 2e5);
}

TEST(Cascade6, FaultSiteCensus) {
  auto block = BuildCascade6();
  auto fault_list = mcdft::faults::MakeDeviationFaults(block.netlist);
  EXPECT_EQ(fault_list.size(), 24u);  // 3 x (6R + 2C)
}

TEST(Notch, TrueTransmissionZeroAtF0) {
  NotchParams p;
  auto block = BuildNotch(p);
  EXPECT_TRUE(block.netlist.Validate().empty());
  EXPECT_EQ(block.opamps.size(), 4u);
  const double passband = MagAtHz(block, 1.0);
  const double at_null = MagAtHz(block, p.F0());
  EXPECT_GT(passband, 0.1);
  // Deep null: at least 30 dB below the passband (limited by finite opamp
  // gain and the slight mismatch of the HP/LP summing paths).
  EXPECT_LT(at_null, passband / 30.0);
  // Recovery above the notch.
  EXPECT_GT(MagAtHz(block, 100.0 * p.F0()), passband / 3.0);
}

TEST(Notch, FaultSiteCensus) {
  auto block = BuildNotch();
  auto fault_list = mcdft::faults::MakeDeviationFaults(block.netlist);
  EXPECT_EQ(fault_list.size(), 12u);  // 10 R + 2 C
}

TEST(Notch, CampaignSurvivesTheNull) {
  // The measurement floor must keep the deviation analysis finite at the
  // transmission zero; the campaign should run and produce a sane matrix.
  auto circuit = BuildDftNotch();
  auto fault_list = mcdft::faults::MakeDeviationFaults(circuit.Circuit());
  core::CampaignOptions options;
  options.points_per_decade = 10;
  options.criteria.epsilon = 0.10;
  options.criteria.relative_floor = 0.25;
  auto campaign = core::RunCampaign(
      circuit, fault_list, {core::ConfigVector(4)}, options);
  for (const auto& d : campaign.PerConfig()[0].faults) {
    EXPECT_GE(d.omega_detectability, 0.0);
    EXPECT_LE(d.omega_detectability, 1.0);
    EXPECT_TRUE(std::isfinite(d.peak_deviation));
  }
}

TEST(Zoo, ContainsAllCircuits) {
  EXPECT_GE(Zoo().size(), 8u);
  for (const auto& entry : Zoo()) {
    SCOPED_TRACE(entry.name);
    auto block = entry.build();
    EXPECT_TRUE(block.netlist.Validate().empty());
    EXPECT_FALSE(block.opamps.empty());
    EXPECT_FALSE(entry.description.empty());
    // Every zoo circuit can be DFT-transformed and switched transparent.
    auto dft = core::DftCircuit::Transform(block);
    dft.ApplyConfiguration(
        core::ConfigVector::FromBits(std::string(block.opamps.size(), '1')));
    const double mag = [&] {
      spice::AcAnalyzer an(dft.Circuit());
      spice::Probe probe{dft.Circuit().FindNode(dft.OutputNode()),
                         spice::kGround, "v"};
      return an.Run(spice::SweepSpec::List({100.0}), probe).MagnitudeAt(0);
    }();
    EXPECT_NEAR(mag, 1.0, 1e-3) << "transparent configuration of " << entry.name;
  }
}

TEST(Zoo, FindByName) {
  EXPECT_EQ(FindInZoo("biquad").name, "biquad");
  EXPECT_THROW(FindInZoo("nonexistent"), util::Error);
}

}  // namespace
}  // namespace mcdft::circuits
