#include "spice/dc_analysis.hpp"

#include <gtest/gtest.h>

namespace mcdft::spice {
namespace {

TEST(DcAnalysis, OperatingPointOfDivider) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 9.0);
  nl.AddResistor("R1", "in", "mid", 2e3);
  nl.AddResistor("R2", "mid", "0", 1e3);
  auto op = SolveOperatingPoint(nl);
  EXPECT_DOUBLE_EQ(op.VoltageAt(kGround), 0.0);
  EXPECT_NEAR(op.VoltageAt(nl.FindNode("in")), 9.0, 1e-12);
  EXPECT_NEAR(op.VoltageAt(nl.FindNode("mid")), 3.0, 1e-9);
}

TEST(DcAnalysis, OpampVirtualGroundAtDc) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 2.0);
  nl.AddResistor("RIN", "in", "minus", 1e3);
  nl.AddResistor("RF", "minus", "out", 3e3);
  nl.AddOpamp("OP1", "0", "minus", "out");
  auto op = SolveOperatingPoint(nl);
  EXPECT_NEAR(op.VoltageAt(nl.FindNode("out")), -6.0, 1e-3);
  EXPECT_NEAR(op.VoltageAt(nl.FindNode("minus")), 0.0, 1e-4);
}

TEST(DcAnalysis, VoltageAtOutOfRangeThrows) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1e3);
  auto op = SolveOperatingPoint(nl);
  EXPECT_THROW(op.VoltageAt(99), util::AnalysisError);
}

TEST(DcAnalysis, AcSourceContributesNothingAtDc) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);  // DC 0, AC 1
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddResistor("R2", "out", "0", 1e3);
  auto op = SolveOperatingPoint(nl);
  EXPECT_NEAR(op.VoltageAt(nl.FindNode("out")), 0.0, 1e-12);
}

TEST(DcAnalysis, SingularDcThrowsNumericError) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddCapacitor("C1", "in", "island", 1e-9);
  nl.AddCapacitor("C2", "island", "0", 1e-9);
  EXPECT_THROW(SolveOperatingPoint(nl), util::NumericError);
}

}  // namespace
}  // namespace mcdft::spice
