// bench_gate exit-code contract (tools/bench_gate.cpp), exercised through
// the real binary: --report-only suppresses only *ratio* regressions; a
// malformed or missing baseline must still exit 2 so CI cannot silently
// green-light a gate that never compared anything.
//
// The binary path arrives via the MCDFT_BENCH_GATE_BIN compile definition
// (tests/CMakeLists.txt); tools/CMakeLists.txt makes mcdft_tests depend on
// the bench_gate target so the binary is fresh.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace {

namespace fs = std::filesystem;

class BenchGate : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcdft_bench_gate_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteReport(const std::string& name, double solves_per_s) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << R"({
  "bench": "campaign_throughput",
  "circuits": [
    {
      "name": "biquad",
      "runs": [
        {"threads": 1, "cache_factorization": true, "solves_per_s": )"
        << solves_per_s << R"(}
      ]
    }
  ]
})";
    return path;
  }

  std::string WriteMalformed(const std::string& name) {
    const std::string path = (dir_ / name).string();
    std::ofstream(path) << "{ \"bench\": \"campaign_throughput\", ";  // cut off
    return path;
  }

  /// Run bench_gate with `args`, return its exit code.
  int Run(const std::string& args) {
    const std::string cmd = std::string(MCDFT_BENCH_GATE_BIN) + " " + args +
                            " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    EXPECT_NE(status, -1);
    EXPECT_TRUE(WIFEXITED(status)) << cmd;
    return WEXITSTATUS(status);
  }

  fs::path dir_;
};

TEST_F(BenchGate, PassesOnEqualReports) {
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string fresh = WriteReport("fresh.json", 1000.0);
  EXPECT_EQ(Run("--baseline " + base + " --fresh " + fresh), 0);
}

TEST_F(BenchGate, RegressionFailsWithoutReportOnly) {
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string fresh = WriteReport("fresh.json", 100.0);
  EXPECT_EQ(Run("--baseline " + base + " --fresh " + fresh), 1);
}

TEST_F(BenchGate, ReportOnlySuppressesRatioFailures) {
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string fresh = WriteReport("fresh.json", 100.0);
  EXPECT_EQ(Run("--baseline " + base + " --fresh " + fresh + " --report-only"),
            0);
}

TEST_F(BenchGate, MissingBaselineExitsTwoEvenWithReportOnly) {
  const std::string fresh = WriteReport("fresh.json", 1000.0);
  const std::string missing = (dir_ / "nonexistent.json").string();
  EXPECT_EQ(Run("--baseline " + missing + " --fresh " + fresh), 2);
  EXPECT_EQ(Run("--baseline " + missing + " --fresh " + fresh +
                " --report-only"),
            2);
}

TEST_F(BenchGate, MalformedBaselineExitsTwoEvenWithReportOnly) {
  const std::string fresh = WriteReport("fresh.json", 1000.0);
  const std::string bad = WriteMalformed("bad.json");
  EXPECT_EQ(Run("--baseline " + bad + " --fresh " + fresh), 2);
  EXPECT_EQ(Run("--baseline " + bad + " --fresh " + fresh + " --report-only"),
            2);
}

TEST_F(BenchGate, NothingToCompareExitsTwo) {
  // Valid JSON on both sides but no matching (circuit, threads, cache) run:
  // the gate compared nothing and must say so, not pass.
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string path = (dir_ / "other.json").string();
  std::ofstream(path) << R"({"bench": "campaign_throughput", "circuits": []})";
  EXPECT_EQ(Run("--baseline " + path + " --fresh " + base), 2);
}

TEST_F(BenchGate, SummaryFileContainsMarkdownTableAndVerdict) {
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string fresh = WriteReport("fresh.json", 100.0);
  const std::string summary = (dir_ / "summary.md").string();
  EXPECT_EQ(Run("--baseline " + base + " --fresh " + fresh +
                " --report-only --summary " + summary),
            0);
  std::ifstream in(summary);
  ASSERT_TRUE(in);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("| status | circuit | threads |"), std::string::npos);
  EXPECT_NE(text.find("| retries | quarantined |"), std::string::npos);
  EXPECT_NE(text.find(":x: FAIL | biquad | 1 |"), std::string::npos);
  EXPECT_NE(text.find("x0.10"), std::string::npos);
  // The fixture's reports predate the resilience counters: absent fields
  // read as zero rather than failing the parse.
  EXPECT_NE(text.find("| 0 | 0 |"), std::string::npos);
  EXPECT_NE(text.find("report-only"), std::string::npos);
}

TEST_F(BenchGate, ResilienceCountersSurfaceInSummary) {
  const std::string base = WriteReport("base.json", 1000.0);
  const std::string path = (dir_ / "fresh.json").string();
  std::ofstream(path) << R"({
  "bench": "campaign_throughput",
  "circuits": [
    {
      "name": "biquad",
      "runs": [
        {"threads": 1, "cache_factorization": true, "solves_per_s": 1000.0,
         "retries": 3, "quarantined_cells": 7}
      ]
    }
  ]
})";
  const std::string summary = (dir_ / "summary.md").string();
  EXPECT_EQ(Run("--baseline " + base + " --fresh " + path + " --summary " +
                summary),
            0);
  std::ifstream in(summary);
  ASSERT_TRUE(in);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("| 3 | 7 |"), std::string::npos);
}

}  // namespace
