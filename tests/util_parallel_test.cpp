#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mcdft::util {
namespace {

TEST(Parallel, ResolveThreadCount) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // env var or hardware count
}

TEST(Parallel, VisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 9u}) {
    for (std::size_t count : {0u, 1u, 3u, 17u, 100u}) {
      std::vector<std::atomic<int>> hits(count);
      ParallelFor(threads, count,
                  [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
      }
    }
  }
}

TEST(Parallel, RangesPartitionContiguously) {
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ParallelForRange(4, 10, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 10u);
  for (std::size_t i = 0; i + 1 < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].second, ranges[i + 1].first);  // no gaps, no overlap
  }
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(4, 16,
                           [](std::size_t i) {
                             if (i == 11) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(Parallel, NestedSectionsRunInline) {
  // A parallel section inside a pool worker must not deadlock waiting on
  // the queue its own worker is occupying; it runs serial inline.
  std::atomic<int> total{0};
  ParallelFor(4, 8, [&](std::size_t) {
    ParallelFor(4, 8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, DeterministicOrderedReduction) {
  // The canonical usage pattern: workers fill their own slots, the caller
  // reduces in index order afterwards — identical for any thread count.
  auto run = [](std::size_t threads) {
    std::vector<double> slots(1000);
    ParallelFor(threads, slots.size(), [&](std::size_t i) {
      slots[i] = 1.0 / (1.0 + static_cast<double>(i));
    });
    return std::accumulate(slots.begin(), slots.end(), 0.0);
  };
  const double serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

}  // namespace
}  // namespace mcdft::util
