#include "spice/netlist.hpp"

#include <gtest/gtest.h>

#include "spice/elements.hpp"

namespace mcdft::spice {
namespace {

TEST(Netlist, GroundAliases) {
  Netlist nl;
  EXPECT_EQ(nl.Node("0"), kGround);
  EXPECT_EQ(nl.Node("gnd"), kGround);
  EXPECT_EQ(nl.Node("GND"), kGround);
}

TEST(Netlist, NodeCreationIsIdempotent) {
  Netlist nl;
  NodeId a = nl.Node("n1");
  EXPECT_EQ(nl.Node("n1"), a);
  EXPECT_EQ(nl.Node("N1"), a);  // case-insensitive
  EXPECT_EQ(nl.NodeCount(), 2u);
}

TEST(Netlist, NodeNamePreservesFirstSpelling) {
  Netlist nl;
  NodeId a = nl.Node("OutNode");
  EXPECT_EQ(nl.NodeName(a), "OutNode");
}

TEST(Netlist, FindNodeThrowsOnUnknown) {
  Netlist nl;
  EXPECT_THROW(nl.FindNode("nope"), util::NetlistError);
  EXPECT_FALSE(nl.TryFindNode("nope").has_value());
}

TEST(Netlist, NodeNameOutOfRangeThrows) {
  Netlist nl;
  EXPECT_THROW(nl.NodeName(99), util::NetlistError);
}

TEST(Netlist, DuplicateElementNameThrows) {
  Netlist nl;
  nl.AddResistor("R1", "a", "b", 100.0);
  EXPECT_THROW(nl.AddResistor("r1", "b", "c", 200.0), util::NetlistError);
}

TEST(Netlist, FindElementCaseInsensitive) {
  Netlist nl;
  nl.AddResistor("R1", "a", "b", 100.0);
  EXPECT_NE(nl.FindElement("r1"), nullptr);
  EXPECT_EQ(nl.FindElement("r2"), nullptr);
  EXPECT_EQ(nl.GetElement("R1").Name(), "R1");
  EXPECT_THROW(nl.GetElement("R2"), util::NetlistError);
}

TEST(Netlist, RemoveElement) {
  Netlist nl;
  nl.AddResistor("R1", "a", "b", 100.0);
  nl.AddResistor("R2", "b", "0", 100.0);
  nl.RemoveElement("R1");
  EXPECT_EQ(nl.ElementCount(), 1u);
  EXPECT_EQ(nl.FindElement("R1"), nullptr);
  EXPECT_NE(nl.FindElement("R2"), nullptr);
  EXPECT_THROW(nl.RemoveElement("R1"), util::NetlistError);
}

TEST(Netlist, RemoveKeepsIndexConsistent) {
  Netlist nl;
  nl.AddResistor("R1", "a", "0", 1.0);
  nl.AddResistor("R2", "a", "0", 2.0);
  nl.AddResistor("R3", "a", "0", 3.0);
  nl.RemoveElement("R2");
  EXPECT_DOUBLE_EQ(nl.GetElement("R3").Value(), 3.0);
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1.0);
}

TEST(Netlist, CloneIsDeep) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 0.0, 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddResistor("R2", "out", "0", 1e3);
  Netlist copy = nl.Clone();
  copy.GetElement("R1").SetValue(5e3);
  EXPECT_DOUBLE_EQ(nl.GetElement("R1").Value(), 1e3);
  EXPECT_DOUBLE_EQ(copy.GetElement("R1").Value(), 5e3);
  EXPECT_EQ(copy.NodeCount(), nl.NodeCount());
}

TEST(Netlist, ValidateAcceptsSimpleDivider) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "out", 1e3);
  nl.AddResistor("R2", "out", "0", 1e3);
  EXPECT_TRUE(nl.Validate().empty());
  EXPECT_NO_THROW(nl.ValidateOrThrow());
}

TEST(Netlist, ValidateFlagsEmptyCircuit) {
  Netlist nl;
  EXPECT_FALSE(nl.Validate().empty());
  EXPECT_THROW(nl.ValidateOrThrow(), util::NetlistError);
}

TEST(Netlist, ValidateFlagsDanglingNode) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.Node("floating");  // created but never used
  auto problems = nl.Validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("floating"), std::string::npos);
}

TEST(Netlist, ValidateFlagsIslandWithoutGroundPath) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1e3);
  nl.AddResistor("R2", "a", "b", 1e3);  // island {a, b}
  auto problems = nl.Validate();
  bool found = false;
  for (const auto& p : problems) {
    if (p.find("no path to ground") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Netlist, ValidateFlagsUnknownControlSource) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddCcvs("H1", "in", "0", "VMISSING", 10.0);
  auto problems = nl.Validate();
  bool found = false;
  for (const auto& p : problems) {
    if (p.find("VMISSING") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Netlist, ValidateFlagsControlWithoutBranch) {
  Netlist nl;
  nl.AddVoltageSource("V1", "in", "0", 1.0);
  nl.AddResistor("R1", "in", "0", 1e3);
  nl.AddCccs("F1", "in", "0", "R1", 2.0);  // resistor carries no branch
  auto problems = nl.Validate();
  bool found = false;
  for (const auto& p : problems) {
    if (p.find("no branch current") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Netlist, AddElementChecksNodeOwnership) {
  Netlist nl1, nl2;
  NodeId foreign = nl2.Node("a");  // id 1 in nl2
  (void)foreign;
  // Use an id that does not exist in nl1.
  auto r = std::make_unique<Resistor>("R1", NodeId{5}, kGround, 1e3);
  EXPECT_THROW(nl1.AddElement(std::move(r)), util::NetlistError);
}

TEST(Elements, InvalidValuesThrow) {
  Netlist nl;
  EXPECT_THROW(nl.AddResistor("R1", "a", "b", 0.0), util::NetlistError);
  EXPECT_THROW(nl.AddResistor("R2", "a", "b", -1.0), util::NetlistError);
  EXPECT_THROW(nl.AddCapacitor("C1", "a", "b", 0.0), util::NetlistError);
  EXPECT_THROW(nl.AddInductor("L1", "a", "b", -2.0), util::NetlistError);
}

TEST(Elements, SetValueValidates) {
  Netlist nl;
  auto& r = nl.AddResistor("R1", "a", "b", 100.0);
  EXPECT_THROW(r.SetValue(-5.0), util::NetlistError);
  r.SetValue(200.0);
  EXPECT_DOUBLE_EQ(r.Value(), 200.0);
}

TEST(Elements, OpampHasNoPrincipalValue) {
  Netlist nl;
  auto& op = nl.AddOpamp("OP1", "p", "n", "out");
  EXPECT_FALSE(op.HasValue());
  EXPECT_THROW(op.Value(), util::NetlistError);
  EXPECT_THROW(op.SetValue(1.0), util::NetlistError);
}

TEST(Elements, OpampFollowerRequiresConfigurable) {
  Netlist nl;
  auto& e = nl.AddOpamp("OP1", "p", "n", "out");
  auto& op = static_cast<Opamp&>(e);
  EXPECT_THROW(op.SetMode(OpampMode::kFollower), util::NetlistError);
  op.MakeConfigurable(nl.Node("test"));
  EXPECT_NO_THROW(op.SetMode(OpampMode::kFollower));
  EXPECT_EQ(op.Mode(), OpampMode::kFollower);
}

TEST(Elements, KindNames) {
  EXPECT_EQ(ElementKindName(ElementKind::kResistor), "resistor");
  EXPECT_EQ(ElementKindName(ElementKind::kOpamp), "opamp");
  EXPECT_EQ(ElementKindName(ElementKind::kVcvs), "vcvs");
}

}  // namespace
}  // namespace mcdft::spice
