#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mcdft::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Parse("null").IsNull());
  EXPECT_TRUE(Parse("true").AsBool());
  EXPECT_FALSE(Parse("false").AsBool());
  EXPECT_DOUBLE_EQ(Parse("42").AsDouble(), 42.0);
  EXPECT_DOUBLE_EQ(Parse("-1.5e3").AsDouble(), -1500.0);
  EXPECT_EQ(Parse("\"hi\"").AsString(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Value v = Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.IsObject());
  const Value& a = v.Get("a");
  ASSERT_EQ(a.Size(), 3u);
  EXPECT_DOUBLE_EQ(a.At(0).AsDouble(), 1.0);
  EXPECT_TRUE(a.At(2).Get("b").AsBool());
  EXPECT_EQ(v.Get("c").AsString(), "x");
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_THROW(v.Get("missing"), JsonError);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\n\t")").AsString(), "a\"b\\c\n\t");
  // \u escape decodes to UTF-8 (micro sign U+00B5 -> 0xC2 0xB5).
  EXPECT_EQ(Parse(R"("µs")").AsString(), "\xC2\xB5s");
}

TEST(Json, SerializeRoundTrips) {
  Value obj = Value::Object();
  obj.Set("name", Value::Str("bench \"x\"\n"));
  obj.Set("count", Value::Number(std::uint64_t{12345}));
  obj.Set("ratio", Value::Number(0.125));
  obj.Set("flag", Value::Bool(true));
  obj.Set("none", Value::Null());
  Value arr = Value::Array();
  arr.PushBack(Value::Number(1.0));
  arr.PushBack(Value::Number(2.5));
  obj.Set("items", std::move(arr));

  const Value back = Parse(obj.Serialize());
  EXPECT_EQ(back.Get("name").AsString(), "bench \"x\"\n");
  EXPECT_DOUBLE_EQ(back.Get("count").AsDouble(), 12345.0);
  EXPECT_DOUBLE_EQ(back.Get("ratio").AsDouble(), 0.125);
  EXPECT_TRUE(back.Get("flag").AsBool());
  EXPECT_TRUE(back.Get("none").IsNull());
  EXPECT_DOUBLE_EQ(back.Get("items").At(1).AsDouble(), 2.5);
}

TEST(Json, IntegralNumbersSerializeWithoutDecimalPoint) {
  EXPECT_EQ(Value::Number(42.0).Serialize(0), "42");
  EXPECT_EQ(Value::Number(-3.0).Serialize(0), "-3");
  EXPECT_EQ(Value::Number(0.0).Serialize(0), "0");
}

TEST(Json, DoubleSerializationRoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 123456.789, 2.5e17}) {
    const double back = Parse(Value::Number(v).Serialize(0)).AsDouble();
    EXPECT_EQ(back, v);
  }
}

TEST(Json, ObjectMembersKeepInsertionOrder) {
  Value obj = Value::Object();
  obj.Set("z", Value::Number(1.0));
  obj.Set("a", Value::Number(2.0));
  obj.Set("m", Value::Number(3.0));
  const auto& members = obj.Members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
  // Overwrite keeps the original position.
  obj.Set("a", Value::Number(9.0));
  EXPECT_EQ(obj.Members()[1].first, "a");
  EXPECT_DOUBLE_EQ(obj.Get("a").AsDouble(), 9.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Parse(""), JsonError);
  EXPECT_THROW(Parse("{"), JsonError);
  EXPECT_THROW(Parse("[1,]"), JsonError);
  EXPECT_THROW(Parse("{\"a\": 1,}"), JsonError);
  EXPECT_THROW(Parse("nul"), JsonError);
  EXPECT_THROW(Parse("1 2"), JsonError);  // trailing garbage
  EXPECT_THROW(Parse("\"unterminated"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Value v = Parse("[1]");
  EXPECT_THROW(v.AsBool(), JsonError);
  EXPECT_THROW(v.AsString(), JsonError);
  EXPECT_THROW(v.Get("x"), JsonError);
}

TEST(Json, ParseFileReadsDocument) {
  const std::string path = ::testing::TempDir() + "/mcdft_json_test.json";
  {
    std::ofstream out(path);
    out << R"({"k": [true, 7]})";
  }
  const Value v = ParseFile(path);
  EXPECT_DOUBLE_EQ(v.Get("k").At(1).AsDouble(), 7.0);
  std::remove(path.c_str());
  EXPECT_THROW(ParseFile(path), JsonError);
}

}  // namespace
}  // namespace mcdft::util::json
