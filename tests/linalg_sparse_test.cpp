#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mcdft::linalg {
namespace {

TEST(TripletMatrix, AccumulatesEntries) {
  TripletMatrix t(3, 3);
  t.Add(0, 0, Complex(1, 0));
  t.Add(0, 0, Complex(2, 0));  // duplicate: summed at compression
  t.Add(1, 2, Complex(0, 1));
  EXPECT_EQ(t.EntryCount(), 3u);
  CsrMatrix csr(t);
  EXPECT_EQ(csr.At(0, 0), Complex(3, 0));
  EXPECT_EQ(csr.At(1, 2), Complex(0, 1));
  EXPECT_EQ(csr.At(2, 2), Complex(0, 0));
  EXPECT_EQ(csr.NonZeroCount(), 2u);
}

TEST(TripletMatrix, OutOfRangeThrows) {
  TripletMatrix t(2, 2);
  EXPECT_THROW(t.Add(2, 0, Complex(1, 0)), util::NumericError);
  EXPECT_THROW(t.Add(0, 5, Complex(1, 0)), util::NumericError);
}

TEST(TripletMatrix, ClearKeepsShape) {
  TripletMatrix t(2, 2);
  t.Add(0, 0, Complex(1, 0));
  t.Clear();
  EXPECT_EQ(t.EntryCount(), 0u);
  EXPECT_EQ(t.Rows(), 2u);
}

TEST(TripletMatrix, ToDenseMatchesEntries) {
  TripletMatrix t(2, 3);
  t.Add(1, 2, Complex(4, 0));
  t.Add(1, 2, Complex(1, 0));
  Matrix d = t.ToDense();
  EXPECT_EQ(d.At(1, 2), Complex(5, 0));
  EXPECT_EQ(d.At(0, 0), Complex(0, 0));
}

TEST(CsrMatrix, RowPointersConsistent) {
  TripletMatrix t(3, 3);
  t.Add(2, 0, Complex(1, 0));
  t.Add(0, 1, Complex(2, 0));
  t.Add(2, 2, Complex(3, 0));
  CsrMatrix csr(t);
  const auto& rp = csr.RowPointers();
  ASSERT_EQ(rp.size(), 4u);
  EXPECT_EQ(rp[0], 0u);
  EXPECT_EQ(rp[1], 1u);  // row 0 has one entry
  EXPECT_EQ(rp[2], 1u);  // row 1 empty
  EXPECT_EQ(rp[3], 3u);  // row 2 has two entries
  // Columns sorted within the row.
  EXPECT_EQ(csr.ColumnIndices()[1], 0u);
  EXPECT_EQ(csr.ColumnIndices()[2], 2u);
}

TEST(CsrMatrix, MultiplyMatchesDense) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-1, 1);
  const std::size_t n = 12;
  TripletMatrix t(n, n);
  for (int k = 0; k < 50; ++k) {
    t.Add(rng() % n, rng() % n, Complex(u(rng), u(rng)));
  }
  CsrMatrix csr(t);
  Matrix dense = t.ToDense();
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = Complex(u(rng), u(rng));
  Vector y1 = csr.Multiply(x);
  Vector y2 = dense.Multiply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(y1[i] - y2[i]), 0.0, 1e-12);
  }
}

TEST(CsrMatrix, MultiplyDimensionMismatchThrows) {
  CsrMatrix csr{TripletMatrix(2, 2)};
  Vector x(3);
  EXPECT_THROW(csr.Multiply(x), util::NumericError);
}

TEST(CsrMatrix, AtOutOfRangeThrows) {
  CsrMatrix csr{TripletMatrix(2, 2)};
  EXPECT_THROW(csr.At(2, 0), util::NumericError);
}

TEST(CsrMatrix, NormInfMatchesDense) {
  TripletMatrix t(2, 2);
  t.Add(0, 0, Complex(3, 4));
  t.Add(0, 1, Complex(1, 0));
  t.Add(1, 1, Complex(2, 0));
  CsrMatrix csr(t);
  EXPECT_DOUBLE_EQ(csr.NormInf(), t.ToDense().NormInf());
  EXPECT_DOUBLE_EQ(csr.NormInf(), 6.0);
}

TEST(CsrMatrix, ToDenseRoundTrip) {
  TripletMatrix t(3, 2);
  t.Add(0, 1, Complex(1, 1));
  t.Add(2, 0, Complex(-2, 0));
  CsrMatrix csr(t);
  Matrix d = csr.ToDense();
  EXPECT_EQ(d.At(0, 1), Complex(1, 1));
  EXPECT_EQ(d.At(2, 0), Complex(-2, 0));
  EXPECT_EQ(d.Rows(), 3u);
  EXPECT_EQ(d.Cols(), 2u);
}

}  // namespace
}  // namespace mcdft::linalg
