// Shared test fixture: a synthetic CampaignResult carrying the paper's
// published data (Fig. 5 detectability matrix and Table 2 omega-detectability
// values) so the Section 4 optimizer can be validated against the paper's
// own worked example, independent of our circuit simulation.
#pragma once

#include "circuits/biquad.hpp"
#include "core/campaign.hpp"

namespace mcdft::testdata {

/// Fault order used by the paper's tables: fR1..fR6, fC1, fC2.
inline std::vector<faults::Fault> PaperFaults() {
  std::vector<faults::Fault> f;
  for (const char* name : {"R1", "R2", "R3", "R4", "R5", "R6"}) {
    f.emplace_back(name, faults::FaultKind::kDeviationUp, 0.2);
  }
  f.emplace_back("C1", faults::FaultKind::kDeviationUp, 0.2);
  f.emplace_back("C2", faults::FaultKind::kDeviationUp, 0.2);
  return f;
}

/// The paper's Table 2 (omega-detectability in percent, rows C0..C6).
/// Zero means "not detectable" (Fig. 5's zeros coincide with these).
inline std::vector<std::vector<double>> PaperOmegaTable() {
  return {
      {54, 0, 0, 46, 0, 0, 0, 0},        // C0
      {0, 0, 30, 0, 30, 30, 0, 30},      // C1
      {30, 30, 0, 30, 30, 30, 30, 0},    // C2
      {0, 0, 0, 0, 100, 100, 0, 0},      // C3
      {14, 70, 70, 70, 70, 0, 0, 0},     // C4
      {0, 0, 40, 0, 0, 0, 0, 40},        // C5
      {66, 40, 0, 40, 0, 0, 0, 0},       // C6
  };
}

/// Build a CampaignResult whose rows are C0..C6 over 3 configurable opamps
/// with the paper's omega values (detectable iff omega > 0).
inline core::CampaignResult PaperCampaign() {
  const auto faults = PaperFaults();
  const auto omega = PaperOmegaTable();
  std::vector<core::ConfigResult> rows;
  for (std::size_t i = 0; i < omega.size(); ++i) {
    core::ConfigResult row{core::ConfigVector::FromIndex(i, 3), {}};
    for (std::size_t j = 0; j < faults.size(); ++j) {
      testability::FaultDetectability d{faults[j]};
      d.detectable = omega[i][j] > 0.0;
      d.omega_detectability = omega[i][j] / 100.0;
      row.faults.push_back(std::move(d));
    }
    rows.push_back(std::move(row));
  }
  return core::CampaignResult(faults, std::move(rows),
                              testability::ReferenceBand(10.0, 1e5, 25));
}

/// A biquad-shaped DftCircuit whose element names match PaperFaults()
/// (needed only for the opamp mapping; its simulated behaviour is not used
/// with the synthetic campaign).
inline core::DftCircuit PaperCircuit() {
  return circuits::BuildDftBiquad();
}

}  // namespace mcdft::testdata
