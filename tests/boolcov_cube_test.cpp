#include "boolcov/cube.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mcdft::boolcov {
namespace {

TEST(Cube, EmptyCubeIsIdentityProduct) {
  Cube c(5);
  EXPECT_TRUE(c.Empty());
  EXPECT_EQ(c.LiteralCount(), 0u);
  EXPECT_EQ(c.ToString([](std::size_t v) { return "x" + std::to_string(v); }),
            "1");
}

TEST(Cube, SetTestReset) {
  Cube c(10);
  c.Set(3);
  c.Set(7);
  EXPECT_TRUE(c.Test(3));
  EXPECT_TRUE(c.Test(7));
  EXPECT_FALSE(c.Test(4));
  c.Reset(3);
  EXPECT_FALSE(c.Test(3));
  EXPECT_EQ(c.LiteralCount(), 1u);
}

TEST(Cube, InitializerListConstruction) {
  Cube c(8, {0, 2, 5});
  EXPECT_EQ(c.LiteralCount(), 3u);
  EXPECT_EQ(c.Variables(), (std::vector<std::size_t>{0, 2, 5}));
}

TEST(Cube, OutOfRangeThrows) {
  Cube c(4);
  EXPECT_THROW(c.Set(4), util::OptimizationError);
  EXPECT_THROW(c.Test(100), util::OptimizationError);
  EXPECT_THROW(c.Reset(4), util::OptimizationError);
}

TEST(Cube, UnionAndIntersect) {
  Cube a(6, {0, 1});
  Cube b(6, {1, 4});
  EXPECT_EQ(a.Union(b).Variables(), (std::vector<std::size_t>{0, 1, 4}));
  EXPECT_EQ(a.Intersect(b).Variables(), (std::vector<std::size_t>{1}));
}

TEST(Cube, MixedUniverseThrows) {
  Cube a(4), b(5);
  EXPECT_THROW(a.Union(b), util::OptimizationError);
  EXPECT_THROW(a.Intersect(b), util::OptimizationError);
  EXPECT_THROW(a.SubsetOf(b), util::OptimizationError);
}

TEST(Cube, SubsetSemantics) {
  Cube small(6, {1, 3});
  Cube big(6, {1, 3, 5});
  EXPECT_TRUE(small.SubsetOf(big));
  EXPECT_FALSE(big.SubsetOf(small));
  EXPECT_TRUE(small.SubsetOf(small));
  EXPECT_TRUE(Cube(6).SubsetOf(small));  // empty subset of everything
}

TEST(Cube, ToStringJoinsWithDots) {
  Cube c(8, {2, 5});
  auto namer = [](std::size_t v) { return "C" + std::to_string(v); };
  EXPECT_EQ(c.ToString(namer), "C2.C5");
}

TEST(Cube, OrderBySizeThenLex) {
  Cube a(4, {0});
  Cube b(4, {0, 1});
  Cube c(4, {1});
  EXPECT_TRUE(Cube::OrderBySize(a, b));   // fewer literals first
  EXPECT_TRUE(Cube::OrderBySize(a, c));   // same size: lex
  EXPECT_FALSE(Cube::OrderBySize(c, a));
  EXPECT_FALSE(Cube::OrderBySize(a, a));  // irreflexive
}

TEST(Cube, EqualityAndHash) {
  Cube a(70, {0, 64, 69});  // multi-limb
  Cube b(70, {0, 64, 69});
  Cube c(70, {0, 64});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  Cube::Hash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(Cube, LargeUniverseAcrossLimbBoundary) {
  Cube c(130);
  c.Set(63);
  c.Set(64);
  c.Set(129);
  EXPECT_EQ(c.LiteralCount(), 3u);
  EXPECT_EQ(c.Variables(), (std::vector<std::size_t>{63, 64, 129}));
  Cube d(130, {64});
  EXPECT_TRUE(d.SubsetOf(c));
}

// Property tests over random cubes.
class CubePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CubePropertyTest, UnionIntersectLaws) {
  std::mt19937_64 rng(GetParam());
  const std::size_t n = 40;
  auto random_cube = [&] {
    Cube c(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (rng() % 3 == 0) c.Set(v);
    }
    return c;
  };
  for (int t = 0; t < 20; ++t) {
    Cube a = random_cube(), b = random_cube(), c = random_cube();
    // Commutativity.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    // Associativity.
    EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
    // Absorption laws.
    EXPECT_EQ(a.Union(a.Intersect(b)), a);
    EXPECT_EQ(a.Intersect(a.Union(b)), a);
    // Subset relations.
    EXPECT_TRUE(a.Intersect(b).SubsetOf(a));
    EXPECT_TRUE(a.SubsetOf(a.Union(b)));
    // |A| + |B| = |A u B| + |A n B|.
    EXPECT_EQ(a.LiteralCount() + b.LiteralCount(),
              a.Union(b).LiteralCount() + a.Intersect(b).LiteralCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mcdft::boolcov
