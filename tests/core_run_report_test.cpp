#include "core/run_report.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "circuits/biquad.hpp"
#include "faults/fault_list.hpp"

namespace mcdft::core {
namespace {

/// Small but real biquad campaign (reduced grid/samples for test speed).
CampaignResult RunSmallCampaign(std::size_t threads = 2) {
  const DftCircuit circuit = circuits::BuildDftBiquad();
  const auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  CampaignOptions options = MakePaperCampaignOptions();
  options.points_per_decade = 4;
  options.tolerance->samples = 4;
  options.threads = threads;
  std::vector<ConfigVector> configs;
  for (std::size_t i = 0; i < 3; ++i) {
    configs.push_back(ConfigVector::FromIndex(
        i, circuit.ConfigurableOpamps().size()));
  }
  return RunCampaign(circuit, fault_list, configs, options);
}

TEST(RunReport, CapturesSolverCountersPhasesAndCoverage) {
  CampaignRunRecorder recorder;
  const CampaignResult campaign = RunSmallCampaign();
  RunReportOptions options;
  options.circuit = "biquad";
  options.threads = 2;
  const util::json::Value report = recorder.Finish(campaign, options);

  EXPECT_EQ(report.Get("schema").AsString(), "mcdft.run_report/3");
  EXPECT_EQ(report.Get("circuit").AsString(), "biquad");
  EXPECT_GT(report.Get("timing").Get("wall_s").AsDouble(), 0.0);
  EXPECT_EQ(report.Get("threads").Get("resolved").AsDouble(), 2.0);

  // Solver statistics: the campaign must have gone through the MNA cache
  // and the sparse/dense LU paths.
  const util::json::Value& mna = report.Get("solver").Get("mna");
  EXPECT_GT(mna.Get("solve").AsDouble(), 0.0);

  // Low-rank fault-solve statistics: with the default options every
  // (fault, frequency) pair goes through an SMW rank update (and its k-by-k
  // capacitance solve) against the nominal factorization.
  const util::json::Value& smw = report.Get("solver").Get("smw");
  EXPECT_GT(smw.Get("update").AsDouble(), 0.0);
  EXPECT_GT(smw.Get("kxk_solve").AsDouble(), 0.0);

  // Phase breakdown contains the three campaign phases with wall time.
  bool saw_prepare = false, saw_simulate = false, saw_assemble = false;
  for (const auto& row : report.Get("phases").Items()) {
    const std::string& name = row.Get("name").AsString();
    if (name == "campaign.prepare") saw_prepare = true;
    if (name == "campaign.simulate") {
      saw_simulate = true;
      EXPECT_GT(row.Get("wall_s").AsDouble(), 0.0);
      EXPECT_GE(row.Get("count").AsDouble(), 1.0);
    }
    if (name == "campaign.assemble") saw_assemble = true;
  }
  EXPECT_TRUE(saw_prepare);
  EXPECT_TRUE(saw_simulate);
  EXPECT_TRUE(saw_assemble);

  // Fault-sweep counters: configs * faults fault sweeps + one nominal each.
  const util::json::Value& faults = report.Get("faults");
  EXPECT_DOUBLE_EQ(faults.Get("nominal_sweeps").AsDouble(),
                   static_cast<double>(campaign.ConfigCount()));
  EXPECT_DOUBLE_EQ(
      faults.Get("fault_sweeps").AsDouble(),
      static_cast<double>(campaign.ConfigCount() * campaign.FaultCount()));

  // Batch occupancy: default options run the batched SMW path, so batches
  // were issued, every (fault, omega) cell of a healthy campaign rode one,
  // and the active SIMD dispatch level is named.
  const util::json::Value& batching = report.Get("batching");
  EXPECT_GT(batching.Get("batches").AsDouble(), 0.0);
  EXPECT_GT(batching.Get("batched_cells").AsDouble(), 0.0);
  EXPECT_GT(batching.Get("mean_occupancy").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(batching.Get("peeled_cells").AsDouble(), 0.0);
  EXPECT_FALSE(batching.Get("simd").AsString().empty());

  // Per-configuration coverage summary mirrors the campaign result.
  const util::json::Value& section = report.Get("campaign");
  EXPECT_DOUBLE_EQ(section.Get("config_count").AsDouble(),
                   static_cast<double>(campaign.ConfigCount()));
  EXPECT_DOUBLE_EQ(section.Get("coverage").AsDouble(), campaign.Coverage());

  // Quarantine accounting: a healthy campaign has cells but zero
  // quarantined, and no per-row quarantine lists.
  const util::json::Value& cells = section.Get("cells");
  EXPECT_GT(cells.Get("total").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(cells.Get("quarantined").AsDouble(), 0.0);
  const util::json::Value& per_config = section.Get("per_config");
  ASSERT_EQ(per_config.Size(), campaign.ConfigCount());
  for (std::size_t i = 0; i < per_config.Size(); ++i) {
    const util::json::Value& row = per_config.At(i);
    EXPECT_EQ(row.Get("config").AsString(),
              campaign.PerConfig()[i].config.Name());
    EXPECT_DOUBLE_EQ(row.Get("average_omega_det").AsDouble(),
                     campaign.PerConfig()[i].AverageOmegaDet());
    const double cov = row.Get("fault_coverage").AsDouble();
    EXPECT_GE(cov, 0.0);
    EXPECT_LE(cov, 1.0);
    EXPECT_DOUBLE_EQ(row.Get("quarantined_cells").AsDouble(), 0.0);
    EXPECT_EQ(row.Find("quarantine"), nullptr);
  }

  EXPECT_GT(report.Get("environment").Get("hardware_threads").AsDouble(), 0.0);
}

TEST(RunReport, ReportSerializesAndParsesBack) {
  CampaignRunRecorder recorder;
  const CampaignResult campaign = RunSmallCampaign(1);
  const util::json::Value report = recorder.Finish(campaign);

  const std::string path = ::testing::TempDir() + "/mcdft_run_report.json";
  WriteRunReport(report, path);
  const util::json::Value back = util::json::ParseFile(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.Get("schema").AsString(), "mcdft.run_report/3");
  EXPECT_DOUBLE_EQ(back.Get("campaign").Get("coverage").AsDouble(),
                   campaign.Coverage());
}

TEST(RunReport, RecorderRestoresDisabledState) {
  util::metrics::ScopedEnable off(false);
  {
    CampaignRunRecorder recorder;
    EXPECT_TRUE(util::metrics::Enabled());  // recorder switches metrics on
  }
  EXPECT_FALSE(util::metrics::Enabled());  // destructor restored it
}

TEST(RunReport, DeltaExcludesEarlierRuns) {
  // Counters accumulated before the recorder exists must not leak into the
  // report: run one instrumented campaign, then record a second one.
  util::metrics::ScopedEnable on;
  const CampaignResult first = RunSmallCampaign(1);
  (void)first;
  CampaignRunRecorder recorder;
  const CampaignResult second = RunSmallCampaign(1);
  const util::json::Value report = recorder.Finish(second);
  EXPECT_DOUBLE_EQ(report.Get("faults").Get("nominal_sweeps").AsDouble(),
                   static_cast<double>(second.ConfigCount()));
}

}  // namespace
}  // namespace mcdft::core
