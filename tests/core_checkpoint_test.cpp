// The shard checkpoint file format (core/checkpoint): exact JSONL
// round-trip, CRC-guided salvage of damaged files on the resume path, the
// legacy /1 reader, and the corruption cases that must fail loudly — a
// foreign schema version and a stale content hash each produce a
// CheckpointError whose message says what is wrong and which file/hash is
// involved, while strict (merge-path) loading refuses any damaged record.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "circuits/zoo.hpp"
#include "core/checkpoint.hpp"
#include "core/shard.hpp"
#include "faults/fault_list.hpp"
#include "util/faultpoint.hpp"

namespace mcdft::core {
namespace {

namespace fs = std::filesystem;

/// Expect `fn` to throw a CheckpointError whose message contains every
/// `needles` fragment; returns the message for further inspection.
template <typename Fn>
std::string ExpectCheckpointError(Fn&& fn,
                                  const std::vector<std::string>& needles) {
  try {
    fn();
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic missing '" << needle << "': " << what;
    }
    return what;
  }
  ADD_FAILURE() << "expected CheckpointError";
  return {};
}

class CheckpointFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    // These tests pin exact checkpoint bytes and damage files on purpose;
    // an armed-suite MCDFT_FAULTPOINTS spec must not add its own faults.
    util::faultpoint::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("mcdft_checkpoint_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);

    auto block = circuits::FindInZoo("biquad").build();
    circuit_ = std::make_unique<DftCircuit>(DftCircuit::Transform(block));
    fault_list_ = faults::MakeDeviationFaults(circuit_->Circuit());
    const std::size_t opamps = circuit_->ConfigurableOpamps().size();
    configs_ = {ConfigVector(opamps)};
    auto follower = ConfigVector(opamps);
    follower.SetSelection(0, true);
    configs_.push_back(follower);

    options_ = MakePaperCampaignOptions();
    options_.points_per_decade = 5;
    options_.tolerance->samples = 6;
    options_.threads = 1;
  }

  void TearDown() override {
    util::faultpoint::DisarmAll();
    fs::remove_all(dir_);
  }

  /// Run the whole campaign as one shard and return its checkpoint path.
  std::string RunWholeShard() {
    ShardRunOptions shard_options;
    shard_options.checkpoint_dir = (dir_ / "ck").string();
    const ShardRunResult run = RunCampaignShard(*circuit_, fault_list_,
                                                configs_, options_,
                                                shard_options);
    EXPECT_TRUE(run.complete);
    return run.shard_path;
  }

  fs::path dir_;
  std::unique_ptr<DftCircuit> circuit_;
  std::vector<faults::Fault> fault_list_;
  std::vector<ConfigVector> configs_;
  CampaignOptions options_;
};

TEST_F(CheckpointFiles, ShardFileNameEmbedsSpec) {
  EXPECT_EQ(ShardFileName(ShardSpec{0, 1}), "shard-0of1.json");
  EXPECT_EQ(ShardFileName(ShardSpec{2, 4}), "shard-2of4.json");
}

TEST_F(CheckpointFiles, JsonlRoundTripIsByteExact) {
  const std::string path = RunWholeShard();
  const ShardDocument doc = LoadShardFile(path);
  EXPECT_EQ(doc.manifest.shard, (ShardSpec{0, 1}));
  EXPECT_EQ(doc.manifest.circuit, circuit_->Name());
  EXPECT_EQ(doc.manifest.config_bits.size(), configs_.size());
  EXPECT_EQ(doc.manifest.fault_list.size(), fault_list_.size());
  ASSERT_EQ(doc.units.size(), configs_.size());

  // serialize -> parse -> serialize must reproduce the same bytes: the
  // whole bit-identical-merge story rests on this (util/json emits
  // round-trip-exact doubles).
  const std::string first = ShardToText(doc);
  const ShardDocument reparsed = ShardFromText(first);
  EXPECT_EQ(ShardToText(reparsed), first);

  // And the on-disk file is exactly the serialized document: a compact
  // header line plus one CRC-carrying record line per unit.
  std::ifstream in(path, std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, first);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(on_disk.begin(), on_disk.end(), '\n')),
            1 + doc.units.size());
  EXPECT_NE(on_disk.find(kShardSchema), std::string::npos);
  EXPECT_NE(on_disk.find("\"crc32\":\""), std::string::npos);
}

TEST_F(CheckpointFiles, TruncatedFileSalvagesOnResume) {
  const std::string path = RunWholeShard();
  std::ifstream in(path, std::ios::binary);
  std::string pristine((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  const std::size_t header_end = pristine.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  ASSERT_GT(pristine.size() / 2, header_end);
  // Chop the file mid-record, as a crashed non-atomic writer would.
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << pristine.substr(0, pristine.size() / 2);

  // The strict (merge-path) loader refuses the damaged file outright.
  ExpectCheckpointError([&] { LoadShardFile(path); },
                        {path, "unit record", "truncated"});

  // The salvaging loader keeps every CRC-intact record and names the one
  // it dropped.
  ShardSalvage salvage;
  const ShardDocument salvaged = SalvageShardFile(path, salvage);
  EXPECT_LT(salvaged.units.size(), configs_.size());
  EXPECT_EQ(salvage.units_loaded, salvaged.units.size());
  ASSERT_FALSE(salvage.damaged.empty());
  EXPECT_NE(salvage.damaged.front().find("truncated"), std::string::npos);

  // Resume recomputes only the damaged units and restores the checkpoint
  // to the exact pristine bytes (recomputation is bit-identical).
  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  const ShardRunResult rerun = RunCampaignShard(*circuit_, fault_list_,
                                                configs_, options_,
                                                shard_options);
  EXPECT_TRUE(rerun.complete);
  EXPECT_EQ(rerun.units_resumed, salvaged.units.size());
  EXPECT_EQ(rerun.units_run, configs_.size() - salvaged.units.size());
  EXPECT_FALSE(rerun.salvage_diagnostics.empty());
  std::ifstream again(path, std::ios::binary);
  std::string repaired((std::istreambuf_iterator<char>(again)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(repaired, pristine);
}

TEST_F(CheckpointFiles, CorruptRecordFailsItsCrcAndIsSalvagedAround) {
  const std::string path = RunWholeShard();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip payload content inside the *last* record while keeping the line
  // valid JSON: only the CRC can notice.
  const std::size_t pos = bytes.rfind("\"relative_floor\":");
  ASSERT_NE(pos, std::string::npos);
  ASSERT_GT(pos, bytes.find('\n'));
  const std::size_t digit = bytes.find_first_of("0123456789", pos + 17);
  ASSERT_NE(digit, std::string::npos);
  bytes[digit] = bytes[digit] == '9' ? '8' : static_cast<char>(bytes[digit] + 1);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ExpectCheckpointError([&] { LoadShardFile(path); },
                        {path, "unit record", "CRC"});

  ShardSalvage salvage;
  const ShardDocument salvaged = SalvageShardFile(path, salvage);
  EXPECT_EQ(salvaged.units.size(), configs_.size() - 1);
  ASSERT_EQ(salvage.damaged.size(), 1u);
  EXPECT_NE(salvage.damaged.front().find("CRC"), std::string::npos);
}

TEST_F(CheckpointFiles, LegacyV1DocumentStillResumes) {
  const std::string path = RunWholeShard();
  std::ifstream in(path, std::ios::binary);
  std::string pristine((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();

  // Downgrade the JSONL file to the /1 single-document layout: coords and
  // payload members flat on each unit object, no CRCs.
  namespace json = util::json;
  std::size_t start = pristine.find('\n') + 1;
  json::Value head = json::Parse(pristine.substr(0, start - 1));
  json::Value legacy = json::Value::Object();
  legacy.Set("schema", json::Value::Str(kShardSchemaV1));
  legacy.Set("manifest", head.Get("manifest"));
  json::Value units = json::Value::Array();
  while (start < pristine.size()) {
    const std::size_t end = pristine.find('\n', start);
    json::Value record = json::Parse(pristine.substr(start, end - start));
    json::Value unit = json::Value::Object();
    unit.Set("config", record.Get("config"));
    unit.Set("fault_begin", record.Get("fault_begin"));
    unit.Set("fault_end", record.Get("fault_end"));
    for (const auto& [key, value] : record.Get("payload").Members()) {
      unit.Set(key, value);
    }
    units.PushBack(std::move(unit));
    start = end + 1;
  }
  legacy.Set("units", std::move(units));
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << legacy.Serialize() << "\n";

  // Both loaders read it, and a resume restores every unit without
  // recomputing anything — then rewrites the file in the /2 layout.
  const ShardDocument loaded = LoadShardFile(path);
  EXPECT_EQ(loaded.units.size(), configs_.size());
  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  const ShardRunResult rerun = RunCampaignShard(*circuit_, fault_list_,
                                                configs_, options_,
                                                shard_options);
  EXPECT_TRUE(rerun.complete);
  EXPECT_EQ(rerun.units_resumed, configs_.size());
  EXPECT_EQ(rerun.units_run, 0u);
  std::ifstream again(path, std::ios::binary);
  std::string upgraded((std::istreambuf_iterator<char>(again)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(upgraded, pristine);
}

TEST_F(CheckpointFiles, SchemaVersionMismatchFailsWithBothVersions) {
  const std::string path = RunWholeShard();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::size_t pos = bytes.find(kShardSchema);
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, std::string(kShardSchema).size(), "mcdft.shard/99");
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  ExpectCheckpointError([&] { LoadShardFile(path); },
                        {path, "schema-version mismatch", "mcdft.shard/99",
                         kShardSchema});
}

TEST_F(CheckpointFiles, StaleContentHashFailsResumeWithBothHashes) {
  const std::string path = RunWholeShard();
  const std::string old_hash =
      CampaignContentHash(*circuit_, fault_list_, configs_, options_);

  // Same checkpoint dir, different campaign inputs: the epsilon change
  // invalidates every stored verdict.
  CampaignOptions changed = options_;
  changed.criteria.epsilon *= 2.0;
  const std::string new_hash =
      CampaignContentHash(*circuit_, fault_list_, configs_, changed);
  ASSERT_NE(new_hash, old_hash);

  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  ExpectCheckpointError(
      [&] {
        RunCampaignShard(*circuit_, fault_list_, configs_, changed,
                         shard_options);
      },
      {path, "different campaign inputs", old_hash, new_hash,
       "delete the checkpoint directory"});
}

TEST_F(CheckpointFiles, ForeignShardSpecInCheckpointDirFailsResume) {
  const std::string path = RunWholeShard();
  // Rewrite the manifest to claim the file belongs to shard 1/3 while
  // keeping the name shard-0of1.json: a mis-copied artifact.
  ShardDocument doc = LoadShardFile(path);
  doc.manifest.shard = ShardSpec{1, 3};
  WriteShardFile(doc, path);

  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  ExpectCheckpointError(
      [&] {
        RunCampaignShard(*circuit_, fault_list_, configs_, options_,
                         shard_options);
      },
      {path, "shard 1of3", "shard 0of1"});
}

}  // namespace
}  // namespace mcdft::core
