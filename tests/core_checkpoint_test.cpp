// The shard checkpoint file format (core/checkpoint): exact JSON
// round-trip, and the corruption cases that must make resume fail loudly —
// a truncated file, a foreign schema version and a stale content hash each
// produce a CheckpointError whose message says what is wrong and which
// file/hash is involved.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "circuits/zoo.hpp"
#include "core/checkpoint.hpp"
#include "core/shard.hpp"
#include "faults/fault_list.hpp"

namespace mcdft::core {
namespace {

namespace fs = std::filesystem;

/// Expect `fn` to throw a CheckpointError whose message contains every
/// `needles` fragment; returns the message for further inspection.
template <typename Fn>
std::string ExpectCheckpointError(Fn&& fn,
                                  const std::vector<std::string>& needles) {
  try {
    fn();
  } catch (const CheckpointError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic missing '" << needle << "': " << what;
    }
    return what;
  }
  ADD_FAILURE() << "expected CheckpointError";
  return {};
}

class CheckpointFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mcdft_checkpoint_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);

    auto block = circuits::FindInZoo("biquad").build();
    circuit_ = std::make_unique<DftCircuit>(DftCircuit::Transform(block));
    fault_list_ = faults::MakeDeviationFaults(circuit_->Circuit());
    const std::size_t opamps = circuit_->ConfigurableOpamps().size();
    configs_ = {ConfigVector(opamps)};
    auto follower = ConfigVector(opamps);
    follower.SetSelection(0, true);
    configs_.push_back(follower);

    options_ = MakePaperCampaignOptions();
    options_.points_per_decade = 5;
    options_.tolerance->samples = 6;
    options_.threads = 1;
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Run the whole campaign as one shard and return its checkpoint path.
  std::string RunWholeShard() {
    ShardRunOptions shard_options;
    shard_options.checkpoint_dir = (dir_ / "ck").string();
    const ShardRunResult run = RunCampaignShard(*circuit_, fault_list_,
                                                configs_, options_,
                                                shard_options);
    EXPECT_TRUE(run.complete);
    return run.shard_path;
  }

  fs::path dir_;
  std::unique_ptr<DftCircuit> circuit_;
  std::vector<faults::Fault> fault_list_;
  std::vector<ConfigVector> configs_;
  CampaignOptions options_;
};

TEST_F(CheckpointFiles, ShardFileNameEmbedsSpec) {
  EXPECT_EQ(ShardFileName(ShardSpec{0, 1}), "shard-0of1.json");
  EXPECT_EQ(ShardFileName(ShardSpec{2, 4}), "shard-2of4.json");
}

TEST_F(CheckpointFiles, JsonRoundTripIsByteExact) {
  const std::string path = RunWholeShard();
  const ShardDocument doc = LoadShardFile(path);
  EXPECT_EQ(doc.manifest.shard, (ShardSpec{0, 1}));
  EXPECT_EQ(doc.manifest.circuit, circuit_->Name());
  EXPECT_EQ(doc.manifest.config_bits.size(), configs_.size());
  EXPECT_EQ(doc.manifest.fault_list.size(), fault_list_.size());
  ASSERT_EQ(doc.units.size(), configs_.size());

  // serialize -> parse -> serialize must reproduce the same bytes: the
  // whole bit-identical-merge story rests on this (util/json emits
  // round-trip-exact doubles).
  const std::string first = ShardToJson(doc).Serialize();
  const ShardDocument reparsed = ShardFromJson(util::json::Parse(first));
  EXPECT_EQ(ShardToJson(reparsed).Serialize(), first);

  // And the on-disk file is exactly the serialized document.
  std::ifstream in(path, std::ios::binary);
  std::string on_disk((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(on_disk, first + "\n");
}

TEST_F(CheckpointFiles, TruncatedFileFailsResumeWithDiagnostic) {
  const std::string path = RunWholeShard();
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  // Chop the file mid-document, as a crashed non-atomic writer would.
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  ExpectCheckpointError([&] { LoadShardFile(path); },
                        {path, "truncated or corrupt"});

  // Resuming through RunCampaignShard hits the same wall: it must refuse,
  // not silently recompute over the bad file.
  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  ExpectCheckpointError(
      [&] {
        RunCampaignShard(*circuit_, fault_list_, configs_, options_,
                         shard_options);
      },
      {path, "truncated or corrupt"});
}

TEST_F(CheckpointFiles, SchemaVersionMismatchFailsWithBothVersions) {
  const std::string path = RunWholeShard();
  util::json::Value doc = util::json::ParseFile(path);
  doc.Set("schema", util::json::Value::Str("mcdft.shard/99"));
  util::json::WriteFileAtomic(doc, path);

  ExpectCheckpointError([&] { LoadShardFile(path); },
                        {path, "schema-version mismatch", "mcdft.shard/99",
                         kShardSchema});
}

TEST_F(CheckpointFiles, StaleContentHashFailsResumeWithBothHashes) {
  const std::string path = RunWholeShard();
  const std::string old_hash =
      CampaignContentHash(*circuit_, fault_list_, configs_, options_);

  // Same checkpoint dir, different campaign inputs: the epsilon change
  // invalidates every stored verdict.
  CampaignOptions changed = options_;
  changed.criteria.epsilon *= 2.0;
  const std::string new_hash =
      CampaignContentHash(*circuit_, fault_list_, configs_, changed);
  ASSERT_NE(new_hash, old_hash);

  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  ExpectCheckpointError(
      [&] {
        RunCampaignShard(*circuit_, fault_list_, configs_, changed,
                         shard_options);
      },
      {path, "different campaign inputs", old_hash, new_hash,
       "delete the checkpoint directory"});
}

TEST_F(CheckpointFiles, ForeignShardSpecInCheckpointDirFailsResume) {
  const std::string path = RunWholeShard();
  // Rewrite the manifest to claim the file belongs to shard 1/3 while
  // keeping the name shard-0of1.json: a mis-copied artifact.
  ShardDocument doc = LoadShardFile(path);
  doc.manifest.shard = ShardSpec{1, 3};
  WriteShardFile(doc, path);

  ShardRunOptions shard_options;
  shard_options.checkpoint_dir = (dir_ / "ck").string();
  ExpectCheckpointError(
      [&] {
        RunCampaignShard(*circuit_, fault_list_, configs_, options_,
                         shard_options);
      },
      {path, "shard 1of3", "shard 0of1"});
}

}  // namespace
}  // namespace mcdft::core
