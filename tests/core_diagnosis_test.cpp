#include "core/diagnosis.hpp"

#include <gtest/gtest.h>

#include <map>

#include "circuits/biquad.hpp"
#include "paper_fixture.hpp"
#include "spice/ac_analysis.hpp"

namespace mcdft::core {
namespace {

TEST(Diagnose, PaperCampaignSignatures) {
  auto campaign = testdata::PaperCampaign();
  auto report = Diagnose(campaign);
  // Paper's Fig. 5 columns: fR1 and fR4 share the signature 1010101;
  // fR5 and fR6 share 0111100 up to... compute: fR5 col = C1,C2,C3,C4;
  // fR6 col = C1,C2,C3.  All other columns are unique.
  EXPECT_EQ(report.classes.size(), 7u);  // 8 faults, one duplicated pair
  EXPECT_EQ(report.uniquely_diagnosed, 6u);
  EXPECT_NEAR(report.resolution, 7.0 / 8.0, 1e-12);
  // One indistinguishable pair among 28: 27/28 distinguishable.
  EXPECT_NEAR(report.pairwise_distinguishability, 27.0 / 28.0, 1e-12);

  // Find the two-fault class and check it is {fR1, fR4} (identical columns
  // in the paper's matrix).
  for (const auto& cls : report.classes) {
    if (cls.faults.size() == 2) {
      EXPECT_EQ(cls.faults[0].ShortLabel(), "fR1");
      EXPECT_EQ(cls.faults[1].ShortLabel(), "fR4");
      EXPECT_EQ(cls.signature, "1010101");
    }
  }
}

TEST(Diagnose, SingleConfigurationHasCoarseResolution) {
  auto campaign = testdata::PaperCampaign();
  // Restrict to C0 only by building a single-row campaign.
  std::vector<ConfigResult> rows{campaign.PerConfig()[0]};
  CampaignResult c0_only(campaign.Faults(), std::move(rows),
                         testability::ReferenceBand(10.0, 1e5, 25));
  auto report = Diagnose(c0_only);
  // Signatures are "0" or "1": at most 2 classes.
  EXPECT_LE(report.classes.size(), 2u);
  EXPECT_LT(report.resolution, 0.5);
}

TEST(RenderDiagnosis, ContainsClassesAndMetrics) {
  auto campaign = testdata::PaperCampaign();
  auto report = Diagnose(campaign);
  std::string out = RenderDiagnosis(report, campaign);
  EXPECT_NE(out.find("1010101"), std::string::npos);
  EXPECT_NE(out.find("fR1, fR4"), std::string::npos);
  EXPECT_NE(out.find("diagnostic resolution"), std::string::npos);
}

TEST(OpampFaults, GeneratorProducesPerOpampFaults) {
  auto circuit = circuits::BuildDftBiquad();
  auto list = faults::MakeOpampFaults(circuit.Circuit());
  EXPECT_EQ(list.size(), 6u);  // gain + bandwidth per opamp
  EXPECT_TRUE(list[0].IsOpampFault());
  faults::OpampFaultOptions only_gain;
  only_gain.bandwidth = false;
  EXPECT_EQ(faults::MakeOpampFaults(circuit.Circuit(), only_gain).size(), 3u);
  faults::OpampFaultOptions none;
  none.gain = false;
  none.bandwidth = false;
  EXPECT_THROW(faults::MakeOpampFaults(circuit.Circuit(), none),
               util::AnalysisError);
}

TEST(OpampFaults, ApplyAndScopedRestore) {
  auto circuit = circuits::BuildDftBiquad();
  spice::Netlist work = circuit.Circuit().Clone();
  const auto& op = static_cast<const spice::Opamp&>(work.GetElement("OP1"));
  const double a0 = op.Model().a0;
  {
    faults::ScopedFaultInjection inj(work,
                                     faults::Fault::GainDegradation("OP1", 1e-4));
    EXPECT_NEAR(op.Model().a0, a0 * 1e-4, 1e-6);
  }
  EXPECT_DOUBLE_EQ(op.Model().a0, a0);

  {
    faults::ScopedFaultInjection inj(
        work, faults::Fault::BandwidthDegradation("OP1", 1e-3));
    EXPECT_EQ(op.Model().kind, spice::OpampModelKind::kSinglePole);
  }
  EXPECT_EQ(op.Model().kind, spice::OpampModelKind::kFiniteGain);
}

TEST(OpampFaults, FactoryValidatesFactor) {
  EXPECT_THROW(faults::Fault::GainDegradation("OP1", 0.0),
               util::AnalysisError);
  EXPECT_THROW(faults::Fault::GainDegradation("OP1", 1.0),
               util::AnalysisError);
  EXPECT_THROW(faults::Fault::BandwidthDegradation("OP1", 2.0),
               util::AnalysisError);
}

TEST(OpampFaults, ApplyToNonOpampThrows) {
  auto circuit = circuits::BuildDftBiquad();
  spice::Netlist work = circuit.Circuit().Clone();
  EXPECT_THROW(faults::Fault::GainDegradation("R1", 0.5).ApplyTo(work),
               util::NetlistError);
}

TEST(OpampFaults, Labels) {
  EXPECT_EQ(faults::Fault::GainDegradation("OP2", 0.001).Label(),
            "fOP2(A0x0.001)");
  EXPECT_EQ(faults::Fault::BandwidthDegradation("OP2", 0.01).Label(),
            "fOP2(GBWx0.01)");
}

class TransparentTestFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto circuit = circuits::BuildDftBiquad();
    result_ = new OpampTestResult(RunOpampTransparentTest(circuit));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static OpampTestResult* result_;
};

OpampTestResult* TransparentTestFixture::result_ = nullptr;

TEST_F(TransparentTestFixture, ScreenDetectsEveryOpampFault) {
  // Paper Sec. 3.1: the transparent configuration tests faults inside
  // opamps.  A severely degraded opamp breaks the identity function.
  EXPECT_DOUBLE_EQ(result_->screen_coverage, 1.0);
  for (const auto& v : result_->screen) {
    EXPECT_TRUE(v.detectable) << v.fault.Label();
    EXPECT_GT(v.omega_detectability, 0.0);
  }
}

TEST_F(TransparentTestFixture, LocalizationUsesTransparentPlusSingles) {
  EXPECT_EQ(result_->localization.ConfigCount(), 4u);  // C7 + 3 singles
  EXPECT_TRUE(result_->localization.PerConfig()[0].config.IsTransparent());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(result_->localization.PerConfig()[i].config.FollowerCount(), 1u);
  }
}

TEST_F(TransparentTestFixture, QuantizedSignaturesLocalizeFaults) {
  // Severe opamp faults are detectable in *every* configuration (the
  // boolean signatures are uniform), but the 4-level quantized dictionary
  // separates them: each opamp disturbs a characteristically different
  // fraction of the band per configuration.
  const auto& report = result_->diagnosis;
  EXPECT_GT(report.resolution, 0.5);
  std::map<std::string, std::string> sig_of;
  for (const auto& cls : report.classes) {
    for (const auto& f : cls.faults) sig_of[f.Label()] = cls.signature;
  }
  EXPECT_NE(sig_of.at("fOP1(A0x1e-05)"), sig_of.at("fOP2(A0x1e-05)"));
  EXPECT_NE(sig_of.at("fOP2(A0x1e-05)"), sig_of.at("fOP3(A0x1e-05)"));

  // Boolean signatures, by contrast, are coarse here.
  auto boolean = Diagnose(result_->localization, DiagnosisOptions{1});
  EXPECT_LT(boolean.resolution, report.resolution);
}

TEST_F(TransparentTestFixture, DiagnoseValidatesLevels) {
  EXPECT_THROW(Diagnose(result_->localization, DiagnosisOptions{0}),
               util::OptimizationError);
  EXPECT_THROW(Diagnose(result_->localization, DiagnosisOptions{10}),
               util::OptimizationError);
}

TEST(TransparentTest, RequiresFullDft) {
  auto block = circuits::BuildBiquad();
  auto partial = DftCircuit::Transform(block, {"OP1", "OP2"});
  EXPECT_THROW(RunOpampTransparentTest(partial), util::AnalysisError);
}

TEST(TransparentTest, RejectsPassiveFaults) {
  auto circuit = circuits::BuildDftBiquad();
  EXPECT_THROW(RunOpampTransparentTest(
                   circuit, {faults::Fault("R1", faults::FaultKind::kDeviationUp,
                                           0.2)}),
               util::AnalysisError);
}

TEST(Diagnosis, DftImprovesPassiveFaultDiagnosis) {
  // The multi-configuration signatures diagnose passive faults far better
  // than the single functional configuration (the diagnosis literature's
  // question, answered with the paper's DFT).
  auto campaign = testdata::PaperCampaign();
  auto multi = Diagnose(campaign);

  std::vector<ConfigResult> rows{campaign.PerConfig()[0]};
  CampaignResult c0_only(campaign.Faults(), std::move(rows),
                         testability::ReferenceBand(10.0, 1e5, 25));
  auto single = Diagnose(c0_only);
  EXPECT_GT(multi.resolution, 2.0 * single.resolution);
}

}  // namespace
}  // namespace mcdft::core
