#include "core/preselection.hpp"

#include <gtest/gtest.h>

#include "circuits/biquad.hpp"
#include "core/optimizer.hpp"

namespace mcdft::core {
namespace {

class PreselectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new DftCircuit(circuits::BuildDftBiquad());
    fault_list_ = new std::vector<faults::Fault>(
        faults::MakeDeviationFaults(circuit_->Circuit()));
    candidates_ = new std::vector<ConfigVector>(
        circuit_->Space().AllNonTransparent());
    result_ = new PreselectionResult(
        PreselectConfigurations(*circuit_, *fault_list_, *candidates_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete candidates_;
    delete fault_list_;
    delete circuit_;
    result_ = nullptr;
  }
  static DftCircuit* circuit_;
  static std::vector<faults::Fault>* fault_list_;
  static std::vector<ConfigVector>* candidates_;
  static PreselectionResult* result_;
};

DftCircuit* PreselectionTest::circuit_ = nullptr;
std::vector<faults::Fault>* PreselectionTest::fault_list_ = nullptr;
std::vector<ConfigVector>* PreselectionTest::candidates_ = nullptr;
PreselectionResult* PreselectionTest::result_ = nullptr;

TEST_F(PreselectionTest, SelectsAStrictSubsetIncludingFunctional) {
  EXPECT_LT(result_->selected.size(), candidates_->size());
  EXPECT_GE(result_->selected.size(), 2u);
  bool has_functional = false;
  for (const auto& cv : result_->selected) {
    has_functional = has_functional || cv.IsFunctional();
  }
  EXPECT_TRUE(has_functional);
}

TEST_F(PreselectionTest, PredictedMatrixShapeMatches) {
  ASSERT_EQ(result_->predicted.size(), candidates_->size());
  for (const auto& row : result_->predicted) {
    EXPECT_EQ(row.size(), fault_list_->size());
  }
  EXPECT_GT(result_->sweeps_used, 0u);
}

TEST_F(PreselectionTest, SelectedSubsetPreservesFullCampaignCoverage) {
  // Run the expensive campaign on all candidates and on the pre-selected
  // subset: the subset must reach the same maximum fault coverage.
  auto options = MakePaperCampaignOptions();
  options.points_per_decade = 25;
  options.tolerance->samples = 16;
  auto full = RunCampaign(*circuit_, *fault_list_, *candidates_, options);
  auto sub = RunCampaign(*circuit_, *fault_list_, result_->selected, options);
  EXPECT_DOUBLE_EQ(sub.Coverage(), full.Coverage());
  // And most of the omega-detectability (headroom configs retain it).
  EXPECT_GT(sub.AverageOmegaDet(), 0.6 * full.AverageOmegaDet());
}

TEST_F(PreselectionTest, ScreeningIsCheaperThanFullCampaign) {
  // Screen cost: 2 sweeps per (candidate, fault) at a 5x coarser grid.
  // Full-campaign cost per candidate: tolerance samples + faults + 1
  // sweeps at the fine grid.  The screen must be well under half of it in
  // solve volume.
  const std::size_t screen_points = result_->sweeps_used * (4 * 10 + 1);
  const auto full_options = MakePaperCampaignOptions();
  const std::size_t full_sweeps =
      candidates_->size() *
      (full_options.tolerance->samples + fault_list_->size() + 2);
  const std::size_t full_points = full_sweeps * (4 * 50 + 1);
  EXPECT_LT(screen_points, full_points / 2);
}

TEST(Preselection, ValidatesInputs) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  EXPECT_THROW(PreselectConfigurations(circuit, fault_list, {}),
               util::AnalysisError);
  EXPECT_THROW(
      PreselectConfigurations(circuit, {}, circuit.Space().AllNonTransparent()),
      util::AnalysisError);
}

TEST(Preselection, ExplicitAnchorAndNoExtras) {
  DftCircuit circuit = circuits::BuildDftBiquad();
  auto fault_list = faults::MakeDeviationFaults(circuit.Circuit());
  PreselectionOptions options;
  options.anchor_hz = 1000.0;
  options.extra_configs = 0;
  auto r = PreselectConfigurations(circuit, fault_list,
                                   circuit.Space().AllNonTransparent(),
                                   options);
  EXPECT_FALSE(r.selected.empty());
  // With no extras the subset is exactly functional + greedy cover.
  PreselectionOptions with_extras = options;
  with_extras.extra_configs = 3;
  auto r2 = PreselectConfigurations(circuit, fault_list,
                                    circuit.Space().AllNonTransparent(),
                                    with_extras);
  EXPECT_GE(r2.selected.size(), r.selected.size());
}

}  // namespace
}  // namespace mcdft::core
